package drainnet

import (
	"io"
	"math/rand"

	"drainnet/internal/baseline"
	"drainnet/internal/cluster"
	"drainnet/internal/export"
	"drainnet/internal/gpu"
	"drainnet/internal/graph"
	"drainnet/internal/hydro"
	"drainnet/internal/ios"
	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nas"
	"drainnet/internal/nn"
	"drainnet/internal/profiler"
	"drainnet/internal/serve"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/sweep"
	"drainnet/internal/telemetry"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
	"drainnet/internal/train"
)

// ---- Tensors and networks ----

// Tensor is a dense float32 tensor (row-major), the data type flowing
// through every model.
type Tensor = tensor.Tensor

// NewTensor allocates a zero-filled tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Network is a trainable sequential CNN.
type Network = nn.Sequential

// DetectionTarget is per-sample supervision: objectness plus a normalized
// center-size box.
type DetectionTarget = nn.DetectionTarget

// ---- Model family (paper Table 1) ----

// ModelConfig describes one SPP-Net architecture; it round-trips through
// the paper's layer notation (see ParseModel and ModelConfig.Notation).
type ModelConfig = model.Config

// OriginalSPPNet is the paper's baseline architecture
// (C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP4,2,1-F1024).
func OriginalSPPNet() ModelConfig { return model.OriginalSPPNet() }

// SPPNet1 is NAS candidate #1 (5×5 first conv).
func SPPNet1() ModelConfig { return model.SPPNet1() }

// SPPNet2 is NAS candidate #2 (SPP 5,2,1 + F4096) — the paper's selected
// final model.
func SPPNet2() ModelConfig { return model.SPPNet2() }

// SPPNet3 is NAS candidate #3 (SPP 5,2,1 + F2048).
func SPPNet3() ModelConfig { return model.SPPNet3() }

// ModelCandidates returns all four Table 1 architectures.
func ModelCandidates() []ModelConfig { return model.Candidates() }

// ParseModel parses the paper's layer notation, e.g.
// "C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP4,2,1-F1024".
func ParseModel(name, notation string) (ModelConfig, error) {
	return model.ParseNotation(name, notation)
}

// BuildModel constructs the trainable network for a configuration.
func BuildModel(cfg ModelConfig, rng *rand.Rand) (*Network, error) { return cfg.Build(rng) }

// Detect runs a trained network on a batch and decodes detections.
func Detect(net *Network, x *Tensor) []Detection { return model.Detect(net, x) }

// ScanConfig controls sliding-window raster scanning.
type ScanConfig = model.ScanConfig

// ScanHit is one confident, NMS-surviving detection in raster coordinates.
type ScanHit = model.ScanHit

// DefaultScanConfig returns a dense scan at a high confidence cut.
func DefaultScanConfig(window int) ScanConfig { return model.DefaultScanConfig(window) }

// Scan slides a trained detector over a full raster and returns merged
// drainage-crossing locations (the survey operation that feeds DEM
// breaching).
func Scan(net *Network, img *Tensor, cfg ScanConfig) ([]ScanHit, error) {
	return model.Scan(net, img, cfg)
}

// MatchHits scores detections against ground-truth crossings within a
// tolerance radius, returning recall and precision.
func MatchHits(hits []ScanHit, truth []GridPoint, radius int) (recall, precision float64) {
	return model.MatchHits(hits, truth, radius)
}

// ---- Synthetic watershed and dataset ----

// WatershedConfig controls watershed synthesis.
type WatershedConfig = terrain.Config

// Watershed is a synthesized study area: DEM, roads, streams, wetlands,
// and ground-truth drainage crossings.
type Watershed = terrain.Watershed

// DefaultWatershedConfig matches the study area's character at 1 m
// resolution.
func DefaultWatershedConfig() WatershedConfig { return terrain.DefaultConfig() }

// GenerateWatershed synthesizes a watershed.
func GenerateWatershed(cfg WatershedConfig) (*Watershed, error) { return terrain.Generate(cfg) }

// RenderOrthophoto renders the 4-band (R,G,B,NIR) image of a watershed.
func RenderOrthophoto(w *Watershed) *Tensor { return terrain.Render(w) }

// ClipConfig controls how labeled samples are clipped from the image.
type ClipConfig = terrain.ClipConfig

// DefaultClipConfig matches the paper's §3.2 preprocessing: 100×100
// samples with the crossing near the center.
func DefaultClipConfig() ClipConfig { return terrain.DefaultClipConfig() }

// Dataset is a set of labeled clips with deterministic splitting.
type Dataset = terrain.Dataset

// Sample is one labeled clip.
type Sample = terrain.Sample

// BuildDataset clips positive and negative samples from a rendered
// watershed.
func BuildDataset(w *Watershed, img *Tensor, cc ClipConfig) (*Dataset, error) {
	return terrain.BuildDataset(w, img, cc)
}

// ClipImage extracts a size×size window from a C×H×W image at (r0, c0).
func ClipImage(img *Tensor, r0, c0, size int) *Tensor {
	return terrain.Clip(img, r0, c0, size)
}

// Augment extends a dataset with random square symmetries (flips and
// rotations), transforming box targets to match.
func Augment(ds *Dataset, extraPerSample int, seed int64) *Dataset {
	return terrain.Augment(ds, extraPerSample, seed)
}

// SaveDataset / LoadDataset cache expensive dataset generation to disk.
func SaveDataset(path string, ds *Dataset) error { return terrain.SaveDatasetFile(path, ds) }

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) { return terrain.LoadDatasetFile(path) }

// ---- Hydrology ----

// Grid is a raster of float64 values (elevations, accumulations).
type Grid = hydro.Grid

// GridPoint is a raster coordinate.
type GridPoint = hydro.Point

// FlowDirections computes D8 steepest-descent directions.
func FlowDirections(dem *Grid) *hydro.FlowDir { return hydro.D8FlowDirections(dem) }

// FlowAccumulation computes D8 flow accumulation.
func FlowAccumulation(dem *Grid, dirs *hydro.FlowDir) *Grid {
	return hydro.FlowAccumulation(dem, dirs)
}

// FillDepressions removes interior sinks (priority-flood).
func FillDepressions(dem *Grid) *Grid { return hydro.FillDepressions(dem) }

// FillDepressionsLimited fills only shallow depressions (≤ maxDepth of
// fill), so dam-impounded ponds persist for diagnosis.
func FillDepressionsLimited(dem *Grid, maxDepth float64) *Grid {
	return hydro.FillDepressionsLimited(dem, maxDepth)
}

// ConnectivityScore is the fraction of stream cells whose flow path
// reaches the raster boundary; digital dams lower it.
func ConnectivityScore(dem *Grid, streamThreshold float64) float64 {
	return hydro.ConnectivityScore(dem, streamThreshold)
}

// BreachAll carves drainage channels through embankments at the given
// crossing locations.
func BreachAll(dem *Grid, points []GridPoint, radius int) { hydro.BreachAll(dem, points, radius) }

// ---- Training and evaluation ----

// TrainOptions configures a training run.
type TrainOptions = train.Options

// PaperTrainOptions returns the paper's §6.1 protocol (SGD lr 0.005,
// weight decay 5e-4, momentum 0.9, batch 20).
func PaperTrainOptions() TrainOptions { return train.PaperOptions() }

// Fit trains a network on a dataset.
func Fit(net *Network, ds *Dataset, opt TrainOptions) ([]train.EpochStats, error) {
	return train.Fit(net, ds, opt)
}

// EvaluateDetector scores a trained detector with AP at an IoU threshold
// (the paper's Equation 1).
func EvaluateDetector(net *Network, ds *Dataset, iouThresh float64) Evaluation {
	return train.Evaluate(net, ds, iouThresh)
}

// Detection is one model output: confidence and box.
type Detection = metrics.Detection

// Evaluation is an AP/PR scoring result.
type Evaluation = metrics.Evaluation

// IoU returns intersection-over-union of two normalized boxes.
func IoU(a, b metrics.Box) float64 { return metrics.IoU(a, b) }

// ---- NAS (paper §4, §5.4) ----

// SearchSpace is the Retiarii-style model space.
type SearchSpace = nas.Space

// DefaultSearchSpace returns the paper's §4.2 space: conv1 kernel
// {1,3,5,7,9}, first SPP level {1..5}, FC width {128..8192}.
func DefaultSearchSpace() SearchSpace { return nas.DefaultSpace() }

// Evaluator scores one architecture.
type Evaluator = nas.Evaluator

// FunctionalEvaluator adapts a plain function (Retiarii's
// FunctionalEvaluator).
type FunctionalEvaluator = nas.FunctionalEvaluator

// Trial is one evaluated architecture.
type Trial = nas.Trial

// RandomSearch runs the multi-trial random exploration strategy.
func RandomSearch(space SearchSpace, eval Evaluator, maxTrials int, seed int64) []Trial {
	return nas.RandomSearch(space, eval, maxTrials, seed)
}

// EvolutionSearch runs regularized (aging) evolution over the space — an
// alternative exploration strategy to the paper's random search.
func EvolutionSearch(space SearchSpace, eval Evaluator, cfg nas.EvolutionConfig) []Trial {
	return nas.EvolutionSearch(space, eval, cfg)
}

// DefaultEvolution returns a small, sensible evolution configuration.
func DefaultEvolution() nas.EvolutionConfig { return nas.DefaultEvolution() }

// ResourceAwareSelect performs the §5.4 accuracy-constrained efficiency
// optimization: maximize e(n) subject to a(n) > threshold.
func ResourceAwareSelect(trials []Trial, threshold float64, batch int) (*nas.Selection, error) {
	return nas.ResourceAware(trials, nas.IOSMeasurer{Dev: RTXA5500()}, threshold, batch)
}

// ---- Hardware-in-the-loop NAS ----

// SearchCandidate is one point of the joint search space: architecture ×
// serving precision × kernel mode.
type SearchCandidate = nas.CandidateConfig

// DefaultJointSearchSpace returns the §4.2 architecture space extended
// with the serving dimensions: precision {fp32, int8} and kernel mode
// {im2col, tuned}.
func DefaultJointSearchSpace() SearchSpace { return nas.DefaultJointSpace() }

// MeasuredEvaluator scores joint candidates with real trained accuracy
// and the measured steady-state latency of each candidate's compiled
// executor on this machine (after accuracy-gated quantization, kernel
// autotuning and IOS scheduling). Safe for concurrent use by
// MeasuredSearch workers.
type MeasuredEvaluator = nas.MeasuredEvaluator

// CandidateTrainer produces a trained network and its held-out accuracy
// for one scaled architecture.
type CandidateTrainer = nas.Trainer

// SearchOptions configures a measured search (strategy, trial budget,
// seed, parallel workers).
type SearchOptions = nas.SearchOptions

// TrialResult is one scored joint candidate.
type TrialResult = nas.TrialResult

// CandidateEvaluatorFunc adapts a plain function to a measured-search
// candidate evaluator.
type CandidateEvaluatorFunc = nas.CandidateEvaluatorFunc

// MeasuredSearchResult is a measured search's full history with
// deterministic ranking (Ranked, Winner, Render).
type MeasuredSearchResult = nas.SearchResult

// MeasuredSearch runs the hardware-in-the-loop NAS: candidates evaluate
// across opts.Parallel workers sharing one evaluator (and cost cache);
// revisited candidates are never evaluated twice, and a warm cache
// reproduces the ranking bit-for-bit.
func MeasuredSearch(space SearchSpace, eval nas.CandidateEvaluator, opts SearchOptions) (*MeasuredSearchResult, error) {
	return nas.Search(space, eval, opts)
}

// NASWinnerPlan is the persisted outcome of a measured search, loadable
// by drainnet-serve -nas-plan.
type NASWinnerPlan = nas.WinnerPlan

// SaveNASWinner persists a search winner (plan.json + winner.ckpt) into dir.
func SaveNASWinner(dir string, t TrialResult, arch ModelConfig, net *Network, threshold float64, maxBatch int) (*NASWinnerPlan, error) {
	return nas.SaveWinner(dir, t, arch, net, threshold, maxBatch)
}

// LoadNASWinnerPlan reads a plan written by SaveNASWinner.
func LoadNASWinnerPlan(path string) (*NASWinnerPlan, error) { return nas.LoadWinnerPlan(path) }

// ---- Inference graphs, IOS, GPU simulation (paper §5, §6.3–6.4) ----

// Graph is the operator-DAG inference IR.
type Graph = graph.Graph

// BuildGraph lowers a model configuration to its inference graph.
func BuildGraph(cfg ModelConfig) (*Graph, error) { return cfg.BuildGraph() }

// Device describes a simulated GPU.
type Device = gpu.DeviceConfig

// RTXA5500 returns the paper's GPU, simulated (10240 CUDA cores, 24 GB).
func RTXA5500() Device { return gpu.RTXA5500() }

// Schedule is an execution plan: stages of concurrent groups.
type Schedule = ios.Schedule

// SequentialSchedule returns the framework-eager baseline schedule.
func SequentialSchedule(g *Graph) *Schedule { return ios.SequentialSchedule(g) }

// GreedySchedule returns the ASAP-levels baseline schedule.
func GreedySchedule(g *Graph) *Schedule { return ios.GreedySchedule(g) }

// OptimizeSchedule runs the IOS dynamic program against the device's cost
// model at the given batch size.
func OptimizeSchedule(g *Graph, dev Device, batch int) (*Schedule, error) {
	return ios.Optimize(g, ios.NewSimOracle(dev), batch)
}

// SchedulePlan holds measured-cost-optimal IOS schedules for serving
// one model on this machine (batch-1 and max-batch regimes).
type SchedulePlan = model.SchedulePlan

// CostCache memoizes wall-clock operator measurements across processes.
type CostCache = ios.CostCache

// LoadCostCache reads a saved operator cost cache (empty when missing).
func LoadCostCache(path string) (*CostCache, error) { return ios.LoadCostCache(path) }

// OptimizeSchedules benchmarks net's operators on this machine and runs
// the IOS dynamic program against the measured costs, yielding the plan
// the serving pool executes when Options.Plan is set.
func OptimizeSchedules(cfg ModelConfig, net *Network, maxBatch int, cache *CostCache) (*SchedulePlan, error) {
	return model.OptimizeSchedules(cfg, net, maxBatch, cache)
}

// ScheduleExecutor runs a network under an IOS schedule on the shared
// worker pool, bit-for-bit identical to the sequential fast path.
type ScheduleExecutor = nn.ScheduleExecutor

// LatencyResult summarizes one measured inference.
type LatencyResult = ios.RunResult

// MeasureLatency executes a schedule on a warm simulated device and
// reports end-to-end latency and per-image efficiency.
func MeasureLatency(g *Graph, sched *Schedule, dev Device, batch int) LatencyResult {
	return ios.NewRuntime(dev).Measure(g, sched, batch)
}

// ---- Profiling (paper §7) ----

// Profile is a combined nsys-style report: memory operations (Fig 7),
// CUDA API shares (Fig 8), kernel classes (Table 3).
type Profile = profiler.Profile

// ProfileInference profiles one cold-process inference.
func ProfileInference(dev Device, g *Graph, sched *Schedule, batch int) Profile {
	return profiler.Run(dev, g, sched, batch)
}

// ---- Multi-GPU extension (paper §4.1 future work) ----

// MultiGPUConfig describes a simulated multi-GPU node.
type MultiGPUConfig = ios.MultiGPUConfig

// MultiSchedule is a placed, timed multi-GPU execution plan.
type MultiSchedule = ios.MultiSchedule

// DefaultMultiGPU returns an n-GPU RTX A5500 node joined by NVLink.
func DefaultMultiGPU(n int) MultiGPUConfig { return ios.DefaultMultiGPU(n) }

// OptimizeMultiGPU places the graph's operators across a multi-GPU node
// with earliest-finish-time list scheduling (HIOS-style inter-GPU level).
func OptimizeMultiGPU(g *Graph, cfg MultiGPUConfig, batch int) (*MultiSchedule, error) {
	return ios.OptimizeMultiGPU(g, cfg, batch)
}

// ---- Quantized inference (accuracy-gated int8) ----

// Precision names a serving precision: PrecisionFP32, PrecisionInt8, or
// PrecisionAuto (try int8, fall back to fp32 on a gate failure).
type Precision = model.Precision

// Serving precisions accepted by ParsePrecision and ServeOptions.
const (
	PrecisionFP32 = model.PrecisionFP32
	PrecisionInt8 = model.PrecisionInt8
	PrecisionAuto = model.PrecisionAuto
)

// ParsePrecision parses "fp32", "int8" or "auto".
func ParsePrecision(s string) (Precision, error) { return model.ParsePrecision(s) }

// QuantOptions configures the quantization accuracy gate: the epsilon on
// the AP drop and the calibration pass.
type QuantOptions = model.QuantOptions

// QuantDecision is the gate's verdict: the quantized network, both
// precisions' AP on the held-out split, and whether int8 cleared the
// epsilon (the paper's a(n) > A constraint applied to quantization).
type QuantDecision = model.QuantDecision

// QuantizeGated calibrates net on the dataset, quantizes it to int8
// (per-channel weights, affine activations, per-layer fp32 fallback for
// unsupported modules), and scores both precisions; Enabled reports
// whether the AP drop stayed within opts.MaxAPDrop.
func QuantizeGated(net *Network, ds *Dataset, opts QuantOptions) (*QuantDecision, error) {
	return model.QuantizeGated(net, ds, opts)
}

// ---- Serving (versioned /v1 HTTP API, batched multi-replica pool) ----

// ReplicaPool coalesces single-clip requests into batches and runs them
// across independent network replicas (each owning its layer caches).
type ReplicaPool = batcher.Pool

// PoolOptions tunes the pool: replica count, max batch, max wait (the
// §6.4 batching knobs), and the bounded-queue backpressure limit.
type PoolOptions = batcher.Options

// PoolStats is a snapshot of serving statistics: queue depth, batch-size
// histogram, latency quantiles, per-replica load.
type PoolStats = batcher.Stats

// NewReplicaPool builds a pool of opts.Replicas copies of net, which must
// have been built from cfg. Submit clips with ReplicaPool.Submit; drain
// with Close.
func NewReplicaPool(cfg ModelConfig, net *Network, opts PoolOptions) (*ReplicaPool, error) {
	return batcher.New(cfg, net, opts)
}

// DetectorServer serves a trained detector over the /v1 HTTP API, backed
// by a ReplicaPool.
type DetectorServer = serve.Server

// ServeOptions configures the server's pool and per-request timeout.
type ServeOptions = serve.Options

// NewDetectorServer creates an HTTP detection server; threshold is the
// objectness confidence cut for HasObject.
func NewDetectorServer(cfg ModelConfig, net *Network, threshold float64, opts ServeOptions) (*DetectorServer, error) {
	return serve.NewWithOptions(cfg, net, threshold, opts)
}

// Hit is the /v1 wire schema for one detection, shared by /v1/detect,
// /v1/detect/batch, and /v1/sweep/{id}/results: a score plus either a
// clip-relative Box (detect) or a raster Point (sweep results).
type Hit = serve.Hit

// RasterPoint is a raster coordinate in a Hit.
type RasterPoint = serve.RasterPoint

// ---- Watershed sweep jobs (async /v1/sweep) ----

// SweepSpec describes a watershed-scale sweep job: raster size and seed,
// sliding-window geometry, the candidate prior, scenario list, and
// checkpoint cadence. Zero fields take model-derived defaults.
type SweepSpec = sweep.Spec

// SweepStatus is a job snapshot: state, phase, per-counter progress,
// skip rate, clips/sec throughput, and per-scenario accuracy summaries.
type SweepStatus = sweep.Status

// SweepScenarioSummary scores one completed scenario: windows swept,
// candidates inferred, and AP/recall/precision against the synthetic
// ground-truth crossings.
type SweepScenarioSummary = sweep.ScenarioSummary

// SweepHit is one merged crossing detection in raster coordinates.
type SweepHit = sweep.Hit

// SweepManager runs resumable sweep jobs over an inference backend; the
// HTTP server embeds one behind /v1/sweep, and drainnet-sweep drives one
// directly.
type SweepManager = sweep.Manager

// SweepManagerOptions wires a manager to a pool: the Submit backend,
// model input geometry, checkpoint directory, and telemetry.
type SweepManagerOptions = sweep.ManagerOptions

// SweepJob is one running or finished sweep job.
type SweepJob = sweep.Job

// NewSweepManager builds a sweep-job manager. With a checkpoint
// directory set, interrupted jobs resume bit-identically via
// SweepManager.Resume.
func NewSweepManager(opts SweepManagerOptions) (*SweepManager, error) {
	return sweep.NewManager(opts)
}

// GeoPoint is one crossing feature for GeoJSON export.
type GeoPoint = export.PointFeature

// WriteCrossingsGeoJSON writes detections as a GeoJSON FeatureCollection
// of Point features (coordinates are [col, row]).
func WriteCrossingsGeoJSON(w io.Writer, points []GeoPoint) error {
	return export.WriteGeoJSON(w, points)
}

// ---- Cluster-mode serving (router over N worker processes) ----

// ClusterRouter fronts a supervised fleet of drainnet-serve worker
// processes: least-loaded routing with transparent retry, priority-class
// admission control (interactive over bulk), crash respawn with backoff,
// SIGTERM drain propagation, and an optional adaptive batching
// controller retuning workers from live latency quantiles.
type ClusterRouter = cluster.Router

// RouterConfig configures a ClusterRouter: worker count, spawn function,
// admission policy, adaptive batching, retry and drain budgets.
type RouterConfig = cluster.Config

// WorkerState is one supervised worker slot's lifecycle position:
// starting, ready, draining, or down.
type WorkerState = cluster.WorkerState

// WorkerStatus is one worker's status snapshot (GET /v1/cluster).
type WorkerStatus = cluster.WorkerStatus

// AdmissionPolicy bounds each priority class's concurrent admitted
// requests; the bulk budget shrinks as interactive occupancy rises
// (AdmissionPolicy.EffectiveBulkLimit), so overload sheds bulk first.
type AdmissionPolicy = cluster.AdmissionPolicy

// AutoBatchConfig configures the adaptive batching controller; see
// cluster.NextTuning for the control law.
type AutoBatchConfig = cluster.AutoBatchConfig

// NewClusterRouter starts the router: spawns the fleet and begins
// supervision. Serve ClusterRouter.Handler over HTTP; drain with
// ClusterRouter.BeginDrain then ClusterRouter.Close.
func NewClusterRouter(cfg RouterConfig) (*ClusterRouter, error) { return cluster.New(cfg) }

// ExecWorkerStart returns a RouterConfig.Start that spawns bin (a
// drainnet-serve binary) with baseArgs plus per-slot -addr/-worker-id.
func ExecWorkerStart(bin string, baseArgs []string) cluster.StartFunc {
	return cluster.ExecStart(bin, baseArgs)
}

// ---- Telemetry (serving observability) ----

// Telemetry is the serving observability subsystem: a lock-free metrics
// registry, a span pipeline that assembles per-request timelines from
// typed events, and 1-in-N Chrome-trace sampling. Pass one to
// ServeOptions.Telemetry or PoolOptions.Telemetry; scrape it at
// /v1/metrics.
type Telemetry = telemetry.Telemetry

// TelemetryOptions configures the span pipeline: ring size, trace
// sampling rate, trace sink, and an optional shared registry.
type TelemetryOptions = telemetry.Options

// MetricsRegistry holds named counters, gauges, and histograms with
// Prometheus text and JSON exposition.
type MetricsRegistry = telemetry.Registry

// NewTelemetry starts a telemetry instance with a running span pipeline.
// Close it after the pool/server that uses it.
func NewTelemetry(opts TelemetryOptions) *Telemetry { return telemetry.New(opts) }

// TraceFileSink returns a trace sink writing each sampled request trace
// to dir/req-<id>.trace.json, for TelemetryOptions.TraceSink.
func TraceFileSink(dir string) func(*telemetry.Span, []byte) { return telemetry.FileSink(dir) }

// ---- Model persistence ----

// SaveModel writes a trained network's parameters to path.
func SaveModel(path string, net *Network) error { return train.SaveFile(path, net) }

// LoadModel restores parameters saved by SaveModel into a network of the
// same architecture.
func LoadModel(path string, net *Network) error { return train.LoadFile(path, net) }

// ---- Two-stage baseline (paper §8.1) ----

// BaselineDetector is the two-stage proposal+classify detector (Faster
// R-CNN stand-in).
type BaselineDetector = baseline.Detector

// NewBaselineDetector builds the two-stage baseline.
func NewBaselineDetector(rng *rand.Rand) (*BaselineDetector, error) {
	return baseline.New(rng, baseline.DefaultConfig())
}

# drainnet build/test/experiment targets. Stdlib-only Go; no external deps.

GO ?= go

.PHONY: all check build vet test test-race test-race-serve test-race-telemetry \
        test-race-fastpath test-race-ios test-race-sweep test-race-cluster \
        test-race-kernels test-race-dynamic test-race-nas smoke-sweep smoke-cluster \
        bench-cluster check-allocs \
        bench bench-serve bench-telemetry bench-inference bench-kernels \
        bench-ios bench-dynamic bench-nas test-short \
        bench-fast experiments experiments-train examples renders clean

all: build vet test

# The gate for every change: build, vet, full tests, race-checked passes
# over the concurrent paths (batcher + HTTP layer + telemetry + the
# inference fast path's shared worker pool + the IOS stage executor +
# the sweep job runner + the cluster router/supervisor), the sweep
# kill-and-resume smoke, the cluster kill-under-load smoke, and the
# zero-allocation regression guards on both serving forwards.
check: build vet test test-race-serve test-race-telemetry test-race-fastpath test-race-ios test-race-sweep test-race-cluster test-race-kernels test-race-dynamic test-race-nas smoke-sweep smoke-cluster check-allocs

test-race-serve:
	$(GO) test -race ./internal/serve/...

# Sweep jobs under the race detector: the chunked worker fan-out, the
# manager's drain path, and the checkpoint writer all run concurrently.
test-race-sweep:
	$(GO) test -race ./internal/sweep/

# Kill-and-resume smoke: drain a mid-flight sweep (fake backend and the
# real batcher pool), resume it, and require bit-identical results.
smoke-sweep:
	$(GO) test -race -count=1 -run 'TestKillAndResume|TestSweepSurvivesServerRestart' ./internal/sweep/ ./internal/serve/

# Cluster router, supervisor, admission and the adaptive batching
# controller under the race detector (in-process fake workers).
test-race-cluster:
	$(GO) test -race -count=1 ./internal/cluster/

# Cluster kill-under-load smoke against real processes: a router over 2
# drainnet-serve workers, SIGKILL one mid-load (zero interactive request
# loss required), then SIGTERM drain (exit 0, no orphan workers).
smoke-cluster:
	$(GO) build -o /tmp/drainnet-smoke-bin/drainnet-serve ./cmd/drainnet-serve
	$(GO) build -o /tmp/drainnet-smoke-bin/drainnet-router ./cmd/drainnet-router
	$(GO) run ./cmd/drainnet-load -smoke \
	    -router-bin /tmp/drainnet-smoke-bin/drainnet-router \
	    -serve-bin /tmp/drainnet-smoke-bin/drainnet-serve

# Full cluster protocol -> BENCH_cluster.json: uncontended baseline,
# 10x-capacity bulk overload (interactive p99 must hold within 2x,
# bulk must shed with 429+Retry-After), worker kill under load (zero
# loss + respawn), SIGTERM drain (exit 0, no orphans).
bench-cluster:
	$(GO) build -o /tmp/drainnet-bench-bin/drainnet-serve ./cmd/drainnet-serve
	$(GO) build -o /tmp/drainnet-bench-bin/drainnet-router ./cmd/drainnet-router
	$(GO) run ./cmd/drainnet-load -bench -out BENCH_cluster.json \
	    -router-bin /tmp/drainnet-bench-bin/drainnet-router \
	    -serve-bin /tmp/drainnet-bench-bin/drainnet-serve

test-race-telemetry:
	$(GO) test -race ./internal/telemetry/...

# Fast-path parity and worker-pool tests under the race detector: the
# packed kernels, arena reuse and Infer/Forward parity all dispatch
# through the shared pool.
test-race-fastpath:
	$(GO) test -race -run 'Infer|Parallel|Packed|Arena|Pool' ./internal/tensor/ ./internal/nn/ ./internal/model/

# Concurrent stage executor under the race detector with real pool
# workers: group fan-out, the RunInline pricing mode, and the scheduled
# serving path.
test-race-ios:
	GOMAXPROCS=4 $(GO) test -race -run 'TestScheduleExecutor|TestRunInline|TestMeasuredOracle|Scheduled' ./internal/tensor/ ./internal/nn/ ./internal/ios/ ./internal/model/

# Conv kernel variants (Winograd F(2,3), cache-blocked NCHWc, direct)
# and the per-layer autotuner under the race detector: the batch-1
# phases fan out over the shared worker pool.
test-race-kernels:
	GOMAXPROCS=4 $(GO) test -race -run 'Winograd|NCHWc|DirectConv|Kernel|TestTuned' ./internal/tensor/ ./internal/nn/ ./internal/model/

# Hardware-in-the-loop NAS under the race detector: the parallel search
# executor's worker fan-out, the shared measured evaluator (trained-net
# memo + bench lock), and the concurrent cost cache (in-process mutex +
# two-writer merge-on-save).
test-race-nas:
	GOMAXPROCS=4 $(GO) test -race -run 'TestSearch|TestMeasuredEvaluator|TestCostCache|TestEvolution|TestMutate|TestJointSpace' ./internal/nas/ ./internal/ios/

# Dynamic inference path under the race detector: the masked kernels'
# shared stats, the early-exit executor, the difficulty router inside
# Submit, and the sweep exit accounting all run concurrently.
test-race-dynamic:
	GOMAXPROCS=4 $(GO) test -race -run 'Mask|Dynamic|Exit' ./internal/tensor/ ./internal/nn/ ./internal/model/ ./internal/serve/... ./internal/sweep/

# Alloc-regression guard: every steady-state serving forward (the
# sequential fast path, the scheduled IOS executor, the quantized
# int8 path and the autotuned Winograd/NCHWc/direct kernel mix) must
# report exactly 0 allocs per run (testing.AllocsPerRun inside the
# tests).
check-allocs:
	$(GO) test -run 'TestInferSteadyStateZeroAlloc|TestScheduledSteadyStateZeroAlloc|TestQuantInferSteadyStateZeroAlloc|TestTunedInferSteadyStateZeroAlloc|TestDynamicInferSteadyStateZeroAlloc' -v ./internal/model/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

# Every table/figure benchmark, including the training ones (minutes).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Simulator-only benchmarks (seconds).
bench-fast:
	$(GO) test -short -bench=. -benchmem -benchtime=1x .

# CPU inference fast path vs the training-graph forward, batch 1 and 16.
# The worker pool sizes itself once per process, so each GOMAXPROCS
# setting runs in its own invocation; the rows merge into
# BENCH_inference.json keyed by gomaxprocs.
bench-inference:
	GOMAXPROCS=1 $(GO) run ./cmd/drainnet-bench -exp inference
	GOMAXPROCS=4 $(GO) run ./cmd/drainnet-bench -exp inference

# Per-algorithm conv microbenchmarks: im2col+GEMM vs Winograd F(2,3) vs
# cache-blocked NCHWc vs direct, per conv shape of the inference-bench
# model, merged into BENCH_kernels.json keyed by gomaxprocs.
bench-kernels:
	GOMAXPROCS=1 $(GO) run ./cmd/drainnet-bench -exp kernels
	GOMAXPROCS=4 $(GO) run ./cmd/drainnet-bench -exp kernels

# Profile-guided IOS scheduling on the real inference path: measured
# cost oracle -> optimized stage schedule -> concurrent executor vs the
# sequential fast path, single- and multi-core rows merged into
# BENCH_ios.json with a bitwise-determinism check per run.
bench-ios:
	GOMAXPROCS=1 $(GO) run ./cmd/drainnet-bench -exp ios
	GOMAXPROCS=4 $(GO) run ./cmd/drainnet-bench -exp ios

# Dynamic inference over realistic sweep traffic (majority empty tiles):
# static autotuned mix vs early-exit + spatial masking (+ int8 routing
# when the quant gate passes), per scenario, merged into
# BENCH_dynamic.json keyed by gomaxprocs. Trains a seconds-scale
# detector first so the accuracy gate is meaningful.
bench-dynamic:
	GOMAXPROCS=1 $(GO) run ./cmd/drainnet-bench -exp dynamic
	GOMAXPROCS=4 $(GO) run ./cmd/drainnet-bench -exp dynamic

# Hardware-in-the-loop NAS -> BENCH_nas.json: measured search over
# architecture x precision x kernel mode (real training + real executor
# latencies), run cold-sequential, warm-sequential and warm-parallel over
# one shared cost cache (winner must be bit-identical across all three),
# plus the synthetic executor-overlap scaling proof and the
# sim-vs-measured winner comparison at the serving batch.
bench-nas:
	$(GO) run ./cmd/drainnet-bench -exp nas

# Serving throughput: single-mutex path vs batched multi-replica pool.
bench-serve:
	$(GO) test -bench BenchmarkServeThroughput -benchtime 2s ./internal/serve/

# Telemetry hot-path overhead: counter/histogram recording and event
# emission must stay well under 100 ns/op, since every served request
# pays them.
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkRegistry|BenchmarkEmit' -benchmem ./internal/telemetry/

# Regenerate the paper's evaluation without training experiments.
experiments:
	$(GO) run ./cmd/drainnet-bench -exp all

# Regenerate everything, including Table 1 and the §8.1 baseline.
experiments-train:
	$(GO) run ./cmd/drainnet-bench -exp all -train

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/batch_tuning
	$(GO) run ./examples/watershed_pipeline
	$(GO) run ./examples/nas_search

renders:
	$(GO) run ./cmd/drainnet-export -out renders

clean:
	rm -rf renders
	$(GO) clean ./...

# drainnet build/test/experiment targets. Stdlib-only Go; no external deps.

GO ?= go

.PHONY: all check build vet test test-race test-race-serve test-race-telemetry \
        test-race-fastpath check-allocs bench bench-serve bench-telemetry \
        bench-inference test-short bench-fast experiments experiments-train \
        examples renders clean

all: build vet test

# The gate for every change: build, vet, full tests, race-checked passes
# over the concurrent paths (batcher + HTTP layer + telemetry + the
# inference fast path's shared worker pool), and the zero-allocation
# regression guard on the serving forward pass.
check: build vet test test-race-serve test-race-telemetry test-race-fastpath check-allocs

test-race-serve:
	$(GO) test -race ./internal/serve/...

test-race-telemetry:
	$(GO) test -race ./internal/telemetry/...

# Fast-path parity and worker-pool tests under the race detector: the
# packed kernels, arena reuse and Infer/Forward parity all dispatch
# through the shared pool.
test-race-fastpath:
	$(GO) test -race -run 'Infer|Parallel|Packed|Arena|Pool' ./internal/tensor/ ./internal/nn/ ./internal/model/

# Alloc-regression guard: the steady-state serving forward must report
# exactly 0 allocs per run (testing.AllocsPerRun inside the test).
check-allocs:
	$(GO) test -run TestInferSteadyStateZeroAlloc -v ./internal/model/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

# Every table/figure benchmark, including the training ones (minutes).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Simulator-only benchmarks (seconds).
bench-fast:
	$(GO) test -short -bench=. -benchmem -benchtime=1x .

# CPU inference fast path vs the training-graph forward, batch 1 and 16.
# Emits BENCH_inference.json for the cross-PR perf trajectory.
bench-inference:
	$(GO) run ./cmd/drainnet-bench -exp inference

# Serving throughput: single-mutex path vs batched multi-replica pool.
bench-serve:
	$(GO) test -bench BenchmarkServeThroughput -benchtime 2s ./internal/serve/

# Telemetry hot-path overhead: counter/histogram recording and event
# emission must stay well under 100 ns/op, since every served request
# pays them.
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkRegistry|BenchmarkEmit' -benchmem ./internal/telemetry/

# Regenerate the paper's evaluation without training experiments.
experiments:
	$(GO) run ./cmd/drainnet-bench -exp all

# Regenerate everything, including Table 1 and the §8.1 baseline.
experiments-train:
	$(GO) run ./cmd/drainnet-bench -exp all -train

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/batch_tuning
	$(GO) run ./examples/watershed_pipeline
	$(GO) run ./examples/nas_search

renders:
	$(GO) run ./cmd/drainnet-export -out renders

clean:
	rm -rf renders
	$(GO) clean ./...

package drainnet

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole pipeline through the exported
// façade only: generate → render → clip → train → evaluate → graph →
// schedule → measure → profile → breach.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Watershed and data.
	wc := DefaultWatershedConfig()
	wc.Rows, wc.Cols = 256, 256
	wc.RoadSpacing = 72
	wc.StreamThreshold = 120
	w, err := GenerateWatershed(wc)
	if err != nil {
		t.Fatal(err)
	}
	img := RenderOrthophoto(w)
	cc := DefaultClipConfig()
	cc.Size = 40
	cc.JitterFrac = 0.08
	cc.ClipsPerCrossing = 2
	ds, err := BuildDataset(w, img, cc)
	if err != nil {
		t.Fatal(err)
	}
	trainDS, testDS := ds.SplitByCrossing(0.8, 1)

	// Model and quick training.
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := BuildModel(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	opt := PaperTrainOptions()
	opt.Epochs = 3
	opt.BatchSize = 10
	opt.BoxWeight = 5
	if _, err := Fit(net, trainDS, opt); err != nil {
		t.Fatal(err)
	}
	ev := EvaluateDetector(net, testDS, 0.3)
	if ev.Positives == 0 {
		t.Fatal("no positives in test set")
	}

	// Detections decode.
	x, _ := testDS.Batch(0, 2)
	dets := Detect(net, x)
	if len(dets) != 2 {
		t.Fatalf("detections = %d", len(dets))
	}

	// Inference efficiency on the simulated GPU.
	g, err := BuildGraph(SPPNet2())
	if err != nil {
		t.Fatal(err)
	}
	dev := RTXA5500()
	seq := MeasureLatency(g, SequentialSchedule(g), dev, 1)
	sched, err := OptimizeSchedule(g, dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	optRes := MeasureLatency(g, sched, dev, 1)
	if optRes.LatencyNs >= seq.LatencyNs {
		t.Fatal("optimized schedule must beat sequential")
	}

	// Profiling.
	p := ProfileInference(dev, g, sched, 4)
	if p.Kernels.TotalNs <= 0 || p.API.TotalNs <= 0 {
		t.Fatal("empty profile")
	}

	// Hydrologic repair with the true crossings.
	before := ConnectivityScore(w.DEM, wc.StreamThreshold)
	repaired := w.DEM.Clone()
	BreachAll(repaired, w.Crossings, 4)
	after := ConnectivityScore(repaired, wc.StreamThreshold)
	if after <= before {
		t.Fatalf("breaching must improve connectivity: %v → %v", before, after)
	}
}

func TestPublicAPINotationRoundTrip(t *testing.T) {
	cfg, err := ParseModel("custom", "C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP5,2,1-F4096")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Notation() != SPPNet2().Notation() {
		t.Fatalf("parsed %q", cfg.Notation())
	}
}

func TestPublicAPINASSelection(t *testing.T) {
	space := DefaultSearchSpace()
	eval := FunctionalEvaluator(func(cfg ModelConfig) (float64, error) {
		// Proxy accuracy: favors the paper's trend (deeper SPP, wider FC).
		acc := 0.93
		if cfg.SPPLevels[0] >= 5 {
			acc += 0.02
		}
		if cfg.FCWidth >= 2048 {
			acc += 0.01
		}
		return acc, nil
	})
	trials := RandomSearch(space, eval, 25, 3)
	if len(trials) == 0 {
		t.Fatal("no trials")
	}
	sel, err := ResourceAwareSelect(trials, 0.94, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best() == nil {
		t.Fatal("no selection")
	}
	if sel.Best().Accuracy <= 0.94 {
		t.Fatal("selection violated the accuracy constraint")
	}
}

func TestPublicAPIMeasuredNAS(t *testing.T) {
	space := DefaultJointSearchSpace()
	if space.JointSize() != space.Size()*4 {
		t.Fatalf("joint size %d, want %d", space.JointSize(), space.Size()*4)
	}
	// A stub candidate evaluator exercises MeasuredSearch through the
	// public surface; the real MeasuredEvaluator is covered in-package.
	eval := func(c SearchCandidate) TrialResult {
		r := TrialResult{Candidate: c, Key: c.Key(), Accuracy: 0.95, Qualified: true}
		r.LatencyBNNs = float64(c.Arch.FCWidth)
		return r
	}
	res, err := MeasuredSearch(space, CandidateEvaluatorFunc(eval), SearchOptions{Strategy: "random", Trials: 8, Seed: 4, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Winner()
	if w == nil || len(res.Ranked()) == 0 {
		t.Fatal("measured search produced no winner")
	}

	// Winner persistence round-trips through the public API.
	arch := w.Candidate.Arch.Scaled(16).WithInput(4, 40)
	net, err := BuildModel(arch, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := SaveNASWinner(dir, *w, arch, net, 0.9, 16); err != nil {
		t.Fatal(err)
	}
	plan, err := LoadNASWinnerPlan(dir + "/plan.json")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Arch.Name != arch.Name || plan.Candidate.Key() != w.Key {
		t.Fatalf("plan round-trip mangled: %+v", plan)
	}
}

func TestPublicAPIExtensions(t *testing.T) {
	// Augmentation + dataset persistence.
	wc := DefaultWatershedConfig()
	wc.Rows, wc.Cols = 256, 256
	wc.RoadSpacing = 96
	wc.StreamThreshold = 120
	w, err := GenerateWatershed(wc)
	if err != nil {
		t.Fatal(err)
	}
	cc := DefaultClipConfig()
	cc.Size = 40
	ds, err := BuildDataset(w, RenderOrthophoto(w), cc)
	if err != nil {
		t.Fatal(err)
	}
	aug := Augment(ds, 2, 1)
	if len(aug.Samples) != 3*len(ds.Samples) {
		t.Fatalf("augment size %d", len(aug.Samples))
	}
	path := t.TempDir() + "/ds.gob"
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(ds.Samples) {
		t.Fatal("dataset round trip lost samples")
	}

	// Evolutionary NAS.
	eval := FunctionalEvaluator(func(cfg ModelConfig) (float64, error) { return 0.9, nil })
	if trials := EvolutionSearch(DefaultSearchSpace(), eval, DefaultEvolution()); len(trials) == 0 {
		t.Fatal("no evolution trials")
	}

	// Multi-GPU extension.
	g, err := BuildGraph(SPPNet2())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OptimizeMultiGPU(g, DefaultMultiGPU(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MakespanNs <= 0 {
		t.Fatal("empty multi-GPU plan")
	}

	// Model persistence.
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := BuildModel(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	mp := t.TempDir() + "/m.ckpt"
	if err := SaveModel(mp, net); err != nil {
		t.Fatal(err)
	}
	if err := LoadModel(mp, net); err != nil {
		t.Fatal(err)
	}
}

// TestPublicServingAPI drives the exported serving surface: a replica
// pool submitted to directly, and the /v1 HTTP server around it.
func TestPublicServingAPI(t *testing.T) {
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := BuildModel(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewReplicaPool(cfg, net, PoolOptions{Replicas: 2, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	x := NewTensor(1, 4, 40, 40)
	det, err := pool.Submit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if det.Score < 0 || det.Score > 1 {
		t.Fatalf("score %v", det.Score)
	}
	var st PoolStats = pool.Stats()
	if st.Served != 1 || st.Replicas != 2 {
		t.Fatalf("stats %+v", st)
	}

	net2, err := BuildModel(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewDetectorServer(cfg, net2, 0.5, ServeOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

// TestPublicSweepAPI runs a small checkpointed sweep job end to end
// through the exported façade: pool → manager → job → results → GeoJSON.
func TestPublicSweepAPI(t *testing.T) {
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := BuildModel(cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewReplicaPool(cfg, net, PoolOptions{Replicas: 1, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewSweepManager(SweepManagerOptions{
		Submit:        pool,
		Bands:         4,
		DefaultWindow: 40,
		Dir:           t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr.Close(); pool.Close() }()

	job, err := mgr.Start(SweepSpec{
		Rows: 96, Cols: 96, Seed: 5,
		Stride: 24, MinScore: 0.05,
		RoadSpacing: 48, StreamThreshold: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	var st SweepStatus = job.Status()
	if st.State != "done" || st.Windows == 0 || st.Inferred != st.Candidates {
		t.Fatalf("sweep status %+v", st)
	}
	var sum SweepScenarioSummary = st.PerScenario[0]
	if sum.Scenario != "baseline" || sum.Windows != st.Windows {
		t.Fatalf("scenario summary %+v", sum)
	}
	hits, next := job.Results(0, 1000)
	if next != -1 || len(hits) != st.Hits {
		t.Fatalf("results %d (next %d), status says %d", len(hits), next, st.Hits)
	}

	var pts []GeoPoint
	for _, h := range hits {
		var sh SweepHit = h
		pts = append(pts, GeoPoint{Row: sh.Row, Col: sh.Col, Score: sh.Score, Scenario: sh.Scenario})
	}
	var buf bytes.Buffer
	if err := WriteCrossingsGeoJSON(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"FeatureCollection"`)) {
		t.Fatalf("GeoJSON output %s", buf.String())
	}
}

func TestPublicQuantAPI(t *testing.T) {
	if _, err := ParsePrecision("int8"); err != nil {
		t.Fatal(err)
	}
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := BuildModel(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	ds := &Dataset{ClipSize: 40}
	for i := 0; i < 16; i++ {
		img := NewTensor(4, 40, 40)
		for j := range img.Data() {
			img.Data()[j] = rng.Float32()
		}
		s := Sample{Image: img}
		if i%2 == 0 {
			s.Target = DetectionTarget{HasObject: true, CX: 0.5, CY: 0.5, W: 0.2, H: 0.2}
		}
		ds.Samples = append(ds.Samples, s)
	}
	dec, err := QuantizeGated(net, ds, QuantOptions{MaxAPDrop: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Enabled || dec.Net == nil {
		t.Fatalf("gate with epsilon 1 should enable int8: %+v", dec)
	}
	// A quantized network serves through the same pool API.
	pool, err := NewReplicaPool(cfg, dec.Net, PoolOptions{Replicas: 1, MaxBatch: 2, Precision: PrecisionInt8})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Submit(context.Background(), NewTensor(1, 4, 40, 40)); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Precision; got != string(PrecisionInt8) {
		t.Fatalf("pool precision = %q, want int8", got)
	}
}

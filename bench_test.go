package drainnet

import (
	"testing"

	"drainnet/internal/experiments"
)

// The benchmarks below regenerate every data artifact in the paper's
// evaluation (DESIGN.md §4). Each reports the artifact's headline numbers
// as custom benchmark metrics and logs the full rendered table with -v.
// Absolute values come from the calibrated GPU simulator (Tables 2–3,
// Figures 6–8) or from training on the synthetic watershed (Table 1); the
// paper-vs-measured record lives in EXPERIMENTS.md.

// BenchmarkTable1AveragePrecision trains the four Table 1 candidates and
// reports their test AP. This is a training benchmark: expect minutes,
// not microseconds.
func BenchmarkTable1AveragePrecision(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark; skipped in -short")
	}
	dc := experiments.FastData()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(dc)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		for _, row := range res.Rows {
			b.ReportMetric(row.AP*100, "AP%_"+metricName(row.Model))
		}
	}
}

// BenchmarkTable2InferenceLatency measures sequential vs IOS-optimized
// latency at batch 1 for every candidate.
func BenchmarkTable2InferenceLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.SeqMs, "seq_ms_"+metricName(row.Model))
				b.ReportMetric(row.OptMs, "opt_ms_"+metricName(row.Model))
			}
		}
	}
}

// BenchmarkFigure6BatchEfficiency sweeps batch sizes 1..64 on SPP-Net #2.
func BenchmarkFigure6BatchEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.OptUsImg, "opt_us_per_img_b"+itoa(row.Batch))
			}
		}
	}
}

// BenchmarkFigure7MemoryProfile reports per-image GPU memop timing across
// batch sizes (the paper's value stabilizes at 19168 ns).
func BenchmarkFigure7MemoryProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.PerImageNs, "memops_ns_per_img_b"+itoa(row.Batch))
			}
		}
	}
}

// BenchmarkFigure8APIUsage reports CUDA API time shares across batch sizes.
func BenchmarkFigure8APIUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.LibLoadPct, "libload_pct_b"+itoa(row.Batch))
				b.ReportMetric(row.SyncPct, "sync_pct_b"+itoa(row.Batch))
			}
		}
	}
}

// BenchmarkTable3KernelBreakdown reports kernel-class time shares across
// batch sizes.
func BenchmarkTable3KernelBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.MatMulPct, "matmul_pct_b"+itoa(row.Batch))
				b.ReportMetric(row.ConvPct, "conv_pct_b"+itoa(row.Batch))
				b.ReportMetric(row.PoolingPct, "pool_pct_b"+itoa(row.Batch))
			}
		}
	}
}

// BenchmarkBaselineComparison trains the §8.1 two-stage baseline and the
// SPP-Net detector on the same data. Training benchmark: expect minutes.
func BenchmarkBaselineComparison(b *testing.B) {
	if testing.Short() {
		b.Skip("training benchmark; skipped in -short")
	}
	dc := experiments.FastData()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Baseline(dc)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + res.Render())
		b.ReportMetric(res.SPPNetAccuracy*100, "sppnet_acc%")
		b.ReportMetric(res.BaselineAccuracy*100, "baseline_acc%")
		b.ReportMetric(res.SPPNetIoU, "sppnet_iou")
		b.ReportMetric(res.BaselineIoU, "baseline_iou")
	}
}

// BenchmarkAblationSchedulers compares sequential, greedy, and IOS DP
// schedules across batch sizes (DESIGN.md §5.1).
func BenchmarkAblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSchedulers()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkAblationSPPLevels sweeps pyramid depth at batch 4 to expose
// how branch count drives the IOS speedup (DESIGN.md §5.2).
func BenchmarkAblationSPPLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSPPLevels(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.SpeedupX, "speedup_x_levels"+itoa(len(row.Levels)))
			}
		}
	}
}

// BenchmarkAblationConvAlgo times the tensor engine's two convolution
// implementations (DESIGN.md §5.3).
func BenchmarkAblationConvAlgo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblationConvAlgo()
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.PerOpUs, "us_per_op_"+metricName(row.Algo))
			}
		}
	}
}

// BenchmarkExtensionMultiGPU runs the future-work HIOS-style multi-GPU
// placement sweep (paper §4.1 defers multi-GPU NAS/scheduling).
func BenchmarkExtensionMultiGPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExtensionMultiGPU(16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				b.ReportMetric(row.SpeedupX, "speedup_x_"+metricName(row.Graph)+"_g"+itoa(row.GPUs))
			}
		}
	}
}

// BenchmarkThroughputJob simulates the §5.1 motivation: a 10k-image
// survey job, naive batch-1 pipeline vs batched IOS schedules.
func BenchmarkThroughputJob(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Throughput(10000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Render())
			best := res.Best()
			b.ReportMetric(best.ImagesPerSec, "best_images_per_sec")
			b.ReportMetric(best.SpeedupVsB1, "best_speedup_x")
		}
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '#':
			// drop
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// drainnet-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	drainnet-bench -exp table2             # one experiment
//	drainnet-bench -exp all                # everything except training
//	drainnet-bench -exp all -train         # everything, including Table 1
//	drainnet-bench -exp table1 -tiny       # seconds-scale training config
//
// Experiments: table1, table2, table3, fig6, fig7, fig8, baseline,
// ablation-sched, ablation-spp, ablation-conv, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"drainnet/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1,table2,table3,fig6,fig7,fig8,baseline,ablation-sched,ablation-spp,ablation-conv,inference,kernels,ios,dynamic,nas,all)")
	tiny := flag.Bool("tiny", false, "use the seconds-scale training config")
	withTrain := flag.Bool("train", false, "include training experiments (table1, baseline) under -exp all")
	nasTrials := flag.Int("nas-trials", 10, "measured-NAS trials for -exp nas")
	nasParallel := flag.Int("nas-parallel", 4, "measured-NAS parallel workers for -exp nas")
	nasThreshold := flag.Float64("nas-threshold", 0.30, "measured-NAS accuracy constraint A for -exp nas")
	nasCache := flag.String("nas-cache", "nas-costs.json", "measured-NAS cost-cache file for -exp nas")
	flag.Parse()

	dc := experiments.FastData()
	if *tiny {
		dc = experiments.TinyData()
	}

	run := func(id string) error {
		switch id {
		case "table1":
			res, err := experiments.Table1(dc)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "table2":
			res, err := experiments.Table2()
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "table3":
			res, err := experiments.Table3()
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig6":
			res, err := experiments.Figure6()
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig7":
			res, err := experiments.Figure7()
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "fig8":
			res, err := experiments.Figure8()
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "baseline":
			res, err := experiments.Baseline(dc)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "ablation-sched":
			res, err := experiments.AblationSchedulers()
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "ablation-spp":
			res, err := experiments.AblationSPPLevels(4)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "ablation-conv":
			fmt.Println(experiments.AblationConvAlgo().Render())
		case "census":
			res, err := experiments.SpaceCensus(1)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "throughput":
			res, err := experiments.Throughput(10000)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "multigpu":
			res, err := experiments.ExtensionMultiGPU(16)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "inference":
			res, err := experiments.InferenceBench("BENCH_inference.json")
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "kernels":
			res, err := experiments.KernelsBench("BENCH_kernels.json")
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "ios":
			res, err := experiments.IOSBench("BENCH_ios.json")
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "dynamic":
			res, err := experiments.DynamicBench("BENCH_dynamic.json")
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		case "nas":
			res, err := experiments.NASHardwareBench("BENCH_nas.json", experiments.NASBenchConfig{
				Trials: *nasTrials, Parallel: *nasParallel, Threshold: *nasThreshold,
				Seed: 42, CachePath: *nasCache,
			})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table2", "fig6", "fig7", "fig8", "table3", "ablation-sched", "ablation-spp", "ablation-conv", "multigpu", "throughput", "census"}
		if *withTrain {
			ids = append([]string{"table1"}, append(ids, "baseline")...)
		}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "drainnet-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// drainnet-train trains one SPP-Net architecture on the synthetic
// watershed dataset and reports test AP, per the paper's §6.1 protocol.
//
// Usage:
//
//	drainnet-train -model sppnet2
//	drainnet-train -notation "C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP5,2,1-F4096"
//	drainnet-train -model original -epochs 30 -scale 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"drainnet/internal/experiments"
	"drainnet/internal/model"
	"drainnet/internal/train"
)

func main() {
	name := flag.String("model", "sppnet2", "preset: original, sppnet1, sppnet2, sppnet3")
	notation := flag.String("notation", "", "explicit layer notation (overrides -model)")
	epochs := flag.Int("epochs", 0, "training epochs (0 = config default)")
	scale := flag.Int("scale", 0, "width scale divisor (0 = config default)")
	tiny := flag.Bool("tiny", false, "seconds-scale data config")
	iou := flag.Float64("iou", 0, "AP IoU threshold (0 = config default)")
	save := flag.String("save", "", "write the trained checkpoint to this path")
	verbose := flag.Bool("v", false, "per-epoch loss")
	flag.Parse()

	dc := experiments.FastData()
	if *tiny {
		dc = experiments.TinyData()
	}
	if *epochs > 0 {
		dc.Epochs = *epochs
	}
	if *scale > 0 {
		dc.WidthScale = *scale
	}
	if *iou > 0 {
		dc.IoUThreshold = *iou
	}

	var cfg model.Config
	var err error
	if *notation != "" {
		cfg, err = model.ParseNotation("custom", *notation)
		if err != nil {
			fatal(err)
		}
	} else {
		switch strings.ToLower(*name) {
		case "original":
			cfg = model.OriginalSPPNet()
		case "sppnet1":
			cfg = model.SPPNet1()
		case "sppnet2":
			cfg = model.SPPNet2()
		case "sppnet3":
			cfg = model.SPPNet3()
		default:
			fatal(fmt.Errorf("unknown model %q", *name))
		}
	}

	fmt.Printf("model: %s  (%s)\n", cfg.Name, cfg.Notation())
	trainDS, testDS, err := experiments.BuildData(dc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test samples (%d / %d positives)\n",
		len(trainDS.Samples), len(testDS.Samples), trainDS.Positives(), testDS.Positives())

	scaled := cfg.Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
	net, err := scaled.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		fatal(err)
	}
	opt := train.PaperOptions()
	opt.Epochs = dc.Epochs
	opt.BatchSize = dc.BatchSize
	opt.BoxWeight = 5
	opt.LRStepEpoch = dc.Epochs * 2 / 3
	opt.LRStepGamma = 0.1
	opt.Verbose = *verbose
	if _, err := train.Fit(net, trainDS, opt); err != nil {
		fatal(err)
	}
	ev := train.Evaluate(net, testDS, dc.IoUThreshold)
	fmt.Printf("test AP@%.1f = %.2f%%   mean IoU = %.3f   (%d positives)\n",
		dc.IoUThreshold, ev.AP*100, ev.MeanIoU, ev.Positives)
	if *save != "" {
		if err := train.SaveFile(*save, net); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainnet-train:", err)
	os.Exit(1)
}

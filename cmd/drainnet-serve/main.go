// drainnet-serve trains (or loads) a drainage-crossing detector and
// serves it over the versioned /v1 HTTP API:
//
//	POST   /v1/detect             {"bands":4,"size":100,"pixels":[...]} → hit JSON
//	POST   /v1/detect/batch       {"items":[{...},{...}]} → positional results
//	POST   /v1/sweep              start an async watershed sweep job
//	GET    /v1/sweep              list sweep jobs
//	GET    /v1/sweep/{id}         sweep progress, phase, clips/sec
//	GET    /v1/sweep/{id}/results cursor-paginated crossing hits
//	DELETE /v1/sweep/{id}         cancel a sweep job
//	GET    /v1/model              served architecture and parameter count
//	GET    /v1/stats              queue depth, batch histogram, latency quantiles
//	GET    /v1/metrics            Prometheus text exposition (?format=json)
//	GET    /v1/trace              most recent sampled request as Chrome trace
//	GET    /v1/healthz            readiness (503 while draining)
//	POST   /v1/control/batching   retune effective max-batch/max-wait live
//	GET    /healthz               liveness
//	GET    /debug/pprof/*         Go profiling endpoints (only with -pprof)
//
// (The legacy unversioned /detect and /model aliases answer 410 Gone.)
//
// Sweep jobs checkpoint to -sweep-dir after every chunk and survive a
// graceful drain: restart the server with the same -sweep-dir and the
// unfinished jobs resume bit-identically.
//
// Inference is batched across a pool of independent model replicas;
// -max-batch and -max-wait tune the §6.4 latency/throughput trade-off.
// Telemetry is on by default: serving counters and phase histograms are
// always scrapeable at /v1/metrics, and -trace-sample N additionally
// exports every N-th request's span as a Chrome trace.
//
// Usage:
//
//	drainnet-serve -addr :8080                 # train quickly, then serve
//	drainnet-serve -ckpt model.ckpt            # load a saved checkpoint
//	drainnet-serve -replicas 4 -max-batch 32 -max-wait 2ms -queue 256
//	drainnet-serve -trace-sample 100 -trace-dir traces/ -pprof
//	drainnet-serve -ios -ios-cache costs.json   # IOS-scheduled replicas
//	drainnet-serve -precision int8 -quant-max-ap-drop 0.01   # accuracy-gated int8
//	drainnet-serve -autotune -kernel-cache kern.json         # tuned conv kernels
//	drainnet-serve -dynamic -precision auto                  # dynamic inference
//	drainnet-serve -nas-plan nas-out/plan.json               # serve a searched winner
//
// -precision int8 quantizes the detector (per-channel int8 weights,
// affine int8 activations) and refuses to start unless the held-out AP
// drop stays within -quant-max-ap-drop; -precision auto falls back to
// fp32 instead of refusing. /v1/model reports the precision actually
// served.
//
// -autotune measures every conv kernel variant (im2col+GEMM, Winograd
// F(2,3), cache-blocked NCHWc, direct — plus int8 when the quant gate
// passed) per layer and batch bucket on this machine and serves the
// fastest mix whose held-out AP drop stays within -quant-max-ap-drop.
// /v1/model reports the per-layer choices and the drainnet_kernel_choice
// gauge exports them.
//
// -dynamic serves the accuracy-gated dynamic inference path: a
// calibrated early-exit head answers confident-negative clips before the
// SPP+FC tail, spatially-masked conv kernels skip low-energy output-row
// bands, and (when the int8 gate passed via -precision int8/auto) a
// difficulty router sends easy clips to an int8 replica path. A gate
// ladder demotes masking first, then the exit, until the held-out AP
// drop fits within -quant-max-ap-drop. The main path serves fp32;
// /v1/model reports the plan and /v1/stats the live exit/mask/route
// rates. Does not compose with -ios.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"drainnet/internal/experiments"
	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/nas"
	"drainnet/internal/nn"
	"drainnet/internal/serve"
	"drainnet/internal/telemetry"
	"drainnet/internal/terrain"
	"drainnet/internal/train"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ckpt := flag.String("ckpt", "", "checkpoint to load (skips training)")
	threshold := flag.Float64("threshold", 0.7, "objectness confidence threshold")
	replicas := flag.Int("replicas", 0, "model replicas serving concurrently (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 8, "max clips coalesced into one forward pass")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "max time a request waits for its batch to fill")
	queue := flag.Int("queue", 64, "bounded request queue size (full queue → 429)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout (queue + inference)")
	telemetryOn := flag.Bool("telemetry", true, "run the span pipeline feeding /v1/metrics phase histograms")
	traceSample := flag.Int("trace-sample", 0, "export every N-th request as a Chrome trace (0 = off)")
	traceDir := flag.String("trace-dir", "", "also write sampled traces to this directory (req-<id>.trace.json)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof endpoints")
	iosOn := flag.Bool("ios", false, "serve with IOS-scheduled inference: benchmark this machine's operators and run the measured-cost-optimal stage schedule on every replica")
	iosCache := flag.String("ios-cache", "", "operator cost-cache file for -ios (loaded if present, saved after measuring; startups with a warm cache skip re-measurement)")
	precisionFlag := flag.String("precision", "fp32", "serving precision: fp32, int8 (refuse to start if the accuracy gate fails) or auto (fall back to fp32)")
	quantMaxDrop := flag.Float64("quant-max-ap-drop", 0.01, "accuracy gate epsilon: largest tolerated AP drop (fp32 AP − int8 AP) on the held-out split before int8 is refused")
	autotune := flag.Bool("autotune", false, "measure every conv kernel variant (im2col, winograd, nchwc, direct, int8 when gated on) per layer and batch bucket on this machine and serve the fastest accuracy-gated mix; shares -quant-max-ap-drop as the gate epsilon")
	kernelCache := flag.String("kernel-cache", "", "kernel measurement cache file for -autotune (loaded if present, saved after tuning); may be the same file as -ios-cache — the keys are shared")
	dynamicOn := flag.Bool("dynamic", false, "serve the accuracy-gated dynamic inference path (early-exit negatives, spatial masking, and — with a passed int8 gate — per-request precision routing); shares -quant-max-ap-drop as the gate epsilon")
	nasPlan := flag.String("nas-plan", "", "serve a drainnet-nas winner: plan.json written by drainnet-nas -out; sets the architecture, loads the sibling checkpoint, and applies the plan's precision and kernel mode (explicit -ckpt/-precision/-autotune flags still win)")
	sweepDir := flag.String("sweep-dir", "", "checkpoint directory for /v1/sweep jobs (empty = jobs die with the process); unfinished jobs in it resume at startup")
	sweepConc := flag.Int("sweep-concurrency", 0, "max in-flight pool submissions per sweep job (0 = default 16)")
	workerID := flag.Int("worker-id", -1, "cluster worker slot id; labels every metric with worker=<id> (-1 = standalone)")
	flag.Parse()

	precision, err := model.ParsePrecision(*precisionFlag)
	if err != nil {
		log.Fatal(err)
	}

	dc := experiments.TinyData()
	cfg := model.SPPNet2().Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)

	// A NAS winner plan replaces the default architecture with the
	// searched one and carries its own checkpoint, precision and kernel
	// mode; flags the operator set explicitly still win.
	if *nasPlan != "" {
		plan, err := nas.LoadWinnerPlan(*nasPlan)
		if err != nil {
			log.Fatal(err)
		}
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		cfg = plan.Arch
		if !explicit["ckpt"] {
			*ckpt = plan.ResolveCheckpoint(*nasPlan)
		}
		if !explicit["precision"] {
			precision = plan.Candidate.Precision
		}
		if !explicit["autotune"] {
			*autotune = plan.Candidate.Kernels == nas.KernelModeTuned
		}
		fmt.Printf("level=info msg=nas_plan arch=%q precision=%s kernels=%s accuracy=%.4f threshold=%.2f measured_b1_ms=%.4f measured_b%d_ms=%.4f\n",
			cfg.Name, precision, plan.Candidate.Kernels, plan.Accuracy, plan.Threshold,
			plan.LatencyB1Ns/1e6, plan.MaxBatch, plan.LatencyBNNs/1e6)
	}
	net, err := cfg.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		log.Fatal(err)
	}
	// calibDS is the held-out split the quantization accuracy gate scores
	// both precisions on; the training path reuses its test split.
	var calibDS *terrain.Dataset
	if *ckpt != "" {
		if err := train.LoadFile(*ckpt, net); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded checkpoint %s\n", *ckpt)
	} else {
		fmt.Println("training a detector (use -ckpt to skip)...")
		trainDS, testDS, err := experiments.BuildData(dc)
		if err != nil {
			log.Fatal(err)
		}
		calibDS = testDS
		opt := train.PaperOptions()
		opt.Epochs = dc.Epochs
		opt.BatchSize = dc.BatchSize
		opt.BoxWeight = 5
		opt.LRStepEpoch = dc.Epochs * 2 / 3
		opt.LRStepGamma = 0.1
		if _, err := train.Fit(net, trainDS, opt); err != nil {
			log.Fatal(err)
		}
		ev := train.Evaluate(net, testDS, dc.IoUThreshold)
		fmt.Printf("trained: AP@%.1f = %.1f%%\n", dc.IoUThreshold, ev.AP*100)
	}

	// Quantize before kernel autotuning and schedule optimization, so
	// both price the operators that will actually serve (int8 ops carry
	// their own cost-cache keys).
	served := model.PrecisionFP32
	fp32Net := net
	var qnet *nn.Sequential
	var qdec *model.QuantDecision
	if precision != model.PrecisionFP32 {
		if calibDS == nil {
			if _, calibDS, err = experiments.BuildData(dc); err != nil {
				log.Fatal(err)
			}
		}
		dec, err := model.QuantizeGated(net, calibDS, model.QuantOptions{MaxAPDrop: *quantMaxDrop})
		if err != nil {
			log.Fatal(err)
		}
		qdec = dec
		fmt.Printf("level=info msg=quant_gate requested=%s quantized_layers=%d fallback_layers=%d fp32_ap=%.4f int8_ap=%.4f ap_drop=%.4f epsilon=%.4f enabled=%t\n",
			precision, dec.Report.Quantized, dec.Report.Fallback,
			dec.FP32AP, dec.Int8AP, dec.Drop, dec.Epsilon, dec.Enabled)
		switch {
		case dec.Enabled:
			qnet = dec.Net
			net = dec.Net
			served = model.PrecisionInt8
		case precision == model.PrecisionInt8:
			log.Fatalf("int8 requested but the accuracy gate failed (AP drop %.4f > epsilon %.4f); raise -quant-max-ap-drop or use -precision auto to fall back",
				dec.Drop, dec.Epsilon)
		default:
			fmt.Println(`level=info msg=quant_fallback reason="accuracy gate failed" serving=fp32`)
		}
	}

	// Per-layer kernel autotuning: measure im2col vs winograd vs nchwc vs
	// direct (vs int8 when the quant gate passed) for every conv layer
	// and serve the fastest mix that keeps the held-out AP drop within
	// epsilon. Runs before IOS planning so the schedule oracle prices the
	// kernels that will actually serve.
	var kplan *model.KernelPlan
	if *autotune {
		if calibDS == nil {
			if _, calibDS, err = experiments.BuildData(dc); err != nil {
				log.Fatal(err)
			}
		}
		kcache := ios.NewCostCache()
		if *kernelCache != "" {
			if kcache, err = ios.LoadCostCache(*kernelCache); err != nil {
				log.Fatal(err)
			}
		}
		before := kcache.Len()
		kplan, err = model.AutotuneKernels(fp32Net, qnet, []int{cfg.InBands, cfg.InSize, cfg.InSize}, calibDS,
			model.KernelOptions{Batches: []int{1, *maxBatch}, MaxAPDrop: *quantMaxDrop, Cache: kcache})
		if err != nil {
			log.Fatal(err)
		}
		if *kernelCache != "" && kplan.Cache.Len() != before {
			if err := kplan.Cache.Save(*kernelCache); err != nil {
				log.Printf("level=warn msg=\"kernel cache not saved\" err=%v", err)
			}
		}
		net = kplan.Served
		// The served net is pure fp32 exactly when the plan handed the
		// fp32 net back; any other assembly carries int8 modules.
		served = model.PrecisionFP32
		if kplan.Served != fp32Net {
			served = model.PrecisionInt8
		}
		fmt.Printf("level=info msg=kernel_autotune mix=%q demotions=%d fp32_ap=%.4f tuned_ap=%.4f ap_drop=%.4f epsilon=%.4f measured=%d cache_entries=%d cache=%q\n",
			kplan.Mix(), kplan.Demotions, kplan.FP32AP, kplan.TunedAP, kplan.Drop, kplan.Epsilon, kplan.Cache.Len()-before, kplan.Cache.Len(), *kernelCache)
	}

	// Dynamic inference: calibrate the early-exit head, mask thresholds,
	// and (when int8 is gated on) the difficulty router, walking the gate
	// ladder until the held-out AP drop fits epsilon. The main path
	// serves fp32 — with an int8 quant swap above, the int8 net moves to
	// the routed replica path instead of replacing the main one.
	var dyn *serve.Dynamic
	if *dynamicOn {
		if *iosOn {
			log.Fatal("-dynamic does not compose with -ios schedules")
		}
		if calibDS == nil {
			if _, calibDS, err = experiments.BuildData(dc); err != nil {
				log.Fatal(err)
			}
		}
		net = fp32Net
		served = model.PrecisionFP32
		dopts := model.DynamicOptions{MaxAPDrop: *quantMaxDrop, Int8: qdec}
		dplan, err := model.PlanDynamic(net, calibDS, dopts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level=info msg=dynamic_plan exit=%t mask=%t router=%t demotions=%d fp32_ap=%.4f dynamic_ap=%.4f ap_drop=%.4f epsilon=%.4f calib_exit_rate=%.3f calib_mask_rate=%.3f\n",
			dplan.ExitEnabled, dplan.MaskEnabled, dplan.RouterEnabled, dplan.Demotions,
			dplan.FP32AP, dplan.DynamicAP, dplan.Drop, dplan.Epsilon, dplan.ExitRate, dplan.MaskRate)
		dyn = &serve.Dynamic{Spec: dplan}
		if dplan.RouterEnabled && qnet != nil {
			dyn.Int8Net = qnet
		}
	}

	// One-time weight packing (im2col panels, winograd transforms, NCHWc
	// blocks, int8 quantization) for replica 0, parallelized across
	// layers; batcher clones share the packed weights.
	packStart := time.Now()
	nn.PrepareInferenceParallel(net)
	packMS := float64(time.Since(packStart)) / float64(time.Millisecond)

	var tel *telemetry.Telemetry
	if *telemetryOn {
		topts := telemetry.Options{SampleEvery: *traceSample}
		if *traceDir != "" {
			topts.TraceSink = telemetry.FileSink(*traceDir)
		}
		if *workerID >= 0 {
			topts.ConstLabels = map[string]string{"worker": strconv.Itoa(*workerID)}
		}
		tel = telemetry.New(topts)
	} else {
		tel = telemetry.NewDisabled()
	}

	var plan *model.SchedulePlan
	if *iosOn {
		cache := ios.NewCostCache()
		if *iosCache != "" {
			if cache, err = ios.LoadCostCache(*iosCache); err != nil {
				log.Fatal(err)
			}
		}
		before := cache.Len()
		plan, err = model.OptimizeSchedules(cfg, net, *maxBatch, cache)
		if err != nil {
			log.Fatal(err)
		}
		if *iosCache != "" && plan.Cache.Len() != before {
			if err := plan.Cache.Save(*iosCache); err != nil {
				log.Printf("level=warn msg=\"cost cache not saved\" err=%v", err)
			}
		}
		// The chosen schedules, one line each and greppable against the
		// bench harness output (same Compact rendering).
		fmt.Printf("level=info msg=ios_plan batch1_stages=%d batchN_stages=%d measured_ops=%d cache=%q\n",
			len(plan.Batch1.Stages), len(plan.BatchN.Stages), plan.Cache.Len(), *iosCache)
		fmt.Printf("level=info msg=schedule batch=1 plan=%q\n", plan.Batch1.Compact())
		fmt.Printf("level=info msg=schedule batch=%d plan=%q\n", *maxBatch, plan.BatchN.Compact())
	}

	srv, err := serve.NewWithOptions(cfg, net, *threshold, serve.Options{
		Replicas:         *replicas,
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		QueueSize:        *queue,
		RequestTimeout:   *timeout,
		Telemetry:        tel,
		EnablePprof:      *pprofOn,
		Plan:             plan,
		Precision:        served,
		Kernels:          kplan,
		SweepDir:         *sweepDir,
		SweepResume:      *sweepDir != "",
		SweepConcurrency: *sweepConc,
		Dynamic:          dyn,
	})
	if err != nil {
		log.Fatal(err)
	}
	popts := srv.Pool().Options()
	// One structured line with the full resolved configuration, so a log
	// scraper (or a human) sees every serving knob in one place.
	fmt.Printf("level=info msg=serving model=%q addr=%s gomaxprocs=%d precision=%s autotune=%t dynamic=%t pack_ms=%.1f replicas=%d max_batch=%d max_wait=%v queue=%d timeout=%v telemetry=%t trace_sample=%d trace_dir=%q pprof=%t ios=%t sweep_dir=%q sweep_concurrency=%d worker_id=%d\n",
		cfg.Name, *addr, runtime.GOMAXPROCS(0), served, *autotune, *dynamicOn, packMS, popts.Replicas, popts.MaxBatch, popts.MaxWait, popts.QueueSize,
		*timeout, *telemetryOn, *traceSample, *traceDir, *pprofOn, *iosOn, *sweepDir, *sweepConc, *workerID)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("level=info msg=draining signal=%v\n", s)
	}

	// Flip readiness first so a router stops sending new work, stop
	// accepting connections, finish in-flight HTTP exchanges, then drain
	// the inference pool (queued requests are still served).
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Close()
	st := srv.Pool().Stats()
	fmt.Printf("level=info msg=drained served=%d batches=%d mean_batch=%.2f rejected=%d canceled=%d\n",
		st.Served, st.Batches, st.MeanBatch, st.Rejected, st.Canceled)
}

// drainnet-serve trains (or loads) a drainage-crossing detector and
// serves it over HTTP:
//
//	POST /detect  {"bands":4,"size":100,"pixels":[...]} → detection JSON
//	GET  /model   served architecture and parameter count
//	GET  /healthz liveness
//
// Usage:
//
//	drainnet-serve -addr :8080                 # train quickly, then serve
//	drainnet-serve -ckpt model.ckpt            # load a saved checkpoint
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"

	"drainnet/internal/experiments"
	"drainnet/internal/model"
	"drainnet/internal/serve"
	"drainnet/internal/train"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ckpt := flag.String("ckpt", "", "checkpoint to load (skips training)")
	threshold := flag.Float64("threshold", 0.7, "objectness confidence threshold")
	flag.Parse()

	dc := experiments.TinyData()
	cfg := model.SPPNet2().Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
	net, err := cfg.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		log.Fatal(err)
	}
	if *ckpt != "" {
		if err := train.LoadFile(*ckpt, net); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded checkpoint %s\n", *ckpt)
	} else {
		fmt.Println("training a detector (use -ckpt to skip)...")
		trainDS, testDS, err := experiments.BuildData(dc)
		if err != nil {
			log.Fatal(err)
		}
		opt := train.PaperOptions()
		opt.Epochs = dc.Epochs
		opt.BatchSize = dc.BatchSize
		opt.BoxWeight = 5
		opt.LRStepEpoch = dc.Epochs * 2 / 3
		opt.LRStepGamma = 0.1
		if _, err := train.Fit(net, trainDS, opt); err != nil {
			log.Fatal(err)
		}
		ev := train.Evaluate(net, testDS, dc.IoUThreshold)
		fmt.Printf("trained: AP@%.1f = %.1f%%\n", dc.IoUThreshold, ev.AP*100)
	}

	srv := serve.New(cfg, net, *threshold)
	fmt.Printf("serving %s on %s\n", cfg.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

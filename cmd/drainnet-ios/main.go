// drainnet-ios optimizes a model's execution schedule with the IOS
// dynamic program and reports sequential vs optimized latency, like the
// paper's IOS_Model.py artifact.
//
// Two cost oracles are available. The default simulated oracle prices
// stages on the modeled GPU and reports simulated latencies. The
// measured oracle builds the real network, benchmarks each operator on
// this machine (memoized in -cost-cache), optimizes against those
// wall-clock costs, and reports *measured* CPU latencies of the
// sequential fast path vs the scheduled executor.
//
// Usage:
//
//	drainnet-ios -model sppnet2 -batch 1
//	drainnet-ios -model sppnet2 -batches 1,2,4,8,16,32,64
//	drainnet-ios -model original -show-schedule
//	drainnet-ios -oracle measured -scale 8 -batches 1,16 -cost-cache costs.json
//	drainnet-ios -oracle measured -scale 8 -emit-schedule sched.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"runtime"

	"drainnet/internal/experiments"
	"drainnet/internal/graph"
	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

func main() {
	name := flag.String("model", "sppnet2", "preset: original, sppnet1, sppnet2, sppnet3")
	notation := flag.String("notation", "", "explicit layer notation (overrides -model)")
	batch := flag.Int("batch", 1, "batch size")
	batches := flag.String("batches", "", "comma-separated batch sweep (overrides -batch)")
	show := flag.Bool("show-schedule", false, "print the optimized stage/group structure")
	oracleKind := flag.String("oracle", "sim", "cost oracle: sim (GPU simulator) or measured (wall-clock operator timings on this machine)")
	scale := flag.Int("scale", 1, "width scale divisor (1 = paper widths; larger = thinner model, CPU-friendly)")
	costCache := flag.String("cost-cache", "", "measured-oracle cost cache file (loaded if present, saved after measuring)")
	emit := flag.String("emit-schedule", "", "write the optimized schedule as JSON to this file (sweeps append .b<batch>)")
	flag.Parse()

	var cfg model.Config
	var err error
	if *notation != "" {
		cfg, err = model.ParseNotation("custom", *notation)
	} else {
		switch strings.ToLower(*name) {
		case "original":
			cfg = model.OriginalSPPNet()
		case "sppnet1":
			cfg = model.SPPNet1()
		case "sppnet2":
			cfg = model.SPPNet2()
		case "sppnet3":
			cfg = model.SPPNet3()
		default:
			err = fmt.Errorf("unknown model %q", *name)
		}
	}
	if err != nil {
		fatal(err)
	}
	cfg = cfg.Scaled(*scale)
	g, err := cfg.BuildScaledGraph()
	if err != nil {
		fatal(err)
	}

	var sweep []int
	if *batches != "" {
		for _, f := range strings.Split(*batches, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad batch %q", f))
			}
			sweep = append(sweep, v)
		}
	} else {
		sweep = []int{*batch}
	}

	emitFile := func(sched *ios.Schedule, b int) {
		if *emit == "" {
			return
		}
		path := *emit
		if len(sweep) > 1 {
			path = fmt.Sprintf("%s.b%d", path, b)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := ios.SaveSchedule(f, sched); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	switch *oracleKind {
	case "sim":
		runSim(cfg, g, sweep, *show, emitFile)
	case "measured":
		runMeasured(cfg, g, sweep, *show, *costCache, emitFile)
	default:
		fatal(fmt.Errorf("unknown oracle %q (want sim or measured)", *oracleKind))
	}
}

// runSim prices and replays schedules on the simulated GPU (the paper's
// offline study).
func runSim(cfg model.Config, g *graph.Graph, sweep []int, show bool, emit func(*ios.Schedule, int)) {
	dev := experiments.Device()
	rt := ios.NewRuntime(dev)
	oracle := ios.NewSimOracle(dev)
	fmt.Printf("model: %s  (%s, scale %d)\ndevice: %s\n", cfg.Name, cfg.Notation(), cfg.WidthScale, dev.Name)
	fmt.Printf("%6s %14s %14s %9s %16s\n", "batch", "seq ms", "IOS ms", "gain", "IOS µs/image")
	for _, b := range sweep {
		seq := rt.Measure(g, ios.SequentialSchedule(g), b)
		sched, err := ios.Optimize(g, oracle, b)
		if err != nil {
			fatal(err)
		}
		opt := rt.Measure(g, sched, b)
		fmt.Printf("%6d %14.3f %14.3f %8.2fx %16.1f\n",
			b, seq.LatencyNs/1e6, opt.LatencyNs/1e6, seq.LatencyNs/opt.LatencyNs, opt.EfficiencyNsPerImage/1e3)
		if show {
			fmt.Print(sched.String())
		}
		emit(sched, b)
	}
}

// runMeasured builds the real network, optimizes against wall-clock
// operator costs, and reports measured CPU latencies: the sequential
// zero-alloc fast path vs the scheduled executor.
func runMeasured(cfg model.Config, g *graph.Graph, sweep []int, show bool, cachePath string, emit func(*ios.Schedule, int)) {
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		fatal(err)
	}
	nn.PrepareInference(net)
	prog, err := nn.CompileGraph(net, g)
	if err != nil {
		fatal(err)
	}
	cache := ios.NewCostCache()
	if cachePath != "" {
		if cache, err = ios.LoadCostCache(cachePath); err != nil {
			fatal(err)
		}
	}
	before := cache.Len()
	oracle := ios.NewMeasuredOracle(prog, cache)

	fmt.Printf("model: %s  (%s, scale %d)\ndevice: this machine (GOMAXPROCS=%d, pool workers=%d)\n",
		cfg.Name, cfg.Notation(), cfg.WidthScale, runtime.GOMAXPROCS(0), tensor.PoolWorkers())
	fmt.Printf("%6s %14s %14s %9s %16s %8s\n", "batch", "seq ms", "IOS ms", "gain", "IOS µs/image", "stages")
	arena := tensor.NewArena()
	for _, b := range sweep {
		sched, err := ios.Optimize(g, oracle, b)
		if err != nil {
			fatal(err)
		}
		if err := oracle.Err(); err != nil {
			fatal(err)
		}
		exec, err := nn.NewScheduleExecutor(prog, sched)
		if err != nil {
			fatal(err)
		}
		x := tensor.New(b, cfg.InBands, cfg.InSize, cfg.InSize)
		fillRandom(x, int64(b))
		seqNs := timeNs(func() {
			arena.Reset()
			net.Infer(x, arena)
		})
		iosNs := timeNs(func() {
			arena.Reset()
			exec.Infer(x, arena)
		})
		fmt.Printf("%6d %14.3f %14.3f %8.2fx %16.1f %8d\n",
			b, seqNs/1e6, iosNs/1e6, seqNs/iosNs, iosNs/float64(b)/1e3, len(sched.Stages))
		if show {
			fmt.Print(sched.String())
		}
		emit(sched, b)
	}
	if cachePath != "" && cache.Len() != before {
		if err := cache.Save(cachePath); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d operator measurements to %s\n", cache.Len(), cachePath)
	}
}

// timeNs reports the trimmed-mean wall-clock nanoseconds of f over a
// short warmup + sample loop.
func timeNs(f func()) float64 {
	for i := 0; i < 2; i++ {
		f()
	}
	samples := make([]float64, 8)
	for i := range samples {
		start := time.Now()
		f()
		samples[i] = float64(time.Since(start))
	}
	sort.Float64s(samples)
	kept := samples[2:6]
	total := 0.0
	for _, v := range kept {
		total += v
	}
	return total / float64(len(kept))
}

func fillRandom(t *tensor.Tensor, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	d := t.Data()
	for i := range d {
		d[i] = rng.Float32()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainnet-ios:", err)
	os.Exit(1)
}

// drainnet-ios optimizes a model's execution schedule with the IOS
// dynamic program and reports sequential vs optimized latency, like the
// paper's IOS_Model.py artifact.
//
// Usage:
//
//	drainnet-ios -model sppnet2 -batch 1
//	drainnet-ios -model sppnet2 -batches 1,2,4,8,16,32,64
//	drainnet-ios -model original -show-schedule
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"drainnet/internal/experiments"
	"drainnet/internal/ios"
	"drainnet/internal/model"
)

func main() {
	name := flag.String("model", "sppnet2", "preset: original, sppnet1, sppnet2, sppnet3")
	notation := flag.String("notation", "", "explicit layer notation (overrides -model)")
	batch := flag.Int("batch", 1, "batch size")
	batches := flag.String("batches", "", "comma-separated batch sweep (overrides -batch)")
	show := flag.Bool("show-schedule", false, "print the optimized stage/group structure")
	flag.Parse()

	var cfg model.Config
	var err error
	if *notation != "" {
		cfg, err = model.ParseNotation("custom", *notation)
	} else {
		switch strings.ToLower(*name) {
		case "original":
			cfg = model.OriginalSPPNet()
		case "sppnet1":
			cfg = model.SPPNet1()
		case "sppnet2":
			cfg = model.SPPNet2()
		case "sppnet3":
			cfg = model.SPPNet3()
		default:
			err = fmt.Errorf("unknown model %q", *name)
		}
	}
	if err != nil {
		fatal(err)
	}
	g, err := cfg.BuildGraph()
	if err != nil {
		fatal(err)
	}
	dev := experiments.Device()
	rt := ios.NewRuntime(dev)
	oracle := ios.NewSimOracle(dev)

	var sweep []int
	if *batches != "" {
		for _, f := range strings.Split(*batches, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad batch %q", f))
			}
			sweep = append(sweep, v)
		}
	} else {
		sweep = []int{*batch}
	}

	fmt.Printf("model: %s  (%s)\ndevice: %s\n", cfg.Name, cfg.Notation(), dev.Name)
	fmt.Printf("%6s %14s %14s %9s %16s\n", "batch", "seq ms", "IOS ms", "gain", "IOS µs/image")
	for _, b := range sweep {
		seq := rt.Measure(g, ios.SequentialSchedule(g), b)
		sched, err := ios.Optimize(g, oracle, b)
		if err != nil {
			fatal(err)
		}
		opt := rt.Measure(g, sched, b)
		fmt.Printf("%6d %14.3f %14.3f %8.2fx %16.1f\n",
			b, seq.LatencyNs/1e6, opt.LatencyNs/1e6, seq.LatencyNs/opt.LatencyNs, opt.EfficiencyNsPerImage/1e3)
		if *show {
			fmt.Print(sched.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainnet-ios:", err)
	os.Exit(1)
}

// drainnet-report regenerates every simulator-backed experiment and
// writes a single markdown results file — the one-command artifact for
// checking this reproduction against the paper.
//
// Usage:
//
//	drainnet-report                  # writes RESULTS.md
//	drainnet-report -out results.md
//	drainnet-report -train           # also run Table 1 and the baseline (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drainnet/internal/experiments"
)

func main() {
	out := flag.String("out", "RESULTS.md", "output markdown path")
	withTrain := flag.Bool("train", false, "include training experiments (Table 1, §8.1 baseline)")
	flag.Parse()

	var b strings.Builder
	b.WriteString("# drainnet results\n\n")
	fmt.Fprintf(&b, "Generated %s. Paper-vs-measured commentary: EXPERIMENTS.md.\n\n",
		time.Now().Format(time.RFC3339))

	section := func(title, body string) {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", title, body)
	}

	if *withTrain {
		fmt.Println("running Table 1 (training 4 models, minutes)...")
		if t1, err := experiments.Table1(experiments.FastData()); err == nil {
			section("Table 1 — average precision", t1.Render())
		} else {
			fmt.Fprintln(os.Stderr, "table1:", err)
		}
	}

	run := []struct {
		title string
		fn    func() (interface{ Render() string }, error)
	}{
		{"Table 2 — sequential vs IOS latency", func() (interface{ Render() string }, error) { return experiments.Table2() }},
		{"Figure 6 — batch-size efficiency", func() (interface{ Render() string }, error) { return experiments.Figure6() }},
		{"Figure 7 — GPU memops timing", func() (interface{ Render() string }, error) { return experiments.Figure7() }},
		{"Figure 8 — CUDA API usage", func() (interface{ Render() string }, error) { return experiments.Figure8() }},
		{"Table 3 — kernel-class breakdown", func() (interface{ Render() string }, error) { return experiments.Table3() }},
		{"Ablation — schedulers", func() (interface{ Render() string }, error) { return experiments.AblationSchedulers() }},
		{"Ablation — SPP pyramid depth", func() (interface{ Render() string }, error) { return experiments.AblationSPPLevels(4) }},
		{"Ablation — convolution algorithm", func() (interface{ Render() string }, error) { return experiments.AblationConvAlgo(), nil }},
		{"Derived — survey throughput", func() (interface{ Render() string }, error) { return experiments.Throughput(10000) }},
		{"Derived — search-space latency census", func() (interface{ Render() string }, error) { return experiments.SpaceCensus(1) }},
		{"Extension — multi-GPU placement", func() (interface{ Render() string }, error) { return experiments.ExtensionMultiGPU(16) }},
	}
	for _, r := range run {
		res, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drainnet-report: %s: %v\n", r.title, err)
			os.Exit(1)
		}
		section(r.title, res.Render())
	}

	if *withTrain {
		fmt.Println("running §8.1 baseline (training, minutes)...")
		if bl, err := experiments.Baseline(experiments.FastData()); err == nil {
			section("§8.1 — two-stage baseline", bl.Render())
		} else {
			fmt.Fprintln(os.Stderr, "baseline:", err)
		}
	}

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "drainnet-report:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

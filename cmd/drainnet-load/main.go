// drainnet-load is the cluster-mode load harness: closed-loop and
// open-loop generators plus two scripted protocols that prove the
// router's contract end to end, against real drainnet-router and
// drainnet-serve processes.
//
//	drainnet-load -smoke  -router-bin ./drainnet-router -serve-bin ./drainnet-serve
//	drainnet-load -bench  -router-bin ./drainnet-router -serve-bin ./drainnet-serve -out BENCH_cluster.json
//	drainnet-load -target http://127.0.0.1:9090 -conc 8 -duration 10s
//
// -smoke (seconds, CI-sized): start a router over 2 workers, run
// closed-loop interactive load, SIGKILL one worker mid-load, and assert
// zero interactive request loss; then SIGTERM the router and assert it
// exits 0 with no orphan worker processes.
//
// -bench (the full protocol, writes -out):
//
//  1. baseline — closed-loop interactive load on an idle cluster →
//     uncontended p50/p99 and the capacity estimate (served rps).
//  2. overload — open-loop bulk flood at ≥10× measured capacity with a
//     steady interactive trickle → assert interactive p99 ≤ 2× the
//     uncontended p99 and that bulk sheds with 429 + Retry-After.
//  3. kill — SIGKILL a worker under closed-loop interactive load →
//     assert zero failed interactive requests and that the supervisor
//     respawns the slot.
//  4. drain — SIGTERM the router → assert exit code 0 and that every
//     worker pid is gone (no orphans).
//
// Workers start from a minted untrained checkpoint (detection quality
// is irrelevant to routing behaviour), so the whole bench is seconds,
// not minutes. Any assertion failure makes the harness exit non-zero,
// so `make smoke-cluster` / `make bench-cluster` fail loudly in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"drainnet/internal/cluster"
	"drainnet/internal/experiments"
	"drainnet/internal/model"
	"drainnet/internal/provenance"
	"drainnet/internal/train"
)

func main() {
	smoke := flag.Bool("smoke", false, "run the CI-sized kill/drain smoke protocol")
	bench := flag.Bool("bench", false, "run the full baseline/overload/kill/drain protocol and write -out")
	out := flag.String("out", "BENCH_cluster.json", "bench result file (with -bench)")
	routerBin := flag.String("router-bin", "drainnet-router", "path to the drainnet-router binary")
	serveBin := flag.String("serve-bin", "drainnet-serve", "path to the drainnet-serve binary")
	workers := flag.Int("workers", 0, "worker count (0 = 2 for -smoke, 3 for -bench)")
	target := flag.String("target", "", "load an existing router at this base URL instead of spawning a cluster")
	conc := flag.Int("conc", 4, "closed-loop concurrency (with -target)")
	duration := flag.Duration("duration", 10*time.Second, "load duration (with -target)")
	flag.Parse()

	switch {
	case *target != "":
		res := closedLoop(*target, false, *conc, *duration, nil)
		fmt.Printf("requests=%d ok=%d errors=%d rps=%.1f p50=%.2fms p99=%.2fms\n",
			res.Requests, res.OK, res.Requests-res.OK, res.RPS, res.P50ms, res.P99ms)
	case *smoke:
		if err := runSmoke(*routerBin, *serveBin, pick(*workers, 2)); err != nil {
			log.Fatalf("smoke FAILED: %v", err)
		}
		fmt.Println("smoke-cluster PASS")
	case *bench:
		if err := runBench(*routerBin, *serveBin, pick(*workers, 3), *out); err != nil {
			log.Fatalf("bench FAILED: %v", err)
		}
	default:
		log.Fatal("one of -smoke, -bench or -target is required")
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// ---------------------------------------------------------------------------
// cluster under test

// testCluster is a spawned drainnet-router process plus what the
// protocols need to poke it: its base URL and its process handle.
type testCluster struct {
	cmd  *exec.Cmd
	base string
	hc   *http.Client
}

// mintCheckpoint writes an untrained checkpoint matching the exact
// config drainnet-serve builds (TinyData geometry), so workers skip
// training and come ready in milliseconds.
func mintCheckpoint(dir string) (string, error) {
	dc := experiments.TinyData()
	cfg := model.SPPNet2().Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
	net, err := cfg.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "load.ckpt")
	return path, train.SaveFile(path, net)
}

func startCluster(routerBin, serveBin string, workers int, dir string) (*testCluster, error) {
	ckpt, err := mintCheckpoint(dir)
	if err != nil {
		return nil, fmt.Errorf("mint checkpoint: %w", err)
	}
	port, err := freePort()
	if err != nil {
		return nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(routerBin,
		"-addr", addr,
		"-workers", fmt.Sprint(workers),
		"-serve-bin", serveBin,
		"-worker-args", "-ckpt "+ckpt+" -replicas 2 -max-batch 8 -max-wait 1ms -queue 128",
		"-scrape-interval", "100ms",
		"-ready-timeout", "60s",
		"-drain-timeout", "20s",
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	tc := &testCluster{cmd: cmd, base: "http://" + addr, hc: &http.Client{Timeout: 30 * time.Second}}
	if err := tc.awaitReady(workers, 90*time.Second); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	return tc, nil
}

func (tc *testCluster) awaitReady(workers int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, err := tc.status(); err == nil && st.Ready >= workers {
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("cluster not ready (%d workers) within %v", workers, timeout)
}

func (tc *testCluster) status() (cluster.ClusterStatus, error) {
	var st cluster.ClusterStatus
	resp, err := tc.hc.Get(tc.base + "/v1/cluster")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// workerPids returns the live worker pids, keyed by slot id.
func (tc *testCluster) workerPids() (map[int]int, error) {
	st, err := tc.status()
	if err != nil {
		return nil, err
	}
	pids := make(map[int]int)
	for _, w := range st.Workers {
		if w.State == "ready" && w.Pid > 0 {
			pids[w.ID] = w.Pid
		}
	}
	return pids, nil
}

// drain SIGTERMs the router and reports its exit error (nil = exit 0)
// plus how many of the given worker pids survived (orphans).
func (tc *testCluster) drain(pids map[int]int) (exitErr error, orphans int) {
	_ = tc.cmd.Process.Signal(syscall.SIGTERM)
	exitErr = tc.cmd.Wait()
	// A just-killed process can linger a beat; give the fleet a moment.
	time.Sleep(300 * time.Millisecond)
	for _, pid := range pids {
		if processAlive(pid) {
			orphans++
		}
	}
	return exitErr, orphans
}

func processAlive(pid int) bool {
	// Signal 0 probes existence; ESRCH means gone. A zombie still
	// "exists" but the router reaps its children before exiting, so a
	// positive here is a real orphan.
	return syscall.Kill(pid, 0) == nil
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	return port, l.Close()
}

// ---------------------------------------------------------------------------
// load generators

var detectBody = func() []byte {
	dc := experiments.TinyData()
	sz := dc.ClipSize
	px := make([]float32, 4*sz*sz)
	rng := rand.New(rand.NewSource(7))
	for i := range px {
		px[i] = rng.Float32()
	}
	b, _ := json.Marshal(map[string]any{"bands": 4, "size": sz, "pixels": px})
	return b
}()

// loadResult aggregates one generator run.
type loadResult struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed_429"`
	Errors   int     `json:"errors"`
	RPS      float64 `json:"rps"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
	// RetryAfterMissing counts 429 responses lacking a Retry-After
	// header (the contract says every shed response carries one).
	RetryAfterMissing int `json:"retry_after_missing"`
}

type collector struct {
	mu        sync.Mutex
	lat       []float64
	ok        int64
	shed      int64
	errs      int64
	noRetryAt int64
}

func (c *collector) hit(base string, bulk bool, hc *http.Client) {
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/detect", strings.NewReader(string(detectBody)))
	req.Header.Set("Content-Type", "application/json")
	if bulk {
		req.Header.Set(cluster.ClassHeader, "bulk")
	}
	start := time.Now()
	resp, err := hc.Do(req)
	if err != nil {
		atomic.AddInt64(&c.errs, 1)
		return
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		atomic.AddInt64(&c.ok, 1)
		sec := time.Since(start).Seconds()
		c.mu.Lock()
		c.lat = append(c.lat, sec*1e3)
		c.mu.Unlock()
	case resp.StatusCode == http.StatusTooManyRequests:
		atomic.AddInt64(&c.shed, 1)
		if resp.Header.Get("Retry-After") == "" {
			atomic.AddInt64(&c.noRetryAt, 1)
		}
	default:
		atomic.AddInt64(&c.errs, 1)
	}
}

func (c *collector) result(elapsed time.Duration) loadResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Float64s(c.lat)
	res := loadResult{
		OK:                int(c.ok),
		Shed:              int(c.shed),
		Errors:            int(c.errs),
		RetryAfterMissing: int(c.noRetryAt),
	}
	res.Requests = res.OK + res.Shed + res.Errors
	if elapsed > 0 {
		res.RPS = float64(res.OK) / elapsed.Seconds()
	}
	res.P50ms = percentile(c.lat, 0.50)
	res.P99ms = percentile(c.lat, 0.99)
	return res
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// closedLoop runs conc workers each issuing requests back to back for
// d. midLoad, if non-nil, fires once roughly a third of the way in —
// the kill phases hook it to SIGKILL a worker while requests are live.
func closedLoop(base string, bulk bool, conc int, d time.Duration, midLoad func()) loadResult {
	c := &collector{}
	hc := &http.Client{Timeout: 30 * time.Second}
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	if midLoad != nil {
		time.AfterFunc(d/3, midLoad)
	}
	start := time.Now()
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				c.hit(base, bulk, hc)
			}
		}()
	}
	wg.Wait()
	return c.result(time.Since(start))
}

// openLoop fires requests at a fixed rate regardless of completions for
// d — the overload generator: arrivals don't slow down when the server
// does, which is exactly what makes unshed overload collapse queues.
func openLoop(base string, bulk bool, rps float64, d time.Duration) loadResult {
	c := &collector{}
	hc := &http.Client{Timeout: 30 * time.Second, Transport: &http.Transport{MaxIdleConnsPerHost: 512}}
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	stopAt := time.Now().Add(d)
	var wg sync.WaitGroup
	start := time.Now()
	for now := range tick.C {
		if now.After(stopAt) {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.hit(base, bulk, hc)
		}()
	}
	wg.Wait()
	return c.result(time.Since(start))
}

// ---------------------------------------------------------------------------
// protocols

func runSmoke(routerBin, serveBin string, workers int) error {
	dir, err := os.MkdirTemp("", "drainnet-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	tc, err := startCluster(routerBin, serveBin, workers, dir)
	if err != nil {
		return err
	}
	pids, err := tc.workerPids()
	if err != nil || len(pids) == 0 {
		return fmt.Errorf("no worker pids: %v", err)
	}
	victim := pids[workers-1]

	res := closedLoop(tc.base, false, 4, 6*time.Second, func() {
		fmt.Printf("level=info msg=smoke_kill pid=%d\n", victim)
		_ = syscall.Kill(victim, syscall.SIGKILL)
	})
	fmt.Printf("level=info msg=smoke_load requests=%d ok=%d shed=%d errors=%d p99_ms=%.2f\n",
		res.Requests, res.OK, res.Shed, res.Errors, res.P99ms)
	if res.Errors > 0 {
		return fmt.Errorf("%d interactive requests lost across the worker kill (want 0)", res.Errors)
	}
	if res.Requests == 0 {
		return fmt.Errorf("no load generated")
	}
	// The killed slot must respawn before we call the supervisor healthy.
	if err := tc.awaitReady(workers, 30*time.Second); err != nil {
		return fmt.Errorf("killed worker did not respawn: %w", err)
	}
	pids, _ = tc.workerPids()
	exitErr, orphans := tc.drain(pids)
	if exitErr != nil {
		return fmt.Errorf("router exited non-zero on drain: %v", exitErr)
	}
	if orphans > 0 {
		return fmt.Errorf("%d orphan worker processes after drain (want 0)", orphans)
	}
	return nil
}

// BenchReport is the BENCH_cluster.json shape.
type BenchReport struct {
	GeneratedAt string `json:"generated_at"`
	Workers     int    `json:"workers"`

	Baseline loadResult `json:"baseline"`

	Overload struct {
		CapacityRPS float64    `json:"capacity_rps"`
		BulkRPS     float64    `json:"bulk_offered_rps"`
		Interactive loadResult `json:"interactive"`
		Bulk        loadResult `json:"bulk"`
	} `json:"overload"`

	Kill struct {
		VictimPid int        `json:"victim_pid"`
		Load      loadResult `json:"load"`
		Respawned bool       `json:"respawned"`
	} `json:"kill"`

	Drain struct {
		ExitZero bool    `json:"exit_zero"`
		Orphans  int     `json:"orphans"`
		Ms       float64 `json:"ms"`
	} `json:"drain"`

	Pass       bool     `json:"pass"`
	Violations []string `json:"violations"`

	Provenance *provenance.Stamp `json:"provenance,omitempty"`
}

func runBench(routerBin, serveBin string, workers int, out string) error {
	dir, err := os.MkdirTemp("", "drainnet-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	tc, err := startCluster(routerBin, serveBin, workers, dir)
	if err != nil {
		return err
	}
	rep := BenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Workers:     workers,
		Provenance:  provenance.Collect(),
	}

	// Phase 1: uncontended closed-loop baseline → p99 SLO anchor and the
	// capacity estimate the overload phase multiplies.
	fmt.Println("level=info msg=bench_phase phase=baseline")
	rep.Baseline = closedLoop(tc.base, false, 2*workers, 8*time.Second, nil)
	fmt.Printf("level=info msg=baseline rps=%.1f p50_ms=%.2f p99_ms=%.2f\n",
		rep.Baseline.RPS, rep.Baseline.P50ms, rep.Baseline.P99ms)

	// Phase 2: bulk flood at ≥10× capacity, interactive trickle riding
	// along. Admission must shed bulk (429 + Retry-After) while the
	// interactive p99 stays within 2× of uncontended.
	capacity := rep.Baseline.RPS
	if capacity <= 0 {
		capacity = 10
	}
	bulkRPS := 10 * capacity
	interRPS := capacity / 5
	if interRPS < 2 {
		interRPS = 2
	}
	rep.Overload.CapacityRPS = capacity
	rep.Overload.BulkRPS = bulkRPS
	fmt.Printf("level=info msg=bench_phase phase=overload capacity_rps=%.1f bulk_rps=%.1f interactive_rps=%.1f\n",
		capacity, bulkRPS, interRPS)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); rep.Overload.Bulk = openLoop(tc.base, true, bulkRPS, 10*time.Second) }()
	go func() { defer wg.Done(); rep.Overload.Interactive = openLoop(tc.base, false, interRPS, 10*time.Second) }()
	wg.Wait()
	fmt.Printf("level=info msg=overload interactive_p99_ms=%.2f interactive_ok=%d bulk_ok=%d bulk_shed=%d\n",
		rep.Overload.Interactive.P99ms, rep.Overload.Interactive.OK, rep.Overload.Bulk.OK, rep.Overload.Bulk.Shed)

	// Phase 3: SIGKILL a worker under interactive load; retries must hide
	// it and the supervisor must respawn the slot.
	pids, err := tc.workerPids()
	if err != nil || len(pids) == 0 {
		return fmt.Errorf("no worker pids before kill phase: %v", err)
	}
	victim := pids[workers-1]
	rep.Kill.VictimPid = victim
	fmt.Printf("level=info msg=bench_phase phase=kill victim_pid=%d\n", victim)
	rep.Kill.Load = closedLoop(tc.base, false, 4, 8*time.Second, func() {
		_ = syscall.Kill(victim, syscall.SIGKILL)
	})
	rep.Kill.Respawned = tc.awaitReady(workers, 30*time.Second) == nil

	// Phase 4: SIGTERM drain — exit 0, no orphans.
	fmt.Println("level=info msg=bench_phase phase=drain")
	pids, _ = tc.workerPids()
	drainStart := time.Now()
	exitErr, orphans := tc.drain(pids)
	rep.Drain.ExitZero = exitErr == nil
	rep.Drain.Orphans = orphans
	rep.Drain.Ms = float64(time.Since(drainStart)) / float64(time.Millisecond)

	// Verdict.
	v := &rep.Violations
	if rep.Overload.Interactive.P99ms > 2*rep.Baseline.P99ms {
		*v = append(*v, fmt.Sprintf("interactive p99 under overload %.2fms > 2× uncontended %.2fms",
			rep.Overload.Interactive.P99ms, rep.Baseline.P99ms))
	}
	if rep.Overload.Bulk.Shed == 0 {
		*v = append(*v, "bulk traffic was never shed at 10× capacity")
	}
	if rep.Overload.Bulk.RetryAfterMissing > 0 {
		*v = append(*v, fmt.Sprintf("%d shed responses lacked Retry-After", rep.Overload.Bulk.RetryAfterMissing))
	}
	if rep.Kill.Load.Errors > 0 {
		*v = append(*v, fmt.Sprintf("%d interactive requests lost across the worker kill", rep.Kill.Load.Errors))
	}
	if !rep.Kill.Respawned {
		*v = append(*v, "killed worker was not respawned")
	}
	if !rep.Drain.ExitZero {
		*v = append(*v, fmt.Sprintf("router exit non-zero on drain: %v", exitErr))
	}
	if rep.Drain.Orphans > 0 {
		*v = append(*v, fmt.Sprintf("%d orphan workers after drain", rep.Drain.Orphans))
	}
	rep.Pass = len(rep.Violations) == 0

	data, _ := json.MarshalIndent(rep, "", "  ")
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("level=info msg=bench_done pass=%t out=%s violations=%d\n", rep.Pass, out, len(rep.Violations))
	if !rep.Pass {
		return fmt.Errorf("bench violations: %s", strings.Join(rep.Violations, "; "))
	}
	return nil
}

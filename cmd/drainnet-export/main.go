// drainnet-export renders the synthetic study area to PNG files:
// true-color and color-infrared orthophoto composites, DEM hillshades
// before and after embankments, and a crossing overlay.
//
// Usage:
//
//	drainnet-export -out ./renders
//	drainnet-export -rows 384 -spacing 96 -out ./renders
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"drainnet/internal/export"
	"drainnet/internal/terrain"
)

func main() {
	rows := flag.Int("rows", 512, "raster rows")
	cols := flag.Int("cols", 512, "raster cols")
	spacing := flag.Int("spacing", 128, "road spacing in cells")
	seed := flag.Int64("seed", 2022, "generation seed")
	out := flag.String("out", "renders", "output directory")
	flag.Parse()

	cfg := terrain.DefaultConfig()
	cfg.Rows, cfg.Cols = *rows, *cols
	cfg.RoadSpacing = *spacing
	cfg.Seed = *seed
	w, err := terrain.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	img := terrain.Render(w)

	files := map[string]func() error{
		"orthophoto_rgb.png": func() error {
			return export.SavePNG(filepath.Join(*out, "orthophoto_rgb.png"), export.TrueColor(img))
		},
		"orthophoto_cir.png": func() error {
			return export.SavePNG(filepath.Join(*out, "orthophoto_cir.png"), export.ColorInfrared(img))
		},
		"hillshade_base.png": func() error {
			return export.SavePNG(filepath.Join(*out, "hillshade_base.png"), export.Hillshade(w.BaseDEM))
		},
		"hillshade_dammed.png": func() error {
			return export.SavePNG(filepath.Join(*out, "hillshade_dammed.png"), export.Hillshade(w.DEM))
		},
		"crossings_overlay.png": func() error {
			base := export.TrueColor(img)
			return export.SavePNG(filepath.Join(*out, "crossings_overlay.png"),
				export.Overlay(base, w.Crossings, nil, 12))
		},
		"dem.asc": func() error {
			f, err := os.Create(filepath.Join(*out, "dem.asc"))
			if err != nil {
				return err
			}
			if err := export.WriteASCIIGrid(f, w.DEM); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		},
	}
	for name, write := range files {
		if err := write(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(*out, name))
	}
	fmt.Printf("%d drainage crossings rendered\n", len(w.Crossings))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainnet-export:", err)
	os.Exit(1)
}

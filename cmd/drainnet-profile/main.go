// drainnet-profile produces an nsys-style report for one profiled
// inference on the simulated GPU: memory-operation timing, CUDA API time
// shares, and the kernel-class breakdown (the paper's §7 analysis).
//
// Usage:
//
//	drainnet-profile -model sppnet2 -batch 16
//	drainnet-profile -model sppnet2 -batch 64 -trace   # raw event trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"drainnet/internal/experiments"
	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/profiler"
)

func main() {
	name := flag.String("model", "sppnet2", "preset: original, sppnet1, sppnet2, sppnet3")
	batch := flag.Int("batch", 1, "batch size")
	trace := flag.Bool("trace", false, "dump the raw event timeline")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON file (open at ui.perfetto.dev)")
	stats := flag.Bool("stats", false, "print per-kernel statistics (nsys --stats style)")
	seq := flag.Bool("sequential", false, "profile the sequential schedule instead of IOS")
	flag.Parse()

	var cfg model.Config
	switch strings.ToLower(*name) {
	case "original":
		cfg = model.OriginalSPPNet()
	case "sppnet1":
		cfg = model.SPPNet1()
	case "sppnet2":
		cfg = model.SPPNet2()
	case "sppnet3":
		cfg = model.SPPNet3()
	default:
		fatal(fmt.Errorf("unknown model %q", *name))
	}
	g, err := cfg.BuildGraph()
	if err != nil {
		fatal(err)
	}
	dev := experiments.Device()
	var sched *ios.Schedule
	if *seq {
		sched = ios.SequentialSchedule(g)
	} else {
		sched, err = ios.Optimize(g, ios.NewSimOracle(dev), *batch)
		if err != nil {
			fatal(err)
		}
	}
	p := profiler.Run(dev, g, sched, *batch)
	fmt.Printf("model: %s   schedule: %s   device: %s\n", cfg.Name, sched.Name, dev.Name)
	fmt.Print(p.Render())
	if *stats {
		fmt.Print(profiler.KernelStats(p.Events).Render())
	}
	if *trace {
		fmt.Println("event timeline:")
		for _, e := range p.Events {
			fmt.Printf("  %12.0f ns  +%10.0f ns  %-22s %-10s stream=%d\n",
				e.StartNs, e.DurNs, e.Kind, e.Name, e.Stream)
		}
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := profiler.WriteChromeTrace(f, p.Events); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *chrome)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainnet-profile:", err)
	os.Exit(1)
}

// drainnet-data synthesizes a watershed, reports its hydrology, and
// demonstrates the digital-dam → breach → connectivity-repair cycle that
// motivates the paper.
//
// Usage:
//
//	drainnet-data                       # default 512×512 watershed
//	drainnet-data -rows 384 -spacing 96 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"drainnet/internal/hydro"
	"drainnet/internal/terrain"
)

func main() {
	rows := flag.Int("rows", 512, "raster rows")
	cols := flag.Int("cols", 512, "raster cols")
	spacing := flag.Int("spacing", 128, "road spacing in cells")
	seed := flag.Int64("seed", 2022, "generation seed")
	clipSize := flag.Int("clip", 100, "sample clip size")
	flag.Parse()

	cfg := terrain.DefaultConfig()
	cfg.Rows, cfg.Cols = *rows, *cols
	cfg.RoadSpacing = *spacing
	cfg.Seed = *seed
	w, err := terrain.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drainnet-data:", err)
		os.Exit(1)
	}
	lo, hi := w.BaseDEM.MinMax()
	fmt.Printf("watershed %dx%d (seed %d): elevation %.1f–%.1f m\n", cfg.Rows, cfg.Cols, cfg.Seed, lo, hi)

	count := func(mask []bool) int {
		n := 0
		for _, v := range mask {
			if v {
				n++
			}
		}
		return n
	}
	fmt.Printf("streams: %d cells   roads: %d cells   wetlands: %d cells\n",
		count(w.StreamMask), count(w.RoadMask), count(w.WetMask))
	fmt.Printf("drainage crossings (culverts): %d\n", len(w.Crossings))

	// Score connectivity after limited depression filling: natural
	// micro-pits drain, dam-impounded ponds persist.
	score := func(dem *hydro.Grid) float64 {
		return hydro.ConnectivityScore(hydro.FillDepressionsLimited(dem, 0.5), cfg.StreamThreshold)
	}
	base := score(w.BaseDEM)
	dammed := score(w.DEM)
	repaired := w.DEM.Clone()
	hydro.BreachAll(repaired, w.Crossings, 4)
	fixed := score(repaired)
	fmt.Printf("hydrologic connectivity: base %.3f → with digital dams %.3f → breached at crossings %.3f\n",
		base, dammed, fixed)

	img := terrain.Render(w)
	cc := terrain.DefaultClipConfig()
	cc.Size = *clipSize
	ds, err := terrain.BuildDataset(w, img, cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "drainnet-data:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %d samples (%d positives) at %d×%d×4 bands\n",
		len(ds.Samples), ds.Positives(), cc.Size, cc.Size)
}

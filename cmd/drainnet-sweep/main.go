// drainnet-sweep runs a watershed-scale drainage-crossing sweep from
// the command line — the offline counterpart of POST /v1/sweep.
//
// It synthesizes (or resumes) a large multispectral watershed raster,
// slides the detector's window across it, skips windows the hydrology
// prior rules out, streams the survivors through the batched inference
// pool, merges duplicate detections, and scores the merged crossings
// against the synthetic ground truth (AP / recall / precision per
// scenario).
//
// Jobs checkpoint to -dir after every chunk; Ctrl-C drains in-flight
// clips, persists the cursor, and a rerun with -resume picks the sweep
// back up bit-identically.
//
// Usage:
//
//	drainnet-sweep -rows 1024 -cols 1024 -out crossings.geojson
//	drainnet-sweep -ckpt model.ckpt -scenarios all -bench BENCH_sweep.json
//	drainnet-sweep -dir sweeps/            # checkpointed; Ctrl-C is safe
//	drainnet-sweep -dir sweeps/ -resume    # finish interrupted jobs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"drainnet/internal/experiments"
	"drainnet/internal/export"
	"drainnet/internal/model"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/sweep"
	"drainnet/internal/train"
)

func main() {
	rows := flag.Int("rows", 1024, "watershed raster rows")
	cols := flag.Int("cols", 1024, "watershed raster cols")
	seed := flag.Int64("seed", 1, "terrain seed (same seed+scenario → bit-identical raster)")
	window := flag.Int("window", 0, "sliding-window size (0 = the model's training clip size)")
	stride := flag.Int("stride", 0, "sliding-window stride (0 = window/2)")
	minScore := flag.Float64("min-score", 0.95, "objectness threshold for keeping a window hit")
	mergeRadius := flag.Int("merge-radius", 0, "duplicate-suppression radius in cells (0 = window/2)")
	matchRadius := flag.Int("match-radius", 0, "truth-matching radius for AP scoring (0 = window/2)")
	scenarios := flag.String("scenarios", "baseline", `comma-separated scenario list, or "all"`)
	noPrior := flag.Bool("no-prior", false, "disable the road×stream candidate prior (infer every window)")
	ckptEvery := flag.Int("checkpoint-every", 0, "windows inferred between checkpoints (0 = default 256)")
	roadSpacing := flag.Int("road-spacing", 0, "terrain road-grid spacing in cells (0 = terrain default)")
	streamThreshold := flag.Float64("stream-threshold", 0, "flow-accumulation threshold for streams (0 = scale with raster)")
	ckpt := flag.String("ckpt", "", "model checkpoint to load (skips training)")
	dir := flag.String("dir", "", "sweep checkpoint directory (empty = no persistence)")
	resume := flag.Bool("resume", false, "resume unfinished jobs from -dir instead of starting a new sweep")
	outPath := flag.String("out", "", "write merged crossings to this GeoJSON file")
	benchPath := flag.String("bench", "", "write a throughput/accuracy summary to this JSON file")
	replicas := flag.Int("replicas", 0, "model replicas (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 8, "max clips per forward pass")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "max batch-fill wait")
	queue := flag.Int("queue", 256, "bounded inference queue size")
	concurrency := flag.Int("concurrency", 0, "in-flight pool submissions (0 = default 16)")
	flag.Parse()

	if *resume && *dir == "" {
		log.Fatal("-resume needs -dir")
	}

	dc := experiments.TinyData()
	cfg := model.SPPNet2().Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
	net, err := cfg.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		log.Fatal(err)
	}
	if *ckpt != "" {
		if err := train.LoadFile(*ckpt, net); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded checkpoint %s\n", *ckpt)
	} else {
		fmt.Println("training a detector (use -ckpt to skip)...")
		trainDS, testDS, err := experiments.BuildData(dc)
		if err != nil {
			log.Fatal(err)
		}
		opt := train.PaperOptions()
		opt.Epochs = dc.Epochs
		opt.BatchSize = dc.BatchSize
		opt.BoxWeight = 5
		opt.LRStepEpoch = dc.Epochs * 2 / 3
		opt.LRStepGamma = 0.1
		if _, err := train.Fit(net, trainDS, opt); err != nil {
			log.Fatal(err)
		}
		ev := train.Evaluate(net, testDS, dc.IoUThreshold)
		fmt.Printf("trained: AP@%.1f = %.1f%%\n", dc.IoUThreshold, ev.AP*100)
	}

	pool, err := batcher.New(cfg, net, batcher.Options{
		Replicas:  *replicas,
		MaxBatch:  *maxBatch,
		MaxWait:   *maxWait,
		QueueSize: *queue,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := sweep.NewManager(sweep.ManagerOptions{
		Submit:        pool,
		Bands:         cfg.InBands,
		DefaultWindow: cfg.InSize,
		Precision:     string(model.PrecisionFP32),
		Dir:           *dir,
		Concurrency:   *concurrency,
	})
	if err != nil {
		log.Fatal(err)
	}

	var jobs []*sweep.Job
	if *resume {
		n, err := mgr.Resume()
		if err != nil {
			log.Fatal(err)
		}
		for _, j := range mgr.Jobs() {
			if j.Status().State == sweep.StateRunning {
				jobs = append(jobs, j)
			}
		}
		fmt.Printf("level=info msg=resumed checkpoints=%d running=%d dir=%q\n", n, len(jobs), *dir)
		if len(jobs) == 0 {
			fmt.Println("nothing to resume; all checkpointed jobs are finished")
		}
	} else {
		spec := sweep.Spec{
			Rows: *rows, Cols: *cols, Seed: *seed,
			Window: *window, Stride: *stride,
			MinScore:    *minScore,
			MergeRadius: *mergeRadius, MatchRadius: *matchRadius,
			Scenarios:       splitScenarios(*scenarios),
			Prior:           sweep.PriorSpec{Disabled: *noPrior},
			CheckpointEvery: *ckptEvery,
			RoadSpacing:     *roadSpacing,
			StreamThreshold: *streamThreshold,
		}
		job, err := mgr.Start(spec)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job)
		fmt.Printf("level=info msg=sweep_started id=%s raster=%dx%d scenarios=%v checkpointed=%t\n",
			job.ID(), *rows, *cols, job.Spec().Scenarios, *dir != "")
	}

	start := time.Now()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	interrupted := waitForJobs(jobs, sig)

	// Drain in-flight clips and persist cursors before touching the pool.
	mgr.Close()
	pool.Close()
	wall := time.Since(start).Seconds()

	if interrupted {
		for _, j := range jobs {
			st := j.Status()
			fmt.Printf("level=info msg=checkpointed id=%s state=%s inferred=%d/%d\n",
				st.ID, st.State, st.Inferred, st.Candidates)
		}
		if *dir != "" {
			fmt.Printf("interrupted; rerun with -dir %s -resume to finish\n", *dir)
		}
		os.Exit(130)
	}

	failed := false
	for _, j := range jobs {
		st := j.Status()
		if st.State != sweep.StateDone {
			fmt.Fprintf(os.Stderr, "job %s ended %s: %s\n", st.ID, st.State, st.Error)
			failed = true
			continue
		}
		fmt.Printf("level=info msg=sweep_done id=%s windows=%d candidates=%d skipped=%d skip_rate=%.3f inferred=%d hits=%d clips_per_sec=%.1f wall=%.1fs\n",
			st.ID, st.Windows, st.Candidates, st.Skipped, st.SkipRate, st.Inferred, st.Hits, st.ClipsPerSec, wall)
		for _, sc := range st.PerScenario {
			fmt.Printf("level=info msg=scenario scenario=%s windows=%d candidates=%d hits=%d truth=%d ap=%.3f recall=%.3f precision=%.3f\n",
				sc.Scenario, sc.Windows, sc.Candidates, sc.Hits, sc.Truth, sc.AP, sc.Recall, sc.Precision)
		}
	}
	if failed {
		os.Exit(1)
	}

	if *outPath != "" {
		if err := writeGeoJSON(*outPath, jobs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level=info msg=geojson_written path=%s\n", *outPath)
	}
	if *benchPath != "" {
		if err := writeBench(*benchPath, jobs, wall); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("level=info msg=bench_written path=%s\n", *benchPath)
	}
}

func splitScenarios(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// waitForJobs blocks until every job finishes or a signal arrives,
// printing a progress line every two seconds. Returns true on signal.
func waitForJobs(jobs []*sweep.Job, sig <-chan os.Signal) bool {
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for _, j := range jobs {
		for {
			select {
			case <-j.Done():
			case s := <-sig:
				fmt.Printf("level=info msg=draining signal=%v\n", s)
				return true
			case <-tick.C:
				st := j.Status()
				fmt.Printf("level=info msg=progress id=%s phase=%s scenario=%s windows=%d inferred=%d/%d skip_rate=%.3f clips_per_sec=%.1f\n",
					st.ID, st.Phase, st.Scenario, st.Windows, st.Inferred, st.Candidates, st.SkipRate, st.ClipsPerSec)
				continue
			}
			break
		}
	}
	return false
}

func collectHits(j *sweep.Job) []sweep.Hit {
	var all []sweep.Hit
	cursor := 0
	for cursor >= 0 {
		page, next := j.Results(cursor, 1000)
		all = append(all, page...)
		cursor = next
	}
	return all
}

func writeGeoJSON(path string, jobs []*sweep.Job) error {
	var pts []export.PointFeature
	for _, j := range jobs {
		for _, h := range collectHits(j) {
			pts = append(pts, export.PointFeature{
				Row: h.Row, Col: h.Col, Score: h.Score, Scenario: h.Scenario,
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteGeoJSON(f, pts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchReport is the BENCH_sweep.json schema: enough to compare the
// candidate prior's skip rate and pool throughput across runs.
type benchReport struct {
	WallSeconds float64       `json:"wall_seconds"`
	Jobs        []benchJobRow `json:"jobs"`
}

type benchJobRow struct {
	ID          string                  `json:"id"`
	Rows        int                     `json:"rows"`
	Cols        int                     `json:"cols"`
	Scenarios   []string                `json:"scenarios"`
	Windows     int                     `json:"windows"`
	Candidates  int                     `json:"candidates"`
	Skipped     int                     `json:"skipped"`
	SkipRate    float64                 `json:"skip_rate"`
	Inferred    int                     `json:"inferred"`
	Hits        int                     `json:"hits"`
	ClipsPerSec float64                 `json:"clips_per_sec"`
	PerScenario []sweep.ScenarioSummary `json:"per_scenario"`
}

func writeBench(path string, jobs []*sweep.Job, wall float64) error {
	rep := benchReport{WallSeconds: wall}
	for _, j := range jobs {
		st := j.Status()
		spec := j.Spec()
		rep.Jobs = append(rep.Jobs, benchJobRow{
			ID: st.ID, Rows: spec.Rows, Cols: spec.Cols, Scenarios: spec.Scenarios,
			Windows: st.Windows, Candidates: st.Candidates, Skipped: st.Skipped,
			SkipRate: st.SkipRate, Inferred: st.Inferred, Hits: st.Hits,
			ClipsPerSec: st.ClipsPerSec, PerScenario: st.PerScenario,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// drainnet-nas runs the resource-aware neural architecture search of the
// paper's Fig 5: multi-trial random search over the §4.2 space, accuracy
// filtering, and IOS-based efficiency selection.
//
// Usage:
//
//	drainnet-nas -trials 6 -threshold 0.9            # real training per trial
//	drainnet-nas -trials 30 -proxy                   # fast proxy evaluator
package main

import (
	"flag"
	"fmt"
	"os"

	"drainnet/internal/experiments"
	"drainnet/internal/model"
	"drainnet/internal/nas"
)

func main() {
	trials := flag.Int("trials", 6, "number of random-search trials")
	threshold := flag.Float64("threshold", 0.90, "accuracy constraint A: keep a(n) > A")
	seed := flag.Int64("seed", 42, "search seed")
	proxy := flag.Bool("proxy", false, "use a fast parameter-count proxy instead of real training")
	tiny := flag.Bool("tiny", false, "seconds-scale training config")
	flag.Parse()

	if *proxy {
		runProxy(*trials, *threshold, *seed)
		return
	}
	dc := experiments.FastData()
	if *tiny {
		dc = experiments.TinyData()
	}
	fmt.Printf("resource-aware NAS: %d trials, accuracy constraint a(n) > %.2f\n", *trials, *threshold)
	res, err := experiments.NASSearch(dc, *trials, *threshold, *seed)
	if res != nil {
		fmt.Print(res.Render())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drainnet-nas:", err)
		os.Exit(1)
	}
}

// runProxy explores the space with a cheap analytic evaluator: accuracy
// rises with receptive-field, SPP depth, and capacity, saturating — a
// stand-in that keeps the full pipeline runnable in seconds.
func runProxy(trials int, threshold float64, seed int64) {
	space := nas.DefaultSpace()
	eval := nas.FunctionalEvaluator(func(cfg model.Config) (float64, error) {
		acc := 0.90
		if cfg.Convs[0].Kernel >= 3 {
			acc += 0.02
		}
		if cfg.Convs[0].Kernel >= 7 {
			acc -= 0.01 // oversize first kernel hurts on 100×100 clips
		}
		acc += 0.01 * float64(len(cfg.SPPLevels)-1)
		if cfg.FCWidth >= 1024 {
			acc += 0.02
		}
		if cfg.FCWidth >= 8192 {
			acc -= 0.005 // slight overfit
		}
		return acc, nil
	})
	ts := nas.RandomSearch(space, eval, trials, seed)
	sel, err := nas.ResourceAware(ts, nas.IOSMeasurer{Dev: experiments.Device()}, threshold, 1)
	fmt.Printf("proxy NAS: %d trials, constraint a(n) > %.2f\n", len(ts), threshold)
	for _, t := range ts {
		fmt.Printf("  %-28s proxy-acc %.2f%%\n", t.Config.Name, t.Accuracy*100)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "drainnet-nas:", err)
		os.Exit(1)
	}
	best := sel.Best()
	fmt.Printf("selected: %s (proxy-acc %.2f%%, IOS latency %.3f ms)\n",
		best.Config.Name, best.Accuracy*100, best.OptLatencyNs/1e6)
}

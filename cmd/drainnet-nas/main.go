// drainnet-nas runs the resource-aware neural architecture search of the
// paper's Fig 5 — maximize e(n) subject to a(n) > A — with a choice of
// efficiency oracle:
//
//   - -oracle sim (default): the paper's workflow — random search over
//     the §4.2 architecture space, accuracy filtering, and IOS-based
//     efficiency selection on the simulated GPU.
//   - -oracle measured: hardware in the loop — the search space widens to
//     architecture × precision × kernel mode, and e(n) is the measured
//     steady-state latency of each candidate's compiled executor on THIS
//     machine, after accuracy-gated int8 quantization, per-layer kernel
//     autotuning and IOS scheduling. Candidates evaluate across -parallel
//     workers sharing one cost cache; a warm -cost-cache makes re-search
//     deterministic (bit-identical ranking) and fast.
//
// Usage:
//
//	drainnet-nas -trials 6 -threshold 0.9                  # sim oracle, real training
//	drainnet-nas -trials 30 -proxy                         # sim oracle, fast proxy
//	drainnet-nas -oracle measured -parallel 4 -cost-cache nas-costs.json \
//	    -trials 12 -threshold 0.35 -tiny -out nas-out      # hardware in the loop
//	drainnet-serve -nas-plan nas-out/plan.json             # serve the winner
//
// -out persists the winning candidate as nas-out/winner.ckpt plus
// nas-out/plan.json (architecture, precision, kernel mode, measured
// latencies, provenance); drainnet-serve -nas-plan round-trips it.
package main

import (
	"flag"
	"fmt"
	"os"

	"drainnet/internal/experiments"
	"drainnet/internal/ios"
	"drainnet/internal/nas"
)

func main() {
	trials := flag.Int("trials", 6, "number of search trials (distinct candidates)")
	threshold := flag.Float64("threshold", 0.90, "accuracy constraint A: keep a(n) > A")
	seed := flag.Int64("seed", 42, "search seed")
	proxy := flag.Bool("proxy", false, "use the fast analytic proxy instead of real training")
	tiny := flag.Bool("tiny", false, "seconds-scale training config")
	oracle := flag.String("oracle", "sim", "efficiency oracle: sim (simulated GPU) or measured (this machine's compiled executors)")
	strategy := flag.String("strategy", "random", "measured-oracle exploration strategy: random, grid or evolution")
	parallel := flag.Int("parallel", 1, "measured-oracle worker goroutines sharing one cost cache")
	costCache := flag.String("cost-cache", "", "cost-cache file shared by operator measurements and candidate latencies (loaded if present, saved after the search)")
	maxBatch := flag.Int("max-batch", 16, "large-batch bucket e(n) is measured at (batch 1 is always measured)")
	out := flag.String("out", "", "directory to persist the winner (plan.json + winner.ckpt, loadable by drainnet-serve -nas-plan)")
	flag.Parse()

	dc := experiments.FastData()
	if *tiny {
		dc = experiments.TinyData()
	}

	switch *oracle {
	case "sim":
		if *proxy {
			runSimProxy(*trials, *threshold, *seed)
			return
		}
		fmt.Printf("resource-aware NAS (sim oracle): %d trials, accuracy constraint a(n) > %.2f\n", *trials, *threshold)
		res, err := experiments.NASSearch(dc, *trials, *threshold, *seed)
		if res != nil {
			fmt.Print(res.Render())
		}
		if err != nil {
			fatal(err)
		}
	case "measured":
		runMeasured(dc, measuredOptions{
			trials: *trials, threshold: *threshold, seed: *seed,
			strategy: *strategy, parallel: *parallel, maxBatch: *maxBatch,
			costCache: *costCache, out: *out, proxy: *proxy,
		})
	default:
		fatal(fmt.Errorf("unknown -oracle %q (want sim or measured)", *oracle))
	}
}

type measuredOptions struct {
	trials    int
	threshold float64
	seed      int64
	strategy  string
	parallel  int
	maxBatch  int
	costCache string
	out       string
	proxy     bool
}

func runMeasured(dc experiments.DataConfig, mo measuredOptions) {
	cache := ios.NewCostCache()
	if mo.costCache != "" {
		var err error
		if cache, err = ios.LoadCostCache(mo.costCache); err != nil {
			fatal(err)
		}
	}
	ev, err := experiments.NewNASEvaluator(dc, experiments.NASEvaluatorOptions{
		Threshold: mo.threshold, MaxAPDrop: 0.02, MaxBatch: mo.maxBatch,
		Cache: cache, Proxy: mo.proxy, Prefilter: !mo.proxy,
	})
	if err != nil {
		fatal(err)
	}
	space := nas.DefaultJointSpace()
	fmt.Printf("hardware-in-the-loop NAS: joint space %d (arch × precision × kernels), strategy=%s, %d trials, parallel=%d, a(n) > %.2f\n",
		space.JointSize(), mo.strategy, mo.trials, mo.parallel, mo.threshold)
	res, err := nas.Search(space, ev, nas.SearchOptions{
		Strategy: mo.strategy, Trials: mo.trials, Seed: mo.seed, Parallel: mo.parallel,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Render())
	if mo.costCache != "" {
		if err := cache.Save(mo.costCache); err != nil {
			fatal(fmt.Errorf("cost cache not saved: %w", err))
		}
		fmt.Printf("cost cache: %d entries → %s\n", cache.Len(), mo.costCache)
	}
	w := res.Winner()
	if w == nil {
		fatal(fmt.Errorf("no candidate satisfied a(n) > %.2f", mo.threshold))
	}
	fmt.Printf("winner: %s (a=%.4f, b1 %.3f ms, b%d %.3f ms)\n",
		w.Key, w.Accuracy, w.LatencyB1Ns/1e6, mo.maxBatch, w.LatencyBNNs/1e6)
	if mo.out != "" {
		arch := w.Candidate.Arch.Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
		net := ev.TrainedNet(arch.Name)
		plan, err := nas.SaveWinner(mo.out, *w, arch, net, mo.threshold, mo.maxBatch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("winner persisted: %s/plan.json + %s/%s (serve with: drainnet-serve -nas-plan %s/plan.json)\n",
			mo.out, mo.out, plan.Checkpoint, mo.out)
	}
}

// runSimProxy explores the space with the cheap analytic evaluator: the
// fully-simulated pipeline that keeps the paper's workflow runnable in
// seconds.
func runSimProxy(trials int, threshold float64, seed int64) {
	space := nas.DefaultSpace()
	ts := nas.RandomSearch(space, experiments.NASProxy(), trials, seed)
	sel, err := nas.ResourceAware(ts, nas.IOSMeasurer{Dev: experiments.Device()}, threshold, 1)
	fmt.Printf("proxy NAS: %d trials, constraint a(n) > %.2f\n", len(ts), threshold)
	for _, t := range ts {
		fmt.Printf("  %-28s proxy-acc %.2f%%\n", t.Config.Name, t.Accuracy*100)
	}
	if err != nil {
		fatal(err)
	}
	best := sel.Best()
	fmt.Printf("selected: %s (proxy-acc %.2f%%, IOS latency %.3f ms)\n",
		best.Config.Name, best.Accuracy*100, best.OptLatencyNs/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainnet-nas:", err)
	os.Exit(1)
}

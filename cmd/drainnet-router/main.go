// drainnet-router is the cluster-mode front door: it spawns and
// supervises N drainnet-serve worker processes and serves the whole /v1
// API over the fleet with least-loaded routing, priority-class admission
// control, and (optionally) adaptive batching retunes.
//
// Router-native routes (everything else proxies to a worker):
//
//	GET /healthz             router liveness
//	GET /v1/healthz          router readiness (≥1 ready worker, not draining)
//	GET /v1/cluster          fleet status: per-worker state, pid, load, tuning
//	GET /v1/cluster/metrics  router metrics, Prometheus text (?format=json)
//
// Interactive traffic (/v1/detect) is admitted ahead of bulk traffic
// (/v1/sweep, or anything tagged X-Drainnet-Class: bulk): the bulk
// budget shrinks proportionally as interactive occupancy rises, so
// overload sheds bulk with 429 + Retry-After while interactive latency
// holds. Idempotent requests that die with a worker are transparently
// retried on another worker — a worker crash loses zero accepted
// requests — and crashed workers respawn with exponential backoff.
//
// SIGTERM/SIGINT drains the cluster: the router stops admitting,
// finishes in-flight proxied requests, SIGTERMs every worker, waits for
// them to drain (SIGKILL after -drain-timeout), and exits 0 with no
// orphan processes.
//
// Usage:
//
//	drainnet-router -addr :9090 -workers 4 -serve-bin ./drainnet-serve \
//	    -worker-args "-ckpt model.ckpt -replicas 2 -max-batch 16"
//	drainnet-router -autobatch -autobatch-target-p95 250ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"drainnet/internal/cluster"
	"drainnet/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":9090", "router listen address")
	workers := flag.Int("workers", 2, "worker processes to supervise")
	serveBin := flag.String("serve-bin", "drainnet-serve", "path to the drainnet-serve binary")
	workerArgs := flag.String("worker-args", "", "space-separated extra args for every worker (e.g. \"-ckpt model.ckpt -replicas 2\")")
	maxInteractive := flag.Int("max-interactive", 0, "interactive admission budget (0 = 64 × workers)")
	maxBulk := flag.Int("max-bulk", 0, "bulk admission budget at idle (0 = 2 × workers); shrinks with interactive load")
	retries := flag.Int("retries", 2, "extra workers an idempotent request is tried on after a transport failure")
	scrape := flag.Duration("scrape-interval", 250*time.Millisecond, "worker health+metrics polling period")
	readyTimeout := flag.Duration("ready-timeout", 120*time.Second, "max time a spawned worker may take to become ready")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful worker drain budget before SIGKILL")
	autobatch := flag.Bool("autobatch", false, "retune workers' effective max-batch/max-wait from live latency quantiles")
	abTarget := flag.Duration("autobatch-target-p95", 250*time.Millisecond, "latency SLO the adaptive batching controller steers each worker to")
	abInterval := flag.Duration("autobatch-interval", time.Second, "adaptive batching control period")
	flag.Parse()

	var args []string
	if *workerArgs != "" {
		args = strings.Fields(*workerArgs)
	}
	rt, err := cluster.New(cluster.Config{
		Workers:        *workers,
		Start:          cluster.ExecStart(*serveBin, args),
		Admission:      cluster.AdmissionPolicy{MaxInteractive: *maxInteractive, MaxBulk: *maxBulk},
		AutoBatch:      cluster.AutoBatchConfig{Enabled: *autobatch, Interval: *abInterval, TargetP95: *abTarget},
		Retries:        *retries,
		ScrapeInterval: *scrape,
		ReadyTimeout:   *readyTimeout,
		DrainTimeout:   *drainTimeout,
		Telemetry:      telemetry.NewDisabled(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level=info msg=router_serving addr=%s workers=%d serve_bin=%q worker_args=%q retries=%d scrape=%v autobatch=%t autobatch_target_p95=%v drain_timeout=%v\n",
		*addr, *workers, *serveBin, *workerArgs, *retries, *scrape, *autobatch, *abTarget, *drainTimeout)

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		rt.Close()
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("level=info msg=router_draining signal=%v\n", s)
	}

	// Drain order matters: stop admitting first (in-flight requests keep
	// their live workers), finish the router's HTTP exchanges, then
	// SIGTERM the fleet and wait for every worker to drain.
	rt.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	rt.Close()
	fmt.Println("level=info msg=router_drained workers_down=all")
}

// Package drainnet is a pure-Go reproduction of "Accuracy-Constrained
// Efficiency Optimization and GPU Profiling of CNN Inference for Detecting
// Drainage Crossing Locations" (SC-W 2023, DOI 10.1145/3624062.3624260).
//
// The library spans the paper's full pipeline:
//
//   - Synthetic watershed and 4-band orthophoto generation with
//     ground-truth drainage crossings (the stand-in for the paper's NAIP
//     dataset): GenerateWatershed, RenderOrthophoto, BuildDataset.
//   - DEM hydrology — D8 flow routing, digital-dam diagnosis, culvert
//     breaching: FlowDirections, ConnectivityScore, BreachAll.
//   - An SPP-Net model family with a from-scratch tensor/autograd engine:
//     OriginalSPPNet …SPPNet3, BuildModel, Fit, EvaluateDetector.
//   - Neural architecture search with the paper's §4.2 search space and
//     the accuracy-constrained selection of §5.4: DefaultSearchSpace,
//     RandomSearch, ResourceAwareSelect.
//   - The IOS inter-operator scheduler and a discrete-event GPU simulator
//     calibrated to the RTX A5500: BuildGraph, OptimizeSchedule,
//     MeasureLatency.
//   - An Nsight-style profiler over the simulator: ProfileInference.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package drainnet

package terrain

import (
	"fmt"
	"math/rand"

	"drainnet/internal/hydro"
)

// Config controls watershed synthesis.
type Config struct {
	Rows, Cols int
	Seed       int64
	// ReliefM is the local noise relief amplitude in meters.
	ReliefM float64
	// RegionalDropM is the west→east elevation drop across the raster.
	RegionalDropM float64
	// RoadSpacing is the distance between section roads in cells.
	RoadSpacing int
	// RoadHalfWidth is the road half-width in cells.
	RoadHalfWidth int
	// EmbankmentM is the road embankment height in meters (the digital
	// dam amplitude).
	EmbankmentM float64
	// StreamThreshold is the flow-accumulation threshold (in cells) above
	// which a cell counts as stream.
	StreamThreshold float64
}

// DefaultConfig matches the study area's character at 1 m resolution.
func DefaultConfig() Config {
	return Config{
		Rows: 512, Cols: 512,
		Seed:            2022,
		ReliefM:         6,
		RegionalDropM:   14,
		RoadSpacing:     128,
		RoadHalfWidth:   2,
		EmbankmentM:     2.5,
		StreamThreshold: 400,
	}
}

// Watershed is a synthesized study area.
type Watershed struct {
	Cfg Config
	// BaseDEM is the terrain before road embankments.
	BaseDEM *hydro.Grid
	// DEM includes road embankments (digital dams).
	DEM *hydro.Grid
	// RoadMask marks road cells.
	RoadMask []bool
	// StreamMask marks stream cells (from the base terrain).
	StreamMask []bool
	// WetMask marks depressional wetland cells.
	WetMask []bool
	// Crossings are the true drainage-crossing (culvert) locations: one
	// point per road-stream intersection cluster.
	Crossings []hydro.Point
}

// Generate synthesizes a watershed from the config.
func Generate(cfg Config) (*Watershed, error) {
	if cfg.Rows < 64 || cfg.Cols < 64 {
		return nil, fmt.Errorf("terrain: raster %dx%d too small (min 64)", cfg.Rows, cfg.Cols)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Watershed{Cfg: cfg}

	w.BaseDEM = baseTerrain(cfg, rng)
	w.StreamMask = streams(w.BaseDEM, cfg.StreamThreshold)
	w.WetMask = wetlands(w.BaseDEM)
	w.RoadMask = roadNetwork(cfg, rng)

	// Apply embankments on top of the base terrain.
	w.DEM = w.BaseDEM.Clone()
	for i, road := range w.RoadMask {
		if road {
			w.DEM.Data[i] += cfg.EmbankmentM
		}
	}
	w.Crossings = findCrossings(cfg, w.RoadMask, w.StreamMask)
	if len(w.Crossings) == 0 {
		return nil, fmt.Errorf("terrain: no drainage crossings generated (seed %d); adjust config", cfg.Seed)
	}
	return w, nil
}

// baseTerrain builds the pre-road DEM: fractal relief over a west→east
// regional slope, with valleys deepened along a smooth channel field.
func baseTerrain(cfg Config, rng *rand.Rand) *hydro.Grid {
	dem := hydro.NewGrid(cfg.Rows, cfg.Cols, 1)
	relief := NewFBM(rng, 4)
	valleys := NewFBM(rng, 2)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			x := float64(c) / float64(cfg.Cols)
			y := float64(r) / float64(cfg.Rows)
			z := cfg.RegionalDropM * (1 - x)   // descending west→east
			z += cfg.ReliefM * relief.At(x, y) // loess undulation
			// Valley carving: a band of low "valleys" noise becomes a
			// drainage corridor.
			v := valleys.At(x*0.5, y*0.5)
			if v < 0.45 {
				z -= (0.45 - v) * 10
			}
			dem.Set(r, c, z)
		}
	}
	return dem
}

func streams(dem *hydro.Grid, threshold float64) []bool {
	filled := hydro.FillDepressions(dem)
	dirs := hydro.D8FlowDirections(filled)
	acc := hydro.FlowAccumulation(filled, dirs)
	return hydro.ExtractStreams(acc, threshold)
}

// wetlands marks cells that the depression-filling raised significantly:
// those are closed depressions (the watershed's depressional wetlands).
func wetlands(dem *hydro.Grid) []bool {
	filled := hydro.FillDepressions(dem)
	mask := make([]bool, len(dem.Data))
	for i := range mask {
		mask[i] = filled.Data[i]-dem.Data[i] > 0.3
	}
	return mask
}

// roadNetwork lays out section roads: north-south and east-west lines at
// RoadSpacing intervals with per-road jitter and gentle wiggle.
func roadNetwork(cfg Config, rng *rand.Rand) []bool {
	mask := make([]bool, cfg.Rows*cfg.Cols)
	mark := func(r, c int) {
		for dr := -cfg.RoadHalfWidth; dr <= cfg.RoadHalfWidth; dr++ {
			for dc := -cfg.RoadHalfWidth; dc <= cfg.RoadHalfWidth; dc++ {
				rr, cc := r+dr, c+dc
				if rr >= 0 && rr < cfg.Rows && cc >= 0 && cc < cfg.Cols {
					mask[rr*cfg.Cols+cc] = true
				}
			}
		}
	}
	// North-south roads.
	for c0 := cfg.RoadSpacing / 2; c0 < cfg.Cols; c0 += cfg.RoadSpacing {
		c := c0 + rng.Intn(21) - 10
		wiggle := rng.Float64()*4 - 2
		for r := 0; r < cfg.Rows; r++ {
			cc := c + int(wiggle*float64(r)/float64(cfg.Rows))
			if cc >= 0 && cc < cfg.Cols {
				mark(r, cc)
			}
		}
	}
	// East-west roads.
	for r0 := cfg.RoadSpacing / 2; r0 < cfg.Rows; r0 += cfg.RoadSpacing {
		r := r0 + rng.Intn(21) - 10
		wiggle := rng.Float64()*4 - 2
		for c := 0; c < cfg.Cols; c++ {
			rr := r + int(wiggle*float64(c)/float64(cfg.Cols))
			if rr >= 0 && rr < cfg.Rows {
				mark(rr, c)
			}
		}
	}
	return mask
}

// findCrossings clusters road∩stream cells into one representative point
// per contiguous intersection (a culvert location).
func findCrossings(cfg Config, roads, streams []bool) []hydro.Point {
	n := cfg.Rows * cfg.Cols
	inter := make([]bool, n)
	for i := 0; i < n; i++ {
		inter[i] = roads[i] && streams[i]
	}
	seen := make([]bool, n)
	var out []hydro.Point
	for i := 0; i < n; i++ {
		if !inter[i] || seen[i] {
			continue
		}
		// BFS the cluster, collecting its centroid.
		var queue []int
		queue = append(queue, i)
		seen[i] = true
		var sumR, sumC, count int
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			r, c := cur/cfg.Cols, cur%cfg.Cols
			sumR += r
			sumC += c
			count++
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					rr, cc := r+dr, c+dc
					if rr < 0 || rr >= cfg.Rows || cc < 0 || cc >= cfg.Cols {
						continue
					}
					j := rr*cfg.Cols + cc
					if inter[j] && !seen[j] {
						seen[j] = true
						queue = append(queue, j)
					}
				}
			}
		}
		out = append(out, hydro.Point{R: sumR / count, C: sumC / count})
	}
	return out
}

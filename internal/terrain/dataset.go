package terrain

import (
	"fmt"
	"math/rand"
	"sort"

	"drainnet/internal/hydro"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// Sample is one labeled clip: a 4-band image and its detection target.
type Sample struct {
	// Image is NumBands×Size×Size.
	Image *tensor.Tensor
	// Target is the supervision: objectness and normalized box.
	Target nn.DetectionTarget
	// Center is the clip's top-left corner in watershed coordinates.
	Origin hydro.Point
	// Crossing is the contained crossing (valid when Target.HasObject).
	Crossing hydro.Point
}

// Dataset is a set of samples with deterministic splitting.
type Dataset struct {
	Samples  []Sample
	ClipSize int
}

// ClipConfig controls sample clipping.
type ClipConfig struct {
	// Size is the clip side length in cells (100 in the paper).
	Size int
	// JitterFrac is the maximum offset of the crossing from the clip
	// center, as a fraction of Size (so boxes appear across the clip).
	JitterFrac float64
	// BoxCells is the ground-truth box side length in cells.
	BoxCells int
	// NegativesPerPositive is the number of background clips per crossing
	// clip.
	NegativesPerPositive int
	// ClipsPerCrossing clips each crossing this many times with fresh
	// jitter (simple translation augmentation; ≥1).
	ClipsPerCrossing int
	// Seed drives jitter and negative placement.
	Seed int64
}

// DefaultClipConfig matches the paper's preprocessing (§3.2): 100×100
// samples with the crossing near the center.
func DefaultClipConfig() ClipConfig {
	return ClipConfig{Size: 100, JitterFrac: 0.25, BoxCells: 14, NegativesPerPositive: 1, ClipsPerCrossing: 1, Seed: 7}
}

// BuildDataset clips positive samples around every usable crossing and
// matching negative background clips from the rendered orthophoto.
func BuildDataset(w *Watershed, img *tensor.Tensor, cc ClipConfig) (*Dataset, error) {
	cfg := w.Cfg
	if cc.Size < 16 || cc.Size > cfg.Rows || cc.Size > cfg.Cols {
		return nil, fmt.Errorf("terrain: clip size %d invalid for %dx%d raster", cc.Size, cfg.Rows, cfg.Cols)
	}
	rng := rand.New(rand.NewSource(cc.Seed))
	ds := &Dataset{ClipSize: cc.Size}
	jitter := int(float64(cc.Size) * cc.JitterFrac)

	clips := cc.ClipsPerCrossing
	if clips < 1 {
		clips = 1
	}
	for _, p := range w.Crossings {
		for k := 0; k < clips; k++ {
			// Clip origin so the crossing lands center+jitter.
			offR := rng.Intn(2*jitter+1) - jitter
			offC := rng.Intn(2*jitter+1) - jitter
			r0 := p.R - cc.Size/2 + offR
			c0 := p.C - cc.Size/2 + offC
			if r0 < 0 || c0 < 0 || r0+cc.Size > cfg.Rows || c0+cc.Size > cfg.Cols {
				continue // crossing too close to the raster edge
			}
			clip := clipImage(img, r0, c0, cc.Size)
			target := nn.DetectionTarget{
				HasObject: true,
				CX:        float32(p.C-c0) / float32(cc.Size),
				CY:        float32(p.R-r0) / float32(cc.Size),
				W:         float32(cc.BoxCells) / float32(cc.Size),
				H:         float32(cc.BoxCells) / float32(cc.Size),
			}
			ds.Samples = append(ds.Samples, Sample{
				Image: clip, Target: target,
				Origin: hydro.Point{R: r0, C: c0}, Crossing: p,
			})
		}
	}
	if len(ds.Samples) == 0 {
		return nil, fmt.Errorf("terrain: no positive samples could be clipped")
	}

	// Negatives: random windows containing no crossing.
	wantNeg := len(ds.Samples) * cc.NegativesPerPositive
	for tries := 0; wantNeg > 0 && tries < wantNeg*50; tries++ {
		r0 := rng.Intn(cfg.Rows - cc.Size + 1)
		c0 := rng.Intn(cfg.Cols - cc.Size + 1)
		if containsCrossing(w, r0, c0, cc.Size) {
			continue
		}
		ds.Samples = append(ds.Samples, Sample{
			Image:  clipImage(img, r0, c0, cc.Size),
			Target: nn.DetectionTarget{HasObject: false},
			Origin: hydro.Point{R: r0, C: c0},
		})
		wantNeg--
	}
	return ds, nil
}

func containsCrossing(w *Watershed, r0, c0, size int) bool {
	for _, p := range w.Crossings {
		if p.R >= r0-4 && p.R < r0+size+4 && p.C >= c0-4 && p.C < c0+size+4 {
			return true
		}
	}
	return false
}

// Clip extracts a size×size window from a C×H×W image at (r0, c0). The
// window must lie fully inside the image.
func Clip(img *tensor.Tensor, r0, c0, size int) *tensor.Tensor {
	if r0 < 0 || c0 < 0 || r0+size > img.Dim(1) || c0+size > img.Dim(2) {
		panic(fmt.Sprintf("terrain: clip [%d,%d)+%d outside %v", r0, c0, size, img.Shape()))
	}
	return clipImage(img, r0, c0, size)
}

func clipImage(img *tensor.Tensor, r0, c0, size int) *tensor.Tensor {
	bands := img.Dim(0)
	cols := img.Dim(2)
	out := tensor.New(bands, size, size)
	for b := 0; b < bands; b++ {
		for r := 0; r < size; r++ {
			srcBase := (b*img.Dim(1)+(r0+r))*cols + c0
			dstBase := (b*size + r) * size
			copy(out.Data()[dstBase:dstBase+size], img.Data()[srcBase:srcBase+size])
		}
	}
	return out
}

// Split shuffles deterministically and splits into train/test by fraction
// (the paper's 80/20 split).
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	idx := make([]int, len(d.Samples))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(idx)) * trainFrac)
	train = &Dataset{ClipSize: d.ClipSize}
	test = &Dataset{ClipSize: d.ClipSize}
	for i, id := range idx {
		if i < cut {
			train.Samples = append(train.Samples, d.Samples[id])
		} else {
			test.Samples = append(test.Samples, d.Samples[id])
		}
	}
	return train, test
}

// SplitByCrossing splits train/test so that all clips of one crossing land
// on the same side (no leakage under ClipsPerCrossing augmentation).
// Negatives are distributed by the same fraction.
func (d *Dataset) SplitByCrossing(trainFrac float64, seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	// Collect distinct crossings.
	type key struct{ r, c int }
	groups := map[key][]int{}
	var negatives []int
	for i, s := range d.Samples {
		if s.Target.HasObject {
			k := key{s.Crossing.R, s.Crossing.C}
			groups[k] = append(groups[k], i)
		} else {
			negatives = append(negatives, i)
		}
	}
	var keys []key
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].r != keys[b].r {
			return keys[a].r < keys[b].r
		}
		return keys[a].c < keys[b].c
	})
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	rng.Shuffle(len(negatives), func(i, j int) { negatives[i], negatives[j] = negatives[j], negatives[i] })

	train = &Dataset{ClipSize: d.ClipSize}
	test = &Dataset{ClipSize: d.ClipSize}
	cut := int(float64(len(keys)) * trainFrac)
	for i, k := range keys {
		dst := train
		if i >= cut {
			dst = test
		}
		for _, idx := range groups[k] {
			dst.Samples = append(dst.Samples, d.Samples[idx])
		}
	}
	negCut := int(float64(len(negatives)) * trainFrac)
	for i, idx := range negatives {
		if i < negCut {
			train.Samples = append(train.Samples, d.Samples[idx])
		} else {
			test.Samples = append(test.Samples, d.Samples[idx])
		}
	}
	return train, test
}

// Batch assembles samples [lo, hi) into an N×C×S×S tensor and target list.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []nn.DetectionTarget) {
	if lo < 0 || hi > len(d.Samples) || lo >= hi {
		panic(fmt.Sprintf("terrain: invalid batch range [%d,%d) of %d", lo, hi, len(d.Samples)))
	}
	n := hi - lo
	s := d.ClipSize
	bands := d.Samples[lo].Image.Dim(0)
	x := tensor.New(n, bands, s, s)
	targets := make([]nn.DetectionTarget, n)
	stride := bands * s * s
	for i := 0; i < n; i++ {
		copy(x.Data()[i*stride:(i+1)*stride], d.Samples[lo+i].Image.Data())
		targets[i] = d.Samples[lo+i].Target
	}
	return x, targets
}

// Positives returns the number of positive samples.
func (d *Dataset) Positives() int {
	n := 0
	for _, s := range d.Samples {
		if s.Target.HasObject {
			n++
		}
	}
	return n
}

// Shuffle reorders samples deterministically (between training epochs).
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

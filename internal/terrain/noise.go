// Package terrain synthesizes the study area the paper's dataset comes
// from: a gently undulating agricultural watershed (West Fork Big Blue,
// Nebraska — loess plain descending west→east, dense road network, poorly
// developed drainage). It generates the DEM, road embankments, culverts at
// road-stream crossings, renders 4-band (R,G,B,NIR) orthophoto rasters,
// and clips 100×100 labeled samples for CNN training — the synthetic
// stand-in for the paper's hand-digitized NAIP dataset (DESIGN.md §2).
package terrain

import "math/rand"

// noiseField is a seeded value-noise lattice evaluated with bilinear
// interpolation and smoothstep easing.
type noiseField struct {
	lattice []float64
	n       int
}

func newNoiseField(rng *rand.Rand, n int) *noiseField {
	f := &noiseField{n: n, lattice: make([]float64, n*n)}
	for i := range f.lattice {
		f.lattice[i] = rng.Float64()
	}
	return f
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// at samples the field at lattice coordinates (x, y), wrapping at edges.
func (f *noiseField) at(x, y float64) float64 {
	xi, yi := int(x), int(y)
	tx, ty := smoothstep(x-float64(xi)), smoothstep(y-float64(yi))
	get := func(i, j int) float64 {
		return f.lattice[(j%f.n)*f.n+(i%f.n)]
	}
	v00 := get(xi, yi)
	v10 := get(xi+1, yi)
	v01 := get(xi, yi+1)
	v11 := get(xi+1, yi+1)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// FBM is multi-octave fractal value noise in [0, 1).
type FBM struct {
	fields  []*noiseField
	octaves int
}

// NewFBM creates fractal noise with the given number of octaves.
func NewFBM(rng *rand.Rand, octaves int) *FBM {
	f := &FBM{octaves: octaves}
	for o := 0; o < octaves; o++ {
		f.fields = append(f.fields, newNoiseField(rng, 16<<o))
	}
	return f
}

// At samples the fractal noise at unit coordinates (x, y in [0,1)).
func (f *FBM) At(x, y float64) float64 {
	var sum, norm float64
	amp := 1.0
	freq := 4.0
	for o := 0; o < f.octaves; o++ {
		sum += amp * f.fields[o].at(x*freq, y*freq)
		norm += amp
		amp *= 0.5
		freq *= 2
	}
	return sum / norm
}

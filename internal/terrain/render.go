package terrain

import (
	"math/rand"

	"drainnet/internal/tensor"
)

// Band indices of the rendered orthophoto.
const (
	BandR = iota
	BandG
	BandB
	BandNIR
	NumBands
)

// Render produces the 4-band (R, G, B, NIR) orthophoto of the watershed
// as a NumBands×Rows×Cols tensor with values in [0, 1]. Land-cover
// spectral signatures follow NAIP color-infrared conventions: cropland is
// green/NIR-bright, open water and wet soils are NIR-dark, roads are
// uniformly gray with low NIR, and culvert headwalls at drainage
// crossings render as compact bright concrete signatures.
func Render(w *Watershed) *tensor.Tensor {
	cfg := w.Cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	img := tensor.New(NumBands, cfg.Rows, cfg.Cols)
	tex := NewFBM(rng, 3)

	set := func(b, r, c int, v float64) {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		img.Set(float32(v), b, r, c)
	}

	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			i := r*cfg.Cols + c
			x := float64(c) / float64(cfg.Cols)
			y := float64(r) / float64(cfg.Rows)
			t := tex.At(x*3, y*3) // field texture
			n := rng.Float64() * 0.04

			// Cropland base.
			red, green, blue, nir := 0.28+0.1*t, 0.38+0.12*t, 0.22+0.06*t, 0.62+0.2*t

			if w.WetMask[i] {
				// Depressional wetland: darker, wetter, NIR-suppressed.
				red, green, blue, nir = 0.18, 0.24, 0.2, 0.3
			}
			if nearStream(w, r, c, 3) {
				// Riparian vegetation: greenest, highest NIR.
				red, green, blue, nir = 0.16, 0.34, 0.14, 0.85
			}
			if w.StreamMask[i] {
				// Open water / wet channel: dark, blue-leaning, NIR-black.
				red, green, blue, nir = 0.1, 0.14, 0.22, 0.06
			}
			if w.RoadMask[i] {
				// Gravel/asphalt road: flat gray, low NIR.
				g := 0.5 + 0.08*t
				red, green, blue, nir = g, g, g, 0.18
			}
			set(BandR, r, c, red+n)
			set(BandG, r, c, green+n)
			set(BandB, r, c, blue+n)
			set(BandNIR, r, c, nir+n)
		}
	}

	// Culvert structures: bright concrete headwalls flanking the channel
	// where it passes under the road.
	for _, p := range w.Crossings {
		for dr := -2; dr <= 2; dr++ {
			for dc := -2; dc <= 2; dc++ {
				r, c := p.R+dr, p.C+dc
				if r < 0 || r >= cfg.Rows || c < 0 || c >= cfg.Cols {
					continue
				}
				if dr*dr+dc*dc > 6 {
					continue
				}
				set(BandR, r, c, 0.88)
				set(BandG, r, c, 0.86)
				set(BandB, r, c, 0.82)
				set(BandNIR, r, c, 0.35)
			}
		}
	}
	return img
}

func nearStream(w *Watershed, r, c, radius int) bool {
	for dr := -radius; dr <= radius; dr++ {
		for dc := -radius; dc <= radius; dc++ {
			rr, cc := r+dr, c+dc
			if rr < 0 || rr >= w.Cfg.Rows || cc < 0 || cc >= w.Cfg.Cols {
				continue
			}
			if w.StreamMask[rr*w.Cfg.Cols+cc] {
				return true
			}
		}
	}
	return false
}

package terrain

import (
	"math/rand"

	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// FlipH mirrors a C×H×W image horizontally (left-right).
func FlipH(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	for b := 0; b < c; b++ {
		for r := 0; r < h; r++ {
			for x := 0; x < w; x++ {
				out.Set(img.At(b, r, w-1-x), b, r, x)
			}
		}
	}
	return out
}

// FlipV mirrors a C×H×W image vertically (top-bottom).
func FlipV(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	out := tensor.New(c, h, w)
	for b := 0; b < c; b++ {
		for r := 0; r < h; r++ {
			for x := 0; x < w; x++ {
				out.Set(img.At(b, h-1-r, x), b, r, x)
			}
		}
	}
	return out
}

// Rot90 rotates a square C×S×S image 90° clockwise.
func Rot90(img *tensor.Tensor) *tensor.Tensor {
	c, h, w := img.Dim(0), img.Dim(1), img.Dim(2)
	if h != w {
		panic("terrain: Rot90 requires a square image")
	}
	out := tensor.New(c, h, w)
	for b := 0; b < c; b++ {
		for r := 0; r < h; r++ {
			for x := 0; x < w; x++ {
				// (r, x) comes from (h-1-x, r) in the source.
				out.Set(img.At(b, h-1-x, r), b, r, x)
			}
		}
	}
	return out
}

// flipTargetH mirrors a detection target horizontally.
func flipTargetH(t nn.DetectionTarget) nn.DetectionTarget {
	if t.HasObject {
		t.CX = 1 - t.CX
	}
	return t
}

// flipTargetV mirrors a detection target vertically.
func flipTargetV(t nn.DetectionTarget) nn.DetectionTarget {
	if t.HasObject {
		t.CY = 1 - t.CY
	}
	return t
}

// rotTarget90 rotates a detection target 90° clockwise.
func rotTarget90(t nn.DetectionTarget) nn.DetectionTarget {
	if t.HasObject {
		t.CX, t.CY = 1-t.CY, t.CX
		t.W, t.H = t.H, t.W
	}
	return t
}

// Augment returns a new dataset with the originals plus, per sample, up
// to extraPerSample random symmetries (from the 7 non-identity elements
// of the square's symmetry group), with targets transformed to match.
// Aerial imagery has no canonical orientation, so all eight orientations
// are valid training views.
func Augment(ds *Dataset, extraPerSample int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{ClipSize: ds.ClipSize}
	out.Samples = append(out.Samples, ds.Samples...)
	type xform struct {
		img    func(*tensor.Tensor) *tensor.Tensor
		target func(nn.DetectionTarget) nn.DetectionTarget
	}
	rot180 := func(img *tensor.Tensor) *tensor.Tensor { return Rot90(Rot90(img)) }
	rot270 := func(img *tensor.Tensor) *tensor.Tensor { return Rot90(Rot90(Rot90(img))) }
	xforms := []xform{
		{FlipH, flipTargetH},
		{FlipV, flipTargetV},
		{Rot90, rotTarget90},
		{rot180, func(t nn.DetectionTarget) nn.DetectionTarget { return rotTarget90(rotTarget90(t)) }},
		{rot270, func(t nn.DetectionTarget) nn.DetectionTarget { return rotTarget90(rotTarget90(rotTarget90(t))) }},
		{func(i *tensor.Tensor) *tensor.Tensor { return Rot90(FlipH(i)) },
			func(t nn.DetectionTarget) nn.DetectionTarget { return rotTarget90(flipTargetH(t)) }},
		{func(i *tensor.Tensor) *tensor.Tensor { return Rot90(FlipV(i)) },
			func(t nn.DetectionTarget) nn.DetectionTarget { return rotTarget90(flipTargetV(t)) }},
	}
	for _, s := range ds.Samples {
		perm := rng.Perm(len(xforms))
		for k := 0; k < extraPerSample && k < len(xforms); k++ {
			xf := xforms[perm[k]]
			out.Samples = append(out.Samples, Sample{
				Image:    xf.img(s.Image),
				Target:   xf.target(s.Target),
				Origin:   s.Origin,
				Crossing: s.Crossing,
			})
		}
	}
	return out
}

package terrain

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/hydro"
)

// testConfig is a small, fast watershed for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 256, 256
	cfg.RoadSpacing = 96
	cfg.StreamThreshold = 150
	return cfg
}

func genTest(t *testing.T) *Watershed {
	t.Helper()
	w, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Crossings) != len(b.Crossings) {
		t.Fatalf("crossings differ across runs: %d vs %d", len(a.Crossings), len(b.Crossings))
	}
	for i := range a.DEM.Data {
		if a.DEM.Data[i] != b.DEM.Data[i] {
			t.Fatal("DEM not deterministic")
		}
	}
}

func TestGenerateTooSmallFails(t *testing.T) {
	cfg := testConfig()
	cfg.Rows = 10
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected error for tiny raster")
	}
}

func TestRegionalSlopeWestToEast(t *testing.T) {
	w := genTest(t)
	// Average elevation of the west quarter must exceed the east quarter.
	var west, east float64
	n := 0
	for r := 0; r < w.Cfg.Rows; r++ {
		for c := 0; c < w.Cfg.Cols/4; c++ {
			west += w.BaseDEM.At(r, c)
			east += w.BaseDEM.At(r, w.Cfg.Cols-1-c)
			n++
		}
	}
	if west/float64(n) <= east/float64(n) {
		t.Fatal("terrain must descend west→east")
	}
}

func TestCrossingsLieOnRoadsAndNearStreams(t *testing.T) {
	w := genTest(t)
	for _, p := range w.Crossings {
		i := p.R*w.Cfg.Cols + p.C
		if !w.RoadMask[i] {
			t.Fatalf("crossing %v not on a road", p)
		}
		if !nearStream(w, p.R, p.C, 4) {
			t.Fatalf("crossing %v not near a stream", p)
		}
	}
}

func TestEmbankmentsRaiseDEM(t *testing.T) {
	w := genTest(t)
	for i, road := range w.RoadMask {
		diff := w.DEM.Data[i] - w.BaseDEM.Data[i]
		if road && math.Abs(diff-w.Cfg.EmbankmentM) > 1e-9 {
			t.Fatalf("road cell %d raised by %v, want %v", i, diff, w.Cfg.EmbankmentM)
		}
		if !road && diff != 0 {
			t.Fatalf("non-road cell %d modified", i)
		}
	}
}

func TestDigitalDamsInWatershed(t *testing.T) {
	// The road embankments must measurably damage hydrologic connectivity,
	// and breaching at the true crossings must restore (most of) it.
	w := genTest(t)
	base := hydro.ConnectivityScore(w.BaseDEM, w.Cfg.StreamThreshold)
	dammed := hydro.ConnectivityScore(w.DEM, w.Cfg.StreamThreshold)
	if dammed >= base {
		t.Fatalf("embankments must reduce connectivity: base %v, dammed %v", base, dammed)
	}
	breached := w.DEM.Clone()
	hydro.BreachAll(breached, w.Crossings, 4)
	restored := hydro.ConnectivityScore(breached, w.Cfg.StreamThreshold)
	if restored <= dammed {
		t.Fatalf("breaching must improve connectivity: dammed %v, restored %v", dammed, restored)
	}
}

func TestRenderShapeAndRange(t *testing.T) {
	w := genTest(t)
	img := Render(w)
	if img.Dim(0) != NumBands || img.Dim(1) != w.Cfg.Rows || img.Dim(2) != w.Cfg.Cols {
		t.Fatalf("image shape %v", img.Shape())
	}
	for _, v := range img.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
}

func TestRenderSignatures(t *testing.T) {
	w := genTest(t)
	img := Render(w)
	// Streams must be NIR-dark; crossings must be bright in red.
	var s hydro.Point
	found := false
	for i, isStream := range w.StreamMask {
		if isStream && !w.RoadMask[i] {
			s = hydro.Point{R: i / w.Cfg.Cols, C: i % w.Cfg.Cols}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no stream cell")
	}
	if img.At(BandNIR, s.R, s.C) > 0.2 {
		t.Fatalf("stream NIR = %v, want dark", img.At(BandNIR, s.R, s.C))
	}
	p := w.Crossings[0]
	if img.At(BandR, p.R, p.C) < 0.7 {
		t.Fatalf("crossing red = %v, want bright concrete", img.At(BandR, p.R, p.C))
	}
}

func buildTestDataset(t *testing.T, clip ClipConfig) (*Watershed, *Dataset) {
	t.Helper()
	w := genTest(t)
	img := Render(w)
	ds, err := BuildDataset(w, img, clip)
	if err != nil {
		t.Fatal(err)
	}
	return w, ds
}

func TestBuildDatasetBalance(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	pos := ds.Positives()
	neg := len(ds.Samples) - pos
	if pos == 0 || neg == 0 {
		t.Fatalf("dataset must contain both classes: %d pos, %d neg", pos, neg)
	}
	if neg > pos*cc.NegativesPerPositive {
		t.Fatalf("negatives %d exceed requested ratio (pos %d)", neg, pos)
	}
}

func TestPositiveTargetsInUnitRange(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	for _, s := range ds.Samples {
		if !s.Target.HasObject {
			continue
		}
		if s.Target.CX < 0 || s.Target.CX > 1 || s.Target.CY < 0 || s.Target.CY > 1 {
			t.Fatalf("box center out of range: %+v", s.Target)
		}
		if s.Target.W <= 0 || s.Target.H <= 0 {
			t.Fatalf("degenerate box: %+v", s.Target)
		}
	}
}

func TestPositiveClipContainsCulvertPixels(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	for _, s := range ds.Samples {
		if !s.Target.HasObject {
			continue
		}
		// The bright culvert signature must appear at the labeled center.
		cx := int(s.Target.CX * float32(cc.Size))
		cy := int(s.Target.CY * float32(cc.Size))
		if v := s.Image.At(BandR, cy, cx); v < 0.7 {
			t.Fatalf("no culvert signature at labeled center: red=%v", v)
		}
	}
}

func TestNegativeClipsHaveNoCrossing(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	w, ds := buildTestDataset(t, cc)
	for _, s := range ds.Samples {
		if s.Target.HasObject {
			continue
		}
		for _, p := range w.Crossings {
			if p.R >= s.Origin.R && p.R < s.Origin.R+cc.Size &&
				p.C >= s.Origin.C && p.C < s.Origin.C+cc.Size {
				t.Fatalf("negative clip at %v contains crossing %v", s.Origin, p)
			}
		}
	}
}

func TestSplitRatioAndDisjoint(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	train, test := ds.Split(0.8, 42)
	if len(train.Samples)+len(test.Samples) != len(ds.Samples) {
		t.Fatal("split lost samples")
	}
	wantTrain := int(0.8 * float64(len(ds.Samples)))
	if len(train.Samples) != wantTrain {
		t.Fatalf("train size %d, want %d", len(train.Samples), wantTrain)
	}
}

func TestBatchAssembly(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	if len(ds.Samples) < 3 {
		t.Skip("dataset too small")
	}
	x, targets := ds.Batch(0, 3)
	if x.Dim(0) != 3 || x.Dim(1) != NumBands || x.Dim(2) != 64 || x.Dim(3) != 64 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(targets) != 3 {
		t.Fatalf("targets = %d", len(targets))
	}
	// First sample's first pixel must match.
	if x.At(0, 0, 0, 0) != ds.Samples[0].Image.At(0, 0, 0) {
		t.Fatal("batch content mismatch")
	}
}

func TestBatchInvalidRangePanics(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds.Batch(5, 2)
}

func TestShuffleDeterministic(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, a := buildTestDataset(t, cc)
	_, b := buildTestDataset(t, cc)
	a.Shuffle(9)
	b.Shuffle(9)
	for i := range a.Samples {
		if a.Samples[i].Origin != b.Samples[i].Origin {
			t.Fatal("shuffle not deterministic")
		}
	}
}

func TestFBMRangeAndDeterminism(t *testing.T) {
	f := NewFBM(rand.New(rand.NewSource(5)), 4)
	g := NewFBM(rand.New(rand.NewSource(5)), 4)
	for i := 0; i < 500; i++ {
		x, y := float64(i%25)/25, float64(i/25)/20
		v := f.At(x, y)
		if v < 0 || v > 1 {
			t.Fatalf("FBM out of range: %v", v)
		}
		if v != g.At(x, y) {
			t.Fatal("FBM not deterministic")
		}
	}
}

func BenchmarkGenerateWatershed256(b *testing.B) {
	cfg := testConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRender256(b *testing.B) {
	w, err := Generate(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(w)
	}
}

package terrain

import (
	"testing"

	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

func rampImage() *tensor.Tensor {
	img := tensor.New(2, 4, 4)
	for i := range img.Data() {
		img.Data()[i] = float32(i)
	}
	return img
}

func TestFlipHInvolution(t *testing.T) {
	img := rampImage()
	if !FlipH(FlipH(img)).Equal(img) {
		t.Fatal("FlipH twice must be identity")
	}
	f := FlipH(img)
	if f.At(0, 0, 0) != img.At(0, 0, 3) {
		t.Fatal("FlipH did not mirror columns")
	}
}

func TestFlipVInvolution(t *testing.T) {
	img := rampImage()
	if !FlipV(FlipV(img)).Equal(img) {
		t.Fatal("FlipV twice must be identity")
	}
	f := FlipV(img)
	if f.At(1, 0, 2) != img.At(1, 3, 2) {
		t.Fatal("FlipV did not mirror rows")
	}
}

func TestRot90FourTimesIdentity(t *testing.T) {
	img := rampImage()
	r := Rot90(Rot90(Rot90(Rot90(img))))
	if !r.Equal(img) {
		t.Fatal("four 90° rotations must be identity")
	}
}

func TestRot90MovesCorner(t *testing.T) {
	img := rampImage()
	r := Rot90(img)
	// Clockwise: bottom-left corner (3,0) moves to top-left (0,0).
	if r.At(0, 0, 0) != img.At(0, 3, 0) {
		t.Fatalf("rot90 corner: got %v want %v", r.At(0, 0, 0), img.At(0, 3, 0))
	}
}

func TestRot90RequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square image")
		}
	}()
	Rot90(tensor.New(1, 2, 3))
}

// TestAugmentTargetsTrackPixels verifies that transformed boxes point at
// the same culvert pixels: the bright signature must appear at the
// transformed label center.
func TestAugmentTargetsTrackPixels(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	aug := Augment(ds, 3, 9)
	if len(aug.Samples) != len(ds.Samples)*4 {
		t.Fatalf("augmented size %d, want %d", len(aug.Samples), len(ds.Samples)*4)
	}
	for i, s := range aug.Samples {
		if !s.Target.HasObject {
			continue
		}
		cx := int(s.Target.CX * float32(cc.Size))
		cy := int(s.Target.CY * float32(cc.Size))
		if cx < 0 || cx >= cc.Size || cy < 0 || cy >= cc.Size {
			t.Fatalf("sample %d: transformed center out of bounds (%d,%d)", i, cx, cy)
		}
		// Look in a small neighborhood (centers are quantized to cells).
		found := false
		for dr := -2; dr <= 2 && !found; dr++ {
			for dc := -2; dc <= 2 && !found; dc++ {
				r, c := cy+dr, cx+dc
				if r < 0 || r >= cc.Size || c < 0 || c >= cc.Size {
					continue
				}
				if s.Image.At(BandR, r, c) > 0.7 {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("sample %d: no culvert signature near transformed center (%d,%d)", i, cy, cx)
		}
	}
}

func TestAugmentPreservesNegativeLabels(t *testing.T) {
	ds := &Dataset{ClipSize: 4, Samples: []Sample{{
		Image:  rampImage().Reshape(2, 4, 4),
		Target: nn.DetectionTarget{HasObject: false},
	}}}
	aug := Augment(ds, 2, 1)
	for _, s := range aug.Samples {
		if s.Target.HasObject {
			t.Fatal("augmentation must not invent objects")
		}
	}
}

func TestAugmentDeterministic(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 64
	_, ds := buildTestDataset(t, cc)
	a := Augment(ds, 2, 7)
	b := Augment(ds, 2, 7)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("nondeterministic augmentation size")
	}
	for i := range a.Samples {
		if !a.Samples[i].Image.Equal(b.Samples[i].Image) {
			t.Fatal("nondeterministic augmentation content")
		}
	}
}

package terrain

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 48
	_, ds := buildTestDataset(t, cc)
	var buf bytes.Buffer
	if err := SaveDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClipSize != ds.ClipSize || len(got.Samples) != len(ds.Samples) {
		t.Fatalf("round trip changed structure: %d/%d samples", len(got.Samples), len(ds.Samples))
	}
	for i := range ds.Samples {
		if !got.Samples[i].Image.Equal(ds.Samples[i].Image) {
			t.Fatalf("sample %d pixels changed", i)
		}
		if got.Samples[i].Target != ds.Samples[i].Target {
			t.Fatalf("sample %d target changed", i)
		}
		if got.Samples[i].Origin != ds.Samples[i].Origin {
			t.Fatalf("sample %d origin changed", i)
		}
	}
}

func TestSaveDatasetEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDataset(&buf, &Dataset{ClipSize: 40}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestLoadDatasetGarbage(t *testing.T) {
	if _, err := LoadDataset(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	cc := DefaultClipConfig()
	cc.Size = 48
	_, ds := buildTestDataset(t, cc)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := SaveDatasetFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(ds.Samples) {
		t.Fatal("file round trip lost samples")
	}
}

func TestLoadDatasetFileMissing(t *testing.T) {
	if _, err := LoadDatasetFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("expected error")
	}
}

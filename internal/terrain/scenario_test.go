package terrain

import (
	"testing"
)

func scenarioTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Rows, cfg.Cols = 192, 192
	cfg.RoadSpacing = 72
	cfg.StreamThreshold = 120
	return cfg
}

// Same seed and scenario must produce bit-identical rasters, generation
// through rendering — the sweep checkpoint/resume proof leans on this.
func TestScenarioRenderDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cfg := sc.Apply(scenarioTestConfig())
			w1, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w2, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(w1.Crossings) != len(w2.Crossings) {
				t.Fatalf("crossing counts differ: %d vs %d", len(w1.Crossings), len(w2.Crossings))
			}
			for i := range w1.Crossings {
				if w1.Crossings[i] != w2.Crossings[i] {
					t.Fatalf("crossing %d differs: %v vs %v", i, w1.Crossings[i], w2.Crossings[i])
				}
			}
			a, b := RenderScenario(w1, sc), RenderScenario(w2, sc)
			da, db := a.Data(), b.Data()
			if len(da) != len(db) {
				t.Fatalf("raster sizes differ: %d vs %d", len(da), len(db))
			}
			for i := range da {
				if da[i] != db[i] {
					t.Fatalf("pixel %d differs: %v vs %v", i, da[i], db[i])
				}
			}
		})
	}
}

// Every non-baseline scenario must actually change something: either the
// generated terrain (regimes) or the rendered radiance (imaging knobs).
func TestScenarioPerturbationsTakeEffect(t *testing.T) {
	base := scenarioTestConfig()
	wBase, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	imgBase := Render(wBase)
	for _, sc := range Scenarios() {
		if sc.Name == "baseline" {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cfg := sc.Apply(base)
			if sc.Regime != "" {
				if cfg == base {
					t.Fatalf("regime %q left the config unchanged", sc.Regime)
				}
				w, err := Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(w.Crossings) == 0 {
					t.Fatal("regime generated no crossings")
				}
				return
			}
			img := RenderScenario(wBase, sc)
			diff := 0
			da, db := img.Data(), imgBase.Data()
			for i := range da {
				if da[i] != db[i] {
					diff++
				}
			}
			if diff == 0 {
				t.Fatalf("scenario %q rendered identically to the baseline", sc.Name)
			}
		})
	}
}

// Scenario values must stay in the renderer's [0,1] radiance contract.
func TestScenarioRenderStaysInRange(t *testing.T) {
	cfg := scenarioTestConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range Scenarios() {
		if sc.Regime != "" {
			continue
		}
		img := RenderScenario(w, sc)
		for i, v := range img.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("scenario %q pixel %d = %v out of [0,1]", sc.Name, i, v)
			}
		}
	}
}

func TestScenarioByName(t *testing.T) {
	sc, err := ScenarioByName("cloud_shadow")
	if err != nil {
		t.Fatal(err)
	}
	if sc.CloudShadow == 0 {
		t.Fatal("cloud_shadow scenario has no shadow")
	}
	if sc, err := ScenarioByName(""); err != nil || sc.Name != "baseline" {
		t.Fatalf("empty name should resolve to baseline, got %+v, %v", sc, err)
	}
	if _, err := ScenarioByName("volcano"); err == nil {
		t.Fatal("unknown scenario should error")
	}
}

package terrain

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"drainnet/internal/hydro"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// datasetFile is the on-disk dataset format. Sample images are stored as
// raw float32 slices with a shared shape (all clips in one dataset have
// identical dimensions).
type datasetFile struct {
	Format   int
	ClipSize int
	Bands    int
	Samples  []sampleRecord
}

type sampleRecord struct {
	Pixels   []float32
	Target   nn.DetectionTarget
	Origin   hydro.Point
	Crossing hydro.Point
}

const datasetFormat = 1

// SaveDataset writes the dataset to w in gob format, so expensive
// generation runs can be cached and shared.
func SaveDataset(w io.Writer, ds *Dataset) error {
	if len(ds.Samples) == 0 {
		return fmt.Errorf("terrain: refusing to save an empty dataset")
	}
	df := datasetFile{
		Format:   datasetFormat,
		ClipSize: ds.ClipSize,
		Bands:    ds.Samples[0].Image.Dim(0),
	}
	for _, s := range ds.Samples {
		df.Samples = append(df.Samples, sampleRecord{
			Pixels:   s.Image.Data(),
			Target:   s.Target,
			Origin:   s.Origin,
			Crossing: s.Crossing,
		})
	}
	return gob.NewEncoder(w).Encode(df)
}

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var df datasetFile
	if err := gob.NewDecoder(r).Decode(&df); err != nil {
		return nil, fmt.Errorf("terrain: decode dataset: %w", err)
	}
	if df.Format != datasetFormat {
		return nil, fmt.Errorf("terrain: unsupported dataset format %d", df.Format)
	}
	ds := &Dataset{ClipSize: df.ClipSize}
	want := df.Bands * df.ClipSize * df.ClipSize
	for i, rec := range df.Samples {
		if len(rec.Pixels) != want {
			return nil, fmt.Errorf("terrain: sample %d has %d pixels, want %d", i, len(rec.Pixels), want)
		}
		ds.Samples = append(ds.Samples, Sample{
			Image:    tensor.FromSlice(rec.Pixels, df.Bands, df.ClipSize, df.ClipSize),
			Target:   rec.Target,
			Origin:   rec.Origin,
			Crossing: rec.Crossing,
		})
	}
	return ds, nil
}

// SaveDatasetFile writes the dataset to path atomically.
func SaveDatasetFile(path string, ds *Dataset) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveDataset(f, ds); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadDatasetFile reads a dataset from path.
func LoadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadDataset(f)
}

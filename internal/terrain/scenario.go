package terrain

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"drainnet/internal/tensor"
)

// Scenario perturbs watershed synthesis and rendering along the axes the
// sweep workload diversifies over (ROADMAP "diversify scenarios"): a
// seasonal NIR reflectance shift, per-pixel sensor noise, a cloud shadow,
// and the terrain regime (flat plain vs. incised hills). A scenario is
// pure data: the same watershed seed and scenario always produce
// bit-identical rasters (see TestScenarioRenderDeterministic).
type Scenario struct {
	// Name identifies the scenario in job specs, summaries and metrics.
	Name string `json:"name"`
	// NIRShift is added to the NIR band before clamping to [0,1]:
	// negative for senescent/leaf-off vegetation, positive for peak
	// green-up.
	NIRShift float64 `json:"nir_shift,omitempty"`
	// NoiseSigma is the standard deviation of zero-mean Gaussian sensor
	// noise added independently to every band sample.
	NoiseSigma float64 `json:"noise_sigma,omitempty"`
	// CloudShadow darkens one soft-edged elliptical region by this
	// fraction (0 disables, 0.5 halves the radiance under the cloud).
	// The ellipse placement derives from the watershed seed.
	CloudShadow float64 `json:"cloud_shadow,omitempty"`
	// Regime selects the terrain character: "" keeps the config as-is,
	// RegimeFlatPlain flattens relief (weak drainage, broad wetlands),
	// RegimeIncisedHills deepens it (strong relief, entrenched channels).
	Regime string `json:"regime,omitempty"`
}

// Terrain regimes selectable by Scenario.Regime.
const (
	RegimeFlatPlain    = "flat_plain"
	RegimeIncisedHills = "incised_hills"
)

// BaselineScenario is the unperturbed rendering the training set uses.
func BaselineScenario() Scenario { return Scenario{Name: "baseline"} }

// Scenarios returns the named scenario suite: the baseline plus one
// scenario per knob, so a sweep over the suite exercises every axis.
func Scenarios() []Scenario {
	return []Scenario{
		BaselineScenario(),
		{Name: "leaf_off", NIRShift: -0.18},
		{Name: "green_up", NIRShift: 0.12},
		{Name: "noisy_sensor", NoiseSigma: 0.03},
		{Name: "cloud_shadow", CloudShadow: 0.45},
		{Name: "flat_plain", Regime: RegimeFlatPlain},
		{Name: "incised_hills", Regime: RegimeIncisedHills},
	}
}

// ScenarioByName resolves a suite scenario; "" selects the baseline.
func ScenarioByName(name string) (Scenario, error) {
	if name == "" {
		return BaselineScenario(), nil
	}
	var known []string
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
		known = append(known, s.Name)
	}
	return Scenario{}, fmt.Errorf("terrain: unknown scenario %q (have %s)", name, strings.Join(known, ", "))
}

// Apply folds the scenario's terrain regime into a watershed config.
// Rendering knobs (NIR shift, noise, shadow) do not alter the config;
// they act in RenderScenario.
func (s Scenario) Apply(cfg Config) Config {
	switch s.Regime {
	case "", "default":
	case RegimeFlatPlain:
		// Subdued loess plain: little local relief, a gentler regional
		// slope, and diffuse accumulation (streams need more catchment).
		cfg.ReliefM *= 0.4
		cfg.RegionalDropM *= 0.6
		cfg.StreamThreshold *= 0.8
	case RegimeIncisedHills:
		// Dissected uplands: strong relief and entrenched channels that
		// concentrate flow quickly.
		cfg.ReliefM *= 2.0
		cfg.RegionalDropM *= 1.5
		cfg.StreamThreshold *= 1.2
	default:
		// Unknown regimes are a programmer error surfaced by Validate-time
		// ScenarioByName; keep Apply total for direct struct literals.
	}
	return cfg
}

// RenderScenario renders the watershed's orthophoto under the scenario's
// imaging conditions. The perturbation stream is seeded from the
// watershed seed and the scenario name, so every (config, scenario) pair
// renders bit-identically across processes.
func RenderScenario(w *Watershed, s Scenario) *tensor.Tensor {
	img := Render(w)
	if s.NIRShift == 0 && s.NoiseSigma == 0 && s.CloudShadow == 0 {
		return img
	}
	cfg := w.Cfg
	rng := rand.New(rand.NewSource(cfg.Seed ^ scenarioSeed(s.Name)))
	rows, cols := cfg.Rows, cfg.Cols
	plane := rows * cols
	data := img.Data()

	// Seasonal NIR shift: a uniform offset on the NIR band.
	if s.NIRShift != 0 {
		nir := data[BandNIR*plane : (BandNIR+1)*plane]
		for i, v := range nir {
			nir[i] = clampUnit(v + float32(s.NIRShift))
		}
	}

	// Cloud shadow: one soft-edged ellipse covering roughly a quarter of
	// the raster, darkening all bands. Drawn before sensor noise so the
	// noise floor is unaffected (shadows attenuate signal, not read noise).
	if s.CloudShadow > 0 {
		cr := float64(rows) * (0.25 + 0.5*rng.Float64())
		cc := float64(cols) * (0.25 + 0.5*rng.Float64())
		ry := float64(rows) * (0.18 + 0.12*rng.Float64())
		rx := float64(cols) * (0.22 + 0.15*rng.Float64())
		for r := 0; r < rows; r++ {
			dy := (float64(r) - cr) / ry
			for c := 0; c < cols; c++ {
				dx := (float64(c) - cc) / rx
				d := dx*dx + dy*dy
				if d >= 1 {
					continue
				}
				// Smoothstep falloff: full darkening at the center, fading
				// to nothing at the ellipse boundary.
				edge := 1 - d
				atten := 1 - s.CloudShadow*edge*edge*(3-2*edge)
				i := r*cols + c
				for b := 0; b < NumBands; b++ {
					data[b*plane+i] = float32(float64(data[b*plane+i]) * atten)
				}
			}
		}
	}

	// Sensor noise: i.i.d. Gaussian per band sample, clamped like Render.
	if s.NoiseSigma > 0 {
		for i, v := range data {
			data[i] = clampUnit(v + float32(rng.NormFloat64()*s.NoiseSigma))
		}
	}
	return img
}

func clampUnit(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// scenarioSeed hashes a scenario name into a seed offset, so scenarios
// sharing a watershed seed still draw independent perturbation streams.
func scenarioSeed(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

package ios

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"drainnet/internal/graph"
)

// fakeRunner is an OpRunner whose operators burn a fixed, node-dependent
// amount of time, so oracle arithmetic is checkable.
type fakeRunner struct {
	delay time.Duration
	binds int
	runs  int
}

func (f *fakeRunner) BindOp(n *graph.Node, batch int) error {
	f.binds++
	return nil
}

func (f *fakeRunner) RunOp() {
	f.runs++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
}

func branchyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.NewGraph("m", 3, 16, 16)
	x := g.Conv(g.In, "conv", 4, 3, 1)
	a := g.AdaptivePool(x, "a", 2)
	b := g.AdaptivePool(x, "b", 1)
	cat := g.Concat([]*graph.Node{a, b}, "cat")
	g.FC(cat, "fc", 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func fastOracle(r OpRunner, cache *CostCache) *MeasuredOracle {
	o := NewMeasuredOracle(r, cache)
	o.Warmup, o.Samples, o.MinSampleNs = 0, 4, 0
	return o
}

func TestMeasuredOracleCachesMeasurements(t *testing.T) {
	g := branchyGraph(t)
	r := &fakeRunner{}
	o := fastOracle(r, nil)
	groups := [][]*graph.Node{{g.Nodes[1]}} // the conv node, single group
	first := o.StageCost(groups, 2)
	runsAfterFirst := r.runs
	second := o.StageCost(groups, 2)
	if first != second {
		t.Fatalf("cached cost changed: %g != %g", first, second)
	}
	if r.runs != runsAfterFirst {
		t.Fatalf("second StageCost re-measured (%d extra runs)", r.runs-runsAfterFirst)
	}
	// A different batch size is a different measurement.
	o.StageCost(groups, 4)
	if r.runs == runsAfterFirst {
		t.Fatal("batch change did not trigger a new measurement")
	}
}

func TestMeasuredOracleSingleVsMultiGroupRegimes(t *testing.T) {
	g := branchyGraph(t)
	r := &fakeRunner{}
	o := fastOracle(r, nil)
	a, b := g.Nodes[2], g.Nodes[3]
	single := o.StageCost([][]*graph.Node{{a}}, 1)
	o.StageCost([][]*graph.Node{{a}, {b}}, 1)
	// Same node priced in both regimes must create two cache entries
	// (solo and inline) plus one for b.
	if got := o.Cache().Len(); got != 3 {
		t.Fatalf("expected 3 cache entries (a-solo, a-inline, b-inline), got %d", got)
	}
	if single <= 0 {
		t.Fatalf("non-positive single-group cost %g", single)
	}
}

func TestMeasuredOracleOptimizeEndToEnd(t *testing.T) {
	g := branchyGraph(t)
	o := fastOracle(&fakeRunner{}, nil)
	sched, err := Optimize(g, o, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestLPTMakespan(t *testing.T) {
	cases := []struct {
		chains []float64
		lanes  int
		want   float64
	}{
		{[]float64{5, 3, 2}, 1, 10},       // one lane: serial sum
		{[]float64{5, 3, 2}, 2, 5},        // LPT: {5} | {3,2}
		{[]float64{5, 3, 2}, 3, 5},        // one chain per lane
		{[]float64{4, 4, 4, 4}, 8, 4},     // lanes capped at chain count
		{[]float64{6, 5, 4, 3, 2}, 2, 11}, // LPT: {6,3,2}=11 | {5,4}=9 (greedy, not optimal 10)
	}
	for i, c := range cases {
		got := lptMakespan(c.chains, c.lanes)
		if math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("case %d: lptMakespan(%v, %d) = %g, want %g", i, c.chains, c.lanes, got, c.want)
		}
	}
}

func TestCostCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "costs.json")
	c := NewCostCache()
	c.Entries["p1|b2|solo|conv|..."] = 123.5
	c.Entries["p1|b2|inline|conv|..."] = 456.25
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCostCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Entries["p1|b2|solo|conv|..."] != 123.5 {
		t.Fatalf("round trip lost data: %+v", got.Entries)
	}
	// Missing file loads empty without error.
	empty, err := LoadCostCache(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || empty.Len() != 0 {
		t.Fatalf("missing file: cache=%v err=%v", empty, err)
	}
	// Version mismatch loads empty.
	c.Version = 999
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	stale, err := LoadCostCache(path)
	if err != nil || stale.Len() != 0 {
		t.Fatalf("stale version should load empty, got %d entries err=%v", stale.Len(), err)
	}
}

func TestMeasuredOracleWarmCacheSkipsMeasurement(t *testing.T) {
	g := branchyGraph(t)
	r1 := &fakeRunner{}
	o1 := fastOracle(r1, nil)
	groups := [][]*graph.Node{{g.Nodes[2]}, {g.Nodes[3]}}
	o1.StageCost(groups, 1)
	// Second oracle over the saved cache must not touch its runner.
	r2 := &fakeRunner{}
	o2 := fastOracle(r2, o1.Cache())
	o2.StageCost(groups, 1)
	if r2.binds != 0 || r2.runs != 0 {
		t.Fatalf("warm cache still measured: binds=%d runs=%d", r2.binds, r2.runs)
	}
}

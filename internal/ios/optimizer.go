package ios

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"drainnet/internal/gpu"
	"drainnet/internal/graph"
)

// MaxDPBlockSize bounds the block size the exact DP will attempt; larger
// blocks fall back to the greedy per-level schedule. 3^16 subset pairs is
// the practical ceiling for interactive use.
const MaxDPBlockSize = 16

// CostOracle prices one stage (a set of concurrent groups) at a batch
// size, in nanoseconds of end-to-end time. It is an alias of the shared
// gpu.CostOracle interface; both the simulated oracle below and the
// wall-clock MeasuredOracle implement it.
type CostOracle = gpu.CostOracle

// SimOracle prices stages by replaying them on a scratch GPU simulator.
// Results are memoized: the DP re-prices identical group sets many times.
type SimOracle struct {
	Dev   gpu.DeviceConfig
	cache map[string]float64
}

// NewSimOracle creates a memoizing oracle for the device.
func NewSimOracle(dev gpu.DeviceConfig) *SimOracle {
	return &SimOracle{Dev: dev, cache: make(map[string]float64)}
}

// StageCost implements CostOracle.
func (o *SimOracle) StageCost(groups []Group, batch int) float64 {
	key := stageKey(groups, batch)
	if c, ok := o.cache[key]; ok {
		return c
	}
	sim := gpu.NewSim(o.Dev)
	sim.LoadLibrary()
	start := sim.NowNs()
	sim.RunStage(groups, batch)
	cost := sim.NowNs() - start
	o.cache[key] = cost
	return cost
}

func stageKey(groups []Group, batch int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		ids := make([]string, len(g))
		for j, n := range g {
			ids[j] = fmt.Sprint(n.ID)
		}
		parts[i] = strings.Join(ids, ",")
	}
	sort.Strings(parts)
	return fmt.Sprintf("b%d|%s", batch, strings.Join(parts, ";"))
}

// Optimize runs the IOS dynamic program on every block of g and
// concatenates the per-block schedules, then merges adjacent single-group
// stages (which removes needless synchronization between linear chains).
func Optimize(g *graph.Graph, oracle CostOracle, batch int) (*Schedule, error) {
	blocks, err := graph.FindBlocks(g)
	if err != nil {
		return nil, err
	}
	var stages []Stage
	for _, b := range blocks {
		bs, err := optimizeBlock(b, oracle, batch)
		if err != nil {
			return nil, err
		}
		stages = append(stages, bs...)
	}
	stages = mergeLinearStages(stages)
	sched := &Schedule{Name: "ios", Stages: stages}
	if err := sched.Validate(g); err != nil {
		return nil, fmt.Errorf("ios: optimizer produced invalid schedule: %w", err)
	}
	return sched, nil
}

// optimizeBlock runs the stage-partition DP over one block's members.
func optimizeBlock(b *graph.Block, oracle CostOracle, batch int) ([]Stage, error) {
	members := b.Members
	n := len(members)
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return []Stage{{Groups: []Group{{members[0]}}}}, nil
	}
	if n > MaxDPBlockSize {
		// Fall back to greedy levels within the block.
		return greedyBlockStages(b), nil
	}

	idx := make(map[int]int, n) // node ID -> bit index
	for i, m := range members {
		idx[m.ID] = i
	}
	// In-block dependency masks.
	depMask := make([]uint32, n)
	for i, m := range members {
		for _, in := range m.Inputs {
			if j, ok := idx[in.ID]; ok {
				depMask[i] |= 1 << j
			}
		}
	}

	full := uint32(1)<<n - 1
	memo := make(map[uint32]float64)
	choice := make(map[uint32]uint32)
	var dp func(done uint32) float64
	dp = func(done uint32) float64 {
		if done == full {
			return 0
		}
		if v, ok := memo[done]; ok {
			return v
		}
		remaining := full &^ done
		best := -1.0
		var bestT uint32
		// Enumerate non-empty submasks T of remaining as the next stage.
		for T := remaining; T != 0; T = (T - 1) & remaining {
			groups, ok := stageGroups(T, done, members, depMask)
			if !ok {
				continue
			}
			c := oracle.StageCost(groups, batch) + dp(done|T)
			if best < 0 || c < best {
				best = c
				bestT = T
			}
		}
		if best < 0 {
			// No valid next stage — cannot happen on a DAG, but guard anyway.
			best = 0
			bestT = remaining
		}
		memo[done] = best
		choice[done] = bestT
		return best
	}
	dp(0)

	var stages []Stage
	done := uint32(0)
	for done != full {
		T := choice[done]
		groups, ok := stageGroups(T, done, members, depMask)
		if !ok {
			return nil, fmt.Errorf("ios: reconstruction produced invalid stage in block ending at %q", b.Exit.Name)
		}
		stages = append(stages, Stage{Groups: groups})
		done |= T
	}
	return stages, nil
}

// stageGroups checks whether the member subset T can execute as one stage
// given the already-executed set done, and if so returns its grouping:
// weakly-connected components of T, each of which must form a dependency
// chain. Operators may depend on earlier operators in their own chain or
// on anything in done (or outside the block); cross-group intra-stage
// dependencies are invalid because groups only synchronize at stage end.
func stageGroups(T, done uint32, members []*graph.Node, depMask []uint32) ([]Group, bool) {
	n := len(members)
	// Dependency closure: every in-block dep must be in done or in T.
	for i := 0; i < n; i++ {
		if T&(1<<i) == 0 {
			continue
		}
		if depMask[i]&^(done|T) != 0 {
			return nil, false
		}
	}
	// Union-find over edges internal to T.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		if T&(1<<i) == 0 {
			continue
		}
		deps := depMask[i] & T
		for deps != 0 {
			j := bits.TrailingZeros32(deps)
			deps &^= 1 << j
			ri, rj := find(i), find(j)
			if ri != rj {
				parent[ri] = rj
			}
		}
	}
	comps := map[int][]int{}
	for i := 0; i < n; i++ {
		if T&(1<<i) != 0 {
			r := find(i)
			comps[r] = append(comps[r], i)
		}
	}
	var roots []int
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var groups []Group
	for _, r := range roots {
		comp := comps[r] // ascending bit order == topological (IDs ascend)
		// Chain check: each member's in-T deps must be exactly the previous
		// member (or empty for the first).
		for pos, i := range comp {
			inT := depMask[i] & T
			if pos == 0 {
				if inT != 0 {
					return nil, false
				}
			} else if inT != 1<<comp[pos-1] {
				return nil, false
			}
		}
		g := make(Group, len(comp))
		for pos, i := range comp {
			g[pos] = members[i]
		}
		groups = append(groups, g)
	}
	return groups, true
}

// greedyBlockStages builds ASAP-level stages for one block (fallback for
// oversized blocks).
func greedyBlockStages(b *graph.Block) []Stage {
	inBlock := map[int]bool{}
	for _, m := range b.Members {
		inBlock[m.ID] = true
	}
	level := map[int]int{}
	maxLevel := 0
	for _, m := range b.Members {
		l := 0
		for _, in := range m.Inputs {
			if inBlock[in.ID] && level[in.ID]+1 > l {
				l = level[in.ID] + 1
			}
		}
		level[m.ID] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	stages := make([]Stage, maxLevel+1)
	for _, m := range b.Members {
		l := level[m.ID]
		stages[l].Groups = append(stages[l].Groups, Group{m})
	}
	return stages
}

// mergeLinearStages merges runs of adjacent single-group stages into one
// stage, concatenating their chains. This removes synchronization points
// between consecutive linear segments.
func mergeLinearStages(stages []Stage) []Stage {
	var out []Stage
	for _, st := range stages {
		if len(out) > 0 && len(st.Groups) == 1 && len(out[len(out)-1].Groups) == 1 {
			prev := &out[len(out)-1]
			prev.Groups[0] = append(prev.Groups[0], st.Groups[0]...)
			continue
		}
		out = append(out, st)
	}
	return out
}

package ios

import (
	"encoding/json"
	"fmt"
	"io"

	"drainnet/internal/graph"
)

// scheduleJSON is the serialized schedule format: stages of groups of
// node IDs, resolved against a graph at load time (as the IOS artifact
// stores its optimized schedules).
type scheduleJSON struct {
	Name   string    `json:"name"`
	Eager  bool      `json:"eager,omitempty"`
	Stages [][][]int `json:"stages"` // stage -> group -> node IDs
}

// SaveSchedule writes the schedule as JSON.
func SaveSchedule(w io.Writer, s *Schedule) error {
	sj := scheduleJSON{Name: s.Name, Eager: s.Eager}
	for _, st := range s.Stages {
		var groups [][]int
		for _, gr := range st.Groups {
			var ids []int
			for _, n := range gr {
				ids = append(ids, n.ID)
			}
			groups = append(groups, ids)
		}
		sj.Stages = append(sj.Stages, groups)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sj)
}

// LoadSchedule reads a schedule saved by SaveSchedule and resolves its
// node IDs against g, validating the result.
func LoadSchedule(r io.Reader, g *graph.Graph) (*Schedule, error) {
	var sj scheduleJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, fmt.Errorf("ios: decode schedule: %w", err)
	}
	s := &Schedule{Name: sj.Name, Eager: sj.Eager}
	for si, groups := range sj.Stages {
		var stage Stage
		for gi, ids := range groups {
			var gr Group
			for _, id := range ids {
				if id < 0 || id >= len(g.Nodes) {
					return nil, fmt.Errorf("ios: schedule stage %d group %d references node %d outside graph %q", si, gi, id, g.Name)
				}
				gr = append(gr, g.Nodes[id])
			}
			stage.Groups = append(stage.Groups, gr)
		}
		s.Stages = append(s.Stages, stage)
	}
	if err := s.Validate(g); err != nil {
		return nil, fmt.Errorf("ios: loaded schedule invalid: %w", err)
	}
	return s, nil
}

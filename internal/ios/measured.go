package ios

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"drainnet/internal/graph"
	"drainnet/internal/tensor"
)

// OpRunner executes one operator of the concrete model so the measured
// oracle can time it. BindOp prepares node n at a batch size (synthetic
// inputs, kernel selection); each subsequent RunOp executes the bound
// operator once. nn.GraphProgram is the real implementation.
type OpRunner interface {
	BindOp(n *graph.Node, batch int) error
	RunOp()
}

// OpTagger is optionally implemented by an OpRunner whose operators run
// in more than one numeric precision. The tag joins the cost-cache key,
// so e.g. an int8-quantized conv is priced independently of its fp32
// sibling with the same shapes. An empty tag means the default (fp32)
// precision and leaves the key unchanged — warm caches recorded before
// tagging existed stay valid.
type OpTagger interface {
	OpTag(n *graph.Node) string
}

// MeasuredOracle prices stages from wall-clock timings of the concrete
// model's kernels on the local machine, replacing the simulated GPU with
// the hardware that will actually serve. Each operator is benchmarked in
// the two regimes the ScheduleExecutor runs it in:
//
//   - solo: the operator owns the worker pool (single-group stage) and
//     keeps its intra-operator parallelism;
//   - inline: the operator runs inside one group of a concurrent stage,
//     where nested parallel regions degrade to serial execution
//     (reproduced via tensor.RunInline).
//
// A single-group stage then costs the sum of its solo times; a
// multi-group stage costs the LPT makespan of its groups' inline chain
// times over the available lanes, plus a fixed fork/join overhead.
// Timings are warmup + trimmed-mean and memoized in a CostCache keyed by
// operator signature, batch, regime and GOMAXPROCS, so a serve process
// that loads a saved cache never re-measures.
type MeasuredOracle struct {
	Runner OpRunner
	// Workers is the number of concurrent group lanes a stage can use:
	// the pool workers plus the calling goroutine.
	Workers int
	// StageSyncNs is the fixed fork/join overhead charged per multi-group
	// stage (the ParallelRange submit + completion handshake).
	StageSyncNs float64
	// Warmup and Samples control each measurement: Warmup discarded runs,
	// then Samples timed runs whose trimmed mean is the cost.
	Warmup  int
	Samples int
	// MinSampleNs stretches one timed sample to at least this long by
	// repeating the operator, so sub-microsecond kernels are measured
	// above clock granularity.
	MinSampleNs float64

	cache *CostCache
	err   error
}

// NewMeasuredOracle builds an oracle over r, memoizing into cache (a
// fresh cache is created when nil).
func NewMeasuredOracle(r OpRunner, cache *CostCache) *MeasuredOracle {
	if cache == nil {
		cache = NewCostCache()
	}
	return &MeasuredOracle{
		Runner:      r,
		Workers:     tensor.PoolWorkers() + 1,
		StageSyncNs: 5e3,
		Warmup:      2,
		Samples:     10,
		MinSampleNs: 2e5,
		cache:       cache,
	}
}

// Cache returns the oracle's cost cache (for saving after optimization).
func (o *MeasuredOracle) Cache() *CostCache { return o.cache }

// Err returns the first operator-binding error encountered, if any.
// StageCost cannot report errors through the CostOracle interface, so a
// failed bind is priced pessimistically and recorded here; callers should
// check Err after Optimize.
func (o *MeasuredOracle) Err() error { return o.err }

// StageCost implements the shared gpu.CostOracle interface.
func (o *MeasuredOracle) StageCost(groups []Group, batch int) float64 {
	if len(groups) == 1 {
		total := 0.0
		for _, n := range groups[0] {
			total += o.opCost(n, batch, false)
		}
		return total
	}
	chains := make([]float64, len(groups))
	for gi, g := range groups {
		for _, n := range g {
			chains[gi] += o.opCost(n, batch, true)
		}
	}
	return lptMakespan(chains, o.Workers) + o.StageSyncNs
}

// opCost returns the trimmed-mean nanoseconds of one execution of node n
// at the batch size, in the inline or solo regime, measuring on a cache
// miss.
func (o *MeasuredOracle) opCost(n *graph.Node, batch int, inline bool) float64 {
	key := costKey(n, batch, inline)
	if t, ok := o.Runner.(OpTagger); ok {
		if tag := t.OpTag(n); tag != "" {
			key += "|prec=" + tag
		}
	}
	if c, ok := o.cache.Get(key); ok {
		return c
	}
	if err := o.Runner.BindOp(n, batch); err != nil {
		if o.err == nil {
			o.err = err
		}
		// Pessimistic but finite, so the DP still terminates.
		return 1e12
	}
	c := o.measure(inline)
	o.cache.Put(key, c)
	return c
}

// measure times the bound operator: warmup, then Samples trimmed-mean
// runs, each stretched to MinSampleNs by repetition.
func (o *MeasuredOracle) measure(inline bool) float64 {
	run := func(reps int) float64 {
		body := func() {
			for i := 0; i < reps; i++ {
				o.Runner.RunOp()
			}
		}
		start := time.Now()
		if inline {
			tensor.RunInline(body)
		} else {
			body()
		}
		return float64(time.Since(start)) / float64(reps)
	}
	for i := 0; i < o.Warmup; i++ {
		run(1)
	}
	// Calibrate repetitions so one sample exceeds the clock floor.
	reps := 1
	if probe := run(1); probe*float64(reps) < o.MinSampleNs {
		if probe <= 0 {
			probe = 1
		}
		reps = int(o.MinSampleNs/probe) + 1
	}
	samples := make([]float64, o.Samples)
	for i := range samples {
		samples[i] = run(reps)
	}
	return trimmedMean(samples)
}

// trimmedMean drops the top and bottom quarter of the sorted samples and
// averages the rest, rejecting scheduler-noise outliers in both tails.
func trimmedMean(s []float64) float64 {
	sort.Float64s(s)
	trim := len(s) / 4
	kept := s[trim : len(s)-trim]
	total := 0.0
	for _, v := range kept {
		total += v
	}
	return total / float64(len(kept))
}

// lptMakespan schedules the given chain durations onto lanes by longest
// processing time first — the same greedy order a work-stealing pool
// approximates — and returns the finishing time of the busiest lane.
func lptMakespan(chains []float64, lanes int) float64 {
	if lanes < 1 {
		lanes = 1
	}
	if lanes > len(chains) {
		lanes = len(chains)
	}
	sorted := append([]float64(nil), chains...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, lanes)
	for _, d := range sorted {
		min := 0
		for i := 1; i < lanes; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += d
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

// costKey identifies one measurement: what the operator computes (kind,
// input/output shapes, work and weight volume — not its name, so
// identical ops share one entry), the batch size, the execution regime,
// and GOMAXPROCS (pool shape changes both regimes' timings).
func costKey(n *graph.Node, batch int, inline bool) string {
	regime := "solo"
	if inline {
		regime = "inline"
	}
	ins := ""
	for _, in := range n.Inputs {
		ins += fmt.Sprintf("%v", in.OutShape)
	}
	return fmt.Sprintf("p%d|b%d|%s|%s|ins=%s|out=%v|f=%d|w=%d",
		runtime.GOMAXPROCS(0), batch, regime, n.Kind, ins, n.OutShape,
		n.FLOPsPerSample, n.WeightBytes)
}

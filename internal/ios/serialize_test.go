package ios

import (
	"bytes"
	"strings"
	"testing"

	"drainnet/internal/gpu"
)

func TestScheduleSaveLoadRoundTrip(t *testing.T) {
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	sched, err := Optimize(g, NewSimOracle(gpu.RTXA5500()), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSchedule(&buf, sched); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSchedule(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != sched.String() {
		t.Fatalf("round trip changed schedule:\n%s\nvs\n%s", got, sched)
	}
}

func TestLoadScheduleRejectsWrongGraph(t *testing.T) {
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	sched, err := Optimize(g, NewSimOracle(gpu.RTXA5500()), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSchedule(&buf, sched); err != nil {
		t.Fatal(err)
	}
	// A graph with fewer nodes: IDs resolve to different/missing nodes.
	small := sppNetGraph([]int{2, 1}, 128)
	if _, err := LoadSchedule(&buf, small); err == nil {
		t.Fatal("expected error resolving against a mismatched graph")
	}
}

func TestLoadScheduleGarbage(t *testing.T) {
	g := sppNetGraph([]int{2, 1}, 128)
	if _, err := LoadSchedule(strings.NewReader("not json"), g); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadScheduleOutOfRangeID(t *testing.T) {
	g := sppNetGraph([]int{2, 1}, 128)
	js := `{"name":"x","stages":[[[999]]]}`
	if _, err := LoadSchedule(strings.NewReader(js), g); err == nil {
		t.Fatal("expected error for out-of-range node ID")
	}
}

package ios

import (
	"testing"

	"drainnet/internal/gpu"
	"drainnet/internal/graph"
)

// sppNetGraph builds the paper's SPP-Net topology with the given pyramid
// levels and FC width.
func sppNetGraph(levels []int, fc int) *graph.Graph {
	g := graph.NewGraph("sppnet", 4, 100, 100)
	x := g.Conv(g.In, "conv1", 64, 3, 1)
	x = g.Pool(x, "pool1", 2, 2)
	x = g.Conv(x, "conv2", 128, 3, 1)
	x = g.Pool(x, "pool2", 2, 2)
	x = g.Conv(x, "conv3", 256, 3, 1)
	x = g.Pool(x, "pool3", 2, 2)
	var branches []*graph.Node
	names := []string{"spp_a", "spp_b", "spp_c", "spp_d", "spp_e"}
	for i, l := range levels {
		branches = append(branches, g.AdaptivePool(x, names[i], l))
	}
	cat := g.Concat(branches, "concat")
	h := g.FC(cat, "fc1", fc)
	g.FC(h, "head", 5)
	return g
}

func TestSequentialScheduleValid(t *testing.T) {
	g := sppNetGraph([]int{4, 2, 1}, 1024)
	s := SequentialSchedule(g)
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if !s.Eager {
		t.Fatal("sequential schedule must be eager")
	}
	if s.NumKernels() != len(g.Nodes)-1 {
		t.Fatalf("kernels = %d, want %d", s.NumKernels(), len(g.Nodes)-1)
	}
}

func TestGreedyScheduleValid(t *testing.T) {
	g := sppNetGraph([]int{4, 2, 1}, 1024)
	s := GreedySchedule(g)
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	// The three SPP branches share one dependency level → one stage must
	// hold three groups.
	found := false
	for _, st := range s.Stages {
		if len(st.Groups) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("greedy schedule should put the 3 SPP branches in one stage")
	}
}

func TestValidateRejectsCrossGroupDeps(t *testing.T) {
	g := sppNetGraph([]int{2, 1}, 128)
	var spp1, cat *graph.Node
	for _, n := range g.Nodes {
		switch n.Name {
		case "spp_a":
			spp1 = n
		case "concat":
			cat = n
		}
	}
	// Build an invalid schedule: concat in the same stage as its producer
	// but a different group.
	var rest Group
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput || n == spp1 || n == cat {
			continue
		}
		rest = append(rest, n)
	}
	bad := &Schedule{Stages: []Stage{
		{Groups: []Group{rest}},
		{Groups: []Group{{spp1}, {cat}}},
	}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("expected validation error for cross-group same-stage dependency")
	}
}

func TestValidateRejectsMissingNode(t *testing.T) {
	g := sppNetGraph([]int{2, 1}, 128)
	s := SequentialSchedule(g)
	s.Stages[0].Groups[0] = s.Stages[0].Groups[0][:len(s.Stages[0].Groups[0])-1]
	if err := s.Validate(g); err == nil {
		t.Fatal("expected validation error for missing node")
	}
}

func TestOptimizeProducesValidSchedule(t *testing.T) {
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	oracle := NewSimOracle(gpu.RTXA5500())
	s, err := Optimize(g, oracle, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g); err != nil {
		t.Fatal(err)
	}
	if s.NumKernels() != len(g.Nodes)-1 {
		t.Fatalf("optimized schedule kernels = %d, want %d", s.NumKernels(), len(g.Nodes)-1)
	}
}

func TestOptimizeParallelizesSPPBranchesAtLargeBatch(t *testing.T) {
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	oracle := NewSimOracle(gpu.RTXA5500())
	s, err := Optimize(g, oracle, 64)
	if err != nil {
		t.Fatal(err)
	}
	// At batch 64 the SPP kernels are long enough that concurrent groups
	// win: some stage must hold more than one group.
	multi := false
	for _, st := range s.Stages {
		if len(st.Groups) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatalf("expected a multi-group stage at batch 64:\n%s", s)
	}
}

func TestOptimizedBeatsSequentialAllModels(t *testing.T) {
	// Table 2's core claim: the IOS schedule beats the sequential baseline
	// for every candidate model at batch 1.
	dev := gpu.RTXA5500()
	oracle := NewSimOracle(dev)
	rt := NewRuntime(dev)
	configs := []struct {
		name   string
		levels []int
		fc     int
	}{
		{"original", []int{4, 2, 1}, 1024},
		{"sppnet1", []int{4, 2, 1}, 1024}, // conv1 size differs in the real model; same graph topology
		{"sppnet2", []int{5, 2, 1}, 4096},
		{"sppnet3", []int{5, 2, 1}, 2048},
	}
	for _, c := range configs {
		g := sppNetGraph(c.levels, c.fc)
		seq := rt.Measure(g, SequentialSchedule(g), 1)
		opt, err := Optimize(g, oracle, 1)
		if err != nil {
			t.Fatal(err)
		}
		optRes := rt.Measure(g, opt, 1)
		if optRes.LatencyNs >= seq.LatencyNs {
			t.Fatalf("%s: optimized %.0f ns not faster than sequential %.0f ns", c.name, optRes.LatencyNs, seq.LatencyNs)
		}
	}
}

func TestEfficiencyImprovesWithBatch(t *testing.T) {
	// Fig 6's shape: per-image latency falls as batch grows, with
	// diminishing returns.
	dev := gpu.RTXA5500()
	oracle := NewSimOracle(dev)
	rt := NewRuntime(dev)
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	sched, err := Optimize(g, oracle, 1)
	if err != nil {
		t.Fatal(err)
	}
	e1 := rt.Measure(g, sched, 1).EfficiencyNsPerImage
	e8 := rt.Measure(g, sched, 8).EfficiencyNsPerImage
	e64 := rt.Measure(g, sched, 64).EfficiencyNsPerImage
	if !(e1 > e8 && e8 > e64) {
		t.Fatalf("per-image latency must fall with batch: %v > %v > %v", e1, e8, e64)
	}
	// Diminishing returns: the 1→8 gain must exceed the 8→64 gain ratio.
	if e1/e8 < e8/e64 {
		t.Fatalf("expected diminishing gains: 1→8 %.2fx, 8→64 %.2fx", e1/e8, e8/e64)
	}
}

func TestGainShrinksWithBatch(t *testing.T) {
	// Fig 6: sequential and optimized converge at large batch.
	dev := gpu.RTXA5500()
	oracle := NewSimOracle(dev)
	rt := NewRuntime(dev)
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	gain := func(batch int) float64 {
		seq := rt.Measure(g, SequentialSchedule(g), batch)
		opt, err := Optimize(g, oracle, batch)
		if err != nil {
			t.Fatal(err)
		}
		return seq.LatencyNs / rt.Measure(g, opt, batch).LatencyNs
	}
	g1, g64 := gain(1), gain(64)
	if g1 <= 1 || g64 <= 1 {
		t.Fatalf("IOS must win at both batch sizes: %v, %v", g1, g64)
	}
	if g64 >= g1 {
		t.Fatalf("gain should shrink with batch: b1=%.3fx b64=%.3fx", g1, g64)
	}
}

func TestOptimizeNotWorseThanGreedy(t *testing.T) {
	dev := gpu.RTXA5500()
	oracle := NewSimOracle(dev)
	rt := NewRuntime(dev)
	for _, batch := range []int{1, 16, 64} {
		g := sppNetGraph([]int{5, 2, 1}, 4096)
		opt, err := Optimize(g, oracle, batch)
		if err != nil {
			t.Fatal(err)
		}
		optLat := rt.Measure(g, opt, batch).LatencyNs
		greedyLat := rt.Measure(g, GreedySchedule(g), batch).LatencyNs
		if optLat > greedyLat*1.001 {
			t.Fatalf("batch %d: DP schedule %.0f ns worse than greedy %.0f ns", batch, optLat, greedyLat)
		}
	}
}

func TestSimOracleCaches(t *testing.T) {
	g := sppNetGraph([]int{2, 1}, 128)
	oracle := NewSimOracle(gpu.RTXA5500())
	var gr Group
	for _, n := range g.Nodes {
		if n.Kind != graph.OpInput {
			gr = append(gr, n)
			break
		}
	}
	c1 := oracle.StageCost([]Group{gr}, 4)
	c2 := oracle.StageCost([]Group{gr}, 4)
	if c1 != c2 {
		t.Fatal("oracle must be deterministic")
	}
	if len(oracle.cache) != 1 {
		t.Fatalf("cache size %d, want 1", len(oracle.cache))
	}
}

func TestStageGroupsRejectsNonChainComponent(t *testing.T) {
	// A diamond a→{b,c}→d inside one stage is not a chain.
	g := graph.NewGraph("diamond", 8, 8, 8)
	a := g.Conv(g.In, "a", 8, 3, 1)
	b := g.AdaptivePool(a, "b", 2)
	c := g.AdaptivePool(a, "c", 1)
	d := g.Concat([]*graph.Node{b, c}, "d")
	members := []*graph.Node{a, b, c, d}
	depMask := []uint32{0, 1, 1, 6}
	if _, ok := stageGroups(0b1111, 0, members, depMask); ok {
		t.Fatal("diamond must not be schedulable as one stage")
	}
	// But {b, c} alone (a done) is two valid parallel groups.
	groups, ok := stageGroups(0b0110, 0b0001, members, depMask)
	if !ok || len(groups) != 2 {
		t.Fatalf("expected 2 groups for parallel branches, got %v ok=%v", groups, ok)
	}
}

func TestScheduleStringListsStages(t *testing.T) {
	g := sppNetGraph([]int{2, 1}, 128)
	s := GreedySchedule(g)
	str := s.String()
	if len(str) == 0 || str[0] != 's' {
		t.Fatalf("unexpected String: %q", str)
	}
}

func TestRunResultFields(t *testing.T) {
	dev := gpu.RTXA5500()
	rt := NewRuntime(dev)
	g := sppNetGraph([]int{2, 1}, 128)
	res := rt.Measure(g, SequentialSchedule(g), 4)
	if res.Batch != 4 || res.Kernels != len(g.Nodes)-1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.EfficiencyNsPerImage*4 != res.LatencyNs {
		t.Fatal("efficiency must be latency/batch")
	}
}

package ios

import (
	"drainnet/internal/gpu"
	"drainnet/internal/graph"
)

// Runtime executes schedules on a simulated GPU and measures latency.
type Runtime struct {
	Dev gpu.DeviceConfig
	// EagerDispatchNs is the per-operator CPU overhead charged when
	// executing an Eager (framework-sequential) schedule, modeling the
	// dispatch cost of eager deep-learning frameworks. Static schedules
	// (IOS, greedy) pay only the raw launch cost.
	EagerDispatchNs float64
}

// NewRuntime creates a runtime with the default eager-dispatch calibration.
func NewRuntime(dev gpu.DeviceConfig) *Runtime {
	return &Runtime{Dev: dev, EagerDispatchNs: 25000}
}

// RunResult summarizes one inference execution.
type RunResult struct {
	// LatencyNs is end-to-end: input H2D copy, all stages, output D2H copy.
	LatencyNs float64
	// EfficiencyNsPerImage is LatencyNs / batch (the paper's "inference
	// efficiency" metric from §6.4).
	EfficiencyNsPerImage float64
	// Batch echoes the batch size.
	Batch int
	// Kernels is the number of kernel launches.
	Kernels int
}

// Run executes one batched inference of g under sched on sim. The caller
// owns sim, so profiling runs can keep accumulating events (including the
// one-time library load) while latency runs can pre-warm. Latency excludes
// the library load when the sim is pre-warmed via sim.LoadLibrary().
func (r *Runtime) Run(sim *gpu.Sim, g *graph.Graph, sched *Schedule, batch int) RunResult {
	if batch < 1 {
		panic("ios: batch must be ≥ 1")
	}
	start := sim.NowNs()
	inBytes := int64(volume(g.In.OutShape)) * 4 * int64(batch)
	sim.MemcpyH2D("input", inBytes)
	opts := gpu.StageOpts{}
	if sched.Eager {
		opts.DispatchNs = r.EagerDispatchNs
	}
	// Execute the whole plan with GPU-side stage barriers and one host
	// sync, as the IOS runtime does (events between streams, a single
	// cudaDeviceSynchronize before reading results back).
	stages := make([][][]*graph.Node, len(sched.Stages))
	for si, st := range sched.Stages {
		groups := make([][]*graph.Node, len(st.Groups))
		for i, gr := range st.Groups {
			groups[i] = gr
		}
		stages[si] = groups
	}
	sim.RunPlan(stages, batch, opts)
	outBytes := int64(volume(g.Out.OutShape)) * 4 * int64(batch)
	sim.MemcpyD2H("output", outBytes)
	lat := sim.NowNs() - start
	return RunResult{
		LatencyNs:            lat,
		EfficiencyNsPerImage: lat / float64(batch),
		Batch:                batch,
		Kernels:              sched.NumKernels(),
	}
}

// Measure is a convenience wrapper: fresh pre-warmed simulator, one run.
func (r *Runtime) Measure(g *graph.Graph, sched *Schedule, batch int) RunResult {
	sim := gpu.NewSim(r.Dev)
	sim.LoadLibrary()
	return r.Run(sim, g, sched, batch)
}

func volume(shape []int) int {
	v := 1
	for _, d := range shape {
		v *= d
	}
	return v
}

//go:build unix

package ios

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on path (created if
// missing), blocking until it is available, and returns the unlock
// function. Cross-process writers of a shared cost-cache file serialize
// their read-merge-write cycles through it.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

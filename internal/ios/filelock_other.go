//go:build !unix

package ios

// lockFile degrades to a no-op on platforms without flock: the atomic
// tmp+rename in Save still keeps the file valid, concurrent
// cross-process savers may lose each other's new entries (they re-measure
// on the next run), and in-process concurrency stays fully protected by
// the cache mutex.
func lockFile(path string) (func(), error) {
	return func() {}, nil
}

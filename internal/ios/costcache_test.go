package ios

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestCostCacheConcurrentAccess hammers one cache from many goroutines —
// the shape of the parallel NAS executor, whose workers share one cache —
// and must pass under -race.
func TestCostCacheConcurrentAccess(t *testing.T) {
	c := NewCostCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d|op%d", w, i%17)
				c.Put(key, float64(i))
				if _, ok := c.Get(key); !ok {
					t.Errorf("key %s vanished", key)
					return
				}
				c.Len()
				if i%50 == 0 {
					c.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 8*17 {
		t.Fatalf("got %d entries, want %d", c.Len(), 8*17)
	}
}

// TestCostCacheTwoWriterMerge is the two-process scenario: two caches
// with disjoint (and one conflicting) measurements save to the same
// file concurrently. Merge-on-save under the file lock must preserve
// every key, and each writer's own value must win its conflicts.
func TestCostCacheTwoWriterMerge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "costs.json")

	a, b := NewCostCache(), NewCostCache()
	for i := 0; i < 50; i++ {
		a.Put(fmt.Sprintf("a|op%d", i), float64(i))
		b.Put(fmt.Sprintf("b|op%d", i), float64(1000+i))
	}
	a.Put("shared", 1)
	b.Put("shared", 2)

	var wg sync.WaitGroup
	for _, c := range []*CostCache{a, b} {
		wg.Add(1)
		go func(c *CostCache) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := c.Save(path); err != nil {
					t.Errorf("save: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	got, err := LoadCostCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 101 {
		t.Fatalf("merged cache has %d entries, want 101 (a's 50 + b's 50 + shared)", got.Len())
	}
	for i := 0; i < 50; i++ {
		if v, ok := got.Get(fmt.Sprintf("a|op%d", i)); !ok || v != float64(i) {
			t.Fatalf("a|op%d = %v,%t after merge", i, v, ok)
		}
		if v, ok := got.Get(fmt.Sprintf("b|op%d", i)); !ok || v != float64(1000+i) {
			t.Fatalf("b|op%d = %v,%t after merge", i, v, ok)
		}
	}
	// The conflicting key holds whichever writer saved last — both are
	// legitimate fresh measurements; it must just be one of them.
	if v, _ := got.Get("shared"); v != 1 && v != 2 {
		t.Fatalf("shared = %v, want 1 or 2", v)
	}

	// A later save from a third cache must keep everything already there.
	c3 := NewCostCache()
	c3.Put("c|only", 7)
	if err := c3.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCostCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 102 {
		t.Fatalf("after third writer: %d entries, want 102", got.Len())
	}
	if v, ok := got.Get("a|op0"); !ok || v != 0 {
		t.Fatalf("third writer dropped a|op0: %v,%t", v, ok)
	}
}

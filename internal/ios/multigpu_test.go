package ios

import (
	"testing"

	"drainnet/internal/graph"
)

// ensembleGraph builds a wide DAG: k independent conv towers from one
// input, concatenated — the branch-parallel structure HIOS targets.
func ensembleGraph(towers int) *graph.Graph {
	g := graph.NewGraph("ensemble", 4, 100, 100)
	var heads []*graph.Node
	for i := 0; i < towers; i++ {
		x := g.Conv(g.In, name("t", i, "conv1"), 64, 3, 1)
		x = g.Pool(x, name("t", i, "pool1"), 2, 2)
		x = g.Conv(x, name("t", i, "conv2"), 128, 3, 1)
		x = g.AdaptivePool(x, name("t", i, "gap"), 1)
		heads = append(heads, x)
	}
	g.Concat(heads, "merge")
	return g
}

func name(p string, i int, s string) string {
	return p + string(rune('0'+i)) + "_" + s
}

func TestMultiGPUValidation(t *testing.T) {
	if _, err := OptimizeMultiGPU(ensembleGraph(2), MultiGPUConfig{GPUs: 0}, 1); err == nil {
		t.Fatal("expected error for zero GPUs")
	}
	cfg := DefaultMultiGPU(2)
	cfg.LinkGBps = 0
	if _, err := OptimizeMultiGPU(ensembleGraph(2), cfg, 1); err == nil {
		t.Fatal("expected error for zero-bandwidth link")
	}
}

func TestMultiGPUPlacesEveryOperator(t *testing.T) {
	g := ensembleGraph(3)
	ms, err := OptimizeMultiGPU(g, DefaultMultiGPU(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Placements) != len(g.Nodes)-1 {
		t.Fatalf("placed %d of %d operators", len(ms.Placements), len(g.Nodes)-1)
	}
	for _, p := range ms.Placements {
		if p.GPU < 0 || p.GPU >= 2 {
			t.Fatalf("node %q on invalid GPU %d", p.Node.Name, p.GPU)
		}
		if p.FinishNs <= p.StartNs {
			t.Fatalf("node %q has non-positive duration", p.Node.Name)
		}
	}
}

func TestMultiGPURespectsDependencies(t *testing.T) {
	g := ensembleGraph(2)
	cfg := DefaultMultiGPU(3)
	ms, err := OptimizeMultiGPU(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	finish := map[int]Placement{}
	for _, p := range ms.Placements {
		finish[p.Node.ID] = p
	}
	for _, p := range ms.Placements {
		for _, in := range p.Node.Inputs {
			if in.Kind == graph.OpInput {
				continue
			}
			dep := finish[in.ID]
			min := dep.FinishNs
			if dep.GPU != p.GPU {
				min += cfg.LinkLatencyNs // at least the link latency
			}
			if p.StartNs < min-1e-6 {
				t.Fatalf("node %q starts at %v before dependency %q is available at %v",
					p.Node.Name, p.StartNs, in.Name, min)
			}
		}
	}
}

func TestMultiGPUSpeedsUpWideGraphs(t *testing.T) {
	// Four independent towers at a compute-heavy batch: two GPUs must
	// meaningfully beat one.
	g := ensembleGraph(4)
	cfg := DefaultMultiGPU(2)
	single, err := SingleGPUMakespan(g, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OptimizeMultiGPU(g, cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MakespanNs >= single*0.7 {
		t.Fatalf("2 GPUs gave only %.2fx on a 4-tower graph", single/ms.MakespanNs)
	}
}

func TestMultiGPUNoWorseOnLinearChain(t *testing.T) {
	// A purely linear model cannot benefit, and EFT must not regress it
	// by bouncing operators across devices.
	g := graph.NewGraph("chain", 4, 100, 100)
	x := g.Conv(g.In, "c1", 64, 3, 1)
	x = g.Pool(x, "p1", 2, 2)
	x = g.Conv(x, "c2", 128, 3, 1)
	g.FC(x, "fc", 256)
	cfg := DefaultMultiGPU(4)
	single, err := SingleGPUMakespan(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OptimizeMultiGPU(g, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MakespanNs > single*1.001 {
		t.Fatalf("multi-GPU regressed a linear chain: %v vs %v", ms.MakespanNs, single)
	}
	if ms.TransferBytes != 0 {
		t.Fatalf("linear chain should not incur transfers, got %d bytes", ms.TransferBytes)
	}
}

func TestMultiGPUSlowLinkCollapsesToOneDevice(t *testing.T) {
	// With a pathologically slow interconnect, EFT should keep everything
	// on one device rather than pay transfer costs.
	g := ensembleGraph(3)
	cfg := DefaultMultiGPU(2)
	cfg.LinkGBps = 0.0001
	cfg.LinkLatencyNs = 5e7
	ms, err := OptimizeMultiGPU(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms.TransferBytes != 0 {
		t.Fatalf("slow link should suppress transfers, got %d bytes", ms.TransferBytes)
	}
}

func TestMultiGPUSPPNetModest(t *testing.T) {
	// SPP-Net is mostly a linear chain: extra GPUs must not hurt, and the
	// gain should be modest (documenting the honest expectation).
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	cfg := DefaultMultiGPU(2)
	single, err := SingleGPUMakespan(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OptimizeMultiGPU(g, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MakespanNs > single*1.001 {
		t.Fatalf("2 GPUs regressed SPP-Net: %v vs %v", ms.MakespanNs, single)
	}
}

func TestMultiScheduleString(t *testing.T) {
	ms, err := OptimizeMultiGPU(ensembleGraph(2), DefaultMultiGPU(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ms.String()
	if len(s) == 0 || ms.GPUOf(1) < 0 {
		t.Fatal("render or lookup failed")
	}
	if ms.GPUOf(9999) != -1 {
		t.Fatal("missing node must map to -1")
	}
}

package ios

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// CostCache is a serializable memo of operator (and NAS candidate)
// measurements. Keys embed GOMAXPROCS, so one file is valid across pool
// configurations; a cache loaded on a machine with different timings
// simply prices schedules from the recorded numbers (use a per-host
// cache file for fidelity).
//
// The cache is safe for concurrent use by multiple goroutines (every
// access goes through Get/Put/Len/Snapshot, guarded by an in-process
// mutex) and by multiple processes sharing one file: Save takes an
// exclusive file lock on a .lock sidecar, merges the on-disk entries
// into the in-memory ones (the writer's own entry wins per key — it is
// the newest measurement this process owns), and replaces the file with
// an atomic tmp+rename. Two processes measuring disjoint operators and
// saving concurrently therefore lose nothing.
type CostCache struct {
	// Version guards the key format; a mismatched file loads as empty.
	Version int                `json:"version"`
	Entries map[string]float64 `json:"entries"`

	mu sync.RWMutex
}

// costCacheVersion bumps when the key format or measurement protocol
// changes incompatibly.
const costCacheVersion = 1

// NewCostCache returns an empty cache.
func NewCostCache() *CostCache {
	return &CostCache{Version: costCacheVersion, Entries: make(map[string]float64)}
}

// Get returns the memoized measurement for key.
func (c *CostCache) Get(key string) (float64, bool) {
	c.mu.RLock()
	v, ok := c.Entries[key]
	c.mu.RUnlock()
	return v, ok
}

// Put records one measurement. Concurrent writers of the same key
// overwrite each other, which is benign: both values are fresh
// measurements of the same operator.
func (c *CostCache) Put(key string, v float64) {
	c.mu.Lock()
	c.Entries[key] = v
	c.mu.Unlock()
}

// Len reports the number of memoized measurements.
func (c *CostCache) Len() int {
	c.mu.RLock()
	n := len(c.Entries)
	c.mu.RUnlock()
	return n
}

// Snapshot returns a copy of the entries at one instant.
func (c *CostCache) Snapshot() map[string]float64 {
	c.mu.RLock()
	out := make(map[string]float64, len(c.Entries))
	for k, v := range c.Entries {
		out[k] = v
	}
	c.mu.RUnlock()
	return out
}

// costCacheFile is the serialized form — the cache without its lock.
type costCacheFile struct {
	Version int                `json:"version"`
	Entries map[string]float64 `json:"entries"`
}

// Save writes the cache as JSON, merging with whatever another process
// saved to the same path since this cache was loaded: disk-only keys are
// preserved, conflicting keys keep this writer's value. The write is a
// tmp file + rename (readers never observe a partial file) under an
// exclusive lock on path+".lock" (concurrent savers serialize, so
// neither's new entries are lost).
func (c *CostCache) Save(path string) error {
	unlock, err := lockFile(path + ".lock")
	if err != nil {
		return fmt.Errorf("ios: cost cache lock: %w", err)
	}
	defer unlock()

	merged := c.Snapshot()
	if disk, err := LoadCostCache(path); err == nil {
		for k, v := range disk.Entries {
			if _, ours := merged[k]; !ours {
				merged[k] = v
			}
		}
	}
	c.mu.RLock()
	version := c.Version
	c.mu.RUnlock()
	data, err := json.MarshalIndent(costCacheFile{Version: version, Entries: merged}, "", "  ")
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCostCache reads a cache written by Save. A missing file or a
// version mismatch yields an empty cache and no error, so callers can
// unconditionally load-measure-save.
func LoadCostCache(path string) (*CostCache, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return NewCostCache(), nil
		}
		return nil, err
	}
	var cf costCacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("ios: cost cache %s: %w", path, err)
	}
	if cf.Version != costCacheVersion || cf.Entries == nil {
		return NewCostCache(), nil
	}
	return &CostCache{Version: cf.Version, Entries: cf.Entries}, nil
}

package ios

import (
	"fmt"
	"math/rand"
	"testing"

	"drainnet/internal/gpu"
	"drainnet/internal/graph"
)

// randomDAG builds a random but well-formed CNN-shaped graph: a conv/pool
// backbone with random fan-out regions of adaptive-pool branches that
// reconverge through concats, followed by an FC chain. This is the graph
// family IOS must schedule correctly for any topology.
func randomDAG(rng *rand.Rand) *graph.Graph {
	g := graph.NewGraph("random", 4, 64, 64)
	x := g.In
	chID := 0
	channels := 8 << rng.Intn(2)
	segments := 1 + rng.Intn(3)
	for s := 0; s < segments; s++ {
		// Backbone segment.
		convs := 1 + rng.Intn(2)
		for i := 0; i < convs; i++ {
			chID++
			x = g.Conv(x, fmt.Sprintf("conv%d", chID), channels, 3, 1)
		}
		if x.OutShape[1] >= 8 && rng.Intn(2) == 0 {
			chID++
			x = g.Pool(x, fmt.Sprintf("pool%d", chID), 2, 2)
		}
		// Optional branch region.
		if rng.Intn(2) == 0 {
			branches := 2 + rng.Intn(3)
			var heads []*graph.Node
			for b := 0; b < branches; b++ {
				level := 1 + rng.Intn(4)
				if level > x.OutShape[1] {
					level = x.OutShape[1]
				}
				chID++
				heads = append(heads, g.AdaptivePool(x, fmt.Sprintf("ap%d", chID), level))
			}
			chID++
			cat := g.Concat(heads, fmt.Sprintf("cat%d", chID))
			chID++
			fc := g.FC(cat, fmt.Sprintf("fc%d", chID), 64+rng.Intn(256))
			if s == segments-1 || rng.Intn(2) == 0 {
				// Terminate through the FC chain.
				chID++
				g.FC(fc, fmt.Sprintf("head%d", chID), 5)
				return g
			}
			// Otherwise the backbone continues from x (the fc branch would
			// dangle, which Validate rejects) — so terminate here instead.
			chID++
			g.FC(fc, fmt.Sprintf("head%d", chID), 5)
			return g
		}
	}
	chID++
	ap := g.AdaptivePool(x, fmt.Sprintf("gap%d", chID), 1)
	chID++
	g.FC(ap, fmt.Sprintf("head%d", chID), 5)
	return g
}

// TestPropOptimizeValidOnRandomDAGs: for random graph topologies and
// batch sizes, the IOS optimizer must always emit a valid schedule that
// covers every operator exactly once, and it must never lose to the
// greedy baseline by more than cost-model noise.
func TestPropOptimizeValidOnRandomDAGs(t *testing.T) {
	dev := gpu.RTXA5500()
	rt := NewRuntime(dev)
	batches := []int{1, 4, 32}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g := randomDAG(rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: generator built invalid graph: %v", trial, err)
		}
		batch := batches[trial%len(batches)]
		oracle := NewSimOracle(dev)
		sched, err := Optimize(g, oracle, batch)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g)
		}
		if err := sched.Validate(g); err != nil {
			t.Fatalf("trial %d: invalid schedule: %v\n%s\n%s", trial, err, g, sched)
		}
		if sched.NumKernels() != len(g.Nodes)-1 {
			t.Fatalf("trial %d: %d kernels for %d operators", trial, sched.NumKernels(), len(g.Nodes)-1)
		}
		opt := rt.Measure(g, sched, batch).LatencyNs
		greedy := rt.Measure(g, GreedySchedule(g), batch).LatencyNs
		if opt > greedy*1.03 {
			t.Fatalf("trial %d (batch %d): IOS %.0f ns lost to greedy %.0f ns\n%s",
				trial, batch, opt, greedy, sched)
		}
	}
}

// TestPropSequentialAlwaysValid: the baselines must be valid on the same
// random family.
func TestPropBaselinesValidOnRandomDAGs(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		g := randomDAG(rng)
		if err := SequentialSchedule(g).Validate(g); err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		if err := GreedySchedule(g).Validate(g); err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
	}
}

// TestPropMultiGPUValidOnRandomDAGs: EFT placement must respect all
// dependency and transfer constraints on random topologies.
func TestPropMultiGPUValidOnRandomDAGs(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		g := randomDAG(rng)
		cfg := DefaultMultiGPU(1 + rng.Intn(4))
		batch := 1 << rng.Intn(6)
		ms, err := OptimizeMultiGPU(g, cfg, batch)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(ms.Placements) != len(g.Nodes)-1 {
			t.Fatalf("trial %d: placed %d of %d", trial, len(ms.Placements), len(g.Nodes)-1)
		}
		finish := map[int]Placement{}
		for _, p := range ms.Placements {
			finish[p.Node.ID] = p
		}
		for _, p := range ms.Placements {
			for _, in := range p.Node.Inputs {
				if in.Kind == graph.OpInput {
					continue
				}
				if p.StartNs < finish[in.ID].FinishNs-1e-6 {
					t.Fatalf("trial %d: %q starts before dependency %q finishes", trial, p.Node.Name, in.Name)
				}
			}
			if p.FinishNs > ms.MakespanNs+1e-6 {
				t.Fatalf("trial %d: makespan %v below finish %v", trial, ms.MakespanNs, p.FinishNs)
			}
		}
	}
}

package ios

import (
	"testing"

	"drainnet/internal/gpu"
)

func BenchmarkOptimizeSPPNet2(b *testing.B) {
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	for i := 0; i < b.N; i++ {
		// Fresh oracle per iteration so the DP (not the memo) is timed.
		if _, err := Optimize(g, NewSimOracle(gpu.RTXA5500()), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPlanBatch32(b *testing.B) {
	dev := gpu.RTXA5500()
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	sched, err := Optimize(g, NewSimOracle(dev), 32)
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRuntime(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Measure(g, sched, 32)
	}
}

func BenchmarkMultiGPUPlacement(b *testing.B) {
	g := sppNetGraph([]int{5, 2, 1}, 4096)
	cfg := DefaultMultiGPU(4)
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeMultiGPU(g, cfg, 16); err != nil {
			b.Fatal(err)
		}
	}
}

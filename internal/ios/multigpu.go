package ios

import (
	"fmt"
	"strings"

	"drainnet/internal/gpu"
	"drainnet/internal/graph"
)

// This file implements the paper's declared future work (§4.1): operator
// scheduling across multiple GPUs, in the style of HIOS (Kundu & Shu,
// IEEE Cluster 2023) — a hierarchical scheduler whose inter-GPU level
// places operators on devices and whose intra-GPU level orders them per
// device. The inter-GPU level here is earliest-finish-time list
// scheduling over the operator DAG with explicit inter-GPU transfer
// costs; on a single GPU it degenerates to the sequential order the IOS
// DP then refines.

// MultiGPUConfig describes a simulated multi-GPU node.
type MultiGPUConfig struct {
	// GPUs is the device count (≥ 1).
	GPUs int
	// Dev is the per-device configuration.
	Dev gpu.DeviceConfig
	// LinkGBps is the inter-GPU interconnect bandwidth (NVLink ≈ 25,
	// PCIe ≈ 8).
	LinkGBps float64
	// LinkLatencyNs is the per-transfer latency.
	LinkLatencyNs float64
}

// DefaultMultiGPU returns an n-GPU node of RTX A5500s joined by NVLink
// (the paper's workstation carries the NVLink-capable A5500).
func DefaultMultiGPU(n int) MultiGPUConfig {
	return MultiGPUConfig{GPUs: n, Dev: gpu.RTXA5500(), LinkGBps: 25, LinkLatencyNs: 1800}
}

// Validate checks the configuration.
func (c MultiGPUConfig) Validate() error {
	if c.GPUs < 1 {
		return fmt.Errorf("ios: need ≥ 1 GPU, got %d", c.GPUs)
	}
	if c.LinkGBps <= 0 || c.LinkLatencyNs < 0 {
		return fmt.Errorf("ios: invalid interconnect %+v", c)
	}
	return c.Dev.Validate()
}

// Placement is one operator's device assignment and timing.
type Placement struct {
	Node     *graph.Node
	GPU      int
	StartNs  float64
	FinishNs float64
}

// MultiSchedule is a placed, timed multi-GPU execution plan.
type MultiSchedule struct {
	Config     MultiGPUConfig
	Placements []Placement
	// MakespanNs is the finish time of the last operator.
	MakespanNs float64
	// TransferBytes is the total inter-GPU traffic.
	TransferBytes int64
}

// GPUOf returns the device assignment for a node ID (-1 if absent).
func (m *MultiSchedule) GPUOf(id int) int {
	for _, p := range m.Placements {
		if p.Node.ID == id {
			return p.GPU
		}
	}
	return -1
}

// String renders the placement per device.
func (m *MultiSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multi-GPU schedule (%d GPUs, makespan %.1f µs, %d transfer bytes):\n",
		m.Config.GPUs, m.MakespanNs/1e3, m.TransferBytes)
	for g := 0; g < m.Config.GPUs; g++ {
		fmt.Fprintf(&b, "  GPU %d:", g)
		for _, p := range m.Placements {
			if p.GPU == g {
				fmt.Fprintf(&b, " %s[%.0f–%.0fµs]", p.Node.Name, p.StartNs/1e3, p.FinishNs/1e3)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// OptimizeMultiGPU places and times the graph's operators across the
// node's GPUs with earliest-finish-time list scheduling: operators are
// visited in topological order; each is placed on the device where it
// finishes first, accounting for device availability, dependency finish
// times, and inter-GPU transfer costs for cross-device edges.
func OptimizeMultiGPU(g *graph.Graph, cfg MultiGPUConfig, batch int) (*MultiSchedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ms := &MultiSchedule{Config: cfg}
	ready := make([]float64, cfg.GPUs) // device availability
	finish := make(map[int]float64)    // node ID -> finish time
	placed := make(map[int]int)        // node ID -> GPU

	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			finish[n.ID] = 0
			placed[n.ID] = 0
			continue
		}
		dur := cfg.Dev.Cost(n, batch).SoloNs + cfg.Dev.KernelLaunchCPUNs
		bestGPU, bestStart, bestFinish := -1, 0.0, 0.0
		for dev := 0; dev < cfg.GPUs; dev++ {
			start := ready[dev]
			for _, in := range n.Inputs {
				// The input batch is resident on GPU 0; every cross-device
				// edge (including reads of the input) pays a transfer.
				avail := finish[in.ID]
				if placed[in.ID] != dev {
					bytes := float64(in.BytesOutPerSample()) * float64(batch)
					avail += cfg.LinkLatencyNs + bytes/cfg.LinkGBps
				}
				if avail > start {
					start = avail
				}
			}
			if bestGPU < 0 || start+dur < bestFinish {
				bestGPU, bestStart, bestFinish = dev, start, start+dur
			}
		}
		// Account transfers actually incurred by the chosen placement.
		for _, in := range n.Inputs {
			if placed[in.ID] != bestGPU {
				ms.TransferBytes += in.BytesOutPerSample() * int64(batch)
			}
		}
		placed[n.ID] = bestGPU
		finish[n.ID] = bestFinish
		ready[bestGPU] = bestFinish
		ms.Placements = append(ms.Placements, Placement{Node: n, GPU: bestGPU, StartNs: bestStart, FinishNs: bestFinish})
		if bestFinish > ms.MakespanNs {
			ms.MakespanNs = bestFinish
		}
	}
	return ms, nil
}

// SingleGPUMakespan returns the makespan of the same EFT model restricted
// to one device — the baseline a multi-GPU placement must beat.
func SingleGPUMakespan(g *graph.Graph, cfg MultiGPUConfig, batch int) (float64, error) {
	one := cfg
	one.GPUs = 1
	ms, err := OptimizeMultiGPU(g, one, batch)
	if err != nil {
		return 0, err
	}
	return ms.MakespanNs, nil
}

// Package ios implements the Inter-Operator Scheduler of Ding et al.
// (MLSys 2021) as used by the paper: a dynamic program that partitions
// each branched block of an operator DAG into sequential *stages* of
// parallel *groups*, minimizing predicted latency on the simulated GPU.
// Sequential (framework-eager) and greedy (ASAP-levels) baseline
// schedulers are provided for the ablation benchmarks.
package ios

import (
	"fmt"
	"strings"

	"drainnet/internal/graph"
)

// Group is a chain of operators executed sequentially in one stream. It
// is an alias (not a defined type) so that []Group is exactly the
// [][]*graph.Node the shared gpu.CostOracle interface prices — the DP
// hands stages to either oracle without conversion.
type Group = []*graph.Node

// Stage is a set of groups executed concurrently, synchronized at the end.
type Stage struct {
	Groups []Group
}

// Schedule is an execution plan for a graph: stages run in order.
type Schedule struct {
	Name   string
	Stages []Stage
	// Eager marks framework-eager execution semantics: the runtime pays a
	// per-operator dispatch overhead, modeling PyTorch/TensorFlow-style
	// sequential execution (the paper's baseline).
	Eager bool
}

// NumKernels returns the number of kernel launches in the schedule.
func (s *Schedule) NumKernels() int {
	n := 0
	for _, st := range s.Stages {
		for _, g := range st.Groups {
			n += len(g)
		}
	}
	return n
}

// String renders the schedule compactly, one stage per line.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s (%d stages):\n", s.Name, len(s.Stages))
	for i, st := range s.Stages {
		fmt.Fprintf(&b, "  stage %d: ", i)
		for j, g := range st.Groups {
			if j > 0 {
				b.WriteString(" | ")
			}
			var names []string
			for _, n := range g {
				names = append(names, n.Name)
			}
			b.WriteString(strings.Join(names, "→"))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Compact renders the whole schedule on one line — groups joined with
// "→" inside, " | " between groups, " ; " between stages — e.g.
// "conv1→pool1 ; spp_l5 | spp_l2 | spp_l1 ; fc1→head". Used by serve's
// structured startup logs and the bench harness, so a logged schedule is
// greppable against a benched one.
func (s *Schedule) Compact() string {
	var stages []string
	for _, st := range s.Stages {
		var groups []string
		for _, g := range st.Groups {
			var names []string
			for _, n := range g {
				names = append(names, n.Name)
			}
			groups = append(groups, strings.Join(names, "→"))
		}
		stages = append(stages, strings.Join(groups, " | "))
	}
	return strings.Join(stages, " ; ")
}

// Validate checks that the schedule executes every non-input node of g
// exactly once and respects dependencies: an operator's inputs must be
// scheduled in an earlier stage, or earlier within the same group.
func (s *Schedule) Validate(g *graph.Graph) error {
	doneStage := make(map[int]int)   // node ID -> stage index
	groupPos := make(map[int][2]int) // node ID -> (stage, group)
	posInGroup := make(map[int]int)
	for si, st := range s.Stages {
		for gi, gr := range st.Groups {
			for pi, n := range gr {
				if n.Kind == graph.OpInput {
					return fmt.Errorf("ios: schedule %s contains the input node", s.Name)
				}
				if _, dup := doneStage[n.ID]; dup {
					return fmt.Errorf("ios: node %q scheduled twice", n.Name)
				}
				doneStage[n.ID] = si
				groupPos[n.ID] = [2]int{si, gi}
				posInGroup[n.ID] = pi
			}
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			continue
		}
		if _, ok := doneStage[n.ID]; !ok {
			return fmt.Errorf("ios: node %q missing from schedule", n.Name)
		}
		for _, in := range n.Inputs {
			if in.Kind == graph.OpInput {
				continue
			}
			ds, ok := doneStage[in.ID]
			if !ok {
				return fmt.Errorf("ios: node %q depends on unscheduled %q", n.Name, in.Name)
			}
			switch {
			case ds < doneStage[n.ID]:
				// earlier stage: fine
			case ds == doneStage[n.ID] &&
				groupPos[in.ID] == groupPos[n.ID] &&
				posInGroup[in.ID] < posInGroup[n.ID]:
				// earlier in the same group: fine
			default:
				return fmt.Errorf("ios: node %q cannot see dependency %q (same stage, different group)", n.Name, in.Name)
			}
		}
	}
	return nil
}

// SequentialSchedule returns the framework-eager baseline: every operator
// in topological order in a single stream, with per-op dispatch overhead.
func SequentialSchedule(g *graph.Graph) *Schedule {
	var chain Group
	for _, n := range g.Nodes {
		if n.Kind != graph.OpInput {
			chain = append(chain, n)
		}
	}
	return &Schedule{
		Name:   "sequential",
		Stages: []Stage{{Groups: []Group{chain}}},
		Eager:  true,
	}
}

// GreedySchedule returns the ASAP-levels baseline: every dependency level
// becomes a stage, and every operator in a level is its own group. It
// maximizes concurrency without regard to stage-synchronization cost.
func GreedySchedule(g *graph.Graph) *Schedule {
	level := make(map[int]int)
	maxLevel := 0
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			level[n.ID] = -1
			continue
		}
		l := 0
		for _, in := range n.Inputs {
			if level[in.ID]+1 > l {
				l = level[in.ID] + 1
			}
		}
		level[n.ID] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	stages := make([]Stage, maxLevel+1)
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			continue
		}
		l := level[n.ID]
		stages[l].Groups = append(stages[l].Groups, Group{n})
	}
	return &Schedule{Name: "greedy", Stages: stages}
}

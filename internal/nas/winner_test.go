package nas

import (
	"math/rand"
	"path/filepath"
	"testing"

	"drainnet/internal/model"
	"drainnet/internal/train"
)

// TestWinnerRoundTrip: SaveWinner writes a plan + checkpoint that load
// back into an identical serving configuration and identical weights —
// the drainnet-nas → drainnet-serve handoff.
func TestWinnerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := tinySpace()
	arch := s.instantiate(3, 2, 128).Scaled(16).WithInput(4, 40)
	net, err := arch.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	trial := TrialResult{
		Candidate: CandidateConfig{Arch: s.instantiate(3, 2, 128), Precision: model.PrecisionInt8, Kernels: KernelModeTuned},
		Key:       "x", Accuracy: 0.93, Qualified: true,
		LatencyB1Ns: 1e6, LatencyBNNs: 4e6,
	}
	if _, err := SaveWinner(dir, trial, arch, net, 0.9, 16); err != nil {
		t.Fatal(err)
	}

	planPath := filepath.Join(dir, "plan.json")
	p, err := LoadWinnerPlan(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arch.Name != arch.Name || p.Arch.WidthScale != 16 || p.Arch.InSize != 40 {
		t.Fatalf("plan arch mangled: %+v", p.Arch)
	}
	if p.Candidate.Precision != model.PrecisionInt8 || p.Candidate.Kernels != KernelModeTuned {
		t.Fatalf("plan candidate mangled: %+v", p.Candidate)
	}
	if p.Threshold != 0.9 || p.MaxBatch != 16 || p.Accuracy != 0.93 {
		t.Fatalf("plan metadata mangled: %+v", p)
	}

	// The checkpoint must load into a net built from the plan's arch.
	net2, err := p.Arch.Build(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := train.LoadFile(p.ResolveCheckpoint(planPath), net2); err != nil {
		t.Fatalf("checkpoint does not load into plan arch: %v", err)
	}
	w1, w2 := net.Params(), net2.Params()
	if len(w1) != len(w2) {
		t.Fatalf("parameter count mismatch: %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		a, b := w1[i].Value.Data(), w2[i].Value.Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("weights differ at param %d index %d", i, j)
			}
		}
	}
}

// TestLoadWinnerPlanRejectsBadVersion guards the format.
func TestLoadWinnerPlanRejectsBadVersion(t *testing.T) {
	if _, err := LoadWinnerPlan(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing plan loaded without error")
	}
}

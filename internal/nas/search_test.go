package nas

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/nn"
)

// stubEvaluator scores candidates analytically: accuracy rewards wide
// FCs, latency charges for kernel size and fp32, with counters for
// dedup assertions.
type stubEvaluator struct {
	threshold float64
	mu        sync.Mutex
	calls     map[string]int
}

func newStubEvaluator(threshold float64) *stubEvaluator {
	return &stubEvaluator{threshold: threshold, calls: map[string]int{}}
}

func (s *stubEvaluator) EvaluateCandidate(c CandidateConfig) TrialResult {
	s.mu.Lock()
	s.calls[c.Key()]++
	s.mu.Unlock()
	acc := 0.80 + float64(c.Arch.FCWidth%4096)/40960 + float64(c.Arch.Convs[0].Kernel)/100
	lat := float64(c.Arch.Convs[0].Kernel*1000 + c.Arch.FCWidth)
	if c.Precision == model.PrecisionInt8 {
		lat *= 0.6
	}
	if c.Kernels == KernelModeTuned {
		lat *= 0.8
	}
	r := TrialResult{Candidate: c, Key: c.Key(), Accuracy: acc}
	if acc > s.threshold {
		r.Qualified = true
		r.LatencyB1Ns = lat
		r.LatencyBNNs = lat * 8
	}
	return r
}

func (s *stubEvaluator) totalCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.calls {
		n += c
	}
	return n
}

func (s *stubEvaluator) maxCallsPerKey() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0
	for _, c := range s.calls {
		if c > m {
			m = c
		}
	}
	return m
}

func trialKeys(ts []TrialResult) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key
	}
	return out
}

// TestJointSpaceSampleAndContains: every sample of the joint space is a
// member, and the joint size counts arch × precision × kernel.
func TestJointSpaceSampleAndContains(t *testing.T) {
	s := DefaultJointSpace()
	if got, want := s.JointSize(), s.Size()*2*2; got != want {
		t.Fatalf("JointSize = %d, want %d", got, want)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		c := s.SampleCandidate(rng)
		if !s.Contains(c) {
			t.Fatalf("sampled candidate %s not in space", c.Key())
		}
	}
	if got := len(s.AllCandidates()); got != s.JointSize() {
		t.Fatalf("AllCandidates = %d, want %d", got, s.JointSize())
	}
}

// TestMutateCandidateStaysInSpace: arbitrary mutation chains never leave
// the joint space and each step changes exactly one dimension.
func TestMutateCandidateStaysInSpace(t *testing.T) {
	s := DefaultJointSpace()
	rng := rand.New(rand.NewSource(11))
	c := s.SampleCandidate(rng)
	for i := 0; i < 500; i++ {
		next := s.MutateCandidate(rng, c)
		if !s.Contains(next) {
			t.Fatalf("step %d: mutated candidate %s left the space", i, next.Key())
		}
		changed := 0
		if next.Arch.Name != c.Arch.Name {
			changed++
		}
		if next.Precision != c.Precision {
			changed++
		}
		if next.Kernels != c.Kernels {
			changed++
		}
		if changed > 1 {
			t.Fatalf("step %d: mutation changed %d dimensions (%s -> %s)", i, changed, c.Key(), next.Key())
		}
		c = next
	}
}

// TestSearchDeterministicSameSeed: two searches with the same seed visit
// the same candidates in the same order and agree on the winner, for
// every strategy.
func TestSearchDeterministicSameSeed(t *testing.T) {
	s := DefaultJointSpace()
	for _, strategy := range []string{"random", "grid", "evolution"} {
		opts := SearchOptions{Strategy: strategy, Trials: 20, Seed: 42, Parallel: 1}
		r1, err := Search(s, newStubEvaluator(0.9), opts)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Search(s, newStubEvaluator(0.9), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(trialKeys(r1.Trials), trialKeys(r2.Trials)) {
			t.Fatalf("%s: same seed visited different candidates", strategy)
		}
		w1, w2 := r1.Winner(), r2.Winner()
		if (w1 == nil) != (w2 == nil) || (w1 != nil && w1.Key != w2.Key) {
			t.Fatalf("%s: same seed, different winner", strategy)
		}
	}
}

// TestSearchDedupNoDoubleEval: a small space forces revisits; no
// candidate may be evaluated twice, in any strategy or parallelism.
func TestSearchDedupNoDoubleEval(t *testing.T) {
	s := DefaultSpace()
	s.Conv1Kernel.Choices = []int{3, 5}
	s.SPPFirstLevel.Choices = []int{3}
	s.FCWidth.Choices = []int{256, 1024}
	s.Precisions = []model.Precision{model.PrecisionFP32, model.PrecisionInt8}
	for _, strategy := range []string{"random", "evolution"} {
		for _, par := range []int{1, 4} {
			eval := newStubEvaluator(0.85)
			r, err := Search(s, eval, SearchOptions{Strategy: strategy, Trials: 30, Seed: 3, Parallel: par})
			if err != nil {
				t.Fatal(err)
			}
			if eval.maxCallsPerKey() > 1 {
				t.Fatalf("%s parallel=%d: a candidate was evaluated more than once", strategy, par)
			}
			if eval.totalCalls() != len(r.Trials) {
				t.Fatalf("%s parallel=%d: history has %d trials but evaluator ran %d times",
					strategy, par, len(r.Trials), eval.totalCalls())
			}
			seen := map[string]bool{}
			for _, tr := range r.Trials {
				if seen[tr.Key] {
					t.Fatalf("%s parallel=%d: history lists %s twice", strategy, par, tr.Key)
				}
				seen[tr.Key] = true
			}
		}
	}
}

// TestSearchParallelSameCandidateSet: random and grid strategies evaluate
// the exact same candidate set (and pick the same winner) at any
// parallelism — the property the speedup benchmark relies on.
func TestSearchParallelSameCandidateSet(t *testing.T) {
	s := DefaultJointSpace()
	for _, strategy := range []string{"random", "grid"} {
		seq, err := Search(s, newStubEvaluator(0.9), SearchOptions{Strategy: strategy, Trials: 16, Seed: 5, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Search(s, newStubEvaluator(0.9), SearchOptions{Strategy: strategy, Trials: 16, Seed: 5, Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(trialKeys(seq.Trials), trialKeys(par.Trials)) {
			t.Fatalf("%s: parallel run changed the candidate set or order", strategy)
		}
		if seq.Winner().Key != par.Winner().Key {
			t.Fatalf("%s: parallel run changed the winner", strategy)
		}
	}
}

// TestSearchParallelOverlaps: with a blocking evaluator, 4 workers make
// progress concurrently — proving evalOrdered genuinely fans out.
func TestSearchParallelOverlaps(t *testing.T) {
	s := DefaultJointSpace()
	var inFlight, peak int32
	eval := CandidateEvaluatorFunc(func(c CandidateConfig) TrialResult {
		n := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		// Wait (yielding) until at least 2 are in flight, with a deadline
		// so a genuinely serial executor fails instead of hanging.
		deadline := time.Now().Add(2 * time.Second)
		for atomic.LoadInt32(&peak) < 2 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		atomic.AddInt32(&inFlight, -1)
		return TrialResult{Candidate: c, Key: c.Key(), Accuracy: 1, Qualified: true, LatencyBNNs: 1}
	})
	if _, err := Search(s, eval, SearchOptions{Strategy: "random", Trials: 32, Seed: 1, Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Fatalf("peak concurrent evaluations = %d, want ≥ 2", peak)
	}
}

// TestSearchRankingPrefersFastQualified: the winner is the fastest
// measured candidate among those satisfying a(n) > A — never an
// unqualified one, however fast.
func TestSearchRankingPrefersFastQualified(t *testing.T) {
	r := &SearchResult{Trials: []TrialResult{
		{Key: "slow-qualified", Qualified: true, Accuracy: 0.95, LatencyBNNs: 100, LatencyB1Ns: 10},
		{Key: "fast-unqualified", Qualified: false, Accuracy: 0.50, LatencyBNNs: 1},
		{Key: "fast-qualified", Qualified: true, Accuracy: 0.91, LatencyBNNs: 10, LatencyB1Ns: 2},
		{Key: "errored", Qualified: true, Err: "boom", LatencyBNNs: 0.1},
	}}
	w := r.Winner()
	if w == nil || w.Key != "fast-qualified" {
		t.Fatalf("winner = %+v, want fast-qualified", w)
	}
	ranked := r.Ranked()
	if len(ranked) != 2 {
		t.Fatalf("ranked %d trials, want 2 qualified", len(ranked))
	}
}

// tinyTrainer builds untrained networks and reports a deterministic
// pseudo-accuracy, standing in for the real training protocol so the
// measured pipeline itself can be exercised quickly.
func tinyTrainer(acc float64) Trainer {
	return TrainerFunc(func(cfg model.Config) (*nn.Sequential, float64, error) {
		net, err := cfg.Build(rand.New(rand.NewSource(1)))
		return net, acc, err
	})
}

func tinySpace() Space {
	s := DefaultSpace()
	s.Conv1Kernel.Choices = []int{3}
	s.SPPFirstLevel.Choices = []int{2}
	s.FCWidth.Choices = []int{128, 256}
	return s
}

// TestMeasuredEvaluatorPipeline: end-to-end on a tiny untrained net —
// the evaluator trains (stub), schedules, compiles and benches, fills
// the candidate-level cache, and a second evaluation is a pure cache hit
// with bit-identical latencies.
func TestMeasuredEvaluatorPipeline(t *testing.T) {
	cache := ios.NewCostCache()
	s := tinySpace()
	ev := &MeasuredEvaluator{
		Trainer:   tinyTrainer(0.95),
		Threshold: 0.9,
		InBands:   4, InSize: 40, WidthScale: 16,
		MaxBatch: 4, Cache: cache,
		Warmup: 1, Samples: 4, MinSampleNs: 1e4,
	}
	c := CandidateConfig{Arch: s.instantiate(3, 2, 128), Precision: model.PrecisionFP32, Kernels: KernelModeBaseline}
	r1 := ev.EvaluateCandidate(c)
	if r1.Err != "" {
		t.Fatalf("evaluate: %s", r1.Err)
	}
	if !r1.Qualified || r1.CacheHit {
		t.Fatalf("cold evaluation: qualified=%t cacheHit=%t", r1.Qualified, r1.CacheHit)
	}
	if r1.LatencyB1Ns <= 0 || r1.LatencyBNNs <= 0 {
		t.Fatalf("latencies not measured: b1=%v bN=%v", r1.LatencyB1Ns, r1.LatencyBNNs)
	}

	// Warm cache: a fresh evaluator over the same cache must reproduce
	// the measurement bit-for-bit without benching.
	ev2 := &MeasuredEvaluator{
		Trainer:   tinyTrainer(0.95),
		Threshold: 0.9,
		InBands:   4, InSize: 40, WidthScale: 16,
		MaxBatch: 4, Cache: cache,
	}
	r2 := ev2.EvaluateCandidate(c)
	if !r2.CacheHit {
		t.Fatal("second evaluation did not hit the candidate cache")
	}
	if r2.LatencyB1Ns != r1.LatencyB1Ns || r2.LatencyBNNs != r1.LatencyBNNs {
		t.Fatalf("warm latencies differ: (%v,%v) vs (%v,%v)", r2.LatencyB1Ns, r2.LatencyBNNs, r1.LatencyB1Ns, r1.LatencyBNNs)
	}
}

// TestMeasuredEvaluatorConstraint: candidates failing a(n) > A are
// rejected without any latency measurement; the proxy prefilter rejects
// before training.
func TestMeasuredEvaluatorConstraint(t *testing.T) {
	s := tinySpace()
	c := CandidateConfig{Arch: s.instantiate(3, 2, 128), Precision: model.PrecisionFP32, Kernels: KernelModeBaseline}

	trained := 0
	ev := &MeasuredEvaluator{
		Trainer: TrainerFunc(func(cfg model.Config) (*nn.Sequential, float64, error) {
			trained++
			net, err := cfg.Build(rand.New(rand.NewSource(1)))
			return net, 0.5, err
		}),
		Threshold: 0.9,
		InBands:   4, InSize: 40, WidthScale: 16,
	}
	r := ev.EvaluateCandidate(c)
	if r.Qualified || r.LatencyBNNs != 0 {
		t.Fatalf("below-threshold candidate measured anyway: %+v", r)
	}
	if trained != 1 {
		t.Fatalf("trained %d times, want 1", trained)
	}

	// Proxy prefilter: hopeless candidates never train.
	trained = 0
	ev2 := &MeasuredEvaluator{
		Trainer: TrainerFunc(func(cfg model.Config) (*nn.Sequential, float64, error) {
			trained++
			return nil, 0, nil
		}),
		Proxy:     FunctionalEvaluator(func(model.Config) (float64, error) { return 0.2, nil }),
		Threshold: 0.9,
		InBands:   4, InSize: 40, WidthScale: 16,
	}
	r2 := ev2.EvaluateCandidate(c)
	if !r2.Prefiltered || trained != 0 {
		t.Fatalf("prefilter failed: prefiltered=%t trained=%d", r2.Prefiltered, trained)
	}
}

// TestMeasuredEvaluatorSharedTraining: fp32 and int8 variants of one
// architecture share a single training run.
func TestMeasuredEvaluatorSharedTraining(t *testing.T) {
	s := tinySpace()
	var trained int32
	ev := &MeasuredEvaluator{
		Trainer: TrainerFunc(func(cfg model.Config) (*nn.Sequential, float64, error) {
			atomic.AddInt32(&trained, 1)
			net, err := cfg.Build(rand.New(rand.NewSource(1)))
			return net, 0.95, err
		}),
		Threshold: 0.9,
		InBands:   4, InSize: 40, WidthScale: 16,
		MaxBatch: 2, Warmup: 1, Samples: 4, MinSampleNs: 1e4,
	}
	arch := s.instantiate(3, 2, 128)
	ev.EvaluateCandidate(CandidateConfig{Arch: arch, Precision: model.PrecisionFP32, Kernels: KernelModeBaseline})
	ev.EvaluateCandidate(CandidateConfig{Arch: arch, Precision: model.PrecisionInt8, Kernels: KernelModeBaseline})
	if got := atomic.LoadInt32(&trained); got != 1 {
		t.Fatalf("trained %d times for one architecture, want 1", got)
	}
	if ev.TrainedNet(arch.Name) == nil {
		t.Fatal("TrainedNet lost the memoized network")
	}
}

package nas

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// CandidateEvaluator scores one joint candidate end to end. The
// MeasuredEvaluator is the hardware-in-the-loop implementation; tests
// substitute cheap stubs.
type CandidateEvaluator interface {
	EvaluateCandidate(c CandidateConfig) TrialResult
}

// CandidateEvaluatorFunc adapts a plain function to CandidateEvaluator.
type CandidateEvaluatorFunc func(c CandidateConfig) TrialResult

// EvaluateCandidate implements CandidateEvaluator.
func (f CandidateEvaluatorFunc) EvaluateCandidate(c CandidateConfig) TrialResult { return f(c) }

// TrialResult is one scored candidate of the measured search — the row
// the ranked trial table renders and BENCH_nas.json records.
type TrialResult struct {
	Candidate CandidateConfig `json:"candidate"`
	// Key identifies the candidate (arch|prec|kern); trials are deduped
	// on it.
	Key string `json:"key"`
	// Order is the position in the evaluation history.
	Order int `json:"order"`
	// ProxyAcc is the prefilter's estimate (0 when no proxy ran).
	ProxyAcc float64 `json:"proxy_acc,omitempty"`
	// Prefiltered marks candidates the proxy rejected before training.
	Prefiltered bool `json:"prefiltered,omitempty"`
	// Accuracy is the trained model's held-out a(n).
	Accuracy float64 `json:"accuracy"`
	// Qualified marks candidates satisfying a(n) > A; only these carry
	// latencies and are eligible to win.
	Qualified bool `json:"qualified"`
	// GateFallback marks int8 candidates whose accuracy gate failed and
	// were measured as their fp32 twin.
	GateFallback bool `json:"gate_fallback,omitempty"`
	// Demotions counts autotuner gate-ladder demotions (tuned mode only).
	Demotions int `json:"demotions,omitempty"`
	// LatencyB1Ns and LatencyBNNs are the measured executor latencies at
	// batch 1 and the evaluator's MaxBatch.
	LatencyB1Ns float64 `json:"latency_b1_ns,omitempty"`
	LatencyBNNs float64 `json:"latency_bn_ns,omitempty"`
	// CacheHit marks candidates answered from the candidate-level cache
	// without touching the bench.
	CacheHit bool `json:"cache_hit,omitempty"`
	// WallMs is this evaluation's wall-clock cost.
	WallMs float64 `json:"wall_ms"`
	// Err records an evaluation failure (candidate is disqualified).
	Err string `json:"err,omitempty"`
}

// SearchOptions configures a measured search run.
type SearchOptions struct {
	// Strategy is "random" (paper §4.2, default), "grid" (exhaustive
	// joint space), or "evolution" (batched aging evolution).
	Strategy string `json:"strategy"`
	// Trials is the number of distinct candidates for random search; grid
	// ignores it; evolution derives Population+Cycles from it when the
	// Evolution config is zero.
	Trials int `json:"trials"`
	// Seed drives sampling and mutation; a fixed seed plus a warm cache
	// reproduces the exact ranking.
	Seed int64 `json:"seed"`
	// Parallel is the number of worker goroutines evaluating candidates
	// concurrently (default 1). Random and grid evaluate the same
	// candidate set at any parallelism; evolution's trajectory is
	// deterministic for a fixed (Seed, Parallel) pair because proposals
	// are batched by Parallel.
	Parallel int `json:"parallel"`
	// Evolution configures the evolution strategy (its Seed is ignored in
	// favor of SearchOptions.Seed).
	Evolution EvolutionConfig `json:"evolution,omitzero"`
}

// SearchResult is the outcome of one measured search.
type SearchResult struct {
	Options SearchOptions `json:"options"`
	// Trials is the evaluation history in deterministic order.
	Trials []TrialResult `json:"trials"`
	// WallMs is the whole search's wall-clock time.
	WallMs float64 `json:"wall_ms"`
	// CacheHits, Prefiltered and Qualified summarize the history.
	CacheHits   int `json:"cache_hits"`
	Prefiltered int `json:"prefiltered"`
	Qualified   int `json:"qualified"`
}

// Ranked returns the qualified trials ordered by measured large-batch
// latency (then batch-1 latency, then key — a total, reproducible
// order). The winner is the head of this ranking: the fastest measured
// candidate satisfying a(n) > A, the paper's arg max e(n).
func (r *SearchResult) Ranked() []TrialResult {
	var q []TrialResult
	for _, t := range r.Trials {
		if t.Qualified && t.Err == "" {
			q = append(q, t)
		}
	}
	sort.Slice(q, func(i, j int) bool {
		if q[i].LatencyBNNs != q[j].LatencyBNNs {
			return q[i].LatencyBNNs < q[j].LatencyBNNs
		}
		if q[i].LatencyB1Ns != q[j].LatencyB1Ns {
			return q[i].LatencyB1Ns < q[j].LatencyB1Ns
		}
		return q[i].Key < q[j].Key
	})
	return q
}

// Winner returns the best qualified trial, or nil when nothing
// satisfied the accuracy constraint.
func (r *SearchResult) Winner() *TrialResult {
	q := r.Ranked()
	if len(q) == 0 {
		return nil
	}
	return &q[0]
}

// Render formats the ranked trial table.
func (r *SearchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "measured NAS: %d trials (%d qualified, %d prefiltered, %d cache hits), %.0f ms wall, parallel=%d\n",
		len(r.Trials), r.Qualified, r.Prefiltered, r.CacheHits, r.WallMs, r.Options.Parallel)
	fmt.Fprintf(&b, "%-4s %-36s %-9s %-9s %-12s %-12s %s\n",
		"rank", "candidate", "acc", "proxy", "b1 ms", "bN ms", "notes")
	for i, t := range r.Ranked() {
		notes := ""
		if t.CacheHit {
			notes += "cache "
		}
		if t.GateFallback {
			notes += "gate-fallback "
		}
		if t.Demotions > 0 {
			notes += fmt.Sprintf("demote×%d ", t.Demotions)
		}
		fmt.Fprintf(&b, "%-4d %-36s %-9.4f %-9.4f %-12.4f %-12.4f %s\n",
			i+1, t.Key, t.Accuracy, t.ProxyAcc, t.LatencyB1Ns/1e6, t.LatencyBNNs/1e6, strings.TrimSpace(notes))
	}
	rejected := 0
	for _, t := range r.Trials {
		if !t.Qualified {
			rejected++
		}
	}
	if rejected > 0 {
		fmt.Fprintf(&b, "rejected (a(n) ≤ A, prefiltered, or errored): %d\n", rejected)
	}
	return b.String()
}

// Search runs the measured NAS: it proposes joint candidates with the
// chosen strategy, fans evaluations out over Parallel workers sharing
// one evaluator (and therefore one cost cache), dedupes revisited
// candidates so nothing is scored twice, and returns the full history.
func Search(space Space, eval CandidateEvaluator, opts SearchOptions) (*SearchResult, error) {
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	if opts.Trials < 1 {
		opts.Trials = 1
	}
	if opts.Strategy == "" {
		opts.Strategy = "random"
	}
	start := time.Now()
	var trials []TrialResult
	var err error
	switch opts.Strategy {
	case "random":
		trials = evalOrdered(randomCandidates(space, opts), eval, opts.Parallel)
	case "grid":
		trials = evalOrdered(space.AllCandidates(), eval, opts.Parallel)
	case "evolution":
		trials = evolutionMeasured(space, eval, opts)
	default:
		err = fmt.Errorf("nas: unknown strategy %q (want random, grid or evolution)", opts.Strategy)
	}
	if err != nil {
		return nil, err
	}
	res := &SearchResult{Options: opts, Trials: trials, WallMs: float64(time.Since(start)) / 1e6}
	for _, t := range trials {
		if t.CacheHit {
			res.CacheHits++
		}
		if t.Prefiltered {
			res.Prefiltered++
		}
		if t.Qualified {
			res.Qualified++
		}
	}
	return res, nil
}

// randomCandidates draws opts.Trials distinct candidates (the joint
// space may be smaller than the budget, so sampling stops after a
// bounded number of repeat draws). The candidate set depends only on
// (space, Seed, Trials) — never on Parallel — so sequential and parallel
// runs of the same search evaluate identical candidates.
func randomCandidates(space Space, opts SearchOptions) []CandidateConfig {
	rng := rand.New(rand.NewSource(opts.Seed))
	seen := make(map[string]bool, opts.Trials)
	var out []CandidateConfig
	misses := 0
	for len(out) < opts.Trials && misses < 20*opts.Trials {
		c := space.SampleCandidate(rng)
		if seen[c.Key()] {
			misses++
			continue
		}
		seen[c.Key()] = true
		out = append(out, c)
	}
	return out
}

// evalOrdered evaluates a fixed candidate list over workers goroutines,
// returning results in the list's order regardless of completion order.
func evalOrdered(cands []CandidateConfig, eval CandidateEvaluator, workers int) []TrialResult {
	results := make([]TrialResult, len(cands))
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = eval.EvaluateCandidate(cands[i])
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := range results {
		results[i].Order = i
	}
	return results
}

// evolutionMeasured is regularized (aging) evolution generalized to the
// joint space and to batched-parallel evaluation: each generation
// proposes up to Parallel children sequentially from the deterministic
// rng (so the trajectory is reproducible for a fixed Seed and Parallel),
// evaluates the unseen ones concurrently, and ages out as many elders as
// children were admitted. Revisited candidates reuse their recorded
// trial — a candidate is never evaluated twice.
func evolutionMeasured(space Space, eval CandidateEvaluator, opts SearchOptions) []TrialResult {
	ecfg := opts.Evolution
	if ecfg.Population == 0 && ecfg.Cycles == 0 {
		// Derive a budget split from Trials: a third seeds the
		// population, the rest evolves.
		ecfg.Population = opts.Trials / 3
		ecfg.Cycles = opts.Trials - ecfg.Population
	}
	if ecfg.Population < 2 {
		ecfg.Population = 2
	}
	if ecfg.SampleSize < 1 {
		ecfg.SampleSize = 3
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	seen := make(map[string]TrialResult)
	var history []TrialResult

	// evalBatch scores a proposal batch: unseen candidates fan out over
	// the workers (each unique candidate once), results land in history
	// in proposal order, and every proposal resolves to its trial.
	evalBatch := func(batch []CandidateConfig) []TrialResult {
		var fresh []CandidateConfig
		inBatch := make(map[string]bool)
		for _, c := range batch {
			if _, ok := seen[c.Key()]; !ok && !inBatch[c.Key()] {
				inBatch[c.Key()] = true
				fresh = append(fresh, c)
			}
		}
		for _, t := range evalOrdered(fresh, eval, opts.Parallel) {
			t.Order = len(history)
			seen[t.Key] = t
			history = append(history, t)
		}
		out := make([]TrialResult, len(batch))
		for i, c := range batch {
			out[i] = seen[c.Key()]
		}
		return out
	}

	fitness := func(t TrialResult) float64 {
		// Qualified candidates compete on measured speed (lower latency =
		// fitter); unqualified ones compete on accuracy below everything
		// qualified, steering the population toward the constraint.
		if t.Qualified && t.Err == "" {
			return 1e12 / (1 + t.LatencyBNNs)
		}
		return t.Accuracy
	}

	// Seed population.
	var population []TrialResult
	for len(population) < ecfg.Population {
		n := opts.Parallel
		if rem := ecfg.Population - len(population); n > rem {
			n = rem
		}
		batch := make([]CandidateConfig, n)
		for i := range batch {
			batch[i] = space.SampleCandidate(rng)
		}
		population = append(population, evalBatch(batch)...)
	}
	// Aging evolution in batches of Parallel.
	for done := 0; done < ecfg.Cycles; {
		n := opts.Parallel
		if rem := ecfg.Cycles - done; n > rem {
			n = rem
		}
		batch := make([]CandidateConfig, n)
		for i := range batch {
			best := population[rng.Intn(len(population))]
			for s := 1; s < ecfg.SampleSize; s++ {
				cand := population[rng.Intn(len(population))]
				if fitness(cand) > fitness(best) {
					best = cand
				}
			}
			batch[i] = space.MutateCandidate(rng, best.Candidate)
		}
		population = append(population[n:], evalBatch(batch)...)
		done += n
	}
	return history
}

package nas

import (
	"errors"
	"strings"
	"testing"

	"drainnet/internal/gpu"
	"drainnet/internal/model"
)

func TestDefaultSpaceMatchesPaper(t *testing.T) {
	s := DefaultSpace()
	if got := s.Size(); got != 5*5*7 {
		t.Fatalf("space size = %d, want 175", got)
	}
	wantKernels := []int{1, 3, 5, 7, 9}
	for i, k := range wantKernels {
		if s.Conv1Kernel.Choices[i] != k {
			t.Fatalf("conv1 kernels = %v", s.Conv1Kernel.Choices)
		}
	}
	if len(s.FCWidth.Choices) != 7 || s.FCWidth.Choices[0] != 128 || s.FCWidth.Choices[6] != 8192 {
		t.Fatalf("fc widths = %v", s.FCWidth.Choices)
	}
}

func TestAllEnumeratesWholeSpace(t *testing.T) {
	s := DefaultSpace()
	all := s.All()
	if len(all) != s.Size() {
		t.Fatalf("All() = %d configs, want %d", len(all), s.Size())
	}
	seen := map[string]bool{}
	for _, cfg := range all {
		if seen[cfg.Name] {
			t.Fatalf("duplicate config %q", cfg.Name)
		}
		seen[cfg.Name] = true
		if err := cfg.Validate(); err != nil {
			t.Fatalf("invalid config %q: %v", cfg.Name, err)
		}
	}
}

func TestSampleStaysInSpace(t *testing.T) {
	s := DefaultSpace()
	valid := map[string]bool{}
	for _, cfg := range s.All() {
		valid[cfg.Name] = true
	}
	rngTrials := RandomSearch(s, FunctionalEvaluator(func(model.Config) (float64, error) { return 0.5, nil }), 60, 3)
	for _, tr := range rngTrials {
		if !valid[tr.Config.Name] {
			t.Fatalf("sampled config %q outside the space", tr.Config.Name)
		}
	}
}

func TestSPPLevelDegenerateChoices(t *testing.T) {
	s := DefaultSpace()
	// First level 1 or 2 collapses duplicate pyramid levels.
	cfg := s.instantiate(3, 2, 1024)
	if len(cfg.SPPLevels) != 2 || cfg.SPPLevels[0] != 2 || cfg.SPPLevels[1] != 1 {
		t.Fatalf("levels for spp1=2: %v", cfg.SPPLevels)
	}
	cfg = s.instantiate(3, 1, 1024)
	if len(cfg.SPPLevels) != 2 {
		t.Fatalf("levels for spp1=1: %v", cfg.SPPLevels)
	}
	cfg = s.instantiate(3, 5, 1024)
	if len(cfg.SPPLevels) != 3 || cfg.SPPLevels[0] != 5 {
		t.Fatalf("levels for spp1=5: %v", cfg.SPPLevels)
	}
}

func TestRandomSearchDeterministicAndDeduped(t *testing.T) {
	s := DefaultSpace()
	eval := FunctionalEvaluator(func(cfg model.Config) (float64, error) {
		return float64(cfg.FCWidth%97) / 97, nil
	})
	a := RandomSearch(s, eval, 40, 7)
	b := RandomSearch(s, eval, 40, 7)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic trial count: %d vs %d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Config.Name != b[i].Config.Name {
			t.Fatal("nondeterministic sampling")
		}
		if seen[a[i].Config.Name] {
			t.Fatal("duplicate trial not skipped")
		}
		seen[a[i].Config.Name] = true
	}
}

func TestBestByAccuracy(t *testing.T) {
	trials := []Trial{
		{Config: model.Config{Name: "a"}, Accuracy: 0.5},
		{Config: model.Config{Name: "b"}, Accuracy: 0.9, Err: errors.New("failed")},
		{Config: model.Config{Name: "c"}, Accuracy: 0.7},
	}
	best := BestByAccuracy(trials)
	if best == nil || best.Config.Name != "c" {
		t.Fatalf("best = %+v, want c (errors excluded)", best)
	}
	if BestByAccuracy(nil) != nil {
		t.Fatal("empty trials must give nil")
	}
}

// fakeMeasurer prices latency by FC width (bigger = slower) for tests.
type fakeMeasurer struct{}

func (fakeMeasurer) Latency(cfg model.Config, batch int) (float64, float64, error) {
	l := float64(cfg.FCWidth)
	return 2 * l, l, nil
}

func TestResourceAwareSelection(t *testing.T) {
	trials := []Trial{
		{Config: model.Config{Name: "small-inaccurate", FCWidth: 128}, Accuracy: 0.80},
		{Config: model.Config{Name: "mid", FCWidth: 2048}, Accuracy: 0.97},
		{Config: model.Config{Name: "big", FCWidth: 4096}, Accuracy: 0.98},
		{Config: model.Config{Name: "broken", FCWidth: 64}, Err: errors.New("x")},
	}
	sel, err := ResourceAware(trials, fakeMeasurer{}, 0.965, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both mid and big pass the constraint; mid is faster and must win —
	// even though big is more accurate. That is the §5.4 semantics.
	if sel.Best().Config.Name != "mid" {
		t.Fatalf("best = %q, want mid", sel.Best().Config.Name)
	}
	if len(sel.Rejected) != 2 {
		t.Fatalf("rejected = %d, want 2", len(sel.Rejected))
	}
}

func TestResourceAwareNoQualifier(t *testing.T) {
	trials := []Trial{{Config: model.Config{Name: "x", FCWidth: 128}, Accuracy: 0.5}}
	if _, err := ResourceAware(trials, fakeMeasurer{}, 0.9, 1); err == nil {
		t.Fatal("expected error when nothing qualifies")
	}
}

func TestIOSMeasurerOnTable1Candidates(t *testing.T) {
	meas := IOSMeasurer{Dev: gpu.RTXA5500()}
	for _, cfg := range model.Candidates() {
		seq, opt, err := meas.Latency(cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !(opt > 0 && opt < seq) {
			t.Fatalf("%s: opt %v must be positive and below seq %v", cfg.Name, opt, seq)
		}
	}
}

func TestResourceAwarePipelineEndToEnd(t *testing.T) {
	// Fig 5: NAS (grid over a reduced space) → threshold → IOS → pick.
	s := DefaultSpace()
	s.Conv1Kernel.Choices = []int{3}
	s.SPPFirstLevel.Choices = []int{4, 5}
	s.FCWidth.Choices = []int{1024, 2048, 4096}
	// Synthetic accuracy model: bigger FC and SPP are more accurate,
	// echoing Table 1's trend.
	eval := FunctionalEvaluator(func(cfg model.Config) (float64, error) {
		acc := 0.90
		if cfg.SPPLevels[0] == 5 {
			acc += 0.03
		}
		if cfg.FCWidth >= 2048 {
			acc += 0.02
		}
		return acc, nil
	})
	trials := GridSearch(s, eval)
	if len(trials) != 6 {
		t.Fatalf("trials = %d", len(trials))
	}
	sel, err := ResourceAware(trials, IOSMeasurer{Dev: gpu.RTXA5500()}, 0.94, 1)
	if err != nil {
		t.Fatal(err)
	}
	best := sel.Best()
	if best.Config.SPPLevels[0] != 5 || best.Config.FCWidth < 2048 {
		t.Fatalf("unexpected winner %q", best.Config.Name)
	}
	// Winner must be the fastest among qualified candidates.
	for _, c := range sel.Candidates {
		if c.OptLatencyNs < best.OptLatencyNs {
			t.Fatal("selection did not pick the most efficient candidate")
		}
	}
	if !strings.Contains(best.Config.Name, "spp5") {
		t.Fatalf("winner name %q", best.Config.Name)
	}
}

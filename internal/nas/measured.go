package nas

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// This file closes the paper's optimization loop against the real
// hardware: e(n) becomes the measured steady-state latency of each
// candidate's compiled, scheduled, autotuned, possibly-int8 executor on
// the machine that will serve, instead of the simulated-GPU price the
// IOSMeasurer charges. The pipeline per candidate mirrors what
// drainnet-serve does at startup — QuantizeGated → AutotuneKernels →
// OptimizeSchedules → CompileExecutors — all against one shared
// ios.CostCache, so repeated searches (and concurrent search workers)
// never re-measure an operator twice.

// Trainer produces a trained network and its held-out accuracy a(n) for
// one already-scaled architecture. experiments.NASTrainer is the real
// implementation; tests substitute stubs.
type Trainer interface {
	Train(cfg model.Config) (*nn.Sequential, float64, error)
}

// TrainerFunc adapts a plain function to Trainer.
type TrainerFunc func(cfg model.Config) (*nn.Sequential, float64, error)

// Train implements Trainer.
func (f TrainerFunc) Train(cfg model.Config) (*nn.Sequential, float64, error) { return f(cfg) }

// MeasuredEvaluator scores joint candidates with real accuracy and real
// measured latency. It is safe for concurrent use by the parallel search
// executor: trained networks are memoized per architecture, the cost
// cache is concurrency-safe, and every wall-clock measurement section is
// serialized through one bench lock so concurrent workers cannot distort
// each other's timings.
type MeasuredEvaluator struct {
	// Trainer produces the trained network and accuracy per architecture
	// (memoized across candidates sharing one architecture). Required.
	Trainer Trainer
	// Proxy optionally prefilters candidates: architectures whose proxy
	// accuracy falls PrefilterMargin or more below Threshold are rejected
	// before paying for real training or measurement.
	Proxy Evaluator
	// Threshold is the accuracy constraint A: only candidates with
	// a(n) > Threshold qualify (and pay for latency measurement).
	Threshold float64
	// PrefilterMargin is the proxy slack (default 0.02): a candidate is
	// prefiltered only when proxyAcc ≤ Threshold − PrefilterMargin.
	PrefilterMargin float64
	// WidthScale, InBands and InSize fix the training protocol's scaling
	// and input geometry; candidates are scaled before training and
	// graph building (WidthScale 0 → 1).
	WidthScale      int
	InBands, InSize int
	// Calib is the held-out split behind the int8 and Winograd accuracy
	// gates. With a nil Calib, int8 candidates fall back to fp32 (there
	// is no data to prove the gate) and Winograd demotes inside the
	// autotuner.
	Calib *terrain.Dataset
	// MaxAPDrop is the gate epsilon shared by QuantizeGated and
	// AutotuneKernels.
	MaxAPDrop float64
	// MaxBatch is the large-batch bucket e(n) is optimized and measured
	// at (default 16); batch 1 is always measured too.
	MaxBatch int
	// Cache is the shared measurement cache: operator costs (IOS +
	// autotune keys) and candidate-level end-to-end latencies all live in
	// it, so a warm cache makes re-search deterministic and cheap. A
	// fresh cache is created when nil.
	Cache *ios.CostCache
	// Warmup and Samples control the executor bench (defaults 2 and 8):
	// Warmup discarded runs, then Samples timed runs whose trimmed mean
	// is e(n).
	Warmup, Samples int
	// MinSampleNs stretches each timed sample above clock granularity by
	// repetition (default 2e5).
	MinSampleNs float64

	// benchMu serializes every section that takes wall-clock timings
	// (kernel autotuning, schedule measurement, the executor bench), so
	// N parallel workers measure as cleanly as a sequential run. Cached
	// candidates skip it entirely, which is what makes warm-cache
	// parallel search scale.
	benchMu sync.Mutex

	netMu sync.Mutex
	nets  map[string]trainedNet
}

type trainedNet struct {
	net *nn.Sequential
	acc float64
	err error
}

// init fills defaults and the shared cache.
func (e *MeasuredEvaluator) init() {
	e.netMu.Lock()
	if e.nets == nil {
		e.nets = make(map[string]trainedNet)
	}
	if e.Cache == nil {
		e.Cache = ios.NewCostCache()
	}
	if e.WidthScale < 1 {
		e.WidthScale = 1
	}
	if e.MaxBatch <= 0 {
		e.MaxBatch = 16
	}
	if e.PrefilterMargin == 0 {
		e.PrefilterMargin = 0.02
	}
	if e.Warmup <= 0 {
		e.Warmup = 2
	}
	if e.Samples <= 0 {
		e.Samples = 8
	}
	if e.MinSampleNs == 0 {
		e.MinSampleNs = 2e5
	}
	e.netMu.Unlock()
}

// scaled returns the training-protocol view of one architecture.
func (e *MeasuredEvaluator) scaled(arch model.Config) model.Config {
	return arch.Scaled(e.WidthScale).WithInput(e.InBands, e.InSize)
}

// latencyKey is the cache-key schema for candidate-level measurements:
// the machine's pool shape, the input geometry, the scaled architecture
// notation, the requested precision and kernel mode, and the batch size.
// A warm cache therefore reproduces the exact trial ranking bit-for-bit.
func (e *MeasuredEvaluator) latencyKey(scaled model.Config, c CandidateConfig, batch int) string {
	return fmt.Sprintf("nas|p%d|in%dx%d|ws%d|%s|prec=%s|kern=%s|b%d",
		runtime.GOMAXPROCS(0), e.InBands, e.InSize, scaled.WidthScale,
		scaled.Notation(), c.Precision, c.Kernels, batch)
}

// TrainedNet returns the memoized trained network for an architecture
// name (nil when the candidate never survived to training) — the search
// CLI uses it to persist the winner's checkpoint.
func (e *MeasuredEvaluator) TrainedNet(archName string) *nn.Sequential {
	e.netMu.Lock()
	defer e.netMu.Unlock()
	if t, ok := e.nets[archName]; ok {
		return t.net
	}
	return nil
}

// train memoizes Trainer.Train per architecture: the fp32 and int8
// variants of one architecture share a single training run.
func (e *MeasuredEvaluator) train(scaled model.Config) trainedNet {
	e.netMu.Lock()
	if t, ok := e.nets[scaled.Name]; ok {
		e.netMu.Unlock()
		return t
	}
	e.netMu.Unlock()
	net, acc, err := e.Trainer.Train(scaled)
	t := trainedNet{net: net, acc: acc, err: err}
	e.netMu.Lock()
	// Keep the first finished training when two workers raced on one
	// architecture, so every candidate of that arch sees the same net.
	if prev, ok := e.nets[scaled.Name]; ok {
		t = prev
	} else {
		e.nets[scaled.Name] = t
	}
	e.netMu.Unlock()
	return t
}

// EvaluateCandidate implements CandidateEvaluator: proxy prefilter, real
// training, accuracy constraint, then the measured-efficiency pipeline.
func (e *MeasuredEvaluator) EvaluateCandidate(c CandidateConfig) TrialResult {
	e.init()
	start := time.Now()
	r := TrialResult{Candidate: c, Key: c.Key()}
	defer func() { r.WallMs = float64(time.Since(start)) / 1e6 }()

	scaled := e.scaled(c.Arch)
	if err := scaled.Validate(); err != nil {
		r.Err = err.Error()
		return r
	}

	// 1. Proxy prefilter: clearly-below-threshold candidates never pay
	// for training or measurement.
	if e.Proxy != nil {
		pa, err := e.Proxy.Evaluate(c.Arch)
		if err == nil {
			r.ProxyAcc = pa
			if pa <= e.Threshold-e.PrefilterMargin {
				r.Prefiltered = true
				return r
			}
		}
	}

	// 2. Real accuracy (one training per architecture, memoized).
	t := e.train(scaled)
	if t.err != nil {
		r.Err = t.err.Error()
		return r
	}
	r.Accuracy = t.acc
	if !(t.acc > e.Threshold) {
		return r // a(n) ≤ A: rejected, no measurement
	}
	r.Qualified = true

	// 3. Candidate-level cache: a warm cache answers e(n) without
	// touching the bench lock, so warm re-searches rank bit-for-bit
	// identically and parallel workers spend their time on training.
	keyB1 := e.latencyKey(scaled, c, 1)
	keyBN := e.latencyKey(scaled, c, e.MaxBatch)
	if b1, ok1 := e.Cache.Get(keyB1); ok1 {
		if bN, okN := e.Cache.Get(keyBN); okN {
			r.LatencyB1Ns, r.LatencyBNNs, r.CacheHit = b1, bN, true
			return r
		}
	}

	// 4. The serving pipeline, on a clone so concurrent candidates (and
	// the memoized net) never observe each other's kernel retargeting.
	b1, bN, detail, err := e.measureCandidate(scaled, c, t.net)
	if err != nil {
		r.Err = err.Error()
		r.Qualified = false
		return r
	}
	r.LatencyB1Ns, r.LatencyBNNs = b1, bN
	r.GateFallback, r.Demotions = detail.gateFallback, detail.demotions
	e.Cache.Put(keyB1, b1)
	e.Cache.Put(keyBN, bN)
	return r
}

type measureDetail struct {
	gateFallback bool
	demotions    int
}

// measureCandidate runs QuantizeGated → AutotuneKernels →
// OptimizeSchedules → CompileExecutors on a shared-weight clone of the
// trained net and benches the winning executors at batch 1 and MaxBatch.
func (e *MeasuredEvaluator) measureCandidate(scaled model.Config, c CandidateConfig, base *nn.Sequential) (b1, bN float64, detail measureDetail, err error) {
	clone, err := nn.CloneShared(base)
	if err != nil {
		return 0, 0, detail, err
	}
	fp32 := clone.(*nn.Sequential)

	// Accuracy-gated int8: the search's precision dimension goes through
	// the same gate serving does; a failed gate falls back to fp32 (the
	// candidate is then measured as its fp32 twin).
	var qnet *nn.Sequential
	if c.Precision == model.PrecisionInt8 {
		if e.Calib == nil || len(e.Calib.Samples) == 0 {
			detail.gateFallback = true
		} else {
			dec, qerr := model.QuantizeGated(fp32, e.Calib, model.QuantOptions{MaxAPDrop: e.MaxAPDrop})
			if qerr != nil {
				return 0, 0, detail, qerr
			}
			if dec.Enabled {
				qnet = dec.Net
			} else {
				detail.gateFallback = true
			}
		}
	}
	served := fp32
	if qnet != nil {
		served = qnet
	}

	// Wall-clock measurement starts here; one candidate at a time.
	e.benchMu.Lock()
	defer e.benchMu.Unlock()

	if c.Kernels == KernelModeTuned {
		kplan, kerr := model.AutotuneKernels(fp32, qnet, []int{scaled.InBands, scaled.InSize, scaled.InSize}, e.Calib,
			model.KernelOptions{Batches: []int{1, e.MaxBatch}, MaxAPDrop: e.MaxAPDrop, Cache: e.Cache})
		if kerr != nil {
			return 0, 0, detail, kerr
		}
		served = kplan.Served
		detail.demotions = kplan.Demotions
	}

	plan, perr := model.OptimizeSchedules(scaled, served, e.MaxBatch, e.Cache)
	if perr != nil {
		return 0, 0, detail, perr
	}
	exec1, execN, cerr := plan.CompileExecutors(served)
	if cerr != nil {
		return 0, 0, detail, cerr
	}
	b1 = e.benchExecutor(exec1, 1)
	bN = e.benchExecutor(execN, e.MaxBatch)
	return b1, bN, detail, nil
}

// benchExecutor times one executor at a batch size: deterministic
// synthetic input, warmup, then trimmed-mean samples stretched above
// clock granularity. Caller holds benchMu.
func (e *MeasuredEvaluator) benchExecutor(exec *nn.ScheduleExecutor, batch int) float64 {
	x := tensor.New(batch, e.InBands, e.InSize, e.InSize)
	fillPseudo(x.Data())
	a := tensor.NewArena()
	run := func(reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			a.Reset()
			exec.Infer(x, a)
		}
		return float64(time.Since(start)) / float64(reps)
	}
	for i := 0; i < e.Warmup; i++ {
		run(1)
	}
	reps := 1
	if probe := run(1); probe < e.MinSampleNs {
		if probe <= 0 {
			probe = 1
		}
		reps = int(e.MinSampleNs/probe) + 1
	}
	samples := make([]float64, e.Samples)
	for i := range samples {
		samples[i] = run(reps)
	}
	sort.Float64s(samples)
	trim := len(samples) / 4
	kept := samples[trim : len(samples)-trim]
	total := 0.0
	for _, v := range kept {
		total += v
	}
	return total / float64(len(kept))
}

// fillPseudo writes a deterministic xorshift sequence in (0, 1), the
// same generator the autotuner's probes use.
func fillPseudo(d []float32) {
	seed := uint32(2463534242)
	for i := range d {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		d[i] = float32(int32(seed))/float32(1<<31)*0.999 + 0.0005
	}
}

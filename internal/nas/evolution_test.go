package nas

import (
	"math/rand"
	"testing"

	"drainnet/internal/model"
)

// hillEvaluator is a smooth synthetic objective with a unique optimum at
// (k=5, spp1=4, fc=2048), used to compare strategy sample-efficiency.
func hillEvaluator(cfg model.Config) (float64, error) {
	score := 1.0
	score -= 0.02 * absf(float64(cfg.Convs[0].Kernel-5))
	score -= 0.03 * absf(float64(cfg.SPPLevels[0]-4))
	switch cfg.FCWidth {
	case 2048:
	case 1024, 4096:
		score -= 0.02
	default:
		score -= 0.05
	}
	return score, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEvolutionSearchStaysInSpace(t *testing.T) {
	s := DefaultSpace()
	valid := map[string]bool{}
	for _, cfg := range s.All() {
		valid[cfg.Name] = true
	}
	trials := EvolutionSearch(s, FunctionalEvaluator(hillEvaluator), DefaultEvolution())
	if len(trials) == 0 {
		t.Fatal("no trials")
	}
	for _, tr := range trials {
		if !valid[tr.Config.Name] {
			t.Fatalf("evolved config %q outside the space", tr.Config.Name)
		}
	}
}

func TestEvolutionSearchDeterministic(t *testing.T) {
	s := DefaultSpace()
	a := EvolutionSearch(s, FunctionalEvaluator(hillEvaluator), DefaultEvolution())
	b := EvolutionSearch(s, FunctionalEvaluator(hillEvaluator), DefaultEvolution())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Config.Name != b[i].Config.Name {
			t.Fatal("evolution not deterministic for fixed seed")
		}
	}
}

func TestEvolutionImprovesOverTime(t *testing.T) {
	s := DefaultSpace()
	cfg := DefaultEvolution()
	cfg.Cycles = 60
	trials := EvolutionSearch(s, FunctionalEvaluator(hillEvaluator), cfg)
	// Mean accuracy of the last quarter must beat the first quarter.
	q := len(trials) / 4
	if q == 0 {
		t.Skip("too few trials")
	}
	mean := func(ts []Trial) float64 {
		var sum float64
		for _, tr := range ts {
			sum += tr.Accuracy
		}
		return sum / float64(len(ts))
	}
	early, late := mean(trials[:q]), mean(trials[len(trials)-q:])
	if late <= early {
		t.Fatalf("evolution did not improve: early %.4f, late %.4f", early, late)
	}
}

func TestEvolutionVsRandomSampleEfficiency(t *testing.T) {
	// With the same evaluation budget, evolution's best should match or
	// beat random search's best on the smooth hill objective.
	s := DefaultSpace()
	ecfg := DefaultEvolution()
	ecfg.Cycles = 40
	evo := EvolutionSearch(s, FunctionalEvaluator(hillEvaluator), ecfg)
	budget := len(evo)
	rnd := RandomSearch(s, FunctionalEvaluator(hillEvaluator), budget, 9)
	be, br := BestByAccuracy(evo), BestByAccuracy(rnd)
	if be == nil || br == nil {
		t.Fatal("missing best")
	}
	if be.Accuracy < br.Accuracy-1e-9 {
		t.Fatalf("evolution best %.4f below random best %.4f at equal budget (%d evals)",
			be.Accuracy, br.Accuracy, budget)
	}
}

func TestMutateChangesExactlyOneDimension(t *testing.T) {
	s := DefaultSpace()
	base := s.instantiate(5, 3, 1024)
	for seed := int64(0); seed < 20; seed++ {
		m := s.mutate(newRng(seed), base)
		diffs := 0
		if m.Convs[0].Kernel != base.Convs[0].Kernel {
			diffs++
		}
		if m.SPPLevels[0] != base.SPPLevels[0] {
			diffs++
		}
		if m.FCWidth != base.FCWidth {
			diffs++
		}
		if diffs != 1 {
			t.Fatalf("seed %d: mutation changed %d dimensions", seed, diffs)
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

package nas

import (
	"math/rand"

	"drainnet/internal/model"
)

// EvolutionConfig controls the regularized-evolution strategy (Real et
// al., aging evolution) — an alternative exploration strategy to the
// paper's random search, provided for the strategy ablation.
type EvolutionConfig struct {
	// Population is the number of live individuals.
	Population int
	// Cycles is the number of evolution steps after the initial
	// population (each step evaluates one child).
	Cycles int
	// SampleSize is the tournament size for parent selection.
	SampleSize int
	// Seed drives sampling and mutation.
	Seed int64
}

// DefaultEvolution returns a small, sensible configuration.
func DefaultEvolution() EvolutionConfig {
	return EvolutionConfig{Population: 8, Cycles: 24, SampleSize: 3, Seed: 1}
}

// choiceIndex returns the index of v in choices (0 if absent).
func choiceIndex(choices []int, v int) int {
	for i, c := range choices {
		if c == v {
			return i
		}
	}
	return 0
}

// mutate perturbs exactly one searchable dimension of cfg by one step.
func (s Space) mutate(rng *rand.Rand, cfg model.Config) model.Config {
	return s.mutateArchDim(rng, cfg, rng.Intn(3))
}

// mutateArchDim perturbs one named architecture dimension by one step.
func (s Space) mutateArchDim(rng *rand.Rand, cfg model.Config, dim int) model.Config {
	k := cfg.Convs[0].Kernel
	spp1 := cfg.SPPLevels[0]
	fc := cfg.FCWidth
	step := func(choices []int, cur int) int {
		i := choiceIndex(choices, cur)
		if rng.Intn(2) == 0 && i > 0 {
			return choices[i-1]
		}
		if i < len(choices)-1 {
			return choices[i+1]
		}
		if i > 0 {
			return choices[i-1]
		}
		return choices[i]
	}
	switch dim {
	case 0:
		k = step(s.Conv1Kernel.Choices, k)
	case 1:
		spp1 = step(s.SPPFirstLevel.Choices, spp1)
	default:
		fc = step(s.FCWidth.Choices, fc)
	}
	return s.instantiate(k, spp1, fc)
}

// MutateCandidate perturbs exactly one dimension of the joint candidate:
// one of the three architecture mutables, the precision, or the kernel
// mode — the evolution strategy's mutation covers the full joint space,
// so the accuracy-gate ladder and the search cooperate instead of the
// precision/kernel choice being bolted on afterwards.
func (s Space) MutateCandidate(rng *rand.Rand, c CandidateConfig) CandidateConfig {
	dims := []int{0, 1, 2}
	if len(s.precisions()) > 1 {
		dims = append(dims, 3)
	}
	if len(s.kernels()) > 1 {
		dims = append(dims, 4)
	}
	out := c
	switch d := dims[rng.Intn(len(dims))]; d {
	case 3:
		out.Precision = pickOther(rng, s.precisions(), c.Precision)
	case 4:
		out.Kernels = pickOther(rng, s.kernels(), c.Kernels)
	default:
		out.Arch = s.mutateArchDim(rng, c.Arch, d)
	}
	return out
}

// pickOther draws uniformly among the choices different from cur.
func pickOther[T comparable](rng *rand.Rand, choices []T, cur T) T {
	others := make([]T, 0, len(choices))
	for _, c := range choices {
		if c != cur {
			others = append(others, c)
		}
	}
	if len(others) == 0 {
		return cur
	}
	return others[rng.Intn(len(others))]
}

// EvolutionSearch runs regularized (aging) evolution: the oldest
// individual dies each cycle, and a mutation of a tournament winner
// replaces it. Every evaluation is returned as a Trial, so the total
// evaluation budget is Population + Cycles (duplicates are re-used from
// a cache, not re-evaluated, but still consume a cycle).
func EvolutionSearch(space Space, eval Evaluator, cfg EvolutionConfig) []Trial {
	if cfg.Population < 2 {
		cfg.Population = 2
	}
	if cfg.SampleSize < 1 {
		cfg.SampleSize = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cache := map[string]Trial{}
	var history []Trial

	score := func(c model.Config) Trial {
		if t, ok := cache[c.Name]; ok {
			return t
		}
		acc, err := eval.Evaluate(c)
		t := Trial{Config: c, Accuracy: acc, Err: err}
		cache[c.Name] = t
		history = append(history, t)
		return t
	}

	// Seed population.
	var population []Trial
	for len(population) < cfg.Population {
		population = append(population, score(space.Sample(rng)))
	}
	// Aging evolution.
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// Tournament: best of SampleSize random individuals.
		best := population[rng.Intn(len(population))]
		for i := 1; i < cfg.SampleSize; i++ {
			cand := population[rng.Intn(len(population))]
			if cand.Err == nil && (best.Err != nil || cand.Accuracy > best.Accuracy) {
				best = cand
			}
		}
		child := score(space.mutate(rng, best.Config))
		// Age out the oldest, append the child.
		population = append(population[1:], child)
	}
	return history
}

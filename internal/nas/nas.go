// Package nas implements the neural-architecture-search workflow of the
// paper's §4 and §5: a Retiarii-style model space over the SPP-Net family,
// a multi-trial executor with a random exploration strategy and a
// functional evaluator, and the accuracy-constrained efficiency
// optimization of Fig 5 — candidates above the accuracy threshold are
// benchmarked with the IOS scheduler and the most efficient one wins:
//
//	maximize e(n), n ∈ N, subject to a(n) > A.
package nas

import (
	"fmt"
	"math/rand"
	"sort"

	"drainnet/internal/gpu"
	"drainnet/internal/ios"
	"drainnet/internal/model"
)

// Mutable is one searchable dimension: a named list of choices.
type Mutable struct {
	Name    string
	Choices []int
}

// KernelMode is the per-candidate conv-kernel dimension of the joint
// space: either the baseline im2col+GEMM kernels everywhere, or the
// per-layer autotuned mix (model.AutotuneKernels picks Winograd / NCHWc /
// direct / int8 per layer and batch bucket, under the accuracy gate).
const (
	KernelModeBaseline = "im2col"
	KernelModeTuned    = "tuned"
)

// Space is the paper's §4.2 search space over the SPP-Net family,
// optionally extended with the serving-efficiency dimensions the repo
// owns: per-candidate numeric precision (accuracy-gated int8) and
// per-layer kernel autotuning. When the extra dimensions are empty the
// space degenerates to the paper's architecture-only search.
type Space struct {
	// Base is the template architecture; mutables override its fields.
	Base model.Config
	// Conv1Kernel is the filter size of the first convolutional layer.
	Conv1Kernel Mutable
	// SPPFirstLevel is the filter size of the first SPP pyramid level.
	SPPFirstLevel Mutable
	// FCWidth is the hidden fully-connected feature size.
	FCWidth Mutable
	// Precisions are the searchable serving precisions (empty = fp32
	// only). Int8 candidates run through the QuantizeGated accuracy gate
	// during measured evaluation, so the search and the gate ladder
	// cooperate instead of running as separate post-passes.
	Precisions []model.Precision
	// Kernels are the searchable kernel modes (KernelModeBaseline /
	// KernelModeTuned; empty = baseline only).
	Kernels []string
}

// CandidateConfig is one point of the joint search space: an
// architecture plus the precision and kernel mode it would serve with.
type CandidateConfig struct {
	Arch      model.Config    `json:"arch"`
	Precision model.Precision `json:"precision"`
	Kernels   string          `json:"kernels"`
}

// Key uniquely identifies the candidate within a space (the dedup and
// result-cache key of the search executor).
func (c CandidateConfig) Key() string {
	return fmt.Sprintf("%s|prec=%s|kern=%s", c.Arch.Name, c.Precision, c.Kernels)
}

// DefaultSpace returns the exact search space of §4.2:
// conv1 kernel ∈ {1,3,5,7,9}, first SPP level ∈ {1..5},
// FC width ∈ {128,256,512,1024,2048,4096,8192}.
func DefaultSpace() Space {
	return Space{
		Base:          model.OriginalSPPNet(),
		Conv1Kernel:   Mutable{Name: "conv1_kernel", Choices: []int{1, 3, 5, 7, 9}},
		SPPFirstLevel: Mutable{Name: "spp_first_level", Choices: []int{1, 2, 3, 4, 5}},
		FCWidth:       Mutable{Name: "fc_width", Choices: []int{128, 256, 512, 1024, 2048, 4096, 8192}},
	}
}

// DefaultJointSpace is DefaultSpace extended with the precision and
// kernel dimensions: §4.2 architectures × {fp32, int8} × {im2col, tuned}.
func DefaultJointSpace() Space {
	s := DefaultSpace()
	s.Precisions = []model.Precision{model.PrecisionFP32, model.PrecisionInt8}
	s.Kernels = []string{KernelModeBaseline, KernelModeTuned}
	return s
}

// Size returns the number of distinct architectures in the space.
func (s Space) Size() int {
	return len(s.Conv1Kernel.Choices) * len(s.SPPFirstLevel.Choices) * len(s.FCWidth.Choices)
}

// precisions returns the searchable precision choices (fp32 when unset).
func (s Space) precisions() []model.Precision {
	if len(s.Precisions) == 0 {
		return []model.Precision{model.PrecisionFP32}
	}
	return s.Precisions
}

// kernels returns the searchable kernel-mode choices (baseline when unset).
func (s Space) kernels() []string {
	if len(s.Kernels) == 0 {
		return []string{KernelModeBaseline}
	}
	return s.Kernels
}

// JointSize returns the number of distinct candidates in the joint space.
func (s Space) JointSize() int {
	return s.Size() * len(s.precisions()) * len(s.kernels())
}

// Contains reports whether the candidate lies inside the space — every
// chosen value must be one of the listed choices.
func (s Space) Contains(c CandidateConfig) bool {
	in := func(choices []int, v int) bool {
		for _, ch := range choices {
			if ch == v {
				return true
			}
		}
		return false
	}
	if !in(s.Conv1Kernel.Choices, c.Arch.Convs[0].Kernel) ||
		!in(s.SPPFirstLevel.Choices, c.Arch.SPPLevels[0]) ||
		!in(s.FCWidth.Choices, c.Arch.FCWidth) {
		return false
	}
	okPrec := false
	for _, p := range s.precisions() {
		if p == c.Precision {
			okPrec = true
		}
	}
	okKern := false
	for _, k := range s.kernels() {
		if k == c.Kernels {
			okKern = true
		}
	}
	return okPrec && okKern
}

// SampleCandidate draws one joint candidate uniformly at random.
func (s Space) SampleCandidate(rng *rand.Rand) CandidateConfig {
	precs, kerns := s.precisions(), s.kernels()
	return CandidateConfig{
		Arch:      s.Sample(rng),
		Precision: precs[rng.Intn(len(precs))],
		Kernels:   kerns[rng.Intn(len(kerns))],
	}
}

// AllCandidates enumerates the joint space (grid strategy).
func (s Space) AllCandidates() []CandidateConfig {
	var out []CandidateConfig
	for _, cfg := range s.All() {
		for _, p := range s.precisions() {
			for _, k := range s.kernels() {
				out = append(out, CandidateConfig{Arch: cfg, Precision: p, Kernels: k})
			}
		}
	}
	return out
}

// instantiate builds the config for one choice tuple.
func (s Space) instantiate(k, spp1, fc int) model.Config {
	cfg := s.Base
	cfg.Convs = append([]model.ConvSpec(nil), s.Base.Convs...)
	cfg.Convs[0].Kernel = k
	// First pyramid level is searched; the finer levels stay (2, 1) as in
	// the paper's candidates. A first level equal to 2 or 1 degenerates to
	// fewer distinct levels; keep them unique and sorted descending.
	levels := []int{spp1, 2, 1}
	cfg.SPPLevels = dedupeDescending(levels)
	cfg.FCWidth = fc
	cfg.Name = fmt.Sprintf("sppnet-k%d-spp%d-fc%d", k, spp1, fc)
	return cfg
}

func dedupeDescending(levels []int) []int {
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	out := levels[:0]
	prev := -1
	for _, l := range levels {
		if l != prev {
			out = append(out, l)
			prev = l
		}
	}
	return out
}

// Sample draws one architecture uniformly at random (the paper's random
// exploration strategy).
func (s Space) Sample(rng *rand.Rand) model.Config {
	k := s.Conv1Kernel.Choices[rng.Intn(len(s.Conv1Kernel.Choices))]
	spp1 := s.SPPFirstLevel.Choices[rng.Intn(len(s.SPPFirstLevel.Choices))]
	fc := s.FCWidth.Choices[rng.Intn(len(s.FCWidth.Choices))]
	return s.instantiate(k, spp1, fc)
}

// All enumerates the entire space (grid strategy).
func (s Space) All() []model.Config {
	var out []model.Config
	for _, k := range s.Conv1Kernel.Choices {
		for _, spp1 := range s.SPPFirstLevel.Choices {
			for _, fc := range s.FCWidth.Choices {
				out = append(out, s.instantiate(k, spp1, fc))
			}
		}
	}
	return out
}

// Evaluator scores one architecture (the Retiarii model evaluator role).
type Evaluator interface {
	Evaluate(cfg model.Config) (accuracy float64, err error)
}

// FunctionalEvaluator adapts a plain function, mirroring Retiarii's
// FunctionalEvaluator — the paper's choice of model evaluator.
type FunctionalEvaluator func(cfg model.Config) (float64, error)

// Evaluate implements Evaluator.
func (f FunctionalEvaluator) Evaluate(cfg model.Config) (float64, error) { return f(cfg) }

// Trial is one evaluated architecture.
type Trial struct {
	Config   model.Config
	Accuracy float64
	Err      error
}

// RandomSearch runs the multi-trial strategy: up to maxTrials
// random samples (duplicates skipped, counting against the budget), each
// scored by the evaluator.
func RandomSearch(space Space, eval Evaluator, maxTrials int, seed int64) []Trial {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var trials []Trial
	for t := 0; t < maxTrials; t++ {
		cfg := space.Sample(rng)
		if seen[cfg.Name] {
			continue
		}
		seen[cfg.Name] = true
		acc, err := eval.Evaluate(cfg)
		trials = append(trials, Trial{Config: cfg, Accuracy: acc, Err: err})
	}
	return trials
}

// GridSearch evaluates every architecture in the space.
func GridSearch(space Space, eval Evaluator) []Trial {
	var trials []Trial
	for _, cfg := range space.All() {
		acc, err := eval.Evaluate(cfg)
		trials = append(trials, Trial{Config: cfg, Accuracy: acc, Err: err})
	}
	return trials
}

// BestByAccuracy returns the trial with the highest accuracy (nil if none
// succeeded).
func BestByAccuracy(trials []Trial) *Trial {
	var best *Trial
	for i := range trials {
		t := &trials[i]
		if t.Err != nil {
			continue
		}
		if best == nil || t.Accuracy > best.Accuracy {
			best = t
		}
	}
	return best
}

// EfficiencyMeasurer prices one architecture's inference latency.
type EfficiencyMeasurer interface {
	// Latency returns sequential and IOS-optimized latency in ns at the
	// given batch size.
	Latency(cfg model.Config, batch int) (seqNs, optNs float64, err error)
}

// IOSMeasurer measures latency on the simulated GPU via the IOS pipeline,
// as in Table 2.
type IOSMeasurer struct {
	Dev gpu.DeviceConfig
}

// Latency implements EfficiencyMeasurer.
func (m IOSMeasurer) Latency(cfg model.Config, batch int) (float64, float64, error) {
	g, err := cfg.BuildGraph()
	if err != nil {
		return 0, 0, err
	}
	rt := ios.NewRuntime(m.Dev)
	seq := rt.Measure(g, ios.SequentialSchedule(g), batch)
	sched, err := ios.Optimize(g, ios.NewSimOracle(m.Dev), batch)
	if err != nil {
		return 0, 0, err
	}
	opt := rt.Measure(g, sched, batch)
	return seq.LatencyNs, opt.LatencyNs, nil
}

// Candidate is one accuracy-qualified architecture with its measured
// latencies.
type Candidate struct {
	Trial
	SeqLatencyNs float64
	OptLatencyNs float64
}

// Selection is the outcome of the accuracy-constrained efficiency
// optimization (Fig 5).
type Selection struct {
	Threshold  float64
	Batch      int
	Candidates []Candidate // all trials above the threshold, best first
	Rejected   []Trial     // trials below the threshold or failed
}

// Best returns the winning candidate (nil when none qualified).
func (s *Selection) Best() *Candidate {
	if len(s.Candidates) == 0 {
		return nil
	}
	return &s.Candidates[0]
}

// ResourceAware performs the §5.4 optimization: keep trials with
// a(n) > threshold, measure e(n) via IOS at the given batch size, and rank
// by optimized latency (lower is better).
func ResourceAware(trials []Trial, meas EfficiencyMeasurer, threshold float64, batch int) (*Selection, error) {
	sel := &Selection{Threshold: threshold, Batch: batch}
	for _, t := range trials {
		if t.Err != nil || t.Accuracy <= threshold {
			sel.Rejected = append(sel.Rejected, t)
			continue
		}
		seq, opt, err := meas.Latency(t.Config, batch)
		if err != nil {
			t.Err = err
			sel.Rejected = append(sel.Rejected, t)
			continue
		}
		sel.Candidates = append(sel.Candidates, Candidate{Trial: t, SeqLatencyNs: seq, OptLatencyNs: opt})
	}
	sort.SliceStable(sel.Candidates, func(i, j int) bool {
		return sel.Candidates[i].OptLatencyNs < sel.Candidates[j].OptLatencyNs
	})
	if len(sel.Candidates) == 0 {
		return sel, fmt.Errorf("nas: no candidate satisfied accuracy > %v", threshold)
	}
	return sel, nil
}

package nas

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/provenance"
	"drainnet/internal/train"
)

// WinnerPlan is the persisted outcome of a measured search: everything
// drainnet-serve needs to serve the winning candidate exactly as it was
// measured — the scaled architecture, the trained weights (a sibling
// checkpoint file), and the precision/kernel decisions the latency was
// measured under.
type WinnerPlan struct {
	// Version guards the format.
	Version int `json:"version"`
	// Candidate is the winning point of the joint search space.
	Candidate CandidateConfig `json:"candidate"`
	// Arch is the scaled serving configuration (input geometry included);
	// build this config and load Checkpoint into it.
	Arch model.Config `json:"arch"`
	// Threshold is the accuracy constraint A the search ran under;
	// Accuracy is the winner's held-out a(n).
	Threshold float64 `json:"threshold"`
	Accuracy  float64 `json:"accuracy"`
	// MaxBatch and the measured latencies document the e(n) the winner
	// was selected on.
	MaxBatch    int     `json:"max_batch"`
	LatencyB1Ns float64 `json:"latency_b1_ns"`
	LatencyBNNs float64 `json:"latency_bn_ns"`
	// Checkpoint is the weights file, relative to the plan's directory.
	Checkpoint string `json:"checkpoint"`
	// Stamp records the machine the latencies were measured on.
	Stamp *provenance.Stamp `json:"provenance,omitempty"`
}

// winnerPlanVersion bumps on incompatible format changes.
const winnerPlanVersion = 1

// SaveWinner persists a search winner into dir: the trained weights as
// winner.ckpt (gob checkpoint, loadable by drainnet-serve -ckpt) and the
// serving plan as plan.json (loadable by drainnet-serve -nas-plan).
func SaveWinner(dir string, t TrialResult, arch model.Config, net *nn.Sequential, threshold float64, maxBatch int) (*WinnerPlan, error) {
	if net == nil {
		return nil, fmt.Errorf("nas: no trained network for winner %s", t.Key)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := train.SaveFile(filepath.Join(dir, "winner.ckpt"), net); err != nil {
		return nil, fmt.Errorf("nas: winner checkpoint: %w", err)
	}
	p := &WinnerPlan{
		Version:     winnerPlanVersion,
		Candidate:   t.Candidate,
		Arch:        arch,
		Threshold:   threshold,
		Accuracy:    t.Accuracy,
		MaxBatch:    maxBatch,
		LatencyB1Ns: t.LatencyB1Ns,
		LatencyBNNs: t.LatencyBNNs,
		Checkpoint:  "winner.ckpt",
		Stamp:       provenance.Collect(),
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "plan.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return p, nil
}

// LoadWinnerPlan reads a plan.json written by SaveWinner.
func LoadWinnerPlan(path string) (*WinnerPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p WinnerPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("nas: winner plan %s: %w", path, err)
	}
	if p.Version != winnerPlanVersion {
		return nil, fmt.Errorf("nas: winner plan %s: version %d, want %d", path, p.Version, winnerPlanVersion)
	}
	if err := p.Arch.Validate(); err != nil {
		return nil, fmt.Errorf("nas: winner plan %s: %w", path, err)
	}
	return &p, nil
}

// ResolveCheckpoint returns the absolute-ish checkpoint path for a plan
// loaded from planPath (the checkpoint is stored relative to the plan's
// directory).
func (p *WinnerPlan) ResolveCheckpoint(planPath string) string {
	if filepath.IsAbs(p.Checkpoint) {
		return p.Checkpoint
	}
	return filepath.Join(filepath.Dir(planPath), p.Checkpoint)
}

package hydro

import "testing"

// yDEM builds two headwater channels merging into one: a "Y" network on a
// south-draining slope. Streams run down columns 2 and 6, joining at the
// confluence row into a single channel down column 4.
func yDEM() (*Grid, []bool) {
	rows, cols := 12, 9
	dem := NewGrid(rows, cols, 1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			z := float64(rows-r) * 2 // south-draining
			// Carve channels.
			dem.Set(r, c, z+3)
		}
	}
	stream := make([]bool, rows*cols)
	carve := func(r, c int) {
		dem.Set(r, c, dem.At(r, c)-3)
		stream[r*cols+c] = true
	}
	// Two branches converging at (6,4).
	for r := 0; r <= 5; r++ {
		carve(r, 2)
		carve(r, 6)
	}
	carve(5, 3) // branch 1 bends toward center
	carve(5, 5) // branch 2 bends toward center
	for r := 6; r < rows; r++ {
		carve(r, 4)
	}
	return dem, stream
}

func TestStrahlerYNetwork(t *testing.T) {
	dem, stream := yDEM()
	dirs := D8FlowDirections(dem)
	order := StrahlerOrder(dem, dirs, stream)
	// Headwaters are order 1.
	if order[0*9+2] != 1 || order[0*9+6] != 1 {
		t.Fatalf("headwater orders: %d, %d", order[0*9+2], order[0*9+6])
	}
	// After the confluence the main stem is order 2.
	if got := order[10*9+4]; got != 2 {
		t.Fatalf("main stem order = %d, want 2", got)
	}
	if MaxOrder(order) != 2 {
		t.Fatalf("max order = %d, want 2", MaxOrder(order))
	}
	// Non-stream cells are order 0.
	if order[0*9+0] != 0 {
		t.Fatal("non-stream cell must be order 0")
	}
}

func TestStrahlerSingleChannelStaysOrder1(t *testing.T) {
	dem := tiltedPlane(1, 10)
	stream := make([]bool, 10)
	for i := range stream {
		stream[i] = true
	}
	dirs := D8FlowDirections(dem)
	order := StrahlerOrder(dem, dirs, stream)
	for i, w := range order {
		if w != 1 {
			t.Fatalf("cell %d order = %d, want 1 (no confluences)", i, w)
		}
	}
}

func TestBasinsTiltedPlaneRowsSeparate(t *testing.T) {
	// Rows of a tilted plane flow straight east: each row is its own
	// basin ending at the east edge.
	dem := tiltedPlane(4, 6)
	dirs := D8FlowDirections(dem)
	labels := Basins(dirs)
	if got := BasinCount(labels); got != 4 {
		t.Fatalf("basins = %d, want 4", got)
	}
	// Every cell in a row must share the row's label.
	for r := 0; r < 4; r++ {
		want := labels[r*6]
		for c := 0; c < 6; c++ {
			if labels[r*6+c] != want {
				t.Fatalf("row %d not a single basin", r)
			}
		}
	}
}

func TestBasinsPitCapturesNeighborhood(t *testing.T) {
	dem := NewGrid(5, 5, 1)
	for i := range dem.Data {
		dem.Data[i] = 10
	}
	dem.Set(2, 2, 1) // deep central pit: the whole interior drains to it
	dirs := D8FlowDirections(dem)
	labels := Basins(dirs)
	pit := 2*5 + 2
	if labels[pit] != pit {
		t.Fatal("pit must be its own basin root")
	}
	if labels[1*5+1] != pit {
		t.Fatal("neighbor must drain to the pit")
	}
}

func TestLargestBasinFrac(t *testing.T) {
	if got := LargestBasinFrac([]int{1, 1, 1, 2}); got != 0.75 {
		t.Fatalf("frac = %v, want 0.75", got)
	}
	if LargestBasinFrac(nil) != 0 {
		t.Fatal("empty labels must give 0")
	}
}

func TestDamsFragmentBasins(t *testing.T) {
	// The digital-dam valley: the embankment splits the valley basin.
	dem, crossing := buildDammedValley()
	undammed := NewGrid(dem.Rows, dem.Cols, 1)
	for r := 0; r < dem.Rows; r++ {
		for c := 0; c < dem.Cols; c++ {
			dv := float64(r - dem.Rows/2)
			undammed.Set(r, c, float64(dem.Cols-c)*0.5+dv*dv*0.05)
		}
	}
	free := LargestBasinFrac(Basins(D8FlowDirections(undammed)))
	dammed := LargestBasinFrac(Basins(D8FlowDirections(dem)))
	if dammed >= free {
		t.Fatalf("dam should fragment the main basin: free %v, dammed %v", free, dammed)
	}
	// Breaching reconnects it.
	BreachAt(dem, crossing, 4)
	breached := LargestBasinFrac(Basins(D8FlowDirections(dem)))
	if breached <= dammed {
		t.Fatalf("breach should rejoin basins: dammed %v, breached %v", dammed, breached)
	}
}

// Package hydro implements the digital-elevation-model hydrology that
// motivates the paper: D8 flow routing, flow accumulation, stream
// delineation, priority-flood depression filling, digital-dam diagnosis,
// and culvert breaching. It is the substrate for the end-to-end
// "detect crossings → breach DEM → restore connectivity" example and for
// the synthetic watershed generator in internal/terrain.
package hydro

import "fmt"

// Grid is a row-major raster of float64 values (elevations, accumulations).
type Grid struct {
	Rows, Cols int
	// CellSize is the ground size of one cell in meters (1 m in the
	// paper's NAIP imagery).
	CellSize float64
	Data     []float64
}

// NewGrid allocates a zero-filled grid.
func NewGrid(rows, cols int, cellSize float64) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("hydro: invalid grid size %dx%d", rows, cols))
	}
	return &Grid{Rows: rows, Cols: cols, CellSize: cellSize, Data: make([]float64, rows*cols)}
}

// At returns the value at (r, c).
func (g *Grid) At(r, c int) float64 { return g.Data[r*g.Cols+c] }

// Set assigns the value at (r, c).
func (g *Grid) Set(r, c int, v float64) { g.Data[r*g.Cols+c] = v }

// Add increments the value at (r, c).
func (g *Grid) Add(r, c int, v float64) { g.Data[r*g.Cols+c] += v }

// In reports whether (r, c) lies inside the grid.
func (g *Grid) In(r, c int) bool { return r >= 0 && r < g.Rows && c >= 0 && c < g.Cols }

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	c := NewGrid(g.Rows, g.Cols, g.CellSize)
	copy(c.Data, g.Data)
	return c
}

// MinMax returns the minimum and maximum values.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = g.Data[0], g.Data[0]
	for _, v := range g.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Point is a raster coordinate.
type Point struct {
	R, C int
}

// d8 neighbor offsets, clockwise from east, and their indices.
var d8dr = [8]int{0, 1, 1, 1, 0, -1, -1, -1}
var d8dc = [8]int{1, 1, 0, -1, -1, -1, 0, 1}

// dist8 returns the center-to-center distance for D8 direction i in cells.
func dist8(i int) float64 {
	if d8dr[i] != 0 && d8dc[i] != 0 {
		return 1.4142135623730951
	}
	return 1
}

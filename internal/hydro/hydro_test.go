package hydro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tiltedPlane returns a DEM sloping down toward the east edge.
func tiltedPlane(rows, cols int) *Grid {
	g := NewGrid(rows, cols, 1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.Set(r, c, float64(cols-c))
		}
	}
	return g
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(3, 4, 1)
	g.Set(1, 2, 7)
	if g.At(1, 2) != 7 {
		t.Fatal("At/Set round trip failed")
	}
	g.Add(1, 2, 3)
	if g.At(1, 2) != 10 {
		t.Fatal("Add failed")
	}
	if g.In(3, 0) || g.In(-1, 0) || !g.In(2, 3) {
		t.Fatal("In() wrong")
	}
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) == 99 {
		t.Fatal("Clone must not alias")
	}
}

func TestNewGridPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(0, 5, 1)
}

func TestD8OnTiltedPlane(t *testing.T) {
	dem := tiltedPlane(5, 10)
	dirs := D8FlowDirections(dem)
	// Interior cells must all flow east (direction 0).
	for r := 1; r < 4; r++ {
		for c := 1; c < 8; c++ {
			if dirs.At(r, c) != 0 {
				t.Fatalf("cell (%d,%d) dir = %d, want 0 (east)", r, c, dirs.At(r, c))
			}
		}
	}
	// East edge drains off the grid.
	if dirs.At(2, 9) != EdgeDir {
		t.Fatalf("east edge dir = %d, want EdgeDir", dirs.At(2, 9))
	}
}

func TestD8PitDetection(t *testing.T) {
	dem := NewGrid(3, 3, 1)
	for i := range dem.Data {
		dem.Data[i] = 10
	}
	dem.Set(1, 1, 1) // central pit
	dirs := D8FlowDirections(dem)
	if dirs.At(1, 1) != PitDir {
		t.Fatalf("central pit dir = %d, want PitDir", dirs.At(1, 1))
	}
	if CountPits(dem) != 1 {
		t.Fatalf("CountPits = %d, want 1", CountPits(dem))
	}
}

func TestFlowAccumulationRow(t *testing.T) {
	// A single row sloping east: accumulation grows 1,2,3,...
	dem := tiltedPlane(1, 6)
	dirs := D8FlowDirections(dem)
	acc := FlowAccumulation(dem, dirs)
	for c := 0; c < 6; c++ {
		if acc.At(0, c) != float64(c+1) {
			t.Fatalf("acc[%d] = %v, want %d", c, acc.At(0, c), c+1)
		}
	}
}

func TestFlowAccumulationConservation(t *testing.T) {
	// On a pit-free DEM, the sum of accumulation flowing off the edges
	// must equal the cell count.
	rng := rand.New(rand.NewSource(3))
	dem := tiltedPlane(20, 20)
	for i := range dem.Data {
		dem.Data[i] += rng.Float64() * 0.1 // tiny roughness, keeps slope dominant
	}
	dirs := D8FlowDirections(dem)
	acc := FlowAccumulation(dem, dirs)
	var out float64
	for r := 0; r < dem.Rows; r++ {
		for c := 0; c < dem.Cols; c++ {
			if dirs.At(r, c) == EdgeDir {
				out += acc.At(r, c)
			}
		}
	}
	if out != float64(dem.Rows*dem.Cols) {
		t.Fatalf("outflow %v, want %d", out, dem.Rows*dem.Cols)
	}
}

func TestFillDepressionsRemovesPits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dem := tiltedPlane(30, 30)
	for i := range dem.Data {
		dem.Data[i] += rng.Float64() * 3 // rough terrain with many pits
	}
	if CountPits(dem) == 0 {
		t.Skip("terrain accidentally pit-free")
	}
	filled := FillDepressions(dem)
	if n := CountPits(filled); n != 0 {
		t.Fatalf("filled DEM still has %d pits", n)
	}
}

func TestFillDepressionsNeverLowers(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		dem := NewGrid(12, 12, 1)
		for i := range dem.Data {
			dem.Data[i] = rng.Float64() * 10
		}
		filled := FillDepressions(dem)
		for i := range dem.Data {
			if filled.Data[i] < dem.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFillDepressionsLimited(t *testing.T) {
	dem := tiltedPlane(9, 9)
	dem.Set(4, 4, dem.At(4, 4)-0.2) // shallow natural pit
	dem.Set(2, 2, dem.At(2, 2)-3.0) // deep dam pond
	limited := FillDepressionsLimited(dem, 0.5)
	dirs := D8FlowDirections(limited)
	if dirs.At(4, 4) == PitDir {
		t.Fatal("shallow pit should be filled away")
	}
	if dirs.At(2, 2) != PitDir {
		t.Fatal("deep pond must survive limited filling")
	}
	// Limited fill never raises a cell above original + maxDepth.
	for i := range dem.Data {
		if limited.Data[i] > dem.Data[i]+0.5+1e-9 {
			t.Fatal("limited fill exceeded maxDepth")
		}
		if limited.Data[i] < dem.Data[i] {
			t.Fatal("fill must never lower")
		}
	}
}

func TestTraceToOutlet(t *testing.T) {
	dem := tiltedPlane(5, 10)
	dirs := D8FlowDirections(dem)
	if !TraceToOutlet(dirs, Point{R: 2, C: 1}) {
		t.Fatal("tilted plane must drain to the edge")
	}
	// Add a pit trap.
	dem2 := tiltedPlane(5, 10)
	for r := 0; r < 5; r++ {
		dem2.Set(r, 5, 100) // wall
	}
	dem2.Set(2, 4, -10) // pit just before the wall
	dirs2 := D8FlowDirections(dem2)
	if TraceToOutlet(dirs2, Point{R: 2, C: 2}) {
		t.Fatal("flow should be trapped by the pit behind the wall")
	}
}

// buildDammedValley creates a sloped valley with a road embankment across
// it: the classic digital-dam scenario.
func buildDammedValley() (*Grid, Point) {
	rows, cols := 40, 60
	dem := NewGrid(rows, cols, 1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Valley: parabolic cross-section draining east.
			dv := float64(r - rows/2)
			dem.Set(r, c, float64(cols-c)*0.5+dv*dv*0.05)
		}
	}
	// North-south road embankment at c=30, 2 m tall.
	for r := 0; r < rows; r++ {
		for _, c := range []int{29, 30, 31} {
			dem.Add(r, c, 4.0)
		}
	}
	return dem, Point{R: rows / 2, C: 30}
}

func TestDigitalDamReducesConnectivity(t *testing.T) {
	dem, _ := buildDammedValley()
	undammed := NewGrid(dem.Rows, dem.Cols, 1)
	for r := 0; r < dem.Rows; r++ {
		for c := 0; c < dem.Cols; c++ {
			dv := float64(r - dem.Rows/2)
			undammed.Set(r, c, float64(dem.Cols-c)*0.5+dv*dv*0.05)
		}
	}
	free := ConnectivityScore(undammed, 20)
	dammed := ConnectivityScore(dem, 20)
	if dammed >= free {
		t.Fatalf("digital dam must reduce connectivity: dammed %v, free %v", dammed, free)
	}
}

func TestBreachRestoresConnectivity(t *testing.T) {
	dem, crossing := buildDammedValley()
	before := ConnectivityScore(dem, 20)
	BreachAt(dem, crossing, 4)
	after := ConnectivityScore(dem, 20)
	if after <= before {
		t.Fatalf("breaching must improve connectivity: before %v, after %v", before, after)
	}
	if after < 0.95 {
		t.Fatalf("connectivity after breach = %v, want ≈1", after)
	}
}

func TestBreachNeverRaises(t *testing.T) {
	dem, crossing := buildDammedValley()
	orig := dem.Clone()
	BreachAt(dem, crossing, 4)
	for i := range dem.Data {
		if dem.Data[i] > orig.Data[i]+1e-12 {
			t.Fatal("breach must only lower elevations")
		}
	}
}

func TestBreachAllMultiplePoints(t *testing.T) {
	dem, crossing := buildDammedValley()
	pts := []Point{crossing, {R: 5, C: 30}, {R: 34, C: 30}}
	BreachAll(dem, pts, 3)
	for _, p := range pts {
		// Breached cells must now be local channels, lower than the
		// remaining embankment beside them.
		side := Point{R: p.R + 4, C: p.C}
		if dem.In(side.R, side.C) && dem.At(p.R, p.C) >= dem.At(side.R, side.C)+4 {
			t.Fatalf("breach at %v did not lower the embankment", p)
		}
	}
}

func TestBreachOutOfBoundsIsNoop(t *testing.T) {
	dem := tiltedPlane(5, 5)
	orig := dem.Clone()
	BreachAt(dem, Point{R: -3, C: 99}, 3)
	for i := range dem.Data {
		if dem.Data[i] != orig.Data[i] {
			t.Fatal("out-of-bounds breach must not modify the DEM")
		}
	}
}

func TestExtractStreams(t *testing.T) {
	acc := NewGrid(2, 2, 1)
	acc.Data = []float64{1, 5, 10, 2}
	mask := ExtractStreams(acc, 5)
	want := []bool{false, true, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v", i, mask[i], want[i])
		}
	}
}

func TestMinMax(t *testing.T) {
	g := NewGrid(2, 2, 1)
	g.Data = []float64{3, -1, 7, 0}
	lo, hi := g.MinMax()
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
}

func TestConnectivityScoreEmptyStreams(t *testing.T) {
	dem := tiltedPlane(5, 5)
	if s := ConnectivityScore(dem, math.Inf(1)); s != 0 {
		t.Fatalf("no streams → score 0, got %v", s)
	}
}

func BenchmarkFlowAccumulation256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dem := tiltedPlane(256, 256)
	for i := range dem.Data {
		dem.Data[i] += rng.Float64() * 0.5
	}
	dirs := D8FlowDirections(dem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlowAccumulation(dem, dirs)
	}
}

func BenchmarkFillDepressions256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dem := tiltedPlane(256, 256)
	for i := range dem.Data {
		dem.Data[i] += rng.Float64() * 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FillDepressions(dem)
	}
}

package hydro

import "sort"

// StrahlerOrder computes the Strahler stream order of every stream cell:
// headwater streams are order 1; when two streams of equal order w meet,
// the downstream order becomes w+1; otherwise the maximum order carries
// through. Non-stream cells get order 0.
func StrahlerOrder(dem *Grid, dirs *FlowDir, streamMask []bool) []int {
	n := dem.Rows * dem.Cols
	order := make([]int, n)

	// Process stream cells from high to low elevation so every upstream
	// contributor is resolved before its receiver.
	var cells []int
	for i := 0; i < n; i++ {
		if streamMask[i] {
			cells = append(cells, i)
		}
	}
	sort.Slice(cells, func(a, b int) bool { return dem.Data[cells[a]] > dem.Data[cells[b]] })

	// Per-cell incoming contributor orders.
	maxIn := make([]int, n)
	cntMaxIn := make([]int, n)
	for _, i := range cells {
		w := 1
		if maxIn[i] > 0 {
			w = maxIn[i]
			if cntMaxIn[i] > 1 {
				w++
			}
		}
		order[i] = w
		r, c := i/dem.Cols, i%dem.Cols
		d := dirs.At(r, c)
		if d < 0 {
			continue
		}
		j := (r+d8dr[d])*dem.Cols + (c + d8dc[d])
		if !streamMask[j] {
			continue
		}
		switch {
		case w > maxIn[j]:
			maxIn[j] = w
			cntMaxIn[j] = 1
		case w == maxIn[j]:
			cntMaxIn[j]++
		}
	}
	return order
}

// MaxOrder returns the highest Strahler order present.
func MaxOrder(order []int) int {
	best := 0
	for _, w := range order {
		if w > best {
			best = w
		}
	}
	return best
}

// Basins labels every cell with the ID of the terminal cell (edge outflow
// or pit) its flow path reaches, delineating drainage basins. Labels are
// the terminal cell's flat index.
func Basins(dirs *FlowDir) []int {
	n := dirs.Rows * dirs.Cols
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	// Iterative path-following with path compression: walk downstream to a
	// terminal or an already-labeled cell, then label the whole path.
	var path []int
	for i := 0; i < n; i++ {
		if label[i] >= 0 {
			continue
		}
		path = path[:0]
		cur := i
		root := -1
		for {
			if label[cur] >= 0 {
				root = label[cur]
				break
			}
			path = append(path, cur)
			r, c := cur/dirs.Cols, cur%dirs.Cols
			d := dirs.At(r, c)
			if d < 0 {
				root = cur // terminal: its own basin root
				break
			}
			cur = (r+d8dr[d])*dirs.Cols + (c + d8dc[d])
		}
		for _, p := range path {
			label[p] = root
		}
	}
	return label
}

// BasinCount returns the number of distinct basins.
func BasinCount(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// LargestBasinFrac returns the fraction of cells in the largest basin — a
// compact connectivity summary (a well-connected watershed drains almost
// everything through a few outlets; digital dams fragment it).
func LargestBasinFrac(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := map[int]int{}
	best := 0
	for _, l := range labels {
		counts[l]++
		if counts[l] > best {
			best = counts[l]
		}
	}
	return float64(best) / float64(len(labels))
}

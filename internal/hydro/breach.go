package hydro

import "math"

// BreachAt carves a channel through an embankment around the given
// drainage-crossing point: every cell within the radius is lowered onto a
// cone that slopes toward the lowest cell in the neighborhood (the
// downstream channel), so water entering the breach drains through it
// instead of ponding (the "selective drainage" operation of Poppenga et
// al., automated by detected crossings).
func BreachAt(dem *Grid, p Point, radius int) {
	if !dem.In(p.R, p.C) || radius < 1 {
		return
	}
	// Locate the lowest cell in the disc: the breach outlet.
	outlet := p
	lo := dem.At(p.R, p.C)
	for r := p.R - radius; r <= p.R+radius; r++ {
		for c := p.C - radius; c <= p.C+radius; c++ {
			if !dem.In(r, c) {
				continue
			}
			dr, dc := r-p.R, c-p.C
			if dr*dr+dc*dc > radius*radius {
				continue
			}
			if v := dem.At(r, c); v < lo {
				lo = v
				outlet = Point{R: r, C: c}
			}
		}
	}
	// Lower every disc cell onto a gentle cone descending to the outlet,
	// so the carved surface has no interior pit. Cells already below the
	// cone are left untouched (breaching only removes material).
	const slope = 0.01
	for r := p.R - radius; r <= p.R+radius; r++ {
		for c := p.C - radius; c <= p.C+radius; c++ {
			if !dem.In(r, c) {
				continue
			}
			dr, dc := r-p.R, c-p.C
			if dr*dr+dc*dc > radius*radius {
				continue
			}
			or, oc := r-outlet.R, c-outlet.C
			target := lo + slope*math.Sqrt(float64(or*or+oc*oc))
			if dem.At(r, c) > target {
				dem.Set(r, c, target)
			}
		}
	}
}

// BreachAll applies BreachAt to every point.
func BreachAll(dem *Grid, points []Point, radius int) {
	for _, p := range points {
		BreachAt(dem, p, radius)
	}
}

package hydro

import (
	"container/heap"
	"sort"
)

// FlowDir holds D8 flow directions: for each cell, the index 0..7 of the
// steepest-descent neighbor, or -1 for pits and flats with no lower
// neighbor (interior sinks), or -2 for cells that drain off the grid edge.
type FlowDir struct {
	Rows, Cols int
	Dir        []int8
}

// PitDir marks a cell with no downslope neighbor.
const PitDir int8 = -1

// EdgeDir marks a cell that drains off the raster boundary.
const EdgeDir int8 = -2

// At returns the direction at (r, c).
func (f *FlowDir) At(r, c int) int8 { return f.Dir[r*f.Cols+c] }

// Downstream returns the next cell along the flow path and whether the
// path continues (false at pits and edge outflows).
func (f *FlowDir) Downstream(p Point) (Point, bool) {
	d := f.At(p.R, p.C)
	if d < 0 {
		return p, false
	}
	return Point{p.R + d8dr[d], p.C + d8dc[d]}, true
}

// D8FlowDirections computes steepest-descent D8 directions on dem. Border
// cells whose steepest descent leaves the raster are marked EdgeDir.
func D8FlowDirections(dem *Grid) *FlowDir {
	f := &FlowDir{Rows: dem.Rows, Cols: dem.Cols, Dir: make([]int8, dem.Rows*dem.Cols)}
	for r := 0; r < dem.Rows; r++ {
		for c := 0; c < dem.Cols; c++ {
			z := dem.At(r, c)
			best := int8(PitDir)
			bestSlope := 0.0
			offGrid := false
			for i := 0; i < 8; i++ {
				nr, nc := r+d8dr[i], c+d8dc[i]
				if !dem.In(nr, nc) {
					// Flowing off the edge is always possible for border
					// cells; model the outside as infinitely low.
					offGrid = true
					continue
				}
				slope := (z - dem.At(nr, nc)) / dist8(i)
				if slope > bestSlope {
					bestSlope = slope
					best = int8(i)
				}
			}
			if best == PitDir && offGrid {
				best = EdgeDir
			}
			f.Dir[r*f.Cols+c] = best
		}
	}
	return f
}

// FlowAccumulation computes D8 flow accumulation (number of upstream
// cells, inclusive of the cell itself) by processing cells in descending
// elevation order.
func FlowAccumulation(dem *Grid, dirs *FlowDir) *Grid {
	acc := NewGrid(dem.Rows, dem.Cols, dem.CellSize)
	for i := range acc.Data {
		acc.Data[i] = 1
	}
	order := make([]int, len(dem.Data))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dem.Data[order[a]] > dem.Data[order[b]] })
	for _, idx := range order {
		r, c := idx/dem.Cols, idx%dem.Cols
		d := dirs.At(r, c)
		if d < 0 {
			continue
		}
		nr, nc := r+d8dr[d], c+d8dc[d]
		acc.Add(nr, nc, acc.At(r, c))
	}
	return acc
}

// floodCell is a priority-queue item for priority-flood filling.
type floodCell struct {
	z    float64
	r, c int
}

type floodHeap []floodCell

func (h floodHeap) Len() int            { return len(h) }
func (h floodHeap) Less(i, j int) bool  { return h[i].z < h[j].z }
func (h floodHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floodHeap) Push(x interface{}) { *h = append(*h, x.(floodCell)) }
func (h *floodHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FillDepressions returns a copy of dem with all interior depressions
// raised to their spill elevation (Barnes et al. priority-flood). A tiny
// epsilon gradient keeps filled areas drainable.
func FillDepressions(dem *Grid) *Grid {
	const eps = 1e-6
	out := dem.Clone()
	visited := make([]bool, len(dem.Data))
	h := &floodHeap{}
	heap.Init(h)
	push := func(r, c int) {
		visited[r*dem.Cols+c] = true
		heap.Push(h, floodCell{z: out.At(r, c), r: r, c: c})
	}
	for c := 0; c < dem.Cols; c++ {
		push(0, c)
		if dem.Rows > 1 {
			push(dem.Rows-1, c)
		}
	}
	for r := 1; r < dem.Rows-1; r++ {
		push(r, 0)
		if dem.Cols > 1 {
			push(r, dem.Cols-1)
		}
	}
	for h.Len() > 0 {
		cell := heap.Pop(h).(floodCell)
		for i := 0; i < 8; i++ {
			nr, nc := cell.r+d8dr[i], cell.c+d8dc[i]
			if !dem.In(nr, nc) || visited[nr*dem.Cols+nc] {
				continue
			}
			visited[nr*dem.Cols+nc] = true
			z := out.At(nr, nc)
			if z <= cell.z {
				z = cell.z + eps
				out.Set(nr, nc, z)
			}
			heap.Push(h, floodCell{z: z, r: nr, c: nc})
		}
	}
	return out
}

// FillDepressionsLimited fills depressions only up to maxDepth of fill:
// shallow natural micro-depressions (interpolation noise) drain, while
// deep ponds — such as those impounded behind road embankments — remain.
// This is the preprocessing hydrologists apply before diagnosing digital
// dams: without it every pixel-scale pit looks like a dam.
func FillDepressionsLimited(dem *Grid, maxDepth float64) *Grid {
	filled := FillDepressions(dem)
	out := dem.Clone()
	for i := range out.Data {
		limit := dem.Data[i] + maxDepth
		if filled.Data[i] <= limit {
			out.Data[i] = filled.Data[i]
		} else {
			out.Data[i] = limit
		}
	}
	return out
}

// ExtractStreams returns the boolean stream mask: cells whose accumulation
// meets the threshold.
func ExtractStreams(acc *Grid, threshold float64) []bool {
	mask := make([]bool, len(acc.Data))
	for i, v := range acc.Data {
		mask[i] = v >= threshold
	}
	return mask
}

// TraceToOutlet follows the D8 path from p until it exits the raster
// (true) or terminates in a pit (false), with a step bound for safety.
func TraceToOutlet(dirs *FlowDir, p Point) bool {
	maxSteps := dirs.Rows * dirs.Cols
	for step := 0; step < maxSteps; step++ {
		d := dirs.At(p.R, p.C)
		if d == EdgeDir {
			return true
		}
		if d == PitDir {
			return false
		}
		p = Point{p.R + d8dr[d], p.C + d8dc[d]}
	}
	return false
}

// ConnectivityScore returns the fraction of stream cells whose flow path
// reaches the raster boundary. Digital dams strand stream cells in pits
// behind embankments, lowering the score; breaching restores it.
func ConnectivityScore(dem *Grid, streamThreshold float64) float64 {
	dirs := D8FlowDirections(dem)
	acc := FlowAccumulation(dem, dirs)
	mask := ExtractStreams(acc, streamThreshold)
	total, connected := 0, 0
	for i, isStream := range mask {
		if !isStream {
			continue
		}
		total++
		if TraceToOutlet(dirs, Point{R: i / dem.Cols, C: i % dem.Cols}) {
			connected++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(connected) / float64(total)
}

// CountPits returns the number of interior sink cells.
func CountPits(dem *Grid) int {
	dirs := D8FlowDirections(dem)
	n := 0
	for _, d := range dirs.Dir {
		if d == PitDir {
			n++
		}
	}
	return n
}

package nn

import (
	"fmt"

	"drainnet/internal/tensor"
)

// ConvKernel selects the inference convolution kernel of a Conv2D. The
// choice is per batch bucket (batch 1 vs batch >1) and per layer: the
// autotuner (internal/model) measures every eligible variant on the
// serving host and picks the fastest, with non-bitwise variants gated on
// held-out accuracy. KernelIm2Col is the safe default everywhere.
//
// Kernel choice only affects the inference fast path (Infer/inferFused
// and, through it, the scheduled IOS executor). Forward keeps the
// training im2col path untouched.
type ConvKernel uint8

const (
	// KernelIm2Col lowers each sample with im2col and multiplies through
	// the packed fp32 panel GEMM (the original fast path; bitwise
	// reference for the other variants).
	KernelIm2Col ConvKernel = iota
	// KernelWinograd runs the F(2×2, 3×3) transform kernels — only
	// eligible for 3×3 stride-1 convs, ~2.25× fewer multiplies, NOT
	// bitwise (accuracy-gated like int8).
	KernelWinograd
	// KernelNCHWc runs the cache-blocked direct kernel on OIhw4o-packed
	// weights: no im2col materialization, bitwise vs the im2col GEMM.
	KernelNCHWc
	// KernelDirect runs the unpacked direct micro-kernel, bitwise vs the
	// im2col GEMM; wins where the channel depth is too small to amortize
	// lowering (first layers).
	KernelDirect
	// KernelMasked is the spatially masked im2col GEMM of the dynamic
	// inference path: per-band input activation energy gates the lowering
	// and matmul of each output-row band, with low-energy bands filled by
	// the layer's flat response. Content-dependent and NOT bitwise
	// (accuracy-gated by the dynamic plan ladder); only eligible once a
	// mask spec is configured with SetMask.
	KernelMasked

	numConvKernels = 5
)

// String returns the kernel's stable identifier, used in cost-cache
// keys, /v1/model reports and telemetry labels.
func (k ConvKernel) String() string {
	switch k {
	case KernelIm2Col:
		return "im2col"
	case KernelWinograd:
		return "winograd"
	case KernelNCHWc:
		return "nchwc"
	case KernelDirect:
		return "direct"
	case KernelMasked:
		return "masked"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// ConvKernels enumerates every kernel variant in a stable order.
func ConvKernels() []ConvKernel {
	return []ConvKernel{KernelIm2Col, KernelWinograd, KernelNCHWc, KernelDirect, KernelMasked}
}

// Exact reports whether the kernel is bit-identical to the im2col GEMM
// reference. Non-exact kernels must pass the held-out accuracy gate
// before serving.
func (k ConvKernel) Exact() bool { return k != KernelWinograd && k != KernelMasked }

// KernelEligible reports whether the layer can run kernel k on its
// geometry. Legacy ConvDirect-algo layers (the §5.3 ablation) keep their
// nested-loop path and are not retargetable.
func (c *Conv2D) KernelEligible(k ConvKernel) bool {
	if c.Algo != ConvIm2Col {
		return false
	}
	switch k {
	case KernelWinograd:
		g := c.Geom
		return g.KH == 3 && g.KW == 3 && g.StrideH == 1 && g.StrideW == 1
	case KernelIm2Col, KernelNCHWc, KernelDirect:
		return true
	case KernelMasked:
		return c.maskBand > 0
	}
	return false
}

// SetKernels selects the serving kernels for the batch-1 and batch->1
// buckets and packs any weight layout the choice needs. Panics on an
// ineligible choice — callers (the autotuner) check KernelEligible.
func (c *Conv2D) SetKernels(b1, bn ConvKernel) {
	if !c.KernelEligible(b1) || !c.KernelEligible(bn) {
		panic(fmt.Sprintf("nn: Conv2D %dx%d cannot run kernels (%s, %s)", c.OutC, c.Geom.KH, b1, bn))
	}
	c.kernB1, c.kernBN = b1, bn
	c.ensureKernel(b1)
	c.ensureKernel(bn)
}

// Kernels reports the layer's selected (batch-1, batch->1) kernels.
func (c *Conv2D) Kernels() (b1, bn ConvKernel) { return c.kernB1, c.kernBN }

// InferFused exposes the fused conv+ReLU inference forward for the
// kernel autotuner's measurement probe, which times a single layer in
// exactly the form the serving chain runs it.
func (c *Conv2D) InferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor {
	return c.inferFused(x, a, relu)
}

// InferFused exposes the fused int8 conv+ReLU forward for the kernel
// autotuner, so int8 competes in the same per-layer measurement as the
// fp32 kernel variants.
func (q *QuantConv2D) InferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor {
	return q.inferFused(x, a, relu)
}

// ensureKernel packs the weight layout kernel k reads, once. Packed
// layouts are immutable and shared by every replica cloned afterwards.
func (c *Conv2D) ensureKernel(k ConvKernel) {
	switch k {
	case KernelIm2Col:
		if c.packed == nil {
			c.packed = tensor.PackMatrix(c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW))
		}
	case KernelWinograd:
		if c.wino == nil {
			c.wino = tensor.PackWinograd(c.Weight.Value)
		}
	case KernelNCHWc:
		if c.nchwc == nil {
			c.nchwc = tensor.PackNCHWc(c.Weight.Value, c.Geom)
		}
	case KernelDirect:
		// Reads the natural weight layout; nothing to pack.
	case KernelMasked:
		// Active bands run the packed panel GEMM; masked bands fill with
		// the flat response, which needs the per-(out,in)-channel kernel
		// sums, plus a 2D prefix-sum table over kernel taps so the
		// padding-clipped pixels can look up the sum of any in-bounds tap
		// rectangle in O(1). All layouts are immutable and shared across
		// replicas.
		if c.packed == nil {
			c.packed = tensor.PackMatrix(c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW))
		}
		if c.wpre == nil {
			kw1 := c.Geom.KW + 1
			blk := (c.Geom.KH + 1) * kw1
			wd := c.Weight.Value.Data()
			wp := make([]float32, c.OutC*c.InC*blk)
			ws := make([]float32, c.OutC*c.InC)
			for oc := 0; oc < c.OutC*c.InC; oc++ {
				src := wd[oc*c.Geom.KH*c.Geom.KW:]
				p := wp[oc*blk:]
				for kh := 0; kh < c.Geom.KH; kh++ {
					var row float32
					for kw := 0; kw < c.Geom.KW; kw++ {
						row += src[kh*c.Geom.KW+kw]
						p[(kh+1)*kw1+kw+1] = p[kh*kw1+kw+1] + row
					}
				}
			}
			for oc := range ws {
				ws[oc] = wp[oc*blk+c.Geom.KH*kw1+c.Geom.KW]
			}
			c.wpre, c.wsum = wp, ws
		}
	}
}

// inferWinograd is the Winograd F(2,3) inference forward. Batches give
// per-sample parallelism (each sample transforms, multiplies and
// inverse-transforms in one pool task, scratch striped per sample);
// batch 1 parallelizes each phase internally — input channels, then the
// 16 per-position GEMMs, then output channels.
func (c *Conv2D) inferWinograd(out, x *tensor.Tensor, a *tensor.Arena, relu bool, n, ch, h, w, oh, ow int) {
	sl := c.wino.ScratchLen(oh, ow)
	bias := c.Bias.Value.Data()
	if n > 1 {
		scr := a.Get(n, sl)
		t := &c.winoBatch
		t.wino = c.wino
		t.out, t.x, t.scratch = out.Data(), x.Data(), scr.Data()
		t.sampleStride, t.outStride, t.scratchStride = ch*h*w, c.OutC*oh*ow, sl
		t.h, t.w, t.padH, t.padW = h, w, c.Geom.PadH, c.Geom.PadW
		t.bias, t.relu = bias, relu
		tensor.ParallelRange(n, 1, t)
		return
	}
	scr := a.Get(sl)
	ty, tx := c.wino.Tiles(oh, ow)
	nT := ty * tx
	v := scr.Data()[:c.wino.Positions()*c.InC*nT]
	m := scr.Data()[c.wino.Positions()*c.InC*nT : sl]

	it := &c.winoIn
	it.wino, it.v, it.x = c.wino, v, x.Data()
	it.h, it.w, it.padH, it.padW = h, w, c.Geom.PadH, c.Geom.PadW
	tensor.ParallelRange(c.InC, 1, it)

	mt := &c.winoMul
	mt.wino, mt.m, mt.v, mt.nT = c.wino, m, v, nT
	tensor.ParallelRange(c.wino.Positions(), 1, mt)

	ot := &c.winoOut
	ot.wino, ot.out, ot.m = c.wino, out.Data(), m
	ot.oh, ot.ow = oh, ow
	ot.bias, ot.relu = bias, relu
	tensor.ParallelRange(c.OutC, 1, ot)
}

// inferNCHWc is the cache-blocked direct inference forward: whole
// samples across the pool for batches, output-channel blocks for batch 1.
// No scratch at all — the kernel accumulates in the output tensor.
func (c *Conv2D) inferNCHWc(out, x *tensor.Tensor, relu bool, n, ch, h, w, oh, ow int) {
	bias := c.Bias.Value.Data()
	if n > 1 {
		t := &c.nchwcBatch
		t.p = c.nchwc
		t.out, t.x = out.Data(), x.Data()
		t.sampleStride, t.outStride = ch*h*w, c.OutC*oh*ow
		t.h, t.w = h, w
		t.bias, t.relu = bias, relu
		tensor.ParallelRange(n, 1, t)
		return
	}
	bt := &c.nchwcB1
	bt.p = c.nchwc
	bt.out, bt.x = out.Data(), x.Data()
	bt.h, bt.w = h, w
	bt.bias, bt.relu = bias, relu
	tensor.ParallelRange(c.nchwc.Blocks(), 1, bt)
}

// inferDirect is the unpacked direct micro-kernel forward: whole samples
// across the pool for batches, output channels for batch 1.
func (c *Conv2D) inferDirect(out, x *tensor.Tensor, relu bool, n, ch, h, w, oh, ow int) {
	bias := c.Bias.Value.Data()
	wt := c.Weight.Value.Data()
	if n > 1 {
		t := &c.directBatch
		t.out, t.x, t.wt = out.Data(), x.Data(), wt
		t.sampleStride, t.outStride = ch*h*w, c.OutC*oh*ow
		t.inC, t.outC, t.h, t.w, t.geom = c.InC, c.OutC, h, w, c.Geom
		t.bias, t.relu = bias, relu
		tensor.ParallelRange(n, 1, t)
		return
	}
	ct := &c.directB1
	ct.out, ct.x, ct.wt = out.Data(), x.Data(), wt
	ct.inC, ct.outC, ct.h, ct.w, ct.geom = c.InC, c.OutC, h, w, c.Geom
	ct.bias, ct.relu = bias, relu
	tensor.ParallelRange(c.OutC, 1, ct)
}

// winoBatchTask convolves whole samples [lo,hi) through the Winograd
// kernel, each sample using its own stripe of the scratch buffer.
type winoBatchTask struct {
	wino                                   *tensor.Winograd
	out, x, scratch                        []float32
	sampleStride, outStride, scratchStride int
	h, w, padH, padW                       int
	bias                                   []float32
	relu                                   bool
}

func (t *winoBatchTask) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.wino.ConvInto(t.out[i*t.outStride:(i+1)*t.outStride],
			t.x[i*t.sampleStride:(i+1)*t.sampleStride],
			t.h, t.w, t.padH, t.padW, t.bias, t.relu,
			t.scratch[i*t.scratchStride:(i+1)*t.scratchStride])
	}
}

// winoInTask transforms input channels [lo,hi) into the V buffer (batch 1).
type winoInTask struct {
	wino             *tensor.Winograd
	v, x             []float32
	h, w, padH, padW int
}

func (t *winoInTask) RunRange(lo, hi int) {
	t.wino.TransformInput(t.v, t.x, t.h, t.w, t.padH, t.padW, lo, hi)
}

// winoMulTask runs per-position GEMMs [lo,hi) (batch 1).
type winoMulTask struct {
	wino *tensor.Winograd
	m, v []float32
	nT   int
}

func (t *winoMulTask) RunRange(lo, hi int) {
	t.wino.MulPositions(t.m, t.v, t.nT, lo, hi)
}

// winoOutTask inverse-transforms output channels [lo,hi) (batch 1).
type winoOutTask struct {
	wino   *tensor.Winograd
	out, m []float32
	oh, ow int
	bias   []float32
	relu   bool
}

func (t *winoOutTask) RunRange(lo, hi int) {
	t.wino.TransformOutput(t.out, t.m, t.oh, t.ow, t.bias, t.relu, lo, hi)
}

// nchwcBatchTask convolves whole samples [lo,hi) through the NCHWc kernel.
type nchwcBatchTask struct {
	p                       *tensor.PackedNCHWc
	out, x                  []float32
	sampleStride, outStride int
	h, w                    int
	bias                    []float32
	relu                    bool
}

func (t *nchwcBatchTask) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.p.ConvBlocks(t.out[i*t.outStride:(i+1)*t.outStride],
			t.x[i*t.sampleStride:(i+1)*t.sampleStride],
			t.h, t.w, t.bias, t.relu, 0, t.p.Blocks())
	}
}

// nchwcBlockTask convolves output-channel blocks [lo,hi) of one sample.
type nchwcBlockTask struct {
	p      *tensor.PackedNCHWc
	out, x []float32
	h, w   int
	bias   []float32
	relu   bool
}

func (t *nchwcBlockTask) RunRange(lo, hi int) {
	t.p.ConvBlocks(t.out, t.x, t.h, t.w, t.bias, t.relu, lo, hi)
}

// directBatchTask convolves whole samples [lo,hi) through the direct kernel.
type directBatchTask struct {
	out, x, wt              []float32
	sampleStride, outStride int
	inC, outC, h, w         int
	geom                    tensor.ConvGeom
	bias                    []float32
	relu                    bool
}

func (t *directBatchTask) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		tensor.DirectConvChans(t.out[i*t.outStride:(i+1)*t.outStride],
			t.x[i*t.sampleStride:(i+1)*t.sampleStride], t.wt,
			t.inC, t.h, t.w, t.geom, t.outC, t.bias, t.relu, 0, t.outC)
	}
}

// directChanTask convolves output channels [lo,hi) of one sample.
type directChanTask struct {
	out, x, wt      []float32
	inC, outC, h, w int
	geom            tensor.ConvGeom
	bias            []float32
	relu            bool
}

func (t *directChanTask) RunRange(lo, hi int) {
	tensor.DirectConvChans(t.out, t.x, t.wt, t.inC, t.h, t.w, t.geom, t.outC, t.bias, t.relu, lo, hi)
}

package nn

import (
	"fmt"
	"math"

	"drainnet/internal/tensor"
)

// BCEWithLogitsLoss computes the mean binary cross-entropy between logits
// and 0/1 targets, with the numerically stable log-sum-exp formulation:
//
//	loss = max(x,0) - x*t + log(1 + exp(-|x|))
//
// It returns the scalar loss and the gradient with respect to the logits.
func BCEWithLogitsLoss(logits, targets *tensor.Tensor) (float64, *tensor.Tensor) {
	if logits.Len() != targets.Len() {
		panic(fmt.Sprintf("nn: BCE logits/targets length mismatch %d vs %d", logits.Len(), targets.Len()))
	}
	n := logits.Len()
	if n == 0 {
		return 0, tensor.New(logits.Shape()...)
	}
	grad := tensor.New(logits.Shape()...)
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		x := float64(logits.Data()[i])
		t := float64(targets.Data()[i])
		loss += math.Max(x, 0) - x*t + math.Log1p(math.Exp(-math.Abs(x)))
		p := 1 / (1 + math.Exp(-x))
		grad.Data()[i] = float32((p - t) * inv)
	}
	return loss * inv, grad
}

// SmoothL1Loss computes the Huber-style smooth-L1 loss used for bounding
// box regression, averaged over the masked elements:
//
//	l(d) = 0.5 d²      if |d| < 1
//	       |d| - 0.5   otherwise
//
// mask selects which rows (samples) participate; pass nil to include all.
// It returns the scalar loss and the gradient with respect to pred.
func SmoothL1Loss(pred, target *tensor.Tensor, mask []bool) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: SmoothL1 shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	grad := tensor.New(pred.Shape()...)
	n := pred.Dim(0)
	cols := pred.Len() / max(n, 1)
	active := 0
	for i := 0; i < n; i++ {
		if mask == nil || mask[i] {
			active++
		}
	}
	if active == 0 {
		return 0, grad
	}
	inv := 1 / float64(active*cols)
	var loss float64
	for i := 0; i < n; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		for j := 0; j < cols; j++ {
			d := float64(pred.Data()[i*cols+j]) - float64(target.Data()[i*cols+j])
			if math.Abs(d) < 1 {
				loss += 0.5 * d * d
				grad.Data()[i*cols+j] = float32(d * inv)
			} else {
				loss += math.Abs(d) - 0.5
				if d > 0 {
					grad.Data()[i*cols+j] = float32(inv)
				} else {
					grad.Data()[i*cols+j] = float32(-inv)
				}
			}
		}
	}
	return loss * inv, grad
}

// DetectionLoss combines objectness BCE and box smooth-L1 for a detection
// head that emits [logit, cx, cy, w, h] per sample (N×5). Box loss is only
// applied to positive samples. BoxWeight balances the two terms.
type DetectionLoss struct {
	BoxWeight float64
}

// DetectionTarget is the supervision for one sample.
type DetectionTarget struct {
	HasObject bool
	// Box in normalized [0,1] image coordinates: center x/y, width, height.
	CX, CY, W, H float32
}

// Compute evaluates the combined loss for head output N×5 and returns the
// scalar loss and dL/d(output).
func (dl *DetectionLoss) Compute(out *tensor.Tensor, targets []DetectionTarget) (float64, *tensor.Tensor) {
	if out.Rank() != 2 || out.Dim(1) != 5 {
		panic(fmt.Sprintf("nn: DetectionLoss expects N×5 output, got %v", out.Shape()))
	}
	n := out.Dim(0)
	if len(targets) != n {
		panic(fmt.Sprintf("nn: DetectionLoss %d targets for %d samples", len(targets), n))
	}
	logits := tensor.New(n)
	labels := tensor.New(n)
	boxes := tensor.New(n, 4)
	boxTargets := tensor.New(n, 4)
	mask := make([]bool, n)
	for i := 0; i < n; i++ {
		logits.Data()[i] = out.At(i, 0)
		if targets[i].HasObject {
			labels.Data()[i] = 1
			mask[i] = true
			boxTargets.Set(targets[i].CX, i, 0)
			boxTargets.Set(targets[i].CY, i, 1)
			boxTargets.Set(targets[i].W, i, 2)
			boxTargets.Set(targets[i].H, i, 3)
		}
		for j := 0; j < 4; j++ {
			boxes.Set(out.At(i, j+1), i, j)
		}
	}
	objLoss, objGrad := BCEWithLogitsLoss(logits, labels)
	boxLoss, boxGrad := SmoothL1Loss(boxes, boxTargets, mask)
	grad := tensor.New(n, 5)
	for i := 0; i < n; i++ {
		grad.Set(objGrad.Data()[i], i, 0)
		for j := 0; j < 4; j++ {
			grad.Set(float32(dl.BoxWeight)*boxGrad.At(i, j), i, j+1)
		}
	}
	return objLoss + dl.BoxWeight*boxLoss, grad
}

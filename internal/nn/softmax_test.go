package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	logits := tensor.New(5, 7)
	logits.RandNormal(rng, 0, 3)
	p := Softmax(logits)
	for i := 0; i < 5; i++ {
		var sum float64
		for j := 0; j < 7; j++ {
			v := float64(p.At(i, j))
			if v < 0 || v > 1 {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestLogSoftmaxStableForHugeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 1001, 999}, 1, 3)
	lp := LogSoftmax(logits)
	for _, v := range lp.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("unstable log-softmax: %v", lp.Data())
		}
	}
	// The largest logit must have the largest log-probability.
	if !(lp.At(0, 1) > lp.At(0, 0) && lp.At(0, 0) > lp.At(0, 2)) {
		t.Fatalf("ordering broken: %v", lp.Data())
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over K classes → loss = ln K.
	logits := tensor.New(2, 4)
	loss, _ := CrossEntropyLoss(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform CE = %v, want ln 4", loss)
	}
}

func TestCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	logits := tensor.New(3, 5)
	logits.RandNormal(rng, 0, 1)
	labels := []int{1, 4, 0}
	_, grad := CrossEntropyLoss(logits, labels)
	const eps = 1e-3
	for i := 0; i < logits.Len(); i++ {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := CrossEntropyLoss(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := CrossEntropyLoss(logits, labels)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data()[i])) > 2e-3 {
			t.Fatalf("CE grad[%d] = %v, numeric %v", i, grad.Data()[i], num)
		}
	}
}

func TestCrossEntropyBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropyLoss(tensor.New(1, 3), []int{5})
}

func TestArgmax(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 2, 1, 9, -1, 3}, 2, 3)
	got := Argmax(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("argmax = %v", got)
	}
}

func TestClassifierLearnsXORish(t *testing.T) {
	// A two-layer MLP with softmax CE must learn a simple nonlinear
	// 2-class problem (points inside vs outside a band).
	rng := rand.New(rand.NewSource(63))
	net := NewSequential(
		NewLinear(rng, 2, 16),
		NewReLU(),
		NewLinear(rng, 16, 2),
	)
	n := 256
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(float32(a), i, 0)
		x.Set(float32(b), i, 1)
		if a*b > 0 {
			labels[i] = 1
		}
	}
	for epoch := 0; epoch < 300; epoch++ {
		out := net.Forward(x)
		_, grad := CrossEntropyLoss(out, labels)
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		net.Backward(grad)
		for _, p := range net.Params() {
			p.Value.AddScaled(p.Grad, -0.5)
		}
	}
	pred := Argmax(net.Forward(x))
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Fatalf("XOR-ish accuracy = %v, want ≥ 0.9", acc)
	}
}

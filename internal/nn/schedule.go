package nn

import (
	"fmt"
	"strings"
	"time"

	"drainnet/internal/graph"
	"drainnet/internal/ios"
	"drainnet/internal/tensor"
)

// This file is the IOS → real-execution bridge: it binds the operator
// DAG (internal/graph) produced for the IOS scheduler to the concrete
// layers of a Sequential, so an IOS schedule — stages of concurrent
// groups — can run for real on the shared worker pool instead of only
// on the simulated GPU.
//
// Execution reuses the exact inference kernels of Sequential.Infer
// (packed conv/linear with fused ReLU epilogues, argmax-free pools), so
// scheduled output is bit-for-bit identical to Sequential.Infer: every
// output element is produced by the same kernel accumulating in the
// same order, regardless of which stage or group computed it.

// execKind selects the kernel family of one compiled operator.
type execKind uint8

const (
	execConv execKind = iota
	execPool
	execAdaptivePool
	execLinear
	execConcat
	execReLU
	execQuantConv
	execQuantLinear
)

// compiledOp binds one graph node to the concrete layer that executes
// it. Ops are immutable descriptors: all mutable state (input/output
// tensors, scratch) is owned by the executor running them, so one
// program can back several executors.
type compiledOp struct {
	node *graph.Node
	kind execKind

	conv  *Conv2D
	pool  *MaxPool2D
	adap  *AdaptiveMaxPool2D
	lin   *Linear
	act   *ReLU
	qconv *QuantConv2D
	qlin  *QuantLinear
	// relu marks a ReLU fused into the conv/linear epilogue (the graph
	// folds activations into their producing kernel; the Sequential keeps
	// them as separate modules).
	relu bool

	inputs []int // node IDs read by this op

	// concat layout: per-branch per-sample feature counts and the total.
	concatFeat  []int
	concatWidth int
}

// GraphProgram is a Sequential compiled against its operator DAG: one
// executable descriptor per graph node. It also implements the measured
// oracle's operator benchmark hooks (BindOp/RunOp), so the same binding
// that executes schedules also prices them.
type GraphProgram struct {
	seq    *Sequential
	g      *graph.Graph
	byNode []*compiledOp // indexed by node ID; nil for the input node

	// operator-measurement state (BindOp/RunOp).
	measOp      *compiledOp
	measInputs  *tensor.Arena // holds the bound synthetic inputs
	measScratch *tensor.Arena // reset every RunOp
	measOuts    []*tensor.Tensor
}

// CompileGraph binds seq's layers to the nodes of g, which must describe
// the same architecture at the same widths (use Config.BuildScaledGraph
// for width-scaled networks). The walk is structural: conv nodes consume
// a Conv2D (+ a following ReLU, fused), pool nodes a MaxPool2D, the SPP
// pyramid's adaptive-pool branches and concat consume the SPP layer, and
// matmul nodes consume a Linear (+ fused ReLU). A module the graph does
// not represent — or a shape mismatch — is an error, so callers can fall
// back to plain Sequential.Infer.
func CompileGraph(seq *Sequential, g *graph.Graph) (*GraphProgram, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("nn: compile: %w", err)
	}
	p := &GraphProgram{
		seq:         seq,
		g:           g,
		byNode:      make([]*compiledOp, len(g.Nodes)),
		measInputs:  tensor.NewArena(),
		measScratch: tensor.NewArena(),
		measOuts:    make([]*tensor.Tensor, len(g.Nodes)),
	}
	mods := seq.Modules()
	mi := 0
	next := func() Module {
		if mi >= len(mods) {
			return nil
		}
		m := mods[mi]
		mi++
		return m
	}
	peekReLU := func() bool {
		if mi < len(mods) {
			if _, ok := mods[mi].(*ReLU); ok {
				mi++
				return true
			}
		}
		return false
	}

	var spp *SPP     // SPP layer currently being consumed branch-by-branch
	sppBranch := 0   // next pyramid level to bind
	var sppIDs []int // node IDs of the bound branches, in order

	for _, n := range g.Nodes {
		op := &compiledOp{node: n}
		for _, in := range n.Inputs {
			op.inputs = append(op.inputs, in.ID)
		}
		switch n.Kind {
		case graph.OpInput:
			continue
		case graph.OpConv:
			m := next()
			qconv, _ := m.(*QuantConv2D)
			conv, ok := Unwrap(m).(*Conv2D)
			if !ok {
				return nil, fmt.Errorf("nn: compile: node %q wants a Conv2D", n.Name)
			}
			if conv.InC != n.InShape[0] || conv.OutC != n.OutShape[0] {
				return nil, fmt.Errorf("nn: compile: node %q channels %d→%d, layer %d→%d",
					n.Name, n.InShape[0], n.OutShape[0], conv.InC, conv.OutC)
			}
			if oh, ow := conv.Geom.OutSize(n.InShape[1], n.InShape[2]); oh != n.OutShape[1] || ow != n.OutShape[2] {
				return nil, fmt.Errorf("nn: compile: node %q geometry mismatch", n.Name)
			}
			if qconv != nil {
				op.kind, op.qconv, op.relu = execQuantConv, qconv, peekReLU()
			} else {
				op.kind, op.conv, op.relu = execConv, conv, peekReLU()
			}
		case graph.OpPool:
			pool, ok := next().(*MaxPool2D)
			if !ok {
				return nil, fmt.Errorf("nn: compile: node %q wants a MaxPool2D", n.Name)
			}
			if oh, ow := pool.Geom.OutSize(n.InShape[1], n.InShape[2]); oh != n.OutShape[1] || ow != n.OutShape[2] {
				return nil, fmt.Errorf("nn: compile: node %q geometry mismatch", n.Name)
			}
			op.kind, op.pool = execPool, pool
		case graph.OpAdaptivePool:
			if spp == nil {
				s, ok := next().(*SPP)
				if !ok {
					return nil, fmt.Errorf("nn: compile: node %q wants an SPP layer", n.Name)
				}
				spp, sppBranch, sppIDs = s, 0, sppIDs[:0]
			}
			if sppBranch >= len(spp.pools) || spp.Levels[sppBranch] != n.OutShape[1] {
				return nil, fmt.Errorf("nn: compile: node %q does not match SPP levels %v", n.Name, spp.Levels)
			}
			op.kind, op.adap = execAdaptivePool, spp.pools[sppBranch]
			sppBranch++
			sppIDs = append(sppIDs, n.ID)
		case graph.OpConcat:
			if spp == nil || sppBranch != len(spp.pools) {
				return nil, fmt.Errorf("nn: compile: node %q concatenates outside a complete SPP pyramid", n.Name)
			}
			if len(op.inputs) != len(sppIDs) {
				return nil, fmt.Errorf("nn: compile: node %q concatenates %d branches, SPP has %d", n.Name, len(op.inputs), len(sppIDs))
			}
			for i, id := range op.inputs {
				if id != sppIDs[i] {
					return nil, fmt.Errorf("nn: compile: node %q branch order differs from the SPP pyramid", n.Name)
				}
			}
			op.kind = execConcat
			for _, in := range n.Inputs {
				f := tensor.Volume(in.OutShape)
				op.concatFeat = append(op.concatFeat, f)
				op.concatWidth += f
			}
			spp = nil
		case graph.OpMatMul:
			m := next()
			qlin, _ := m.(*QuantLinear)
			lin, ok := Unwrap(m).(*Linear)
			if !ok {
				return nil, fmt.Errorf("nn: compile: node %q wants a Linear", n.Name)
			}
			if lin.In != tensor.Volume(n.Inputs[0].OutShape) || lin.Out != n.OutShape[0] {
				return nil, fmt.Errorf("nn: compile: node %q features %d→%d, layer %d→%d",
					n.Name, tensor.Volume(n.Inputs[0].OutShape), n.OutShape[0], lin.In, lin.Out)
			}
			if qlin != nil {
				op.kind, op.qlin, op.relu = execQuantLinear, qlin, peekReLU()
			} else {
				op.kind, op.lin, op.relu = execLinear, lin, peekReLU()
			}
		case graph.OpElementwise:
			act, ok := next().(*ReLU)
			if !ok {
				return nil, fmt.Errorf("nn: compile: node %q wants a ReLU", n.Name)
			}
			op.kind, op.act = execReLU, act
		default:
			return nil, fmt.Errorf("nn: compile: node %q has unsupported kind %v", n.Name, n.Kind)
		}
		p.byNode[n.ID] = op
	}
	if mi != len(mods) {
		return nil, fmt.Errorf("nn: compile: %d trailing modules the graph does not represent", len(mods)-mi)
	}
	return p, nil
}

// Graph returns the operator DAG the program was compiled against.
func (p *GraphProgram) Graph() *graph.Graph { return p.g }

// runOp executes one compiled operator: inputs are read from outs by
// node ID, the output is drawn from a and stored back into outs. All
// kernels are the Sequential.Infer ones, so results are bit-identical
// to the unscheduled fast path.
func (p *GraphProgram) runOp(op *compiledOp, outs []*tensor.Tensor, a *tensor.Arena) {
	switch op.kind {
	case execConv:
		outs[op.node.ID] = op.conv.inferFused(outs[op.inputs[0]], a, op.relu)
	case execPool:
		outs[op.node.ID] = op.pool.Infer(outs[op.inputs[0]], a)
	case execAdaptivePool:
		outs[op.node.ID] = op.adap.Infer(outs[op.inputs[0]], a)
	case execLinear:
		in := outs[op.inputs[0]]
		if in.Rank() != 2 {
			in = a.View(in, in.Dim(0), -1)
		}
		outs[op.node.ID] = op.lin.inferFused(in, a, op.relu)
	case execConcat:
		n := outs[op.inputs[0]].Dim(0)
		out := a.Get(n, op.concatWidth)
		od := out.Data()
		col := 0
		for bi, id := range op.inputs {
			feat := op.concatFeat[bi]
			bd := outs[id].Data()
			for i := 0; i < n; i++ {
				copy(od[i*op.concatWidth+col:i*op.concatWidth+col+feat], bd[i*feat:(i+1)*feat])
			}
			col += feat
		}
		outs[op.node.ID] = out
	case execReLU:
		outs[op.node.ID] = op.act.Infer(outs[op.inputs[0]], a)
	case execQuantConv:
		outs[op.node.ID] = op.qconv.inferFused(outs[op.inputs[0]], a, op.relu)
	case execQuantLinear:
		in := outs[op.inputs[0]]
		if in.Rank() != 2 {
			in = a.View(in, in.Dim(0), -1)
		}
		outs[op.node.ID] = op.qlin.inferFused(in, a, op.relu)
	}
}

// OpTag implements the measured oracle's optional precision/kernel
// tagging: nodes bound to int8 kernels are priced separately from fp32
// ones, and fp32 convs running a tuned kernel mix are priced separately
// from the default im2col path, so a warm cost cache stays valid across
// quantization and kernel retuning. The tag for a tuned conv is
// "kern=<batch1>:<batchN>" (e.g. "kern=direct:winograd").
func (p *GraphProgram) OpTag(n *graph.Node) string {
	if n.ID < 0 || n.ID >= len(p.byNode) || p.byNode[n.ID] == nil {
		return ""
	}
	op := p.byNode[n.ID]
	switch op.kind {
	case execQuantConv, execQuantLinear:
		return "int8"
	case execConv:
		if b1, bn := op.conv.Kernels(); b1 != KernelIm2Col || bn != KernelIm2Col {
			return "kern=" + b1.String() + ":" + bn.String()
		}
	}
	return ""
}

// BindOp prepares synthetic inputs for measuring node n at the given
// batch size; RunOp then executes the node's kernels once per call
// against them. Together they implement ios.OpRunner. Inputs are filled
// with deterministic values in (-1, 1) so fused-ReLU and max-pool
// kernels see realistic sign mixes.
func (p *GraphProgram) BindOp(n *graph.Node, batch int) error {
	if n.ID < 0 || n.ID >= len(p.byNode) || p.byNode[n.ID] == nil {
		return fmt.Errorf("nn: program has no operator for node %q", n.Name)
	}
	if batch < 1 {
		return fmt.Errorf("nn: BindOp batch must be ≥ 1")
	}
	p.measInputs.Reset()
	op := p.byNode[n.ID]
	seed := uint32(2463534242)
	for _, in := range n.Inputs {
		shape := append([]int{batch}, in.OutShape...)
		t := p.measInputs.Get(shape...)
		d := t.Data()
		for i := range d {
			// xorshift32 → (-1, 1)
			seed ^= seed << 13
			seed ^= seed >> 17
			seed ^= seed << 5
			d[i] = float32(int32(seed))/float32(1<<31)*0.999 + 0.0005
		}
		p.measOuts[in.ID] = t
	}
	p.measOp = op
	return nil
}

// RunOp implements ios.OpRunner: one execution of the bound operator.
func (p *GraphProgram) RunOp() {
	p.measScratch.Reset()
	p.runOp(p.measOp, p.measOuts, p.measScratch)
}

// StageHook observes one executed group of a scheduled inference: the
// stage index, the group's index and the stage's group count, the
// compile-time group label (operator names joined with "→"), and the
// group's wall-clock window. Groups of one stage run concurrently, so
// the hook MUST be safe to call from multiple goroutines.
type StageHook func(stage, group, groups int, label string, start time.Time, dur time.Duration)

// execStage is one compiled schedule stage.
type execStage struct {
	groups [][]*compiledOp
	labels []string
}

// ScheduleExecutor runs a Sequential under an IOS schedule: stages in
// order, each stage's groups concurrently on the shared worker pool
// (tensor.ParallelRange). Multi-group stages trade intra-operator
// parallelism for inter-operator parallelism — each group runs inline
// on its worker with a group-owned arena — while single-group stages
// fall back to plain sequential execution with full intra-operator
// parallelism, exactly like Sequential.Infer.
//
// An executor owns per-call state (outputs, group arenas) and must not
// be used from multiple goroutines concurrently; build one per serving
// replica. The returned tensor is valid until the next Infer call or
// caller-arena Reset.
type ScheduleExecutor struct {
	prog   *GraphProgram
	sched  *ios.Schedule
	stages []execStage

	outs   []*tensor.Tensor
	arenas []*tensor.Arena // one per group lane, reset at Infer entry
	task   stageRunTask
}

// NewScheduleExecutor compiles sched against prog. The schedule must be
// valid for the program's graph (every non-input node exactly once,
// dependencies respected).
func NewScheduleExecutor(prog *GraphProgram, sched *ios.Schedule) (*ScheduleExecutor, error) {
	if err := sched.Validate(prog.g); err != nil {
		return nil, fmt.Errorf("nn: executor: %w", err)
	}
	e := &ScheduleExecutor{
		prog:  prog,
		sched: sched,
		outs:  make([]*tensor.Tensor, len(prog.g.Nodes)),
	}
	maxGroups := 0
	for _, st := range sched.Stages {
		es := execStage{}
		for _, gr := range st.Groups {
			ops := make([]*compiledOp, len(gr))
			names := make([]string, len(gr))
			for i, n := range gr {
				ops[i] = prog.byNode[n.ID]
				names[i] = n.Name
			}
			es.groups = append(es.groups, ops)
			es.labels = append(es.labels, strings.Join(names, "→"))
		}
		e.stages = append(e.stages, es)
		if len(es.groups) > maxGroups {
			maxGroups = len(es.groups)
		}
	}
	e.arenas = make([]*tensor.Arena, maxGroups)
	for i := range e.arenas {
		e.arenas[i] = tensor.NewArena()
	}
	return e, nil
}

// Schedule returns the schedule the executor runs.
func (e *ScheduleExecutor) Schedule() *ios.Schedule { return e.sched }

// Infer runs one scheduled inference over x. Temporaries of single-group
// stages are drawn from the caller's arena a (like Sequential.Infer);
// concurrent groups draw from executor-owned arenas that are recycled on
// the next call. Output is bit-for-bit identical to Sequential.Infer.
// In steady state the call performs no heap allocation.
func (e *ScheduleExecutor) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return e.inferHooked(x, a, nil)
}

// InferWithHook is Infer with per-group timing reported through hook
// (nil degrades to Infer). The telemetry span pipeline uses this on
// trace-sampled requests to lay out stage/group concurrency.
func (e *ScheduleExecutor) InferWithHook(x *tensor.Tensor, a *tensor.Arena, hook StageHook) *tensor.Tensor {
	return e.inferHooked(x, a, hook)
}

func (e *ScheduleExecutor) inferHooked(x *tensor.Tensor, a *tensor.Arena, hook StageHook) *tensor.Tensor {
	e.outs[e.prog.g.In.ID] = x
	for _, ga := range e.arenas {
		ga.Reset()
	}
	for si := range e.stages {
		st := &e.stages[si]
		if len(st.groups) == 1 {
			// Unbatchable stage: a single chain keeps the caller's arena and
			// full intra-operator parallelism (the pool is free).
			if hook != nil {
				start := time.Now()
				for _, op := range st.groups[0] {
					e.prog.runOp(op, e.outs, a)
				}
				hook(si, 0, 1, st.labels[0], start, time.Since(start))
				continue
			}
			for _, op := range st.groups[0] {
				e.prog.runOp(op, e.outs, a)
			}
			continue
		}
		t := &e.task
		t.exec, t.groups, t.labels = e, st.groups, st.labels
		t.stage, t.hook = si, hook
		tensor.ParallelRange(len(st.groups), 1, t)
	}
	return e.outs[e.prog.g.Out.ID]
}

// stageRunTask distributes one stage's groups over the worker pool.
// Group gi runs entirely on whichever participant claims index gi, with
// the gi-th executor arena; operator kernels inside the group issue
// nested ParallelRange calls that degrade to inline execution, so a
// group is one sequential chain per worker, as IOS models it.
type stageRunTask struct {
	exec   *ScheduleExecutor
	groups [][]*compiledOp
	labels []string
	stage  int
	hook   StageHook
}

// RunRange implements tensor.Ranger over group indices.
func (t *stageRunTask) RunRange(lo, hi int) {
	for gi := lo; gi < hi; gi++ {
		if t.hook != nil {
			start := time.Now()
			for _, op := range t.groups[gi] {
				t.exec.prog.runOp(op, t.exec.outs, t.exec.arenas[gi])
			}
			t.hook(t.stage, gi, len(t.groups), t.labels[gi], start, time.Since(start))
			continue
		}
		for _, op := range t.groups[gi] {
			t.exec.prog.runOp(op, t.exec.outs, t.exec.arenas[gi])
		}
	}
}

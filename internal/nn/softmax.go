package nn

import (
	"fmt"
	"math"

	"drainnet/internal/tensor"
)

// LogSoftmax computes row-wise log-softmax of an N×K tensor with the
// max-subtraction trick for stability.
func LogSoftmax(logits *tensor.Tensor) *tensor.Tensor {
	checkRank(logits, 2, "LogSoftmax")
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data()[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logZ := float64(maxV) + math.Log(sum)
		for j, v := range row {
			out.Data()[i*k+j] = float32(float64(v) - logZ)
		}
	}
	return out
}

// Softmax computes row-wise softmax probabilities of an N×K tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := LogSoftmax(logits)
	out.Apply(func(v float32) float32 { return float32(math.Exp(float64(v))) })
	return out
}

// CrossEntropyLoss computes the mean negative log-likelihood of the
// integer class labels under row-wise softmax of logits (N×K), returning
// the scalar loss and dL/d(logits). This is the loss for the
// classification formulation of drainage-crossing detection (Wu et al.
// 2023, the paper's predecessor task).
func CrossEntropyLoss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	checkRank(logits, 2, "CrossEntropyLoss")
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for %d rows", len(labels), n))
	}
	logp := LogSoftmax(logits)
	grad := tensor.New(n, k)
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		loss -= float64(logp.At(i, y))
		for j := 0; j < k; j++ {
			p := float32(math.Exp(float64(logp.At(i, j))))
			if j == y {
				p -= 1
			}
			grad.Set(p*float32(inv), i, j)
		}
	}
	return loss * inv, grad
}

// Argmax returns the per-row argmax class of an N×K tensor.
func Argmax(logits *tensor.Tensor) []int {
	checkRank(logits, 2, "Argmax")
	n, k := logits.Dim(0), logits.Dim(1)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := logits.Data()[i*k : (i+1)*k]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

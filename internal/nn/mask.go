package nn

import (
	"sync/atomic"

	"drainnet/internal/tensor"
)

// Spatial masking (the LASNet-style dynamic-compute kernel): the input
// activation energy of a conv layer gates which output-row bands pay for
// im2col lowering and the packed GEMM. Sweep traffic is dominated by
// background tiles whose feature maps are spatially flat; a flat band's
// conv output is approximated by the layer's response to the per-channel
// mean input (the "flat response"), which costs O(OutC·InC) instead of
// O(OutC·InC·KH·KW·band·OW). The energy metric is the mean absolute
// deviation from the per-channel mean, so a uniform (but non-zero)
// background still masks. Padding zeros truncate the receptive field,
// so the pixels of a masked band that touch padding — the horizontal
// edge columns and the vertically padded rows — get a partial flat
// response instead: the same constant-input math restricted to the
// in-bounds kernel taps, looked up from a per-(out,in)-channel 2D
// prefix-sum table over the kernel. On a truly flat input every fill
// is exact; on near-flat inputs the edge pixels carry the same
// approximation error class as the interior.

// Default mask spec used when SetMask leaves a field zero.
const (
	maskDefaultBand   = 4
	maskDefaultThresh = 0.02
)

// MaskStats accumulates how many output-row bands the masked kernel
// skipped, across every replica sharing the layer. Safe for concurrent
// use.
type MaskStats struct {
	masked atomic.Int64
	total  atomic.Int64
}

// Add records one inference pass's band counts.
func (s *MaskStats) Add(masked, total int64) {
	if s == nil {
		return
	}
	s.masked.Add(masked)
	s.total.Add(total)
}

// Counts returns the cumulative (masked, total) band counts.
func (s *MaskStats) Counts() (masked, total int64) {
	return s.masked.Load(), s.total.Load()
}

// Rate returns the cumulative fraction of bands skipped (0 when no
// bands have been observed).
func (s *MaskStats) Rate() float64 {
	m, t := s.Counts()
	if t == 0 {
		return 0
	}
	return float64(m) / float64(t)
}

// Reset clears the counters (calibration reuses one stats object).
func (s *MaskStats) Reset() {
	s.masked.Store(0)
	s.total.Store(0)
}

// ConvMask configures the masked kernel's spatial gating.
type ConvMask struct {
	// BandRows is the mask granularity in output rows (default 4).
	BandRows int
	// Threshold is the mean-abs-deviation-per-cell energy below which a
	// band is skipped (default 0.02; activations are O(0.1–1) here).
	Threshold float32
	// Stats receives cumulative skip counters (optional).
	Stats *MaskStats
}

// SetMask configures the spatial mask spec, making the layer eligible
// for KernelMasked. It does not change the selected kernels; pair with
// SetKernels(KernelMasked, KernelMasked) to serve masked.
func (c *Conv2D) SetMask(m ConvMask) {
	if m.BandRows <= 0 {
		m.BandRows = maskDefaultBand
	}
	if m.Threshold <= 0 {
		m.Threshold = maskDefaultThresh
	}
	c.maskBand = m.BandRows
	c.maskThresh = m.Threshold
	c.maskStats = m.Stats
}

// Mask reports the configured mask spec (zero value when unset).
func (c *Conv2D) Mask() ConvMask {
	return ConvMask{BandRows: c.maskBand, Threshold: c.maskThresh, Stats: c.maskStats}
}

// maskEnergy computes, for one c×h×w sample, the per-channel means mu
// (length c) and per-input-row absolute-deviation sums energy (length
// h): energy[iy] = Σ_ch Σ_ix |x[ch,iy,ix] − mu[ch]|.
func maskEnergy(x []float32, c, h, w int, mu, energy []float32) {
	plane := h * w
	for ch := 0; ch < c; ch++ {
		var s float64
		for _, v := range x[ch*plane : (ch+1)*plane] {
			s += float64(v)
		}
		mu[ch] = float32(s / float64(plane))
	}
	for iy := range energy[:h] {
		energy[iy] = 0
	}
	for ch := 0; ch < c; ch++ {
		m := mu[ch]
		base := ch * plane
		for iy := 0; iy < h; iy++ {
			var s float32
			for _, v := range x[base+iy*w : base+(iy+1)*w] {
				d := v - m
				if d < 0 {
					d = -d
				}
				s += d
			}
			energy[iy] += s
		}
	}
}

// flatResponse computes the conv's output on a spatially constant input
// holding the per-channel means: flat[o] = bias[o] + Σ_c wsum[o,c]·mu[c].
func flatResponse(flat, mu, wsum, bias []float32, outC, inC int) {
	for o := 0; o < outC; o++ {
		s := bias[o]
		row := wsum[o*inC : (o+1)*inC]
		for ci, wv := range row {
			s += wv * mu[ci]
		}
		flat[o] = s
	}
}

// maskEdgeCols reports which output columns see horizontal zero-padding:
// [0, edgeL) on the left and [edgeR0, ow) on the right. The flat-fill
// approximation does not hold there, so masked bands compute those
// columns exactly with the direct per-pixel kernel.
func maskEdgeCols(g tensor.ConvGeom, w, ow int) (edgeL, edgeR0 int) {
	for edgeL < ow && edgeL*g.StrideW-g.PadW < 0 {
		edgeL++
	}
	edgeR0 = ow
	for edgeR0 > 0 && (edgeR0-1)*g.StrideW-g.PadW+g.KW > w {
		edgeR0--
	}
	return edgeL, edgeR0
}

// maskClipH returns the in-bounds kernel-row range [khLo, khHi) for
// output row oy: padding clips the taps outside the input.
func maskClipH(g tensor.ConvGeom, h, oy int) (khLo, khHi int) {
	khLo, khHi = 0, g.KH
	if s := oy*g.StrideH - g.PadH; s < 0 {
		khLo = -s
	}
	if s := oy*g.StrideH - g.PadH + g.KH; s > h {
		khHi = g.KH - (s - h)
	}
	return khLo, khHi
}

// maskClipW is maskClipH for output columns.
func maskClipW(g tensor.ConvGeom, w, ox int) (kwLo, kwHi int) {
	kwLo, kwHi = 0, g.KW
	if s := ox*g.StrideW - g.PadW; s < 0 {
		kwLo = -s
	}
	if s := ox*g.StrideW - g.PadW + g.KW; s > w {
		kwHi = g.KW - (s - w)
	}
	return kwLo, kwHi
}

// flatPartial computes the conv's constant-input response restricted to
// the kernel-tap rectangle [khLo,khHi)×[kwLo,kwHi) — the flat response
// a pixel sees when padding clips its receptive field by that much.
// Each (out,in) pair is one O(1) rectangle lookup in the wpre
// prefix-sum table ((KH+1)×(KW+1) row-major blocks per pair).
func flatPartial(dst, mu, wpre, bias []float32, outC, inC int, g tensor.ConvGeom,
	khLo, khHi, kwLo, kwHi int, relu bool) {
	kw1 := g.KW + 1
	blk := (g.KH + 1) * kw1
	for o := 0; o < outC; o++ {
		s := bias[o]
		base := o * inC * blk
		for ci := 0; ci < inC; ci++ {
			p := wpre[base+ci*blk:]
			r := p[khHi*kw1+kwHi] - p[khLo*kw1+kwHi] - p[khHi*kw1+kwLo] + p[khLo*kw1+kwLo]
			s += mu[ci] * r
		}
		if relu && !(s > 0) {
			s = 0
		}
		dst[o] = s
	}
}

// maskBandRange maps output-row band [oy0, oy1) to its (clamped)
// input-row receptive field.
func maskBandRange(oy0, oy1 int, g tensor.ConvGeom, h int) (iy0, iy1 int) {
	iy0 = oy0*g.StrideH - g.PadH
	iy1 = (oy1-1)*g.StrideH - g.PadH + g.KH
	if iy0 < 0 {
		iy0 = 0
	}
	if iy1 > h {
		iy1 = h
	}
	return iy0, iy1
}

// maskedBandEdges overwrites the padding-affected pixels of a
// flat-filled band with their partial flat responses: the horizontal
// edge columns and the vertically padded rows see a clipped receptive
// field, so the full-kernel flat value is wrong there. Each distinct
// clip shape costs one O(outC·inC) flatPartial; the handful of corner
// pixels (padded row × edge column) pay one each. tmp is outC scratch
// floats.
func maskedBandEdges(out, mu, tmp, wpre, bias []float32, inC, outC, h, w, ohw, ow int,
	g tensor.ConvGeom, oy0, oy1, edgeL, edgeR0 int, relu bool) {
	if edgeR0 < edgeL {
		edgeR0 = edgeL
	}
	edges := [2][2]int{{0, edgeL}, {edgeR0, ow}}
	// Edge columns down the band's fully in-bounds rows: one partial
	// response per column.
	for _, er := range edges {
		for ox := er[0]; ox < er[1]; ox++ {
			kwLo, kwHi := maskClipW(g, w, ox)
			flatPartial(tmp, mu, wpre, bias, outC, inC, g, 0, g.KH, kwLo, kwHi, relu)
			for oy := oy0; oy < oy1; oy++ {
				if khLo, khHi := maskClipH(g, h, oy); khLo != 0 || khHi != g.KH {
					continue
				}
				for o := 0; o < outC; o++ {
					out[o*ohw+oy*ow+ox] = tmp[o]
				}
			}
		}
	}
	// Vertically padded rows: interior columns share one partial
	// response; each edge-column corner pixel gets its doubly clipped
	// own.
	for oy := oy0; oy < oy1; oy++ {
		khLo, khHi := maskClipH(g, h, oy)
		if khLo == 0 && khHi == g.KH {
			continue
		}
		flatPartial(tmp, mu, wpre, bias, outC, inC, g, khLo, khHi, 0, g.KW, relu)
		for o := 0; o < outC; o++ {
			row := out[o*ohw+oy*ow:]
			v := tmp[o]
			for ox := edgeL; ox < edgeR0; ox++ {
				row[ox] = v
			}
		}
		for _, er := range edges {
			for ox := er[0]; ox < er[1]; ox++ {
				kwLo, kwHi := maskClipW(g, w, ox)
				flatPartial(tmp, mu, wpre, bias, outC, inC, g, khLo, khHi, kwLo, kwHi, relu)
				for o := 0; o < outC; o++ {
					out[o*ohw+oy*ow+ox] = tmp[o]
				}
			}
		}
	}
}

// inferMasked is the masked inference forward. Batches parallelize over
// samples; batch 1 runs the energy pass serially and parallelizes over
// bands. Arena scratch per sample: the cols stripe plus mu/energy/flat.
func (c *Conv2D) inferMasked(out, x *tensor.Tensor, a *tensor.Arena, relu bool, n, ch, h, w, oh, ow int) {
	c.ensureKernel(KernelMasked)
	band := c.maskBand
	if band <= 0 {
		band = maskDefaultBand
	}
	thresh := c.maskThresh
	if thresh <= 0 {
		thresh = maskDefaultThresh
	}
	kdim := c.InC * c.Geom.KH * c.Geom.KW
	ohw := oh * ow
	bias := c.Bias.Value.Data()

	if n > 1 {
		cols := a.Get(n, kdim, ohw)
		scratch := a.Get(n, ch+h+2*c.OutC)
		t := &c.maskedBatch
		t.out, t.x, t.cols, t.scratch = out.Data(), x.Data(), cols.Data(), scratch.Data()
		t.sampleStride, t.colStride, t.outStride, t.scratchStride = ch*h*w, kdim*ohw, c.OutC*ohw, ch+h+2*c.OutC
		t.c, t.h, t.w, t.oh, t.ow, t.outC = ch, h, w, oh, ow, c.OutC
		t.geom, t.packed = c.Geom, c.packed
		t.bias, t.wsum, t.wpre, t.relu = bias, c.wsum, c.wpre, relu
		t.band, t.thresh = band, thresh
		t.stats = c.maskStats
		tensor.ParallelRange(n, 1, t)
		return
	}

	// Batch 1: one serial O(c·h·w) energy pass, then bands across the pool.
	nb := (oh + band - 1) / band
	cols := a.Get(kdim, ohw)
	scratch := a.Get(ch + h + c.OutC)
	tmp := a.Get(nb, c.OutC)
	mu := scratch.Data()[:ch]
	energy := scratch.Data()[ch : ch+h]
	flat := scratch.Data()[ch+h : ch+h+c.OutC]
	maskEnergy(x.Data(), ch, h, w, mu, energy)
	flatResponse(flat, mu, c.wsum, bias, c.OutC, c.InC)
	t := &c.maskedB1
	t.out, t.x, t.cols = out.Data(), x.Data(), cols.Data()
	t.mu, t.energy, t.flat, t.tmp, t.wpre = mu, energy, flat, tmp.Data(), c.wpre
	t.c, t.h, t.w, t.oh, t.ow, t.outC = ch, h, w, oh, ow, c.OutC
	t.geom, t.packed = c.Geom, c.packed
	t.bias, t.relu = bias, relu
	t.band, t.thresh = band, thresh
	t.stats = c.maskStats
	tensor.ParallelRange(nb, 1, t)
}

// maskedSample runs the full masked conv for one sample whose energy
// pass is done, returning how many bands were skipped.
func maskedSample(out, x, cols, mu, energy, flat, tmp, wpre []float32, c, h, w, oh, ow, outC, band int,
	thresh float32, g tensor.ConvGeom, packed *tensor.Packed, bias []float32, relu bool) (masked int64) {
	ohw := oh * ow
	panels := packed.Panels()
	cellNorm := float32(c * w)
	edgeL, edgeR0 := maskEdgeCols(g, w, ow)
	for oy0 := 0; oy0 < oh; oy0 += band {
		oy1 := oy0 + band
		if oy1 > oh {
			oy1 = oh
		}
		iy0, iy1 := maskBandRange(oy0, oy1, g, h)
		var e float32
		for _, v := range energy[iy0:iy1] {
			e += v
		}
		if e > thresh*cellNorm*float32(iy1-iy0) {
			tensor.Im2ColSliceRows(cols, x, c, h, w, g, oy0, oy1)
			packed.MulPanelsColsInto(out, cols, ohw, bias, relu, 0, panels, oy0*ow, oy1*ow)
			continue
		}
		tensor.BiasFillCols(out, outC, ohw, flat, relu, oy0*ow, oy1*ow)
		maskedBandEdges(out, mu, tmp, wpre, bias, c, outC, h, w, ohw, ow, g, oy0, oy1, edgeL, edgeR0, relu)
		masked++
	}
	return masked
}

// maskedBatchTask runs whole samples [lo,hi): energy pass, flat
// response, then band-by-band lowering/GEMM or flat fill.
type maskedBatchTask struct {
	out, x, cols, scratch                             []float32
	sampleStride, colStride, outStride, scratchStride int
	c, h, w, oh, ow, outC                             int
	geom                                              tensor.ConvGeom
	packed                                            *tensor.Packed
	bias, wsum, wpre                                  []float32
	relu                                              bool
	band                                              int
	thresh                                            float32
	stats                                             *MaskStats
}

func (t *maskedBatchTask) RunRange(lo, hi int) {
	nb := int64((t.oh + t.band - 1) / t.band)
	var masked int64
	for i := lo; i < hi; i++ {
		scr := t.scratch[i*t.scratchStride : (i+1)*t.scratchStride]
		mu := scr[:t.c]
		energy := scr[t.c : t.c+t.h]
		flat := scr[t.c+t.h : t.c+t.h+t.outC]
		tmp := scr[t.c+t.h+t.outC:]
		x := t.x[i*t.sampleStride : (i+1)*t.sampleStride]
		maskEnergy(x, t.c, t.h, t.w, mu, energy)
		flatResponse(flat, mu, t.wsum, t.bias, t.outC, t.c)
		masked += maskedSample(t.out[i*t.outStride:(i+1)*t.outStride], x,
			t.cols[i*t.colStride:(i+1)*t.colStride], mu, energy, flat, tmp, t.wpre,
			t.c, t.h, t.w, t.oh, t.ow, t.outC, t.band, t.thresh,
			t.geom, t.packed, t.bias, t.relu)
	}
	t.stats.Add(masked, nb*int64(hi-lo))
}

// maskedBandTask runs output-row bands [lo,hi) of one sample whose
// energy pass already ran. Bands write disjoint column ranges of the
// shared cols and out buffers, so they fan out race-free.
type maskedBandTask struct {
	out, x, cols                []float32
	mu, energy, flat, tmp, wpre []float32
	c, h, w, oh, ow, outC       int
	geom                        tensor.ConvGeom
	packed                      *tensor.Packed
	bias                        []float32
	relu                        bool
	band                        int
	thresh                      float32
	stats                       *MaskStats
}

func (t *maskedBandTask) RunRange(lo, hi int) {
	ohw := t.oh * t.ow
	panels := t.packed.Panels()
	cellNorm := float32(t.c * t.w)
	edgeL, edgeR0 := maskEdgeCols(t.geom, t.w, t.ow)
	var masked int64
	for b := lo; b < hi; b++ {
		oy0 := b * t.band
		oy1 := oy0 + t.band
		if oy1 > t.oh {
			oy1 = t.oh
		}
		iy0, iy1 := maskBandRange(oy0, oy1, t.geom, t.h)
		var e float32
		for _, v := range t.energy[iy0:iy1] {
			e += v
		}
		if e > t.thresh*cellNorm*float32(iy1-iy0) {
			tensor.Im2ColSliceRows(t.cols, t.x, t.c, t.h, t.w, t.geom, oy0, oy1)
			t.packed.MulPanelsColsInto(t.out, t.cols, ohw, t.bias, t.relu, 0, panels, oy0*t.ow, oy1*t.ow)
			continue
		}
		tensor.BiasFillCols(t.out, t.outC, ohw, t.flat, t.relu, oy0*t.ow, oy1*t.ow)
		maskedBandEdges(t.out, t.mu, t.tmp[b*t.outC:(b+1)*t.outC], t.wpre, t.bias,
			t.c, t.outC, t.h, t.w, ohw, t.ow, t.geom, oy0, oy1, edgeL, edgeR0, t.relu)
		masked++
	}
	t.stats.Add(masked, int64(hi-lo))
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

// numericGrad estimates dLoss/dx[i] by central differences for a loss that
// is the dot product of the module output with a fixed random cotangent.
// That makes the analytic gradient exactly Backward(cotangent).
func numericGrad(t *testing.T, m Module, x *tensor.Tensor, cot *tensor.Tensor, eps float64) *tensor.Tensor {
	t.Helper()
	g := tensor.New(x.Shape()...)
	for i := 0; i < x.Len(); i++ {
		orig := x.Data()[i]
		x.Data()[i] = orig + float32(eps)
		plus := dotLoss(m.Forward(x), cot)
		x.Data()[i] = orig - float32(eps)
		minus := dotLoss(m.Forward(x), cot)
		x.Data()[i] = orig
		g.Data()[i] = float32((plus - minus) / (2 * eps))
	}
	return g
}

func dotLoss(out, cot *tensor.Tensor) float64 {
	var s float64
	for i, v := range out.Data() {
		s += float64(v) * float64(cot.Data()[i])
	}
	return s
}

// paramNumericGrad does the same for a parameter tensor.
func paramNumericGrad(t *testing.T, m Module, x *tensor.Tensor, p *Param, cot *tensor.Tensor, eps float64) *tensor.Tensor {
	t.Helper()
	g := tensor.New(p.Value.Shape()...)
	for i := 0; i < p.Value.Len(); i++ {
		orig := p.Value.Data()[i]
		p.Value.Data()[i] = orig + float32(eps)
		plus := dotLoss(m.Forward(x), cot)
		p.Value.Data()[i] = orig - float32(eps)
		minus := dotLoss(m.Forward(x), cot)
		p.Value.Data()[i] = orig
		g.Data()[i] = float32((plus - minus) / (2 * eps))
	}
	return g
}

func checkClose(t *testing.T, name string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", name, got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		a, b := float64(got.Data()[i]), float64(want.Data()[i])
		if math.Abs(a-b) > tol*(1+math.Abs(b)) {
			t.Fatalf("%s: grad[%d] = %v, numeric %v", name, i, a, b)
		}
	}
}

func gradCheckModule(t *testing.T, name string, m Module, x *tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := m.Forward(x)
	cot := tensor.New(out.Shape()...)
	cot.RandNormal(rng, 0, 1)

	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	// Re-run forward so layer caches match x exactly, then backward.
	m.Forward(x)
	gotIn := m.Backward(cot)

	const eps = 1e-2 // float32 forward → coarse finite differences
	wantIn := numericGrad(t, m, x, cot, eps)
	checkClose(t, name+"/input", gotIn, wantIn, 2e-2)

	for _, p := range m.Params() {
		wantP := paramNumericGrad(t, m, x, p, cot, eps)
		checkClose(t, name+"/"+p.Name, p.Grad, wantP, 2e-2)
	}
}

func TestGradCheckConv2DIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	conv := NewConv2D(rng, 2, 3, 3, 1)
	x := tensor.New(2, 2, 5, 5)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "conv-im2col", conv, x)
}

func TestGradCheckConv2DStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	conv := NewConv2D(rng, 1, 2, 5, 2)
	x := tensor.New(1, 1, 9, 9)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "conv-stride2", conv, x)
}

func TestGradCheckConv2DDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	conv := NewConv2D(rng, 2, 2, 3, 1)
	conv.Algo = ConvDirect
	x := tensor.New(1, 2, 5, 5)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "conv-direct", conv, x)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pool := NewMaxPool2D(2, 2)
	x := tensor.New(2, 3, 6, 6)
	// Spread values out so finite differences do not flip the argmax.
	for i := range x.Data() {
		x.Data()[i] = float32(i%97) * 0.5
	}
	_ = rng
	gradCheckModule(t, "maxpool", pool, x)
}

func TestGradCheckAdaptivePool(t *testing.T) {
	pool := NewAdaptiveMaxPool2D(3)
	x := tensor.New(1, 2, 7, 5)
	for i := range x.Data() {
		x.Data()[i] = float32((i*37)%101) * 0.3
	}
	gradCheckModule(t, "adaptivepool", pool, x)
}

func TestGradCheckSPP(t *testing.T) {
	spp := NewSPP(3, 2, 1)
	x := tensor.New(2, 2, 6, 6)
	for i := range x.Data() {
		x.Data()[i] = float32((i*53)%89) * 0.25
	}
	gradCheckModule(t, "spp", spp, x)
}

func TestGradCheckLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	lin := NewLinear(rng, 7, 4)
	x := tensor.New(3, 7)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "linear", lin, x)
}

func TestGradCheckReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	x := tensor.New(4, 9)
	x.RandNormal(rng, 0, 1)
	// Keep values away from the kink at 0.
	x.Apply(func(v float32) float32 {
		if v >= 0 && v < 0.1 {
			return v + 0.2
		}
		if v < 0 && v > -0.1 {
			return v - 0.2
		}
		return v
	})
	gradCheckModule(t, "relu", NewReLU(), x)
}

func TestGradCheckSigmoid(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	x := tensor.New(3, 5)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "sigmoid", NewSigmoid(), x)
}

func TestGradCheckSequentialCNN(t *testing.T) {
	// Composition check with smooth layers only: piecewise-linear layers
	// (ReLU, max pools) are gradient-checked individually above, but their
	// kinks make finite differences of a deep composition unreliable.
	rng := rand.New(rand.NewSource(39))
	net := NewSequential(
		NewConv2D(rng, 1, 2, 3, 1),
		NewSigmoid(),
		NewFlatten(),
		NewLinear(rng, 2*8*8, 3),
	)
	x := tensor.New(2, 1, 8, 8)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "sequential", net, x)
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

func TestConvOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 4, 64, 3, 1)
	got := conv.OutShape([]int{20, 4, 100, 100})
	want := []int{20, 64, 100, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutShape = %v, want %v", got, want)
		}
	}
}

func TestConvChannelMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 4, 8, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for channel mismatch")
		}
	}()
	conv.Forward(tensor.New(1, 3, 10, 10))
}

func TestConvDirectMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := NewConv2D(rng, 3, 5, 3, 1)
	b := &Conv2D{InC: 3, OutC: 5, Geom: a.Geom, Algo: ConvDirect,
		Weight: &Param{Name: "w", Value: a.Weight.Value.Clone(), Grad: tensor.New(a.Weight.Value.Shape()...)},
		Bias:   &Param{Name: "b", Value: a.Bias.Value.Clone(), Grad: tensor.New(a.Bias.Value.Shape()...)},
	}
	x := tensor.New(2, 3, 12, 12)
	x.RandNormal(rng, 0, 1)
	ya := a.Forward(x)
	yb := b.Forward(x)
	if !ya.AllClose(yb, 1e-4, 1e-4) {
		t.Fatal("direct and im2col conv disagree")
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	pool := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := pool.Forward(x)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	pool := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	pool.Forward(x)
	g := tensor.FromSlice([]float32{10}, 1, 1, 1, 1)
	gi := pool.Backward(g)
	// All gradient must land on the max element (value 4, index 3).
	want := []float32{0, 0, 0, 10}
	for i, w := range want {
		if gi.Data()[i] != w {
			t.Fatalf("gradIn[%d] = %v, want %v", i, gi.Data()[i], w)
		}
	}
}

func TestAdaptivePoolFixedOutput(t *testing.T) {
	pool := NewAdaptiveMaxPool2D(2)
	for _, hw := range [][2]int{{4, 4}, {7, 5}, {13, 25}, {2, 2}} {
		x := tensor.New(1, 3, hw[0], hw[1])
		y := pool.Forward(x)
		if y.Dim(2) != 2 || y.Dim(3) != 2 {
			t.Fatalf("adaptive pool output %v for input %v", y.Shape(), hw)
		}
	}
}

func TestAdaptivePoolBinsCoverInput(t *testing.T) {
	// Every input element must be reachable: pooling a one-hot input must
	// propagate the hot value to exactly one output cell.
	pool := NewAdaptiveMaxPool2D(3)
	for hot := 0; hot < 35; hot++ {
		x := tensor.New(1, 1, 5, 7)
		x.Fill(-1)
		x.Data()[hot] = 5
		y := pool.Forward(x)
		found := false
		for _, v := range y.Data() {
			if v == 5 {
				found = true
			}
		}
		if !found {
			t.Fatalf("input element %d not covered by any adaptive bin", hot)
		}
	}
}

func TestSPPFixedLengthAcrossSizes(t *testing.T) {
	spp := NewSPP(4, 2, 1)
	c := 8
	wantF := c * (16 + 4 + 1)
	for _, hw := range [][2]int{{12, 12}, {25, 25}, {7, 19}, {100, 100}} {
		x := tensor.New(2, c, hw[0], hw[1])
		y := spp.Forward(x)
		if y.Dim(0) != 2 || y.Dim(1) != wantF {
			t.Fatalf("SPP output %v for input %v, want [2 %d]", y.Shape(), hw, wantF)
		}
	}
}

func TestSPPOutFeatures(t *testing.T) {
	spp := NewSPP(5, 2, 1)
	if got := spp.OutFeatures(256); got != 256*(25+4+1) {
		t.Fatalf("OutFeatures = %d", got)
	}
}

func TestSPPInvalidLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for level 0")
		}
	}()
	NewSPP(4, 0)
}

func TestLinearKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(rng, 2, 2)
	lin.Weight.Value.CopyFrom(tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2))
	lin.Bias.Value.CopyFrom(tensor.FromSlice([]float32{10, 20}, 2))
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := lin.Forward(x)
	// y = [1+2+10, 3+4+20]
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("linear output %v", y.Data())
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := tensor.New(2, 60)
	gi := f.Backward(g)
	if gi.Rank() != 4 || gi.Dim(3) != 5 {
		t.Fatalf("flatten backward shape %v", gi.Shape())
	}
}

func TestReLUClampsNegatives(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	y := r.Forward(x)
	if y.Data()[0] != 0 || y.Data()[1] != 0 || y.Data()[2] != 2 {
		t.Fatalf("relu output %v", y.Data())
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(5)), 0.5)
	d.Training = false
	x := tensor.FromSlice([]float32{1, 2, 3}, 3)
	y := d.Forward(x)
	if !y.Equal(x) {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainingPreservesExpectation(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(6)), 0.3)
	x := tensor.New(10000)
	x.Fill(1)
	y := d.Forward(x)
	mean := y.Mean()
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean = %v, want ≈1", mean)
	}
}

func TestBCEWithLogitsKnown(t *testing.T) {
	logits := tensor.FromSlice([]float32{0}, 1)
	targets := tensor.FromSlice([]float32{1}, 1)
	loss, grad := BCEWithLogitsLoss(logits, targets)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("BCE(0,1) = %v, want ln2", loss)
	}
	if math.Abs(float64(grad.Data()[0])+0.5) > 1e-6 {
		t.Fatalf("grad = %v, want -0.5", grad.Data()[0])
	}
}

func TestBCEGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logits := tensor.New(6)
	logits.RandNormal(rng, 0, 2)
	targets := tensor.FromSlice([]float32{1, 0, 1, 1, 0, 0}, 6)
	_, grad := BCEWithLogitsLoss(logits, targets)
	const eps = 1e-3
	for i := 0; i < logits.Len(); i++ {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := BCEWithLogitsLoss(logits, targets)
		logits.Data()[i] = orig - eps
		lm, _ := BCEWithLogitsLoss(logits, targets)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data()[i])) > 1e-3 {
			t.Fatalf("BCE grad[%d] = %v, numeric %v", i, grad.Data()[i], num)
		}
	}
}

func TestSmoothL1Regions(t *testing.T) {
	pred := tensor.FromSlice([]float32{0.5, 3}, 2, 1)
	target := tensor.FromSlice([]float32{0, 0}, 2, 1)
	loss, grad := SmoothL1Loss(pred, target, nil)
	// Elements: quadratic 0.5*0.25=0.125, linear 3-0.5=2.5; mean over 2.
	want := (0.125 + 2.5) / 2
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("smoothL1 = %v, want %v", loss, want)
	}
	if math.Abs(float64(grad.At(0, 0))-0.25) > 1e-6 {
		t.Fatalf("quadratic-region grad = %v, want 0.25", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(1, 0))-0.5) > 1e-6 {
		t.Fatalf("linear-region grad = %v, want 0.5", grad.At(1, 0))
	}
}

func TestSmoothL1MaskExcludesNegatives(t *testing.T) {
	pred := tensor.FromSlice([]float32{10, 10}, 2, 1)
	target := tensor.FromSlice([]float32{0, 0}, 2, 1)
	loss, grad := SmoothL1Loss(pred, target, []bool{true, false})
	if grad.At(1, 0) != 0 {
		t.Fatal("masked sample must have zero gradient")
	}
	if loss != 9.5 {
		t.Fatalf("masked loss = %v, want 9.5", loss)
	}
}

func TestSmoothL1AllMaskedIsZero(t *testing.T) {
	pred := tensor.FromSlice([]float32{10}, 1, 1)
	target := tensor.FromSlice([]float32{0}, 1, 1)
	loss, grad := SmoothL1Loss(pred, target, []bool{false})
	if loss != 0 || grad.At(0, 0) != 0 {
		t.Fatal("fully masked loss must be zero")
	}
}

func TestDetectionLossGradientShape(t *testing.T) {
	dl := &DetectionLoss{BoxWeight: 1}
	out := tensor.New(3, 5)
	targets := []DetectionTarget{
		{HasObject: true, CX: 0.5, CY: 0.5, W: 0.2, H: 0.2},
		{HasObject: false},
		{HasObject: true, CX: 0.3, CY: 0.7, W: 0.1, H: 0.4},
	}
	loss, grad := dl.Compute(out, targets)
	if loss <= 0 {
		t.Fatalf("loss = %v, want > 0", loss)
	}
	if grad.Dim(0) != 3 || grad.Dim(1) != 5 {
		t.Fatalf("grad shape %v", grad.Shape())
	}
	// Negative sample must have zero box gradient but nonzero objectness.
	if grad.At(1, 1) != 0 || grad.At(1, 2) != 0 {
		t.Fatal("negative sample box gradient must be zero")
	}
	if grad.At(1, 0) == 0 {
		t.Fatal("negative sample objectness gradient must be nonzero")
	}
}

func TestDetectionLossNumericGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dl := &DetectionLoss{BoxWeight: 2}
	out := tensor.New(4, 5)
	out.RandNormal(rng, 0, 0.5)
	targets := []DetectionTarget{
		{HasObject: true, CX: 0.5, CY: 0.5, W: 0.2, H: 0.2},
		{HasObject: false},
		{HasObject: true, CX: 0.2, CY: 0.8, W: 0.3, H: 0.1},
		{HasObject: false},
	}
	_, grad := dl.Compute(out, targets)
	const eps = 1e-3
	for i := 0; i < out.Len(); i++ {
		orig := out.Data()[i]
		out.Data()[i] = orig + eps
		lp, _ := dl.Compute(out, targets)
		out.Data()[i] = orig - eps
		lm, _ := dl.Compute(out, targets)
		out.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(grad.Data()[i])) > 2e-3 {
			t.Fatalf("detection grad[%d] = %v, numeric %v", i, grad.Data()[i], num)
		}
	}
}

func TestSequentialParamsAndZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewSequential(
		NewConv2D(rng, 1, 2, 3, 1),
		NewReLU(),
		NewLinear(rng, 10, 2),
	)
	ps := net.Params()
	if len(ps) != 4 { // conv w+b, linear w+b
		t.Fatalf("params = %d, want 4", len(ps))
	}
	ps[0].Grad.Fill(3)
	net.ZeroGrad()
	if ps[0].Grad.Sum() != 0 {
		t.Fatal("ZeroGrad did not clear gradients")
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lin := NewLinear(rng, 10, 4)
	if got := ParamCount(lin); got != 44 {
		t.Fatalf("ParamCount = %d, want 44", got)
	}
}

func TestSequentialOutShapeMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewSequential(
		NewConv2D(rng, 4, 8, 5, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewSPP(4, 2, 1),
		NewLinear(rng, 8*21, 16),
	)
	in := []int{3, 4, 40, 40}
	want := net.OutShape(in)
	x := tensor.New(in...)
	x.RandNormal(rng, 0, 1)
	y := net.Forward(x)
	for i := range want {
		if y.Shape()[i] != want[i] {
			t.Fatalf("OutShape %v, forward %v", want, y.Shape())
		}
	}
}

package nn

import (
	"fmt"

	"drainnet/internal/tensor"
)

// SPP is a spatial pyramid pooling layer (He et al., TPAMI 2015). It
// applies one adaptive max pool per pyramid level and concatenates the
// flattened results, producing a fixed-length vector for any input size:
//
//	out features = C * Σ level²
//
// The paper's SPP_{a,b,c} notation lists the pyramid levels from coarsest
// filter size down; e.g. SPP_{4,2,1} pools to 4×4, 2×2 and 1×1 grids.
// The per-level pools are independent branches — this is exactly the
// branched substructure IOS exploits for inter-operator parallelism.
type SPP struct {
	Levels []int
	pools  []*AdaptiveMaxPool2D

	inShape []int
}

// NewSPP creates a spatial pyramid pooling layer with the given levels.
func NewSPP(levels ...int) *SPP {
	if len(levels) == 0 {
		panic("nn: SPP requires at least one pyramid level")
	}
	s := &SPP{Levels: append([]int(nil), levels...)}
	for _, l := range levels {
		if l <= 0 {
			panic(fmt.Sprintf("nn: SPP level %d must be positive", l))
		}
		s.pools = append(s.pools, NewAdaptiveMaxPool2D(l))
	}
	return s
}

// OutFeatures returns the per-sample output length for c input channels.
func (s *SPP) OutFeatures(c int) int {
	total := 0
	for _, l := range s.Levels {
		total += l * l
	}
	return c * total
}

// Params implements Module.
func (s *SPP) Params() []*Param { return nil }

// OutShape implements Module.
func (s *SPP) OutShape(in []int) []int {
	return []int{in[0], s.OutFeatures(in[1])}
}

// Forward implements Module. Input is N×C×H×W; output is N×OutFeatures(C).
func (s *SPP) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 4, "SPP")
	n, c := x.Dim(0), x.Dim(1)
	s.inShape = append([]int(nil), x.Shape()...)
	out := tensor.New(n, s.OutFeatures(c))
	col := 0
	for li, pool := range s.pools {
		po := pool.Forward(x) // N×C×l×l
		l := s.Levels[li]
		feat := c * l * l
		for i := 0; i < n; i++ {
			copy(out.Data()[i*out.Dim(1)+col:i*out.Dim(1)+col+feat],
				po.Data()[i*feat:(i+1)*feat])
		}
		col += feat
	}
	return out
}

// Backward implements Module.
func (s *SPP) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, c := s.inShape[0], s.inShape[1]
	gradIn := tensor.New(s.inShape...)
	col := 0
	width := gradOut.Dim(1)
	for li, pool := range s.pools {
		l := s.Levels[li]
		feat := c * l * l
		slice := tensor.New(n, c, l, l)
		for i := 0; i < n; i++ {
			copy(slice.Data()[i*feat:(i+1)*feat],
				gradOut.Data()[i*width+col:i*width+col+feat])
		}
		gradIn.AddScaled(pool.Backward(slice), 1)
		col += feat
	}
	return gradIn
}

// cloneShared implements sharedCloner.
func (s *SPP) cloneShared() Module { return NewSPP(s.Levels...) }

// Infer implements Inferencer: per-level adaptive pools into arena
// scratch, concatenated into one arena output.
func (s *SPP) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	checkRank(x, 4, "SPP.Infer")
	n, c := x.Dim(0), x.Dim(1)
	width := s.OutFeatures(c)
	out := a.Get(n, width)
	col := 0
	for li, pool := range s.pools {
		po := pool.Infer(x, a) // N×C×l×l
		l := s.Levels[li]
		feat := c * l * l
		for i := 0; i < n; i++ {
			copy(out.Data()[i*width+col:i*width+col+feat],
				po.Data()[i*feat:(i+1)*feat])
		}
		col += feat
	}
	return out
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	bn := NewBatchNorm2D(3)
	x := tensor.New(4, 3, 5, 5)
	x.RandNormal(rng, 3, 2) // far from zero-mean unit-var
	y := bn.Forward(x)
	// Each channel of the output must be ≈ zero-mean, unit-var.
	plane := 25
	for ch := 0; ch < 3; ch++ {
		var sum, sq float64
		for i := 0; i < 4; i++ {
			base := (i*3 + ch) * plane
			for j := 0; j < plane; j++ {
				v := float64(y.Data()[base+j])
				sum += v
				sq += v * v
			}
		}
		count := float64(4 * plane)
		mean := sum / count
		variance := sq/count - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean = %v", ch, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d var = %v", ch, variance)
		}
	}
}

func TestBatchNormGammaBetaApply(t *testing.T) {
	bn := NewBatchNorm2D(1)
	bn.Gamma.Value.Data()[0] = 2
	bn.Beta.Value.Data()[0] = 5
	x := tensor.FromSlice([]float32{-1, 1, -1, 1}, 1, 1, 2, 2)
	y := bn.Forward(x)
	// Normalized x is ±1; output must be 5±2.
	for _, v := range y.Data() {
		if math.Abs(math.Abs(float64(v)-5)-2) > 1e-4 {
			t.Fatalf("output %v, want 3 or 7", v)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	bn := NewBatchNorm2D(2)
	// Train on data with mean 10 so running stats move there.
	for i := 0; i < 200; i++ {
		x := tensor.New(8, 2, 3, 3)
		x.RandNormal(rng, 10, 1)
		bn.Forward(x)
	}
	if math.Abs(bn.RunningMean[0]-10) > 0.5 {
		t.Fatalf("running mean = %v, want ≈10", bn.RunningMean[0])
	}
	bn.Training = false
	// A batch AT the running mean must normalize to ≈0 regardless of its
	// own (tiny) batch statistics.
	x := tensor.New(1, 2, 3, 3)
	x.Fill(10)
	y := bn.Forward(x)
	for _, v := range y.Data() {
		if math.Abs(float64(v)) > 0.6 {
			t.Fatalf("eval output %v, want ≈0", v)
		}
	}
}

func TestGradCheckBatchNormEval(t *testing.T) {
	// Eval mode: running stats are constants, so the layer is a smooth
	// affine map — exact gradient check.
	rng := rand.New(rand.NewSource(53))
	bn := NewBatchNorm2D(2)
	bn.Training = false
	for i := range bn.RunningMean {
		bn.RunningMean[i] = 0.3
		bn.RunningVar[i] = 2.0
	}
	bn.Gamma.Value.Data()[0] = 1.5
	bn.Gamma.Value.Data()[1] = 0.7
	x := tensor.New(2, 2, 4, 4)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "batchnorm-eval", bn, x)
}

func TestGradCheckBatchNormTraining(t *testing.T) {
	// Training mode: gradient flows through the batch statistics.
	rng := rand.New(rand.NewSource(54))
	bn := NewBatchNorm2D(2)
	x := tensor.New(3, 2, 3, 3)
	x.RandNormal(rng, 0, 1)
	gradCheckModule(t, "batchnorm-train", bn, x)
}

func TestBatchNormChannelMismatchPanics(t *testing.T) {
	bn := NewBatchNorm2D(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bn.Forward(tensor.New(1, 3, 2, 2))
}

package nn

import (
	"math/rand"
	"sync"
	"testing"

	"drainnet/internal/tensor"
)

// testNet builds a small SPP detection head covering every layer the
// serving fast path dispatches on: conv+ReLU fusion, max-pooling, SPP,
// linear+ReLU fusion, batch-norm running statistics, dropout identity
// and a sigmoid tail. Eval mode throughout so Forward and Infer compute
// the same function.
func testNet(rng *rand.Rand) *Sequential {
	bn := NewBatchNorm2D(6)
	bn.Training = false
	// Push the running stats off their init values so the eval-mode
	// normalization is non-trivial.
	for i := range bn.RunningMean {
		bn.RunningMean[i] = rng.NormFloat64() * 0.1
		bn.RunningVar[i] = 1 + rng.Float64()
	}
	drop := NewDropout(rng, 0.5)
	drop.Training = false
	spp := NewSPP(1, 2)
	return NewSequential(
		NewConv2D(rng, 3, 6, 3, 1),
		bn,
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewConv2D(rng, 6, 8, 3, 2),
		NewReLU(),
		spp,
		NewLinear(rng, spp.OutFeatures(8), 16),
		NewReLU(),
		drop,
		NewLinear(rng, 16, 5),
		NewSigmoid(),
	)
}

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	x.RandNormal(rng, 0, 1)
	return x
}

// The fast path must be bit-for-bit identical to the training-graph
// forward in eval mode: the serving layer's determinism test compares
// detections bitwise across the two paths.
func TestInferMatchesForwardBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	net := testNet(rng)
	PrepareInference(net)
	a := tensor.NewArena()
	for _, n := range []int{1, 3, 16} {
		x := randInput(rng, n, 3, 20, 20)
		want := net.Forward(x)
		a.Reset()
		got := net.Infer(x, a)
		if got.Len() != want.Len() {
			t.Fatalf("n=%d: Infer len %d, Forward len %d", n, got.Len(), want.Len())
		}
		for i := range want.Data() {
			if want.Data()[i] != got.Data()[i] {
				t.Fatalf("n=%d: element %d: Infer %v != Forward %v",
					n, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

// Infer through a Flatten-based head (no SPP) exercises the arena View
// path.
func TestInferFlattenHeadMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	net := NewSequential(
		NewConv2D(rng, 2, 4, 3, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewLinear(rng, 4*5*5, 7),
	)
	PrepareInference(net)
	a := tensor.NewArena()
	x := randInput(rng, 2, 2, 10, 10)
	want := net.Forward(x)
	got := net.Infer(x, a)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("element %d: Infer %v != Forward %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestCloneSharedSharesWeightsOwnsCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	net := testNet(rng)
	PrepareInference(net)
	cm, err := CloneShared(net)
	if err != nil {
		t.Fatalf("CloneShared: %v", err)
	}
	clone := cm.(*Sequential)

	// Every parameter tensor must be the same object, not a copy.
	orig, dup := net.Params(), clone.Params()
	if len(orig) != len(dup) {
		t.Fatalf("clone has %d params, original %d", len(dup), len(orig))
	}
	for i := range orig {
		if orig[i].Value != dup[i].Value {
			t.Fatalf("param %q value tensor was copied, not shared", orig[i].Name)
		}
	}
	// Mutable training state must be fresh: a cloned Dropout serves
	// deterministically regardless of the original's mode.
	for i, m := range clone.Modules() {
		if d, ok := m.(*Dropout); ok && d.Training {
			t.Fatalf("cloned Dropout at %d still in training mode", i)
		}
	}

	// The clone and the original must produce identical results, and must
	// be safe to run concurrently (each with its own arena).
	x := randInput(rng, 4, 3, 20, 20)
	want := net.Forward(x)
	var wg sync.WaitGroup
	results := make([]*tensor.Tensor, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := tensor.NewArena()
			m := net
			if g%2 == 1 {
				m = clone
			}
			results[g] = m.Infer(x, a)
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		for i := range want.Data() {
			if r.Data()[i] != want.Data()[i] {
				t.Fatalf("goroutine %d: element %d = %v, want %v", g, i, r.Data()[i], want.Data()[i])
			}
		}
	}
}

// The training-path cols cache must track the current batch size instead
// of pinning per-sample buffers for the largest batch ever seen.
func TestConvColsCacheShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	conv := NewConv2D(rng, 2, 3, 3, 1)
	conv.Forward(randInput(rng, 8, 2, 10, 10))
	if len(conv.cols) != 8 {
		t.Fatalf("cols len = %d after batch 8", len(conv.cols))
	}
	conv.Forward(randInput(rng, 2, 2, 10, 10))
	if len(conv.cols) != 2 {
		t.Fatalf("cols len = %d after batch 2", len(conv.cols))
	}
	full := conv.cols[:cap(conv.cols)]
	for i := 2; i < len(full); i++ {
		if full[i] != nil {
			t.Fatalf("cols[%d] still retained after smaller batch", i)
		}
	}
}

// Inference mode must not touch the training cols cache at all.
func TestInferLeavesColsCacheEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	conv := NewConv2D(rng, 2, 3, 3, 1)
	a := tensor.NewArena()
	conv.Infer(randInput(rng, 4, 2, 10, 10), a)
	if conv.cols != nil {
		t.Fatalf("Infer populated the training cols cache (len %d)", len(conv.cols))
	}
}

// Direct and im2col convolutions must agree at stride > 1 and for even
// kernel sizes, where the output-size and padding arithmetic is easiest
// to get wrong.
func TestConvIm2ColVsDirectStrideAndEvenKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	cases := []struct{ k, stride int }{
		{2, 1}, {2, 2}, {4, 2}, {3, 2}, {3, 3}, {5, 3},
	}
	for _, tc := range cases {
		a := NewConv2D(rng, 3, 4, tc.k, tc.stride)
		b := &Conv2D{InC: 3, OutC: 4, Geom: a.Geom, Algo: ConvDirect,
			Weight: &Param{Name: "w", Value: a.Weight.Value.Clone(), Grad: tensor.New(a.Weight.Value.Shape()...)},
			Bias:   &Param{Name: "b", Value: a.Bias.Value.Clone(), Grad: tensor.New(a.Bias.Value.Shape()...)},
		}
		x := randInput(rng, 2, 3, 13, 13)
		ya := a.Forward(x)
		yb := b.Forward(x)
		if !ya.AllClose(yb, 1e-4, 1e-4) {
			t.Fatalf("k=%d stride=%d: direct and im2col conv disagree", tc.k, tc.stride)
		}
		// The inference fast path must agree with both on the same geometry.
		arena := tensor.NewArena()
		yi := a.Infer(x, arena)
		for i := range ya.Data() {
			if ya.Data()[i] != yi.Data()[i] {
				t.Fatalf("k=%d stride=%d: element %d Infer %v != Forward %v",
					tc.k, tc.stride, i, yi.Data()[i], ya.Data()[i])
			}
		}
	}
}

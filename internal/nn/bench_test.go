package nn

import (
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

func BenchmarkConvForward64x50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 64, 128, 3, 1)
	x := tensor.New(1, 64, 50, 50)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x)
	}
}

func BenchmarkConvBackward64x50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(rng, 64, 128, 3, 1)
	x := tensor.New(1, 64, 50, 50)
	x.RandNormal(rng, 0, 1)
	out := conv.Forward(x)
	grad := tensor.New(out.Shape()...)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Backward(grad)
	}
}

func BenchmarkSPPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	spp := NewSPP(5, 2, 1)
	x := tensor.New(4, 256, 12, 12)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spp.Forward(x)
	}
}

func BenchmarkLinearForward4096(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	lin := NewLinear(rng, 7680, 4096)
	x := tensor.New(4, 7680)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.Forward(x)
	}
}

func BenchmarkBatchNormForward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm2D(64)
	x := tensor.New(8, 64, 25, 25)
	x.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bn.Forward(x)
	}
}

package nn

import (
	"fmt"
	"math"

	"drainnet/internal/tensor"
)

// BatchNorm2D normalizes each channel of an N×C×H×W tensor over the
// (N,H,W) axes, with learnable per-channel scale (gamma) and shift
// (beta). During training it tracks running statistics with momentum;
// in eval mode it normalizes with the running statistics. It is an
// optional block for the SPP-Net family (the paper's models do not use
// it; it exists for architecture-space extensions).
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64
	Training bool

	Gamma, Beta *Param

	RunningMean []float64
	RunningVar  []float64

	// backward cache
	input  *tensor.Tensor
	normed []float32 // x̂ values
	mean   []float64
	invStd []float64
}

// NewBatchNorm2D creates a batch-norm layer over c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		Training:    true,
		Gamma:       NewParam(fmt.Sprintf("bn%d_gamma", c), c),
		Beta:        NewParam(fmt.Sprintf("bn%d_beta", c), c),
		RunningMean: make([]float64, c),
		RunningVar:  make([]float64, c),
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Params implements Module.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutShape implements Module.
func (bn *BatchNorm2D) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Module.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 4, "BatchNorm2D")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D expects %d channels, got %d", bn.C, c))
	}
	out := tensor.New(n, c, h, w)
	bn.input = x
	if cap(bn.normed) < x.Len() {
		bn.normed = make([]float32, x.Len())
	}
	bn.normed = bn.normed[:x.Len()]
	bn.mean = make([]float64, c)
	bn.invStd = make([]float64, c)

	plane := h * w
	count := float64(n * plane)
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if bn.Training {
			var sum, sq float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for j := 0; j < plane; j++ {
					v := float64(x.Data()[base+j])
					sum += v
					sq += v * v
				}
			}
			mean = sum / count
			variance = sq/count - mean*mean
			if variance < 0 {
				variance = 0
			}
			bn.RunningMean[ch] = (1-bn.Momentum)*bn.RunningMean[ch] + bn.Momentum*mean
			bn.RunningVar[ch] = (1-bn.Momentum)*bn.RunningVar[ch] + bn.Momentum*variance
		} else {
			mean = bn.RunningMean[ch]
			variance = bn.RunningVar[ch]
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.mean[ch] = mean
		bn.invStd[ch] = inv
		g := float64(bn.Gamma.Value.Data()[ch])
		b := float64(bn.Beta.Value.Data()[ch])
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				xhat := (float64(x.Data()[base+j]) - mean) * inv
				bn.normed[base+j] = float32(xhat)
				out.Data()[base+j] = float32(g*xhat + b)
			}
		}
	}
	return out
}

// Backward implements Module. In training mode it backpropagates through
// the batch statistics (the full BN gradient); in eval mode the running
// statistics are constants and the gradient is a simple scale.
func (bn *BatchNorm2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := bn.input
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	gradIn := tensor.New(n, c, h, w)
	plane := h * w
	count := float64(n * plane)

	for ch := 0; ch < c; ch++ {
		g := float64(bn.Gamma.Value.Data()[ch])
		inv := bn.invStd[ch]
		// Accumulate dGamma, dBeta and the two reduction terms of the BN
		// input gradient.
		var dGamma, dBeta, sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := float64(gradOut.Data()[base+j])
				xhat := float64(bn.normed[base+j])
				dGamma += dy * xhat
				dBeta += dy
				sumDy += dy
				sumDyXhat += dy * xhat
			}
		}
		bn.Gamma.Grad.Data()[ch] += float32(dGamma)
		bn.Beta.Grad.Data()[ch] += float32(dBeta)
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := float64(gradOut.Data()[base+j])
				if bn.Training {
					xhat := float64(bn.normed[base+j])
					gradIn.Data()[base+j] = float32(g * inv * (dy - sumDy/count - xhat*sumDyXhat/count))
				} else {
					gradIn.Data()[base+j] = float32(g * inv * dy)
				}
			}
		}
	}
	return gradIn
}

// cloneShared implements sharedCloner: gamma/beta and the running
// statistics are shared; the clone is permanently in eval mode.
func (bn *BatchNorm2D) cloneShared() Module {
	return &BatchNorm2D{
		C:           bn.C,
		Eps:         bn.Eps,
		Momentum:    bn.Momentum,
		Training:    false,
		Gamma:       bn.Gamma,
		Beta:        bn.Beta,
		RunningMean: bn.RunningMean,
		RunningVar:  bn.RunningVar,
	}
}

// Infer implements Inferencer: eval-mode normalization with the running
// statistics, no backward caches.
func (bn *BatchNorm2D) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	checkRank(x, 4, "BatchNorm2D.Infer")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.C {
		panic(fmt.Sprintf("nn: BatchNorm2D expects %d channels, got %d", bn.C, c))
	}
	out := a.Get(n, c, h, w)
	plane := h * w
	xd, od := x.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		mean := bn.RunningMean[ch]
		inv := 1 / math.Sqrt(bn.RunningVar[ch]+bn.Eps)
		g := float64(bn.Gamma.Value.Data()[ch])
		b := float64(bn.Beta.Value.Data()[ch])
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				xhat := (float64(xd[base+j]) - mean) * inv
				od[base+j] = float32(g*xhat + b)
			}
		}
	}
	return out
}

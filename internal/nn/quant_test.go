package nn

import (
	"math/rand"
	"testing"

	"drainnet/internal/ios"
	"drainnet/internal/tensor"
)

func calibBatches(rng *rand.Rand, n int, shape ...int) []*tensor.Tensor {
	var out []*tensor.Tensor
	for b := 0; b < n; b++ {
		out = append(out, randInput(rng, shape...))
	}
	return out
}

func TestMinMaxObserverQParams(t *testing.T) {
	var o MinMaxObserver
	if _, _, ok := o.QParams(); ok {
		t.Fatal("unseen observer produced qparams")
	}
	o.Observe([]float32{-1, 3})
	scale, zp, ok := o.QParams()
	if !ok {
		t.Fatal("observer with a real range rejected")
	}
	if want := float32(4.0 / 255); scale != want {
		t.Fatalf("scale = %v, want %v", scale, want)
	}
	// Real 0.0 must map exactly onto the zero point, and the range ends
	// must land inside [-128, 127].
	q := make([]int8, 3)
	tensor.QuantizeSlice(q, []float32{0, -1, 3}, 1/scale, zp)
	if int32(q[0]) != zp {
		t.Fatalf("0.0 quantized to %d, zero point is %d", q[0], zp)
	}
	if q[1] != -128 {
		t.Fatalf("range min quantized to %d, want -128", q[1])
	}
	if q[2] != 127 {
		t.Fatalf("range max quantized to %d, want 127", q[2])
	}

	// A positive-only range must still include 0.
	var p MinMaxObserver
	p.Observe([]float32{2, 6})
	_, zp2, ok := p.QParams()
	if !ok || zp2 != -128 {
		t.Fatalf("positive-only range zp = %d ok=%t, want -128 true", zp2, ok)
	}

	// Degenerate ranges are hostile.
	var d MinMaxObserver
	d.Observe([]float32{0, 0})
	if _, _, ok := d.QParams(); ok {
		t.Fatal("all-zero range produced qparams")
	}
}

// quantizedPair builds the SPP test network, calibrates it on random
// batches and returns (fp32 net, quantized net).
func quantizedPair(t *testing.T, rng *rand.Rand) (*Sequential, *Sequential) {
	t.Helper()
	net, _ := buildSPPPair(t, rng, 1)
	cal := Calibrate(net, calibBatches(rng, 4, 8, 3, 21, 21))
	qnet, rep, err := QuantizeForInference(net, cal)
	if err != nil {
		t.Fatalf("QuantizeForInference: %v", err)
	}
	if rep.Quantized != 4 || rep.Fallback != 0 {
		t.Fatalf("report = %+v, want 4 quantized / 0 fallback", rep)
	}
	return net, qnet
}

func TestQuantizeForInferenceAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, qnet := quantizedPair(t, rng)
	for _, batch := range []int{1, 16} {
		x := randInput(rng, batch, 3, 21, 21)
		want := net.Infer(x, tensor.NewArena())
		got := qnet.Infer(x, tensor.NewArena())
		var maxDiff, rng float32
		for i, w := range want.Data() {
			if d := got.Data()[i] - w; d > maxDiff {
				maxDiff = d
			} else if -d > maxDiff {
				maxDiff = -d
			}
			if w > rng {
				rng = w
			} else if -w > rng {
				rng = -w
			}
		}
		if maxDiff > 0.05*rng {
			t.Fatalf("batch %d: quantized output off by %v (fp32 range %v)", batch, maxDiff, rng)
		}
	}
}

func TestQuantizedUnwrapAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net, qnet := quantizedPair(t, rng)
	for i, m := range qnet.Modules() {
		orig := net.Modules()[i]
		switch m.(type) {
		case *QuantConv2D, *QuantLinear:
			if Unwrap(m) != orig {
				t.Fatalf("module %d: Unwrap does not return the original layer", i)
			}
			if m.(Module).Params()[0] != orig.Params()[0] {
				t.Fatalf("module %d: quantized layer does not expose original params", i)
			}
		default:
			if Unwrap(m) != m {
				t.Fatalf("module %d: Unwrap changed a plain module", i)
			}
		}
	}
}

func TestQuantInferDeterministicAndForwardParity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	_, qnet := quantizedPair(t, rng)
	for _, batch := range []int{1, 16} {
		x := randInput(rng, batch, 3, 21, 21)
		a := tensor.NewArena()
		first := qnet.Infer(x, a).Clone()
		// Run-to-run bit-exactness on the same replica and on a shared
		// clone (replicas share packed codes and scales).
		a.Reset()
		assertBitwiseEqual(t, "rerun", qnet.Infer(x, a), first)
		clone, err := CloneShared(qnet)
		if err != nil {
			t.Fatalf("CloneShared: %v", err)
		}
		assertBitwiseEqual(t, "clone", clone.(*Sequential).Infer(x, tensor.NewArena()), first)
		// The Forward walk (tracing path) must see the same quantized
		// numbers as the fused Infer path.
		assertBitwiseEqual(t, "forward", qnet.Forward(x), first)
	}
}

func TestQuantizeFallbackHostileLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net, _ := buildSPPPair(t, rng, 1)
	// Direct-algorithm convs are not quantizable.
	net.Modules()[0].(*Conv2D).Algo = ConvDirect
	cal := Calibrate(net, calibBatches(rng, 2, 4, 3, 21, 21))
	_, rep, err := QuantizeForInference(net, cal)
	if err != nil {
		t.Fatalf("QuantizeForInference: %v", err)
	}
	if rep.Quantized != 3 || rep.Fallback != 1 {
		t.Fatalf("direct conv: report = %+v, want 3/1", rep)
	}
	// An empty calibration leaves every layer fp32.
	qnet, rep, err := QuantizeForInference(net, &Calibration{})
	if err != nil {
		t.Fatalf("QuantizeForInference(empty cal): %v", err)
	}
	if rep.Quantized != 0 || rep.Fallback != 4 {
		t.Fatalf("empty calibration: report = %+v, want 0/4", rep)
	}
	// The all-fallback net still runs and matches the fp32 fast path.
	x := randInput(rng, 2, 3, 21, 21)
	assertBitwiseEqual(t, "fallback net",
		qnet.Infer(x, tensor.NewArena()), net.Infer(x, tensor.NewArena()))
}

// TestQuantScheduleExecutorMatchesInfer pins the scheduled execution of a
// quantized program to the quantized fast path, bit for bit, and checks
// the precision tagging the cost oracle keys on.
func TestQuantScheduleExecutorMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	net, g := buildSPPPair(t, rng, 1)
	cal := Calibrate(net, calibBatches(rng, 3, 8, 3, 21, 21))
	qnet, _, err := QuantizeForInference(net, cal)
	if err != nil {
		t.Fatalf("QuantizeForInference: %v", err)
	}
	prog, err := CompileGraph(qnet, g)
	if err != nil {
		t.Fatalf("CompileGraph over quantized net: %v", err)
	}
	tagged := 0
	for _, n := range g.Nodes {
		if prog.OpTag(n) == "int8" {
			tagged++
		}
	}
	if tagged != 4 { // conv1, conv2, fc1, head
		t.Fatalf("OpTag marked %d int8 nodes, want 4", tagged)
	}
	for _, sched := range []*ios.Schedule{ios.SequentialSchedule(g), ios.GreedySchedule(g)} {
		exec, err := NewScheduleExecutor(prog, sched)
		if err != nil {
			t.Fatalf("executor %s: %v", sched.Name, err)
		}
		for _, batch := range []int{1, 16} {
			x := randInput(rng, batch, 3, 21, 21)
			want := qnet.Infer(x, tensor.NewArena())
			got := exec.Infer(x, tensor.NewArena())
			assertBitwiseEqual(t, sched.Name, got, want)
		}
	}
}

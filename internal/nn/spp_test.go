package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

// refAdaptiveMax is an independent reference for PyTorch-style adaptive
// max pooling: bin i over an axis of size `in` covers
// [floor(i·in/out), ceil((i+1)·in/out)).
func refAdaptiveMax(x *tensor.Tensor, out int) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	res := tensor.New(n, c, out, out)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			for oy := 0; oy < out; oy++ {
				y0 := oy * h / out
				y1 := int(math.Ceil(float64((oy+1)*h) / float64(out)))
				for ox := 0; ox < out; ox++ {
					x0 := ox * w / out
					x1 := int(math.Ceil(float64((ox+1)*w) / float64(out)))
					best := float32(math.Inf(-1))
					for iy := y0; iy < y1; iy++ {
						for ix := x0; ix < x1; ix++ {
							if v := x.At(i, ch, iy, ix); v > best {
								best = v
							}
						}
					}
					res.Set(best, i, ch, oy, ox)
				}
			}
		}
	}
	return res
}

// TestSPPOddNonSquareMaps exercises every pyramid level 1..5 on odd,
// non-square feature maps (11×13 and 13×11) — including levels larger
// than makes even bins (5 over 11) and batch > 1 — against the naive
// reference, through both Forward and Infer.
func TestSPPOddNonSquareMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, hw := range [][2]int{{11, 13}, {13, 11}, {7, 5}} {
		h, w := hw[0], hw[1]
		x := randInput(rng, 2, 3, h, w)
		spp := NewSPP(5, 4, 3, 2, 1)
		wantWidth := spp.OutFeatures(3)
		if wantWidth != 3*(25+16+9+4+1) {
			t.Fatalf("OutFeatures(3) = %d", wantWidth)
		}

		// Reference: per-level adaptive pools flattened and concatenated.
		ref := tensor.New(2, wantWidth)
		col := 0
		for _, l := range spp.Levels {
			po := refAdaptiveMax(x, l)
			feat := 3 * l * l
			for i := 0; i < 2; i++ {
				copy(ref.Data()[i*wantWidth+col:i*wantWidth+col+feat],
					po.Data()[i*feat:(i+1)*feat])
			}
			col += feat
		}

		fwd := spp.Forward(x)
		assertBitwiseEqual(t, "Forward 11x13", fwd, ref)
		inf := spp.Infer(x, tensor.NewArena())
		assertBitwiseEqual(t, "Infer 11x13", inf, ref)

		// Each level alone must also match the reference (catches a bug
		// that level concatenation order could mask).
		for _, l := range []int{1, 2, 3, 4, 5} {
			single := NewSPP(l)
			got := single.Infer(x, tensor.NewArena())
			want := refAdaptiveMax(x, l)
			flat := tensor.New(2, 3*l*l)
			copy(flat.Data(), want.Data())
			assertBitwiseEqual(t, "single level", got, flat)
		}
	}
}

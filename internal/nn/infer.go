package nn

import (
	"fmt"

	"drainnet/internal/tensor"
)

// Inferencer is the inference-mode counterpart of Module.Forward. Infer
// computes the same values as Forward-in-eval-mode but skips every piece
// of backward bookkeeping (gradient caches, argmax maps, input
// retention) and draws all temporaries from the caller's arena, so a
// steady-state Infer pass performs no heap allocation. The returned
// tensor is arena-owned and only valid until the arena's next Reset.
//
// Infer on a layer whose math is shared with Forward (conv, linear,
// activations, pools) is bit-for-bit identical to the eval-mode Forward
// result: the kernels accumulate in the same order.
type Inferencer interface {
	Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor
}

// fusedInferencer is implemented by layers whose epilogue can absorb a
// following ReLU (conv and linear), letting Sequential.Infer skip the
// separate activation pass over the output tensor.
type fusedInferencer interface {
	inferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor
}

// preparer is implemented by layers that pre-pack static state (packed
// weight panels) once before serving.
type preparer interface {
	prepareInference()
}

// sharedCloner produces an inference replica of a layer that shares all
// immutable state (weights, packed panels, running statistics) with the
// receiver but owns its forward caches, so replicas can run concurrently.
type sharedCloner interface {
	cloneShared() Module
}

// Infer runs the chain in inference mode, fusing each Conv2D/Linear with
// an immediately following ReLU into the producing layer's epilogue.
// Modules that do not implement Inferencer fall back to Forward.
func (s *Sequential) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return s.InferRange(x, a, 0, len(s.mods))
}

// InferRange runs modules [lo, hi) of the chain in inference mode with
// the same ReLU-fusion rules as Infer; fusion lookahead never crosses
// hi, so a prefix run leaves a trailing activation for the tail run.
// Splitting Infer into InferRange(0, k) followed by InferRange(k, len)
// at any non-fused boundary produces the same values as one full Infer.
// This is the seam the dynamic inference path uses: the conv stack runs
// as a prefix, the early-exit probe reads its output, and only
// surviving samples pay for the SPP+FC tail.
func (s *Sequential) InferRange(x *tensor.Tensor, a *tensor.Arena, lo, hi int) *tensor.Tensor {
	for i := lo; i < hi; i++ {
		m := s.mods[i]
		if f, ok := m.(fusedInferencer); ok {
			if i+1 < hi {
				if _, isRelu := s.mods[i+1].(*ReLU); isRelu {
					x = f.inferFused(x, a, true)
					i++
					continue
				}
			}
			x = f.inferFused(x, a, false)
			continue
		}
		if inf, ok := m.(Inferencer); ok {
			x = inf.Infer(x, a)
			continue
		}
		x = m.Forward(x)
	}
	return x
}

// PrepareInference packs every packable layer's static weights for the
// fast path. Call once after the weights reach their serving values;
// Infer also packs lazily on first use, so PrepareInference is an
// optimization that moves the one-time cost to load time.
func PrepareInference(m Module) {
	if p, ok := m.(preparer); ok {
		p.prepareInference()
	}
	if s, ok := m.(*Sequential); ok {
		for _, child := range s.mods {
			PrepareInference(child)
		}
	}
}

// PrepareInferenceParallel is PrepareInference with the per-layer
// packing work (panel packing, Winograd transform, NCHWc blocking)
// spread across the worker pool. Layers pack independent state, so the
// only coordination is the pool itself; a nested ParallelRange inside a
// layer's packing degrades inline. Use at load time where cold-start
// latency matters (cluster respawn); the result is identical to
// PrepareInference.
func PrepareInferenceParallel(m Module) {
	var ps []preparer
	collectPreparers(m, &ps)
	tensor.ParallelFor(len(ps), func(i int) { ps[i].prepareInference() })
}

func collectPreparers(m Module, ps *[]preparer) {
	if p, ok := m.(preparer); ok {
		*ps = append(*ps, p)
	}
	if s, ok := m.(*Sequential); ok {
		for _, child := range s.mods {
			collectPreparers(child, ps)
		}
	}
}

// CloneShared builds an inference replica of a module tree: immutable
// state (weight tensors, packed panels, batch-norm running statistics)
// is shared with the original, while per-call caches are fresh, so the
// clone can run Infer concurrently with the original and with other
// clones. Memory cost per replica is scratch-only, not a full copy of
// the weights. Returns an error if the tree contains a module type that
// does not support shared cloning.
func CloneShared(m Module) (Module, error) {
	if s, ok := m.(*Sequential); ok {
		out := &Sequential{mods: make([]Module, len(s.mods))}
		for i, child := range s.mods {
			c, err := CloneShared(child)
			if err != nil {
				return nil, err
			}
			out.mods[i] = c
		}
		return out, nil
	}
	if sc, ok := m.(sharedCloner); ok {
		return sc.cloneShared(), nil
	}
	return nil, fmt.Errorf("nn: %T does not support shared cloning", m)
}

package nn

import (
	"fmt"
	"math"

	"drainnet/internal/tensor"
)

// Post-training int8 quantization of the inference fast path. Weights
// use symmetric per-output-channel scales (tensor.QuantizeSymmetricPerRow);
// activations use one affine scale/zero-point per layer input, derived
// from min/max observers run over a calibration set. QuantizeForInference
// rewrites a Sequential into a copy whose conv and linear layers run the
// packed int8 kernels, falling back to the fp32 layer wherever
// quantization is hostile (direct-algorithm convs, layers whose
// calibration never saw data or saw a degenerate range, all-zero
// weights). SPP, pooling, ReLU and concat always stay fp32 — they are
// cheap, max-pooling commutes with the monotone quantization map anyway,
// and keeping them in fp32 means the quantized network consumes and
// produces plain float32 tensors everywhere a caller can see.

// MinMaxObserver accumulates the running min/max of every activation
// slice it observes. One observer corresponds to one quantized layer
// input.
type MinMaxObserver struct {
	Min, Max float32
	Seen     bool
}

// Observe folds a batch of activations into the running range.
func (o *MinMaxObserver) Observe(d []float32) {
	for _, v := range d {
		if !o.Seen {
			o.Min, o.Max, o.Seen = v, v, true
			continue
		}
		if v < o.Min {
			o.Min = v
		}
		if v > o.Max {
			o.Max = v
		}
	}
}

// QParams derives the affine int8 parameters for the observed range. The
// range is widened to include 0 so the zero point represents real 0.0
// exactly — required for the int8 im2col to pad borders losslessly. ok
// is false when the observer never saw data or the range is degenerate
// (a single value, NaN, or ±Inf), which callers treat as
// quantization-hostile.
func (o *MinMaxObserver) QParams() (scale float32, zp int32, ok bool) {
	if !o.Seen {
		return 0, 0, false
	}
	lo, hi := o.Min, o.Max
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if !(hi > lo) { // also rejects NaN
		return 0, 0, false
	}
	scale = (hi - lo) / 255
	if scale == 0 || math.IsInf(float64(scale), 0) {
		return 0, 0, false
	}
	// zp solves round(lo/scale) + zp = -128, rounding half away from zero;
	// lo ≤ 0 so -lo/scale is the non-negative magnitude.
	zp = -128 + int32(-lo/scale+0.5)
	if zp < -128 {
		zp = -128
	} else if zp > 127 {
		zp = 127
	}
	return scale, zp, true
}

// Calibration holds the activation observers gathered over a calibration
// set, keyed by module index within the observed Sequential.
type Calibration struct {
	obs map[int]*MinMaxObserver
}

// Observer returns the observer for module index i, or nil.
func (c *Calibration) Observer(i int) *MinMaxObserver {
	if c == nil {
		return nil
	}
	return c.obs[i]
}

// Calibrate runs the calibration batches through s in inference mode and
// records the input range of every Conv2D and Linear. The walk mirrors
// Sequential.Infer without the ReLU fusion — fusion changes where the
// clamp happens, not what any layer consumes, so the observed ranges are
// exactly the serving-time ones.
func Calibrate(s *Sequential, batches []*tensor.Tensor) *Calibration {
	cal := &Calibration{obs: make(map[int]*MinMaxObserver)}
	a := tensor.NewArena()
	for _, x := range batches {
		a.Reset()
		cur := x
		for i, m := range s.mods {
			switch m.(type) {
			case *Conv2D, *Linear:
				o := cal.obs[i]
				if o == nil {
					o = &MinMaxObserver{}
					cal.obs[i] = o
				}
				o.Observe(cur.Data())
			}
			if inf, ok := m.(Inferencer); ok {
				cur = inf.Infer(cur, a)
			} else {
				cur = m.Forward(cur)
			}
		}
	}
	return cal
}

// underlier is implemented by quantized wrappers; Underlying returns the
// fp32 layer the wrapper replaces.
type underlier interface{ Underlying() Module }

// Unwrap returns the fp32 layer behind a quantized wrapper, or m itself.
// Structural validators (the batcher's config check, the graph compiler's
// shape checks) see the original layer types through this.
func Unwrap(m Module) Module {
	if u, ok := m.(underlier); ok {
		return u.Underlying()
	}
	return m
}

// QuantReport summarizes a QuantizeForInference rewrite.
type QuantReport struct {
	Quantized int // conv/linear layers now running the int8 kernels
	Fallback  int // quantization-hostile conv/linear layers kept fp32
}

// QuantizeForInference builds an inference copy of s whose Conv2D and
// Linear layers run the packed int8 kernels, using cal for the
// activation ranges. Hostile layers silently keep their fp32 kernels and
// are counted in the report. All other layers are shared-cloned, so the
// returned network is safe to run concurrently with s and with other
// clones. The quantized layers support Infer, fused inference, scheduled
// execution and Forward (for the tracing path) — but not Backward.
func QuantizeForInference(s *Sequential, cal *Calibration) (*Sequential, QuantReport, error) {
	var rep QuantReport
	PrepareInferenceParallel(s)
	out := &Sequential{mods: make([]Module, len(s.mods))}
	// Each layer's rewrite (weight quantization + int8 packing, or a
	// shared clone) touches only that layer, so the per-layer work spreads
	// across the worker pool; the report and error fold serially after.
	type rewrite struct {
		mod                 Module
		quantized, fallback bool
		err                 error
	}
	res := make([]rewrite, len(s.mods))
	tensor.ParallelFor(len(s.mods), func(i int) {
		m := s.mods[i]
		switch t := m.(type) {
		case *Conv2D:
			if qc, ok := newQuantConv2D(t, cal.Observer(i)); ok {
				res[i] = rewrite{mod: qc, quantized: true}
				return
			}
			res[i].fallback = true
		case *Linear:
			if ql, ok := newQuantLinear(t, cal.Observer(i)); ok {
				res[i] = rewrite{mod: ql, quantized: true}
				return
			}
			res[i].fallback = true
		}
		c, err := CloneShared(m)
		res[i].mod, res[i].err = c, err
	})
	for i, r := range res {
		if r.err != nil {
			return nil, rep, fmt.Errorf("nn: quantize: %w", r.err)
		}
		if r.quantized {
			rep.Quantized++
		}
		if r.fallback {
			rep.Fallback++
		}
		out.mods[i] = r.mod
	}
	return out, rep, nil
}

// QuantConv2D runs a Conv2D through the int8 pipeline: per-sample affine
// quantization of the input, int8 im2col (borders padded with the zero
// point), the packed int8 GEMM with int32 accumulation, and a fused
// requantize+bias+ReLU epilogue back to float32. Weights are quantized
// per output channel; immutable state (packed panels, scales) is shared
// across replicas.
type QuantConv2D struct {
	base     *Conv2D
	packed   *tensor.PackedInt8
	inInv    float32   // 1 / activation scale
	inZP     int32     // activation zero point
	outScale []float32 // per-row weightScale · activationScale

	colsTask qconvColsTask
	gemmTask qconvGemmTask
	fwd      *tensor.Arena // Forward-mode scratch (tracing path)
}

// newQuantConv2D quantizes c against its observed input range. ok is
// false for hostile layers: direct-algorithm convs, missing/degenerate
// calibration, or an all-zero weight tensor.
func newQuantConv2D(c *Conv2D, obs *MinMaxObserver) (*QuantConv2D, bool) {
	if c.Algo != ConvIm2Col || obs == nil {
		return nil, false
	}
	scale, zp, ok := obs.QParams()
	if !ok {
		return nil, false
	}
	wq, ws := tensor.QuantizeSymmetricPerRow(
		c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW))
	live := false
	outScale := make([]float32, c.OutC)
	for r, s := range ws {
		outScale[r] = s * scale
		if s != 0 {
			live = true
		}
	}
	if !live {
		return nil, false
	}
	return &QuantConv2D{
		base:     c,
		packed:   tensor.PackInt8(wq, c.OutC, c.InC*c.Geom.KH*c.Geom.KW),
		inInv:    1 / scale,
		inZP:     zp,
		outScale: outScale,
		fwd:      tensor.NewArena(),
	}, true
}

// Underlying implements the unwrap protocol.
func (q *QuantConv2D) Underlying() Module { return q.base }

// Params implements Module (the fp32 parameters remain the source of truth).
func (q *QuantConv2D) Params() []*Param { return q.base.Params() }

// OutShape implements Module.
func (q *QuantConv2D) OutShape(in []int) []int { return q.base.OutShape(in) }

// Forward implements Module by running the int8 inference kernels into a
// layer-owned arena, so trace/debug paths that walk Forward (e.g.
// DetectWithHook) see exactly the quantized serving numbers. The output
// is valid until this layer's next Forward call.
func (q *QuantConv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	q.fwd.Reset()
	return q.inferFused(x, q.fwd, false)
}

// Backward implements Module. Quantized layers are inference-only.
func (q *QuantConv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	panic("nn: QuantConv2D is inference-only and does not support Backward")
}

// cloneShared implements sharedCloner: packed codes, scales and the base
// layer are shared; task descriptors and scratch are fresh.
func (q *QuantConv2D) cloneShared() Module {
	return &QuantConv2D{
		base:     q.base,
		packed:   q.packed,
		inInv:    q.inInv,
		inZP:     q.inZP,
		outScale: q.outScale,
		fwd:      tensor.NewArena(),
	}
}

// Infer implements Inferencer.
func (q *QuantConv2D) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return q.inferFused(x, a, false)
}

// inferFused is the int8 conv forward. The parallel decomposition is the
// same as the fp32 fast path — whole samples across the pool for batches,
// weight panels for batch 1 — with quantize+im2col fused into each
// sample's task so the int8 cols are consumed cache-hot.
func (q *QuantConv2D) inferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor {
	c := q.base
	checkRank(x, 4, "QuantConv2D.Infer")
	n, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != c.InC {
		panic(fmt.Sprintf("nn: QuantConv2D expects %d input channels, got %d", c.InC, ch))
	}
	if err := c.Geom.Validate(h, w); err != nil {
		panic(err)
	}
	oh, ow := c.Geom.OutSize(h, w)
	out := a.Get(n, c.OutC, oh, ow)
	kdim := c.InC * c.Geom.KH * c.Geom.KW
	ohw := oh * ow

	if n > 1 {
		qx := a.Int8(n * ch * h * w)
		cols := a.Int8(n * kdim * ohw)
		acc := a.Int64(n * 2 * ohw)
		t := &q.colsTask
		t.qx, t.cols, t.acc = qx, cols, acc
		t.x, t.out = x.Data(), out.Data()
		t.sampleStride, t.colStride, t.outStride = ch*h*w, kdim*ohw, c.OutC*ohw
		t.c, t.h, t.w, t.geom = ch, h, w, c.Geom
		t.packed, t.ohw = q.packed, ohw
		t.inInv, t.zp = q.inInv, q.inZP
		t.outScale, t.bias, t.relu = q.outScale, c.Bias.Value.Data(), relu
		tensor.ParallelRange(n, 1, t)
		return out
	}

	// Batch 1: quantize and lower once, spread the gemm over weight
	// panels. Each pool chunk reuses one 2×ohw packed accumulator region,
	// indexed by its first panel so concurrent chunks stay disjoint.
	qx := a.Int8(ch * h * w)
	tensor.QuantizeSlice(qx, x.Data(), q.inInv, q.inZP)
	cols := a.Int8(kdim * ohw)
	tensor.Im2ColSliceInt8(cols, qx, ch, h, w, c.Geom, int8(q.inZP))
	panels := q.packed.Panels()
	acc := a.Int64(panels * 2 * ohw)
	gt := &q.gemmTask
	gt.packed = q.packed
	gt.out, gt.cols, gt.acc = out.Data(), cols, acc
	gt.ohw = ohw
	gt.zp = q.inZP
	gt.outScale, gt.bias, gt.relu = q.outScale, c.Bias.Value.Data(), relu
	tensor.ParallelRange(panels, 1, gt)
	return out
}

// qconvColsTask processes whole samples [lo,hi): quantize the sample's
// input, lower it with the int8 im2col, and multiply through the packed
// int8 kernel while the cols region is cache-hot.
type qconvColsTask struct {
	qx, cols                           []int8
	acc                                []int64
	x, out                             []float32
	sampleStride, colStride, outStride int
	c, h, w                            int
	geom                               tensor.ConvGeom
	packed                             *tensor.PackedInt8
	ohw                                int
	inInv                              float32
	zp                                 int32
	outScale, bias                     []float32
	relu                               bool
}

func (t *qconvColsTask) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		qx := t.qx[i*t.sampleStride : (i+1)*t.sampleStride]
		tensor.QuantizeSlice(qx, t.x[i*t.sampleStride:(i+1)*t.sampleStride], t.inInv, t.zp)
		cols := t.cols[i*t.colStride : (i+1)*t.colStride]
		tensor.Im2ColSliceInt8(cols, qx, t.c, t.h, t.w, t.geom, int8(t.zp))
		t.packed.MulPanelsInto(t.out[i*t.outStride:(i+1)*t.outStride],
			cols, t.ohw, t.acc[i*2*t.ohw:(i+1)*2*t.ohw],
			t.zp, t.outScale, t.bias, t.relu, 0, t.packed.Panels())
	}
}

// qconvGemmTask runs the int8 micro-kernel over weight panels (batch 1).
type qconvGemmTask struct {
	packed         *tensor.PackedInt8
	out            []float32
	cols           []int8
	acc            []int64
	ohw            int
	zp             int32
	outScale, bias []float32
	relu           bool
}

func (t *qconvGemmTask) RunRange(lo, hi int) {
	t.packed.MulPanelsInto(t.out, t.cols, t.ohw,
		t.acc[lo*2*t.ohw:(lo+1)*2*t.ohw],
		t.zp, t.outScale, t.bias, t.relu, lo, hi)
}

// QuantLinear runs a Linear through the int8 pipeline: the batch input is
// quantized once, then per-(sample, panel) dot products accumulate in
// int32 registers and dequantize through the fused epilogue.
type QuantLinear struct {
	base     *Linear
	packed   *tensor.PackedInt8
	inInv    float32
	inZP     int32
	outScale []float32

	task qlinearTask
	fwd  *tensor.Arena
}

func newQuantLinear(l *Linear, obs *MinMaxObserver) (*QuantLinear, bool) {
	if obs == nil {
		return nil, false
	}
	scale, zp, ok := obs.QParams()
	if !ok {
		return nil, false
	}
	wq, ws := tensor.QuantizeSymmetricPerRow(l.Weight.Value)
	live := false
	outScale := make([]float32, l.Out)
	for r, s := range ws {
		outScale[r] = s * scale
		if s != 0 {
			live = true
		}
	}
	if !live {
		return nil, false
	}
	return &QuantLinear{
		base:     l,
		packed:   tensor.PackInt8(wq, l.Out, l.In),
		inInv:    1 / scale,
		inZP:     zp,
		outScale: outScale,
		fwd:      tensor.NewArena(),
	}, true
}

// Underlying implements the unwrap protocol.
func (q *QuantLinear) Underlying() Module { return q.base }

// Params implements Module.
func (q *QuantLinear) Params() []*Param { return q.base.Params() }

// OutShape implements Module.
func (q *QuantLinear) OutShape(in []int) []int { return q.base.OutShape(in) }

// Forward implements Module via the int8 kernels (see QuantConv2D.Forward).
func (q *QuantLinear) Forward(x *tensor.Tensor) *tensor.Tensor {
	q.fwd.Reset()
	return q.inferFused(x, q.fwd, false)
}

// Backward implements Module. Quantized layers are inference-only.
func (q *QuantLinear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	panic("nn: QuantLinear is inference-only and does not support Backward")
}

// cloneShared implements sharedCloner.
func (q *QuantLinear) cloneShared() Module {
	return &QuantLinear{
		base:     q.base,
		packed:   q.packed,
		inInv:    q.inInv,
		inZP:     q.inZP,
		outScale: q.outScale,
		fwd:      tensor.NewArena(),
	}
}

// Infer implements Inferencer.
func (q *QuantLinear) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return q.inferFused(x, a, false)
}

func (q *QuantLinear) inferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor {
	l := q.base
	checkRank(x, 2, "QuantLinear.Infer")
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: QuantLinear expects %d features, got %d", l.In, x.Dim(1)))
	}
	n := x.Dim(0)
	out := a.Get(n, l.Out)
	qx := a.Int8(n * l.In)
	tensor.QuantizeSlice(qx, x.Data(), q.inInv, q.inZP)
	t := &q.task
	t.packed = q.packed
	t.out, t.qx = out.Data(), qx
	t.outW, t.inW, t.panels = l.Out, l.In, q.packed.Panels()
	t.zp = q.inZP
	t.outScale, t.bias, t.relu = q.outScale, l.Bias.Value.Data(), relu
	tensor.ParallelRange(n*t.panels, 1, t)
	return out
}

// qlinearTask spreads per-sample int8 dot-product panels across the pool.
type qlinearTask struct {
	packed            *tensor.PackedInt8
	out               []float32
	qx                []int8
	outW, inW, panels int
	zp                int32
	outScale, bias    []float32
	relu              bool
}

func (t *qlinearTask) RunRange(lo, hi int) {
	for idx := lo; idx < hi; idx++ {
		i := idx / t.panels
		p := idx % t.panels
		t.packed.DotPanelInto(t.out[i*t.outW:(i+1)*t.outW], t.qx[i*t.inW:(i+1)*t.inW],
			p, t.zp, t.outScale, t.bias, t.relu)
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

// kernelTestNet is a conv stack with a winograd-eligible 3×3 stride-1
// layer, a strided layer (winograd-ineligible) and ReLU fusion points,
// so the dispatch test exercises both fused and unfused epilogues.
func kernelTestNet(rng *rand.Rand) *Sequential {
	return NewSequential(
		NewConv2D(rng, 3, 8, 3, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewConv2D(rng, 8, 12, 3, 1),
		NewReLU(),
	)
}

func netConvs(s *Sequential) []*Conv2D {
	var cs []*Conv2D
	for _, m := range s.Modules() {
		if c, ok := Unwrap(m).(*Conv2D); ok {
			cs = append(cs, c)
		}
	}
	return cs
}

// Every kernel choice must agree with the default im2col fast path
// through the full Infer chain — bitwise for the exact kernels, within
// float32 tolerance for Winograd — at batch 1 and batch 16.
func TestConvKernelDispatchParity(t *testing.T) {
	for _, k := range ConvKernels() {
		rng := rand.New(rand.NewSource(81))
		ref := kernelTestNet(rng)
		PrepareInference(ref)

		rng = rand.New(rand.NewSource(81))
		tuned := kernelTestNet(rng)
		for _, c := range netConvs(tuned) {
			if c.KernelEligible(k) {
				c.SetKernels(k, k)
			}
		}
		PrepareInference(tuned)

		ra, ta := tensor.NewArena(), tensor.NewArena()
		for _, n := range []int{1, 16} {
			x := randInput(rng, n, 3, 21, 19) // odd dims: winograd edge clip
			ra.Reset()
			ta.Reset()
			want := ref.Infer(x, ra)
			got := tuned.Infer(x, ta)
			for i := range want.Data() {
				wv, gv := want.Data()[i], got.Data()[i]
				if k.Exact() {
					if wv != gv {
						t.Fatalf("kernel %s batch %d: element %d = %v, want %v (bitwise)", k, n, i, gv, wv)
					}
					continue
				}
				diff := math.Abs(float64(gv - wv))
				tol := 1e-4 * math.Max(1, math.Abs(float64(wv)))
				if diff > tol {
					t.Fatalf("kernel %s batch %d: element %d = %v, want %v (diff %v)", k, n, i, gv, wv, diff)
				}
			}
		}
	}
}

// Kernel choices and their packed layouts must survive shared cloning,
// so every serving replica runs the tuned mix.
func TestConvKernelCloneSharedKeepsChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	net := kernelTestNet(rng)
	for _, c := range netConvs(net) {
		c.SetKernels(KernelDirect, KernelWinograd)
	}
	clone, err := CloneShared(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range netConvs(clone.(*Sequential)) {
		b1, bn := c.Kernels()
		if b1 != KernelDirect || bn != KernelWinograd {
			t.Fatalf("clone kernels = (%s, %s), want (direct, winograd)", b1, bn)
		}
	}
	// The clone must compute the same function as the original.
	x := randInput(rng, 2, 3, 12, 12)
	a1, a2 := tensor.NewArena(), tensor.NewArena()
	want := net.Infer(x, a1)
	got := clone.(*Sequential).Infer(x, a2)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("clone diverges at %d", i)
		}
	}
}

// Winograd eligibility is geometric: 3×3 stride-1 only, and legacy
// ConvDirect-algo layers are never retargetable.
func TestConvKernelEligibility(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	s1 := NewConv2D(rng, 3, 4, 3, 1)
	if !s1.KernelEligible(KernelWinograd) {
		t.Fatal("3x3 stride-1 conv must be winograd-eligible")
	}
	s2 := NewConv2D(rng, 3, 4, 3, 2)
	if s2.KernelEligible(KernelWinograd) {
		t.Fatal("strided conv must not be winograd-eligible")
	}
	k5 := NewConv2D(rng, 3, 4, 5, 1)
	if k5.KernelEligible(KernelWinograd) {
		t.Fatal("5x5 conv must not be winograd-eligible")
	}
	if !k5.KernelEligible(KernelNCHWc) || !k5.KernelEligible(KernelDirect) {
		t.Fatal("5x5 conv must be nchwc/direct-eligible")
	}
	legacy := NewConv2D(rng, 3, 4, 3, 1)
	legacy.Algo = ConvDirect
	for _, k := range ConvKernels() {
		if legacy.KernelEligible(k) {
			t.Fatalf("legacy ConvDirect layer must not be %s-eligible", k)
		}
	}
}

// PrepareInferenceParallel must leave the net in the same servable state
// as the serial PrepareInference.
func TestPrepareInferenceParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	serial := kernelTestNet(rng)
	rng = rand.New(rand.NewSource(84))
	par := kernelTestNet(rng)
	for _, net := range []*Sequential{serial, par} {
		for _, c := range netConvs(net) {
			c.SetKernels(KernelNCHWc, KernelWinograd)
		}
	}
	PrepareInference(serial)
	PrepareInferenceParallel(par)
	x := randInput(rng, 4, 3, 16, 16)
	a1, a2 := tensor.NewArena(), tensor.NewArena()
	want := serial.Infer(x, a1)
	got := par.Infer(x, a2)
	for i := range want.Data() {
		if want.Data()[i] != got.Data()[i] {
			t.Fatalf("parallel-prepared net diverges at %d", i)
		}
	}
}

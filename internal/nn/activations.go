package nn

import (
	"math"
	"math/rand"

	"drainnet/internal/tensor"
)

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	mask []bool
}

// NewReLU creates a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Module.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Module.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < out.Len() {
		r.mask = make([]bool, out.Len())
	}
	r.mask = r.mask[:out.Len()]
	for i, v := range out.Data() {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data()[i] = 0
		}
	}
	return out
}

// Backward implements Module.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := gradOut.Clone()
	for i := range gradIn.Data() {
		if !r.mask[i] {
			gradIn.Data()[i] = 0
		}
	}
	return gradIn
}

// Sigmoid is the logistic activation, applied elementwise. Training code
// prefers BCEWithLogits for numerical stability; Sigmoid is used at
// inference to turn logits into confidences.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid creates a sigmoid activation.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Params implements Module.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Module.
func (s *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Module.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	out.Apply(sigmoid)
	s.out = out
	return out
}

// Backward implements Module.
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := gradOut.Clone()
	for i, g := range gradIn.Data() {
		y := s.out.Data()[i]
		gradIn.Data()[i] = g * y * (1 - y)
	}
	return gradIn
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Dropout randomly zeroes activations during training with probability P
// and rescales survivors by 1/(1-P) (inverted dropout). In eval mode it is
// the identity.
type Dropout struct {
	P        float64
	Training bool
	rng      *rand.Rand
	mask     []bool
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, Training: true, rng: rng}
}

// Params implements Module.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Module.
func (d *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// Forward implements Module.
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.Training || d.P == 0 {
		return x
	}
	out := x.Clone()
	if cap(d.mask) < out.Len() {
		d.mask = make([]bool, out.Len())
	}
	d.mask = d.mask[:out.Len()]
	scale := float32(1 / (1 - d.P))
	for i := range out.Data() {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
			out.Data()[i] = 0
		} else {
			d.mask[i] = true
			out.Data()[i] *= scale
		}
	}
	return out
}

// Backward implements Module.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if !d.Training || d.P == 0 {
		return gradOut
	}
	gradIn := gradOut.Clone()
	scale := float32(1 / (1 - d.P))
	for i := range gradIn.Data() {
		if d.mask[i] {
			gradIn.Data()[i] *= scale
		} else {
			gradIn.Data()[i] = 0
		}
	}
	return gradIn
}

// cloneShared implements sharedCloner.
func (r *ReLU) cloneShared() Module { return NewReLU() }

// Infer implements Inferencer: elementwise clamp without the backward mask.
func (r *ReLU) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	out := a.Get(x.Shape()...)
	od, xd := out.Data(), x.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return out
}

// cloneShared implements sharedCloner.
func (s *Sigmoid) cloneShared() Module { return NewSigmoid() }

// Infer implements Inferencer.
func (s *Sigmoid) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	out := a.Get(x.Shape()...)
	od, xd := out.Data(), x.Data()
	for i, v := range xd {
		od[i] = sigmoid(v)
	}
	return out
}

// cloneShared implements sharedCloner: replicas are inference-only, so
// the clone is permanently in eval mode and never touches the rng.
func (d *Dropout) cloneShared() Module {
	return &Dropout{P: d.P, Training: false, rng: d.rng}
}

// Infer implements Inferencer: dropout is the identity at inference.
func (d *Dropout) Infer(x *tensor.Tensor, _ *tensor.Arena) *tensor.Tensor { return x }

package nn

import (
	"math"
	"math/rand"
	"testing"

	"drainnet/internal/tensor"
)

func maskTestConv(t *testing.T, k, stride int) *Conv2D {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	c := NewConv2D(rng, 3, 10, k, stride)
	for i := range c.Bias.Value.Data() {
		c.Bias.Value.Data()[i] = float32(i%5)*0.1 - 0.2
	}
	return c
}

// With a threshold below any real activation energy every band stays
// active, and the masked kernel must be bit-identical to the im2col
// reference — the masked GEMM computes the same columns in the same
// accumulation order.
func TestMaskedConvAllActiveBitwise(t *testing.T) {
	for _, relu := range []bool{false, true} {
		for _, n := range []int{1, 4} {
			c := maskTestConv(t, 3, 1)
			ref := c.cloneShared().(*Conv2D)
			c.SetMask(ConvMask{BandRows: 3, Threshold: 1e-20})
			c.SetKernels(KernelMasked, KernelMasked)

			rng := rand.New(rand.NewSource(31))
			x := tensor.New(n, 3, 17, 13)
			for i := range x.Data() {
				x.Data()[i] = float32(rng.NormFloat64())
			}
			a1, a2 := tensor.NewArena(), tensor.NewArena()
			got := c.inferFused(x, a1, relu)
			want := ref.inferFused(x, a2, relu)
			for i := range want.Data() {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("relu=%v n=%d: masked all-active differs at %d: %v vs %v",
						relu, n, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

// A spatially constant input has zero deviation energy: every interior
// band masks, and the flat-response fill matches the exact conv output
// to float tolerance (same math, different accumulation order).
func TestMaskedConvFlatInputMasksAndApproximates(t *testing.T) {
	for _, n := range []int{1, 5} {
		c := maskTestConv(t, 3, 1)
		ref := c.cloneShared().(*Conv2D)
		stats := &MaskStats{}
		c.SetMask(ConvMask{BandRows: 4, Stats: stats})
		c.SetKernels(KernelMasked, KernelMasked)

		x := tensor.New(n, 3, 20, 15)
		for i := range x.Data() {
			ch := (i / (20 * 15)) % 3
			x.Data()[i] = 0.2 + 0.3*float32(ch)
		}
		a1, a2 := tensor.NewArena(), tensor.NewArena()
		got := c.inferFused(x, a1, true)
		want := ref.inferFused(x, a2, true)
		var maxErr float64
		for i := range want.Data() {
			d := math.Abs(float64(got.Data()[i] - want.Data()[i]))
			if d > maxErr {
				maxErr = d
			}
		}
		if maxErr > 1e-4 {
			t.Fatalf("n=%d: flat-input masked output off by %v", n, maxErr)
		}
		masked, total := stats.Counts()
		if total == 0 || masked == 0 {
			t.Fatalf("n=%d: expected masked bands on flat input, got %d/%d", n, masked, total)
		}
		// Only the two padding-adjacent bands per sample may stay active.
		if int(total-masked) > 2*n {
			t.Fatalf("n=%d: too few masked bands: %d/%d", n, masked, total)
		}
	}
}

// cloneShared must carry the mask spec and shared stats so batcher
// replicas keep masking and report into one counter.
func TestMaskedCloneSharedKeepsMask(t *testing.T) {
	c := maskTestConv(t, 3, 1)
	stats := &MaskStats{}
	c.SetMask(ConvMask{BandRows: 2, Threshold: 0.5, Stats: stats})
	c.SetKernels(KernelMasked, KernelMasked)
	cl := c.cloneShared().(*Conv2D)
	m := cl.Mask()
	if m.BandRows != 2 || m.Threshold != 0.5 || m.Stats != stats {
		t.Fatalf("cloneShared dropped mask spec: %+v", m)
	}
	if b1, bn := cl.Kernels(); b1 != KernelMasked || bn != KernelMasked {
		t.Fatalf("cloneShared dropped kernels: %s %s", b1, bn)
	}
	if !cl.KernelEligible(KernelMasked) {
		t.Fatal("clone not eligible for masked kernel")
	}
}

// InferRange split at any non-fused boundary must equal one full Infer.
func TestInferRangeSplitMatchesInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := NewSequential(
		NewConv2D(rng, 2, 6, 3, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewConv2D(rng, 6, 8, 3, 1),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewSPP(2, 1),
		NewLinear(rng, 8*5, 7),
		NewReLU(),
		NewLinear(rng, 7, 5),
	)
	PrepareInference(net)
	x := tensor.New(3, 2, 16, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	aRef := tensor.NewArena()
	want := net.Infer(x, aRef)
	// Split at the SPP boundary (the dynamic path's seam) and at the
	// first pool: both are non-fused boundaries.
	for _, cut := range []int{3, 6} {
		a := tensor.NewArena()
		mid := net.InferRange(x, a, 0, cut)
		got := net.InferRange(mid, a, cut, len(net.Modules()))
		if got.Len() != want.Len() {
			t.Fatalf("cut %d: length %d vs %d", cut, got.Len(), want.Len())
		}
		for i := range want.Data() {
			if got.Data()[i] != want.Data()[i] {
				t.Fatalf("cut %d: differs at %d", cut, i)
			}
		}
	}
}

package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"drainnet/internal/graph"
	"drainnet/internal/ios"
	"drainnet/internal/tensor"
)

// buildSPPPair constructs matching (network, graph) with the branched
// SPP structure the scheduler exploits. stride applies to the second
// conv so tests cover stride>1 feature maps.
func buildSPPPair(t *testing.T, rng *rand.Rand, stride int) (*Sequential, *graph.Graph) {
	t.Helper()
	const (
		inC, size = 3, 21
		c1, c2    = 6, 10
		fcw, head = 24, 5
	)
	net := NewSequential()
	net.Add(NewConv2D(rng, inC, c1, 3, 1))
	net.Add(NewReLU())
	net.Add(NewMaxPool2D(2, 2))
	net.Add(NewConv2D(rng, c1, c2, 3, stride))
	net.Add(NewReLU())
	spp := NewSPP(3, 2, 1)
	net.Add(spp)
	net.Add(NewLinear(rng, spp.OutFeatures(c2), fcw))
	net.Add(NewReLU())
	net.Add(NewLinear(rng, fcw, head))

	g := graph.NewGraph("spp-test", inC, size, size)
	x := g.Conv(g.In, "conv1", c1, 3, 1)
	x = g.Pool(x, "pool1", 2, 2)
	x = g.Conv(x, "conv2", c2, 3, stride)
	var branches []*graph.Node
	for _, l := range []int{3, 2, 1} {
		branches = append(branches, g.AdaptivePool(x, "spp", l))
	}
	cat := g.Concat(branches, "spp_concat")
	h := g.FC(cat, "fc1", fcw)
	g.FC(h, "head", head)
	if err := g.Validate(); err != nil {
		t.Fatalf("graph: %v", err)
	}
	return net, g
}

// assertBitwiseEqual fails unless got and want agree on shape and on
// every element's exact bit pattern.
func assertBitwiseEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf("%s: size %d != %d", label, len(gd), len(wd))
	}
	for i := range gd {
		if math.Float32bits(gd[i]) != math.Float32bits(wd[i]) {
			t.Fatalf("%s: element %d differs: %g (%#x) != %g (%#x)",
				label, i, gd[i], math.Float32bits(gd[i]), wd[i], math.Float32bits(wd[i]))
		}
	}
}

func TestCompileGraphRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, g := buildSPPPair(t, rng, 1)
	// A trailing module the graph does not represent must fail.
	net2 := NewSequential()
	for _, m := range net.Modules() {
		net2.Add(m)
	}
	net2.Add(NewLinear(rng, 5, 5))
	if _, err := CompileGraph(net2, g); err == nil {
		t.Fatal("CompileGraph accepted a network with trailing modules")
	}
	// A wrong-width conv must fail the shape check.
	net3 := NewSequential()
	net3.Add(NewConv2D(rng, 3, 7, 3, 1))
	for _, m := range net.Modules()[1:] {
		net3.Add(m)
	}
	if _, err := CompileGraph(net3, g); err == nil {
		t.Fatal("CompileGraph accepted a channel mismatch")
	}
}

// TestScheduleExecutorMatchesInfer checks the three canonical schedules
// (sequential, greedy ASAP levels, IOS-optimized via a fake oracle is
// covered by the property test) at batch 1 and 16, with stride 1 and 2.
func TestScheduleExecutorMatchesInfer(t *testing.T) {
	for _, stride := range []int{1, 2} {
		rng := rand.New(rand.NewSource(int64(7 + stride)))
		net, g := buildSPPPair(t, rng, stride)
		PrepareInference(net)
		prog, err := CompileGraph(net, g)
		if err != nil {
			t.Fatalf("compile (stride %d): %v", stride, err)
		}
		for _, sched := range []*ios.Schedule{ios.SequentialSchedule(g), ios.GreedySchedule(g)} {
			exec, err := NewScheduleExecutor(prog, sched)
			if err != nil {
				t.Fatalf("executor %s: %v", sched.Name, err)
			}
			for _, batch := range []int{1, 16} {
				x := randInput(rng, batch, 3, 21, 21)
				wantArena, gotArena := tensor.NewArena(), tensor.NewArena()
				want := net.Infer(x, wantArena)
				got := exec.Infer(x, gotArena)
				assertBitwiseEqual(t, sched.Name, got, want)
			}
		}
	}
}

// randomSchedule generates a valid random stage partition of g: nodes
// are taken in topological order; stages close at random; within a
// stage a node chains onto the group holding its in-stage dependency
// (required for validity) or lands in a random or fresh group.
func randomSchedule(g *graph.Graph, rng *rand.Rand) *ios.Schedule {
	var stages []ios.Stage
	cur := ios.Stage{}
	pos := map[int][2]int{} // node ID -> (group, index) within cur
	flush := func() {
		if len(cur.Groups) > 0 {
			stages = append(stages, cur)
			cur = ios.Stage{}
			pos = map[int][2]int{}
		}
	}
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			continue
		}
		if rng.Intn(3) == 0 {
			flush()
		}
		// A dependency inside the current stage forces chaining onto its
		// group — and only works when it is that group's tail.
		forced, valid := -1, true
		for _, dep := range n.Inputs {
			p, in := pos[dep.ID]
			if !in {
				continue
			}
			if p[1] != len(cur.Groups[p[0]])-1 || (forced != -1 && forced != p[0]) {
				valid = false
				break
			}
			forced = p[0]
		}
		if !valid {
			flush()
			forced = -1
		}
		switch {
		case forced >= 0:
			cur.Groups[forced] = append(cur.Groups[forced], n)
			pos[n.ID] = [2]int{forced, len(cur.Groups[forced]) - 1}
		case len(cur.Groups) > 0 && rng.Intn(2) == 0:
			gi := rng.Intn(len(cur.Groups))
			cur.Groups[gi] = append(cur.Groups[gi], n)
			pos[n.ID] = [2]int{gi, len(cur.Groups[gi]) - 1}
		default:
			cur.Groups = append(cur.Groups, ios.Group{n})
			pos[n.ID] = [2]int{len(cur.Groups) - 1, 0}
		}
	}
	flush()
	return &ios.Schedule{Name: "random", Stages: stages}
}

// TestScheduleExecutorPartitionProperty is the property test: ANY valid
// stage partition of the SPP DAG — random stage boundaries, random
// groupings, stride-1 and stride-2 variants — executed by the
// ScheduleExecutor must reproduce Sequential.Infer bit for bit at batch
// 1 and 16.
func TestScheduleExecutorPartitionProperty(t *testing.T) {
	for _, stride := range []int{1, 2} {
		rng := rand.New(rand.NewSource(int64(40 + stride)))
		net, g := buildSPPPair(t, rng, stride)
		PrepareInference(net)
		prog, err := CompileGraph(net, g)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		x1 := randInput(rng, 1, 3, 21, 21)
		x16 := randInput(rng, 16, 3, 21, 21)
		seqArena := tensor.NewArena()
		want1 := net.Infer(x1, seqArena).Clone()
		seqArena.Reset()
		want16 := net.Infer(x16, seqArena).Clone()
		for trial := 0; trial < 25; trial++ {
			sched := randomSchedule(g, rng)
			if err := sched.Validate(g); err != nil {
				t.Fatalf("trial %d generated an invalid schedule: %v", trial, err)
			}
			exec, err := NewScheduleExecutor(prog, sched)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			a := tensor.NewArena()
			assertBitwiseEqual(t, sched.String(), exec.Infer(x1, a), want1)
			a.Reset()
			assertBitwiseEqual(t, sched.String(), exec.Infer(x16, a), want16)
		}
	}
}

// TestScheduleExecutorStageHook checks the hook fires exactly once per
// scheduled group with consistent indices and labels, and that the
// hooked run still matches the plain one bitwise.
func TestScheduleExecutorStageHook(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, g := buildSPPPair(t, rng, 1)
	PrepareInference(net)
	prog, err := CompileGraph(net, g)
	if err != nil {
		t.Fatal(err)
	}
	sched := ios.GreedySchedule(g)
	exec, err := NewScheduleExecutor(prog, sched)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[[2]int]string{}
	x := randInput(rng, 2, 3, 21, 21)
	a := tensor.NewArena()
	got := exec.InferWithHook(x, a, func(stage, group, groups int, label string, start time.Time, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if groups != len(sched.Stages[stage].Groups) {
			t.Errorf("stage %d reported %d groups, schedule has %d", stage, groups, len(sched.Stages[stage].Groups))
		}
		if d < 0 || start.IsZero() {
			t.Errorf("stage %d group %d: bad timing start=%v dur=%v", stage, group, start, d)
		}
		if prev, dup := seen[[2]int{stage, group}]; dup {
			t.Errorf("stage %d group %d ran twice (%s, %s)", stage, group, prev, label)
		}
		seen[[2]int{stage, group}] = label
	})
	want := net.Infer(x, tensor.NewArena())
	assertBitwiseEqual(t, "hooked", got, want)
	total := 0
	for _, st := range sched.Stages {
		total += len(st.Groups)
	}
	if len(seen) != total {
		t.Fatalf("hook fired for %d groups, schedule has %d", len(seen), total)
	}
}

func TestMeasuredOracleOverProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, g := buildSPPPair(t, rng, 1)
	PrepareInference(net)
	prog, err := CompileGraph(net, g)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ios.NewMeasuredOracle(prog, nil)
	oracle.Warmup, oracle.Samples, oracle.MinSampleNs = 0, 4, 1e3 // fast test settings
	sched, err := ios.Optimize(g, oracle, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Err(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if oracle.Cache().Len() == 0 {
		t.Fatal("oracle measured nothing")
	}
	exec, err := NewScheduleExecutor(prog, sched)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 2, 3, 21, 21)
	a := tensor.NewArena()
	want := net.Infer(x, tensor.NewArena())
	assertBitwiseEqual(t, "measured-optimized", exec.Infer(x, a), want)
}

package nn

import (
	"fmt"
	"math"

	"drainnet/internal/tensor"
)

// MaxPool2D is a max pooling layer over N×C×H×W input with a square
// window, matching the paper's P_{size,stride} notation.
type MaxPool2D struct {
	Geom tensor.ConvGeom

	inShape []int
	argmax  []int32 // flat input index chosen for each output element

	task maxPoolTask // inference dispatch, reused across calls
}

// NewMaxPool2D creates a k×k max pool with the given stride and no padding.
func NewMaxPool2D(k, stride int) *MaxPool2D {
	return &MaxPool2D{Geom: tensor.ConvGeom{KH: k, KW: k, StrideH: stride, StrideW: stride}}
}

// Params implements Module.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Module.
func (p *MaxPool2D) OutShape(in []int) []int {
	oh, ow := p.Geom.OutSize(in[2], in[3])
	return []int{in[0], in[1], oh, ow}
}

// Forward implements Module.
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 4, "MaxPool2D")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if err := p.Geom.Validate(h, w); err != nil {
		panic(err)
	}
	oh, ow := p.Geom.OutSize(h, w)
	p.inShape = append([]int(nil), x.Shape()...)
	out := tensor.New(n, c, oh, ow)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int32, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	g := p.Geom
	xd := x.Data()
	od := out.Data()
	tensor.ParallelFor(n*c, func(nc int) {
		inBase := nc * h * w
		outBase := nc * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bestAt := int32(-1)
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH + kh
					if iy >= h {
						break
					}
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW + kw
						if ix >= w {
							break
						}
						v := xd[inBase+iy*w+ix]
						if v > best {
							best = v
							bestAt = int32(inBase + iy*w + ix)
						}
					}
				}
				od[outBase+oy*ow+ox] = best
				p.argmax[outBase+oy*ow+ox] = bestAt
			}
		}
	})
	return out
}

// Backward implements Module.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(p.inShape...)
	gd := gradOut.Data()
	gi := gradIn.Data()
	if len(gd) != len(p.argmax) {
		panic(fmt.Sprintf("nn: MaxPool2D.Backward gradient length %d, want %d", len(gd), len(p.argmax)))
	}
	for i, at := range p.argmax {
		if at >= 0 {
			gi[at] += gd[i]
		}
	}
	return gradIn
}

// AdaptiveMaxPool2D pools an N×C×H×W input to a fixed N×C×OutH×OutW output
// using PyTorch-style adaptive bins: bin i covers
// [floor(i*H/Out), ceil((i+1)*H/Out)). This is the building block of the
// SPP layer, which is what lets SPP-Net accept arbitrary input sizes.
type AdaptiveMaxPool2D struct {
	OutH, OutW int

	inShape []int
	argmax  []int32

	task adaptivePoolTask // inference dispatch, reused across calls
}

// NewAdaptiveMaxPool2D creates an adaptive max pool with an out×out target.
func NewAdaptiveMaxPool2D(out int) *AdaptiveMaxPool2D {
	return &AdaptiveMaxPool2D{OutH: out, OutW: out}
}

// Params implements Module.
func (p *AdaptiveMaxPool2D) Params() []*Param { return nil }

// OutShape implements Module.
func (p *AdaptiveMaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1], p.OutH, p.OutW}
}

func binBounds(i, in, out int) (lo, hi int) {
	lo = i * in / out
	hi = ((i+1)*in + out - 1) / out
	if hi > in {
		hi = in
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

// Forward implements Module.
func (p *AdaptiveMaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 4, "AdaptiveMaxPool2D")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h < 1 || w < 1 {
		panic("nn: AdaptiveMaxPool2D empty input")
	}
	p.inShape = append([]int(nil), x.Shape()...)
	out := tensor.New(n, c, p.OutH, p.OutW)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int32, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	xd := x.Data()
	od := out.Data()
	tensor.ParallelFor(n*c, func(nc int) {
		inBase := nc * h * w
		outBase := nc * p.OutH * p.OutW
		for oy := 0; oy < p.OutH; oy++ {
			y0, y1 := binBounds(oy, h, p.OutH)
			for ox := 0; ox < p.OutW; ox++ {
				x0, x1 := binBounds(ox, w, p.OutW)
				best := float32(math.Inf(-1))
				bestAt := int32(-1)
				for iy := y0; iy < y1; iy++ {
					for ix := x0; ix < x1; ix++ {
						v := xd[inBase+iy*w+ix]
						if v > best {
							best = v
							bestAt = int32(inBase + iy*w + ix)
						}
					}
				}
				od[outBase+oy*p.OutW+ox] = best
				p.argmax[outBase+oy*p.OutW+ox] = bestAt
			}
		}
	})
	return out
}

// Backward implements Module.
func (p *AdaptiveMaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(p.inShape...)
	gd := gradOut.Data()
	gi := gradIn.Data()
	for i, at := range p.argmax {
		if at >= 0 {
			gi[at] += gd[i]
		}
	}
	return gradIn
}

// cloneShared implements sharedCloner.
func (p *MaxPool2D) cloneShared() Module { return &MaxPool2D{Geom: p.Geom} }

// Infer implements Inferencer: max pooling without the argmax map.
func (p *MaxPool2D) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	checkRank(x, 4, "MaxPool2D.Infer")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if err := p.Geom.Validate(h, w); err != nil {
		panic(err)
	}
	oh, ow := p.Geom.OutSize(h, w)
	out := a.Get(n, c, oh, ow)
	t := &p.task
	t.x, t.out = x.Data(), out.Data()
	t.h, t.w, t.oh, t.ow = h, w, oh, ow
	t.geom = p.Geom
	tensor.ParallelRange(n*c, 1, t)
	return out
}

// maxPoolTask computes max pooling for channel planes [lo,hi).
type maxPoolTask struct {
	x, out       []float32
	h, w, oh, ow int
	geom         tensor.ConvGeom
}

func (t *maxPoolTask) RunRange(lo, hi int) {
	g := t.geom
	for nc := lo; nc < hi; nc++ {
		inBase := nc * t.h * t.w
		outBase := nc * t.oh * t.ow
		for oy := 0; oy < t.oh; oy++ {
			for ox := 0; ox < t.ow; ox++ {
				best := float32(math.Inf(-1))
				for kh := 0; kh < g.KH; kh++ {
					iy := oy*g.StrideH + kh
					if iy >= t.h {
						break
					}
					for kw := 0; kw < g.KW; kw++ {
						ix := ox*g.StrideW + kw
						if ix >= t.w {
							break
						}
						if v := t.x[inBase+iy*t.w+ix]; v > best {
							best = v
						}
					}
				}
				t.out[outBase+oy*t.ow+ox] = best
			}
		}
	}
}

// cloneShared implements sharedCloner.
func (p *AdaptiveMaxPool2D) cloneShared() Module {
	return &AdaptiveMaxPool2D{OutH: p.OutH, OutW: p.OutW}
}

// Infer implements Inferencer: adaptive max pooling without the argmax map.
func (p *AdaptiveMaxPool2D) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	checkRank(x, 4, "AdaptiveMaxPool2D.Infer")
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h < 1 || w < 1 {
		panic("nn: AdaptiveMaxPool2D empty input")
	}
	out := a.Get(n, c, p.OutH, p.OutW)
	t := &p.task
	t.x, t.out = x.Data(), out.Data()
	t.h, t.w, t.oh, t.ow = h, w, p.OutH, p.OutW
	tensor.ParallelRange(n*c, 1, t)
	return out
}

// adaptivePoolTask computes adaptive pooling for channel planes [lo,hi).
type adaptivePoolTask struct {
	x, out       []float32
	h, w, oh, ow int
}

func (t *adaptivePoolTask) RunRange(lo, hi int) {
	for nc := lo; nc < hi; nc++ {
		inBase := nc * t.h * t.w
		outBase := nc * t.oh * t.ow
		for oy := 0; oy < t.oh; oy++ {
			y0, y1 := binBounds(oy, t.h, t.oh)
			for ox := 0; ox < t.ow; ox++ {
				x0, x1 := binBounds(ox, t.w, t.ow)
				best := float32(math.Inf(-1))
				for iy := y0; iy < y1; iy++ {
					for ix := x0; ix < x1; ix++ {
						if v := t.x[inBase+iy*t.w+ix]; v > best {
							best = v
						}
					}
				}
				t.out[outBase+oy*t.ow+ox] = best
			}
		}
	}
}

// Package nn implements the neural-network layers used by drainnet's
// SPP-Net models: convolution, max pooling, adaptive pooling, spatial
// pyramid pooling, fully-connected layers, activations, and the detection
// losses. Every layer implements both a forward and a hand-derived
// backward pass; the backward passes are verified against numerical
// gradients in the test suite.
//
// Layers cache forward activations needed by the next Backward call, so a
// single layer instance must not be used from multiple goroutines
// concurrently. Batched data uses N×C×H×W layout for images and N×F for
// flat features.
package nn

import (
	"fmt"

	"drainnet/internal/tensor"
)

// Param is a trainable parameter: a value tensor and its gradient
// accumulator of identical shape.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed value and gradient.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Module is a differentiable network component.
type Module interface {
	// Forward consumes the input and returns the output, caching whatever
	// intermediate state Backward needs.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients along the way. It must be called after Forward.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the module's trainable parameters (possibly empty).
	Params() []*Param
	// OutShape returns the output shape for a given input shape, without
	// running the computation. It is used for graph construction and
	// validation.
	OutShape(in []int) []int
}

// Sequential chains modules, feeding each output to the next input.
type Sequential struct {
	mods []Module
}

// NewSequential builds a sequential container over the given modules.
func NewSequential(mods ...Module) *Sequential {
	return &Sequential{mods: mods}
}

// Add appends a module to the chain.
func (s *Sequential) Add(m Module) { s.mods = append(s.mods, m) }

// Modules returns the contained modules in order.
func (s *Sequential) Modules() []Module { return s.mods }

// Forward implements Module.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.mods) - 1; i >= 0; i-- {
		gradOut = s.mods[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, m := range s.mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// OutShape implements Module.
func (s *Sequential) OutShape(in []int) []int {
	for _, m := range s.mods {
		in = m.OutShape(in)
	}
	return in
}

// ZeroGrad clears every parameter gradient in the container.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func ParamCount(m Module) int {
	n := 0
	for _, p := range m.Params() {
		n += p.Value.Len()
	}
	return n
}

func checkRank(x *tensor.Tensor, rank int, who string) {
	if x.Rank() != rank {
		panic(fmt.Sprintf("nn: %s expects rank-%d input, got shape %v", who, rank, x.Shape()))
	}
}

package nn

import (
	"fmt"
	"math/rand"

	"drainnet/internal/tensor"
)

// ConvAlgo selects the convolution implementation.
type ConvAlgo int

const (
	// ConvIm2Col lowers the convolution to a matrix multiply (default;
	// fastest for the layer sizes in this repo).
	ConvIm2Col ConvAlgo = iota
	// ConvDirect computes the convolution with direct nested loops. Kept
	// for the im2col-vs-direct ablation (DESIGN.md §5.3).
	ConvDirect
)

// Conv2D is a 2-D convolution over N×C×H×W input producing N×OC×OH×OW.
type Conv2D struct {
	InC, OutC int
	Geom      tensor.ConvGeom
	Algo      ConvAlgo

	Weight *Param // OC×C×KH×KW
	Bias   *Param // OC

	// forward cache
	inShape []int
	cols    []*tensor.Tensor // per-sample lowered input (im2col path)
	input   *tensor.Tensor   // retained for the direct path

	// inference fast path: weights packed once (shared across replicas)
	// and reusable task descriptors so Infer dispatches allocation-free.
	packed   *tensor.Packed
	colsTask convColsTask
	gemmTask convGemmTask

	// per-bucket kernel choice (autotuner-selected; im2col by default)
	// plus the alternate weight layouts those kernels read. Packed
	// layouts are immutable and shared across replicas; task descriptors
	// are per-replica.
	kernB1, kernBN ConvKernel
	wino           *tensor.Winograd
	nchwc          *tensor.PackedNCHWc
	winoBatch      winoBatchTask
	winoIn         winoInTask
	winoMul        winoMulTask
	winoOut        winoOutTask
	nchwcBatch     nchwcBatchTask
	nchwcB1        nchwcBlockTask
	directBatch    directBatchTask
	directB1       directChanTask

	// spatial mask spec for KernelMasked (set via SetMask): band height in
	// output rows, the mean-abs-deviation energy threshold gating each
	// band, shared per-(out,in)-channel kernel sums (wsum) plus 2D
	// prefix-sum tables over kernel taps (wpre) for the flat-response
	// fills, and the shared cumulative skip counters.
	maskBand    int
	maskThresh  float32
	maskStats   *MaskStats
	wsum        []float32
	wpre        []float32
	maskedBatch maskedBatchTask
	maskedB1    maskedBandTask
}

// NewConv2D creates a convolution layer with He initialization. Kernel is
// square (k×k) with the given stride; padding defaults to "same-ish"
// (k/2) which preserves spatial size at stride 1, matching the paper's
// architecture notation C_{filters,k,stride}.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride int) *Conv2D {
	return NewConv2DPad(rng, inC, outC, k, stride, k/2)
}

// NewConv2DPad creates a convolution layer with explicit padding.
func NewConv2DPad(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		InC:    inC,
		OutC:   outC,
		Geom:   tensor.ConvGeom{KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad},
		Weight: NewParam(fmt.Sprintf("conv%dx%d_w", outC, k), outC, inC, k, k),
		Bias:   NewParam(fmt.Sprintf("conv%dx%d_b", outC, k), outC),
	}
	c.Weight.Value.KaimingInit(rng, inC*k*k)
	return c
}

// Params implements Module.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// OutShape implements Module.
func (c *Conv2D) OutShape(in []int) []int {
	oh, ow := c.Geom.OutSize(in[2], in[3])
	return []int{in[0], c.OutC, oh, ow}
}

// Forward implements Module.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 4, "Conv2D")
	n, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, ch))
	}
	if err := c.Geom.Validate(h, w); err != nil {
		panic(err)
	}
	c.inShape = append([]int(nil), x.Shape()...)
	oh, ow := c.Geom.OutSize(h, w)
	out := tensor.New(n, c.OutC, oh, ow)

	if c.Algo == ConvDirect {
		c.input = x
		c.forwardDirect(x, out)
		return out
	}

	wmat := c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW)
	if cap(c.cols) < n {
		c.cols = make([]*tensor.Tensor, n)
	}
	// Release per-sample buffers beyond this batch so the cache tracks the
	// current batch size instead of pinning the largest batch ever seen.
	for i := n; i < cap(c.cols); i++ {
		c.cols[:cap(c.cols)][i] = nil
	}
	c.cols = c.cols[:n]
	outStride := c.OutC * oh * ow
	tensor.ParallelFor(n, func(i int) {
		img := tensor.FromSlice(x.Data()[i*ch*h*w:(i+1)*ch*h*w], ch, h, w)
		if c.cols[i] == nil || c.cols[i].Dim(0) != wmat.Dim(1) || c.cols[i].Dim(1) != oh*ow {
			c.cols[i] = tensor.New(wmat.Dim(1), oh*ow)
		}
		tensor.Im2ColInto(c.cols[i], img, c.Geom)
		res := tensor.FromSlice(out.Data()[i*outStride:(i+1)*outStride], c.OutC, oh*ow)
		tensor.MatMulInto(res, wmat, c.cols[i])
		// Add bias per output channel.
		for o := 0; o < c.OutC; o++ {
			b := c.Bias.Value.Data()[o]
			row := res.Data()[o*oh*ow : (o+1)*oh*ow]
			for j := range row {
				row[j] += b
			}
		}
	})
	return out
}

func (c *Conv2D) forwardDirect(x, out *tensor.Tensor) {
	n := x.Dim(0)
	h, w := x.Dim(2), x.Dim(3)
	oh, ow := c.Geom.OutSize(h, w)
	g := c.Geom
	tensor.ParallelFor(n, func(i int) {
		for o := 0; o < c.OutC; o++ {
			bias := c.Bias.Value.Data()[o]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := bias
					for ch := 0; ch < c.InC; ch++ {
						for kh := 0; kh < g.KH; kh++ {
							iy := oy*g.StrideH - g.PadH + kh
							if iy < 0 || iy >= h {
								continue
							}
							for kw := 0; kw < g.KW; kw++ {
								ix := ox*g.StrideW - g.PadW + kw
								if ix < 0 || ix >= w {
									continue
								}
								s += c.Weight.Value.At(o, ch, kh, kw) * x.At(i, ch, iy, ix)
							}
						}
					}
					out.Set(s, i, o, oy, ox)
				}
			}
		}
	})
}

// Backward implements Module.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	checkRank(gradOut, 4, "Conv2D.Backward")
	n, ch, h, w := c.inShape[0], c.inShape[1], c.inShape[2], c.inShape[3]
	oh, ow := c.Geom.OutSize(h, w)
	gradIn := tensor.New(n, ch, h, w)

	if c.Algo == ConvDirect {
		c.backwardDirect(gradOut, gradIn)
		return gradIn
	}

	wmat := c.Weight.Value.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW)
	outStride := c.OutC * oh * ow
	inStride := ch * h * w

	// Weight/bias gradients are accumulated across samples; do that part
	// serially to avoid racing on the shared Grad tensors, but compute the
	// per-sample input gradients in parallel first.
	dcols := make([]*tensor.Tensor, n)
	tensor.ParallelFor(n, func(i int) {
		g := tensor.FromSlice(gradOut.Data()[i*outStride:(i+1)*outStride], c.OutC, oh*ow)
		// dCols = Wᵀ · dOut
		dcols[i] = tensor.MatMulTransA(wmat, g)
		gi := tensor.FromSlice(gradIn.Data()[i*inStride:(i+1)*inStride], ch, h, w)
		tensor.Col2ImInto(gi, dcols[i], c.Geom)
	})
	dwmat := c.Weight.Grad.Reshape(c.OutC, c.InC*c.Geom.KH*c.Geom.KW)
	for i := 0; i < n; i++ {
		g := tensor.FromSlice(gradOut.Data()[i*outStride:(i+1)*outStride], c.OutC, oh*ow)
		// dW += dOut · colsᵀ
		dw := tensor.MatMulTransB(g, c.cols[i])
		dwmat.AddScaled(dw, 1)
		// dB += row sums of dOut
		for o := 0; o < c.OutC; o++ {
			var s float64
			row := g.Data()[o*oh*ow : (o+1)*oh*ow]
			for _, v := range row {
				s += float64(v)
			}
			c.Bias.Grad.Data()[o] += float32(s)
		}
	}
	return gradIn
}

func (c *Conv2D) backwardDirect(gradOut, gradIn *tensor.Tensor) {
	n := c.inShape[0]
	h, w := c.inShape[2], c.inShape[3]
	oh, ow := c.Geom.OutSize(h, w)
	g := c.Geom
	x := c.input
	for i := 0; i < n; i++ {
		for o := 0; o < c.OutC; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := gradOut.At(i, o, oy, ox)
					if gv == 0 {
						continue
					}
					c.Bias.Grad.Data()[o] += gv
					for ch := 0; ch < c.InC; ch++ {
						for kh := 0; kh < g.KH; kh++ {
							iy := oy*g.StrideH - g.PadH + kh
							if iy < 0 || iy >= h {
								continue
							}
							for kw := 0; kw < g.KW; kw++ {
								ix := ox*g.StrideW - g.PadW + kw
								if ix < 0 || ix >= w {
									continue
								}
								c.Weight.Grad.Data()[((o*c.InC+ch)*g.KH+kh)*g.KW+kw] += gv * x.At(i, ch, iy, ix)
								gradIn.Data()[((i*c.InC+ch)*h+iy)*w+ix] += gv * c.Weight.Value.At(o, ch, kh, kw)
							}
						}
					}
				}
			}
		}
	}
}

// prepareInference packs the weight layouts the selected kernels read
// (panel layout for im2col, transformed/blocked layouts for the tuned
// variants). Packed state is immutable and shared by every replica
// cloned from this layer.
func (c *Conv2D) prepareInference() {
	if c.Algo != ConvIm2Col {
		return
	}
	c.ensureKernel(KernelIm2Col)
	c.ensureKernel(c.kernB1)
	c.ensureKernel(c.kernBN)
}

// cloneShared implements sharedCloner: weights, bias and packed panels
// are shared; forward caches and task descriptors are fresh.
func (c *Conv2D) cloneShared() Module {
	return &Conv2D{
		InC:        c.InC,
		OutC:       c.OutC,
		Geom:       c.Geom,
		Algo:       c.Algo,
		Weight:     c.Weight,
		Bias:       c.Bias,
		packed:     c.packed,
		kernB1:     c.kernB1,
		kernBN:     c.kernBN,
		wino:       c.wino,
		nchwc:      c.nchwc,
		maskBand:   c.maskBand,
		maskThresh: c.maskThresh,
		maskStats:  c.maskStats,
		wsum:       c.wsum,
		wpre:       c.wpre,
	}
}

// Infer implements Inferencer.
func (c *Conv2D) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return c.inferFused(x, a, false)
}

// inferFused is the inference forward: im2col lowering of every sample
// into one arena buffer, then the packed micro-kernel with the bias add
// and optional ReLU fused into its epilogue. No gradient caches are
// touched and nothing is allocated in steady state.
func (c *Conv2D) inferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor {
	checkRank(x, 4, "Conv2D.Infer")
	n, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if ch != c.InC {
		panic(fmt.Sprintf("nn: Conv2D expects %d input channels, got %d", c.InC, ch))
	}
	if err := c.Geom.Validate(h, w); err != nil {
		panic(err)
	}
	oh, ow := c.Geom.OutSize(h, w)
	out := a.Get(n, c.OutC, oh, ow)

	if c.Algo == ConvDirect {
		c.forwardDirect(x, out)
		if relu {
			for i, v := range out.Data() {
				if !(v > 0) {
					out.Data()[i] = 0
				}
			}
		}
		return out
	}

	c.prepareInference()

	// Per-bucket kernel dispatch: the autotuner picks the fastest
	// measured variant per (layer, batch bucket); im2col is the default.
	kern := c.kernBN
	if n == 1 {
		kern = c.kernB1
	}
	switch kern {
	case KernelWinograd:
		c.inferWinograd(out, x, a, relu, n, ch, h, w, oh, ow)
		return out
	case KernelNCHWc:
		c.inferNCHWc(out, x, relu, n, ch, h, w, oh, ow)
		return out
	case KernelDirect:
		c.inferDirect(out, x, relu, n, ch, h, w, oh, ow)
		return out
	case KernelMasked:
		c.inferMasked(out, x, a, relu, n, ch, h, w, oh, ow)
		return out
	}

	kdim := c.InC * c.Geom.KH * c.Geom.KW
	ohw := oh * ow

	if n > 1 {
		// Multi-sample batches: each sample's lowering is consumed by its
		// gemm immediately, while the cols buffer is still cache-hot, and
		// the batch dimension provides the parallelism. Lowering every
		// sample first and gemm-ing second streams the whole n×kdim×ohw
		// buffer through cache twice and costs ~10% at batch 16.
		cols := a.Get(n, kdim, ohw)
		ct := &c.colsTask
		ct.cols, ct.x, ct.out = cols.Data(), x.Data(), out.Data()
		ct.sampleStride, ct.colStride, ct.outStride = ch*h*w, kdim*ohw, c.OutC*ohw
		ct.c, ct.h, ct.w, ct.geom = ch, h, w, c.Geom
		ct.packed, ct.ohw = c.packed, ohw
		ct.bias, ct.relu = c.Bias.Value.Data(), relu
		tensor.ParallelRange(n, 1, ct)
		return out
	}

	// Batch 1: the only parallelism is across weight panels, so lower
	// once and spread the gemm panel-by-panel over the pool.
	cols := a.Get(kdim, ohw)
	tensor.Im2ColSlice(cols.Data(), x.Data(), ch, h, w, c.Geom)
	gt := &c.gemmTask
	gt.packed = c.packed
	gt.out, gt.cols = out.Data(), cols.Data()
	gt.outStride, gt.colStride = c.OutC*ohw, kdim*ohw
	gt.panels, gt.ohw = c.packed.Panels(), ohw
	gt.bias, gt.relu = c.Bias.Value.Data(), relu
	tensor.ParallelRange(gt.panels, 1, gt)
	return out
}

// convColsTask processes whole samples [lo,hi) of a batch: each sample
// is lowered with Im2ColSlice and immediately multiplied through the
// packed micro-kernel while its cols region is cache-hot.
type convColsTask struct {
	cols, x, out                       []float32
	sampleStride, colStride, outStride int
	c, h, w                            int
	geom                               tensor.ConvGeom
	packed                             *tensor.Packed
	ohw                                int
	bias                               []float32
	relu                               bool
}

func (t *convColsTask) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		cols := t.cols[i*t.colStride : (i+1)*t.colStride]
		tensor.Im2ColSlice(cols, t.x[i*t.sampleStride:(i+1)*t.sampleStride],
			t.c, t.h, t.w, t.geom)
		t.packed.MulPanelsInto(t.out[i*t.outStride:(i+1)*t.outStride],
			cols, t.ohw, t.bias, t.relu, 0, t.packed.Panels())
	}
}

// convGemmTask runs the packed micro-kernel over a flat (sample, panel)
// index space so panel work balances across the pool even at batch 1.
type convGemmTask struct {
	packed               *tensor.Packed
	out, cols            []float32
	outStride, colStride int
	panels, ohw          int
	bias                 []float32
	relu                 bool
}

func (t *convGemmTask) RunRange(lo, hi int) {
	for idx := lo; idx < hi; {
		i := idx / t.panels
		p0 := idx % t.panels
		p1 := t.panels
		if end := idx + (p1 - p0); end > hi {
			p1 = p0 + (hi - idx)
		}
		t.packed.MulPanelsInto(
			t.out[i*t.outStride:(i+1)*t.outStride],
			t.cols[i*t.colStride:(i+1)*t.colStride],
			t.ohw, t.bias, t.relu, p0, p1)
		idx += p1 - p0
	}
}

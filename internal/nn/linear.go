package nn

import (
	"fmt"
	"math/rand"

	"drainnet/internal/tensor"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b over N×In input.
type Linear struct {
	In, Out int
	Weight  *Param // Out×In
	Bias    *Param // Out

	input *tensor.Tensor

	// inference fast path
	packed *tensor.Packed
	task   linearTask
}

// NewLinear creates a fully-connected layer with Xavier initialization.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(fmt.Sprintf("fc%dx%d_w", out, in), out, in),
		Bias:   NewParam(fmt.Sprintf("fc%dx%d_b", out, in), out),
	}
	l.Weight.Value.XavierInit(rng, in, out)
	return l
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutShape implements Module.
func (l *Linear) OutShape(in []int) []int { return []int{in[0], l.Out} }

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 2, "Linear")
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d features, got %d", l.In, x.Dim(1)))
	}
	l.input = x
	out := tensor.MatMulTransB(x, l.Weight.Value) // N×Out
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Data()[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.Value.Data()[j]
		}
	}
	return out
}

// Backward implements Module.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	checkRank(gradOut, 2, "Linear.Backward")
	n := gradOut.Dim(0)
	// dW += dOutᵀ · X
	dw := tensor.MatMulTransA(gradOut, l.input)
	l.Weight.Grad.AddScaled(dw, 1)
	// dB += column sums of dOut
	for i := 0; i < n; i++ {
		row := gradOut.Data()[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data()[j] += v
		}
	}
	// dX = dOut · W
	return tensor.MatMul(gradOut, l.Weight.Value)
}

// Flatten reshapes N×C×H×W (or any rank ≥ 2) input to N×F.
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Params implements Module.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Module.
func (f *Flatten) OutShape(in []int) []int {
	return []int{in[0], tensor.Volume(in[1:])}
}

// Forward implements Module.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Module.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}

// prepareInference packs the weight matrix for the fast-path dot kernel.
func (l *Linear) prepareInference() {
	if l.packed == nil {
		l.packed = tensor.PackMatrix(l.Weight.Value)
	}
}

// cloneShared implements sharedCloner.
func (l *Linear) cloneShared() Module {
	return &Linear{In: l.In, Out: l.Out, Weight: l.Weight, Bias: l.Bias, packed: l.packed}
}

// Infer implements Inferencer.
func (l *Linear) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return l.inferFused(x, a, false)
}

// inferFused computes y = x·Wᵀ + b with the packed dot kernel, the bias
// and optional ReLU fused, parallel over (sample, weight panel).
func (l *Linear) inferFused(x *tensor.Tensor, a *tensor.Arena, relu bool) *tensor.Tensor {
	checkRank(x, 2, "Linear.Infer")
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d features, got %d", l.In, x.Dim(1)))
	}
	l.prepareInference()
	n := x.Dim(0)
	out := a.Get(n, l.Out)
	t := &l.task
	t.packed = l.packed
	t.out, t.x = out.Data(), x.Data()
	t.outW, t.inW, t.panels = l.Out, l.In, l.packed.Panels()
	t.bias, t.relu = l.Bias.Value.Data(), relu
	tensor.ParallelRange(n*t.panels, 1, t)
	return out
}

// linearTask spreads per-sample dot-product panels across the pool.
type linearTask struct {
	packed            *tensor.Packed
	out, x            []float32
	outW, inW, panels int
	bias              []float32
	relu              bool
}

func (t *linearTask) RunRange(lo, hi int) {
	for idx := lo; idx < hi; idx++ {
		i := idx / t.panels
		p := idx % t.panels
		t.packed.DotPanelInto(t.out[i*t.outW:(i+1)*t.outW], t.x[i*t.inW:(i+1)*t.inW], p, t.bias, t.relu)
	}
}

// cloneShared implements sharedCloner.
func (f *Flatten) cloneShared() Module { return NewFlatten() }

// Infer implements Inferencer: a reshaped arena view of the same data.
func (f *Flatten) Infer(x *tensor.Tensor, a *tensor.Arena) *tensor.Tensor {
	return a.View(x, x.Dim(0), -1)
}

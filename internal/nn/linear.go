package nn

import (
	"fmt"
	"math/rand"

	"drainnet/internal/tensor"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b over N×In input.
type Linear struct {
	In, Out int
	Weight  *Param // Out×In
	Bias    *Param // Out

	input *tensor.Tensor
}

// NewLinear creates a fully-connected layer with Xavier initialization.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(fmt.Sprintf("fc%dx%d_w", out, in), out, in),
		Bias:   NewParam(fmt.Sprintf("fc%dx%d_b", out, in), out),
	}
	l.Weight.Value.XavierInit(rng, in, out)
	return l
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// OutShape implements Module.
func (l *Linear) OutShape(in []int) []int { return []int{in[0], l.Out} }

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	checkRank(x, 2, "Linear")
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d features, got %d", l.In, x.Dim(1)))
	}
	l.input = x
	out := tensor.MatMulTransB(x, l.Weight.Value) // N×Out
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Data()[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.Value.Data()[j]
		}
	}
	return out
}

// Backward implements Module.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	checkRank(gradOut, 2, "Linear.Backward")
	n := gradOut.Dim(0)
	// dW += dOutᵀ · X
	dw := tensor.MatMulTransA(gradOut, l.input)
	l.Weight.Grad.AddScaled(dw, 1)
	// dB += column sums of dOut
	for i := 0; i < n; i++ {
		row := gradOut.Data()[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data()[j] += v
		}
	}
	// dX = dOut · W
	return tensor.MatMul(gradOut, l.Weight.Value)
}

// Flatten reshapes N×C×H×W (or any rank ≥ 2) input to N×F.
type Flatten struct {
	inShape []int
}

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Params implements Module.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Module.
func (f *Flatten) OutShape(in []int) []int {
	return []int{in[0], tensor.Volume(in[1:])}
}

// Forward implements Module.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape()...)
	return x.Reshape(x.Dim(0), -1)
}

// Backward implements Module.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}

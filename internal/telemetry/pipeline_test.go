package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// emitSpan pushes the full HTTP-request event sequence for one request
// with fixed phase durations (10ms queue wait, 5ms assembly, 25ms
// inference, 2ms serialization).
func emitSpan(t *Telemetry, id uint64, base time.Time) {
	t.Emit(Event{Kind: EvAccepted, Req: id, At: base})
	t.Emit(Event{Kind: EvEnqueued, Req: id, At: base})
	t.Emit(Event{Kind: EvBatchFormed, Req: id, At: base.Add(10 * time.Millisecond), Batch: 2})
	t.Emit(Event{Kind: EvDispatch, Req: id, At: base.Add(15 * time.Millisecond), Replica: 1, Batch: 2})
	t.Emit(Event{Kind: EvInferenceDone, Req: id, At: base.Add(40 * time.Millisecond)})
	t.Emit(Event{Kind: EvResponseWritten, Req: id, At: base.Add(42 * time.Millisecond)})
}

func TestSpanAssemblyAggregates(t *testing.T) {
	tel := New(Options{})
	defer tel.Close()

	emitSpan(tel, 1, time.Now())
	tel.Flush()

	if got := tel.spans.Value(); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
	if got := tel.spansIncomplete.Value(); got != 0 {
		t.Fatalf("incomplete = %d, want 0", got)
	}
	checks := []struct {
		h    *Histogram
		name string
		sum  float64
	}{
		{tel.queueWait, "queue_wait", 0.010},
		{tel.batchAssembly, "batch_assembly", 0.005},
		{tel.inference, "inference", 0.025},
		{tel.serialization, "serialization", 0.002},
	}
	for _, c := range checks {
		s := c.h.Snapshot()
		if s.Count != 1 {
			t.Fatalf("%s count = %d, want 1", c.name, s.Count)
		}
		if math.Abs(s.Sum-c.sum) > 1e-9 {
			t.Fatalf("%s sum = %v, want %v", c.name, s.Sum, c.sum)
		}
	}
}

func TestPoolOnlySpanFinalizesOnInferenceDone(t *testing.T) {
	tel := New(Options{})
	defer tel.Close()

	// No EvAccepted and no EvResponseWritten: a direct batcher.Pool user
	// with no HTTP layer. The span must still close on EvInferenceDone.
	base := time.Now()
	tel.Emit(Event{Kind: EvEnqueued, Req: 7, At: base})
	tel.Emit(Event{Kind: EvBatchFormed, Req: 7, At: base.Add(time.Millisecond), Batch: 1})
	tel.Emit(Event{Kind: EvDispatch, Req: 7, At: base.Add(2 * time.Millisecond), Replica: 0, Batch: 1})
	tel.Emit(Event{Kind: EvInferenceDone, Req: 7, At: base.Add(5 * time.Millisecond)})
	tel.Flush()

	if got := tel.spans.Value(); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
	if got := tel.inference.Snapshot().Count; got != 1 {
		t.Fatalf("inference observations = %d, want 1", got)
	}
}

func TestSpanWithoutResultCountsIncomplete(t *testing.T) {
	tel := New(Options{})
	defer tel.Close()

	// A rejected request: accepted and answered by HTTP, but never ran.
	base := time.Now()
	tel.Emit(Event{Kind: EvAccepted, Req: 3, At: base})
	tel.Emit(Event{Kind: EvResponseWritten, Req: 3, At: base.Add(time.Millisecond)})
	tel.Flush()

	if got := tel.spans.Value(); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
	if got := tel.spansIncomplete.Value(); got != 1 {
		t.Fatalf("incomplete = %d, want 1", got)
	}
}

func TestFullRingDropsInsteadOfBlocking(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	tel := New(Options{
		BufferSize:  2,
		SampleEvery: 1,
		TraceSink: func(*Span, []byte) {
			entered <- struct{}{}
			<-release
		},
	})

	// Complete one sampled pool-only span so the consumer parks inside
	// the (blocking) sink. Flush between emissions: the 2-slot ring could
	// otherwise drop a setup event before the consumer drains it.
	base := time.Now()
	tel.Emit(Event{Kind: EvEnqueued, Req: 1, At: base})
	tel.Flush()
	tel.Emit(Event{Kind: EvDispatch, Req: 1, At: base, Replica: 0, Batch: 1})
	tel.Flush()
	tel.Emit(Event{Kind: EvInferenceDone, Req: 1, At: base.Add(time.Millisecond)})
	<-entered

	// With the consumer parked and a 2-slot ring, at most 2 of these 10
	// can be buffered; the rest must be dropped without blocking.
	done := make(chan struct{})
	go func() {
		for i := uint64(100); i < 110; i++ {
			tel.Emit(Event{Kind: EvEnqueued, Req: i, At: base})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a full ring")
	}
	if got := tel.dropped.Value(); got < 8 {
		t.Fatalf("dropped = %d, want >= 8", got)
	}
	close(release)
	tel.Close()
}

func TestTraceExportAndLatestTrace(t *testing.T) {
	tel := New(Options{SampleEvery: 2})
	defer tel.Close()

	if tel.Sampled(3) || !tel.Sampled(4) {
		t.Fatal("Sampled(3)/Sampled(4) mismatch for SampleEvery=2")
	}

	base := time.Now()
	id := uint64(4)
	tel.Emit(Event{Kind: EvAccepted, Req: id, At: base})
	tel.Emit(Event{Kind: EvEnqueued, Req: id, At: base})
	tel.Emit(Event{Kind: EvBatchFormed, Req: id, At: base.Add(time.Millisecond), Batch: 1})
	tel.Emit(Event{Kind: EvDispatch, Req: id, At: base.Add(2 * time.Millisecond), Replica: 1, Batch: 1})
	tel.Emit(Event{Kind: EvLayerForward, Req: id, Layer: 0, Name: "Conv2D", Dur: 3 * time.Millisecond})
	tel.Emit(Event{Kind: EvLayerForward, Req: id, Layer: 1, Name: "Linear", Dur: time.Millisecond})
	tel.Emit(Event{Kind: EvInferenceDone, Req: id, At: base.Add(8 * time.Millisecond)})
	tel.Emit(Event{Kind: EvResponseWritten, Req: id, At: base.Add(9 * time.Millisecond)})
	tel.Flush()

	gotID, trace := tel.LatestTrace()
	if gotID != id || trace == nil {
		t.Fatalf("LatestTrace = (%d, %d bytes), want id %d", gotID, len(trace), id)
	}
	if got := tel.traces.Value(); got != 1 {
		t.Fatalf("traces sampled = %d, want 1", got)
	}

	// The export must be valid Chrome trace-event JSON: an array of
	// complete ("X") events with microsecond timestamps.
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal(trace, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, trace)
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e.Name] = true
		if e.Ph != "X" {
			t.Fatalf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur: %+v", e.Name, e)
		}
	}
	for _, want := range []string{"queue_wait", "batch_assembly", "serialization", "Conv2D", "Linear"} {
		if !names[want] {
			t.Fatalf("trace missing %q event; have %v", want, names)
		}
	}
	foundRequest, foundInference := false, false
	for n := range names {
		if strings.HasPrefix(n, "request ") {
			foundRequest = true
		}
		if strings.HasPrefix(n, "inference ") {
			foundInference = true
		}
	}
	if !foundRequest || !foundInference {
		t.Fatalf("trace missing request/inference slices; have %v", names)
	}
}

func TestFileSinkWritesValidTrace(t *testing.T) {
	dir := t.TempDir()
	tel := New(Options{SampleEvery: 1, TraceSink: FileSink(dir)})
	defer tel.Close()

	emitSpan(tel, 5, time.Now())
	tel.Flush()

	b, err := os.ReadFile(filepath.Join(dir, "req-5.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("sink file is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("sink file has no trace events")
	}
}

func TestPendingSpanEviction(t *testing.T) {
	tel := New(Options{MaxPendingSpans: 2})
	defer tel.Close()

	// Three spans opened, none finalized: the third must evict the first.
	base := time.Now()
	for id := uint64(1); id <= 3; id++ {
		tel.Emit(Event{Kind: EvEnqueued, Req: id, At: base})
	}
	tel.Flush()
	if got := tel.spansEvicted.Value(); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
}

func TestDisabledTelemetry(t *testing.T) {
	tel := NewDisabled()
	if tel.Enabled() {
		t.Fatal("NewDisabled reports Enabled")
	}
	if tel.Sampled(0) {
		t.Fatal("disabled telemetry samples requests")
	}
	// All pipeline entry points must be harmless no-ops.
	tel.Emit(Event{Kind: EvEnqueued, Req: 1, At: time.Now()})
	tel.Flush()
	tel.Close()
	if id, trace := tel.LatestTrace(); id != 0 || trace != nil {
		t.Fatal("disabled telemetry captured a trace")
	}
	// The registry side stays fully usable.
	tel.Registry().Counter("x_total", "x").Inc()
	if got := tel.Registry().Counter("x_total", "x").Value(); got != 1 {
		t.Fatalf("registry counter = %d, want 1", got)
	}
}

func TestCloseIdempotentAndEmitAfterClose(t *testing.T) {
	tel := New(Options{})
	tel.Close()
	tel.Close()
	tel.Emit(Event{Kind: EvEnqueued, Req: 1, At: time.Now()}) // must not panic
	tel.Flush()
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if id, ok := RequestID(ctx); ok || id != 0 {
		t.Fatal("bare context carries a request ID")
	}
	ctx = WithRequestID(ctx, 42)
	if id, ok := RequestID(ctx); !ok || id != 42 {
		t.Fatalf("RequestID = (%d, %v), want (42, true)", id, ok)
	}
}

func TestNextRequestIDUnique(t *testing.T) {
	tel := NewDisabled()
	a, b := tel.NextRequestID(), tel.NextRequestID()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("NextRequestID gave %d, %d; want distinct non-zero", a, b)
	}
}

// Package telemetry is drainnet's always-on serving observability
// subsystem. It gives the production serving path the same visibility
// the paper's §7 Nsight profiles give offline inference, in three
// layers:
//
//  1. A metrics registry (registry.go): lock-free atomic counters,
//     gauges, and fixed-bucket histograms with label support, exposable
//     as Prometheus text or JSON. The registry is always on — recording
//     costs a few atomic operations (see BenchmarkRegistry*).
//  2. A span pipeline (events.go, span.go): instrumentation points emit
//     typed events (request accepted, enqueued, batch formed, replica
//     dispatch, per-layer forward, response written) into a bounded
//     ring; a consumer goroutine assembles them into per-request spans
//     and an aggregator folds the spans into registry histograms
//     (queue-wait, batch-assembly, inference, serialization). The shape
//     follows datadog-agent's GPU package: event stream → stream
//     handler → aggregator → metrics.
//  3. Trace sampling (trace.go): 1-in-N request spans are exported in
//     Chrome trace-event JSON via profiler.WriteChromeTrace, so a
//     production request opens in the same chrome://tracing view as an
//     offline drainnet-profile capture.
//
// The event path never blocks the serving hot path: when the ring is
// full, events are dropped and counted (drainnet_telemetry_events_
// dropped_total) instead of stalling a request.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// TimeBuckets is the default histogram bucket layout for durations in
// seconds, spanning 1 µs (serialization of a small response) to 10 s
// (a request that waited out a deep queue).
var TimeBuckets = []float64{
	1e-6, 1e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Options configures a Telemetry instance. The zero value enables the
// span pipeline with a 4096-event ring and no trace sampling.
type Options struct {
	// BufferSize bounds the event ring (default 4096). A full ring drops
	// events (counted) rather than blocking emitters.
	BufferSize int
	// SampleEvery exports every N-th request's span as a Chrome trace
	// (request IDs divisible by N). 0 disables trace sampling.
	SampleEvery int
	// TraceSink receives each sampled span and its Chrome trace JSON.
	// Nil keeps only the most recent trace in memory (LatestTrace).
	// FileSink writes one file per trace.
	TraceSink func(s *Span, trace []byte)
	// MaxPendingSpans caps the number of in-flight span assemblies
	// (default 4096); the oldest is evicted beyond that.
	MaxPendingSpans int
	// Registry lets callers share a registry; nil creates a fresh one.
	Registry *Registry
	// ConstLabels tags every exported sample with process-wide labels
	// (e.g. worker="3" on a router-spawned worker). Applied to the
	// registry via SetConstLabels; exposition-time only, so the lock-free
	// record path is unaffected.
	ConstLabels map[string]string
}

func (o Options) withDefaults() Options {
	if o.BufferSize <= 0 {
		o.BufferSize = 4096
	}
	if o.MaxPendingSpans <= 0 {
		o.MaxPendingSpans = 4096
	}
	if o.Registry == nil {
		o.Registry = NewRegistry()
	}
	return o
}

// Telemetry owns one registry and (unless created with NewDisabled) one
// span-pipeline consumer goroutine. It is safe for concurrent use.
type Telemetry struct {
	opts  Options
	reg   *Registry
	reqID atomic.Uint64

	// events is the bounded ring between emitters and the consumer; nil
	// when the pipeline is disabled (registry-only mode).
	events    chan Event
	gate      emitGate
	done      chan struct{}
	published atomic.Uint64
	processed atomic.Uint64

	// Pipeline-owned metrics.
	dropped         *Counter
	spans           *Counter
	spansIncomplete *Counter
	spansEvicted    *Counter
	traces          *Counter
	queueWait       *Histogram
	batchAssembly   *Histogram
	inference       *Histogram
	serialization   *Histogram
	stageRun        *Histogram

	lastTrace struct {
		mu   sync.Mutex
		id   uint64
		json []byte
	}
}

// New creates a Telemetry with a running span pipeline.
func New(opts Options) *Telemetry {
	t := newCore(opts)
	t.events = make(chan Event, t.opts.BufferSize)
	t.done = make(chan struct{})
	go t.run()
	return t
}

// NewDisabled creates a registry-only Telemetry: Emit is a no-op, no
// goroutine runs, and metrics recorded directly against the registry
// (counters, serving stats) still work. This is the fallback for
// components handed no telemetry by their caller.
func NewDisabled() *Telemetry {
	return newCore(Options{})
}

func newCore(opts Options) *Telemetry {
	opts = opts.withDefaults()
	if len(opts.ConstLabels) > 0 {
		opts.Registry.SetConstLabels(opts.ConstLabels)
	}
	t := &Telemetry{opts: opts, reg: opts.Registry}
	t.dropped = t.reg.Counter("drainnet_telemetry_events_dropped_total",
		"Telemetry events dropped because the ring buffer was full.")
	t.spans = t.reg.Counter("drainnet_spans_total",
		"Request spans assembled by the telemetry pipeline.")
	t.spansIncomplete = t.reg.Counter("drainnet_spans_incomplete_total",
		"Spans finalized without an inference result (rejected, canceled, or invalid requests).")
	t.spansEvicted = t.reg.Counter("drainnet_spans_evicted_total",
		"Pending span assemblies evicted because the assembly table was full.")
	t.traces = t.reg.Counter("drainnet_traces_sampled_total",
		"Sampled request spans exported as Chrome traces.")
	t.queueWait = t.reg.Histogram("drainnet_queue_wait_seconds",
		"Time a request spent queued before its batch was sealed.", TimeBuckets)
	t.batchAssembly = t.reg.Histogram("drainnet_batch_assembly_seconds",
		"Time between a batch being sealed and a replica starting it.", TimeBuckets)
	t.inference = t.reg.Histogram("drainnet_inference_seconds",
		"Replica forward-pass time, dispatch to result delivery.", TimeBuckets)
	t.serialization = t.reg.Histogram("drainnet_serialization_seconds",
		"Time between result delivery and the HTTP response being written.", TimeBuckets)
	t.stageRun = t.reg.Histogram("drainnet_stage_run_seconds",
		"Per-group stage execution time in scheduled (IOS) forward passes.", TimeBuckets)
	return t
}

// Registry returns the metrics registry (always usable, even disabled).
func (t *Telemetry) Registry() *Registry { return t.reg }

// Enabled reports whether the span pipeline is running.
func (t *Telemetry) Enabled() bool { return t.events != nil }

// QueueWaitQuantile estimates the q-th quantile of observed request
// queue-wait time in seconds. ok is false until at least one request has
// been through the queue — callers should fall back to a static guess.
// This feeds live Retry-After guidance on 429 responses.
func (t *Telemetry) QueueWaitQuantile(q float64) (secs float64, ok bool) {
	s := t.queueWait.Snapshot()
	if s.Count == 0 {
		return 0, false
	}
	return s.Quantile(q), true
}

// NextRequestID allocates a process-unique request ID (starting at 1).
func (t *Telemetry) NextRequestID() uint64 { return t.reqID.Add(1) }

// Sampled reports whether the request ID falls in the 1-in-N trace
// sample.
func (t *Telemetry) Sampled(id uint64) bool {
	return t.events != nil && t.opts.SampleEvery > 0 && id%uint64(t.opts.SampleEvery) == 0
}

// Emit publishes one event to the span pipeline. It never blocks: with
// the ring full the event is dropped and counted; with the pipeline
// disabled or closed it is a no-op.
func (t *Telemetry) Emit(e Event) {
	if t.events == nil {
		return
	}
	if !t.gate.enter() {
		return
	}
	select {
	case t.events <- e:
		t.published.Add(1)
	default:
		t.dropped.Inc()
	}
	t.gate.leave()
}

// Flush blocks until every event published before the call has been
// consumed and folded into the registry. Intended for tests and
// scrape-time consistency; returns immediately when disabled.
func (t *Telemetry) Flush() {
	if t.events == nil {
		return
	}
	target := t.published.Load()
	for t.processed.Load() < target {
		select {
		case <-t.done:
			return
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Close drains the ring and stops the consumer. Emit becomes a no-op;
// the registry stays readable. Close is idempotent.
func (t *Telemetry) Close() {
	if t.events == nil {
		return
	}
	if t.gate.close() {
		close(t.events)
	}
	<-t.done
}

// emitGate lets many emitters send concurrently while Close atomically
// flips to closed once no emitter is mid-send, so closing the ring
// channel cannot race a send.
type emitGate struct {
	mu     sync.RWMutex
	closed bool
}

func (g *emitGate) enter() bool {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return false
	}
	return true
}

func (g *emitGate) leave() { g.mu.RUnlock() }

func (g *emitGate) close() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.closed = true
	return true
}

package telemetry

import (
	"testing"
	"time"
)

// The registry hot path is the always-on cost every served request pays.
// The Makefile bench-telemetry target runs these to back the claim that
// recording stays under 100 ns/op per event.

func BenchmarkRegistryCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistryCounterVecWith(b *testing.B) {
	vec := NewRegistry().CounterVec("bench_total", "bench", "route", "code")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec.With("/v1/detect", "200").Inc()
	}
}

func BenchmarkRegistryHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench", TimeBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkEmit(b *testing.B) {
	tel := New(Options{BufferSize: 1 << 16})
	defer tel.Close()
	e := Event{Kind: EvEnqueued, Req: 1, At: time.Unix(0, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Emit(e)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	tel := NewDisabled()
	e := Event{Kind: EvEnqueued, Req: 1, At: time.Unix(0, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Emit(e)
	}
}

func BenchmarkRegistryCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

package telemetry

import (
	"context"
	"fmt"
	"time"
)

// EventKind classifies span-pipeline events, one per instrumentation
// point on the serving path.
type EventKind uint8

const (
	// EvAccepted: the HTTP layer admitted the request (handler entry).
	EvAccepted EventKind = iota
	// EvEnqueued: the batcher placed the request on its bounded queue.
	EvEnqueued
	// EvBatchFormed: the dispatcher sealed the request's batch.
	EvBatchFormed
	// EvDispatch: a replica began the batch's forward pass.
	EvDispatch
	// EvLayerForward: one layer's share of a sampled forward pass.
	EvLayerForward
	// EvInferenceDone: the request's detection was delivered.
	EvInferenceDone
	// EvResponseWritten: the HTTP response was written.
	EvResponseWritten
	// EvStageRun: one group of one IOS schedule stage ran during a
	// sampled scheduled forward pass (the scheduled-path analogue of
	// EvLayerForward).
	EvStageRun
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvAccepted:
		return "accepted"
	case EvEnqueued:
		return "enqueued"
	case EvBatchFormed:
		return "batch_formed"
	case EvDispatch:
		return "dispatch"
	case EvLayerForward:
		return "layer_forward"
	case EvInferenceDone:
		return "inference_done"
	case EvResponseWritten:
		return "response_written"
	case EvStageRun:
		return "stage_run"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one typed observation emitted by an instrumentation point.
// Only the fields relevant to the Kind are set.
type Event struct {
	Kind EventKind
	// Req identifies the request; events with the same Req assemble into
	// one span.
	Req uint64
	// At is when the event happened.
	At time.Time
	// Dur is the layer forward time (EvLayerForward only).
	Dur time.Duration
	// Replica is the serving replica (EvDispatch, EvLayerForward).
	Replica int
	// Batch is the sealed batch size (EvBatchFormed, EvDispatch).
	Batch int
	// Layer is the layer index within the network (EvLayerForward).
	Layer int
	// Name is the layer name (EvLayerForward) or the group's operator
	// chain label (EvStageRun).
	Name string
	// Stage, Group and Groups locate one group run within an IOS
	// schedule: stage index, group index, and the stage's group count
	// (EvStageRun only). At is the group's start time and Dur its
	// duration.
	Stage, Group, Groups int
}

// ctxKey carries a request ID through a context.
type ctxKey struct{}

// WithRequestID attaches a telemetry request ID to ctx so downstream
// layers (the batcher) emit events against the same span.
func WithRequestID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID extracts the request ID attached by WithRequestID.
func RequestID(ctx context.Context) (uint64, bool) {
	id, ok := ctx.Value(ctxKey{}).(uint64)
	return id, ok
}

package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h")
	b := r.Counter("same_total", "h")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles do not share state")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "hist", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=1 gets {0.5, 1.0} (inclusive), le=2 gets {1.5}, le=4 gets {3},
	// +Inf gets {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 || math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("count=%d sum=%v, want 5/106", s.Count, s.Sum)
	}
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %v, want within first bucket", q)
	}
	// Rank 2.5 of 5 lands halfway into the (1,2] bucket: 1.5, which is
	// also the exact median of the observed values.
	if q := s.Quantile(0.5); math.Abs(q-1.5) > 1e-9 {
		t.Fatalf("q50 = %v, want 1.5", q)
	}
	// The max quantile clamps to the last finite bound.
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("q100 = %v, want clamp to 4", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestVecLabelsIndependent(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("req_total", "by code", "route", "code")
	vec.With("/v1/detect", "200").Add(3)
	vec.With("/v1/detect", "400").Inc()
	if got := vec.With("/v1/detect", "200").Value(); got != 3 {
		t.Fatalf("200 child = %d, want 3", got)
	}
	if got := vec.With("/v1/detect", "400").Value(); got != 1 {
		t.Fatalf("400 child = %d, want 1", got)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [-+0-9.eE]+(e[-+][0-9]+)?$|^[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket)?\{.*le="\+Inf".*\} [0-9]+$`)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "requests served").Add(7)
	r.Gauge("depth", "queue depth").Set(3)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.CounterVec("by_replica_total", "per replica", "replica").With("0").Add(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# TYPE served_total counter",
		"served_total 7",
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
		`by_replica_total{replica="0"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Inc()
	r.Histogram("h_seconds", "h", []float64{1}).Observe(0.5)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var points []MetricPoint
	if err := json.Unmarshal(b, &points); err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points, want 2", len(points))
	}
	if points[0].Name != "c_total" || points[0].Value != 1 {
		t.Fatalf("counter point %+v", points[0])
	}
	if points[1].Histogram == nil || points[1].Histogram.Count != 1 {
		t.Fatalf("histogram point %+v", points[1])
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h", "h", TimeBuckets)
	vec := r.CounterVec("v_total", "v", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-5)
				vec.With("a").Inc()
			}
		}(i)
	}
	// Concurrent scrapes while writers run.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				_ = r.WritePrometheus(&b)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count)
	}
	if vec.With("a").Value() != 8000 {
		t.Fatalf("vec = %d, want 8000", vec.With("a").Value())
	}
}

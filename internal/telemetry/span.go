package telemetry

import "time"

// LayerTiming is one layer's share of a sampled forward pass.
type LayerTiming struct {
	Index int
	Name  string
	Dur   time.Duration
}

// StageTiming is one executed group of a sampled scheduled forward pass
// (IOS serving path): which stage and group ran, how many groups the
// stage had, the group's operator-chain label, and its wall-clock
// window. Groups of one stage overlap in time — that overlap is the
// inter-operator concurrency the schedule bought.
type StageTiming struct {
	Stage  int
	Group  int
	Groups int
	Label  string
	Start  time.Time
	Dur    time.Duration
}

// Span is the assembled timeline of one request: the event timestamps
// stitched together by the pipeline consumer. Zero times mark phases
// the request never reached (e.g. a rejected request never dispatches).
type Span struct {
	ID uint64

	Accepted    time.Time // HTTP admission (zero for direct pool use)
	Enqueued    time.Time // batcher queue entry
	BatchFormed time.Time // batch sealed by the dispatcher
	Dispatched  time.Time // replica started the forward pass
	Done        time.Time // detection delivered
	Responded   time.Time // HTTP response written

	Replica   int
	BatchSize int
	Layers    []LayerTiming
	Stages    []StageTiming

	// http marks spans opened by the HTTP layer, which finalize on
	// EvResponseWritten rather than EvInferenceDone.
	http bool
}

// run is the pipeline consumer: it drains the event ring, assembles
// spans, and folds finalized spans into the registry (the datadog-agent
// event → StreamHandler → aggregator shape).
func (t *Telemetry) run() {
	defer close(t.done)
	pending := make(map[uint64]*Span)
	var order []uint64 // arrival order of pending span IDs, lazily compacted
	for e := range t.events {
		order = t.handle(pending, order, e)
		t.processed.Add(1)
	}
}

func (t *Telemetry) handle(pending map[uint64]*Span, order []uint64, e Event) []uint64 {
	s := pending[e.Req]
	if s == nil {
		order = t.evictIfFull(pending, order)
		s = &Span{ID: e.Req}
		pending[e.Req] = s
		order = append(order, e.Req)
	}
	switch e.Kind {
	case EvAccepted:
		s.Accepted = e.At
		s.http = true
	case EvEnqueued:
		s.Enqueued = e.At
	case EvBatchFormed:
		s.BatchFormed = e.At
		s.BatchSize = e.Batch
	case EvDispatch:
		s.Dispatched = e.At
		s.Replica = e.Replica
		if s.BatchSize == 0 {
			s.BatchSize = e.Batch
		}
	case EvLayerForward:
		s.Layers = append(s.Layers, LayerTiming{Index: e.Layer, Name: e.Name, Dur: e.Dur})
	case EvStageRun:
		s.Stages = append(s.Stages, StageTiming{
			Stage: e.Stage, Group: e.Group, Groups: e.Groups,
			Label: e.Name, Start: e.At, Dur: e.Dur,
		})
	case EvInferenceDone:
		s.Done = e.At
		// Direct pool users have no HTTP layer to close the span.
		if !s.http {
			t.finalize(pending, s)
		}
	case EvResponseWritten:
		s.Responded = e.At
		t.finalize(pending, s)
	}
	return order
}

// finalize folds one completed span into the aggregate histograms and
// exports it if sampled.
func (t *Telemetry) finalize(pending map[uint64]*Span, s *Span) {
	delete(pending, s.ID)
	t.spans.Inc()
	observe := func(h *Histogram, from, to time.Time) {
		if !from.IsZero() && !to.IsZero() && !to.Before(from) {
			h.Observe(to.Sub(from).Seconds())
		}
	}
	observe(t.queueWait, s.Enqueued, s.BatchFormed)
	observe(t.batchAssembly, s.BatchFormed, s.Dispatched)
	observe(t.inference, s.Dispatched, s.Done)
	observe(t.serialization, s.Done, s.Responded)
	for _, st := range s.Stages {
		t.stageRun.Observe(st.Dur.Seconds())
	}
	if s.Done.IsZero() {
		t.spansIncomplete.Inc()
		return
	}
	if t.opts.SampleEvery > 0 && s.ID%uint64(t.opts.SampleEvery) == 0 {
		t.exportTrace(s)
	}
}

// evictIfFull keeps the assembly table bounded: when at capacity the
// oldest pending span is dropped (a request that never finished —
// canceled mid-queue with no HTTP layer, or a lost event).
func (t *Telemetry) evictIfFull(pending map[uint64]*Span, order []uint64) []uint64 {
	if len(pending) < t.opts.MaxPendingSpans {
		return compactOrder(pending, order)
	}
	for len(order) > 0 {
		id := order[0]
		order = order[1:]
		if _, ok := pending[id]; ok {
			delete(pending, id)
			t.spansEvicted.Inc()
			break
		}
	}
	return order
}

// compactOrder drops finalized IDs from the order slice once it has
// grown well past the pending set, bounding its memory.
func compactOrder(pending map[uint64]*Span, order []uint64) []uint64 {
	if len(order) < 2*len(pending)+1024 {
		return order
	}
	live := order[:0]
	for _, id := range order {
		if _, ok := pending[id]; ok {
			live = append(live, id)
		}
	}
	return live
}

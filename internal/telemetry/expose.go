package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MetricPoint is one exported sample in the JSON exposition: a counter
// or gauge value, or a histogram snapshot.
type MetricPoint struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Help      string             `json:"help,omitempty"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// snapshotFamilies copies the family list under the registry lock; the
// per-family child lists are copied under each family's lock.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	return fams
}

func (f *family) snapshotChildren() ([]string, []interface{}) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := append([]string(nil), f.corder...)
	children := make([]interface{}, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	return keys, children
}

// Snapshot returns every metric as a flat sample list, for the JSON
// exposition and for building derived views (e.g. /v1/stats). Registry
// const labels (SetConstLabels) are merged into every sample's label
// map; a per-metric label with the same key wins.
func (r *Registry) Snapshot() []MetricPoint {
	constLabels := r.ConstLabels()
	var out []MetricPoint
	for _, f := range r.snapshotFamilies() {
		keys, children := f.snapshotChildren()
		for i, key := range keys {
			p := MetricPoint{Name: f.name, Type: f.typ.String(), Help: f.help,
				Labels: mergedLabelMap(constLabels, f.labels, key)}
			switch c := children[i].(type) {
			case *Counter:
				p.Value = float64(c.Value())
			case *Gauge:
				p.Value = c.Value()
			case *Histogram:
				s := c.Snapshot()
				p.Histogram = &s
				p.Value = float64(s.Count)
			}
			out = append(out, p)
		}
	}
	return out
}

// mergedLabelMap builds a sample's label map: const labels first, then
// per-metric labels (which win on key collision).
func mergedLabelMap(constLabels map[string]string, labels []string, key string) map[string]string {
	if len(labels) == 0 && len(constLabels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels)+len(constLabels))
	for k, v := range constLabels {
		m[k] = v
	}
	values := strings.Split(key, labelSep)
	for i, l := range labels {
		if i < len(values) {
			m[l] = values[i]
		}
	}
	return m
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one line per
// sample, histograms as cumulative le-labeled buckets plus _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.constMu.RLock()
	constKeys := append([]string(nil), r.constKeys...)
	constValues := append([]string(nil), r.constValues...)
	r.constMu.RUnlock()
	renderLabels := func(labels []string, key, extraKey, extraVal string) string {
		return renderLabelsConst(constKeys, constValues, labels, key, extraKey, extraVal)
	}
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, sanitizeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys, children := f.snapshotChildren()
		for i, key := range keys {
			base := renderLabels(f.labels, key, "", "")
			switch c := children[i].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, c.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, base, formatFloat(c.Value())); err != nil {
					return err
				}
			case *Histogram:
				s := c.Snapshot()
				var cum uint64
				for bi, upper := range s.Upper {
					cum += s.Counts[bi]
					le := renderLabels(f.labels, key, "le", formatFloat(upper))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
						return err
					}
				}
				cum += s.Counts[len(s.Counts)-1]
				le := renderLabels(f.labels, key, "le", "+Inf")
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, s.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// renderLabelsConst formats {k1="v1",...}: registry const labels first,
// then the per-metric labels, optionally appending one extra pair (the
// histogram le label). Empty label sets render as "".
func renderLabelsConst(constKeys, constValues, labels []string, key, extraKey, extraVal string) string {
	if len(constKeys) == 0 && len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	values := strings.Split(key, labelSep)
	n := 0
	for i, k := range constKeys {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, constValues[i])
		n++
	}
	for i, l := range labels {
		if i >= len(values) {
			break
		}
		if n > 0 {
			b.WriteByte(',')
		}
		// %q escaping (\" \\ \n) matches the Prometheus text format.
		fmt.Fprintf(&b, "%s=%q", l, values[i])
		n++
	}
	if extraKey != "" {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

func sanitizeHelp(h string) string {
	return strings.ReplaceAll(h, "\n", " ")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

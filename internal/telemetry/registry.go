package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the three metric families the registry holds.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String implements fmt.Stringer with the Prometheus TYPE keywords.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Registry holds named metric families. Lookup/registration takes a
// lock; the returned metric handles are lock-free atomics, so hot paths
// register once and record through the handle. Registration is
// idempotent: asking for an existing name returns the existing family
// (the type must match; histogram buckets are fixed by the first
// registration).
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	order []string

	// constLabels are appended to every exported sample (Prometheus text
	// and JSON). They identify the *process* — e.g. worker="3" on a
	// router-spawned worker — so fleet dashboards and the cluster router
	// can tell N workers' otherwise-identical series apart.
	constMu     sync.RWMutex
	constKeys   []string
	constValues []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// SetConstLabels replaces the registry's process-wide constant labels.
// They ride on every exported sample without touching the lock-free
// record path (applied at exposition time only). Keys are exported in
// sorted order; conflicting per-metric labels keep the per-metric value.
func (r *Registry) SetConstLabels(labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	values := make([]string, len(keys))
	for i, k := range keys {
		values[i] = labels[k]
	}
	r.constMu.Lock()
	r.constKeys, r.constValues = keys, values
	r.constMu.Unlock()
}

// ConstLabels returns a copy of the registry's constant labels (nil when
// none are set).
func (r *Registry) ConstLabels() map[string]string {
	r.constMu.RLock()
	defer r.constMu.RUnlock()
	if len(r.constKeys) == 0 {
		return nil
	}
	m := make(map[string]string, len(r.constKeys))
	for i, k := range r.constKeys {
		m[k] = r.constValues[i]
	}
	return m
}

// labelSep joins label values into child keys; it cannot appear in
// well-formed UTF-8 label values.
const labelSep = "\xff"

type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64

	mu       sync.RWMutex
	children map[string]interface{}
	corder   []string
}

func (r *Registry) family(name, help string, typ MetricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, typ, f.typ))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with %d labels, had %d", name, len(labels), len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]interface{}{},
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

func (f *family) child(values []string) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var nc interface{}
	switch f.typ {
	case TypeCounter:
		nc = &Counter{}
	case TypeGauge:
		nc = &Gauge{}
	case TypeHistogram:
		nc = newHistogram(f.buckets)
	}
	f.children[key] = nc
	f.corder = append(f.corder, key)
	return nc
}

// Counter registers (or finds) an unlabeled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, TypeCounter, nil, nil).child(nil).(*Counter)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, TypeCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, TypeGauge, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, TypeGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled fixed-bucket histogram;
// buckets are ascending finite upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, TypeHistogram, nil, buckets).child(nil).(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, TypeHistogram, labels, buckets)}
}

// CounterVec resolves label values to Counter children.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (in the
// registration order of the label keys), creating it on first use.
// Callers on hot paths should cache the returned handle.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values).(*Counter)
}

// GaugeVec resolves label values to Gauge children.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values).(*Gauge)
}

// HistogramVec resolves label values to Histogram children.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values).(*Histogram)
}

// Counter is a lock-free monotonic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a lock-free float64 gauge.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with lock-free observation.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // len(upper)+1; last bucket is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	return &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value: a bucket increment, a count increment, and
// a CAS-add to the running sum.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.upper, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the final entry is the +Inf bucket.
type HistogramSnapshot struct {
	Upper  []float64 `json:"upper_bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Upper:  h.upper,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile by linear interpolation within
// the bucket containing the target rank. Values beyond the last finite
// bound clamp to it.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	lower := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			if i < len(s.Upper) {
				lower = s.Upper[i]
			}
			continue
		}
		cum += float64(c)
		if cum >= target {
			if i >= len(s.Upper) {
				return lower // +Inf bucket: clamp to last finite bound
			}
			frac := (target - (cum - float64(c))) / float64(c)
			return lower + (s.Upper[i]-lower)*frac
		}
		if i < len(s.Upper) {
			lower = s.Upper[i]
		}
	}
	if len(s.Upper) > 0 {
		return s.Upper[len(s.Upper)-1]
	}
	return 0
}

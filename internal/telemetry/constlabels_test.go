package telemetry

import (
	"strings"
	"testing"
)

func TestConstLabelsInPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.SetConstLabels(map[string]string{"worker": "3"})
	r.Counter("drainnet_test_total", "plain counter").Add(2)
	r.CounterVec("drainnet_test_labeled_total", "labeled counter", "precision").With("int8").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `drainnet_test_total{worker="3"} 2`) {
		t.Fatalf("plain counter missing const label:\n%s", text)
	}
	// Const labels render alongside the series' own labels.
	if !strings.Contains(text, `worker="3"`) || !strings.Contains(text, `precision="int8"`) {
		t.Fatalf("labeled counter lost const or own labels:\n%s", text)
	}
}

func TestConstLabelsInSnapshot(t *testing.T) {
	r := NewRegistry()
	r.SetConstLabels(map[string]string{"worker": "1"})
	r.Gauge("drainnet_test_gauge", "gauge").Set(7)
	r.GaugeVec("drainnet_test_gauge_labeled", "labeled", "phase").With("infer").Set(1)

	for _, p := range r.Snapshot() {
		if p.Labels["worker"] != "1" {
			t.Fatalf("point %s labels = %v, want worker=1 merged in", p.Name, p.Labels)
		}
	}
}

func TestConstLabelsPerMetricWins(t *testing.T) {
	// A metric that carries its own "worker" label must not be clobbered
	// by the process-wide const label in the JSON snapshot.
	r := NewRegistry()
	r.SetConstLabels(map[string]string{"worker": "global"})
	r.GaugeVec("drainnet_test_conflict", "conflict", "worker").With("own").Set(1)

	for _, p := range r.Snapshot() {
		if p.Name == "drainnet_test_conflict" && p.Labels["worker"] != "own" {
			t.Fatalf("per-metric label clobbered: %v", p.Labels)
		}
	}
}

func TestConstLabelsAccessor(t *testing.T) {
	r := NewRegistry()
	if got := r.ConstLabels(); len(got) != 0 {
		t.Fatalf("fresh registry const labels = %v, want empty", got)
	}
	r.SetConstLabels(map[string]string{"b": "2", "a": "1"})
	got := r.ConstLabels()
	if got["a"] != "1" || got["b"] != "2" || len(got) != 2 {
		t.Fatalf("ConstLabels = %v", got)
	}
}

func TestTelemetryOptionsConstLabels(t *testing.T) {
	tel := New(Options{ConstLabels: map[string]string{"worker": "5"}})
	defer tel.Close()
	if got := tel.Registry().ConstLabels()["worker"]; got != "5" {
		t.Fatalf("Options.ConstLabels not applied: %q", got)
	}
}

package telemetry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"drainnet/internal/gpu"
	"drainnet/internal/profiler"
)

// exportTrace renders a sampled span as Chrome trace-event JSON through
// the same profiler.WriteChromeTrace that drainnet-profile uses, so
// production requests and offline simulator captures open in the same
// chrome://tracing / ui.perfetto.dev view.
func (t *Telemetry) exportTrace(s *Span) {
	events := chromeEvents(s)
	if len(events) == 0 {
		return
	}
	var buf bytes.Buffer
	if err := profiler.WriteChromeTrace(&buf, events); err != nil {
		return
	}
	b := buf.Bytes()
	t.lastTrace.mu.Lock()
	t.lastTrace.id = s.ID
	t.lastTrace.json = b
	t.lastTrace.mu.Unlock()
	t.traces.Inc()
	if t.opts.TraceSink != nil {
		t.opts.TraceSink(s, b)
	}
}

// LatestTrace returns the most recent sampled trace (request ID and
// Chrome trace JSON), or (0, nil) if none has been captured.
func (t *Telemetry) LatestTrace() (uint64, []byte) {
	t.lastTrace.mu.Lock()
	defer t.lastTrace.mu.Unlock()
	return t.lastTrace.id, t.lastTrace.json
}

// chromeEvents lays the span out as ledger events: the request's
// lifecycle phases on one track (stream 0) and the replica's forward
// pass — with per-layer slices when sampled — on the replica's track.
// Timestamps are relative to the span's first event.
func chromeEvents(s *Span) []gpu.Event {
	t0 := s.Accepted
	if t0.IsZero() || (!s.Enqueued.IsZero() && s.Enqueued.Before(t0)) {
		t0 = s.Enqueued
	}
	if t0.IsZero() {
		return nil
	}
	var out []gpu.Event
	add := func(name, class string, stream int, from, to time.Time) {
		if from.IsZero() || to.IsZero() || to.Before(from) {
			return
		}
		out = append(out, gpu.Event{
			Kind:    gpu.EvKernel,
			Name:    name,
			Class:   class,
			Stream:  stream,
			StartNs: float64(from.Sub(t0).Nanoseconds()),
			DurNs:   float64(to.Sub(from).Nanoseconds()),
		})
	}
	end := s.Responded
	if end.IsZero() {
		end = s.Done
	}
	add(fmt.Sprintf("request %d (batch=%d)", s.ID, s.BatchSize), "request", 0, t0, end)
	add("queue_wait", "phase", 0, s.Enqueued, s.BatchFormed)
	add("batch_assembly", "phase", 0, s.BatchFormed, s.Dispatched)
	add("serialization", "phase", 0, s.Done, s.Responded)
	add(fmt.Sprintf("inference (replica=%d batch=%d)", s.Replica, s.BatchSize),
		"phase", 1+s.Replica, s.Dispatched, s.Done)
	// Layers ran sequentially inside the forward pass; lay them out
	// cumulatively from the dispatch time so they nest under it.
	cur := s.Dispatched
	for _, l := range s.Layers {
		if cur.IsZero() {
			break
		}
		next := cur.Add(l.Dur)
		add(l.Name, "layer", 1+s.Replica, cur, next)
		cur = next
	}
	// Scheduled (IOS) forward passes report per-group stage runs with
	// real start times instead of sequential layers. Group 0 of each
	// stage nests under the replica's inference slice; groups 1..G-1 get
	// their own lanes above it, so concurrent groups render side by side
	// and the stage's concurrency is visible. A sampled span traces one
	// replica, so the lane offsets cannot collide with another replica's
	// track within the same trace.
	for _, st := range s.Stages {
		add(fmt.Sprintf("s%d/g%d %s", st.Stage, st.Group, st.Label),
			"stage", 1+s.Replica+st.Group, st.Start, st.Start.Add(st.Dur))
	}
	return out
}

// FileSink returns a TraceSink writing each sampled trace to
// dir/req-<id>.trace.json. Write errors are silently dropped: tracing
// must never take down serving.
func FileSink(dir string) func(*Span, []byte) {
	return func(s *Span, trace []byte) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return
		}
		name := filepath.Join(dir, fmt.Sprintf("req-%d.trace.json", s.ID))
		_ = os.WriteFile(name, trace, 0o644)
	}
}

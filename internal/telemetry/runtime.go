package telemetry

import "runtime"

// RecordRuntime samples Go runtime memory statistics into the registry
// as gauges: heap footprint, GC activity and goroutine count. It is
// called at metrics-scrape time (not on the serving hot path —
// runtime.ReadMemStats briefly stops the world), so the exported values
// are as fresh as the scrape.
func (t *Telemetry) RecordRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg := t.Registry()
	reg.Gauge("drainnet_go_heap_alloc_bytes", "Bytes of allocated heap objects.").Set(float64(ms.HeapAlloc))
	reg.Gauge("drainnet_go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.").Set(float64(ms.HeapSys))
	reg.Gauge("drainnet_go_heap_objects", "Number of allocated heap objects.").Set(float64(ms.HeapObjects))
	reg.Gauge("drainnet_go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.").Set(float64(ms.PauseTotalNs) / 1e9)
	reg.Gauge("drainnet_go_gc_runs_total", "Completed GC cycles.").Set(float64(ms.NumGC))
	reg.Gauge("drainnet_go_goroutines", "Current number of goroutines.").Set(float64(runtime.NumGoroutine()))
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"drainnet/internal/ios"
	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// IOSBenchRow is one (path, batch) measurement on the real CPU
// inference path: "sequential" is the PR 3 zero-alloc fast path,
// "scheduled" runs the measured-oracle IOS schedule through the
// concurrent stage executor.
type IOSBenchRow struct {
	Path       string  `json:"path"`
	Precision  string  `json:"precision"` // "fp32" or "int8" — keys the row alongside path+batch
	Batch      int     `json:"batch"`
	NsPerOp    int64   `json:"ns_per_op"`
	NsPerImg   float64 `json:"ns_per_image"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
	Iterations int     `json:"iterations"`
	Stages     int     `json:"stages,omitempty"`   // scheduled rows only
	Schedule   string  `json:"schedule,omitempty"` // compact stage/group structure
}

// IOSBenchRun is the comparison at one GOMAXPROCS setting. The pool
// sizes itself once per process, so `make bench-ios` invokes the
// binary once per setting and the runs merge here.
type IOSBenchRun struct {
	GOMAXPROCS    int           `json:"gomaxprocs"`
	PoolWorkers   int           `json:"pool_workers"`
	MeasuredOps   int           `json:"measured_ops"` // operator timings taken by the cost oracle
	Deterministic bool          `json:"deterministic"`
	Rows          []IOSBenchRow `json:"rows"`
	GainBatch1    float64       `json:"gain_batch1"`
	GainBatch16   float64       `json:"gain_batch16"`
	// Int8Gain* are the scheduled-vs-sequential gains on the int8 path;
	// the int8 operators are priced separately by the cost oracle
	// (precision-tagged cache keys) so the DP schedules them from their
	// own measurements.
	Int8GainBatch1  float64 `json:"int8_gain_batch1"`
	Int8GainBatch16 float64 `json:"int8_gain_batch16"`
}

// IOSBenchResult is written to BENCH_ios.json: profile-guided
// inter-operator scheduling on the real inference path vs the
// sequential fast path, with a bitwise-determinism proof per run.
type IOSBenchResult struct {
	Model string        `json:"model"`
	Runs  []IOSBenchRun `json:"runs"`
}

// IOSBench measures each operator of the width-scaled Original SPP-Net
// with the MeasuredOracle, optimizes stage schedules for batch 1 and
// 16, and benchmarks the scheduled executor against the sequential
// fast path. The scheduled output is checked bit-for-bit against
// Sequential.Infer before timing. Results merge into outPath keyed by
// GOMAXPROCS (defaults to BENCH_ios.json when empty).
func IOSBench(outPath string) (*IOSBenchResult, error) {
	if outPath == "" {
		outPath = "BENCH_ios.json"
	}
	cfg := model.OriginalSPPNet().Scaled(4).WithInput(4, 50)
	net, err := cfg.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	plan, err := model.OptimizeSchedules(cfg, net, 16, nil)
	if err != nil {
		return nil, err
	}
	exec1, execN, err := plan.CompileExecutors(net)
	if err != nil {
		return nil, err
	}

	// Quantize the same network and re-optimize over the shared cost
	// cache: the int8 convs/linears carry precision-tagged cache keys, so
	// the oracle measures them separately while reusing the fp32 pool/SPP
	// timings.
	rng := rand.New(rand.NewSource(9))
	var calibBatches []*tensor.Tensor
	for i := 0; i < 4; i++ {
		cb := tensor.New(8, cfg.InBands, cfg.InSize, cfg.InSize)
		cb.RandNormal(rng, 0, 1)
		calibBatches = append(calibBatches, cb)
	}
	qnet, _, err := nn.QuantizeForInference(net, nn.Calibrate(net, calibBatches))
	if err != nil {
		return nil, err
	}
	qplan, err := model.OptimizeSchedules(cfg, qnet, 16, plan.Cache)
	if err != nil {
		return nil, err
	}
	qexec1, qexecN, err := qplan.CompileExecutors(qnet)
	if err != nil {
		return nil, err
	}

	run := IOSBenchRun{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		PoolWorkers:   tensor.PoolWorkers(),
		MeasuredOps:   qplan.Cache.Len(),
		Deterministic: true,
	}

	byKey := map[string]IOSBenchRow{}
	benchPrecision := func(precision string, pnet *nn.Sequential, p *model.SchedulePlan, e1, eN *nn.ScheduleExecutor) {
		for _, batch := range []int{1, 16} {
			x := tensor.New(batch, cfg.InBands, cfg.InSize, cfg.InSize)
			rng := rand.New(rand.NewSource(int64(batch)))
			for i := range x.Data() {
				x.Data()[i] = rng.Float32()
			}
			exec := e1
			sched := p.Batch1
			if batch > 1 {
				exec, sched = eN, p.BatchN
			}

			// Determinism proof: the scheduled run must reproduce the
			// sequential fast path bit for bit.
			seqOut := pnet.Infer(x, tensor.NewArena())
			schedOut := exec.Infer(x, tensor.NewArena())
			for i, v := range seqOut.Data() {
				if math.Float32bits(v) != math.Float32bits(schedOut.Data()[i]) {
					run.Deterministic = false
					break
				}
			}

			arena := tensor.NewArena()
			var dets []metrics.Detection
			seq := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					arena.Reset()
					dets = model.InferDetect(pnet, x, arena, dets)
				}
			})
			seqRow := iosRow("sequential", precision, batch, seq, nil)
			run.Rows = append(run.Rows, seqRow)
			byKey[fmt.Sprintf("seq-%s-%d", precision, batch)] = seqRow

			schedBench := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					arena.Reset()
					dets = model.InferDetectScheduled(exec, x, arena, dets)
				}
			})
			schedRow := iosRow("scheduled", precision, batch, schedBench, sched)
			run.Rows = append(run.Rows, schedRow)
			byKey[fmt.Sprintf("ios-%s-%d", precision, batch)] = schedRow
		}
	}
	benchPrecision("fp32", net, plan, exec1, execN)
	benchPrecision("int8", qnet, qplan, qexec1, qexecN)
	run.GainBatch1 = float64(byKey["seq-fp32-1"].NsPerOp) / float64(byKey["ios-fp32-1"].NsPerOp)
	run.GainBatch16 = float64(byKey["seq-fp32-16"].NsPerOp) / float64(byKey["ios-fp32-16"].NsPerOp)
	run.Int8GainBatch1 = float64(byKey["seq-int8-1"].NsPerOp) / float64(byKey["ios-int8-1"].NsPerOp)
	run.Int8GainBatch16 = float64(byKey["seq-int8-16"].NsPerOp) / float64(byKey["ios-int8-16"].NsPerOp)

	res := &IOSBenchResult{}
	loadBenchFile(outPath, res)
	res.Model = cfg.Name + " /4 @50px"
	res.Runs = mergeIOSRun(res.Runs, run)
	if err := writeBenchFile(outPath, res); err != nil {
		return nil, err
	}
	return res, nil
}

func iosRow(path, precision string, batch int, r testing.BenchmarkResult, sched *ios.Schedule) IOSBenchRow {
	row := IOSBenchRow{
		Path:       path,
		Precision:  precision,
		Batch:      batch,
		NsPerOp:    r.NsPerOp(),
		NsPerImg:   float64(r.NsPerOp()) / float64(batch),
		AllocsOp:   r.AllocsPerOp(),
		BytesOp:    r.AllocedBytesPerOp(),
		Iterations: r.N,
	}
	if sched != nil {
		row.Stages = len(sched.Stages)
		row.Schedule = sched.Compact()
	}
	return row
}

func mergeIOSRun(runs []IOSBenchRun, run IOSBenchRun) []IOSBenchRun {
	out := runs[:0]
	for _, r := range runs {
		if r.GOMAXPROCS != run.GOMAXPROCS {
			out = append(out, r)
		}
	}
	out = append(out, run)
	sort.Slice(out, func(i, j int) bool { return out[i].GOMAXPROCS < out[j].GOMAXPROCS })
	return out
}

// Render writes the comparison table, one block per GOMAXPROCS run.
func (r *IOSBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IOS on the real inference path — %s\n", r.Model)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "GOMAXPROCS=%d, pool workers=%d, measured ops=%d, deterministic=%t\n",
			run.GOMAXPROCS, run.PoolWorkers, run.MeasuredOps, run.Deterministic)
		fmt.Fprintf(&b, "%-10s %-5s %6s %14s %14s %12s %7s\n", "path", "prec", "batch", "ns/op", "ns/image", "allocs/op", "stages")
		for _, row := range run.Rows {
			stages := "-"
			if row.Stages > 0 {
				stages = fmt.Sprintf("%d", row.Stages)
			}
			fmt.Fprintf(&b, "%-10s %-5s %6d %14d %14.0f %12d %7s\n",
				row.Path, row.Precision, row.Batch, row.NsPerOp, row.NsPerImg, row.AllocsOp, stages)
		}
		for _, row := range run.Rows {
			if row.Schedule != "" {
				fmt.Fprintf(&b, "%s batch %d schedule: %s\n", row.Precision, row.Batch, row.Schedule)
			}
		}
		fmt.Fprintf(&b, "fp32 gain: %.2fx at batch 1, %.2fx at batch 16\n", run.GainBatch1, run.GainBatch16)
		fmt.Fprintf(&b, "int8 gain: %.2fx at batch 1, %.2fx at batch 16\n", run.Int8GainBatch1, run.Int8GainBatch16)
	}
	return b.String()
}

package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// InferenceBenchRow is one (path, precision, batch) measurement.
type InferenceBenchRow struct {
	Path       string  `json:"path"`      // "forward" (training graph) or "infer" (fast path)
	Precision  string  `json:"precision"` // "fp32", "int8" or "tuned" (autotuned kernel mix) — keys the row, so mixed-precision runs merge without clobbering
	Batch      int     `json:"batch"`     // clips per forward pass
	NsPerOp    int64   `json:"ns_per_op"`
	NsPerImg   float64 `json:"ns_per_image"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
	Iterations int     `json:"iterations"`
}

// QuantGateInfo records the accuracy gate behind a benchmarked int8 run:
// the APs of both precisions on the synthetic held-out split and whether
// the drop cleared the epsilon.
type QuantGateInfo struct {
	FP32AP          float64 `json:"fp32_ap"`
	Int8AP          float64 `json:"int8_ap"`
	Drop            float64 `json:"ap_drop"`
	Epsilon         float64 `json:"epsilon"`
	Enabled         bool    `json:"enabled"`
	QuantizedLayers int     `json:"quantized_layers"`
	FallbackLayers  int     `json:"fallback_layers"`
}

// InferenceBenchRun is the benchmark at one GOMAXPROCS setting. The
// worker pool sizes itself once per process, so each run comes from a
// separate process invocation (see `make bench-inference`).
type InferenceBenchRun struct {
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	PoolWorkers int                 `json:"pool_workers"`
	Rows        []InferenceBenchRow `json:"rows"`
	// SpeedupBatchN compare the fp32 fast path to the training graph;
	// Int8SpeedupBatchN compare int8 to the fp32 fast path.
	SpeedupBatch1      float64        `json:"speedup_batch1"`
	SpeedupBatch16     float64        `json:"speedup_batch16"`
	Int8SpeedupBatch1  float64        `json:"int8_speedup_batch1"`
	Int8SpeedupBatch16 float64        `json:"int8_speedup_batch16"`
	Int8Deterministic  bool           `json:"int8_deterministic"`
	Gate               *QuantGateInfo `json:"quant_gate,omitempty"`
	// TunedSpeedupBatchN compare the autotuned kernel mix (Winograd /
	// NCHWc / direct / int8, per layer — model.AutotuneKernels) to the
	// fp32 fast path; KernelMix names the per-layer choices it measured
	// fastest, and KernelDemotions counts accuracy-gate demotion steps.
	TunedSpeedupBatch1  float64 `json:"tuned_speedup_batch1"`
	TunedSpeedupBatch16 float64 `json:"tuned_speedup_batch16"`
	KernelMix           string  `json:"kernel_mix,omitempty"`
	KernelDemotions     int     `json:"kernel_demotions"`
	KernelAPDrop        float64 `json:"kernel_ap_drop"`
}

// InferenceBenchResult records the CPU inference fast-path benchmark:
// the training-graph Forward (the pre-fast-path serving path) against
// the packed/fused/arena Infer path at batch 1 and batch 16, plus the
// resulting speedups — one run per GOMAXPROCS setting, merged across
// invocations. It is written to BENCH_inference.json so later PRs have
// a perf trajectory to compare against.
type InferenceBenchResult struct {
	Model      string              `json:"model"`
	Provenance *Provenance         `json:"provenance,omitempty"`
	Runs       []InferenceBenchRun `json:"runs"`
}

// InferenceBench benchmarks both forward paths on a width-scaled
// Original SPP-Net and merges the result for the current GOMAXPROCS
// into outPath (defaults to BENCH_inference.json when empty).
func InferenceBench(outPath string) (*InferenceBenchResult, error) {
	if outPath == "" {
		outPath = "BENCH_inference.json"
	}
	cfg := model.OriginalSPPNet().Scaled(4).WithInput(4, 50)
	net, err := cfg.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	nn.PrepareInference(net)

	// Quantize through the same accuracy gate serving uses, on a
	// synthetic held-out split matching the bench input shape, and record
	// the gate's verdict next to the timings.
	calib := synthDetectData(rand.New(rand.NewSource(9)), 64, cfg.InBands, cfg.InSize)
	dec, err := model.QuantizeGated(net, calib, model.QuantOptions{MaxAPDrop: 0.05})
	if err != nil {
		return nil, err
	}
	run := InferenceBenchRun{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		PoolWorkers:       tensor.PoolWorkers(),
		Int8Deterministic: true,
		Gate: &QuantGateInfo{
			FP32AP:          dec.FP32AP,
			Int8AP:          dec.Int8AP,
			Drop:            dec.Drop,
			Epsilon:         dec.Epsilon,
			Enabled:         dec.Enabled,
			QuantizedLayers: dec.Report.Quantized,
			FallbackLayers:  dec.Report.Fallback,
		},
	}

	byKey := map[string]InferenceBenchRow{}
	for _, batch := range []int{1, 16} {
		x := tensor.New(batch, cfg.InBands, cfg.InSize, cfg.InSize)
		rng := rand.New(rand.NewSource(int64(batch)))
		for i := range x.Data() {
			x.Data()[i] = rng.Float32()
		}

		fwd := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.Detect(net, x)
			}
		})
		byKey[fmt.Sprintf("forward%d", batch)] = appendRow(&run, "forward", "fp32", batch, fwd)

		arena := tensor.NewArena()
		var dets []metrics.Detection
		inf := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				arena.Reset()
				dets = model.InferDetect(net, x, arena, dets)
			}
		})
		byKey[fmt.Sprintf("infer%d", batch)] = appendRow(&run, "infer", "fp32", batch, inf)

		// Determinism proof: two cold int8 passes must agree bit for bit.
		qa := tensor.NewArena()
		first := append([]metrics.Detection(nil), model.InferDetect(dec.Net, x, qa, nil)...)
		qa.Reset()
		for i, d := range model.InferDetect(dec.Net, x, qa, nil) {
			if d != first[i] {
				run.Int8Deterministic = false
				break
			}
		}

		var qdets []metrics.Detection
		q := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				qa.Reset()
				qdets = model.InferDetect(dec.Net, x, qa, qdets)
			}
		})
		byKey[fmt.Sprintf("int8-%d", batch)] = appendRow(&run, "infer", "int8", batch, q)
	}
	run.SpeedupBatch1 = float64(byKey["forward1"].NsPerOp) / float64(byKey["infer1"].NsPerOp)
	run.SpeedupBatch16 = float64(byKey["forward16"].NsPerOp) / float64(byKey["infer16"].NsPerOp)
	run.Int8SpeedupBatch1 = float64(byKey["infer1"].NsPerOp) / float64(byKey["int8-1"].NsPerOp)
	run.Int8SpeedupBatch16 = float64(byKey["infer16"].NsPerOp) / float64(byKey["int8-16"].NsPerOp)

	// Autotuned kernel mix: Winograd/NCHWc/direct per conv layer, int8 in
	// the competition when the quant gate passed, same gate epsilon.
	// Retargeting happens after the fp32 rows are measured, so they keep
	// pricing the plain im2col path.
	qnet := dec.Net
	if !dec.Enabled {
		qnet = nil
	}
	plan, err := model.AutotuneKernels(net, qnet, []int{cfg.InBands, cfg.InSize, cfg.InSize}, calib,
		model.KernelOptions{Batches: []int{1, 16}, MaxAPDrop: 0.05})
	if err != nil {
		return nil, err
	}
	run.KernelMix = plan.Mix()
	run.KernelDemotions = plan.Demotions
	run.KernelAPDrop = plan.Drop
	for _, batch := range []int{1, 16} {
		x := tensor.New(batch, cfg.InBands, cfg.InSize, cfg.InSize)
		rng := rand.New(rand.NewSource(int64(batch)))
		for i := range x.Data() {
			x.Data()[i] = rng.Float32()
		}
		ta := tensor.NewArena()
		var tdets []metrics.Detection
		tb := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ta.Reset()
				tdets = model.InferDetect(plan.Served, x, ta, tdets)
			}
		})
		byKey[fmt.Sprintf("tuned-%d", batch)] = appendRow(&run, "infer", "tuned", batch, tb)
	}
	run.TunedSpeedupBatch1 = float64(byKey["infer1"].NsPerOp) / float64(byKey["tuned-1"].NsPerOp)
	run.TunedSpeedupBatch16 = float64(byKey["infer16"].NsPerOp) / float64(byKey["tuned-16"].NsPerOp)

	res := &InferenceBenchResult{}
	loadBenchFile(outPath, res)
	res.Model = cfg.Name + " /4 @50px"
	res.Provenance = CollectProvenance()
	res.Runs = mergeRunByProcs(res.Runs, run)
	if err := writeBenchFile(outPath, res); err != nil {
		return nil, err
	}
	return res, nil
}

// loadBenchFile fills v from path when it exists and parses; a missing
// or incompatible file just means starting fresh.
func loadBenchFile(path string, v any) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return
	}
	_ = json.Unmarshal(buf, v)
}

func writeBenchFile(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// mergeRunByProcs replaces the run with the same GOMAXPROCS (each
// invocation re-measures its own setting) and keeps runs sorted.
func mergeRunByProcs(runs []InferenceBenchRun, run InferenceBenchRun) []InferenceBenchRun {
	out := runs[:0]
	for _, r := range runs {
		if r.GOMAXPROCS != run.GOMAXPROCS {
			out = append(out, r)
		}
	}
	out = append(out, run)
	sort.Slice(out, func(i, j int) bool { return out[i].GOMAXPROCS < out[j].GOMAXPROCS })
	return out
}

func appendRow(run *InferenceBenchRun, path, precision string, batch int, r testing.BenchmarkResult) InferenceBenchRow {
	row := InferenceBenchRow{
		Path:       path,
		Precision:  precision,
		Batch:      batch,
		NsPerOp:    r.NsPerOp(),
		NsPerImg:   float64(r.NsPerOp()) / float64(batch),
		AllocsOp:   r.AllocsPerOp(),
		BytesOp:    r.AllocedBytesPerOp(),
		Iterations: r.N,
	}
	run.Rows = append(run.Rows, row)
	return row
}

// synthDetectData builds a synthetic held-out split for the bench gate:
// random clips, half positives with scattered boxes.
func synthDetectData(rng *rand.Rand, n, bands, size int) *terrain.Dataset {
	ds := &terrain.Dataset{ClipSize: size}
	for i := 0; i < n; i++ {
		img := tensor.New(bands, size, size)
		img.RandNormal(rng, 0, 1)
		s := terrain.Sample{Image: img}
		if i%2 == 0 {
			s.Target = nn.DetectionTarget{
				HasObject: true,
				CX:        0.2 + 0.6*rng.Float32(),
				CY:        0.2 + 0.6*rng.Float32(),
				W:         0.1 + 0.2*rng.Float32(),
				H:         0.1 + 0.2*rng.Float32(),
			}
		}
		ds.Samples = append(ds.Samples, s)
	}
	return ds
}

// Render writes the benchmark table, one block per GOMAXPROCS run.
func (r *InferenceBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference fast path — %s\n", r.Model)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "GOMAXPROCS=%d, pool workers=%d, int8 deterministic=%t\n",
			run.GOMAXPROCS, run.PoolWorkers, run.Int8Deterministic)
		if g := run.Gate; g != nil {
			fmt.Fprintf(&b, "quant gate: fp32 AP=%.4f int8 AP=%.4f drop=%.4f epsilon=%.4f enabled=%t (%d quantized, %d fallback)\n",
				g.FP32AP, g.Int8AP, g.Drop, g.Epsilon, g.Enabled, g.QuantizedLayers, g.FallbackLayers)
		}
		fmt.Fprintf(&b, "%-8s %-5s %6s %14s %14s %12s %12s\n", "path", "prec", "batch", "ns/op", "ns/image", "allocs/op", "B/op")
		for _, row := range run.Rows {
			fmt.Fprintf(&b, "%-8s %-5s %6d %14d %14.0f %12d %12d\n",
				row.Path, row.Precision, row.Batch, row.NsPerOp, row.NsPerImg, row.AllocsOp, row.BytesOp)
		}
		fmt.Fprintf(&b, "fast-path speedup vs forward: %.2fx at batch 1, %.2fx at batch 16\n", run.SpeedupBatch1, run.SpeedupBatch16)
		fmt.Fprintf(&b, "int8 speedup vs fp32 fast path: %.2fx at batch 1, %.2fx at batch 16\n", run.Int8SpeedupBatch1, run.Int8SpeedupBatch16)
		if run.KernelMix != "" {
			fmt.Fprintf(&b, "tuned speedup vs fp32 fast path: %.2fx at batch 1, %.2fx at batch 16 (demotions=%d ap_drop=%.4f)\n",
				run.TunedSpeedupBatch1, run.TunedSpeedupBatch16, run.KernelDemotions, run.KernelAPDrop)
			fmt.Fprintf(&b, "kernel mix: %s\n", run.KernelMix)
		}
	}
	return b.String()
}

package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// InferenceBenchRow is one (path, batch) measurement.
type InferenceBenchRow struct {
	Path       string  `json:"path"`  // "forward" (training graph) or "infer" (fast path)
	Batch      int     `json:"batch"` // clips per forward pass
	NsPerOp    int64   `json:"ns_per_op"`
	NsPerImg   float64 `json:"ns_per_image"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
	Iterations int     `json:"iterations"`
}

// InferenceBenchRun is the benchmark at one GOMAXPROCS setting. The
// worker pool sizes itself once per process, so each run comes from a
// separate process invocation (see `make bench-inference`).
type InferenceBenchRun struct {
	GOMAXPROCS     int                 `json:"gomaxprocs"`
	PoolWorkers    int                 `json:"pool_workers"`
	Rows           []InferenceBenchRow `json:"rows"`
	SpeedupBatch1  float64             `json:"speedup_batch1"`
	SpeedupBatch16 float64             `json:"speedup_batch16"`
}

// InferenceBenchResult records the CPU inference fast-path benchmark:
// the training-graph Forward (the pre-fast-path serving path) against
// the packed/fused/arena Infer path at batch 1 and batch 16, plus the
// resulting speedups — one run per GOMAXPROCS setting, merged across
// invocations. It is written to BENCH_inference.json so later PRs have
// a perf trajectory to compare against.
type InferenceBenchResult struct {
	Model string              `json:"model"`
	Runs  []InferenceBenchRun `json:"runs"`
}

// InferenceBench benchmarks both forward paths on a width-scaled
// Original SPP-Net and merges the result for the current GOMAXPROCS
// into outPath (defaults to BENCH_inference.json when empty).
func InferenceBench(outPath string) (*InferenceBenchResult, error) {
	if outPath == "" {
		outPath = "BENCH_inference.json"
	}
	cfg := model.OriginalSPPNet().Scaled(4).WithInput(4, 50)
	net, err := cfg.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	nn.PrepareInference(net)
	run := InferenceBenchRun{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PoolWorkers: tensor.PoolWorkers(),
	}

	byKey := map[string]InferenceBenchRow{}
	for _, batch := range []int{1, 16} {
		x := tensor.New(batch, cfg.InBands, cfg.InSize, cfg.InSize)
		rng := rand.New(rand.NewSource(int64(batch)))
		for i := range x.Data() {
			x.Data()[i] = rng.Float32()
		}

		fwd := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				model.Detect(net, x)
			}
		})
		byKey[fmt.Sprintf("forward%d", batch)] = appendRow(&run, "forward", batch, fwd)

		arena := tensor.NewArena()
		var dets []metrics.Detection
		inf := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				arena.Reset()
				dets = model.InferDetect(net, x, arena, dets)
			}
		})
		byKey[fmt.Sprintf("infer%d", batch)] = appendRow(&run, "infer", batch, inf)
	}
	run.SpeedupBatch1 = float64(byKey["forward1"].NsPerOp) / float64(byKey["infer1"].NsPerOp)
	run.SpeedupBatch16 = float64(byKey["forward16"].NsPerOp) / float64(byKey["infer16"].NsPerOp)

	res := &InferenceBenchResult{}
	loadBenchFile(outPath, res)
	res.Model = cfg.Name + " /4 @50px"
	res.Runs = mergeRunByProcs(res.Runs, run)
	if err := writeBenchFile(outPath, res); err != nil {
		return nil, err
	}
	return res, nil
}

// loadBenchFile fills v from path when it exists and parses; a missing
// or incompatible file just means starting fresh.
func loadBenchFile(path string, v any) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return
	}
	_ = json.Unmarshal(buf, v)
}

func writeBenchFile(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// mergeRunByProcs replaces the run with the same GOMAXPROCS (each
// invocation re-measures its own setting) and keeps runs sorted.
func mergeRunByProcs(runs []InferenceBenchRun, run InferenceBenchRun) []InferenceBenchRun {
	out := runs[:0]
	for _, r := range runs {
		if r.GOMAXPROCS != run.GOMAXPROCS {
			out = append(out, r)
		}
	}
	out = append(out, run)
	sort.Slice(out, func(i, j int) bool { return out[i].GOMAXPROCS < out[j].GOMAXPROCS })
	return out
}

func appendRow(run *InferenceBenchRun, path string, batch int, r testing.BenchmarkResult) InferenceBenchRow {
	row := InferenceBenchRow{
		Path:       path,
		Batch:      batch,
		NsPerOp:    r.NsPerOp(),
		NsPerImg:   float64(r.NsPerOp()) / float64(batch),
		AllocsOp:   r.AllocsPerOp(),
		BytesOp:    r.AllocedBytesPerOp(),
		Iterations: r.N,
	}
	run.Rows = append(run.Rows, row)
	return row
}

// Render writes the benchmark table, one block per GOMAXPROCS run.
func (r *InferenceBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference fast path — %s\n", r.Model)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "GOMAXPROCS=%d, pool workers=%d\n", run.GOMAXPROCS, run.PoolWorkers)
		fmt.Fprintf(&b, "%-8s %6s %14s %14s %12s %12s\n", "path", "batch", "ns/op", "ns/image", "allocs/op", "B/op")
		for _, row := range run.Rows {
			fmt.Fprintf(&b, "%-8s %6d %14d %14.0f %12d %12d\n",
				row.Path, row.Batch, row.NsPerOp, row.NsPerImg, row.AllocsOp, row.BytesOp)
		}
		fmt.Fprintf(&b, "speedup: %.2fx at batch 1, %.2fx at batch 16\n", run.SpeedupBatch1, run.SpeedupBatch16)
	}
	return b.String()
}

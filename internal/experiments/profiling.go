package experiments

import (
	"fmt"
	"strings"

	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/profiler"
)

// profileAll profiles SPP-Net #2 under its IOS schedule at every batch
// size, one cold process per batch (as the paper's nsys runs were).
func profileAll() (map[int]profiler.Profile, error) {
	dev := Device()
	cfg := model.SPPNet2()
	g, err := cfg.BuildGraph()
	if err != nil {
		return nil, err
	}
	out := make(map[int]profiler.Profile, len(Batches))
	for _, batch := range Batches {
		sched, err := ios.Optimize(g, ios.NewSimOracle(dev), batch)
		if err != nil {
			return nil, err
		}
		out[batch] = profiler.Run(dev, g, sched, batch)
	}
	return out, nil
}

// Figure7Row is one batch size's memory-operation timing.
type Figure7Row struct {
	Batch       int
	PerImageNs  float64
	TotalNs     float64
	Transfers   int
	BytesMovedM float64
}

// Figure7Result reproduces Fig 7: GPU memops timing usage across batch
// sizes (per-image transfer time, which stabilizes once fixed per-copy
// overhead amortizes; the paper reports stabilization at 19168 ns).
type Figure7Result struct {
	Rows []Figure7Row
}

// Figure7 profiles every batch size and extracts the memop report.
func Figure7() (*Figure7Result, error) {
	profiles, err := profileAll()
	if err != nil {
		return nil, err
	}
	res := &Figure7Result{}
	for _, batch := range Batches {
		p := profiles[batch]
		res.Rows = append(res.Rows, Figure7Row{
			Batch:       batch,
			PerImageNs:  p.Memops.PerSampleNs,
			TotalNs:     p.Memops.TotalNs,
			Transfers:   p.Memops.Transfers,
			BytesMovedM: float64(p.Memops.BytesMoved) / 1e6,
		})
	}
	return res, nil
}

// Render writes the figure's series.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — GPU memops timing usage (per-image ns; paper stabilizes at 19168)\n")
	fmt.Fprintf(&b, "%6s %14s %14s %10s %10s\n", "batch", "ns/image", "total ns", "copies", "MB moved")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %14.0f %14.0f %10d %10.2f\n", row.Batch, row.PerImageNs, row.TotalNs, row.Transfers, row.BytesMovedM)
	}
	return b.String()
}

// Figure8Row is one batch size's CUDA API shares.
type Figure8Row struct {
	Batch      int
	LibLoadPct float64
	SyncPct    float64
	LaunchPct  float64
	MemcpyPct  float64
}

// Figure8Result reproduces Fig 8: CUDA API time shares across batch sizes
// (cuLibraryLoadData dominant at batch 1; cudaDeviceSynchronize overtakes
// it by batch 64).
type Figure8Result struct {
	Rows []Figure8Row
}

// Figure8 profiles every batch size and extracts API shares.
func Figure8() (*Figure8Result, error) {
	profiles, err := profileAll()
	if err != nil {
		return nil, err
	}
	res := &Figure8Result{}
	for _, batch := range Batches {
		p := profiles[batch]
		res.Rows = append(res.Rows, Figure8Row{
			Batch:      batch,
			LibLoadPct: p.API.Share("cuLibraryLoadData"),
			SyncPct:    p.API.Share("cudaDeviceSynchronize"),
			LaunchPct:  p.API.Share("cudaLaunchKernel"),
			MemcpyPct:  p.API.Share("cudaMemcpyH2D") + p.API.Share("cudaMemcpyD2H"),
		})
	}
	return res, nil
}

// Render writes the figure's series.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8 — CUDA API usage shares (%)\n")
	fmt.Fprintf(&b, "%6s %20s %24s %18s %14s\n", "batch", "cuLibraryLoadData", "cudaDeviceSynchronize", "cudaLaunchKernel", "cudaMemcpy")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %19.1f%% %23.1f%% %17.1f%% %13.1f%%\n",
			row.Batch, row.LibLoadPct, row.SyncPct, row.LaunchPct, row.MemcpyPct)
	}
	return b.String()
}

// Table3Row is one batch size's kernel-class breakdown.
type Table3Row struct {
	Batch      int
	MatMulPct  float64
	PoolingPct float64
	ConvPct    float64
}

// Table3Result reproduces Table 3: GPU kernel time by class across batch
// sizes (matmul dominant at batch 1, conv dominant at batch 64).
type Table3Result struct {
	Rows  []Table3Row
	Paper []Table3Row
}

// paperTable3 holds the published percentages for side-by-side rendering.
var paperTable3 = []Table3Row{
	{1, 41.6, 14.1, 7.7},
	{2, 34.8, 14.4, 9.7},
	{4, 39.9, 13.5, 9.5},
	{8, 34.8, 13.7, 10},
	{16, 18.1, 17.1, 16.6},
	{32, 15.7, 14.7, 13.4},
	{64, 7.4, 8.6, 77.2},
}

// Table3 profiles every batch size and extracts kernel-class shares.
func Table3() (*Table3Result, error) {
	profiles, err := profileAll()
	if err != nil {
		return nil, err
	}
	res := &Table3Result{Paper: paperTable3}
	for _, batch := range Batches {
		p := profiles[batch]
		res.Rows = append(res.Rows, Table3Row{
			Batch:      batch,
			MatMulPct:  p.Kernels.Share("MatMul"),
			PoolingPct: p.Kernels.Share("Pooling"),
			ConvPct:    p.Kernels.Share("Conv"),
		})
	}
	return res, nil
}

// Render writes the table with the paper's numbers alongside.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3 — GPU kernel time by class (measured % | paper %)\n")
	fmt.Fprintf(&b, "%6s %18s %18s %18s\n", "batch", "MatMul", "Pooling", "Conv")
	for i, row := range r.Rows {
		p := r.Paper[i]
		fmt.Fprintf(&b, "%6d %8.1f | %5.1f %10.1f | %5.1f %10.1f | %5.1f\n",
			row.Batch, row.MatMulPct, p.MatMulPct, row.PoolingPct, p.PoolingPct, row.ConvPct, p.ConvPct)
	}
	return b.String()
}

// Package experiments regenerates every data artifact of the paper's
// evaluation — Table 1 (NAS accuracy), Table 2 (sequential vs IOS
// latency), Figure 6 (batch-size efficiency), Figure 7 (GPU memops
// timing), Figure 8 (CUDA API shares), Table 3 (kernel-class breakdown) —
// plus the §8.1 baseline comparison and the ablations called out in
// DESIGN.md §5. Each experiment returns a typed result with a Render
// method; cmd/drainnet-bench and the repo's benchmarks are thin wrappers.
package experiments

import (
	"fmt"
	"math/rand"

	"drainnet/internal/gpu"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/terrain"
	"drainnet/internal/train"
)

// Batches is the paper's batch-size sweep (§6.4, §7).
var Batches = []int{1, 2, 4, 8, 16, 32, 64}

// DataConfig controls the synthetic dataset and training budget used by
// the accuracy experiments. The default is sized for minutes-scale runs
// on a CPU: the architecture family is width-scaled (model.Config.Scaled)
// and clips are smaller than the paper's 100×100, which preserves the
// relative ordering NAS explores while keeping pure-Go training cheap.
type DataConfig struct {
	TerrainRows, TerrainCols int
	RoadSpacing              int
	StreamThreshold          float64
	TerrainSeed              int64

	ClipSize         int
	ClipsPerCrossing int
	JitterFrac       float64

	WidthScale int
	Epochs     int
	BatchSize  int
	SplitSeed  int64
	NetSeed    int64

	// IoUThreshold scores AP (Table 1 uses 0.4, between the strict COCO
	// 0.5 and the lenient 0.3).
	IoUThreshold float64
}

// FastData is the default minutes-scale configuration.
func FastData() DataConfig {
	return DataConfig{
		TerrainRows: 384, TerrainCols: 384,
		RoadSpacing:      72,
		StreamThreshold:  120,
		TerrainSeed:      2022,
		ClipSize:         40,
		ClipsPerCrossing: 4,
		JitterFrac:       0.08,
		WidthScale:       8,
		Epochs:           24,
		BatchSize:        10,
		SplitSeed:        5,
		NetSeed:          11,
		IoUThreshold:     0.4,
	}
}

// TinyData is a seconds-scale configuration for tests.
func TinyData() DataConfig {
	d := FastData()
	d.TerrainRows, d.TerrainCols = 256, 256
	d.ClipsPerCrossing = 2
	d.WidthScale = 16
	d.Epochs = 10
	return d
}

// BuildData synthesizes the watershed, renders the orthophoto, clips the
// dataset, and splits it by crossing.
func BuildData(dc DataConfig) (trainDS, testDS *terrain.Dataset, err error) {
	tc := terrain.DefaultConfig()
	tc.Rows, tc.Cols = dc.TerrainRows, dc.TerrainCols
	tc.RoadSpacing = dc.RoadSpacing
	tc.StreamThreshold = dc.StreamThreshold
	tc.Seed = dc.TerrainSeed
	w, err := terrain.Generate(tc)
	if err != nil {
		return nil, nil, err
	}
	img := terrain.Render(w)
	cc := terrain.DefaultClipConfig()
	cc.Size = dc.ClipSize
	cc.JitterFrac = dc.JitterFrac
	cc.ClipsPerCrossing = dc.ClipsPerCrossing
	ds, err := terrain.BuildDataset(w, img, cc)
	if err != nil {
		return nil, nil, err
	}
	trainDS, testDS = ds.SplitByCrossing(0.8, dc.SplitSeed)
	if len(trainDS.Samples) == 0 || len(testDS.Samples) == 0 {
		return nil, nil, fmt.Errorf("experiments: degenerate split (%d train, %d test)", len(trainDS.Samples), len(testDS.Samples))
	}
	return trainDS, testDS, nil
}

// TrainAndScore trains one architecture under the shared protocol and
// returns its test AP.
func TrainAndScore(cfg model.Config, dc DataConfig, trainDS, testDS *terrain.Dataset) (float64, error) {
	scaled := cfg.Scaled(dc.WidthScale).WithInput(terrain.NumBands, dc.ClipSize)
	_, ap, err := TrainNet(scaled, dc, trainDS, testDS)
	return ap, err
}

// TrainNet trains one already-scaled architecture under the shared
// protocol and returns the trained network alongside its test AP — the
// hardware-in-the-loop NAS needs the network itself to measure.
func TrainNet(scaled model.Config, dc DataConfig, trainDS, testDS *terrain.Dataset) (*nn.Sequential, float64, error) {
	net, err := scaled.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		return nil, 0, err
	}
	opt := train.PaperOptions()
	opt.Epochs = dc.Epochs
	opt.BatchSize = dc.BatchSize
	opt.BoxWeight = 5
	opt.LRStepEpoch = dc.Epochs * 2 / 3
	opt.LRStepGamma = 0.1
	if _, err := train.Fit(net, trainDS, opt); err != nil {
		return nil, 0, err
	}
	return net, train.Evaluate(net, testDS, dc.IoUThreshold).AP, nil
}

// Device returns the simulated GPU every efficiency experiment uses.
func Device() gpu.DeviceConfig { return gpu.RTXA5500() }

package experiments

import "drainnet/internal/provenance"

// Provenance aliases the shared bench-provenance stamp
// (internal/provenance); older BENCH_*.json readers keep working since
// the JSON shape is unchanged.
type Provenance = provenance.Stamp

// CollectProvenance gathers the stamp for the current process.
func CollectProvenance() *Provenance { return provenance.Collect() }

package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/nas"
	"drainnet/internal/nn"
	"drainnet/internal/provenance"
	"drainnet/internal/terrain"
)

// This file is the hardware-in-the-loop NAS experiment: e(n) is the
// measured steady-state latency of each candidate's compiled executor on
// this machine (after accuracy-gated quantization, kernel autotuning and
// IOS scheduling), instead of the simulated-GPU price the sim oracle
// charges. BENCH_nas.json records cold/warm/parallel search wall-clocks,
// the executor-overlap scaling proof, and the sim-vs-measured winner
// comparison at the serving batch.

// NASProxy is the fast analytic accuracy evaluator: accuracy rises with
// receptive field, SPP depth and capacity, saturating — used as the
// prefilter in measured search and as the whole evaluator in -proxy mode.
func NASProxy() nas.Evaluator {
	return nas.FunctionalEvaluator(func(cfg model.Config) (float64, error) {
		acc := 0.90
		if cfg.Convs[0].Kernel >= 3 {
			acc += 0.02
		}
		if cfg.Convs[0].Kernel >= 7 {
			acc -= 0.01 // oversize first kernel hurts on small clips
		}
		acc += 0.01 * float64(len(cfg.SPPLevels)-1)
		if cfg.FCWidth >= 1024 {
			acc += 0.02
		}
		if cfg.FCWidth >= 8192 {
			acc -= 0.005 // slight overfit
		}
		return acc, nil
	})
}

// NASTrainer adapts the shared training protocol to the measured
// evaluator: configs arrive already scaled. Fit shuffles its training
// split in place, so each call gets a private view of the sample slice —
// parallel workers never race on sample order, and every architecture
// trains from the identical initial order no matter how many candidates
// ran before it (accuracy stays deterministic at any parallelism).
func NASTrainer(dc DataConfig, trainDS, testDS *terrain.Dataset) nas.Trainer {
	return nas.TrainerFunc(func(scaled model.Config) (*nn.Sequential, float64, error) {
		local := *trainDS
		local.Samples = append([]terrain.Sample(nil), trainDS.Samples...)
		return TrainNet(scaled, dc, &local, testDS)
	})
}

// NASProxyTrainer builds untrained networks and scores them with the
// analytic proxy — the seconds-scale stand-in for demos where real
// per-candidate training is too slow.
func NASProxyTrainer(dc DataConfig) nas.Trainer {
	proxy := NASProxy()
	return nas.TrainerFunc(func(scaled model.Config) (*nn.Sequential, float64, error) {
		net, err := scaled.Build(rand.New(rand.NewSource(dc.NetSeed)))
		if err != nil {
			return nil, 0, err
		}
		acc, err := proxy.Evaluate(scaled)
		return net, acc, err
	})
}

// NASEvaluatorOptions assembles a MeasuredEvaluator over the shared
// training protocol.
type NASEvaluatorOptions struct {
	Threshold float64
	MaxAPDrop float64
	MaxBatch  int
	Cache     *ios.CostCache
	// Proxy switches the trainer to the analytic proxy (no real
	// training); Prefilter enables the proxy accuracy prefilter in front
	// of real training.
	Proxy     bool
	Prefilter bool
}

// NewNASEvaluator wires the measured evaluator to the experiment data
// protocol: dataset, calibration split, input geometry and width scale.
func NewNASEvaluator(dc DataConfig, opts NASEvaluatorOptions) (*nas.MeasuredEvaluator, error) {
	var trainer nas.Trainer
	var calib *terrain.Dataset
	if opts.Proxy {
		trainer = NASProxyTrainer(dc)
	} else {
		trainDS, testDS, err := BuildData(dc)
		if err != nil {
			return nil, err
		}
		trainer = NASTrainer(dc, trainDS, testDS)
		calib = testDS
	}
	ev := &nas.MeasuredEvaluator{
		Trainer:    trainer,
		Threshold:  opts.Threshold,
		WidthScale: dc.WidthScale,
		InBands:    terrain.NumBands,
		InSize:     dc.ClipSize,
		Calib:      calib,
		MaxAPDrop:  opts.MaxAPDrop,
		MaxBatch:   opts.MaxBatch,
		Cache:      opts.Cache,
	}
	if opts.Prefilter {
		ev.Proxy = NASProxy()
	}
	return ev, nil
}

// NASRunStats summarizes one search run inside the bench.
type NASRunStats struct {
	Label     string  `json:"label"`
	Parallel  int     `json:"parallel"`
	WallMs    float64 `json:"wall_ms"`
	Trials    int     `json:"trials"`
	Qualified int     `json:"qualified"`
	CacheHits int     `json:"cache_hits"`
	Winner    string  `json:"winner"`
	WinnerBN  float64 `json:"winner_bn_ns"`
}

// NASExecutorScaling is the synthetic overlap proof: a fixed-cost
// evaluator (sleep, no CPU contention) run sequentially and with N
// workers. Unlike the real-workload numbers — which on a single-core
// host cannot beat 1× for CPU-bound training — this isolates the
// executor machinery and must show near-N× overlap on any host.
type NASExecutorScaling struct {
	Trials     int     `json:"trials"`
	PerTrialMs float64 `json:"per_trial_ms"`
	Workers    int     `json:"workers"`
	SeqWallMs  float64 `json:"seq_wall_ms"`
	ParWallMs  float64 `json:"par_wall_ms"`
	Speedup    float64 `json:"speedup"`
}

// NASSimVsMeasured compares the sim-oracle and measured-oracle winners
// on the ground truth both were competing for: real measured latency at
// the serving batch. The measured winner can never lose — it minimizes
// exactly that metric over the same qualified set — and it wins outright
// whenever the sim oracle's blindness to precision/kernel/schedule
// choices makes it crown a slower candidate.
type NASSimVsMeasured struct {
	Batch             int     `json:"batch"`
	SimWinner         string  `json:"sim_winner"`
	SimWinnerRealNs   float64 `json:"sim_winner_real_ns"`
	MeasWinner        string  `json:"measured_winner"`
	MeasWinnerRealNs  float64 `json:"measured_winner_real_ns"`
	MeasuredNoSlowerX float64 `json:"measured_speedup_vs_sim_winner"`
}

// NASHardwareResult is the BENCH_nas.json payload.
type NASHardwareResult struct {
	Options       nas.SearchOptions  `json:"options"`
	Threshold     float64            `json:"threshold"`
	JointSize     int                `json:"joint_size"`
	Proxy         bool               `json:"proxy_trainer"`
	Runs          []NASRunStats      `json:"runs"`
	WinnerStable  bool               `json:"winner_bit_identical_on_warm_cache"`
	WarmSpeedup   float64            `json:"warm_parallel_speedup"`
	Executor      NASExecutorScaling `json:"executor_scaling"`
	SimVsMeasured NASSimVsMeasured   `json:"sim_vs_measured"`
	Winner        *nas.TrialResult   `json:"winner,omitempty"`
	Trials        []nas.TrialResult  `json:"ranked_trials"`
	CacheEntries  int                `json:"cache_entries"`
	Note          string             `json:"note,omitempty"`
	Provenance    *provenance.Stamp  `json:"provenance,omitempty"`
}

// Render formats the bench summary.
func (r *NASHardwareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hardware-in-the-loop NAS: joint space %d, %d trials, a(n) > %.2f (proxy trainer: %t)\n",
		r.JointSize, r.Options.Trials, r.Threshold, r.Proxy)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "  %-10s parallel=%d wall=%8.0f ms  cache-hits=%d/%d  winner=%s (bN %.3f ms)\n",
			run.Label, run.Parallel, run.WallMs, run.CacheHits, run.Trials, run.Winner, run.WinnerBN/1e6)
	}
	fmt.Fprintf(&b, "  warm winner bit-identical: %t; warm parallel speedup: %.2f×\n", r.WinnerStable, r.WarmSpeedup)
	fmt.Fprintf(&b, "  executor overlap (synthetic %0.f ms/trial): seq %.0f ms, par(%d) %.0f ms → %.2f×\n",
		r.Executor.PerTrialMs, r.Executor.SeqWallMs, r.Executor.Workers, r.Executor.ParWallMs, r.Executor.Speedup)
	fmt.Fprintf(&b, "  sim winner %s: real b%d %.3f ms | measured winner %s: %.3f ms (%.2f× no slower)\n",
		r.SimVsMeasured.SimWinner, r.SimVsMeasured.Batch, r.SimVsMeasured.SimWinnerRealNs/1e6,
		r.SimVsMeasured.MeasWinner, r.SimVsMeasured.MeasWinnerRealNs/1e6, r.SimVsMeasured.MeasuredNoSlowerX)
	if r.Note != "" {
		fmt.Fprintf(&b, "  note: %s\n", r.Note)
	}
	return b.String()
}

// NASBenchConfig parameterizes NASHardwareBench.
type NASBenchConfig struct {
	Trials    int
	Parallel  int
	Threshold float64
	Seed      int64
	MaxBatch  int
	// Proxy uses the analytic-proxy trainer (seconds-scale); the real
	// trainer otherwise.
	Proxy bool
	// CachePath persists the shared cost cache across invocations.
	CachePath string
}

// NASHardwareBench runs the measured search three times over one shared
// cost cache — cold sequential, warm sequential, warm parallel — plus
// the synthetic executor-overlap measurement and the sim-vs-measured
// winner comparison, and writes the result to path.
func NASHardwareBench(path string, bc NASBenchConfig) (*NASHardwareResult, error) {
	if bc.Trials <= 0 {
		bc.Trials = 12
	}
	if bc.Parallel <= 0 {
		bc.Parallel = 4
	}
	if bc.MaxBatch <= 0 {
		bc.MaxBatch = 16
	}
	dc := TinyData()
	space := nas.DefaultJointSpace()

	cache := ios.NewCostCache()
	if bc.CachePath != "" {
		var err error
		if cache, err = ios.LoadCostCache(bc.CachePath); err != nil {
			return nil, err
		}
	}
	opts := nas.SearchOptions{Strategy: "random", Trials: bc.Trials, Seed: bc.Seed, Parallel: 1}
	evalOpts := NASEvaluatorOptions{
		Threshold: bc.Threshold, MaxAPDrop: 0.02, MaxBatch: bc.MaxBatch,
		Cache: cache, Proxy: bc.Proxy, Prefilter: !bc.Proxy,
	}

	runOnce := func(label string, parallel int) (*nas.SearchResult, NASRunStats, error) {
		ev, err := NewNASEvaluator(dc, evalOpts)
		if err != nil {
			return nil, NASRunStats{}, err
		}
		o := opts
		o.Parallel = parallel
		res, err := nas.Search(space, ev, o)
		if err != nil {
			return nil, NASRunStats{}, err
		}
		stats := NASRunStats{
			Label: label, Parallel: parallel, WallMs: res.WallMs,
			Trials: len(res.Trials), Qualified: res.Qualified, CacheHits: res.CacheHits,
		}
		if w := res.Winner(); w != nil {
			stats.Winner, stats.WinnerBN = w.Key, w.LatencyBNNs
		}
		return res, stats, nil
	}

	cold, coldStats, err := runOnce("cold-seq", 1)
	if err != nil {
		return nil, err
	}
	warmSeq, warmSeqStats, err := runOnce("warm-seq", 1)
	if err != nil {
		return nil, err
	}
	warmPar, warmParStats, err := runOnce("warm-par", bc.Parallel)
	if err != nil {
		return nil, err
	}

	res := &NASHardwareResult{
		Options:   opts,
		Threshold: bc.Threshold,
		JointSize: space.JointSize(),
		Proxy:     bc.Proxy,
		Runs:      []NASRunStats{coldStats, warmSeqStats, warmParStats},
	}
	// Bit-for-bit warm determinism: same winner key and identical cached
	// latencies across all three runs.
	res.WinnerStable = sameWinner(cold, warmSeq) && sameWinner(warmSeq, warmPar)
	if warmParStats.WallMs > 0 {
		res.WarmSpeedup = warmSeqStats.WallMs / warmParStats.WallMs
	}
	res.Executor = executorScaling(space, bc.Parallel)
	res.SimVsMeasured = simVsMeasured(cold, dc, bc.MaxBatch)
	if w := cold.Winner(); w != nil {
		res.Winner = w
	}
	res.Trials = cold.Ranked()
	res.CacheEntries = cache.Len()
	res.Provenance = provenance.Collect()
	if bc.Proxy {
		res.Note = "proxy trainer: accuracies are the analytic stand-in; latencies are real measurements"
	}

	if bc.CachePath != "" {
		if err := cache.Save(bc.CachePath); err != nil {
			return nil, err
		}
	}
	if path != "" {
		if err := writeBenchFile(path, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// sameWinner demands bit-identical winning measurements, not just the
// same key — the warm-cache reproducibility claim.
func sameWinner(a, b *nas.SearchResult) bool {
	wa, wb := a.Winner(), b.Winner()
	if wa == nil || wb == nil {
		return wa == wb
	}
	return wa.Key == wb.Key && wa.LatencyB1Ns == wb.LatencyB1Ns && wa.LatencyBNNs == wb.LatencyBNNs
}

// executorScaling measures the search executor's overlap with a
// fixed-cost evaluator: each trial sleeps a constant interval (no CPU
// contention), so an executor that genuinely fans out finishes ~N× faster
// with N workers regardless of core count.
func executorScaling(space nas.Space, workers int) NASExecutorScaling {
	const trials = 16
	const perTrial = 40 * time.Millisecond
	eval := nas.CandidateEvaluatorFunc(func(c nas.CandidateConfig) nas.TrialResult {
		time.Sleep(perTrial)
		return nas.TrialResult{Candidate: c, Key: c.Key(), Accuracy: 1, Qualified: true, LatencyBNNs: 1}
	})
	run := func(par int) float64 {
		start := time.Now()
		if _, err := nas.Search(space, eval, nas.SearchOptions{Strategy: "random", Trials: trials, Seed: 9, Parallel: par}); err != nil {
			return 0
		}
		return float64(time.Since(start)) / 1e6
	}
	seq := run(1)
	par := run(workers)
	sc := NASExecutorScaling{
		Trials: trials, PerTrialMs: float64(perTrial) / 1e6, Workers: workers,
		SeqWallMs: seq, ParWallMs: par,
	}
	if par > 0 {
		sc.Speedup = seq / par
	}
	return sc
}

// simVsMeasured reruns the selection over the cold run's qualified
// trials with the simulated-GPU oracle and compares both winners on real
// measured latency at the serving batch.
func simVsMeasured(cold *nas.SearchResult, dc DataConfig, batch int) NASSimVsMeasured {
	out := NASSimVsMeasured{Batch: batch}
	ranked := cold.Ranked()
	if len(ranked) == 0 {
		return out
	}
	meas := ranked[0]
	out.MeasWinner, out.MeasWinnerRealNs = meas.Key, meas.LatencyBNNs

	// The sim oracle prices the architecture graph on the simulated GPU;
	// it cannot see precision, kernel or schedule-on-this-CPU effects.
	sim := nas.IOSMeasurer{Dev: Device()}
	best := -1
	bestLat := 0.0
	for i, t := range ranked {
		scaled := t.Candidate.Arch.Scaled(dc.WidthScale).WithInput(terrain.NumBands, dc.ClipSize)
		_, lat, err := sim.Latency(scaled, batch)
		if err != nil {
			continue
		}
		if best < 0 || lat < bestLat || (lat == bestLat && t.Key < ranked[best].Key) {
			best, bestLat = i, lat
		}
	}
	if best >= 0 {
		out.SimWinner, out.SimWinnerRealNs = ranked[best].Key, ranked[best].LatencyBNNs
		if out.MeasWinnerRealNs > 0 {
			out.MeasuredNoSlowerX = out.SimWinnerRealNs / out.MeasWinnerRealNs
		}
	}
	return out
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"drainnet/internal/ios"
	"drainnet/internal/model"
	"drainnet/internal/nas"
)

// CensusEntry is one architecture's efficiency measurement.
type CensusEntry struct {
	Name     string
	OptMs    float64
	SeqMs    float64
	ParamsMB float64
}

// CensusResult maps the efficiency objective e(n) over the entire §4.2
// search space (175 architectures): the landscape the accuracy constraint
// of §5.4 selects from. Entries are sorted fastest-first.
type CensusResult struct {
	Batch   int
	Entries []CensusEntry
}

// SpaceCensus measures IOS-optimized and sequential latency for every
// architecture in the paper's search space.
func SpaceCensus(batch int) (*CensusResult, error) {
	dev := Device()
	rt := ios.NewRuntime(dev)
	space := nas.DefaultSpace()
	res := &CensusResult{Batch: batch}
	for _, cfg := range space.All() {
		g, err := cfg.BuildGraph()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
		}
		sched, err := ios.Optimize(g, ios.NewSimOracle(dev), batch)
		if err != nil {
			return nil, err
		}
		opt := rt.Measure(g, sched, batch)
		seq := rt.Measure(g, ios.SequentialSchedule(g), batch)
		res.Entries = append(res.Entries, CensusEntry{
			Name:     cfg.Name,
			OptMs:    opt.LatencyNs / 1e6,
			SeqMs:    seq.LatencyNs / 1e6,
			ParamsMB: paramsMB(cfg),
		})
	}
	sort.Slice(res.Entries, func(i, j int) bool { return res.Entries[i].OptMs < res.Entries[j].OptMs })
	return res, nil
}

func paramsMB(cfg model.Config) float64 {
	g, err := cfg.BuildGraph()
	if err != nil {
		return 0
	}
	return float64(g.TotalWeightBytes()) / 1e6
}

// Quartiles returns the min, 25th, median, 75th, and max optimized
// latency over the space.
func (r *CensusResult) Quartiles() [5]float64 {
	n := len(r.Entries)
	at := func(q float64) float64 {
		i := int(q * float64(n-1))
		return r.Entries[i].OptMs
	}
	return [5]float64{at(0), at(0.25), at(0.5), at(0.75), at(1)}
}

// Render writes the census summary with the five fastest and five
// slowest architectures.
func (r *CensusResult) Render() string {
	var b strings.Builder
	q := r.Quartiles()
	fmt.Fprintf(&b, "Search-space latency census (%d architectures, batch %d)\n", len(r.Entries), r.Batch)
	fmt.Fprintf(&b, "optimized latency ms: min %.3f  p25 %.3f  median %.3f  p75 %.3f  max %.3f\n",
		q[0], q[1], q[2], q[3], q[4])
	b.WriteString("fastest:\n")
	for i := 0; i < 5 && i < len(r.Entries); i++ {
		e := r.Entries[i]
		fmt.Fprintf(&b, "  %-28s %8.3f ms (seq %7.3f, %6.1f MB weights)\n", e.Name, e.OptMs, e.SeqMs, e.ParamsMB)
	}
	b.WriteString("slowest:\n")
	for i := len(r.Entries) - 5; i < len(r.Entries); i++ {
		if i < 0 {
			continue
		}
		e := r.Entries[i]
		fmt.Fprintf(&b, "  %-28s %8.3f ms (seq %7.3f, %6.1f MB weights)\n", e.Name, e.OptMs, e.SeqMs, e.ParamsMB)
	}
	return b.String()
}

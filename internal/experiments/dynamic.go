package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/provenance"
	"drainnet/internal/sweep"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
	"drainnet/internal/train"
)

// dynamicBenchBatch is the serving batch size the dynamic bench groups
// sweep traffic into — the same max-batch regime the pool coalesces to.
const dynamicBenchBatch = 16

// DynamicBenchRow is one (scenario, path) measurement over that
// scenario's sweep traffic (every candidate window of a fixed synthetic
// raster, majority empty tiles).
type DynamicBenchRow struct {
	Scenario  string `json:"scenario"`
	Path      string `json:"path"` // tuned (static autotuned mix), dynamic (exit+mask), dynamic-routed (+ int8 easy path)
	Clips     int    `json:"clips"`
	Positives int    `json:"positives"`
	// NsPerImg is total wall time over the whole traffic pass divided by
	// clip count — the §6.4 per-image cost on this traffic mix.
	NsPerImg float64 `json:"ns_per_image"`
	AllocsOp int64   `json:"allocs_per_op"`
	// ExitRate/MaskRate are measured over the timed pass, not the
	// calibration split; Int8Share is the routed-easy fraction
	// (dynamic-routed rows only).
	ExitRate  float64 `json:"exit_rate,omitempty"`
	MaskRate  float64 `json:"mask_rate,omitempty"`
	Int8Share float64 `json:"int8_share,omitempty"`
	// Speedup is the tuned row's ns/image over this row's, at the same
	// scenario; 1.0 for the tuned rows themselves.
	Speedup float64 `json:"speedup_vs_tuned,omitempty"`
}

// DynamicPlanInfo records the accuracy-gate verdict behind a benchmarked
// dynamic run, mirroring the /v1/model dynamic block.
type DynamicPlanInfo struct {
	ExitEnabled   bool    `json:"exit_enabled"`
	MaskEnabled   bool    `json:"mask_enabled"`
	RouterEnabled bool    `json:"router_enabled"`
	Demotions     int     `json:"demotions"`
	FP32AP        float64 `json:"fp32_ap"`
	DynamicAP     float64 `json:"dynamic_ap"`
	Drop          float64 `json:"ap_drop"`
	Epsilon       float64 `json:"epsilon"`
}

// DynamicBenchRun is the benchmark at one GOMAXPROCS setting.
type DynamicBenchRun struct {
	GOMAXPROCS  int               `json:"gomaxprocs"`
	PoolWorkers int               `json:"pool_workers"`
	Plan        DynamicPlanInfo   `json:"plan"`
	Rows        []DynamicBenchRow `json:"rows"`
	// SpeedupMajorityEmpty is the best dynamic-path speedup on the
	// baseline scenario's majority-empty traffic — the headline number
	// the 1.3× target is checked against.
	SpeedupMajorityEmpty float64 `json:"speedup_majority_empty"`
}

// DynamicBenchResult is written to BENCH_dynamic.json: the static
// autotuned kernel mix against the accuracy-gated dynamic inference
// path (early-exit negatives, spatial masking, optional int8 routing)
// over realistic sweep traffic, one run per GOMAXPROCS setting.
type DynamicBenchResult struct {
	Model      string            `json:"model"`
	Provenance *provenance.Stamp `json:"provenance,omitempty"`
	Runs       []DynamicBenchRun `json:"runs"`
}

// dynamicBenchScenarios are the traffic mixes measured: the baseline
// watershed plus two imaging shifts the detector must stay robust under.
var dynamicBenchScenarios = []string{"baseline", "leaf_off", "noisy_sensor"}

// DynamicBench trains a seconds-scale detector, autotunes its kernels
// (the PR-8 static baseline), calibrates the dynamic inference plan on
// baseline sweep traffic, and measures ns/image for each path over each
// scenario's full candidate-window traffic. Merges the current
// GOMAXPROCS run into outPath (defaults to BENCH_dynamic.json).
func DynamicBench(outPath string) (*DynamicBenchResult, error) {
	if outPath == "" {
		outPath = "BENCH_dynamic.json"
	}
	dc := TinyData()
	// Sweep windows hold crossings anywhere, not near-centered like the
	// default clip jitter produces — train with full-window jitter so the
	// calibration-set AP the gate protects is a real detection score.
	dc.JitterFrac = 0.45
	dc.ClipsPerCrossing = 4
	cfg := model.OriginalSPPNet().Scaled(dc.WidthScale).WithInput(terrain.NumBands, dc.ClipSize)
	net, err := cfg.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		return nil, err
	}
	trainDS, testDS, err := BuildData(dc)
	if err != nil {
		return nil, err
	}
	opt := train.PaperOptions()
	opt.Epochs = dc.Epochs
	opt.BatchSize = dc.BatchSize
	opt.BoxWeight = 5
	opt.LRStepEpoch = dc.Epochs * 2 / 3
	opt.LRStepGamma = 0.1
	if _, err := train.Fit(net, trainDS, opt); err != nil {
		return nil, err
	}
	nn.PrepareInference(net)

	// Static baseline: the accuracy-gated int8 decision plus the
	// autotuned per-layer kernel mix, exactly the stack PR 8 serves.
	dec, err := model.QuantizeGated(net, testDS, model.QuantOptions{MaxAPDrop: 0.05})
	if err != nil {
		return nil, err
	}
	qnet := dec.Net
	if !dec.Enabled {
		qnet = nil
	}
	kplan, err := model.AutotuneKernels(net, qnet, []int{terrain.NumBands, dc.ClipSize, dc.ClipSize}, testDS,
		model.KernelOptions{Batches: []int{1, dynamicBenchBatch}, MaxAPDrop: 0.05})
	if err != nil {
		return nil, err
	}
	tuned := kplan.Served

	// Dynamic plan: calibrated on baseline sweep traffic so the exit
	// probe learns the empty-tile profile it will serve, gated at the
	// same epsilon as the static stack. The masked path runs on an fp32
	// clone so the tuned baseline keeps its own kernels.
	calib, err := sweep.BenchTraffic("baseline", dc.ClipSize)
	if err != nil {
		return nil, err
	}
	dynNetM, err := nn.CloneShared(net)
	if err != nil {
		return nil, err
	}
	dynNet := dynNetM.(*nn.Sequential)
	plan, err := model.PlanDynamic(dynNet, calib, model.DynamicOptions{MaxAPDrop: 0.05, Int8: dec})
	if err != nil {
		return nil, err
	}
	plan.Apply(dynNet)
	exec := model.NewDynamicExec(dynNet, plan)
	var execI8 *model.DynamicExec
	if plan.RouterEnabled && qnet != nil {
		i8m, err := nn.CloneShared(qnet)
		if err != nil {
			return nil, err
		}
		execI8 = model.NewDynamicExec(i8m.(*nn.Sequential), plan)
	}

	run := DynamicBenchRun{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		PoolWorkers: tensor.PoolWorkers(),
		Plan: DynamicPlanInfo{
			ExitEnabled:   plan.ExitEnabled,
			MaskEnabled:   plan.MaskEnabled,
			RouterEnabled: plan.RouterEnabled,
			Demotions:     plan.Demotions,
			FP32AP:        plan.FP32AP,
			DynamicAP:     plan.DynamicAP,
			Drop:          plan.Drop,
			Epsilon:       plan.Epsilon,
		},
	}

	for _, scenario := range dynamicBenchScenarios {
		traffic, err := sweep.BenchTraffic(scenario, dc.ClipSize)
		if err != nil {
			return nil, err
		}
		batches, positives := trafficBatches(traffic)
		clips := len(traffic.Samples)

		tunedRow := timeTrafficPass(scenario, "tuned", clips, positives, func(a *tensor.Arena, dets []metrics.Detection) []metrics.Detection {
			for _, x := range batches {
				a.Reset()
				dets = model.InferDetect(tuned, x, a, dets)
			}
			return dets
		})
		tunedRow.Speedup = 1
		run.Rows = append(run.Rows, tunedRow)

		plan.ExitStats.Reset()
		plan.Stats.Reset()
		dynRow := timeTrafficPass(scenario, "dynamic", clips, positives, func(a *tensor.Arena, dets []metrics.Detection) []metrics.Detection {
			for _, x := range batches {
				a.Reset()
				dets = exec.InferDetect(x, a, dets)
			}
			return dets
		})
		dynRow.ExitRate = plan.ExitStats.Rate()
		dynRow.MaskRate = plan.Stats.Rate()
		dynRow.Speedup = tunedRow.NsPerImg / dynRow.NsPerImg
		run.Rows = append(run.Rows, dynRow)

		if execI8 != nil {
			// Per-path batching as the pool does it: the difficulty
			// router splits the traffic up front (routing is part of
			// Submit, not the batch), each path runs its own batches.
			i8Batches, fp32Batches, i8n := routedBatches(traffic, plan.Router)
			plan.ExitStats.Reset()
			plan.Stats.Reset()
			routedRow := timeTrafficPass(scenario, "dynamic-routed", clips, positives, func(a *tensor.Arena, dets []metrics.Detection) []metrics.Detection {
				for _, x := range fp32Batches {
					a.Reset()
					dets = exec.InferDetect(x, a, dets)
				}
				for _, x := range i8Batches {
					a.Reset()
					dets = execI8.InferDetect(x, a, dets)
				}
				return dets
			})
			routedRow.ExitRate = plan.ExitStats.Rate()
			routedRow.MaskRate = plan.Stats.Rate()
			routedRow.Int8Share = float64(i8n) / float64(clips)
			routedRow.Speedup = tunedRow.NsPerImg / routedRow.NsPerImg
			run.Rows = append(run.Rows, routedRow)
		}
	}

	for _, row := range run.Rows {
		if row.Scenario == "baseline" && row.Speedup > run.SpeedupMajorityEmpty && row.Path != "tuned" {
			run.SpeedupMajorityEmpty = row.Speedup
		}
	}

	res := &DynamicBenchResult{}
	loadBenchFile(outPath, res)
	res.Model = fmt.Sprintf("%s /%d @%dpx", cfg.Name, dc.WidthScale, dc.ClipSize)
	res.Provenance = provenance.Collect()
	res.Runs = mergeDynamicRunByProcs(res.Runs, run)
	if err := writeBenchFile(outPath, res); err != nil {
		return nil, err
	}
	return res, nil
}

// trafficBatches groups a traffic dataset into pool-sized batch tensors
// (built once, outside the timed loop) and counts its positives.
func trafficBatches(ds *terrain.Dataset) (batches []*tensor.Tensor, positives int) {
	for _, s := range ds.Samples {
		if s.Target.HasObject {
			positives++
		}
	}
	for lo := 0; lo < len(ds.Samples); lo += dynamicBenchBatch {
		hi := lo + dynamicBenchBatch
		if hi > len(ds.Samples) {
			hi = len(ds.Samples)
		}
		x, _ := ds.Batch(lo, hi)
		batches = append(batches, x)
	}
	return batches, positives
}

// routedBatches splits traffic by the difficulty router the way the
// pool's Submit does, then batches each path separately.
func routedBatches(ds *terrain.Dataset, r *model.Router) (i8, fp32 []*tensor.Tensor, i8n int) {
	easy := &terrain.Dataset{ClipSize: ds.ClipSize}
	hard := &terrain.Dataset{ClipSize: ds.ClipSize}
	for i, s := range ds.Samples {
		x, _ := ds.Batch(i, i+1)
		if r.Route(x, 0) == model.PrecisionInt8 {
			easy.Samples = append(easy.Samples, s)
		} else {
			hard.Samples = append(hard.Samples, s)
		}
	}
	i8n = len(easy.Samples)
	if i8n > 0 {
		i8, _ = trafficBatches(easy)
	}
	if len(hard.Samples) > 0 {
		fp32, _ = trafficBatches(hard)
	}
	return i8, fp32, i8n
}

// timeTrafficPass benchmarks one full pass over a scenario's traffic and
// converts ns/op to ns/image.
func timeTrafficPass(scenario, path string, clips, positives int, pass func(*tensor.Arena, []metrics.Detection) []metrics.Detection) DynamicBenchRow {
	a := tensor.NewArena()
	var dets []metrics.Detection
	dets = pass(a, dets) // warm the arena and detection buffer
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dets = pass(a, dets)
		}
	})
	return DynamicBenchRow{
		Scenario:  scenario,
		Path:      path,
		Clips:     clips,
		Positives: positives,
		NsPerImg:  float64(r.NsPerOp()) / float64(clips),
		AllocsOp:  r.AllocsPerOp(),
	}
}

func mergeDynamicRunByProcs(runs []DynamicBenchRun, run DynamicBenchRun) []DynamicBenchRun {
	out := runs[:0]
	for _, r := range runs {
		if r.GOMAXPROCS != run.GOMAXPROCS {
			out = append(out, r)
		}
	}
	out = append(out, run)
	sort.Slice(out, func(i, j int) bool { return out[i].GOMAXPROCS < out[j].GOMAXPROCS })
	return out
}

// Render formats the result as the aligned table the bench CLI prints.
func (r *DynamicBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dynamic inference over sweep traffic — %s\n", r.Model)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "GOMAXPROCS=%d, pool workers=%d — exit=%t mask=%t router=%t demotions=%d ap_drop=%.4f (ε=%.4f)\n",
			run.GOMAXPROCS, run.PoolWorkers, run.Plan.ExitEnabled, run.Plan.MaskEnabled,
			run.Plan.RouterEnabled, run.Plan.Demotions, run.Plan.Drop, run.Plan.Epsilon)
		fmt.Fprintf(&b, "%-14s %-15s %6s %5s %12s %10s %10s %10s %9s\n",
			"scenario", "path", "clips", "pos", "ns/image", "exit", "mask", "int8", "speedup")
		for _, row := range run.Rows {
			fmt.Fprintf(&b, "%-14s %-15s %6d %5d %12.0f %9.1f%% %9.1f%% %9.1f%% %8.2fx\n",
				row.Scenario, row.Path, row.Clips, row.Positives, row.NsPerImg,
				row.ExitRate*100, row.MaskRate*100, row.Int8Share*100, row.Speedup)
		}
		fmt.Fprintf(&b, "majority-empty speedup: %.2fx (target ≥ 1.30x)\n", run.SpeedupMajorityEmpty)
	}
	return b.String()
}

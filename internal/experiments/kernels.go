package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// KernelBenchRow is one (conv layer, kernel variant, batch) measurement
// of the fused conv+ReLU forward in isolation — the per-algorithm view
// behind the end-to-end tuned rows in BENCH_inference.json.
type KernelBenchRow struct {
	Layer    string  `json:"layer"`  // conv<i>_<outC>x<KH>x<KW>
	Shape    string  `json:"shape"`  // inC×H×W → outC×OH×OW
	Kernel   string  `json:"kernel"` // im2col, winograd, nchwc, direct
	Batch    int     `json:"batch"`
	NsPerOp  int64   `json:"ns_per_op"`
	NsPerImg float64 `json:"ns_per_image"`
	AllocsOp int64   `json:"allocs_per_op"`
	// Speedup is im2col ns/op over this variant's ns/op at the same
	// (layer, batch); 1.0 for the im2col rows themselves.
	Speedup float64 `json:"speedup_vs_im2col"`
}

// KernelsBenchRun is the microbenchmark at one GOMAXPROCS setting.
type KernelsBenchRun struct {
	GOMAXPROCS  int              `json:"gomaxprocs"`
	PoolWorkers int              `json:"pool_workers"`
	Rows        []KernelBenchRow `json:"rows"`
}

// KernelsBenchResult is written to BENCH_kernels.json: every conv shape
// of the inference-bench model timed under every eligible kernel
// variant, merged across GOMAXPROCS invocations like BENCH_inference.
type KernelsBenchResult struct {
	Model      string            `json:"model"`
	Provenance *Provenance       `json:"provenance,omitempty"`
	Runs       []KernelsBenchRun `json:"runs"`
}

// KernelsBench microbenchmarks each conv layer of the inference-bench
// model (Original SPP-Net /4 @50px) under every eligible kernel variant
// at batch 1 and 16, and merges the current GOMAXPROCS run into outPath
// (defaults to BENCH_kernels.json when empty).
func KernelsBench(outPath string) (*KernelsBenchResult, error) {
	if outPath == "" {
		outPath = "BENCH_kernels.json"
	}
	cfg := model.OriginalSPPNet().Scaled(4).WithInput(4, 50)
	net, err := cfg.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	run := KernelsBenchRun{GOMAXPROCS: runtime.GOMAXPROCS(0), PoolWorkers: tensor.PoolWorkers()}

	// Walk the net tracking activation shapes, so each conv is timed on
	// its real serving input size.
	shape := []int{1, cfg.InBands, cfg.InSize, cfg.InSize}
	mods := net.Modules()
	convIdx := 0
	for i, m := range mods {
		conv, ok := nn.Unwrap(m).(*nn.Conv2D)
		if !ok || conv.Algo != nn.ConvIm2Col {
			shape = m.OutShape(shape)
			continue
		}
		inC, h, w := shape[1], shape[2], shape[3]
		oh, ow := conv.Geom.OutSize(h, w)
		relu := false
		if i+1 < len(mods) {
			_, relu = mods[i+1].(*nn.ReLU)
		}
		layer := fmt.Sprintf("conv%d_%dx%dx%d", convIdx, conv.OutC, conv.Geom.KH, conv.Geom.KW)
		shapeStr := fmt.Sprintf("%dx%dx%d -> %dx%dx%d", inC, h, w, conv.OutC, oh, ow)

		im2col := map[int]int64{}
		for _, k := range nn.ConvKernels() {
			if !conv.KernelEligible(k) {
				continue
			}
			replica, err := nn.CloneShared(conv)
			if err != nil {
				return nil, err
			}
			rc := replica.(*nn.Conv2D)
			rc.SetKernels(k, k)
			for _, batch := range []int{1, 16} {
				x := tensor.New(batch, inC, h, w)
				rng := rand.New(rand.NewSource(int64(batch)))
				x.RandNormal(rng, 0, 1)
				a := tensor.NewArena()
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						a.Reset()
						rc.InferFused(x, a, relu)
					}
				})
				if k == nn.KernelIm2Col {
					im2col[batch] = r.NsPerOp()
				}
				run.Rows = append(run.Rows, KernelBenchRow{
					Layer:    layer,
					Shape:    shapeStr,
					Kernel:   k.String(),
					Batch:    batch,
					NsPerOp:  r.NsPerOp(),
					NsPerImg: float64(r.NsPerOp()) / float64(batch),
					AllocsOp: r.AllocsPerOp(),
				})
			}
		}
		for j := range run.Rows {
			row := &run.Rows[j]
			if row.Layer == layer && row.Speedup == 0 {
				row.Speedup = float64(im2col[row.Batch]) / float64(row.NsPerOp)
			}
		}
		convIdx++
		shape = m.OutShape(shape)
	}

	res := &KernelsBenchResult{}
	loadBenchFile(outPath, res)
	res.Model = cfg.Name + " /4 @50px"
	res.Provenance = CollectProvenance()
	res.Runs = mergeKernelRunByProcs(res.Runs, run)
	if err := writeBenchFile(outPath, res); err != nil {
		return nil, err
	}
	return res, nil
}

// mergeKernelRunByProcs replaces the run with the same GOMAXPROCS and
// keeps runs sorted (same policy as BENCH_inference).
func mergeKernelRunByProcs(runs []KernelsBenchRun, run KernelsBenchRun) []KernelsBenchRun {
	out := runs[:0]
	for _, r := range runs {
		if r.GOMAXPROCS != run.GOMAXPROCS {
			out = append(out, r)
		}
	}
	out = append(out, run)
	sort.Slice(out, func(i, j int) bool { return out[i].GOMAXPROCS < out[j].GOMAXPROCS })
	return out
}

// Render writes the per-kernel table, one block per GOMAXPROCS run.
func (r *KernelsBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Conv kernel variants — %s\n", r.Model)
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "GOMAXPROCS=%d, pool workers=%d\n", run.GOMAXPROCS, run.PoolWorkers)
		fmt.Fprintf(&b, "%-16s %-22s %-9s %6s %14s %14s %10s %9s\n",
			"layer", "shape", "kernel", "batch", "ns/op", "ns/image", "allocs/op", "speedup")
		for _, row := range run.Rows {
			fmt.Fprintf(&b, "%-16s %-22s %-9s %6d %14d %14.0f %10d %8.2fx\n",
				row.Layer, row.Shape, row.Kernel, row.Batch, row.NsPerOp, row.NsPerImg, row.AllocsOp, row.Speedup)
		}
	}
	return b.String()
}

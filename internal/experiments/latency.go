package experiments

import (
	"fmt"
	"strings"

	"drainnet/internal/ios"
	"drainnet/internal/model"
)

// Table2Row is one model's latency pair at batch 1.
type Table2Row struct {
	Model      string
	SeqMs      float64
	OptMs      float64
	PaperSeqMs float64
	PaperOptMs float64
}

// Table2Result reproduces Table 2: sequential vs IOS-optimized inference
// latency at batch size 1 for the four candidates.
type Table2Result struct {
	Rows []Table2Row
}

var paperTable2 = map[string][2]float64{
	"Original SPP-Net": {0.512, 0.268},
	"SPP-Net #1":       {0.419, 0.379},
	"SPP-Net #2":       {0.295, 0.236},
	"SPP-Net #3":       {0.562, 0.427},
}

// Table2 measures every candidate on the simulated GPU.
func Table2() (*Table2Result, error) {
	dev := Device()
	oracle := ios.NewSimOracle(dev)
	rt := ios.NewRuntime(dev)
	res := &Table2Result{}
	for _, cfg := range model.Candidates() {
		g, err := cfg.BuildGraph()
		if err != nil {
			return nil, err
		}
		seq := rt.Measure(g, ios.SequentialSchedule(g), 1)
		sched, err := ios.Optimize(g, oracle, 1)
		if err != nil {
			return nil, err
		}
		opt := rt.Measure(g, sched, 1)
		paper := paperTable2[cfg.Name]
		res.Rows = append(res.Rows, Table2Row{
			Model:      cfg.Name,
			SeqMs:      seq.LatencyNs / 1e6,
			OptMs:      opt.LatencyNs / 1e6,
			PaperSeqMs: paper[0],
			PaperOptMs: paper[1],
		})
	}
	return res, nil
}

// FastestOptimized returns the model with the lowest optimized latency.
func (r *Table2Result) FastestOptimized() Table2Row {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.OptMs < best.OptMs {
			best = row
		}
	}
	return best
}

// Render writes the table in the paper's layout.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — inference latency at batch 1 (measured vs paper, ms)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %14s %14s\n", "Model", "Sequential", "Optimized", "Paper seq", "Paper opt")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f %14.3f %14.3f\n",
			row.Model, row.SeqMs, row.OptMs, row.PaperSeqMs, row.PaperOptMs)
	}
	return b.String()
}

// Figure6Row is one batch size's efficiency pair.
type Figure6Row struct {
	Batch    int
	SeqUsImg float64 // sequential latency per image, µs
	OptUsImg float64 // optimized latency per image, µs
}

// Figure6Result reproduces Fig 6: inference efficiency (latency/batch)
// for SPP-Net #2 across batch sizes, sequential vs optimized schedules.
type Figure6Result struct {
	Model string
	Rows  []Figure6Row
}

// Figure6 sweeps the paper's batch sizes on SPP-Net #2.
func Figure6() (*Figure6Result, error) {
	dev := Device()
	oracle := ios.NewSimOracle(dev)
	rt := ios.NewRuntime(dev)
	cfg := model.SPPNet2()
	g, err := cfg.BuildGraph()
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{Model: cfg.Name}
	for _, batch := range Batches {
		seq := rt.Measure(g, ios.SequentialSchedule(g), batch)
		sched, err := ios.Optimize(g, oracle, batch)
		if err != nil {
			return nil, err
		}
		opt := rt.Measure(g, sched, batch)
		res.Rows = append(res.Rows, Figure6Row{
			Batch:    batch,
			SeqUsImg: seq.EfficiencyNsPerImage / 1e3,
			OptUsImg: opt.EfficiencyNsPerImage / 1e3,
		})
	}
	return res, nil
}

// Render writes the series the figure plots.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — inference efficiency for %s (µs/image)\n", r.Model)
	fmt.Fprintf(&b, "%6s %14s %14s %8s\n", "batch", "sequential", "optimized", "gain")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %14.1f %14.1f %7.2fx\n", row.Batch, row.SeqUsImg, row.OptUsImg, row.SeqUsImg/row.OptUsImg)
	}
	return b.String()
}

// AblationSchedulersRow compares the three schedulers at one batch size.
type AblationSchedulersRow struct {
	Batch    int
	SeqMs    float64
	GreedyMs float64
	IOSMs    float64
}

// AblationSchedulersResult is the DESIGN.md §5.1 ablation: sequential vs
// greedy-levels vs IOS DP on SPP-Net #2.
type AblationSchedulersResult struct {
	Rows []AblationSchedulersRow
}

// AblationSchedulers measures all three schedulers across batch sizes.
func AblationSchedulers() (*AblationSchedulersResult, error) {
	dev := Device()
	oracle := ios.NewSimOracle(dev)
	rt := ios.NewRuntime(dev)
	g, err := model.SPPNet2().BuildGraph()
	if err != nil {
		return nil, err
	}
	res := &AblationSchedulersResult{}
	for _, batch := range Batches {
		seq := rt.Measure(g, ios.SequentialSchedule(g), batch)
		greedy := rt.Measure(g, ios.GreedySchedule(g), batch)
		sched, err := ios.Optimize(g, oracle, batch)
		if err != nil {
			return nil, err
		}
		opt := rt.Measure(g, sched, batch)
		res.Rows = append(res.Rows, AblationSchedulersRow{
			Batch:    batch,
			SeqMs:    seq.LatencyNs / 1e6,
			GreedyMs: greedy.LatencyNs / 1e6,
			IOSMs:    opt.LatencyNs / 1e6,
		})
	}
	return res, nil
}

// Render writes the ablation table.
func (r *AblationSchedulersResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — scheduler comparison on SPP-Net #2 (ms)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %12s\n", "batch", "sequential", "greedy", "IOS DP")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12.3f %12.3f %12.3f\n", row.Batch, row.SeqMs, row.GreedyMs, row.IOSMs)
	}
	return b.String()
}

// AblationSPPRow is one pyramid configuration's IOS gain.
type AblationSPPRow struct {
	Levels   []int
	SeqMs    float64
	IOSMs    float64
	SpeedupX float64
}

// AblationSPPResult is the DESIGN.md §5.2 ablation: how the number of SPP
// branches changes the inter-operator parallelism opportunity.
type AblationSPPResult struct {
	Batch int
	Rows  []AblationSPPRow
}

// AblationSPPLevels sweeps pyramid depth at a fixed batch size.
func AblationSPPLevels(batch int) (*AblationSPPResult, error) {
	dev := Device()
	rt := ios.NewRuntime(dev)
	res := &AblationSPPResult{Batch: batch}
	for _, levels := range [][]int{{1}, {2, 1}, {4, 2, 1}, {5, 4, 2, 1}, {6, 5, 4, 2, 1}} {
		cfg := model.SPPNet2()
		cfg.SPPLevels = levels
		cfg.Name = fmt.Sprintf("spp-%d-levels", len(levels))
		g, err := cfg.BuildGraph()
		if err != nil {
			return nil, err
		}
		oracle := ios.NewSimOracle(dev)
		seq := rt.Measure(g, ios.SequentialSchedule(g), batch)
		sched, err := ios.Optimize(g, oracle, batch)
		if err != nil {
			return nil, err
		}
		opt := rt.Measure(g, sched, batch)
		res.Rows = append(res.Rows, AblationSPPRow{
			Levels:   levels,
			SeqMs:    seq.LatencyNs / 1e6,
			IOSMs:    opt.LatencyNs / 1e6,
			SpeedupX: seq.LatencyNs / opt.LatencyNs,
		})
	}
	return res, nil
}

// Render writes the ablation table.
func (r *AblationSPPResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — SPP pyramid depth vs IOS gain (batch %d)\n", r.Batch)
	fmt.Fprintf(&b, "%-16s %12s %12s %9s\n", "levels", "seq ms", "IOS ms", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12.3f %12.3f %8.2fx\n", fmt.Sprint(row.Levels), row.SeqMs, row.IOSMs, row.SpeedupX)
	}
	return b.String()
}

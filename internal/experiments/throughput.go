package experiments

import (
	"fmt"
	"strings"

	"drainnet/internal/gpu"
	"drainnet/internal/ios"
	"drainnet/internal/model"
)

// ThroughputRow is one batching policy's cost for a large inference job.
type ThroughputRow struct {
	Batch        int
	Schedule     string
	JobTimeMs    float64
	ImagesPerSec float64
	SpeedupVsB1  float64
}

// ThroughputResult quantifies the paper's §5.1 motivation: surveying a
// watershed means inferring a large volume of clips, so per-image
// efficiency compounds. It runs an N-image job through SPP-Net #2 under
// both the sequential baseline at batch 1 (the naive pipeline) and the
// IOS schedule at each batch size.
type ThroughputResult struct {
	Images int
	Rows   []ThroughputRow
}

// Throughput simulates a job of the given image count.
func Throughput(images int) (*ThroughputResult, error) {
	if images < 64 {
		return nil, fmt.Errorf("experiments: throughput job needs ≥ 64 images")
	}
	dev := Device()
	g, err := model.SPPNet2().BuildGraph()
	if err != nil {
		return nil, err
	}
	rt := ios.NewRuntime(dev)
	res := &ThroughputResult{Images: images}

	job := func(sched *ios.Schedule, batch int) float64 {
		// One warm process for the whole job: library load amortized.
		sim := gpu.NewSim(dev)
		sim.LoadLibrary()
		start := sim.NowNs()
		full := images / batch
		for i := 0; i < full; i++ {
			rt.Run(sim, g, sched, batch)
		}
		if rem := images % batch; rem > 0 {
			rt.Run(sim, g, sched, rem)
		}
		return sim.NowNs() - start
	}

	seqB1 := job(ios.SequentialSchedule(g), 1)
	res.Rows = append(res.Rows, ThroughputRow{
		Batch: 1, Schedule: "sequential",
		JobTimeMs:    seqB1 / 1e6,
		ImagesPerSec: float64(images) / (seqB1 / 1e9),
		SpeedupVsB1:  1,
	})
	for _, batch := range Batches {
		sched, err := ios.Optimize(g, ios.NewSimOracle(dev), batch)
		if err != nil {
			return nil, err
		}
		t := job(sched, batch)
		res.Rows = append(res.Rows, ThroughputRow{
			Batch: batch, Schedule: "IOS",
			JobTimeMs:    t / 1e6,
			ImagesPerSec: float64(images) / (t / 1e9),
			SpeedupVsB1:  seqB1 / t,
		})
	}
	return res, nil
}

// Best returns the fastest row.
func (r *ThroughputResult) Best() ThroughputRow {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.JobTimeMs < best.JobTimeMs {
			best = row
		}
	}
	return best
}

// Render writes the job-cost table.
func (r *ThroughputResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput — %d-image survey job on SPP-Net #2\n", r.Images)
	fmt.Fprintf(&b, "%6s %12s %14s %14s %10s\n", "batch", "schedule", "job ms", "images/s", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %12s %14.1f %14.0f %9.2fx\n",
			row.Batch, row.Schedule, row.JobTimeMs, row.ImagesPerSec, row.SpeedupVsB1)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"drainnet/internal/baseline"
	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/train"
)

// BaselineResult compares the SPP-Net detector against the two-stage
// proposal baseline (the §8.1 Faster-R-CNN stand-in, which the paper
// reports at 0.882 accuracy and 0.668 IoU).
type BaselineResult struct {
	SPPNetAP       float64
	SPPNetAccuracy float64
	SPPNetIoU      float64

	BaselineAccuracy  float64
	BaselineIoU       float64
	ProposalsPerImage int
}

// Baseline trains both detectors on the same data and scores them.
func Baseline(dc DataConfig) (*BaselineResult, error) {
	trainDS, testDS, err := BuildData(dc)
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{}

	// SPP-Net (the paper's chosen #2 architecture).
	cfg := model.SPPNet2().Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
	net, err := cfg.Build(rand.New(rand.NewSource(dc.NetSeed)))
	if err != nil {
		return nil, err
	}
	opt := train.PaperOptions()
	opt.Epochs = dc.Epochs
	opt.BatchSize = dc.BatchSize
	opt.BoxWeight = 5
	opt.LRStepEpoch = dc.Epochs * 2 / 3
	opt.LRStepGamma = 0.1
	if _, err := train.Fit(net, trainDS, opt); err != nil {
		return nil, err
	}
	ev := train.Evaluate(net, testDS, dc.IoUThreshold)
	res.SPPNetAP = ev.AP
	res.SPPNetIoU = ev.MeanIoU
	dets, gts := train.Predictions(net, testDS)
	res.SPPNetAccuracy = metrics.Accuracy(dets, gts, 0.7)

	// Two-stage baseline.
	bl, err := baseline.New(rand.New(rand.NewSource(dc.NetSeed+1)), baseline.DefaultConfig())
	if err != nil {
		return nil, err
	}
	bopt := baseline.DefaultTrainOptions()
	bopt.Epochs = dc.Epochs / 2
	if bopt.Epochs < 4 {
		bopt.Epochs = 4
	}
	if err := bl.Train(trainDS, bopt); err != nil {
		return nil, err
	}
	res.BaselineAccuracy, res.BaselineIoU = bl.Evaluate(testDS)
	res.ProposalsPerImage = bl.ProposalsPerImage(dc.ClipSize)
	return res, nil
}

// Render writes the comparison.
func (r *BaselineResult) Render() string {
	var b strings.Builder
	b.WriteString("§8.1 — SPP-Net vs two-stage proposal baseline (Faster R-CNN stand-in)\n")
	fmt.Fprintf(&b, "%-28s %10s %10s\n", "detector", "accuracy", "mean IoU")
	fmt.Fprintf(&b, "%-28s %9.1f%% %10.3f\n", "SPP-Net #2 (one-shot)", r.SPPNetAccuracy*100, r.SPPNetIoU)
	fmt.Fprintf(&b, "%-28s %9.1f%% %10.3f\n", "two-stage proposals", r.BaselineAccuracy*100, r.BaselineIoU)
	fmt.Fprintf(&b, "baseline stage-1 proposals per image: %d (paper reference: acc 0.882, IoU 0.668)\n", r.ProposalsPerImage)
	return b.String()
}

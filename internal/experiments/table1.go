package experiments

import (
	"fmt"
	"strings"

	"drainnet/internal/model"
)

// Table1Row is one model's accuracy result.
type Table1Row struct {
	Model    string
	Notation string
	AP       float64
	PaperAP  float64
}

// Table1Result reproduces Table 1: AP for the original SPP-Net and the
// three NAS candidates under the shared training protocol.
type Table1Result struct {
	Rows []Table1Row
	Data DataConfig
}

// paperTable1 holds the paper's reported numbers for side-by-side output.
var paperTable1 = map[string]float64{
	"Original SPP-Net": 0.9500,
	"SPP-Net #1":       0.9610,
	"SPP-Net #2":       0.9670,
	"SPP-Net #3":       0.9740,
}

// Table1 trains every Table 1 candidate on the shared synthetic dataset
// and scores test AP.
func Table1(dc DataConfig) (*Table1Result, error) {
	trainDS, testDS, err := BuildData(dc)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Data: dc}
	for _, cfg := range model.Candidates() {
		ap, err := TrainAndScore(cfg, dc, trainDS, testDS)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
		}
		res.Rows = append(res.Rows, Table1Row{
			Model:    cfg.Name,
			Notation: cfg.Notation(),
			AP:       ap,
			PaperAP:  paperTable1[cfg.Name],
		})
	}
	return res, nil
}

// Best returns the row with the highest AP.
func (r *Table1Result) Best() Table1Row {
	best := r.Rows[0]
	for _, row := range r.Rows[1:] {
		if row.AP > best.AP {
			best = row
		}
	}
	return best
}

// Render writes the table in the paper's layout with a measured column.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — AP for SPP-Net candidates (measured vs paper)\n")
	fmt.Fprintf(&b, "%-18s %-58s %10s %10s\n", "Model", "Hyper-parameters", "AP", "Paper AP")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %-58s %9.2f%% %9.2f%%\n", row.Model, row.Notation, row.AP*100, row.PaperAP*100)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/nas"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// NASResult is a full Fig 5 pipeline run: multi-trial search with real
// training, accuracy filtering, and IOS-based efficiency selection.
type NASResult struct {
	Trials    []nas.Trial
	Selection *nas.Selection
}

// NASSearch runs the resource-aware NAS pipeline: `trials` random
// architectures trained under dc's protocol, filtered at `threshold`
// accuracy, then ranked by IOS-optimized latency at batch 1.
func NASSearch(dc DataConfig, trials int, threshold float64, seed int64) (*NASResult, error) {
	trainDS, testDS, err := BuildData(dc)
	if err != nil {
		return nil, err
	}
	space := nas.DefaultSpace()
	eval := nas.FunctionalEvaluator(func(cfg model.Config) (float64, error) {
		return TrainAndScore(cfg, dc, trainDS, testDS)
	})
	ts := nas.RandomSearch(space, eval, trials, seed)
	sel, err := nas.ResourceAware(ts, nas.IOSMeasurer{Dev: Device()}, threshold, 1)
	if err != nil {
		// Keep the trials even when nothing qualified.
		return &NASResult{Trials: ts, Selection: sel}, err
	}
	return &NASResult{Trials: ts, Selection: sel}, nil
}

// Render writes the search log and the selection.
func (r *NASResult) Render() string {
	var b strings.Builder
	b.WriteString("Resource-aware NAS (Fig 5 pipeline)\n")
	fmt.Fprintf(&b, "%-28s %10s\n", "architecture", "AP")
	for _, t := range r.Trials {
		status := ""
		if t.Err != nil {
			status = "  (failed: " + t.Err.Error() + ")"
		}
		fmt.Fprintf(&b, "%-28s %9.2f%%%s\n", t.Config.Name, t.Accuracy*100, status)
	}
	if r.Selection != nil && r.Selection.Best() != nil {
		best := r.Selection.Best()
		fmt.Fprintf(&b, "selected: %s  (AP %.2f%%, IOS latency %.3f ms; a(n) > %.2f)\n",
			best.Config.Name, best.Accuracy*100, best.OptLatencyNs/1e6, r.Selection.Threshold)
	} else {
		b.WriteString("no candidate satisfied the accuracy constraint\n")
	}
	return b.String()
}

// ConvAlgoRow is one measured convolution implementation.
type ConvAlgoRow struct {
	Algo    string
	PerOpUs float64
}

// ConvAlgoResult is the DESIGN.md §5.3 ablation: im2col+GEMM vs direct
// convolution wall time in the CPU tensor engine.
type ConvAlgoResult struct {
	Input string
	Rows  []ConvAlgoRow
}

// AblationConvAlgo times both convolution algorithms on a reduced conv2
// workload (32 filters over 16×24×24) — small enough that the direct
// algorithm finishes in well under a second while the ~20× gap between
// the two implementations remains visible.
func AblationConvAlgo() *ConvAlgoResult {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(1, 16, 24, 24)
	x.RandNormal(rng, 0, 1)
	res := &ConvAlgoResult{Input: "1×16×24×24, conv 32@3×3"}
	for _, algo := range []struct {
		name string
		kind nn.ConvAlgo
	}{{"im2col+GEMM", nn.ConvIm2Col}, {"direct", nn.ConvDirect}} {
		conv := nn.NewConv2D(rng, 16, 32, 3, 1)
		conv.Algo = algo.kind
		// Warm up once, then time a few iterations.
		conv.Forward(x)
		const iters = 10
		start := time.Now()
		for i := 0; i < iters; i++ {
			conv.Forward(x)
		}
		res.Rows = append(res.Rows, ConvAlgoRow{
			Algo:    algo.name,
			PerOpUs: float64(time.Since(start).Microseconds()) / iters,
		})
	}
	return res
}

// Render writes the ablation table.
func (r *ConvAlgoResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — convolution algorithm (%s)\n", r.Input)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %12.0f µs/op\n", row.Algo, row.PerOpUs)
	}
	return b.String()
}

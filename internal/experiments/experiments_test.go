package experiments

import (
	"strings"
	"testing"
)

func TestTable2ShapeHolds(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OptMs >= row.SeqMs {
			t.Fatalf("%s: optimized %.3f not below sequential %.3f", row.Model, row.OptMs, row.SeqMs)
		}
	}
	// Among the two accuracy-qualified candidates (#2, #3), #2 must be the
	// faster optimized model, matching the paper's selection.
	var opt2, opt3 float64
	for _, row := range res.Rows {
		switch row.Model {
		case "SPP-Net #2":
			opt2 = row.OptMs
		case "SPP-Net #3":
			opt3 = row.OptMs
		}
	}
	if opt2 >= opt3 {
		t.Fatalf("SPP-Net #2 (%.3f ms) must beat #3 (%.3f ms)", opt2, opt3)
	}
	if !strings.Contains(res.Render(), "Table 2") {
		t.Fatal("render missing header")
	}
}

func TestFigure6ShapeHolds(t *testing.T) {
	res, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if len(rows) != len(Batches) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone falling per-image latency and diminishing IOS gain.
	for i := 1; i < len(rows); i++ {
		if rows[i].OptUsImg > rows[i-1].OptUsImg*1.02 {
			t.Fatalf("optimized efficiency regressed at batch %d", rows[i].Batch)
		}
	}
	gainAt := func(batch int) float64 {
		for _, r := range rows {
			if r.Batch == batch {
				return r.SeqUsImg / r.OptUsImg
			}
		}
		t.Fatalf("batch %d missing", batch)
		return 0
	}
	if gainAt(1) <= gainAt(64) {
		t.Fatalf("gain must shrink with batch: b1 %.2fx, b64 %.2fx", gainAt(1), gainAt(64))
	}
	// Saturation: batch 32 → 64 improves per-image latency by < 10%.
	if (rows[5].OptUsImg-rows[6].OptUsImg)/rows[5].OptUsImg > 0.10 {
		t.Fatalf("no saturation by batch 32: %.1f → %.1f", rows[5].OptUsImg, rows[6].OptUsImg)
	}
}

func TestFigure7ShapeHolds(t *testing.T) {
	res, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	if rows[0].PerImageNs <= rows[len(rows)-1].PerImageNs {
		t.Fatal("per-image memop time must fall with batch")
	}
	// Stabilized by batch 16 (within 5% of batch 64).
	var at16, at64 float64
	for _, r := range rows {
		if r.Batch == 16 {
			at16 = r.PerImageNs
		}
		if r.Batch == 64 {
			at64 = r.PerImageNs
		}
	}
	if (at16-at64)/at16 > 0.05 {
		t.Fatalf("not stabilized by batch 16: %v vs %v", at16, at64)
	}
	// Calibration: stabilized value near the paper's 19168 ns.
	if at64 < 19168*0.85 || at64 > 19168*1.15 {
		t.Fatalf("stabilized memops %v ns, want ≈19168", at64)
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	res, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if first.Batch != 1 || last.Batch != 64 {
		t.Fatal("unexpected batch ordering")
	}
	if first.LibLoadPct < 50 || first.LibLoadPct < first.SyncPct {
		t.Fatalf("batch 1: library load must dominate (lib %.1f%%, sync %.1f%%)", first.LibLoadPct, first.SyncPct)
	}
	if last.SyncPct <= last.LibLoadPct {
		t.Fatalf("batch 64: sync (%.1f%%) must overtake library load (%.1f%%)", last.SyncPct, last.LibLoadPct)
	}
	// Sync share grows with batch, allowing small wiggle at tiny batches
	// where launch/memcpy overheads shift the denominator.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SyncPct < res.Rows[i-1].SyncPct-2.0 {
			t.Fatalf("sync share fell: batch %d %.1f%% → batch %d %.1f%%",
				res.Rows[i-1].Batch, res.Rows[i-1].SyncPct, res.Rows[i].Batch, res.Rows[i].SyncPct)
		}
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	if first.MatMulPct <= first.ConvPct {
		t.Fatalf("batch 1: matmul (%.1f%%) must exceed conv (%.1f%%)", first.MatMulPct, first.ConvPct)
	}
	if last.ConvPct <= last.MatMulPct || last.ConvPct <= last.PoolingPct {
		t.Fatalf("batch 64: conv (%.1f%%) must dominate", last.ConvPct)
	}
	if last.MatMulPct >= first.MatMulPct {
		t.Fatal("matmul share must shrink with batch")
	}
	if last.ConvPct <= first.ConvPct {
		t.Fatal("conv share must grow with batch")
	}
}

func TestAblationSchedulers(t *testing.T) {
	res, err := AblationSchedulers()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.IOSMs > row.SeqMs {
			t.Fatalf("batch %d: IOS slower than sequential", row.Batch)
		}
		// The DP prices stages in isolation (as real IOS does), while the
		// executor pipelines stages on the GPU, so sub-2% inversions
		// against greedy are expected noise.
		if row.IOSMs > row.GreedyMs*1.02 {
			t.Fatalf("batch %d: IOS DP (%v) worse than greedy (%v)", row.Batch, row.IOSMs, row.GreedyMs)
		}
	}
}

func TestAblationSPPLevels(t *testing.T) {
	res, err := AblationSPPLevels(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SpeedupX < 1 {
			t.Fatalf("levels %v: IOS slower than sequential (%.2fx)", row.Levels, row.SpeedupX)
		}
	}
}

func TestAblationConvAlgo(t *testing.T) {
	res := AblationConvAlgo()
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var im2col, direct float64
	for _, row := range res.Rows {
		if row.PerOpUs <= 0 {
			t.Fatalf("%s: non-positive timing", row.Algo)
		}
		if row.Algo == "im2col+GEMM" {
			im2col = row.PerOpUs
		} else {
			direct = row.PerOpUs
		}
	}
	// The GEMM lowering is the production path; it must win clearly.
	if im2col >= direct {
		t.Fatalf("im2col (%v µs) should beat direct (%v µs)", im2col, direct)
	}
}

func TestBuildDataTiny(t *testing.T) {
	trainDS, testDS, err := BuildData(TinyData())
	if err != nil {
		t.Fatal(err)
	}
	if trainDS.Positives() == 0 || testDS.Positives() == 0 {
		t.Fatal("both splits need positives")
	}
}

func TestRendersNonEmpty(t *testing.T) {
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{"t2": t2.Render(), "f6": f6.Render()} {
		if len(s) < 50 {
			t.Fatalf("%s render too short", name)
		}
	}
}

func TestExtensionMultiGPU(t *testing.T) {
	res, err := ExtensionMultiGPU(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SpeedupX < 0.999 {
			t.Fatalf("%s on %d GPUs regressed: %.2fx", row.Graph, row.GPUs, row.SpeedupX)
		}
	}
	// The branch-parallel ensemble must scale; the linear SPP-Net must not.
	var ensemble2, sppnet2 float64
	for _, row := range res.Rows {
		if row.GPUs == 2 {
			if row.Graph == "4-tower ensemble" {
				ensemble2 = row.SpeedupX
			} else {
				sppnet2 = row.SpeedupX
			}
		}
	}
	if ensemble2 < 1.3 {
		t.Fatalf("ensemble speedup on 2 GPUs = %.2fx, want ≥ 1.3x", ensemble2)
	}
	if sppnet2 > ensemble2 {
		t.Fatal("linear SPP-Net should gain less than the ensemble")
	}
}

func TestThroughputJob(t *testing.T) {
	res, err := Throughput(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Batches)+1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	naive := res.Rows[0]
	if naive.Schedule != "sequential" || naive.Batch != 1 {
		t.Fatal("first row must be the naive baseline")
	}
	best := res.Best()
	if best.Batch < 16 {
		t.Fatalf("best batch = %d, expected a large batch to win", best.Batch)
	}
	if best.SpeedupVsB1 < 4 {
		t.Fatalf("batched IOS speedup = %.2fx, want ≥ 4x over naive", best.SpeedupVsB1)
	}
	// Images/s must be consistent with job time.
	for _, row := range res.Rows {
		want := float64(res.Images) / (row.JobTimeMs / 1e3)
		if diff := (row.ImagesPerSec - want) / want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("inconsistent throughput row %+v", row)
		}
	}
}

func TestThroughputRejectsTinyJob(t *testing.T) {
	if _, err := Throughput(10); err == nil {
		t.Fatal("expected error")
	}
}

func TestSpaceCensus(t *testing.T) {
	res, err := SpaceCensus(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 175 {
		t.Fatalf("census covers %d architectures, want 175", len(res.Entries))
	}
	// Sorted fastest-first, IOS never loses to sequential.
	for i, e := range res.Entries {
		if i > 0 && e.OptMs < res.Entries[i-1].OptMs {
			t.Fatal("census not sorted")
		}
		if e.OptMs > e.SeqMs {
			t.Fatalf("%s: optimized %.3f above sequential %.3f", e.Name, e.OptMs, e.SeqMs)
		}
	}
	q := res.Quartiles()
	if !(q[0] <= q[1] && q[1] <= q[2] && q[2] <= q[3] && q[3] <= q[4]) {
		t.Fatalf("quartiles not monotone: %v", q)
	}
	if !strings.Contains(res.Render(), "fastest") {
		t.Fatal("render missing sections")
	}
}

package experiments

import (
	"testing"

	"drainnet/internal/model"
	"drainnet/internal/nas"
	"drainnet/internal/tensor"
)

// microData is a sub-second training config for trainer-behavior tests.
func microData() DataConfig {
	d := TinyData()
	d.Epochs = 1
	return d
}

// TestNASTrainerDoesNotMutateDataset: Fit shuffles its split in place,
// so the trainer must hand each call a private view — otherwise parallel
// workers race on sample order and accuracy becomes order-dependent.
func TestNASTrainerDoesNotMutateDataset(t *testing.T) {
	dc := microData()
	trainDS, testDS, err := BuildData(dc)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]*tensor.Tensor, len(trainDS.Samples))
	for i, s := range trainDS.Samples {
		before[i] = s.Image
	}
	scaled := model.SPPNet2().Scaled(dc.WidthScale).WithInput(4, dc.ClipSize)
	if _, _, err := NASTrainer(dc, trainDS, testDS).Train(scaled); err != nil {
		t.Fatal(err)
	}
	for i, s := range trainDS.Samples {
		if s.Image != before[i] {
			t.Fatalf("trainer reordered the caller's dataset at %d", i)
		}
	}
}

// TestNASProxyEvaluator: the analytic proxy follows the paper's trends
// (receptive field and capacity help, oversize kernels hurt).
func TestNASProxyEvaluator(t *testing.T) {
	p := NASProxy()
	small, err := p.Evaluate(model.OriginalSPPNet())
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0.85 || small >= 1 {
		t.Fatalf("proxy out of range: %v", small)
	}
}

// TestNewNASEvaluatorProxyPipeline: the proxy-trainer evaluator runs the
// full measured pipeline (build, schedule, compile, bench) in well under
// a second per candidate.
func TestNewNASEvaluatorProxyPipeline(t *testing.T) {
	dc := TinyData()
	ev, err := NewNASEvaluator(dc, NASEvaluatorOptions{Threshold: 0.5, MaxAPDrop: 0.02, MaxBatch: 4, Proxy: true})
	if err != nil {
		t.Fatal(err)
	}
	space := nas.DefaultSpace()
	c := nas.CandidateConfig{Arch: space.Base, Precision: model.PrecisionFP32, Kernels: nas.KernelModeBaseline}
	c.Arch = model.SPPNet2()
	r := ev.EvaluateCandidate(c)
	if r.Err != "" {
		t.Fatalf("evaluate: %s", r.Err)
	}
	if !r.Qualified || r.LatencyB1Ns <= 0 || r.LatencyBNNs <= 0 {
		t.Fatalf("proxy pipeline did not measure: %+v", r)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"drainnet/internal/graph"
	"drainnet/internal/ios"
	"drainnet/internal/model"
)

// MultiGPURow is one (graph, device-count) measurement.
type MultiGPURow struct {
	Graph      string
	GPUs       int
	MakespanUs float64
	SpeedupX   float64 // vs 1 GPU on the same graph
	TransferKB float64
}

// MultiGPUResult is the future-work extension experiment: HIOS-style
// placement of SPP-Net #2 (mostly linear — modest gains expected) and a
// four-tower ensemble (branch-parallel — real gains expected) across
// 1/2/4 simulated GPUs.
type MultiGPUResult struct {
	Batch int
	Rows  []MultiGPURow
}

// ExtensionMultiGPU runs the multi-GPU placement sweep at the given
// batch size.
func ExtensionMultiGPU(batch int) (*MultiGPUResult, error) {
	res := &MultiGPUResult{Batch: batch}
	graphs := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"SPP-Net #2", func() (*graph.Graph, error) { return model.SPPNet2().BuildGraph() }},
		{"4-tower ensemble", func() (*graph.Graph, error) { return ensembleGraph(4), nil }},
	}
	for _, gg := range graphs {
		g, err := gg.build()
		if err != nil {
			return nil, err
		}
		var base float64
		for _, n := range []int{1, 2, 4} {
			ms, err := ios.OptimizeMultiGPU(g, ios.DefaultMultiGPU(n), batch)
			if err != nil {
				return nil, err
			}
			if n == 1 {
				base = ms.MakespanNs
			}
			res.Rows = append(res.Rows, MultiGPURow{
				Graph:      gg.name,
				GPUs:       n,
				MakespanUs: ms.MakespanNs / 1e3,
				SpeedupX:   base / ms.MakespanNs,
				TransferKB: float64(ms.TransferBytes) / 1e3,
			})
		}
	}
	return res, nil
}

// ensembleGraph builds k independent conv towers merged at the end — the
// DAG-parallel structure the HIOS extension targets.
func ensembleGraph(towers int) *graph.Graph {
	g := graph.NewGraph("ensemble", 4, 100, 100)
	var heads []*graph.Node
	for i := 0; i < towers; i++ {
		x := g.Conv(g.In, fmt.Sprintf("t%d_conv1", i), 64, 3, 1)
		x = g.Pool(x, fmt.Sprintf("t%d_pool1", i), 2, 2)
		x = g.Conv(x, fmt.Sprintf("t%d_conv2", i), 128, 3, 1)
		x = g.AdaptivePool(x, fmt.Sprintf("t%d_gap", i), 1)
		heads = append(heads, x)
	}
	g.Concat(heads, "merge")
	return g
}

// Render writes the extension table.
func (r *MultiGPUResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — HIOS-style multi-GPU placement (batch %d)\n", r.Batch)
	fmt.Fprintf(&b, "%-18s %6s %14s %9s %12s\n", "graph", "GPUs", "makespan µs", "speedup", "transfer KB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %6d %14.1f %8.2fx %12.1f\n",
			row.Graph, row.GPUs, row.MakespanUs, row.SpeedupX, row.TransferKB)
	}
	return b.String()
}

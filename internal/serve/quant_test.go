package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// An int8 server must report its active precision on /v1/model, serve
// detections, and export the precision-labeled latency series.
func TestServePrecisionInt8(t *testing.T) {
	cfg := model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var batches []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x := tensor.New(8, cfg.InBands, cfg.InSize, cfg.InSize)
		x.RandNormal(rng, 0, 1)
		batches = append(batches, x)
	}
	qnet, rep, err := nn.QuantizeForInference(net, nn.Calibrate(net, batches))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quantized == 0 {
		t.Fatalf("nothing quantized: %+v", rep)
	}
	s, err := NewWithOptions(cfg, qnet, 0.5, Options{
		Replicas: 1, MaxWait: time.Millisecond, Precision: model.PrecisionInt8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info ModelInfo
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Precision != "int8" {
		t.Fatalf("model precision = %q, want int8", info.Precision)
	}

	dresp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("detect status %d", dresp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(body), `drainnet_request_latency_seconds_count{precision="int8"}`) {
		t.Fatalf("metrics missing int8-labeled latency series:\n%s", body)
	}
}

// With no explicit precision, /v1/model reports fp32.
func TestServePrecisionDefaultsFP32(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Precision != "fp32" {
		t.Fatalf("model precision = %q, want fp32", info.Precision)
	}
}

package batcher

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

func tinyConfig() model.Config {
	return model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
}

func tinyNet(t testing.TB, cfg model.Config) *nn.Sequential {
	t.Helper()
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newTestPool(t testing.TB, opts Options) *Pool {
	t.Helper()
	cfg := tinyConfig()
	p, err := New(cfg, tinyNet(t, cfg), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func clip(seed int64) *tensor.Tensor {
	x := tensor.New(1, 4, 40, 40)
	rng := rand.New(rand.NewSource(seed))
	data := x.Data()
	for i := range data {
		data[i] = rng.Float32()
	}
	return x
}

// stubDetect replaces real inference with a controllable stand-in that
// returns each clip's first pixel as the score.
func stubDetect(block <-chan struct{}) func(*nn.Sequential, *tensor.Tensor) []metrics.Detection {
	return func(_ *nn.Sequential, x *tensor.Tensor) []metrics.Detection {
		if block != nil {
			<-block
		}
		dets := make([]metrics.Detection, x.Dim(0))
		stride := x.Dim(1) * x.Dim(2) * x.Dim(3)
		for i := range dets {
			dets[i] = metrics.Detection{Score: float64(x.Data()[i*stride])}
		}
		return dets
	}
}

func TestFullBatchFlush(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 4, MaxWait: time.Hour, QueueSize: 16})
	p.detect = stubDetect(nil)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Submit(context.Background(), clip(1)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := p.Stats()
	if st.Served != 4 {
		t.Fatalf("served %d, want 4", st.Served)
	}
	// MaxWait is an hour, so the only way these completed is the
	// full-batch flush; everything must have ridden one forward pass.
	if st.Batches != 1 || st.BatchSizes[3] != 1 {
		t.Fatalf("batches %d histogram %v, want one batch of 4", st.Batches, st.BatchSizes)
	}
}

func TestMaxWaitFlush(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 64, MaxWait: 10 * time.Millisecond, QueueSize: 16})
	p.detect = stubDetect(nil)

	start := time.Now()
	if _, err := p.Submit(context.Background(), clip(1)); err != nil {
		t.Fatal(err)
	}
	// The batch can never fill (one request, MaxBatch 64): completion
	// proves the max-wait timer flushed the partial batch.
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("partial batch took %v to flush", waited)
	}
	st := p.Stats()
	if st.Served != 1 || st.Batches != 1 || st.BatchSizes[0] != 1 {
		t.Fatalf("stats %+v, want one batch of 1", st)
	}
}

func TestQueueOverflow(t *testing.T) {
	block := make(chan struct{})
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond, QueueSize: 2})
	p.detect = stubDetect(block)

	// Unblock the stubbed replica even when an assertion fails mid-test;
	// otherwise the pool's cleanup Close hangs on the parked worker.
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	defer unblock()

	// Capacity while the single replica is blocked: 1 in the worker, 1 in
	// the work buffer, 1 held by the stalled dispatcher, 2 in the queue.
	// Submissions are paced so the dispatcher keeps up and none of these
	// five sees a transiently full queue (Submit is fail-fast by design).
	const inFlight = 5
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Submit(context.Background(), clip(1)); err != nil {
				t.Error(err)
			}
		}()
		time.Sleep(10 * time.Millisecond)
	}

	// Wait until the pipeline is saturated (bounded queue at capacity).
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := p.Submit(context.Background(), clip(1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err=%v, want ErrQueueFull", err)
	}

	unblock()
	wg.Wait()
	st := p.Stats()
	if st.Served != inFlight || st.Rejected != 1 {
		t.Fatalf("served %d rejected %d, want %d/1", st.Served, st.Rejected, inFlight)
	}
}

func TestGracefulDrain(t *testing.T) {
	const n = 3
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	cfg := tinyConfig()
	p, err := New(cfg, tinyNet(t, cfg), Options{Replicas: 1, MaxBatch: n, MaxWait: time.Hour, QueueSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	inner := stubDetect(nil)
	p.detect = func(net *nn.Sequential, x *tensor.Tensor) []metrics.Detection {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
		return inner(net, x)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Submit(context.Background(), clip(1))
		}(i)
	}
	// MaxBatch = n with an hour of wait budget: the worker only enters
	// detect once all n requests were accepted and coalesced.
	<-entered

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	close(block) // release the in-flight batch so the drain can finish
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain")
	}

	// Close must not return before every accepted request was answered.
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed during drain: %v", i, err)
		}
	}
	if st := p.Stats(); st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
	if _, err := p.Submit(context.Background(), clip(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err=%v, want ErrClosed", err)
	}
}

func TestSubmitContextCancellation(t *testing.T) {
	block := make(chan struct{})
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond, QueueSize: 16})
	p.detect = stubDetect(block)
	defer close(block)

	// Occupy the replica so the canceled request sits in the pipeline.
	go p.Submit(context.Background(), clip(1))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, clip(2))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err=%v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Submit did not return")
	}
}

func TestSubmitTimeout(t *testing.T) {
	block := make(chan struct{})
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond, QueueSize: 16})
	p.detect = stubDetect(block)
	defer close(block)

	go p.Submit(context.Background(), clip(1))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.Submit(ctx, clip(2)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want DeadlineExceeded", err)
	}
}

func TestConcurrentLoadExercisesAllReplicas(t *testing.T) {
	const replicas = 4
	p := newTestPool(t, Options{Replicas: replicas, MaxBatch: 2, MaxWait: time.Millisecond, QueueSize: 256})
	slow := stubDetect(nil)
	p.detect = func(net *nn.Sequential, x *tensor.Tensor) []metrics.Detection {
		time.Sleep(2 * time.Millisecond) // long enough that workers overlap
		return slow(net, x)
	}

	const load = 64
	var wg sync.WaitGroup
	for i := 0; i < load; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Submit(context.Background(), clip(7)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := p.Stats()
	if st.Served != load {
		t.Fatalf("served %d, want %d", st.Served, load)
	}
	for id, n := range st.PerReplica {
		if n == 0 {
			t.Fatalf("replica %d served nothing under load: %v", id, st.PerReplica)
		}
	}
}

func TestBatchedResultsDeterministic(t *testing.T) {
	cfg := tinyConfig()
	refNet := tinyNet(t, cfg) // same seed ⇒ same weights as the pool's net

	a, b := clip(100), clip(200)
	refA := model.Detect(refNet, a)[0]
	refB := model.Detect(refNet, b)[0]

	p := newTestPool(t, Options{Replicas: 3, MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 256})

	const rounds = 24
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x, want := a, refA
			if i%2 == 1 {
				x, want = b, refB
			}
			got, err := p.Submit(context.Background(), x)
			if err != nil {
				t.Error(err)
				return
			}
			// Per-sample paths are independent of batch composition and
			// replica choice, so results are bitwise reproducible.
			if got != want {
				t.Errorf("request %d: got %+v, want %+v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestMixedShapesBatchSeparately(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 8, MaxWait: 5 * time.Millisecond, QueueSize: 64})
	p.detect = stubDetect(nil)

	shapes := []*tensor.Tensor{
		tensor.New(1, 4, 40, 40),
		tensor.New(1, 4, 64, 64),
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := p.Submit(context.Background(), shapes[i%2]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if st := p.Stats(); st.Served != 8 {
		t.Fatalf("served %d, want 8", st.Served)
	}
}

func TestSubmitRejectsBadTensor(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1})
	if _, err := p.Submit(context.Background(), tensor.New(2, 4, 40, 40)); err == nil {
		t.Fatal("batch-of-2 tensor accepted; want error")
	}
	if _, err := p.Submit(context.Background(), tensor.New(4, 40, 40)); err == nil {
		t.Fatal("rank-3 tensor accepted; want error")
	}
}

func TestNewRejectsMismatchedConfig(t *testing.T) {
	cfg := tinyConfig()
	net := tinyNet(t, cfg)
	other := model.SPPNet2().Scaled(16).WithInput(4, 40) // different FC width
	if _, err := New(other, net, Options{Replicas: 2}); err == nil {
		t.Fatal("mismatched config accepted; want clone error")
	}
}

// Replicas must share weight tensors with the original network — the
// clone is scratch-only, not a full copy — so N replicas cost N arenas,
// not N weight sets.
func TestReplicasShareWeightTensors(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 3, MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 16})
	if len(p.reps) != 3 {
		t.Fatalf("pool has %d replicas, want 3", len(p.reps))
	}
	base := p.reps[0].net.Params()
	for r := 1; r < len(p.reps); r++ {
		params := p.reps[r].net.Params()
		if len(params) != len(base) {
			t.Fatalf("replica %d has %d params, replica 0 has %d", r, len(params), len(base))
		}
		for i := range base {
			if params[i].Value != base[i].Value {
				t.Fatalf("replica %d param %q value tensor was copied, not shared", r, base[i].Name)
			}
		}
		if p.reps[r].net == p.reps[0].net {
			t.Fatalf("replica %d shares the module tree itself; caches would race", r)
		}
	}
}

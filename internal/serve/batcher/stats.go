package batcher

import (
	"strconv"
	"sync"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/telemetry"
)

// Stats is a point-in-time snapshot of pool serving statistics, shaped
// for the /v1/stats endpoint. Since PR 2 it is a *view over the
// telemetry registry* — the same counters and histograms /v1/metrics
// exports — so the two endpoints cannot drift.
type Stats struct {
	Replicas      int    `json:"replicas"`
	MaxBatch      int    `json:"max_batch"`
	QueueCapacity int    `json:"queue_capacity"`
	QueueDepth    int    `json:"queue_depth"`
	Precision     string `json:"precision"`

	// Served counts requests answered with a detection; Rejected counts
	// queue-full and pool-closed refusals; Canceled counts requests whose
	// context ended before a result was delivered.
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
	Canceled uint64 `json:"canceled"`

	// Batches is the number of forward passes; BatchSizes[i] counts
	// batches that carried i+1 clips, so the histogram spans 1..MaxBatch.
	Batches    uint64   `json:"batches"`
	BatchSizes []uint64 `json:"batch_size_histogram"`
	// MeanBatch is Served/Batches — the realized §6.4 batch size.
	MeanBatch float64 `json:"mean_batch"`

	// PerReplica counts clips served by each replica.
	PerReplica []uint64 `json:"per_replica_served"`

	// Latency quantiles (milliseconds) estimated from the
	// drainnet_request_latency_seconds histogram, measured enqueue →
	// result delivery.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// Dynamic-path statistics, present only when the pool serves with
	// Options.Dynamic. ExitRate is the cumulative fraction of clips
	// answered by the early-exit head; MaskRate the fraction of conv
	// output-row bands the masked kernels skipped; RoutedInt8/RoutedFP32
	// count the difficulty router's path assignments (0 without a
	// router-enabled plan).
	DynamicEnabled bool    `json:"dynamic_enabled,omitempty"`
	ExitRate       float64 `json:"exit_rate,omitempty"`
	MaskRate       float64 `json:"mask_rate,omitempty"`
	RoutedInt8     uint64  `json:"routed_int8,omitempty"`
	RoutedFP32     uint64  `json:"routed_fp32,omitempty"`
}

// statsAccum records pool activity straight into telemetry registry
// metrics. Counts are recorded synchronously on the serving path (so a
// Stats snapshot taken after Submit returns is exact); the hot path
// cost is a handful of atomic adds per batch.
type statsAccum struct {
	served      *telemetry.Counter
	rejected    *telemetry.Counter
	canceled    *telemetry.Counter
	batches     *telemetry.Counter
	batchSize   *telemetry.Histogram
	latency     *telemetry.Histogram
	queueDepth  *telemetry.Gauge
	retunes     *telemetry.Counter
	effMaxBatch *telemetry.Gauge
	effMaxWait  *telemetry.Gauge
	perReplica  []*telemetry.Counter

	// Dynamic-path metrics (nil when Options.Dynamic is off). latInt8 is
	// the int8-path child of the same precision-labeled latency
	// histogram, so the two routed paths are separate /v1/metrics series.
	latInt8    *telemetry.Histogram
	routedFP32 *telemetry.Counter
	routedInt8 *telemetry.Counter
	exitRate   *telemetry.Gauge
	maskRate   *telemetry.Gauge

	replicas, maxBatch, queueCap int
	precision                    string
	dynamic                      bool
}

func newStatsAccum(opts Options) *statsAccum {
	reg := opts.Telemetry.Registry()
	sizeBounds := make([]float64, opts.MaxBatch)
	for i := range sizeBounds {
		sizeBounds[i] = float64(i + 1)
	}
	latVec := reg.HistogramVec("drainnet_request_latency_seconds",
		"Request latency, enqueue to result delivery, by serving precision.",
		telemetry.TimeBuckets, "precision")
	s := &statsAccum{
		served: reg.Counter("drainnet_requests_served_total",
			"Requests answered with a detection."),
		rejected: reg.Counter("drainnet_requests_rejected_total",
			"Requests refused: queue full or pool closed."),
		canceled: reg.Counter("drainnet_requests_canceled_total",
			"Requests whose context ended before a result was delivered."),
		batches: reg.Counter("drainnet_batches_total",
			"Forward passes executed by the replica pool."),
		batchSize: reg.Histogram("drainnet_batch_size",
			"Clips coalesced into one forward pass (the realized §6.4 batch size).", sizeBounds),
		// Labeled by serving precision, so an fp32 pool and an int8 pool
		// (or an A/B rollout across restarts) produce separate series.
		latency: latVec.With(string(opts.Precision)),
		queueDepth: reg.Gauge("drainnet_queue_depth",
			"Requests waiting on the bounded queue."),
		retunes: reg.Counter("drainnet_retunes_total",
			"Batching retunes applied via Pool.Retune (adaptive batching controller)."),
		effMaxBatch: reg.Gauge("drainnet_effective_max_batch",
			"Effective max clips per forward pass (starts at the -max-batch flag, moves under retune)."),
		effMaxWait: reg.Gauge("drainnet_effective_max_wait_seconds",
			"Effective max time a request waits for its batch to fill (moves under retune)."),
		replicas:  opts.Replicas,
		maxBatch:  opts.MaxBatch,
		queueCap:  opts.QueueSize,
		precision: string(opts.Precision),
	}
	vec := reg.CounterVec("drainnet_replica_served_total",
		"Clips served, by replica.", "replica")
	s.perReplica = make([]*telemetry.Counter, opts.Replicas)
	for i := range s.perReplica {
		s.perReplica[i] = vec.With(strconv.Itoa(i))
	}
	if opts.Dynamic != nil {
		s.dynamic = true
		routed := reg.CounterVec("drainnet_routed_total",
			"Clips assigned to a serving path by the difficulty router.", "path")
		s.routedFP32 = routed.With(string(model.PrecisionFP32))
		s.routedInt8 = routed.With(string(model.PrecisionInt8))
		s.latInt8 = latVec.With(string(model.PrecisionInt8))
		s.exitRate = reg.Gauge("drainnet_exit_rate",
			"Cumulative fraction of clips answered by the early-exit head.")
		s.maskRate = reg.Gauge("drainnet_masked_block_rate",
			"Cumulative fraction of conv output-row bands skipped by spatial masking.")
	}
	return s
}

func (s *statsAccum) reject() { s.rejected.Inc() }

func (s *statsAccum) cancel() { s.canceled.Inc() }

func (s *statsAccum) setQueueDepth(n int) { s.queueDepth.Set(float64(n)) }

// retune records one applied retune and publishes the resolved knobs as
// gauges, so the router's scrape and a dashboard read the same setting.
func (s *statsAccum) retune(maxBatch int, maxWait time.Duration) {
	s.retunes.Inc()
	s.setTuning(maxBatch, maxWait)
}

func (s *statsAccum) setTuning(maxBatch int, maxWait time.Duration) {
	s.effMaxBatch.Set(float64(maxBatch))
	s.effMaxWait.Set(maxWait.Seconds())
}

// record logs one completed batch of n clips on the given replica.
// Under dynamic routing the batch's latencies land in its path's
// histogram child; everything else stays aggregate.
func (s *statsAccum) record(replica, n int, lats []time.Duration, path model.Precision) {
	s.served.Add(uint64(n))
	s.batches.Inc()
	s.batchSize.Observe(float64(n))
	if replica >= 0 && replica < len(s.perReplica) {
		s.perReplica[replica].Add(uint64(n))
	}
	lat := s.latency
	if path == model.PrecisionInt8 && s.latInt8 != nil {
		lat = s.latInt8
	}
	for _, d := range lats {
		lat.Observe(d.Seconds())
	}
}

// route counts one difficulty-router path assignment.
func (s *statsAccum) route(path model.Precision) {
	switch path {
	case model.PrecisionInt8:
		if s.routedInt8 != nil {
			s.routedInt8.Inc()
		}
	default:
		if s.routedFP32 != nil {
			s.routedFP32.Inc()
		}
	}
}

// setDynamicRates publishes the plan's cumulative exit and mask rates
// as gauges after each batch, so a scrape reads current values.
func (s *statsAccum) setDynamicRates(exit, mask float64) {
	if s.exitRate != nil {
		s.exitRate.Set(exit)
		s.maskRate.Set(mask)
	}
}

func (s *statsAccum) snapshot(queueDepth int) Stats {
	s.queueDepth.Set(float64(queueDepth))
	st := Stats{
		Replicas:      s.replicas,
		MaxBatch:      s.maxBatch,
		QueueCapacity: s.queueCap,
		QueueDepth:    queueDepth,
		Precision:     s.precision,
		Served:        s.served.Value(),
		Rejected:      s.rejected.Value(),
		Canceled:      s.canceled.Value(),
		Batches:       s.batches.Value(),
		BatchSizes:    make([]uint64, s.maxBatch),
		PerReplica:    make([]uint64, len(s.perReplica)),
	}
	// Bucket bounds are exactly 1..MaxBatch, so per-bucket counts are
	// exact per-size counts (batch sizes are integers).
	sizes := s.batchSize.Snapshot()
	for i := range st.BatchSizes {
		if i < len(sizes.Counts) {
			st.BatchSizes[i] = sizes.Counts[i]
		}
	}
	for i, c := range s.perReplica {
		st.PerReplica[i] = c.Value()
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Served) / float64(st.Batches)
	}
	lat := s.latency.Snapshot()
	if lat.Count > 0 {
		st.LatencyP50Ms = lat.Quantile(0.50) * 1000
		st.LatencyP95Ms = lat.Quantile(0.95) * 1000
		st.LatencyP99Ms = lat.Quantile(0.99) * 1000
	}
	if s.dynamic {
		st.DynamicEnabled = true
		st.ExitRate = s.exitRate.Value()
		st.MaskRate = s.maskRate.Value()
		st.RoutedFP32 = s.routedFP32.Value()
		st.RoutedInt8 = s.routedInt8.Value()
	}
	return st
}

// closeGate lets many submitters enter concurrently while letting Close
// atomically flip to closed once no submitter is mid-send, so closing the
// queue channel cannot race a send.
type closeGate struct {
	mu     sync.RWMutex
	closed bool
}

// enter returns false if the gate is closed; on true the caller must call
// leave after its queue send.
func (g *closeGate) enter() bool {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return false
	}
	return true
}

func (g *closeGate) leave() { g.mu.RUnlock() }

// close flips the gate; it returns true on the first call.
func (g *closeGate) close() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.closed = true
	return true
}

// isClosed reports whether the gate has flipped (the pool is draining).
func (g *closeGate) isClosed() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.closed
}

package batcher

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the quantile
// estimator keeps (a ring buffer; old samples age out under load).
const latencyWindow = 2048

// Stats is a point-in-time snapshot of pool serving statistics, shaped
// for the /v1/stats endpoint.
type Stats struct {
	Replicas      int `json:"replicas"`
	MaxBatch      int `json:"max_batch"`
	QueueCapacity int `json:"queue_capacity"`
	QueueDepth    int `json:"queue_depth"`

	// Served counts requests answered with a detection; Rejected counts
	// queue-full and pool-closed refusals; Canceled counts requests whose
	// context ended before a result was delivered.
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
	Canceled uint64 `json:"canceled"`

	// Batches is the number of forward passes; BatchSizes[i] counts
	// batches that carried i+1 clips, so the histogram spans 1..MaxBatch.
	Batches    uint64   `json:"batches"`
	BatchSizes []uint64 `json:"batch_size_histogram"`
	// MeanBatch is Served/Batches — the realized §6.4 batch size.
	MeanBatch float64 `json:"mean_batch"`

	// PerReplica counts clips served by each replica.
	PerReplica []uint64 `json:"per_replica_served"`

	// Latency quantiles (milliseconds) over a sliding window of recent
	// requests, measured enqueue → result delivery.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// statsAccum accumulates counters under one mutex; the hot path locks
// once per batch, not per request.
type statsAccum struct {
	mu         sync.Mutex
	served     uint64
	rejected   uint64
	canceled   uint64
	batches    uint64
	batchSizes []uint64
	perReplica []uint64

	lat  []float64 // ring of latencies in ms
	next int
	n    int

	replicas, maxBatch, queueCap int
}

func newStatsAccum(opts Options) *statsAccum {
	return &statsAccum{
		batchSizes: make([]uint64, opts.MaxBatch),
		perReplica: make([]uint64, opts.Replicas),
		lat:        make([]float64, latencyWindow),
		replicas:   opts.Replicas,
		maxBatch:   opts.MaxBatch,
		queueCap:   opts.QueueSize,
	}
}

func (s *statsAccum) reject() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func (s *statsAccum) cancel() {
	s.mu.Lock()
	s.canceled++
	s.mu.Unlock()
}

// record logs one completed batch of n clips on the given replica.
func (s *statsAccum) record(replica, n int, lats []time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.served += uint64(n)
	s.batches++
	if n >= 1 && n <= len(s.batchSizes) {
		s.batchSizes[n-1]++
	}
	if replica >= 0 && replica < len(s.perReplica) {
		s.perReplica[replica] += uint64(n)
	}
	for _, d := range lats {
		s.lat[s.next] = float64(d) / float64(time.Millisecond)
		s.next = (s.next + 1) % len(s.lat)
		if s.n < len(s.lat) {
			s.n++
		}
	}
}

func (s *statsAccum) snapshot(queueDepth int) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Replicas:      s.replicas,
		MaxBatch:      s.maxBatch,
		QueueCapacity: s.queueCap,
		QueueDepth:    queueDepth,
		Served:        s.served,
		Rejected:      s.rejected,
		Canceled:      s.canceled,
		Batches:       s.batches,
		BatchSizes:    append([]uint64(nil), s.batchSizes...),
		PerReplica:    append([]uint64(nil), s.perReplica...),
	}
	if s.batches > 0 {
		st.MeanBatch = float64(s.served) / float64(s.batches)
	}
	if s.n > 0 {
		sorted := append([]float64(nil), s.lat[:s.n]...)
		sort.Float64s(sorted)
		st.LatencyP50Ms = quantile(sorted, 0.50)
		st.LatencyP95Ms = quantile(sorted, 0.95)
		st.LatencyP99Ms = quantile(sorted, 0.99)
	}
	return st
}

// quantile reads the q-th quantile from an ascending slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// closeGate lets many submitters enter concurrently while letting Close
// atomically flip to closed once no submitter is mid-send, so closing the
// queue channel cannot race a send.
type closeGate struct {
	mu     sync.RWMutex
	closed bool
}

// enter returns false if the gate is closed; on true the caller must call
// leave after its queue send.
func (g *closeGate) enter() bool {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return false
	}
	return true
}

func (g *closeGate) leave() { g.mu.RUnlock() }

// close flips the gate; it returns true on the first call.
func (g *closeGate) close() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.closed = true
	return true
}

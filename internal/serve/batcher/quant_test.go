package batcher

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// quantTinyNet quantizes the test network with a random calibration set,
// failing the test if any layer falls back.
func quantTinyNet(t testing.TB, cfg model.Config) *nn.Sequential {
	t.Helper()
	net := tinyNet(t, cfg)
	rng := rand.New(rand.NewSource(3))
	var batches []*tensor.Tensor
	for i := 0; i < 4; i++ {
		x := tensor.New(8, cfg.InBands, cfg.InSize, cfg.InSize)
		x.RandNormal(rng, 0, 1)
		batches = append(batches, x)
	}
	qnet, rep, err := nn.QuantizeForInference(net, nn.Calibrate(net, batches))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallback != 0 {
		t.Fatalf("quantization fell back on %d layers", rep.Fallback)
	}
	return qnet
}

// A quantized network must pass pool construction (validateConfig sees
// through the int8 wrappers) and serve the same detections as the direct
// int8 fast path.
func TestQuantizedPoolServes(t *testing.T) {
	cfg := tinyConfig()
	qnet := quantTinyNet(t, cfg)

	x := clip(9)
	want := model.InferDetect(qnet, x, tensor.NewArena(), nil)[0]

	p, err := New(cfg, qnet, Options{Replicas: 1, MaxWait: time.Millisecond, Precision: model.PrecisionInt8})
	if err != nil {
		t.Fatalf("New with quantized net: %v", err)
	}
	t.Cleanup(p.Close)
	if p.Options().Precision != model.PrecisionInt8 {
		t.Fatalf("precision = %q", p.Options().Precision)
	}

	got, err := p.Submit(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pooled detection %+v, want %+v", got, want)
	}
	if st := p.Stats(); st.Precision != "int8" || st.Served != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// The precision label defaults to fp32 and flows into /v1/stats.
func TestPoolPrecisionDefaultsFP32(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1})
	if p.Options().Precision != model.PrecisionFP32 {
		t.Fatalf("precision = %q", p.Options().Precision)
	}
	if st := p.Stats(); st.Precision != "fp32" {
		t.Fatalf("stats precision = %q", st.Precision)
	}
}

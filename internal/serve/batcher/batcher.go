// Package batcher implements batched, multi-replica inference serving.
//
// The paper's efficiency metric is latency per image *at a batch size*
// (§6.4): a served model only realizes the batched efficiency the paper
// optimizes for if the serving path actually forms batches. This package
// accepts single-clip requests, coalesces them into batches (bounded by a
// maximum batch size and a maximum wait, mirroring §6.4 batch tuning),
// and dispatches the batches across a pool of N independent network
// replicas. Each replica owns its layer caches (internal/nn layers cache
// forward activations and are not safe for concurrent use), so replicas
// run truly concurrently.
//
// Backpressure is a bounded queue: when it is full, Submit fails fast
// with ErrQueueFull so the HTTP layer can answer 429 with Retry-After
// instead of letting latency grow without bound. Close drains the queue
// gracefully: everything already accepted is served, new submissions are
// refused with ErrClosed.
package batcher

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/telemetry"
	"drainnet/internal/tensor"
)

// Errors returned by Submit.
var (
	// ErrQueueFull means the bounded request queue is at capacity; the
	// caller should shed load (HTTP 429).
	ErrQueueFull = errors.New("batcher: request queue full")
	// ErrClosed means the pool is draining or closed.
	ErrClosed = errors.New("batcher: pool closed")
)

// Options configures a Pool. The zero value selects sensible defaults.
type Options struct {
	// Replicas is the number of independent network replicas (default
	// GOMAXPROCS). Each replica is a deep copy of the source network, so
	// replicas serve batches concurrently without sharing layer caches.
	Replicas int
	// MaxBatch is the largest batch a single forward pass may carry
	// (default 8). A group of same-shape requests is flushed as soon as it
	// reaches MaxBatch.
	MaxBatch int
	// MaxWait bounds how long the oldest queued request waits for its
	// batch to fill before the partial batch is flushed (default 2ms).
	// Larger values trade latency for bigger batches — the §6.4 knob.
	MaxWait time.Duration
	// QueueSize is the bounded queue capacity (default 64). When the
	// queue is full Submit returns ErrQueueFull.
	QueueSize int
	// Telemetry receives serving metrics and span events. Nil selects a
	// private registry-only instance (metrics still accumulate and feed
	// Stats; no span pipeline runs). Pools sharing one Telemetry share
	// its registry metrics.
	Telemetry *telemetry.Telemetry
	// Plan enables IOS-scheduled inference: each replica compiles the
	// plan's measured-cost-optimal schedules against its own network
	// clone and serves batches stage by stage (concurrent operator
	// groups) instead of layer by layer. Nil serves with the plain
	// sequential fast path. The plan must have been optimized for the
	// same config and a compatible MaxBatch (model.OptimizeSchedules).
	Plan *model.SchedulePlan
	// Precision labels the numeric precision the pool's network serves at
	// (empty → fp32). Informational: the network handed to New is already
	// quantized (or not) by the caller. The label joins the request
	// latency histogram, so fp32 and int8 latencies are separate series
	// in /v1/metrics.
	Precision model.Precision
	// Dynamic enables the accuracy-gated dynamic inference path (early-
	// exit negatives, spatial masking, per-request precision routing).
	// Nil serves the static path. Does not compose with Plan: the IOS
	// executors bypass the dynamic seam.
	Dynamic *Dynamic
}

// Dynamic configures the pool's dynamic inference path.
type Dynamic struct {
	// Spec is the calibrated plan from model.PlanDynamic (required).
	// The pool applies its mask spec to the network before cloning
	// replicas, so every replica masks into the plan's shared counters.
	Spec *model.DynamicPlan
	// Int8Net, with a router-enabled plan, backs the int8 replica path:
	// easy clips route to int8 replicas, hard clips to fp32 ones. It
	// must validate against the same config as the fp32 network. Nil
	// (or a plan without a router) serves every clip on the fp32 path.
	Int8Net *nn.Sequential
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = runtime.GOMAXPROCS(0)
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.NewDisabled()
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.Precision == "" {
		o.Precision = model.PrecisionFP32
	}
	return o
}

// request is one queued clip awaiting inference.
type request struct {
	ctx  context.Context
	x    *tensor.Tensor // 1×C×H×W
	id   uint64         // telemetry span ID
	enq  time.Time
	done chan result // buffered(1); worker always delivers
	// path is the serving precision the difficulty router assigned
	// (empty without dynamic routing). It joins the batching key, so a
	// batch never mixes paths.
	path model.Precision
}

type result struct {
	det metrics.Detection
	err error
}

// job is a flushed batch bound for a replica.
type job struct {
	reqs []*request
}

// Pool coalesces single-clip requests into batches and runs them across
// independent model replicas. Create one with New; it is safe for
// concurrent use by any number of goroutines.
type Pool struct {
	opts  Options
	queue chan *request
	work  chan *job

	// curMaxBatch/curMaxWaitNs are the *effective* batching knobs the
	// dispatcher reads each iteration. They start at the configured
	// Options values and move under Retune (the adaptive batching
	// controller's lever); Options.MaxBatch stays the hard ceiling
	// because the batch-size histogram buckets are sized from it.
	curMaxBatch  atomic.Int64
	curMaxWaitNs atomic.Int64

	// closing is closed-state coordination: Submit holds a read lock
	// across its queue send so Close can safely close(queue) once no
	// sender is in flight.
	closing closeGate

	dispatcherDone chan struct{}
	workersDone    chan struct{}

	stats *statsAccum
	tel   *telemetry.Telemetry
	reps  []*replica

	// dyn/router drive the dynamic inference path (nil when off). The
	// router runs in Submit — routing must precede batching because the
	// two paths use different replica networks.
	dyn    *model.DynamicPlan
	router *model.Router

	// detect overrides the forward pass; tests substitute a stub to make
	// timing-sensitive behavior deterministic. When nil (production), the
	// zero-allocation inference fast path runs instead. detectTimed is the
	// per-layer-timed variant used when a batch carries a trace-sampled
	// request.
	detect      func(net *nn.Sequential, x *tensor.Tensor) []metrics.Detection
	detectTimed func(net *nn.Sequential, x *tensor.Tensor, hook model.LayerHook) []metrics.Detection
}

// replica is one serving copy of the network plus the scratch it owns:
// an arena for all inference temporaries (including the stacked batch
// tensor) and a reusable detection slice. Replicas share the immutable
// weight tensors and packed panels with the source network — per-replica
// memory is scratch only, not another copy of the model.
type replica struct {
	net   *nn.Sequential
	arena *tensor.Arena
	dets  []metrics.Detection
	// exec1/execN are the replica's compiled IOS executors (nil without a
	// plan): exec1 serves single-clip batches, execN everything larger.
	exec1 *nn.ScheduleExecutor
	execN *nn.ScheduleExecutor
	// dyn/dynI8 are the replica's dynamic executors (nil without
	// Options.Dynamic): dyn wraps net, dynI8 wraps the replica's int8
	// clone for router-assigned easy clips.
	dyn   *model.DynamicExec
	dynI8 *model.DynamicExec
}

// dynExec picks the replica's dynamic executor for a routed path.
func (rep *replica) dynExec(path model.Precision) *model.DynamicExec {
	if path == model.PrecisionInt8 && rep.dynI8 != nil {
		return rep.dynI8
	}
	return rep.dyn
}

// exec picks the executor for a batch of n clips (nil when unscheduled).
func (rep *replica) exec(n int) *nn.ScheduleExecutor {
	if n == 1 {
		return rep.exec1
	}
	return rep.execN
}

// New builds a pool of opts.Replicas copies of net (which must have been
// built from cfg — parameter names and shapes are checked while cloning).
// The provided net becomes replica 0; the pool owns all replicas and the
// caller must not run inference on net concurrently with pool use.
func New(cfg model.Config, net *nn.Sequential, opts Options) (*Pool, error) {
	opts = opts.withDefaults()
	if err := validateConfig(cfg, net); err != nil {
		return nil, fmt.Errorf("batcher: %w", err)
	}
	if opts.Dynamic != nil {
		if opts.Dynamic.Spec == nil {
			return nil, errors.New("batcher: Options.Dynamic needs a plan (model.PlanDynamic)")
		}
		if opts.Plan != nil {
			return nil, errors.New("batcher: dynamic inference does not compose with IOS schedules")
		}
		if opts.Dynamic.Int8Net != nil {
			if err := validateConfig(cfg, opts.Dynamic.Int8Net); err != nil {
				return nil, fmt.Errorf("batcher: int8 path: %w", err)
			}
		}
		// Masking is configured before cloning so every replica shares the
		// plan's mask spec and skip counters.
		opts.Dynamic.Spec.Apply(net)
	}
	// Pack weights once on the source network; shared-weight clones reuse
	// the packed panels, so replica memory is scratch-only.
	nn.PrepareInference(net)
	replicas := make([]*replica, opts.Replicas)
	replicas[0] = &replica{net: net, arena: tensor.NewArena()}
	for i := 1; i < opts.Replicas; i++ {
		clone, err := nn.CloneShared(net)
		if err != nil {
			return nil, fmt.Errorf("batcher: replica %d: %w", i, err)
		}
		replicas[i] = &replica{net: clone.(*nn.Sequential), arena: tensor.NewArena()}
	}
	if opts.Plan != nil {
		for i, rep := range replicas {
			exec1, execN, err := opts.Plan.CompileExecutors(rep.net)
			if err != nil {
				return nil, fmt.Errorf("batcher: replica %d schedule: %w", i, err)
			}
			rep.exec1, rep.execN = exec1, execN
		}
	}
	if opts.Dynamic != nil {
		plan := opts.Dynamic.Spec
		i8 := opts.Dynamic.Int8Net
		if i8 != nil {
			nn.PrepareInference(i8)
		}
		for i, rep := range replicas {
			rep.dyn = model.NewDynamicExec(rep.net, plan)
			if i8 == nil {
				continue
			}
			i8net := i8
			if i > 0 {
				clone, err := nn.CloneShared(i8)
				if err != nil {
					return nil, fmt.Errorf("batcher: int8 replica %d: %w", i, err)
				}
				i8net = clone.(*nn.Sequential)
			}
			rep.dynI8 = model.NewDynamicExec(i8net, plan)
		}
	}
	p := &Pool{
		opts:           opts,
		queue:          make(chan *request, opts.QueueSize),
		work:           make(chan *job, opts.Replicas),
		dispatcherDone: make(chan struct{}),
		workersDone:    make(chan struct{}),
		stats:          newStatsAccum(opts),
		tel:            opts.Telemetry,
		reps:           replicas,
		detectTimed:    model.DetectWithHook,
	}
	if opts.Dynamic != nil {
		p.dyn = opts.Dynamic.Spec
		if p.dyn.RouterEnabled && opts.Dynamic.Int8Net != nil {
			p.router = p.dyn.Router
		}
	}
	p.curMaxBatch.Store(int64(opts.MaxBatch))
	p.curMaxWaitNs.Store(int64(opts.MaxWait))
	p.stats.setTuning(opts.MaxBatch, opts.MaxWait)
	go p.dispatch()
	go p.runWorkers(replicas)
	return p, nil
}

// validateConfig walks the network's module sequence against the layer
// sequence cfg.Build would produce, checking layer kinds, channel counts
// and geometry, so a config/network mismatch is caught at pool
// construction instead of panicking mid-inference. Quantized layers are
// unwrapped to their fp32 base first, so an int8 network validates
// against the same config it was quantized from.
func validateConfig(cfg model.Config, net *nn.Sequential) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	mods := net.Modules()
	idx := 0
	next := func() nn.Module {
		if idx >= len(mods) {
			return nil
		}
		m := mods[idx]
		idx++
		return nn.Unwrap(m)
	}
	inC := cfg.InBands
	for i, cv := range cfg.Convs {
		f := cfg.ScaledWidth(cv.Filters)
		conv, ok := next().(*nn.Conv2D)
		if !ok || conv.InC != inC || conv.OutC != f ||
			conv.Geom.KH != cv.Kernel || conv.Geom.StrideH != cv.Stride {
			return fmt.Errorf("conv block %d does not match config (want C%d→%d,%d,%d)", i, inC, f, cv.Kernel, cv.Stride)
		}
		if _, ok := next().(*nn.ReLU); !ok {
			return fmt.Errorf("conv block %d missing ReLU", i)
		}
		if cv.PoolSize > 0 {
			pool, ok := next().(*nn.MaxPool2D)
			if !ok || pool.Geom.KH != cv.PoolSize || pool.Geom.StrideH != cv.PoolStride {
				return fmt.Errorf("conv block %d missing P%d,%d", i, cv.PoolSize, cv.PoolStride)
			}
		}
		inC = f
	}
	spp, ok := next().(*nn.SPP)
	if !ok || len(spp.Levels) != len(cfg.SPPLevels) {
		return fmt.Errorf("SPP layer does not match config levels %v", cfg.SPPLevels)
	}
	for i, l := range cfg.SPPLevels {
		if spp.Levels[i] != l {
			return fmt.Errorf("SPP layer does not match config levels %v", cfg.SPPLevels)
		}
	}
	fcw := cfg.ScaledWidth(cfg.FCWidth)
	fc, ok := next().(*nn.Linear)
	if !ok || fc.In != cfg.SPPFeatures() || fc.Out != fcw {
		return fmt.Errorf("hidden FC does not match config (want %d→%d)", cfg.SPPFeatures(), fcw)
	}
	if _, ok := next().(*nn.ReLU); !ok {
		return fmt.Errorf("hidden FC missing ReLU")
	}
	head, ok := next().(*nn.Linear)
	if !ok || head.In != fcw || head.Out != cfg.HeadOut {
		return fmt.Errorf("head does not match config (want %d→%d)", fcw, cfg.HeadOut)
	}
	if idx != len(mods) {
		return fmt.Errorf("network has %d trailing modules beyond the config's architecture", len(mods)-idx)
	}
	return nil
}

// Options returns the pool's resolved configuration.
func (p *Pool) Options() Options { return p.opts }

// Dynamic returns the dynamic inference plan the pool serves with (nil
// when the dynamic path is off). The plan's ExitStats and Stats carry
// the live serving counters.
func (p *Pool) Dynamic() *model.DynamicPlan { return p.dyn }

// Accepting reports whether the pool still admits new submissions (false
// once Close has begun). The /v1/healthz readiness check reads this.
func (p *Pool) Accepting() bool { return !p.closing.isClosed() }

// Tuning returns the pool's effective batching knobs: the live values
// the dispatcher uses, which start at Options.MaxBatch/MaxWait and move
// under Retune.
func (p *Pool) Tuning() (maxBatch int, maxWait time.Duration) {
	return int(p.curMaxBatch.Load()), time.Duration(p.curMaxWaitNs.Load())
}

// retuneWaitCeiling bounds how far an adaptive controller can raise the
// flush wait: beyond this, batching stops trading latency for anything.
const retuneWaitCeiling = 100 * time.Millisecond

// Retune adjusts the effective max-batch and max-wait without restarting
// the pool — the adaptive batching controller's lever. maxBatch clamps
// to [1, Options.MaxBatch] (the configured value is the ceiling: batch
// histogram buckets and replica arenas are sized from it); maxWait
// clamps to [0, 100ms]. Values ≤ 0 for maxBatch or < 0 for maxWait keep
// the current setting. The resolved values are returned and take effect
// on the next dispatch iteration; in-flight batches are unaffected.
func (p *Pool) Retune(maxBatch int, maxWait time.Duration) (int, time.Duration) {
	changed := false
	if maxBatch > 0 {
		if maxBatch > p.opts.MaxBatch {
			maxBatch = p.opts.MaxBatch
		}
		p.curMaxBatch.Store(int64(maxBatch))
		changed = true
	}
	if maxWait >= 0 {
		if maxWait > retuneWaitCeiling {
			maxWait = retuneWaitCeiling
		}
		p.curMaxWaitNs.Store(int64(maxWait))
		changed = true
	}
	mb, mw := p.Tuning()
	if changed {
		p.stats.retune(mb, mw)
	}
	return mb, mw
}

// maxBatch/maxWait are the dispatcher's reads of the effective knobs.
func (p *Pool) maxBatch() int          { return int(p.curMaxBatch.Load()) }
func (p *Pool) maxWait() time.Duration { return time.Duration(p.curMaxWaitNs.Load()) }

// Submit enqueues one 1×C×H×W clip and blocks until its detection is
// ready, the context is done, or the pool rejects it. It is safe to call
// from many goroutines; same-shape submissions that overlap in time are
// coalesced into shared batches.
func (p *Pool) Submit(ctx context.Context, x *tensor.Tensor) (metrics.Detection, error) {
	if x == nil || x.Rank() != 4 || x.Dim(0) != 1 {
		return metrics.Detection{}, errors.New("batcher: Submit wants a 1×C×H×W tensor")
	}
	id, ok := telemetry.RequestID(ctx)
	if !ok {
		id = p.tel.NextRequestID()
	}
	req := &request{ctx: ctx, x: x, id: id, enq: time.Now(), done: make(chan result, 1)}
	if p.router != nil {
		req.path = p.router.Route(x, 0)
		p.stats.route(req.path)
	}

	if !p.closing.enter() {
		p.stats.reject()
		return metrics.Detection{}, ErrClosed
	}
	select {
	case p.queue <- req:
		p.closing.leave()
		p.stats.setQueueDepth(len(p.queue))
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvEnqueued, Req: req.id, At: req.enq})
	default:
		p.closing.leave()
		p.stats.reject()
		return metrics.Detection{}, ErrQueueFull
	}

	select {
	case res := <-req.done:
		return res.det, res.err
	case <-ctx.Done():
		// Prefer a result that raced the cancellation.
		select {
		case res := <-req.done:
			return res.det, res.err
		default:
		}
		// The request stays queued; the flusher drops it when it notices
		// the dead context. The buffered done channel lets the worker
		// deliver without blocking even though nobody reads it.
		p.stats.cancel()
		return metrics.Detection{}, ctx.Err()
	}
}

// Stats returns a snapshot of serving statistics.
func (p *Pool) Stats() Stats { return p.stats.snapshot(len(p.queue)) }

// Close drains the pool: new Submits fail with ErrClosed, every request
// already accepted is served, and Close returns once all replicas are
// idle. Close is idempotent.
func (p *Pool) Close() {
	if p.closing.close() {
		close(p.queue)
	}
	<-p.dispatcherDone
	<-p.workersDone
}

// dispatch coalesces queued requests into per-shape groups and flushes a
// group when it reaches MaxBatch (full-batch flush) or when its oldest
// member has waited MaxWait (timeout flush).
func (p *Pool) dispatch() {
	defer close(p.dispatcherDone)
	defer close(p.work)

	pending := make(map[string][]*request)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for {
		var timerC <-chan time.Time
		if dl, ok := p.earliestDeadline(pending); ok {
			d := time.Until(dl)
			if d <= 0 {
				p.flushDue(pending, time.Now())
				continue
			}
			timer.Reset(d)
			timerC = timer.C
		}

		select {
		case req, ok := <-p.queue:
			if timerC != nil && !timer.Stop() {
				<-timer.C
			}
			if !ok {
				for key := range pending {
					p.flushGroup(pending, key)
				}
				return
			}
			key := batchKey(req)
			pending[key] = append(pending[key], req)
			if len(pending[key]) >= p.maxBatch() {
				p.flushGroup(pending, key)
			}
		case <-timerC:
			p.flushDue(pending, time.Now())
		}
	}
}

// earliestDeadline returns the soonest flush deadline across groups.
func (p *Pool) earliestDeadline(pending map[string][]*request) (time.Time, bool) {
	var dl time.Time
	found := false
	for _, reqs := range pending {
		if len(reqs) == 0 {
			continue
		}
		d := reqs[0].enq.Add(p.maxWait())
		if !found || d.Before(dl) {
			dl, found = d, true
		}
	}
	return dl, found
}

func (p *Pool) flushDue(pending map[string][]*request, now time.Time) {
	for key, reqs := range pending {
		if len(reqs) > 0 && !now.Before(reqs[0].enq.Add(p.maxWait())) {
			p.flushGroup(pending, key)
		}
	}
}

// flushGroup hands a pending group to a replica, dropping requests whose
// context has already expired. The send blocks when all replicas are
// busy — that stall is the backpressure that fills the bounded queue.
func (p *Pool) flushGroup(pending map[string][]*request, key string) {
	reqs := pending[key]
	delete(pending, key)
	live := reqs[:0]
	for _, r := range reqs {
		if r.ctx.Err() != nil {
			// Close the span before delivering: the emit must be in the
			// ring before the waiter can emit EvResponseWritten.
			p.tel.Emit(telemetry.Event{Kind: telemetry.EvInferenceDone, Req: r.id, At: time.Now()})
			r.done <- result{err: r.ctx.Err()}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if p.tel.Enabled() {
		now := time.Now()
		for _, r := range live {
			p.tel.Emit(telemetry.Event{Kind: telemetry.EvBatchFormed, Req: r.id, At: now, Batch: len(live)})
		}
	}
	p.work <- &job{reqs: live}
}

// runWorkers starts one goroutine per replica and closes workersDone when
// the last one drains.
func (p *Pool) runWorkers(replicas []*replica) {
	done := make(chan struct{}, len(replicas))
	for id, rep := range replicas {
		go func(id int, rep *replica) {
			defer func() { done <- struct{}{} }()
			for j := range p.work {
				p.runBatch(id, rep, j)
			}
		}(id, rep)
	}
	for range replicas {
		<-done
	}
	close(p.workersDone)
}

// runBatch stacks a job's clips into one N×C×H×W tensor drawn from the
// replica's arena, runs a single forward pass, and delivers per-request
// results. In the fast path (no stub, no trace hook) the batch tensor,
// every layer temporary and the decoded detections all come from
// replica-owned storage, so a warm replica serves a batch with zero heap
// allocations in the model forward.
func (p *Pool) runBatch(id int, rep *replica, j *job) {
	n := len(j.reqs)
	first := j.reqs[0].x
	c, h, w := first.Dim(1), first.Dim(2), first.Dim(3)
	rep.arena.Reset()
	batch := rep.arena.Get(n, c, h, w)
	stride := c * h * w
	for i, r := range j.reqs {
		copy(batch.Data()[i*stride:(i+1)*stride], r.x.Data())
	}

	// Emit dispatch events and, when the batch carries a trace-sampled
	// request, run the timed forward-pass variant so the sampled span's
	// Chrome trace shows the breakdown: per-layer slices on the plain
	// path, per-stage-group slices on the scheduled (IOS) path.
	var hook model.LayerHook
	var stageHook nn.StageHook
	if p.tel.Enabled() {
		start := time.Now()
		var sampled []uint64
		for _, r := range j.reqs {
			p.tel.Emit(telemetry.Event{Kind: telemetry.EvDispatch, Req: r.id, At: start, Replica: id, Batch: n})
			if p.tel.Sampled(r.id) {
				sampled = append(sampled, r.id)
			}
		}
		if len(sampled) > 0 {
			if rep.exec(n) != nil {
				stageHook = func(stage, group, groups int, label string, at time.Time, d time.Duration) {
					for _, rid := range sampled {
						p.tel.Emit(telemetry.Event{Kind: telemetry.EvStageRun,
							Req: rid, At: at, Dur: d, Replica: id,
							Stage: stage, Group: group, Groups: groups, Name: label})
					}
				}
			} else {
				hook = func(layer int, name string, d time.Duration) {
					for _, rid := range sampled {
						p.tel.Emit(telemetry.Event{Kind: telemetry.EvLayerForward,
							Req: rid, Layer: layer, Name: name, Dur: d, Replica: id})
					}
				}
			}
		}
	}

	// Record stats and emit EvInferenceDone *before* delivering each
	// result: once a waiter unblocks it may immediately read /v1/stats or
	// emit EvResponseWritten, so both must already be ordered ahead.
	dets, err := p.safeDetect(rep, batch, hook, stageHook, j.reqs[0].path)
	if err != nil {
		now := time.Now()
		for _, r := range j.reqs {
			p.tel.Emit(telemetry.Event{Kind: telemetry.EvInferenceDone, Req: r.id, At: now})
			r.done <- result{err: err}
		}
		return
	}
	now := time.Now()
	lats := make([]time.Duration, n)
	for i, r := range j.reqs {
		lats[i] = now.Sub(r.enq)
	}
	p.stats.record(id, n, lats, j.reqs[0].path)
	if p.dyn != nil {
		p.stats.setDynamicRates(p.dyn.ExitStats.Rate(), p.dyn.Stats.Rate())
	}
	for i, r := range j.reqs {
		p.tel.Emit(telemetry.Event{Kind: telemetry.EvInferenceDone, Req: r.id, At: now})
		r.done <- result{det: dets[i]}
	}
}

// safeDetect converts a panicking forward pass (bad shapes reaching a
// layer, etc.) into an error for this batch instead of killing the worker.
// A non-nil stageHook selects the stage-timed scheduled path and a
// non-nil hook the per-layer-timed (training-graph) path; a test stub in
// p.detect overrides both; otherwise the replica's dynamic executor runs
// when configured (picked by the batch's routed path), then the IOS
// executor, else the plain zero-alloc inference fast path. Static paths
// produce bit-identical detections for the same weights and input; the
// dynamic path is bit-identical whenever its exit head is disabled or
// does not fire. Trace-sampled batches fall back to the fp32 timed
// path, so a traced request shows the full per-layer breakdown.
func (p *Pool) safeDetect(rep *replica, x *tensor.Tensor, hook model.LayerHook, stageHook nn.StageHook, path model.Precision) (dets []metrics.Detection, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("batcher: inference failed: %v", r)
		}
	}()
	switch {
	case stageHook != nil:
		rep.dets = model.InferDetectScheduledHook(rep.exec(x.Dim(0)), x, rep.arena, rep.dets, stageHook)
		dets = rep.dets
	case hook != nil:
		dets = p.detectTimed(rep.net, x, hook)
	case p.detect != nil:
		dets = p.detect(rep.net, x)
	case rep.dyn != nil:
		rep.dets = rep.dynExec(path).InferDetect(x, rep.arena, rep.dets)
		dets = rep.dets
	case rep.exec1 != nil:
		rep.dets = model.InferDetectScheduled(rep.exec(x.Dim(0)), x, rep.arena, rep.dets)
		dets = rep.dets
	default:
		rep.dets = model.InferDetect(rep.net, x, rep.arena, rep.dets)
		dets = rep.dets
	}
	if len(dets) != x.Dim(0) {
		return nil, fmt.Errorf("batcher: detector returned %d results for batch of %d", len(dets), x.Dim(0))
	}
	return dets, nil
}

func shapeKey(x *tensor.Tensor) string {
	return fmt.Sprintf("%dx%dx%d", x.Dim(1), x.Dim(2), x.Dim(3))
}

// batchKey groups requests that may share a forward pass: same shape
// and, under dynamic routing, the same precision path.
func batchKey(req *request) string {
	key := shapeKey(req.x)
	if req.path != "" {
		key += "|" + string(req.path)
	}
	return key
}

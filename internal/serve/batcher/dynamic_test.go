package batcher

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// dynCalib builds a separable synthetic split for the dynamic plan:
// negatives are near-flat background, positives carry a bright blob —
// the empty-tile skew the sweep traffic has.
func dynCalib(rng *rand.Rand, n int) *terrain.Dataset {
	ds := &terrain.Dataset{ClipSize: 40}
	for i := 0; i < n; i++ {
		img := tensor.New(4, 40, 40)
		data := img.Data()
		for j := range data {
			ch := j / (40 * 40)
			data[j] = 0.1*float32(ch) + 0.01*float32(rng.NormFloat64())
		}
		s := terrain.Sample{Image: img}
		if i%2 == 0 {
			r0, c0 := 8+rng.Intn(16), 8+rng.Intn(16)
			for ch := 0; ch < 4; ch++ {
				for r := r0; r < r0+8; r++ {
					for c := c0; c < c0+8; c++ {
						data[(ch*40+r)*40+c] += 3 + float32(rng.NormFloat64())
					}
				}
			}
			s.Target = nn.DetectionTarget{
				HasObject: true,
				CX:        (float32(c0) + 4) / 40,
				CY:        (float32(r0) + 4) / 40,
				W:         0.2, H: 0.2,
			}
		}
		ds.Samples = append(ds.Samples, s)
	}
	return ds
}

// dynClip renders one clip in the calibration distribution: empty
// background or background + blob.
func dynClip(seed int64, positive bool) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(1, 4, 40, 40)
	data := x.Data()
	for j := range data {
		ch := j / (40 * 40)
		data[j] = 0.1*float32(ch) + 0.01*float32(rng.NormFloat64())
	}
	if positive {
		for ch := 0; ch < 4; ch++ {
			for r := 14; r < 22; r++ {
				for c := 14; c < 22; c++ {
					data[(ch*40+r)*40+c] += 3 + float32(rng.NormFloat64())
				}
			}
		}
	}
	return x
}

// A pool serving with Options.Dynamic must answer mixed traffic through
// the dynamic executors, account exits and mask skips in Stats, and
// leave positives on the full-path score scale.
func TestDynamicPoolServesAndAccountsExits(t *testing.T) {
	cfg := tinyConfig()
	net := tinyNet(t, cfg)
	nn.PrepareInference(net)
	plan, err := model.PlanDynamic(net, dynCalib(rand.New(rand.NewSource(41)), 48),
		model.DynamicOptions{MaxAPDrop: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.ExitEnabled {
		t.Fatalf("exit demoted on separable calibration (drop %v)", plan.Drop)
	}
	p, err := New(cfg, net, Options{
		Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 64,
		Dynamic: &Dynamic{Spec: plan},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Submit(context.Background(), dynClip(int64(i), i%4 == 0))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	st := p.Stats()
	if !st.DynamicEnabled {
		t.Fatal("stats do not report the dynamic path")
	}
	if st.ExitRate <= 0 {
		t.Fatalf("exit rate %v after mostly-empty traffic, want > 0", st.ExitRate)
	}
	if plan.MaskEnabled && st.MaskRate <= 0 {
		t.Fatalf("mask rate %v with masking enabled, want > 0", st.MaskRate)
	}
	if st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
}

// With a router-enabled plan and an int8 net, Submit must route each
// request and the pool must batch the two paths separately — both
// routed counters move and every request still gets an answer.
func TestDynamicPoolRoutesPerRequestPrecision(t *testing.T) {
	cfg := tinyConfig()
	net := tinyNet(t, cfg)
	nn.PrepareInference(net)
	calib := dynCalib(rand.New(rand.NewSource(43)), 48)
	dec, err := model.QuantizeGated(net, calib, model.QuantOptions{MaxAPDrop: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := model.PlanDynamic(net, calib, model.DynamicOptions{
		MaxAPDrop: 0.05,
		Int8:      &model.QuantDecision{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.RouterEnabled {
		t.Fatal("router not trained despite int8 gate")
	}
	p, err := New(cfg, net, Options{
		Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 64,
		Dynamic: &Dynamic{Spec: plan, Int8Net: dec.Net},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 48
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Submit(context.Background(), dynClip(int64(i), i%2 == 0))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.RoutedInt8 == 0 || st.RoutedFP32 == 0 {
		t.Fatalf("router sent everything one way: int8=%d fp32=%d", st.RoutedInt8, st.RoutedFP32)
	}
	if st.RoutedInt8+st.RoutedFP32 != n {
		t.Fatalf("routed %d, want %d", st.RoutedInt8+st.RoutedFP32, n)
	}
}

// Dynamic does not compose with IOS schedules: New must refuse the
// combination instead of silently ignoring one of them.
func TestDynamicRejectsIOSPlan(t *testing.T) {
	cfg := tinyConfig()
	net := tinyNet(t, cfg)
	nn.PrepareInference(net)
	plan, err := model.PlanDynamic(net, dynCalib(rand.New(rand.NewSource(47)), 32),
		model.DynamicOptions{MaxAPDrop: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(cfg, net, Options{
		Dynamic: &Dynamic{Spec: plan},
		Plan:    &model.SchedulePlan{},
	})
	if err == nil {
		t.Fatal("New accepted Dynamic + IOS Plan")
	}
}

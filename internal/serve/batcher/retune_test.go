package batcher

import (
	"context"
	"testing"
	"time"
)

func TestRetuneClampsAndQueries(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 8, MaxWait: 2 * time.Millisecond, QueueSize: 16})

	// A keep-everything query (non-positive batch, negative wait) returns
	// the current tuning untouched.
	mb, mw := p.Retune(0, -1)
	if mb != 8 || mw != 2*time.Millisecond {
		t.Fatalf("query Retune = (%d, %v), want (8, 2ms)", mb, mw)
	}

	// In-bounds retune takes effect and Tuning agrees.
	mb, mw = p.Retune(2, 500*time.Microsecond)
	if mb != 2 || mw != 500*time.Microsecond {
		t.Fatalf("Retune(2, 500µs) = (%d, %v)", mb, mw)
	}
	if gb, gw := p.Tuning(); gb != 2 || gw != 500*time.Microsecond {
		t.Fatalf("Tuning = (%d, %v) after retune", gb, gw)
	}

	// MaxBatch clamps to the configured ceiling (histogram buckets and
	// batch arenas are sized from Options.MaxBatch).
	if mb, _ = p.Retune(100, -1); mb != 8 {
		t.Fatalf("over-ceiling Retune batch = %d, want clamp to 8", mb)
	}
	// MaxWait clamps to the retune ceiling.
	if _, mw = p.Retune(0, time.Second); mw != retuneWaitCeiling {
		t.Fatalf("over-ceiling Retune wait = %v, want %v", mw, retuneWaitCeiling)
	}
	// Zero wait is legal: flush every batch immediately.
	if _, mw = p.Retune(0, 0); mw != 0 {
		t.Fatalf("zero-wait Retune = %v, want 0", mw)
	}

	// The pool still serves correctly after retuning to the floor.
	if _, err := p.Submit(context.Background(), clip(1)); err != nil {
		t.Fatalf("Submit after retune: %v", err)
	}
}

func TestRetuneQueryDoesNotCountAsRetune(t *testing.T) {
	p := newTestPool(t, Options{Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 16})
	p.Retune(0, -1) // pure query
	p.Retune(2, -1) // real retune
	found := false
	for _, pt := range p.tel.Registry().Snapshot() {
		if pt.Name == "drainnet_retunes_total" {
			found = true
			if pt.Value != 1 {
				t.Fatalf("drainnet_retunes_total = %v, want 1 (queries must not count)", pt.Value)
			}
		}
	}
	if !found {
		t.Fatal("drainnet_retunes_total not exported")
	}
}

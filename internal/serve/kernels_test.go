package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/nn"
)

// A server started with a tuned kernel plan must report the per-layer
// choices on /v1/model, export the drainnet_kernel_choice gauge, and
// still serve detections through the retargeted kernels.
func TestServeKernelPlanReported(t *testing.T) {
	cfg := model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Retarget the convs the way the autotuner would and hand the server
	// the matching plan.
	var layers []model.LayerKernel
	for i, m := range net.Modules() {
		c, ok := nn.Unwrap(m).(*nn.Conv2D)
		if !ok || c.Algo != nn.ConvIm2Col {
			continue
		}
		bn := nn.KernelNCHWc
		if c.KernelEligible(nn.KernelWinograd) {
			bn = nn.KernelWinograd
		}
		c.SetKernels(nn.KernelDirect, bn)
		layers = append(layers, model.LayerKernel{
			Layer: i, Name: "conv" + string(rune('0'+len(layers))),
			Precision: string(model.PrecisionFP32),
			Batch1:    nn.KernelDirect.String(), BatchN: bn.String(),
			SpeedupB1: 1.1, SpeedupBN: 1.5,
		})
	}
	if len(layers) == 0 {
		t.Fatal("test net has no tunable convs")
	}
	plan := &model.KernelPlan{Served: net, Layers: layers, Batches: []int{1, 16}}

	s, err := NewWithOptions(cfg, net, 0.5, Options{
		Replicas: 1, MaxWait: time.Millisecond, Kernels: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info ModelInfo
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Kernels) != len(layers) {
		t.Fatalf("/v1/model reports %d kernel layers, want %d", len(info.Kernels), len(layers))
	}
	for i, l := range info.Kernels {
		if l != layers[i] {
			t.Fatalf("kernel layer %d = %+v, want %+v", i, l, layers[i])
		}
	}

	dresp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("detect status %d", dresp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	want := `drainnet_kernel_choice{layer="conv0",batch="1",kernel="direct"} 1`
	if !strings.Contains(string(body), want) {
		t.Fatalf("metrics missing kernel choice gauge %q:\n%s", want, body)
	}
}

// Without a plan, /v1/model omits the kernels block entirely.
func TestServeKernelPlanOmitted(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), `"kernels"`) {
		t.Fatalf("/v1/model reports kernels without a plan:\n%s", body)
	}
}

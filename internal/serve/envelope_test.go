package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// These tests pin down the /v1 error-envelope contract at its edges:
// the catch-all 404 body shape, method enforcement on every route, and
// the 410 retirement of both legacy aliases.

func TestNotFoundEnvelopeExactShape(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v2/detect")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The body must be exactly {"error":{"code":...,"message":...}} —
	// one top-level key, two keys inside, nothing extra.
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatalf("404 body is not JSON: %v\n%s", err, body)
	}
	if len(top) != 1 || top["error"] == nil {
		t.Fatalf("404 body keys %v, want exactly {error}", top)
	}
	var inner map[string]string
	if err := json.Unmarshal(top["error"], &inner); err != nil {
		t.Fatal(err)
	}
	if len(inner) != 2 {
		t.Fatalf("error object keys %v, want exactly {code, message}", inner)
	}
	if inner["code"] != CodeNotFound {
		t.Fatalf("code %q, want %q", inner["code"], CodeNotFound)
	}
	if !strings.Contains(inner["message"], "/v2/detect") {
		t.Fatalf("message %q should name the missing path", inner["message"])
	}
}

func TestMethodNotAllowedOnEveryRoute(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/v1/model", http.MethodGet},
		{http.MethodPut, "/v1/stats", http.MethodGet},
		{http.MethodPost, "/v1/metrics", http.MethodGet},
		{http.MethodPost, "/v1/trace", http.MethodGet},
		{http.MethodGet, "/v1/detect", http.MethodPost},
		{http.MethodGet, "/v1/detect/batch", http.MethodPost},
		{http.MethodPut, "/v1/sweep", "GET, POST"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != c.allow {
			t.Fatalf("%s %s: Allow %q, want %q", c.method, c.path, allow, c.allow)
		}
		env := decodeError(t, resp)
		resp.Body.Close()
		if env.Error.Code != CodeMethodNotAllowed {
			t.Fatalf("%s %s: code %q, want %q", c.method, c.path, env.Error.Code, CodeMethodNotAllowed)
		}
	}
}

func TestLegacyAliasesReturnGone(t *testing.T) {
	// The retired aliases answer 410 for every method, with the standard
	// envelope and a Link naming the /v1 successor.
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	cases := []struct {
		method, path, successor string
	}{
		{http.MethodGet, "/model", "/v1/model"},
		{http.MethodPost, "/model", "/v1/model"},
		{http.MethodPost, "/detect", "/v1/detect"},
		{http.MethodGet, "/detect", "/v1/detect"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("%s %s: status %d, want 410", c.method, c.path, resp.StatusCode)
		}
		if link := resp.Header.Get("Link"); link != "<"+c.successor+`>; rel="successor-version"` {
			t.Fatalf("%s %s: Link header %q", c.method, c.path, link)
		}
		env := decodeError(t, resp)
		resp.Body.Close()
		if env.Error.Code != CodeGone {
			t.Fatalf("%s %s: code %q, want %q", c.method, c.path, env.Error.Code, CodeGone)
		}
		if !strings.Contains(env.Error.Message, c.successor) {
			t.Fatalf("%s %s: message %q should name the successor", c.method, c.path, env.Error.Message)
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"drainnet/internal/sweep"
)

// testSweepSpec is sized so a random-weight model finishes it in well
// under a second: 96² raster, 40-px windows (the model's training size).
func testSweepSpec() sweep.Spec {
	return sweep.Spec{
		Rows: 96, Cols: 96, Seed: 5,
		Window: 40, Stride: 24,
		MinScore:        0.05,
		RoadSpacing:     48,
		StreamThreshold: 48,
		CheckpointEvery: 8,
	}
}

func startSweep(t *testing.T, url string, spec sweep.Spec) sweep.Status {
	t.Helper()
	resp := postJSON(t, url+"/v1/sweep", spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweep status %d", resp.StatusCode)
	}
	var st sweep.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != sweep.StateRunning {
		t.Fatalf("bad start status: %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweep/"+st.ID {
		t.Fatalf("Location %q", loc)
	}
	return st
}

func getStatus(t *testing.T, url, id string) sweep.Status {
	t.Helper()
	resp, err := http.Get(url + "/v1/sweep/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	var st sweep.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, url, id, want string) sweep.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, url, id)
		if st.State == want {
			return st
		}
		if st.State != sweep.StateRunning {
			t.Fatalf("job %s reached %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %q", id, want)
	return sweep.Status{}
}

func TestSweepJobLifecycleOverHTTP(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := startSweep(t, ts.URL, testSweepSpec())
	final := waitState(t, ts.URL, st.ID, sweep.StateDone)
	if final.Windows == 0 || final.Inferred == 0 || final.ScenariosDone != 1 {
		t.Fatalf("final status %+v", final)
	}
	if len(final.PerScenario) != 1 || final.PerScenario[0].Scenario != "baseline" {
		t.Fatalf("per-scenario summaries %+v", final.PerScenario)
	}

	// The list endpoint carries the job inside an items envelope.
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Items []sweep.Status `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Items) != 1 || list.Items[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}

	// Results: shared Hit schema (point-form), enveloped, paginated.
	var all []Hit
	cursor := "0"
	for {
		resp, err := http.Get(ts.URL + "/v1/sweep/" + st.ID + "/results?limit=2&cursor=" + cursor)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results status %d", resp.StatusCode)
		}
		var page struct {
			Items      []Hit `json:"items"`
			NextCursor *int  `json:"next_cursor"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		all = append(all, page.Items...)
		if page.NextCursor == nil {
			break
		}
		cursor = itoa(*page.NextCursor)
	}
	if len(all) != final.Hits {
		t.Fatalf("paginated %d hits, status says %d", len(all), final.Hits)
	}
	for _, h := range all {
		if h.Point == nil || h.Box != nil || h.Scenario == "" || !h.HasObject {
			t.Fatalf("sweep hit shape wrong: %+v", h)
		}
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	for i, body := range []string{
		`{`,                                   // bad JSON
		`{"rows":8,"cols":8}`,                 // raster too small
		`{"rows":96,"cols":96,"window":4}`,    // window too small
		`{"rows":96,"cols":96,"min_score":2}`, // score out of range
		`{"rows":96,"cols":96,"scenarios":["nah"]}`, // unknown scenario
		`{"rows":96,"cols":96,"precision":"int8"}`,  // pool serves fp32
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		decodeError(t, resp)
		resp.Body.Close()
	}
}

func TestSweepUnknownJobAndBadSubroute(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/sweep/sw-0-000", "/v1/sweep/sw-0-000/results", "/v1/sweep//x"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
		env := decodeError(t, resp)
		resp.Body.Close()
		if env.Error.Code != CodeNotFound {
			t.Fatalf("%s: code %q", path, env.Error.Code)
		}
	}
}

func TestSweepCancelOverHTTP(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	spec := testSweepSpec()
	spec.Rows, spec.Cols = 512, 512 // big enough to still be running
	spec.StreamThreshold = 230
	st := startSweep(t, ts.URL, spec)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweep/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		final := getStatus(t, ts.URL, st.ID)
		switch final.State {
		case sweep.StateCanceled:
			return
		case sweep.StateDone:
			t.Skip("job finished before the cancel landed")
		case sweep.StateRunning:
			if time.Now().After(deadline) {
				t.Fatalf("job still running after cancel: %+v", final)
			}
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("state %q (err %q)", final.State, final.Error)
		}
	}
}

// A server restart mid-job must pick the job back up from its checkpoint
// and run it to completion — the graceful-drain guarantee, through the
// public API surface.
func TestSweepSurvivesServerRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sweeps")
	spec := testSweepSpec()
	spec.Rows, spec.Cols = 256, 256
	spec.StreamThreshold = 115

	s1 := testServerWith(t, Options{SweepDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	st := startSweep(t, ts1.URL, spec)
	// Let it make some progress, then drain.
	deadline := time.Now().Add(20 * time.Second)
	for getStatus(t, ts1.URL, st.ID).Inferred == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	ts1.Close()
	s1.Close()

	s2 := testServerWith(t, Options{SweepDir: dir, SweepResume: true})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	final := waitState(t, ts2.URL, st.ID, sweep.StateDone)
	if final.ScenariosDone != 1 || final.Inferred != final.Candidates {
		t.Fatalf("resumed job inconsistent: %+v", final)
	}
}

// 429 responses carry Retry-After guidance; once queue waits have been
// observed, the header derives from the live p95.
func TestQueueFullRetryAfter(t *testing.T) {
	s := testServerWith(t, Options{Replicas: 1, MaxBatch: 1, QueueSize: 1, MaxWait: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unit-level: with no observed waits the fallback is ≥ 1s.
	if got := s.retryAfterSeconds(); got != "1" {
		t.Fatalf("fallback Retry-After %q, want 1", got)
	}
	// Feed the queue-wait histogram directly (get-or-create semantics
	// return the same histogram the pipeline records into): ~10s waits
	// must push the suggestion far above the 1s fallback, to 4× the p95.
	h := s.Telemetry().Registry().Histogram("drainnet_queue_wait_seconds", "", nil)
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	p95, ok := s.Telemetry().QueueWaitQuantile(0.95)
	if !ok || p95 <= 1 {
		t.Fatalf("queue-wait p95 = %v, ok = %v after observations", p95, ok)
	}
	want := strconv.Itoa(int(math.Ceil(p95 * 4)))
	if got := s.retryAfterSeconds(); got != want {
		t.Fatalf("histogram-derived Retry-After %q, want %q", got, want)
	}

	// End-to-end: saturate the tiny queue until a 429 appears and check
	// the header rode along.
	var mu sync.Mutex
	var retryAfter string
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(validDetectRequest())
			resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				retryAfter = resp.Header.Get("Retry-After")
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if retryAfter == "" {
		t.Skip("queue never filled; load-dependent")
	}
	if retryAfter != want {
		t.Fatalf("429 Retry-After %q, want the histogram-derived %q", retryAfter, want)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"drainnet/internal/model"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	cfg := model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(cfg, net, 0.5, Options{Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) ErrorEnvelope {
	t.Helper()
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error envelope did not decode: %v", err)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code/message: %+v", env)
	}
	return env
}

func validDetectRequest() DetectRequest {
	return DetectRequest{Bands: 4, Size: 40, Pixels: make([]float32, 4*40*40)}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestModelInfoV1(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.InBands != 4 || info.Params <= 0 || info.Notation == "" {
		t.Fatalf("info %+v", info)
	}
	if info.Replicas != 2 || info.MaxBatch != 4 {
		t.Fatalf("pool config not reported: %+v", info)
	}
}

func TestDetectValidRequestV1(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dr Hit
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Score < 0 || dr.Score > 1 {
		t.Fatalf("score %v", dr.Score)
	}
	if dr.Box == nil || dr.Point != nil || dr.Scenario != "" {
		t.Fatalf("clip hit should carry a box and nothing raster-scoped: %+v", dr)
	}
}

func TestDetectVariableClipSize(t *testing.T) {
	// The SPP property: the served model accepts other clip sizes.
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	req := DetectRequest{Bands: 4, Size: 64, Pixels: make([]float32, 4*64*64)}
	resp := postJSON(t, ts.URL+"/v1/detect", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for 64×64 clip", resp.StatusCode)
	}
}

func TestDetectRejectsBadInputs(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	cases := []DetectRequest{
		{Bands: 3, Size: 40, Pixels: make([]float32, 3*40*40)}, // wrong bands
		{Bands: 4, Size: 40, Pixels: make([]float32, 7)},       // wrong length
		{Bands: 4, Size: 2, Pixels: make([]float32, 16)},       // too small
		{Bands: 4, Size: 0, Pixels: nil},                       // non-positive
		{Bands: 4, Size: -40, Pixels: make([]float32, 6400)},   // negative
	}
	for i, req := range cases {
		resp := postJSON(t, ts.URL+"/v1/detect", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		env := decodeError(t, resp)
		resp.Body.Close()
		if env.Error.Code != CodeInvalidRequest {
			t.Fatalf("case %d: code %q, want %q", i, env.Error.Code, CodeInvalidRequest)
		}
	}
}

func TestValidateRejectsNonFinitePixels(t *testing.T) {
	// NaN/Inf cannot ride standard JSON, so exercise the validator
	// directly: these reach it from programmatic API use.
	s := testServer(t)
	for _, bad := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		req := validDetectRequest()
		req.Pixels[17] = bad
		e := s.validate(&req)
		if e == nil || e.Code != CodeInvalidRequest {
			t.Fatalf("pixel %v accepted; want %s error", bad, CodeInvalidRequest)
		}
	}
}

func TestMethodEnforcement(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	// GET on a POST route.
	resp, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("code %q", env.Error.Code)
	}
	// POST on a GET route.
	resp = postJSON(t, ts.URL+"/v1/model", struct{}{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/model: status %d, want 405", resp.StatusCode)
	}
}

func TestDetectRejectsGarbageJSON(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeBadJSON {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeBadJSON)
	}
}

func TestLegacyDetectAliasGone(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/detect", validDetectRequest())
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("legacy /detect status %d, want 410", resp.StatusCode)
	}
	if link := resp.Header.Get("Link"); link != `</v1/detect>; rel="successor-version"` {
		t.Fatalf("legacy route Link header %q", link)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeGone {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeGone)
	}
}

func TestDetectBatchPositionalResults(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	batch := BatchRequest{Items: []DetectRequest{
		validDetectRequest(),
		{Bands: 3, Size: 40, Pixels: make([]float32, 3*40*40)}, // invalid item
		validDetectRequest(),
	}}
	resp := postJSON(t, ts.URL+"/v1/detect/batch", batch)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	items := br.Items
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Result == nil || items[0].Error != nil {
		t.Fatalf("item 0 should succeed: %+v", items[0])
	}
	if items[0].Result.Box == nil {
		t.Fatalf("batch hit missing box: %+v", items[0].Result)
	}
	if items[1].Error == nil || items[1].Error.Code != CodeInvalidRequest {
		t.Fatalf("item 1 should fail validation: %+v", items[1])
	}
	if items[2].Result == nil {
		t.Fatalf("item 2 should succeed: %+v", items[2])
	}
}

func TestDetectBatchRejectsEmpty(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/detect/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeInvalidRequest {
		t.Fatalf("code %q", env.Error.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Served     uint64   `json:"served"`
		Batches    uint64   `json:"batches"`
		BatchSizes []uint64 `json:"batch_size_histogram"`
		PerReplica []uint64 `json:"per_replica_served"`
		P50        float64  `json:"latency_p50_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 3 || st.Batches == 0 {
		t.Fatalf("stats %+v", st)
	}
	var clips uint64
	for size, n := range st.BatchSizes {
		clips += uint64(size+1) * n
	}
	if clips != st.Served {
		t.Fatalf("histogram accounts for %d clips, served %d", clips, st.Served)
	}
	if st.P50 <= 0 {
		t.Fatalf("latency p50 %v, want > 0", st.P50)
	}
}

func TestDetectAfterCloseUnavailable(t *testing.T) {
	cfg := model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(cfg, net, 0.5, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	resp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeUnavailable {
		t.Fatalf("code %q", env.Error.Code)
	}
}

func TestDetectConcurrentRequests(t *testing.T) {
	// Concurrent clients must all succeed; the pool coalesces them into
	// batches across replicas (this races without replica isolation).
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(validDetectRequest())
			resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent request failed: %v", err)
		}
	}
}

func TestUnknownRouteEnvelope(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeNotFound {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeNotFound)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"drainnet/internal/model"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	cfg := model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return New(cfg, net, 0.5)
}

func postDetect(t *testing.T, ts *httptest.Server, req DetectRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestModelInfo(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.InBands != 4 || info.Params <= 0 || info.Notation == "" {
		t.Fatalf("info %+v", info)
	}
}

func TestDetectValidRequest(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	req := DetectRequest{Bands: 4, Size: 40, Pixels: make([]float32, 4*40*40)}
	resp := postDetect(t, ts, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dr DetectResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Score < 0 || dr.Score > 1 {
		t.Fatalf("score %v", dr.Score)
	}
}

func TestDetectVariableClipSize(t *testing.T) {
	// The SPP property: the served model accepts other clip sizes.
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	req := DetectRequest{Bands: 4, Size: 64, Pixels: make([]float32, 4*64*64)}
	resp := postDetect(t, ts, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for 64×64 clip", resp.StatusCode)
	}
}

func TestDetectRejectsBadInputs(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	cases := []DetectRequest{
		{Bands: 3, Size: 40, Pixels: make([]float32, 3*40*40)}, // wrong bands
		{Bands: 4, Size: 40, Pixels: make([]float32, 7)},       // wrong length
		{Bands: 4, Size: 2, Pixels: make([]float32, 16)},       // too small
	}
	for i, req := range cases {
		resp := postDetect(t, ts, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

func TestDetectRejectsGet(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/detect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestDetectRejectsGarbageJSON(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/detect", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestDetectConcurrentRequests(t *testing.T) {
	// The server must serialize inference internally; concurrent clients
	// must all succeed (this races without the mutex).
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := DetectRequest{Bands: 4, Size: 40, Pixels: make([]float32, 4*40*40)}
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/detect", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent request failed: %v", err)
		}
	}
}

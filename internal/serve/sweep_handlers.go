package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"drainnet/internal/sweep"
)

// maxSweepPage bounds one results page; larger limits clamp.
const maxSweepPage = 1000

// handleSweepCollection serves the /v1/sweep collection: POST starts a
// job (202 + status), GET lists every known job.
func (s *Server) handleSweepCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSweepStart(w, r)
	case http.MethodGet:
		jobs := s.sweeps.Jobs()
		out := make([]sweep.Status, len(jobs))
		for i, j := range jobs {
			out[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, items(out))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, &apiError{Status: http.StatusMethodNotAllowed,
			Code: CodeMethodNotAllowed, Message: "GET or POST required"})
	}
}

func (s *Server) handleSweepStart(w http.ResponseWriter, r *http.Request) {
	var spec sweep.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, badRequest(CodeBadJSON, "bad JSON: "+err.Error()))
		return
	}
	j, err := s.sweeps.Start(spec)
	if err != nil {
		writeError(w, badRequest(CodeInvalidRequest, err.Error()))
		return
	}
	w.Header().Set("Location", "/v1/sweep/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleSweepJob serves the /v1/sweep/{id} subtree:
//
//	GET    /v1/sweep/{id}          status
//	DELETE /v1/sweep/{id}          cancel
//	GET    /v1/sweep/{id}/results  paginated hits (?cursor=&limit=)
func (s *Server) handleSweepJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweep/")
	id, sub, hasSub := strings.Cut(rest, "/")
	if id == "" || (hasSub && sub != "results") {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no such route: " + r.URL.Path})
		return
	}
	j, ok := s.sweeps.Get(id)
	if !ok {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no such sweep job: " + id})
		return
	}
	switch {
	case hasSub:
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, &apiError{Status: http.StatusMethodNotAllowed,
				Code: CodeMethodNotAllowed, Message: "GET required"})
			return
		}
		s.handleSweepResults(w, r, j)
	case r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.Status())
	case r.Method == http.MethodDelete:
		j.Cancel()
		writeJSON(w, http.StatusOK, j.Status())
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, &apiError{Status: http.StatusMethodNotAllowed,
			Code: CodeMethodNotAllowed, Message: "GET or DELETE required"})
	}
}

func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request, j *sweep.Job) {
	cursor, e := queryInt(r, "cursor", 0)
	if e == nil {
		var limit int
		limit, e = queryInt(r, "limit", maxSweepPage)
		if e == nil {
			if limit <= 0 || limit > maxSweepPage {
				limit = maxSweepPage
			}
			hits, next := j.Results(cursor, limit)
			out := make([]Hit, len(hits))
			for i, h := range hits {
				out[i] = Hit{
					Score:     h.Score,
					HasObject: true,
					Point:     &RasterPoint{Row: h.Row, Col: h.Col},
					Scenario:  h.Scenario,
				}
			}
			resp := items(out)
			if next >= 0 {
				resp.NextCursor = &next
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	writeError(w, e)
}

func queryInt(r *http.Request, key string, def int) (int, *apiError) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, badRequest(CodeInvalidRequest, key+" must be a non-negative integer")
	}
	return v, nil
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/telemetry"
)

// testServerWith builds a serve.Server around the small test model with
// explicit telemetry options.
func testServerWith(t *testing.T, opts Options) *Server {
	t.Helper()
	cfg := model.OriginalSPPNet().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if opts.Replicas == 0 {
		opts.Replicas = 2
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 4
	}
	if opts.MaxWait == 0 {
		opts.MaxWait = time.Millisecond
	}
	s, err := NewWithOptions(cfg, net, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitFor polls cond: span-derived metrics are folded in asynchronously
// by the pipeline consumer, so scrape assertions poll rather than racing
// the response.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func scrape(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
		resp.Body.Close()
	}
	// The serving counters are synchronous; the span-derived phase
	// histograms fill in once the pipeline consumer catches up, and the
	// HTTP middleware records after the response body is flushed.
	reg := s.Telemetry().Registry()
	spans := reg.Counter("drainnet_spans_total", "")
	waitFor(t, func() bool { return spans.Value() >= 3 }, "3 spans assembled")
	httpDur := reg.HistogramVec("drainnet_http_request_duration_seconds", "", telemetry.TimeBuckets, "route").With("/v1/detect")
	waitFor(t, func() bool { return httpDur.Snapshot().Count >= 3 }, "3 HTTP observations")

	text, resp := scrape(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}

	for _, want := range []string{
		// Serving counters (synchronous with the request path).
		"drainnet_requests_served_total 3",
		"# TYPE drainnet_batch_size histogram",
		"drainnet_batch_size_count",
		`drainnet_replica_served_total{replica="0"}`,
		`drainnet_replica_served_total{replica="1"}`,
		"# TYPE drainnet_request_latency_seconds histogram",
		// Span-derived phase histograms.
		"# TYPE drainnet_queue_wait_seconds histogram",
		`drainnet_queue_wait_seconds_bucket{le="+Inf"} 3`,
		"# TYPE drainnet_inference_seconds histogram",
		`drainnet_inference_seconds_bucket{le="+Inf"} 3`,
		"drainnet_serialization_seconds_count 3",
		// HTTP middleware metrics.
		`drainnet_http_requests_total{route="/v1/detect",code="200"} 3`,
		`drainnet_http_request_duration_seconds_count{route="/v1/detect"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/v1/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsEndpointJSON(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	body, resp := scrape(t, ts.URL+"/v1/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snap struct {
		Items []telemetry.MetricPoint `json:"items"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON snapshot did not decode: %v", err)
	}
	if len(snap.Items) == 0 {
		t.Fatal("empty metric snapshot")
	}
}

func TestStatsMatchesRegistry(t *testing.T) {
	// /v1/stats is a view over the same registry /v1/metrics exports;
	// the two must agree exactly.
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
		resp.Body.Close()
	}
	body, _ := scrape(t, ts.URL+"/v1/stats")
	var st struct {
		Served     uint64   `json:"served"`
		Batches    uint64   `json:"batches"`
		PerReplica []uint64 `json:"per_replica_served"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	reg := s.Telemetry().Registry()
	if got := reg.Counter("drainnet_requests_served_total", "").Value(); got != st.Served {
		t.Fatalf("registry served %d, stats served %d", got, st.Served)
	}
	if got := reg.Counter("drainnet_batches_total", "").Value(); got != st.Batches {
		t.Fatalf("registry batches %d, stats batches %d", got, st.Batches)
	}
	var perReplica uint64
	for _, n := range st.PerReplica {
		perReplica += n
	}
	if perReplica != st.Served {
		t.Fatalf("per-replica sum %d, served %d", perReplica, st.Served)
	}
}

func TestTraceSamplingEndToEnd(t *testing.T) {
	tel := telemetry.New(telemetry.Options{SampleEvery: 1})
	s := testServerWith(t, Options{Telemetry: tel})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any sampled request, /v1/trace is an enveloped 404.
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty trace status %d, want 404", resp.StatusCode)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeNotFound {
		t.Fatalf("code %q", env.Error.Code)
	}

	resp = postJSON(t, ts.URL+"/v1/detect", validDetectRequest())
	resp.Body.Close()
	traces := tel.Registry().Counter("drainnet_traces_sampled_total", "")
	waitFor(t, func() bool { return traces.Value() >= 1 }, "a sampled trace")

	body, resp := scrape(t, ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	if resp.Header.Get("Drainnet-Request-Id") == "" {
		t.Fatal("trace missing Drainnet-Request-Id header")
	}
	// Chrome-trace object form: {"traceEvents": [...]} — the /v1 rule
	// that no endpoint returns a bare array.
	var trace struct {
		Events []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	events := trace.Events
	if len(events) == 0 {
		t.Fatal("traceEvents missing or empty")
	}
	var sawRequest, sawInference, sawLayer bool
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("event %q ph %q, want X", e.Name, e.Ph)
		}
		switch {
		case strings.HasPrefix(e.Name, "request "):
			sawRequest = true
		case strings.HasPrefix(e.Name, "inference "):
			sawInference = true
		case e.Cat == "kernel/layer":
			sawLayer = true
		}
	}
	if !sawRequest || !sawInference || !sawLayer {
		t.Fatalf("trace missing request/inference/layer slices (req=%v inf=%v layer=%v):\n%s",
			sawRequest, sawInference, sawLayer, body)
	}
}

// TestConcurrentRequestsAndScrapes is the -race acceptance test: clients
// hammer /v1/detect while scrapers read /v1/metrics and /v1/stats, all
// against the instrumented hot path.
func TestConcurrentRequestsAndScrapes(t *testing.T) {
	tel := telemetry.New(telemetry.Options{SampleEvery: 4})
	s := testServerWith(t, Options{Telemetry: tel})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients, perClient = 6, 10
	errs := make(chan error, clients+2)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				body, _ := json.Marshal(validDetectRequest())
				resp, err := http.Post(ts.URL+"/v1/detect", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("detect status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for _, path := range []string{"/v1/metrics", "/v1/stats"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for j := 0; j < 2*perClient; j++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	served := tel.Registry().Counter("drainnet_requests_served_total", "")
	if served.Value() != clients*perClient {
		t.Fatalf("served %d, want %d", served.Value(), clients*perClient)
	}
	spans := tel.Registry().Counter("drainnet_spans_total", "")
	waitFor(t, func() bool { return spans.Value() >= clients*perClient },
		"all spans assembled")
}

func TestPprofGating(t *testing.T) {
	// Off by default: the catch-all envelope answers.
	ts := httptest.NewServer(testServer(t).Handler())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
	ts.Close()

	ts = httptest.NewServer(testServerWith(t, Options{EnablePprof: true}).Handler())
	defer ts.Close()
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -pprof: status %d, want 200", resp.StatusCode)
	}
}

func TestHTTPMetricsRecordErrorRoutes(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The middleware records after the handler returns; the client can
	// see the response first, so poll.
	c := s.Telemetry().Registry().CounterVec("drainnet_http_requests_total", "", "route", "code").With("other", "404")
	waitFor(t, func() bool { return c.Value() == 1 }, `http_requests{route="other",code="404"} = 1`)
}

// /v1/metrics must export Go runtime memory gauges, refreshed at scrape
// time, so the zero-allocation serving claim is observable in production
// (flat heap objects / GC runs under steady load).
func TestMetricsEndpointRuntimeGauges(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	text, resp := scrape(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE drainnet_go_heap_alloc_bytes gauge",
		"drainnet_go_heap_alloc_bytes",
		"drainnet_go_heap_sys_bytes",
		"drainnet_go_heap_objects",
		"drainnet_go_gc_pause_total_seconds",
		"drainnet_go_gc_runs_total",
		"drainnet_go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/v1/metrics missing runtime gauge %q:\n%s", want, text)
		}
	}
	// The gauges are live values, not zero placeholders: a running
	// process always has a nonzero heap.
	reg := s.Telemetry().Registry()
	if v := reg.Gauge("drainnet_go_heap_alloc_bytes", "").Value(); v <= 0 {
		t.Fatalf("heap alloc gauge = %v, want > 0", v)
	}
}

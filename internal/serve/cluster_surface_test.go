package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHealthzReadyThenDraining(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hs HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hs.Status != "ready" || !hs.Accepting {
		t.Fatalf("fresh server healthz = %d %+v, want 200 ready/accepting", resp.StatusCode, hs)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hs.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", resp.StatusCode, hs)
	}
	// Liveness stays up through a drain — only readiness flips.
	lr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if lr.StatusCode != http.StatusOK {
		t.Fatalf("liveness during drain = %d, want 200", lr.StatusCode)
	}
}

func TestControlBatchingEndpoint(t *testing.T) {
	s := testServer(t) // MaxBatch 4, MaxWait 1ms
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/v1/control/batching"

	retune := func(t *testing.T, body any) (BatchingControl, int) {
		t.Helper()
		resp := postJSON(t, url, body)
		defer resp.Body.Close()
		var out BatchingControl
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out, resp.StatusCode
	}

	// Keep-everything query echoes the live tuning.
	out, code := retune(t, BatchingControl{MaxBatch: 0, MaxWaitMs: -1})
	if code != http.StatusOK || out.MaxBatch != 4 || out.MaxWaitMs != 1 {
		t.Fatalf("query = %d %+v, want 200 {4, 1ms}", code, out)
	}
	// In-bounds retune is echoed back resolved.
	out, code = retune(t, BatchingControl{MaxBatch: 2, MaxWaitMs: 0.5})
	if code != http.StatusOK || out.MaxBatch != 2 || out.MaxWaitMs != 0.5 {
		t.Fatalf("retune = %d %+v, want 200 {2, 0.5ms}", code, out)
	}
	// Requests over the ceilings come back clamped, not errored.
	out, code = retune(t, BatchingControl{MaxBatch: 1000, MaxWaitMs: 60000})
	if code != http.StatusOK || out.MaxBatch != 4 || out.MaxWaitMs != 100 {
		t.Fatalf("over-ceiling = %d %+v, want 200 {4, 100ms}", code, out)
	}
	// Negative batch is a client error.
	if _, code = retune(t, BatchingControl{MaxBatch: -1}); code != http.StatusBadRequest {
		t.Fatalf("negative max_batch = %d, want 400", code)
	}
	// GET is not allowed on a control endpoint.
	gr, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET control = %d, want 405", gr.StatusCode)
	}
}

func TestLegacyModelAliasGone(t *testing.T) {
	ts := httptest.NewServer(testServer(t).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("legacy /model status %d, want 410", resp.StatusCode)
	}
	if link := resp.Header.Get("Link"); link != `</v1/model>; rel="successor-version"` {
		t.Fatalf("legacy route Link header %q", link)
	}
	env := decodeError(t, resp)
	resp.Body.Close()
	if env.Error.Code != CodeGone {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeGone)
	}
}

func TestRetryAfterFrom(t *testing.T) {
	cases := []struct {
		name    string
		p95     float64
		ok      bool
		maxWait time.Duration
		want    string
	}{
		{"no observations falls back to max-wait, floored to 1s", 0, false, 2 * time.Millisecond, "1"},
		{"no observations with long max-wait rounds it up", 0, false, 2500 * time.Millisecond, "3"},
		{"small p95 floors at 1s", 0.05, true, time.Millisecond, "1"},
		{"p95 of 600ms settles in ceil(2.4s) = 3s", 0.6, true, time.Millisecond, "3"},
		{"p95 of 250ms → exactly 1s", 0.25, true, time.Millisecond, "1"},
		{"p95 just over 250ms rounds up to 2s", 0.26, true, time.Millisecond, "2"},
		{"large p95 scales linearly", 5, true, time.Millisecond, "20"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := retryAfterFrom(tc.p95, tc.ok, tc.maxWait); got != tc.want {
				t.Fatalf("retryAfterFrom(%v, %v, %v) = %q, want %q", tc.p95, tc.ok, tc.maxWait, got, tc.want)
			}
		})
	}
}

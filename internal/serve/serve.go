// Package serve exposes a trained drainage-crossing detector over HTTP:
// POST a 4-band clip, get a detection back. The layer caches inside a
// network are not safe for concurrent use, so the server serializes
// inference with a mutex — throughput scaling belongs to batching (§6.4),
// not handler parallelism.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// DetectRequest is the POST /detect payload: a flattened bands×size×size
// image in row-major order, values in [0,1].
type DetectRequest struct {
	Bands  int       `json:"bands"`
	Size   int       `json:"size"`
	Pixels []float32 `json:"pixels"`
}

// DetectResponse is the detection result.
type DetectResponse struct {
	Score float64     `json:"score"`
	Box   metrics.Box `json:"box"`
	// HasObject applies the server's confidence threshold.
	HasObject bool `json:"has_object"`
}

// ModelInfo describes the served model (GET /model).
type ModelInfo struct {
	Name      string  `json:"name"`
	Notation  string  `json:"notation"`
	InBands   int     `json:"in_bands"`
	ClipSize  int     `json:"clip_size"`
	Params    int     `json:"parameters"`
	Threshold float64 `json:"threshold"`
}

// Server serves one trained detector.
type Server struct {
	cfg       model.Config
	net       *nn.Sequential
	threshold float64

	mu sync.Mutex
}

// New creates a server for a trained network built from cfg. threshold is
// the objectness confidence cut for HasObject.
func New(cfg model.Config, net *nn.Sequential, threshold float64) *Server {
	return &Server{cfg: cfg, net: net, threshold: threshold}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/detect", s.handleDetect)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	info := ModelInfo{
		Name:      s.cfg.Name,
		Notation:  s.cfg.Notation(),
		InBands:   s.cfg.InBands,
		ClipSize:  s.cfg.InSize,
		Params:    nn.ParamCount(s.net),
		Threshold: s.threshold,
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Bands != s.cfg.InBands {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("model expects %d bands, got %d", s.cfg.InBands, req.Bands))
		return
	}
	if req.Size < 8 {
		httpError(w, http.StatusBadRequest, "clip too small")
		return
	}
	if len(req.Pixels) != req.Bands*req.Size*req.Size {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("expected %d pixels, got %d", req.Bands*req.Size*req.Size, len(req.Pixels)))
		return
	}
	// SPP-Net accepts any clip size, so req.Size need not equal the
	// training size.
	x := tensor.FromSlice(req.Pixels, 1, req.Bands, req.Size, req.Size)
	s.mu.Lock()
	det := model.Detect(s.net, x)[0]
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, DetectResponse{
		Score:     det.Score,
		Box:       det.Box,
		HasObject: det.Score >= s.threshold,
	})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

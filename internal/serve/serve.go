// Package serve exposes a trained drainage-crossing detector over a
// versioned HTTP API:
//
//	POST /v1/detect        one clip in, one detection out
//	POST /v1/detect/batch  a slice of clips, per-item results or errors
//	GET  /v1/model         served architecture and parameter count
//	GET  /v1/stats         batching/latency statistics (JSON)
//	GET  /healthz          liveness (unversioned)
//
// The legacy unversioned /detect and /model routes remain as deprecated
// aliases for one release; they answer with Deprecation/Link headers.
//
// Inference runs on a batched multi-replica pool (internal/serve/batcher):
// concurrent requests are coalesced into batches sized by the §6.4
// efficiency curve and dispatched across independent network replicas.
// Errors use a uniform envelope: {"error":{"code":"...","message":"..."}}.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/tensor"
)

// minClipSize is the smallest clip edge the service accepts; smaller
// inputs vanish inside the conv/pool stack.
const minClipSize = 8

// maxBatchItems bounds how many clips one /v1/detect/batch call may carry.
const maxBatchItems = 256

// DetectRequest is the POST /v1/detect payload: a flattened
// bands×size×size image in row-major order, values in [0,1].
type DetectRequest struct {
	Bands  int       `json:"bands"`
	Size   int       `json:"size"`
	Pixels []float32 `json:"pixels"`
}

// DetectResponse is the detection result.
type DetectResponse struct {
	Score float64     `json:"score"`
	Box   metrics.Box `json:"box"`
	// HasObject applies the server's confidence threshold.
	HasObject bool `json:"has_object"`
}

// BatchItem is one positional result of POST /v1/detect/batch: exactly
// one of Result or Error is set.
type BatchItem struct {
	Result *DetectResponse `json:"result,omitempty"`
	Error  *ErrorBody      `json:"error,omitempty"`
}

// ModelInfo describes the served model (GET /v1/model).
type ModelInfo struct {
	Name      string  `json:"name"`
	Notation  string  `json:"notation"`
	InBands   int     `json:"in_bands"`
	ClipSize  int     `json:"clip_size"`
	Params    int     `json:"parameters"`
	Threshold float64 `json:"threshold"`
	Replicas  int     `json:"replicas"`
	MaxBatch  int     `json:"max_batch"`
}

// Options configures the serving pool behind the HTTP API. The zero
// value selects the batcher defaults and a 30 s request timeout.
type Options struct {
	// Replicas, MaxBatch, MaxWait, QueueSize configure the inference pool
	// (see batcher.Options).
	Replicas  int
	MaxBatch  int
	MaxWait   time.Duration
	QueueSize int
	// RequestTimeout bounds one request's time in queue + inference
	// (default 30s; ≤0 keeps the default).
	RequestTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return o
}

// Server serves one trained detector over the /v1 API.
type Server struct {
	cfg       model.Config
	threshold float64
	opts      Options
	pool      *batcher.Pool
	params    int
}

// New creates a server with default pool options. cfg must be the
// configuration net was built from; New panics otherwise (programmer
// error — use NewWithOptions to handle it).
func New(cfg model.Config, net *nn.Sequential, threshold float64) *Server {
	s, err := NewWithOptions(cfg, net, threshold, Options{})
	if err != nil {
		panic(err)
	}
	return s
}

// NewWithOptions creates a server whose inference pool is configured by
// opts. The pool takes ownership of net (replica 0).
func NewWithOptions(cfg model.Config, net *nn.Sequential, threshold float64, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	params := nn.ParamCount(net)
	pool, err := batcher.New(cfg, net, batcher.Options{
		Replicas:  opts.Replicas,
		MaxBatch:  opts.MaxBatch,
		MaxWait:   opts.MaxWait,
		QueueSize: opts.QueueSize,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &Server{cfg: cfg, threshold: threshold, opts: opts, pool: pool, params: params}, nil
}

// Pool exposes the underlying replica pool (stats, direct submission).
func (s *Server) Pool() *batcher.Pool { return s.pool }

// Close drains the inference pool: queued requests finish, new ones are
// refused. Call after the HTTP listener stops accepting connections.
func (s *Server) Close() { s.pool.Close() }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/model", method(http.MethodGet, s.handleModel))
	mux.HandleFunc("/v1/stats", method(http.MethodGet, s.handleStats))
	mux.HandleFunc("/v1/detect", method(http.MethodPost, s.handleDetect))
	mux.HandleFunc("/v1/detect/batch", method(http.MethodPost, s.handleDetectBatch))
	// Deprecated unversioned aliases, kept for one release.
	mux.HandleFunc("/model", deprecated("/v1/model", method(http.MethodGet, s.handleModel)))
	mux.HandleFunc("/detect", deprecated("/v1/detect", method(http.MethodPost, s.handleDetect)))
	// Everything else gets the JSON envelope, not the mux's text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no such route: " + r.URL.Path})
	})
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	popts := s.pool.Options()
	writeJSON(w, http.StatusOK, ModelInfo{
		Name:      s.cfg.Name,
		Notation:  s.cfg.Notation(),
		InBands:   s.cfg.InBands,
		ClipSize:  s.cfg.InSize,
		Params:    s.params,
		Threshold: s.threshold,
		Replicas:  popts.Replicas,
		MaxBatch:  popts.MaxBatch,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Stats())
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(CodeBadJSON, "bad JSON: "+err.Error()))
		return
	}
	if e := s.validate(&req); e != nil {
		writeError(w, e)
		return
	}
	resp, e := s.infer(r.Context(), &req)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeError(w, badRequest(CodeBadJSON, "bad JSON: "+err.Error()))
		return
	}
	if len(reqs) == 0 {
		writeError(w, badRequest(CodeInvalidRequest, "empty batch"))
		return
	}
	if len(reqs) > maxBatchItems {
		writeError(w, badRequest(CodeInvalidRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), maxBatchItems)))
		return
	}
	// Validate positionally, then submit the valid items concurrently so
	// the pool can coalesce them into shared batches.
	items := make([]BatchItem, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		if e := s.validate(&reqs[i]); e != nil {
			items[i].Error = &ErrorBody{Code: e.Code, Message: fmt.Sprintf("item %d: %s", i, e.Message)}
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, e := s.infer(r.Context(), &reqs[i])
			if e != nil {
				items[i].Error = &ErrorBody{Code: e.Code, Message: fmt.Sprintf("item %d: %s", i, e.Message)}
				return
			}
			items[i].Result = resp
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, items)
}

// validate applies the request schema: band count, positive and
// sufficient dims, pixel count = bands·size², finite pixels.
func (s *Server) validate(req *DetectRequest) *apiError {
	if req.Bands != s.cfg.InBands {
		return badRequest(CodeInvalidRequest,
			fmt.Sprintf("model expects %d bands, got %d", s.cfg.InBands, req.Bands))
	}
	if req.Size <= 0 {
		return badRequest(CodeInvalidRequest, fmt.Sprintf("non-positive size %d", req.Size))
	}
	if req.Size < minClipSize {
		return badRequest(CodeInvalidRequest,
			fmt.Sprintf("clip size %d below minimum %d", req.Size, minClipSize))
	}
	if want := req.Bands * req.Size * req.Size; len(req.Pixels) != want {
		return badRequest(CodeInvalidRequest,
			fmt.Sprintf("expected %d pixels (bands·size²), got %d", want, len(req.Pixels)))
	}
	for i, v := range req.Pixels {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return badRequest(CodeInvalidRequest, fmt.Sprintf("pixel %d is not finite", i))
		}
	}
	return nil
}

// infer runs one validated request through the pool, translating pool
// errors into API errors. SPP-Net accepts any clip size ≥ minClipSize,
// so req.Size need not equal the training size.
func (s *Server) infer(ctx context.Context, req *DetectRequest) (*DetectResponse, *apiError) {
	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()
	x := tensor.FromSlice(req.Pixels, 1, req.Bands, req.Size, req.Size)
	det, err := s.pool.Submit(ctx, x)
	if err != nil {
		return nil, poolError(err, s.pool.Options().MaxWait)
	}
	return &DetectResponse{
		Score:     det.Score,
		Box:       det.Box,
		HasObject: det.Score >= s.threshold,
	}, nil
}

// poolError maps a batcher error to an HTTP status + envelope, attaching
// Retry-After guidance for load shedding.
func poolError(err error, maxWait time.Duration) *apiError {
	switch {
	case errors.Is(err, batcher.ErrQueueFull):
		return &apiError{Status: http.StatusTooManyRequests, Code: CodeQueueFull,
			Message:    "request queue full; retry after backoff",
			RetryAfter: retryAfterSeconds(maxWait)}
	case errors.Is(err, batcher.ErrClosed):
		return &apiError{Status: http.StatusServiceUnavailable, Code: CodeUnavailable,
			Message: "server is draining"}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: http.StatusGatewayTimeout, Code: CodeTimeout,
			Message: "request timed out"}
	case errors.Is(err, context.Canceled):
		return &apiError{Status: http.StatusServiceUnavailable, Code: CodeCanceled,
			Message: "request canceled"}
	default:
		return &apiError{Status: http.StatusInternalServerError, Code: CodeInternal,
			Message: err.Error()}
	}
}

// retryAfterSeconds suggests a Retry-After for 429s: at least one
// max-wait window, rounded up to a whole second.
func retryAfterSeconds(maxWait time.Duration) string {
	secs := int(maxWait/time.Second) + 1
	return strconv.Itoa(secs)
}

// Package serve exposes a trained drainage-crossing detector over a
// versioned HTTP API:
//
//	POST   /v1/detect             one clip in, one detection hit out
//	POST   /v1/detect/batch       {"items":[clips]}, positional results
//	POST   /v1/sweep              start an async watershed sweep job
//	GET    /v1/sweep              list sweep jobs
//	GET    /v1/sweep/{id}         job status (progress, phase, clips/sec)
//	GET    /v1/sweep/{id}/results cursor-paginated crossing hits
//	DELETE /v1/sweep/{id}         cancel a job
//	GET    /v1/model              served architecture and parameter count
//	GET    /v1/stats              batching/latency statistics (JSON)
//	GET    /v1/metrics            Prometheus text exposition (?format=json)
//	GET    /v1/trace              latest sampled request as Chrome trace
//	GET    /v1/healthz            liveness + readiness (200 ready, 503 draining)
//	POST   /v1/control/batching   retune the effective max-batch/max-wait live
//	GET    /healthz               liveness (unversioned)
//	GET    /debug/pprof/*         Go profiling (only with Options.EnablePprof)
//
// The retired unversioned /detect and /model aliases answer 410 Gone
// with a Link header naming their /v1 successor.
//
// Response conventions: no /v1 endpoint returns a bare JSON array —
// collections arrive as {"items": [...]} with an optional next_cursor —
// and every detection carries the shared Hit schema regardless of
// endpoint. Errors use a uniform envelope:
// {"error":{"code":"...","message":"..."}}.
//
// Inference runs on a batched multi-replica pool (internal/serve/batcher):
// concurrent requests are coalesced into batches sized by the §6.4
// efficiency curve and dispatched across independent network replicas.
// Sweep jobs (internal/sweep) stream their candidate clips through the
// same pool and survive graceful drains via on-disk checkpoints.
//
// Every request flows through internal/telemetry: handlers and the pool
// emit span events (accepted → enqueued → batch formed → dispatch →
// inference done → response written) that aggregate into the registry
// served by /v1/metrics; /v1/stats is a view over the same registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/sweep"
	"drainnet/internal/telemetry"
	"drainnet/internal/tensor"
)

// minClipSize is the smallest clip edge the service accepts; smaller
// inputs vanish inside the conv/pool stack.
const minClipSize = 8

// maxBatchItems bounds how many clips one /v1/detect/batch call may carry.
const maxBatchItems = 256

// DetectRequest is the POST /v1/detect payload: a flattened
// bands×size×size image in row-major order, values in [0,1].
type DetectRequest struct {
	Bands  int       `json:"bands"`
	Size   int       `json:"size"`
	Pixels []float32 `json:"pixels"`
}

// Hit is the one detection schema every /v1 endpoint speaks. Clip
// endpoints (/v1/detect, /v1/detect/batch) fill Box with clip-relative
// normalized coordinates; sweep results (/v1/sweep/{id}/results) fill
// Point with absolute raster coordinates and the scenario that produced
// the hit.
type Hit struct {
	Score float64 `json:"score"`
	// HasObject applies the relevant confidence threshold (the server's
	// for clips, the job spec's min_score for sweeps).
	HasObject bool         `json:"has_object"`
	Box       *metrics.Box `json:"box,omitempty"`
	Point     *RasterPoint `json:"point,omitempty"`
	Scenario  string       `json:"scenario,omitempty"`
}

// RasterPoint locates a sweep hit in full-raster cell coordinates.
type RasterPoint struct {
	Row int `json:"row"`
	Col int `json:"col"`
}

// BatchRequest is the POST /v1/detect/batch payload.
type BatchRequest struct {
	Items []DetectRequest `json:"items"`
}

// BatchResponse carries the positional batch results.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// BatchItem is one positional result of POST /v1/detect/batch: exactly
// one of Result or Error is set.
type BatchItem struct {
	Result *Hit       `json:"result,omitempty"`
	Error  *ErrorBody `json:"error,omitempty"`
}

// ItemsResponse is the generic collection envelope: /v1 endpoints never
// return a bare JSON array. NextCursor, when present, is the cursor of
// the next page.
type ItemsResponse[T any] struct {
	Items []T `json:"items"`
	// NextCursor is set when another page exists.
	NextCursor *int `json:"next_cursor,omitempty"`
}

func items[T any](xs []T) ItemsResponse[T] {
	if xs == nil {
		xs = []T{}
	}
	return ItemsResponse[T]{Items: xs}
}

// ModelInfo describes the served model (GET /v1/model).
type ModelInfo struct {
	Name      string  `json:"name"`
	Notation  string  `json:"notation"`
	InBands   int     `json:"in_bands"`
	ClipSize  int     `json:"clip_size"`
	Params    int     `json:"parameters"`
	Threshold float64 `json:"threshold"`
	Replicas  int     `json:"replicas"`
	MaxBatch  int     `json:"max_batch"`
	// Precision is the numeric precision the pool actually serves at
	// ("fp32" or "int8") — after any accuracy-gate fallback, not the
	// requested mode.
	Precision string `json:"precision"`
	// Kernels, when the server was started with a tuned kernel plan
	// (Options.Kernels), reports every conv layer's serving choice:
	// precision, per-bucket kernel, and measured speedup over im2col.
	Kernels []model.LayerKernel `json:"kernels,omitempty"`
	// KernelDemotions counts accuracy-gate demotion steps the kernel
	// autotuner took (0 = first measured mix served).
	KernelDemotions int `json:"kernel_demotions,omitempty"`
	// Dynamic, when the server runs the dynamic inference path
	// (Options.Dynamic), reports the accuracy-gated plan it serves with.
	Dynamic *DynamicInfo `json:"dynamic,omitempty"`
}

// DynamicInfo is the /v1/model view of a dynamic inference plan: which
// mechanisms survived the accuracy gate, the calibrated knobs, and the
// measured AP cost.
type DynamicInfo struct {
	// ExitEnabled/MaskEnabled/RouterEnabled report which of the three
	// mechanisms the gate ladder kept.
	ExitEnabled   bool `json:"exit_enabled"`
	MaskEnabled   bool `json:"mask_enabled"`
	RouterEnabled bool `json:"router_enabled"`
	// ExitThreshold is the calibrated early-exit logit cut; MaskThreshold
	// the masked kernels' band-energy cut (0 when the mechanism is off).
	ExitThreshold float64 `json:"exit_threshold,omitempty"`
	MaskThreshold float64 `json:"mask_threshold,omitempty"`
	// Demotions counts gate-ladder steps taken (0 = most aggressive plan
	// served, 1 = masking dropped, 2 = exit dropped too).
	Demotions int `json:"demotions"`
	// FP32AP/DynamicAP/APDrop/Epsilon are the calibration-set accuracy
	// accounting behind the gate decision.
	FP32AP    float64 `json:"fp32_ap"`
	DynamicAP float64 `json:"dynamic_ap"`
	APDrop    float64 `json:"ap_drop"`
	Epsilon   float64 `json:"epsilon"`
	// CalibExitRate/CalibMaskRate are the rates measured on the
	// calibration split (serving rates live in /v1/stats).
	CalibExitRate float64 `json:"calib_exit_rate"`
	CalibMaskRate float64 `json:"calib_mask_rate"`
}

// Dynamic aliases the batcher's dynamic-path configuration so callers
// configure the server without importing the batcher directly.
type Dynamic = batcher.Dynamic

// Options configures the serving pool behind the HTTP API. The zero
// value selects the batcher defaults and a 30 s request timeout.
type Options struct {
	// Replicas, MaxBatch, MaxWait, QueueSize configure the inference pool
	// (see batcher.Options).
	Replicas  int
	MaxBatch  int
	MaxWait   time.Duration
	QueueSize int
	// RequestTimeout bounds one request's time in queue + inference
	// (default 30s; ≤0 keeps the default).
	RequestTimeout time.Duration
	// Telemetry is the observability hub serving /v1/metrics and /v1/
	// trace. Nil creates a default always-on instance (span pipeline
	// enabled, no trace sampling). The server owns it either way and
	// closes it in Close.
	Telemetry *telemetry.Telemetry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Plan enables IOS-scheduled inference on every replica (see
	// batcher.Options.Plan); nil serves with the sequential fast path.
	Plan *model.SchedulePlan
	// Precision labels the numeric precision of the network handed to
	// New (see batcher.Options.Precision; empty → fp32). It is reported
	// by /v1/model and labels the request latency histogram.
	Precision model.Precision
	// Kernels is the autotuned per-layer kernel plan the network was
	// retargeted with (model.AutotuneKernels). It is reported by
	// /v1/model and exported as the drainnet_kernel_choice gauge; nil
	// means the default im2col kernels everywhere.
	Kernels *model.KernelPlan
	// SweepDir is the checkpoint directory for /v1/sweep jobs. Empty
	// keeps jobs in memory only — they die with the process instead of
	// surviving a graceful drain.
	SweepDir string
	// SweepResume, with SweepDir set, relaunches unfinished checkpointed
	// jobs when the server starts.
	SweepResume bool
	// SweepConcurrency bounds a sweep job's in-flight pool submissions
	// (see sweep.ManagerOptions.Concurrency).
	SweepConcurrency int
	// Dynamic enables the accuracy-gated dynamic inference path (early
	// exit, spatial masking, per-request precision routing) on every
	// replica; see batcher.Options.Dynamic. Nil serves statically.
	Dynamic *batcher.Dynamic
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return o
}

// Server serves one trained detector over the /v1 API.
type Server struct {
	cfg       model.Config
	threshold float64
	opts      Options
	pool      *batcher.Pool
	params    int
	sweeps    *sweep.Manager

	// draining flips when a graceful shutdown begins (BeginDrain/Close);
	// /v1/healthz readiness reports it so an orchestrator or the cluster
	// router stops routing new work here while in-flight requests finish.
	draining atomic.Bool

	tel          *telemetry.Telemetry
	httpRequests *telemetry.CounterVec
	httpDuration *telemetry.HistogramVec
}

// New creates a server with default pool options. cfg must be the
// configuration net was built from; New panics otherwise (programmer
// error — use NewWithOptions to handle it).
func New(cfg model.Config, net *nn.Sequential, threshold float64) *Server {
	s, err := NewWithOptions(cfg, net, threshold, Options{})
	if err != nil {
		panic(err)
	}
	return s
}

// NewWithOptions creates a server whose inference pool is configured by
// opts. The pool takes ownership of net (replica 0).
func NewWithOptions(cfg model.Config, net *nn.Sequential, threshold float64, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	tel := opts.Telemetry
	if tel == nil {
		tel = telemetry.New(telemetry.Options{})
	}
	params := nn.ParamCount(net)
	pool, err := batcher.New(cfg, net, batcher.Options{
		Replicas:  opts.Replicas,
		MaxBatch:  opts.MaxBatch,
		MaxWait:   opts.MaxWait,
		QueueSize: opts.QueueSize,
		Telemetry: tel,
		Plan:      opts.Plan,
		Precision: opts.Precision,
		Dynamic:   opts.Dynamic,
	})
	if err != nil {
		tel.Close()
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{cfg: cfg, threshold: threshold, opts: opts, pool: pool, params: params, tel: tel}
	sweepOpts := sweep.ManagerOptions{
		Submit:        pool,
		Bands:         cfg.InBands,
		DefaultWindow: cfg.InSize,
		Precision:     string(pool.Options().Precision),
		Dir:           opts.SweepDir,
		Telemetry:     tel,
		Concurrency:   opts.SweepConcurrency,
	}
	if plan := pool.Dynamic(); plan != nil {
		sweepOpts.MaskRate = plan.Stats.Rate
	}
	s.sweeps, err = sweep.NewManager(sweepOpts)
	if err != nil {
		pool.Close()
		tel.Close()
		return nil, fmt.Errorf("serve: %w", err)
	}
	if opts.SweepResume && opts.SweepDir != "" {
		if _, err := s.sweeps.Resume(); err != nil {
			pool.Close()
			tel.Close()
			return nil, fmt.Errorf("serve: resume sweeps: %w", err)
		}
	}
	s.httpRequests = tel.Registry().CounterVec("drainnet_http_requests_total",
		"HTTP requests, by route and status code.", "route", "code")
	s.httpDuration = tel.Registry().HistogramVec("drainnet_http_request_duration_seconds",
		"HTTP request handling time, by route.", telemetry.TimeBuckets, "route")
	if opts.Kernels != nil {
		// One gauge sample per (layer, bucket) set to 1 on the chosen
		// kernel, so dashboards can plot the serving mix and alert when a
		// restart's autotune picks a different kernel than yesterday's.
		choice := tel.Registry().GaugeVec("drainnet_kernel_choice",
			"Autotuned conv kernel serving each layer (1 = chosen), by batch bucket.",
			"layer", "batch", "kernel")
		for _, l := range opts.Kernels.Layers {
			choice.With(l.Name, "1", l.Batch1).Set(1)
			choice.With(l.Name, "n", l.BatchN).Set(1)
		}
	}
	return s, nil
}

// Pool exposes the underlying replica pool (stats, direct submission).
func (s *Server) Pool() *batcher.Pool { return s.pool }

// Telemetry exposes the server's observability hub (registry, span
// pipeline, sampled traces).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// Sweeps exposes the sweep job manager (status, direct job control).
func (s *Server) Sweeps() *sweep.Manager { return s.sweeps }

// BeginDrain marks the server as draining: /v1/healthz readiness flips
// to 503 so load balancers stop sending new work, while every other
// route keeps serving in-flight traffic. Call it when the shutdown
// signal arrives, before stopping the HTTP listener; Close calls it too.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether a graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server: sweep jobs checkpoint and stop first (they
// are pool clients), then the inference pool drains — queued requests
// finish, new ones are refused — then the telemetry pipeline stops (its
// registry stays readable). Call after the HTTP listener stops accepting
// connections. Checkpointed sweep jobs resume on the next start.
func (s *Server) Close() {
	s.BeginDrain()
	s.sweeps.Close()
	s.pool.Close()
	s.tel.Close()
}

// Handler returns the HTTP routes. Every route is wrapped with request
// counting and duration metrics (drainnet_http_requests_total,
// drainnet_http_request_duration_seconds) labeled by route pattern.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("/healthz", s.handleHealth)
	handle("/v1/healthz", method(http.MethodGet, s.handleHealthV1))
	handle("/v1/control/batching", method(http.MethodPost, s.handleControlBatching))
	handle("/v1/model", method(http.MethodGet, s.handleModel))
	handle("/v1/stats", method(http.MethodGet, s.handleStats))
	handle("/v1/metrics", method(http.MethodGet, s.handleMetrics))
	handle("/v1/trace", method(http.MethodGet, s.handleTrace))
	handle("/v1/detect", method(http.MethodPost, s.handleDetect))
	handle("/v1/detect/batch", method(http.MethodPost, s.handleDetectBatch))
	handle("/v1/sweep", s.handleSweepCollection)
	handle("/v1/sweep/", s.handleSweepJob)
	// Retired unversioned aliases: 410 pointing at the /v1 successor.
	handle("/model", gone("/v1/model"))
	handle("/detect", gone("/v1/detect"))
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Everything else gets the JSON envelope, not the mux's text 404.
	mux.HandleFunc("/", s.instrument("other", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no such route: " + r.URL.Path})
	}))
	return mux
}

// instrument wraps a handler with per-route HTTP metrics. The route
// label is the registered pattern, not the raw path, so cardinality
// stays bounded.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.httpRequests
	duration := s.httpDuration.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		requests.With(route, strconv.Itoa(sw.status)).Inc()
		duration.Observe(time.Since(start).Seconds())
	}
}

// statusWriter captures the response status for the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// HealthStatus is the GET /v1/healthz body: liveness is implied by any
// response; Ready distinguishes "accepting new work" from "draining in-
// flight work" (status 200 vs 503), which is what an orchestrator's
// readiness probe and the cluster router's routing decision need.
type HealthStatus struct {
	// Status is "ready" or "draining".
	Status string `json:"status"`
	// Accepting reports whether the inference pool still admits new
	// submissions. It trails Status: a drain flips Status first, and
	// Accepting flips once the pool itself closes.
	Accepting bool `json:"accepting"`
}

// handleHealthV1 is the combined liveness+readiness probe: 200 while the
// server accepts new work, 503 once a drain has begun (in-flight
// requests still complete). Any response at all proves liveness.
func (s *Server) handleHealthV1(w http.ResponseWriter, r *http.Request) {
	h := HealthStatus{Status: "ready", Accepting: s.pool.Accepting()}
	code := http.StatusOK
	if s.draining.Load() || !h.Accepting {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// BatchingControl is the POST /v1/control/batching payload and response:
// the worker's effective batching knobs. On request, a zero/omitted
// MaxBatch or negative MaxWaitMs keeps the current value; the response
// carries the resolved (clamped) settings. This is the control surface
// the router's adaptive batching controller retunes workers through.
type BatchingControl struct {
	MaxBatch  int     `json:"max_batch"`
	MaxWaitMs float64 `json:"max_wait_ms"`
}

func (s *Server) handleControlBatching(w http.ResponseWriter, r *http.Request) {
	req := BatchingControl{MaxWaitMs: -1}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(CodeBadJSON, "bad JSON: "+err.Error()))
		return
	}
	if req.MaxBatch < 0 {
		writeError(w, badRequest(CodeInvalidRequest, "max_batch must be ≥ 0 (0 keeps the current value)"))
		return
	}
	maxWait := time.Duration(-1)
	if req.MaxWaitMs >= 0 {
		maxWait = time.Duration(req.MaxWaitMs * float64(time.Millisecond))
	}
	mb, mw := s.pool.Retune(req.MaxBatch, maxWait)
	writeJSON(w, http.StatusOK, BatchingControl{MaxBatch: mb, MaxWaitMs: float64(mw) / float64(time.Millisecond)})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	popts := s.pool.Options()
	info := ModelInfo{
		Name:      s.cfg.Name,
		Notation:  s.cfg.Notation(),
		InBands:   s.cfg.InBands,
		ClipSize:  s.cfg.InSize,
		Params:    s.params,
		Threshold: s.threshold,
		Replicas:  popts.Replicas,
		MaxBatch:  popts.MaxBatch,
		Precision: string(popts.Precision),
	}
	if s.opts.Kernels != nil {
		info.Kernels = s.opts.Kernels.Layers
		info.KernelDemotions = s.opts.Kernels.Demotions
	}
	if plan := s.pool.Dynamic(); plan != nil {
		d := &DynamicInfo{
			ExitEnabled:   plan.ExitEnabled,
			MaskEnabled:   plan.MaskEnabled,
			RouterEnabled: plan.RouterEnabled,
			Demotions:     plan.Demotions,
			FP32AP:        plan.FP32AP,
			DynamicAP:     plan.DynamicAP,
			APDrop:        plan.Drop,
			Epsilon:       plan.Epsilon,
			CalibExitRate: plan.ExitRate,
			CalibMaskRate: plan.MaskRate,
		}
		if plan.ExitEnabled && plan.Exit != nil {
			d.ExitThreshold = float64(plan.Exit.Threshold)
		}
		if plan.MaskEnabled {
			d.MaskThreshold = float64(plan.MaskThreshold)
		}
		info.Dynamic = d
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.Stats())
}

// handleMetrics exposes the telemetry registry: Prometheus text by
// default, the JSON snapshot with ?format=json (items-enveloped like
// every /v1 collection).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.tel.RecordRuntime() // refresh Go heap/GC gauges at scrape time
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, items(s.tel.Registry().Snapshot()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.tel.Registry().WritePrometheus(w)
}

// handleTrace serves the most recent sampled request span as Chrome
// trace JSON (open at chrome://tracing or ui.perfetto.dev).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, trace := s.tel.LatestTrace()
	if trace == nil {
		writeError(w, &apiError{Status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no sampled trace captured yet (is -trace-sample enabled?)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Drainnet-Request-Id", strconv.FormatUint(id, 10))
	// The stored trace is a bare Chrome-trace event array; wrap it in the
	// (equally valid) object form so no /v1 endpoint emits a bare array.
	_, _ = w.Write([]byte(`{"traceEvents":`))
	_, _ = w.Write(trace)
	_, _ = w.Write([]byte("}\n"))
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	id := s.tel.NextRequestID()
	s.tel.Emit(telemetry.Event{Kind: telemetry.EvAccepted, Req: id, At: time.Now()})
	defer func() {
		s.tel.Emit(telemetry.Event{Kind: telemetry.EvResponseWritten, Req: id, At: time.Now()})
	}()
	var req DetectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest(CodeBadJSON, "bad JSON: "+err.Error()))
		return
	}
	if e := s.validate(&req); e != nil {
		writeError(w, e)
		return
	}
	resp, e := s.infer(telemetry.WithRequestID(r.Context(), id), &req)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDetectBatch(w http.ResponseWriter, r *http.Request) {
	var br BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeError(w, badRequest(CodeBadJSON, "bad JSON: "+err.Error()))
		return
	}
	reqs := br.Items
	if len(reqs) == 0 {
		writeError(w, badRequest(CodeInvalidRequest, `empty batch ("items" missing or empty)`))
		return
	}
	if len(reqs) > maxBatchItems {
		writeError(w, badRequest(CodeInvalidRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), maxBatchItems)))
		return
	}
	// Validate positionally, then submit the valid items concurrently so
	// the pool can coalesce them into shared batches. Each valid item is
	// its own telemetry span; the response-written event lands after the
	// whole batch response is serialized.
	items := make([]BatchItem, len(reqs))
	ids := make([]uint64, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		if e := s.validate(&reqs[i]); e != nil {
			items[i].Error = &ErrorBody{Code: e.Code, Message: fmt.Sprintf("item %d: %s", i, e.Message)}
			continue
		}
		ids[i] = s.tel.NextRequestID()
		s.tel.Emit(telemetry.Event{Kind: telemetry.EvAccepted, Req: ids[i], At: time.Now()})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, e := s.infer(telemetry.WithRequestID(r.Context(), ids[i]), &reqs[i])
			if e != nil {
				items[i].Error = &ErrorBody{Code: e.Code, Message: fmt.Sprintf("item %d: %s", i, e.Message)}
				return
			}
			items[i].Result = resp
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
	now := time.Now()
	for _, id := range ids {
		if id != 0 {
			s.tel.Emit(telemetry.Event{Kind: telemetry.EvResponseWritten, Req: id, At: now})
		}
	}
}

// validate applies the request schema: band count, positive and
// sufficient dims, pixel count = bands·size², finite pixels.
func (s *Server) validate(req *DetectRequest) *apiError {
	if req.Bands != s.cfg.InBands {
		return badRequest(CodeInvalidRequest,
			fmt.Sprintf("model expects %d bands, got %d", s.cfg.InBands, req.Bands))
	}
	if req.Size <= 0 {
		return badRequest(CodeInvalidRequest, fmt.Sprintf("non-positive size %d", req.Size))
	}
	if req.Size < minClipSize {
		return badRequest(CodeInvalidRequest,
			fmt.Sprintf("clip size %d below minimum %d", req.Size, minClipSize))
	}
	if want := req.Bands * req.Size * req.Size; len(req.Pixels) != want {
		return badRequest(CodeInvalidRequest,
			fmt.Sprintf("expected %d pixels (bands·size²), got %d", want, len(req.Pixels)))
	}
	for i, v := range req.Pixels {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return badRequest(CodeInvalidRequest, fmt.Sprintf("pixel %d is not finite", i))
		}
	}
	return nil
}

// infer runs one validated request through the pool, translating pool
// errors into API errors. SPP-Net accepts any clip size ≥ minClipSize,
// so req.Size need not equal the training size.
func (s *Server) infer(ctx context.Context, req *DetectRequest) (*Hit, *apiError) {
	ctx, cancel := context.WithTimeout(ctx, s.opts.RequestTimeout)
	defer cancel()
	x := tensor.FromSlice(req.Pixels, 1, req.Bands, req.Size, req.Size)
	det, err := s.pool.Submit(ctx, x)
	if err != nil {
		return nil, s.poolError(err)
	}
	box := det.Box
	return &Hit{
		Score:     det.Score,
		Box:       &box,
		HasObject: det.Score >= s.threshold,
	}, nil
}

// poolError maps a batcher error to an HTTP status + envelope, attaching
// Retry-After guidance for load shedding.
func (s *Server) poolError(err error) *apiError {
	switch {
	case errors.Is(err, batcher.ErrQueueFull):
		return &apiError{Status: http.StatusTooManyRequests, Code: CodeQueueFull,
			Message:    "request queue full; retry after backoff",
			RetryAfter: s.retryAfterSeconds()}
	case errors.Is(err, batcher.ErrClosed):
		return &apiError{Status: http.StatusServiceUnavailable, Code: CodeUnavailable,
			Message: "server is draining"}
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{Status: http.StatusGatewayTimeout, Code: CodeTimeout,
			Message: "request timed out"}
	case errors.Is(err, context.Canceled):
		return &apiError{Status: http.StatusServiceUnavailable, Code: CodeCanceled,
			Message: "request canceled"}
	default:
		return &apiError{Status: http.StatusInternalServerError, Code: CodeInternal,
			Message: err.Error()}
	}
}

// retryAfterSeconds suggests a Retry-After for 429s from the live
// queue-wait distribution (see retryAfterFrom).
func (s *Server) retryAfterSeconds() string {
	p95, ok := s.tel.QueueWaitQuantile(0.95)
	return retryAfterFrom(p95, ok, s.pool.Options().MaxWait)
}

// retryAfterFrom derives the Retry-After header value: a queue drains
// roughly QueueSize·p95 waits, so the p95 queue wait times a settling
// factor (4) is when capacity realistically frees up. With no quantile
// observed yet (ok=false) it falls back to one max-wait window. Always
// ≥ 1 whole second (the header's resolution), rounded up.
func retryAfterFrom(p95 float64, ok bool, maxWait time.Duration) string {
	est := maxWait.Seconds()
	if ok {
		est = p95 * 4
	}
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

package serve

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"drainnet/internal/model"
	"drainnet/internal/nn"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/tensor"
)

// benchConcurrency matches the acceptance setup: 16 concurrent clients.
const benchConcurrency = 16

func benchNet(b *testing.B) (model.Config, *nn.Sequential) {
	b.Helper()
	cfg := model.SPPNet2().Scaled(16).WithInput(4, 40)
	net, err := cfg.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return cfg, net
}

func benchClip() *tensor.Tensor {
	x := tensor.New(1, 4, 40, 40)
	rng := rand.New(rand.NewSource(7))
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()
	}
	return x
}

// BenchmarkServeThroughput compares the seed's single-mutex serving path
// against the batched multi-replica pool at concurrency 16 on the same
// model. Requests/sec is the inverse of ns/op; the pool additionally
// reports its realized mean batch size. Replica parallelism needs
// GOMAXPROCS > 1 to pay off; batching pays off on any core count.
func BenchmarkServeThroughput(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("replica parallelism needs GOMAXPROCS > 1: on a single " +
			"core the pool and the mutex both serialize forward passes, so " +
			"the comparison measures scheduler noise, not batching")
	}
	b.Run("single-mutex", func(b *testing.B) {
		_, net := benchNet(b)
		var mu sync.Mutex
		x := benchClip()
		b.SetParallelism(benchConcurrency)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				_ = model.Detect(net, x)[0]
				mu.Unlock()
			}
		})
	})

	b.Run("batched-pool", func(b *testing.B) {
		cfg, net := benchNet(b)
		pool, err := batcher.New(cfg, net, batcher.Options{
			Replicas:  runtime.GOMAXPROCS(0),
			MaxBatch:  benchConcurrency,
			MaxWait:   500 * time.Microsecond,
			QueueSize: 4 * benchConcurrency,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		x := benchClip()
		b.SetParallelism(benchConcurrency)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				// Retry on backpressure: a benchmark client just spins.
				for {
					_, err := pool.Submit(context.Background(), x)
					if err == nil {
						break
					}
					if err != batcher.ErrQueueFull {
						b.Error(err)
						return
					}
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(pool.Stats().MeanBatch, "clips/batch")
	})
}

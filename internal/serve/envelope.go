package serve

import (
	"encoding/json"
	"net/http"
)

// Error codes used in the /v1 error envelope.
const (
	CodeBadJSON          = "bad_json"
	CodeInvalidRequest   = "invalid_request"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeGone             = "gone"
	CodeQueueFull        = "queue_full"
	CodeTimeout          = "timeout"
	CodeCanceled         = "canceled"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
)

// ErrorBody is the machine-readable error inside the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the uniform error shape for every /v1 (and legacy)
// route: {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// apiError carries an HTTP status alongside the envelope body.
type apiError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter, when non-empty, becomes a Retry-After header (429s).
	RetryAfter string
}

func (e *apiError) Error() string { return e.Code + ": " + e.Message }

func badRequest(code, msg string) *apiError {
	return &apiError{Status: http.StatusBadRequest, Code: code, Message: msg}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, e *apiError) {
	if e.RetryAfter != "" {
		w.Header().Set("Retry-After", e.RetryAfter)
	}
	writeJSON(w, e.Status, ErrorEnvelope{Error: ErrorBody{Code: e.Code, Message: e.Message}})
}

// method wraps a handler with HTTP method enforcement.
func method(verb string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != verb {
			w.Header().Set("Allow", verb)
			writeError(w, &apiError{
				Status:  http.StatusMethodNotAllowed,
				Code:    CodeMethodNotAllowed,
				Message: verb + " required",
			})
			return
		}
		h(w, r)
	}
}

// gone retires a legacy unversioned route: every request gets 410 with
// the standard envelope and a Link header naming the /v1 successor.
func gone(successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		writeError(w, &apiError{
			Status:  http.StatusGone,
			Code:    CodeGone,
			Message: "this route was removed; use " + successor,
		})
	}
}

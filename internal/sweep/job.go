package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drainnet/internal/hydro"
	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/telemetry"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// Submitter is the inference backend a sweep streams clips through.
// *batcher.Pool satisfies it; tests substitute deterministic stubs.
type Submitter interface {
	Submit(ctx context.Context, x *tensor.Tensor) (metrics.Detection, error)
}

// Cancellation causes distinguishing a user cancel (job ends in state
// canceled) from a graceful drain (job stays running in its checkpoint
// and resumes on the next start).
var (
	errCanceled = errors.New("sweep: job canceled")
	errDrain    = errors.New("sweep: server draining")
)

// ManagerOptions configures a job manager.
type ManagerOptions struct {
	// Submit is the serving pool clips flow through (required).
	Submit Submitter
	// Bands is the served model's input band count; sweeps render
	// terrain.NumBands-band imagery, so anything else refuses jobs.
	Bands int
	// DefaultWindow is the served model's training clip size — the
	// Spec.Window default.
	DefaultWindow int
	// Precision names the pool's serving precision; specs pinning a
	// different one are rejected ("" skips the check).
	Precision string
	// Dir is the checkpoint directory; "" disables persistence (jobs die
	// with the process).
	Dir string
	// Telemetry receives sweep throughput metrics (nil → disabled).
	Telemetry *telemetry.Telemetry
	// Concurrency bounds in-flight Submits per job (default 16): high
	// enough to keep batches full, low enough to leave queue headroom for
	// interactive /v1/detect traffic.
	Concurrency int
	// MaskRate, when the pool serves the dynamic path, reports the
	// cumulative masked-band rate (plan.Stats.Rate); job status echoes it
	// so a sweep's observer sees both dynamic savings in one place. Nil
	// reports 0.
	MaskRate func() float64
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.Telemetry == nil {
		o.Telemetry = telemetry.NewDisabled()
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	return o
}

// Manager owns sweep jobs: it starts them, serves status and paginated
// results, cancels, checkpoints through graceful drains, and resumes
// unfinished jobs from the checkpoint directory. Safe for concurrent use.
type Manager struct {
	opts ManagerOptions

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	closed bool
	wg     sync.WaitGroup

	windows  *telemetry.CounterVec
	inferred *telemetry.Counter
	jobsBy   *telemetry.CounterVec
	active   *telemetry.Gauge
	exitRate *telemetry.GaugeVec
}

// NewManager creates a manager. Call Resume to pick up checkpointed jobs
// from a previous process, and Close before the pool it submits to.
func NewManager(opts ManagerOptions) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Submit == nil {
		return nil, errors.New("sweep: ManagerOptions.Submit is required")
	}
	if opts.Bands != 0 && opts.Bands != terrain.NumBands {
		return nil, fmt.Errorf("sweep: served model takes %d bands; sweeps render %d-band imagery", opts.Bands, terrain.NumBands)
	}
	if opts.DefaultWindow < 8 {
		return nil, fmt.Errorf("sweep: default window %d too small", opts.DefaultWindow)
	}
	reg := opts.Telemetry.Registry()
	m := &Manager{
		opts: opts,
		jobs: make(map[string]*Job),
		windows: reg.CounterVec("drainnet_sweep_windows_total",
			"Sweep windows enumerated, by prior outcome (candidate or skipped).", "result"),
		inferred: reg.Counter("drainnet_sweep_clips_inferred_total",
			"Candidate clips that went through the serving pool."),
		jobsBy: reg.CounterVec("drainnet_sweep_jobs_total",
			"Sweep jobs, by lifecycle event (started, resumed, done, canceled, failed).", "event"),
		active: reg.Gauge("drainnet_sweep_active_jobs",
			"Sweep jobs currently running."),
		exitRate: reg.GaugeVec("drainnet_sweep_exit_rate",
			"Fraction of a scenario's inferred clips answered by the early-exit head.",
			"scenario"),
	}
	return m, nil
}

// Start validates the spec, assigns a job ID, and launches the sweep.
func (m *Manager) Start(spec Spec) (*Job, error) {
	spec = spec.WithDefaults(m.opts.DefaultWindow)
	if err := spec.Validate(m.opts.Precision); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("sweep: manager closed")
	}
	id := m.nextIDLocked()
	j := newJob(m, id, spec)
	m.register(j)
	m.launchLocked(j, "started")
	return j, nil
}

// nextIDLocked allocates a job ID unique within this manager and its
// checkpoint directory.
func (m *Manager) nextIDLocked() string {
	for {
		m.seq++
		id := fmt.Sprintf("sw-%d-%03d", time.Now().Unix(), m.seq)
		if _, taken := m.jobs[id]; !taken && !checkpointExists(m.opts.Dir, id) {
			return id
		}
	}
}

func (m *Manager) register(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

func (m *Manager) launchLocked(j *Job, event string) {
	m.jobsBy.With(event).Inc()
	m.active.Add(1)
	m.wg.Add(1)
	go j.run()
}

// Resume loads every checkpoint in the manager's directory: finished jobs
// register for status/results lookups, unfinished ones relaunch from
// their cursor. It returns the number of jobs relaunched.
func (m *Manager) Resume() (int, error) {
	if m.opts.Dir == "" {
		return 0, nil
	}
	cks, err := loadCheckpoints(m.opts.Dir)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	resumed := 0
	for _, ck := range cks {
		if m.closed {
			break
		}
		if _, taken := m.jobs[ck.ID]; taken {
			continue
		}
		j := jobFromCheckpoint(m, ck)
		m.register(j)
		if ck.State == StateRunning {
			m.launchLocked(j, "resumed")
			resumed++
		}
	}
	return resumed, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every known job in creation order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Close drains the manager: running jobs checkpoint at their next chunk
// boundary and stop, still marked running so Resume picks them up. Close
// must precede the submitter pool's Close.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel(errDrain)
	}
	m.wg.Wait()
}

// Job is one sweep in flight (or finished). All accessors are safe for
// concurrent use with the runner goroutine.
type Job struct {
	m    *Manager
	id   string
	spec Spec

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	mu          sync.Mutex
	state       string
	phase       string
	scenario    string
	scenarioIdx int
	cursor      int
	// counted is the highest scenario index whose window totals are
	// already in counters (-1 before the first), persisted so resumes
	// never double-count.
	counted  int
	counters Counters
	// scExited/scInferred are the running scenario's exit accounting,
	// reset at each scenario boundary and persisted so a mid-scenario
	// resume keeps the per-scenario exit rate exact.
	scExited   int
	scInferred int
	raw        []Hit
	hits       []Hit
	summaries  []ScenarioSummary
	errMsg     string

	// procStart/procInferred measure throughput since this process picked
	// the job up (resumes restart the clock, not the counters).
	procStart    time.Time
	procInferred atomic.Int64
}

// Counters is the cumulative window accounting a job checkpoint carries.
type Counters struct {
	Windows    int `json:"windows"`
	Candidates int `json:"candidates"`
	Skipped    int `json:"skipped"`
	Inferred   int `json:"inferred"`
	// Exited counts inferred clips whose detection came from the
	// serving pool's early-exit head (always 0 when dynamic inference
	// is off).
	Exited int `json:"exited"`
}

func newJob(m *Manager, id string, spec Spec) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	return &Job{
		m: m, id: id, spec: spec,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		state: StateRunning, counted: -1, procStart: time.Now(),
	}
}

func jobFromCheckpoint(m *Manager, ck *checkpoint) *Job {
	j := newJob(m, ck.ID, ck.Spec)
	j.state = ck.State
	j.errMsg = ck.Error
	j.scenarioIdx = ck.ScenarioIndex
	j.counted = ck.CountedScenario
	j.cursor = ck.Cursor
	j.counters = ck.Counters
	j.scExited = ck.ScenarioExited
	j.scInferred = ck.ScenarioInferred
	j.raw = ck.Raw
	j.hits = ck.Hits
	j.summaries = ck.Summaries
	if ck.State != StateRunning {
		close(j.done)
	}
	return j
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the resolved job spec.
func (j *Job) Spec() Spec { return j.spec }

// Done is closed when the job reaches a terminal state (or pauses for a
// drain). Primarily for tests and the CLI.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel stops the job; its checkpoint records state canceled so it does
// not resume. Canceling a finished job is a no-op.
func (j *Job) Cancel() { j.cancel(errCanceled) }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:             j.id,
		State:          j.state,
		Phase:          j.phase,
		Scenario:       j.scenario,
		ScenariosDone:  len(j.summaries),
		ScenariosTotal: len(j.spec.Scenarios),
		Windows:        j.counters.Windows,
		Candidates:     j.counters.Candidates,
		Skipped:        j.counters.Skipped,
		Inferred:       j.counters.Inferred,
		Exited:         j.counters.Exited,
		Hits:           len(j.hits),
		Checkpointed:   j.m.opts.Dir != "",
		Error:          j.errMsg,
		PerScenario:    append([]ScenarioSummary(nil), j.summaries...),
	}
	if st.Windows > 0 {
		st.SkipRate = float64(st.Skipped) / float64(st.Windows)
	}
	if st.Inferred > 0 {
		st.ExitRate = float64(st.Exited) / float64(st.Inferred)
	}
	if f := j.m.opts.MaskRate; f != nil {
		st.MaskRate = f()
	}
	if n := j.procInferred.Load(); n > 0 {
		if dt := time.Since(j.procStart).Seconds(); dt > 0 {
			st.ClipsPerSec = float64(n) / dt
		}
	}
	return st
}

// Results returns one page of merged hits starting at cursor. next is
// the cursor of the following page, or -1 when this page is final (at
// the current hit count — a running job may still append).
func (j *Job) Results(cursor, limit int) (page []Hit, next int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(j.hits) {
		cursor = len(j.hits)
	}
	end := len(j.hits)
	if limit > 0 && cursor+limit < end {
		end = cursor + limit
	}
	page = append([]Hit(nil), j.hits[cursor:end]...)
	if end < len(j.hits) {
		return page, end
	}
	return page, -1
}

// run is the job goroutine: sweep scenario by scenario, checkpointing
// after every chunk, and settle the terminal (or drained) state.
func (j *Job) run() {
	defer j.m.wg.Done()
	defer close(j.done)
	defer j.m.active.Add(-1)
	err := j.sweep()
	j.mu.Lock()
	j.phase = ""
	j.scenario = ""
	switch {
	case err == nil:
		j.state = StateDone
		j.m.jobsBy.With(StateDone).Inc()
	case errors.Is(err, errDrain) || errors.Is(context.Cause(j.ctx), errDrain):
		// Stay running in the checkpoint; Resume continues the sweep.
	case errors.Is(err, errCanceled) || errors.Is(context.Cause(j.ctx), errCanceled):
		j.state = StateCanceled
		j.m.jobsBy.With(StateCanceled).Inc()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		j.m.jobsBy.With(StateFailed).Inc()
	}
	j.saveLocked()
	j.mu.Unlock()
}

func (j *Job) setPhase(phase string) {
	j.mu.Lock()
	j.phase = phase
	j.mu.Unlock()
}

func (j *Job) sweep() error {
	for si := j.scenarioIdx; si < len(j.spec.Scenarios); si++ {
		sc, err := terrain.ScenarioByName(j.spec.Scenarios[si])
		if err != nil {
			return err
		}
		j.mu.Lock()
		j.scenarioIdx = si
		j.scenario = sc.Name
		j.phase = "generate"
		j.mu.Unlock()

		w, err := terrain.Generate(j.spec.terrainConfig(sc))
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		j.setPhase("render")
		img := terrain.RenderScenario(w, sc)
		j.setPhase("extract")
		cands, total := candidateWindows(w, j.spec)

		j.mu.Lock()
		if j.counted < si {
			// The counted watermark (not cursor==0) gates the addition: a
			// drain can checkpoint after this point but before the first
			// chunk advances the cursor, and a mid-scenario resume must not
			// count the scenario's windows twice.
			j.counted = si
			j.counters.Windows += total
			j.counters.Candidates += len(cands)
			j.counters.Skipped += total - len(cands)
			j.m.windows.With("candidate").Add(uint64(len(cands)))
			j.m.windows.With("skipped").Add(uint64(total - len(cands)))
		}
		j.phase = "infer"
		cursor := j.cursor
		j.mu.Unlock()

		for lo := cursor; lo < len(cands); lo += j.spec.CheckpointEvery {
			hi := minInt(lo+j.spec.CheckpointEvery, len(cands))
			hits, exited, err := j.inferChunk(img, w.Cfg.Rows, w.Cfg.Cols, cands[lo:hi])
			if err != nil {
				return err
			}
			j.mu.Lock()
			j.raw = append(j.raw, hits...)
			j.cursor = hi
			j.counters.Inferred += hi - lo
			j.counters.Exited += exited
			j.scExited += exited
			j.scInferred += hi - lo
			j.saveLocked()
			j.mu.Unlock()
			j.m.inferred.Add(uint64(hi - lo))
			j.procInferred.Add(int64(hi - lo))
		}

		j.setPhase("merge")
		j.mu.Lock()
		merged := mergeHits(sc.Name, j.raw, j.spec.MergeRadius)
		sum := scoreScenario(sc.Name, merged, w.Crossings, total, len(cands), j.spec.MatchRadius)
		sum.Exited = j.scExited
		if j.scInferred > 0 {
			sum.ExitRate = float64(j.scExited) / float64(j.scInferred)
		}
		j.m.exitRate.With(sc.Name).Set(sum.ExitRate)
		j.hits = append(j.hits, merged...)
		j.summaries = append(j.summaries, sum)
		j.raw = nil
		j.cursor = 0
		j.scExited, j.scInferred = 0, 0
		j.scenarioIdx = si + 1
		j.saveLocked()
		j.mu.Unlock()
	}
	return nil
}

// inferChunk runs one chunk of candidate windows through the pool with
// bounded concurrency and returns the confident raw hits in window order
// (deterministic regardless of completion order). Queue-full rejections
// back off and retry — the sweep is the background producer and must
// yield to interactive traffic.
func (j *Job) inferChunk(img *tensor.Tensor, rows, cols int, wins []window) (hits []Hit, exited int, err error) {
	type slot struct {
		det metrics.Detection
		err error
	}
	out := make([]slot, len(wins))
	var next atomic.Int64
	workers := minInt(j.m.opts.Concurrency, len(wins))
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(wins) {
					return
				}
				clip := terrain.Clip(img, wins[i].r0, wins[i].c0, j.spec.Window)
				x := tensor.FromSlice(clip.Data(), 1, terrain.NumBands, j.spec.Window, j.spec.Window)
				out[i] = j.submitWithRetry(x)
				if out[i].err != nil {
					j.cancelChunk(out[i].err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := context.Cause(j.ctx); err != nil {
		return nil, 0, err
	}
	for i, s := range out {
		if s.err != nil {
			return nil, 0, s.err
		}
		if s.det.Exited {
			exited++
		}
		if s.det.Score < j.spec.MinScore {
			continue
		}
		r := wins[i].r0 + int(s.det.Box.CY*float64(j.spec.Window))
		c := wins[i].c0 + int(s.det.Box.CX*float64(j.spec.Window))
		hits = append(hits, Hit{Row: minInt(r, rows-1), Col: minInt(c, cols-1), Score: s.det.Score})
	}
	return hits, exited, nil
}

// cancelChunk aborts the remaining submissions of a failed chunk without
// disturbing a drain/cancel cause already recorded on the context.
func (j *Job) cancelChunk(err error) {
	if context.Cause(j.ctx) == nil {
		j.cancel(err)
	}
}

func (j *Job) submitWithRetry(x *tensor.Tensor) (s struct {
	det metrics.Detection
	err error
}) {
	for {
		s.det, s.err = j.m.opts.Submit.Submit(j.ctx, x)
		if !errors.Is(s.err, batcher.ErrQueueFull) {
			if s.err != nil && j.ctx.Err() != nil {
				s.err = context.Cause(j.ctx)
			}
			if errors.Is(s.err, batcher.ErrClosed) {
				// The pool is draining under us; treat like a drain so the
				// checkpoint stays resumable.
				s.err = errDrain
			}
			return s
		}
		select {
		case <-j.ctx.Done():
			s.err = context.Cause(j.ctx)
			return s
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// mergeHits non-maximum-suppresses raw hits and tags them with the
// scenario, keeping the score-descending order SuppressHits yields.
func mergeHits(scenario string, raw []Hit, radius int) []Hit {
	scan := make([]model.ScanHit, len(raw))
	for i, h := range raw {
		scan[i] = model.ScanHit{Point: hydro.Point{R: h.Row, C: h.Col}, Score: h.Score}
	}
	kept := model.SuppressHits(scan, radius)
	out := make([]Hit, len(kept))
	for i, h := range kept {
		out[i] = Hit{Scenario: scenario, Row: h.Point.R, Col: h.Point.C, Score: h.Score}
	}
	return out
}

// saveLocked checkpoints the job's current state; the caller holds j.mu.
// Persistence failures are recorded on the job rather than killing it —
// the sweep itself can still finish.
func (j *Job) saveLocked() {
	if j.m.opts.Dir == "" {
		return
	}
	ck := &checkpoint{
		Version:          checkpointVersion,
		ID:               j.id,
		Spec:             j.spec,
		State:            j.state,
		Error:            j.errMsg,
		ScenarioIndex:    j.scenarioIdx,
		CountedScenario:  j.counted,
		Cursor:           j.cursor,
		Counters:         j.counters,
		ScenarioExited:   j.scExited,
		ScenarioInferred: j.scInferred,
		Raw:              j.raw,
		Hits:             j.hits,
		Summaries:        j.summaries,
	}
	if err := ck.save(j.m.opts.Dir); err != nil && j.errMsg == "" {
		j.errMsg = fmt.Sprintf("checkpoint not saved: %v", err)
	}
}

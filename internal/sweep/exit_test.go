package sweep

import (
	"context"
	"testing"

	"drainnet/internal/metrics"
	"drainnet/internal/tensor"
)

// exitingOracle wraps the oracle the way a dynamic-path pool behaves:
// confident negatives come back flagged Exited (the early-exit head
// answered them), positives take the full path.
type exitingOracle struct {
	*oracle
}

func (o *exitingOracle) Submit(ctx context.Context, x *tensor.Tensor) (metrics.Detection, error) {
	det, err := o.oracle.Submit(ctx, x)
	if err == nil && det.Score < 0.5 {
		det.Exited = true
	}
	return det, err
}

// A sweep against a dynamic-path pool must account exits: cumulative and
// per-scenario counters, the status exit rate, and the pool's mask rate
// echoed through ManagerOptions.MaskRate.
func TestSweepAccountsEarlyExits(t *testing.T) {
	spec := testSpec()
	o := &exitingOracle{newOracle(t, spec)}
	m, err := NewManager(ManagerOptions{
		Submit:        o,
		DefaultWindow: 32,
		Concurrency:   4,
		MaskRate:      func() float64 { return 0.375 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("job state %s: %+v", st.State, st)
	}
	if st.Exited <= 0 || st.Exited >= st.Inferred {
		t.Fatalf("exited %d of %d inferred; want a strict mix on candidate traffic", st.Exited, st.Inferred)
	}
	want := float64(st.Exited) / float64(st.Inferred)
	if st.ExitRate != want {
		t.Fatalf("exit rate %v, want %v", st.ExitRate, want)
	}
	if st.MaskRate != 0.375 {
		t.Fatalf("mask rate %v not echoed from the pool", st.MaskRate)
	}
	if len(st.PerScenario) != 1 {
		t.Fatalf("want 1 scenario summary, got %d", len(st.PerScenario))
	}
	sum := st.PerScenario[0]
	if sum.Exited != st.Exited {
		t.Fatalf("scenario exited %d, job exited %d", sum.Exited, st.Exited)
	}
	if sum.ExitRate != want {
		t.Fatalf("scenario exit rate %v, want %v", sum.ExitRate, want)
	}
	if got := m.exitRate.With(sum.Scenario).Value(); got != want {
		t.Fatalf("drainnet_sweep_exit_rate{%s} = %v, want %v", sum.Scenario, got, want)
	}
}

// Without a dynamic pool nothing exits: the fields must stay zero so the
// status payload omits them.
func TestSweepExitZeroWithoutDynamic(t *testing.T) {
	spec := testSpec()
	m := newTestManager(t, newOracle(t, spec), "")
	defer m.Close()
	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.Exited != 0 || st.ExitRate != 0 || st.MaskRate != 0 {
		t.Fatalf("exit accounting nonzero without dynamic pool: %+v", st)
	}
}

// BenchTraffic must reproduce sweep-skewed traffic: every window of the
// slide as one labeled sample, majority-empty with at least one positive
// covering a real crossing.
func TestBenchTrafficMajorityEmptyMix(t *testing.T) {
	ds, err := BenchTraffic("baseline", 32)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ClipSize != 32 {
		t.Fatalf("clip size %d, want 32", ds.ClipSize)
	}
	var pos, neg int
	for _, s := range ds.Samples {
		if s.Image.Dim(0) != 4 || s.Image.Dim(1) != 32 || s.Image.Dim(2) != 32 {
			t.Fatalf("sample shape %v", s.Image.Shape())
		}
		if s.Target.HasObject {
			pos++
			cx := float32(s.Crossing.C-s.Origin.C) / 32
			if s.Target.CX != cx {
				t.Fatalf("positive CX %v, want %v", s.Target.CX, cx)
			}
		} else {
			neg++
		}
	}
	if pos == 0 {
		t.Fatal("bench traffic has no positives")
	}
	if neg < 3*pos {
		t.Fatalf("bench traffic not majority-empty: %d pos, %d neg", pos, neg)
	}
}

package sweep

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"drainnet/internal/hydro"
	"drainnet/internal/metrics"
	"drainnet/internal/model"
	"drainnet/internal/serve/batcher"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// oracle is a deterministic fake Submitter: it "detects" a crossing at
// the clip center whenever the clip's road and stream bands overlap —
// really the NIR/red structure the renderer draws — by peeking at the
// ground-truth masks through a closure. It keeps tests independent of
// training a real model.
type oracle struct {
	w      *terrain.Watershed
	window int
	img    *tensor.Tensor
	calls  atomic.Int64
	// fail, when set, makes every call return this error.
	fail error
	// slow adds latency per call so cancel/drain tests can interrupt.
	slow time.Duration
}

func (o *oracle) Submit(ctx context.Context, x *tensor.Tensor) (metrics.Detection, error) {
	o.calls.Add(1)
	if o.fail != nil {
		return metrics.Detection{}, o.fail
	}
	if o.slow > 0 {
		select {
		case <-ctx.Done():
			return metrics.Detection{}, ctx.Err()
		case <-time.After(o.slow):
		}
	}
	// Locate the clip in the source raster by matching its first pixel
	// row: the sweep always clips from o.img, so compare windows directly.
	r0, c0, ok := o.locate(x)
	if !ok {
		return metrics.Detection{Score: 0.01}, nil
	}
	// Report the in-window crossing nearest the clip center, so every
	// crossing wins the window centered on it even when several crossings
	// share a window.
	best := metrics.Detection{Score: 0.01, Box: metrics.Box{CX: 0.5, CY: 0.5}}
	bestD := 1 << 30
	mid := o.window / 2
	for _, gt := range o.w.Crossings {
		if gt.R < r0 || gt.R >= r0+o.window || gt.C < c0 || gt.C >= c0+o.window {
			continue
		}
		dr, dc := gt.R-r0-mid, gt.C-c0-mid
		if d := dr*dr + dc*dc; d < bestD {
			bestD = d
			best = metrics.Detection{
				Score: 0.99,
				Box: metrics.Box{
					CX: (float64(gt.C-c0) + 0.5) / float64(o.window),
					CY: (float64(gt.R-r0) + 0.5) / float64(o.window),
				},
			}
		}
	}
	return best, nil
}

// locate finds the clip's origin by scanning candidate origins and
// comparing band-0 contents. O(raster) per call but fine at test sizes.
func (o *oracle) locate(x *tensor.Tensor) (int, int, bool) {
	rows, cols := o.w.Cfg.Rows, o.w.Cfg.Cols
	for r0 := 0; r0+o.window <= rows; r0++ {
		for c0 := 0; c0+o.window <= cols; c0++ {
			if o.matches(x, r0, c0) {
				return r0, c0, true
			}
		}
	}
	return 0, 0, false
}

func (o *oracle) matches(x *tensor.Tensor, r0, c0 int) bool {
	src := o.img.Data()
	clip := x.Data()
	cols := o.w.Cfg.Cols
	for r := 0; r < o.window; r++ {
		for c := 0; c < o.window; c++ {
			if clip[r*o.window+c] != src[(r0+r)*cols+c0+c] {
				return false
			}
		}
	}
	return true
}

func testSpec() Spec {
	return Spec{
		Rows: 128, Cols: 128, Seed: 7,
		Window: 32, Stride: 8,
		MinScore:        0.5,
		MergeRadius:     6,
		MatchRadius:     6,
		RoadSpacing:     56,
		StreamThreshold: 180,
		CheckpointEvery: 16,
	}
}

func newOracle(t *testing.T, spec Spec) *oracle {
	t.Helper()
	spec = spec.WithDefaults(spec.Window)
	sc, err := terrain.ScenarioByName(spec.Scenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	w, err := terrain.Generate(spec.terrainConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Crossings) == 0 {
		t.Fatal("test watershed has no crossings; adjust spec")
	}
	return &oracle{w: w, window: spec.Window, img: terrain.RenderScenario(w, sc)}
}

func newTestManager(t *testing.T, sub Submitter, dir string) *Manager {
	t.Helper()
	m, err := NewManager(ManagerOptions{
		Submit:        sub,
		DefaultWindow: 32,
		Dir:           dir,
		Concurrency:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitDone(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID(), j.Status())
	}
	return j.Status()
}

// The prior must cut a meaningful fraction of windows while losing no
// crossings: every ground-truth crossing must fall inside at least one
// candidate window.
func TestCandidatePriorSkipsWithoutLosingCrossings(t *testing.T) {
	spec := testSpec().WithDefaults(32)
	o := newOracle(t, spec)
	cands, total := candidateWindows(o.w, spec)
	if total == 0 || len(cands) == 0 {
		t.Fatalf("degenerate enumeration: %d candidates of %d", len(cands), total)
	}
	if len(cands) >= total {
		t.Fatalf("prior skipped nothing: %d of %d windows are candidates", len(cands), total)
	}
	for _, gt := range o.w.Crossings {
		covered := false
		for _, wd := range cands {
			if gt.R >= wd.r0 && gt.R < wd.r0+spec.Window && gt.C >= wd.c0 && gt.C < wd.c0+spec.Window {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("crossing %v not covered by any candidate window", gt)
		}
	}
	// Disabling the prior must enumerate every window.
	off := spec
	off.Prior.Disabled = true
	all, n := candidateWindows(o.w, off)
	if len(all) != n || n != total {
		t.Fatalf("disabled prior should keep all %d windows, got %d/%d", total, len(all), n)
	}
}

// A full job against the oracle must find the crossings with high AP and
// report coherent per-scenario accounting.
func TestJobSweepsToDoneWithAP(t *testing.T) {
	spec := testSpec()
	o := newOracle(t, spec)
	m := newTestManager(t, o, "")
	defer m.Close()
	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %q, error = %q", st.State, st.Error)
	}
	if len(st.PerScenario) != 1 {
		t.Fatalf("want 1 scenario summary, got %d", len(st.PerScenario))
	}
	sum := st.PerScenario[0]
	if sum.Scenario != "baseline" {
		t.Fatalf("scenario = %q", sum.Scenario)
	}
	// The oracle (like the real architecture) emits one detection per
	// clip, so a crossing on the raster edge whose every covering window
	// also contains a more-central crossing is unrecoverable; 0.8 leaves
	// room for those edge cases while still proving the pipeline works.
	if sum.Truth == 0 || sum.AP < 0.8 || sum.Recall < 0.8 {
		t.Fatalf("oracle sweep lost too many crossings: %+v", sum)
	}
	if sum.Precision < 0.95 {
		t.Fatalf("oracle sweep produced false positives: %+v", sum)
	}
	if sum.Windows != sum.Candidates+sum.Skipped {
		t.Fatalf("window accounting inconsistent: %+v", sum)
	}
	if st.Inferred != sum.Candidates {
		t.Fatalf("inferred %d != candidates %d", st.Inferred, sum.Candidates)
	}
	if st.SkipRate <= 0 {
		t.Fatalf("skip rate %v should be positive with the prior on", st.SkipRate)
	}
	if int(o.calls.Load()) != sum.Candidates {
		t.Fatalf("oracle saw %d clips, candidates %d", o.calls.Load(), sum.Candidates)
	}
}

// Results pagination must walk all hits in order and terminate with -1.
func TestResultsPagination(t *testing.T) {
	spec := testSpec()
	o := newOracle(t, spec)
	m := newTestManager(t, o, "")
	defer m.Close()
	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.Hits == 0 {
		t.Fatal("expected hits")
	}
	var paged []Hit
	cursor := 0
	for steps := 0; ; steps++ {
		page, next := j.Results(cursor, 2)
		paged = append(paged, page...)
		if next < 0 {
			break
		}
		if next <= cursor {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
		}
		cursor = next
		if steps > st.Hits {
			t.Fatal("pagination did not terminate")
		}
	}
	full, next := j.Results(0, 0)
	if next != -1 {
		t.Fatalf("unlimited page should be final, next = %d", next)
	}
	if !reflect.DeepEqual(paged, full) {
		t.Fatalf("paged hits differ from full listing:\n%v\n%v", paged, full)
	}
}

// Killing a manager mid-job (graceful drain) and resuming in a fresh
// manager must finish with results bit-identical to an uninterrupted run.
func TestKillAndResumeBitIdentical(t *testing.T) {
	spec := testSpec()

	// Reference: uninterrupted run.
	oRef := newOracle(t, spec)
	mRef := newTestManager(t, oRef, "")
	jRef, err := mRef.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref := waitDone(t, jRef)
	refHits, _ := jRef.Results(0, 0)
	mRef.Close()

	// Interrupted run: slow oracle, drain mid-sweep, resume elsewhere.
	dir := filepath.Join(t.TempDir(), "ckpt")
	o1 := newOracle(t, spec)
	o1.slow = 2 * time.Millisecond
	m1 := newTestManager(t, o1, dir)
	j1, err := m1.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := j1.ID()
	time.Sleep(40 * time.Millisecond) // let some chunks land
	m1.Close()                        // graceful drain: checkpoint + stop
	if st := j1.Status(); st.State != StateRunning {
		t.Fatalf("drained job should checkpoint as running, got %q (err %q)", st.State, st.Error)
	}

	o2 := newOracle(t, spec)
	m2 := newTestManager(t, o2, dir)
	defer m2.Close()
	if _, err := m2.Resume(); err != nil {
		t.Fatal(err)
	}
	j2, ok := m2.Get(id)
	if !ok {
		t.Fatalf("job %s not resumed", id)
	}
	st := waitDone(t, j2)
	if st.State != StateDone {
		t.Fatalf("resumed job state = %q, error = %q", st.State, st.Error)
	}
	gotHits, _ := j2.Results(0, 0)
	if !reflect.DeepEqual(gotHits, refHits) {
		t.Fatalf("resumed hits differ from uninterrupted run:\n%v\n%v", gotHits, refHits)
	}
	if !reflect.DeepEqual(st.PerScenario, ref.PerScenario) {
		t.Fatalf("resumed summaries differ:\n%+v\n%+v", st.PerScenario, ref.PerScenario)
	}
	if st.Windows != ref.Windows || st.Inferred != ref.Inferred || st.Skipped != ref.Skipped {
		t.Fatalf("resumed counters differ: %+v vs %+v", st, ref)
	}
}

// The same drain/resume guarantee must hold against the real batcher
// pool with a real (random-weight) network — the production wiring.
func TestKillAndResumeThroughBatcherPool(t *testing.T) {
	spec := Spec{
		Rows: 96, Cols: 96, Seed: 11,
		Window: 32, Stride: 16,
		MinScore:        0.05, // random net: keep low so hits exist
		RoadSpacing:     48,
		StreamThreshold: 48,
		CheckpointEvery: 8,
	}
	cfg := model.OriginalSPPNet().Scaled(8).WithInput(terrain.NumBands, spec.Window)
	newPool := func(t *testing.T) *batcher.Pool {
		t.Helper()
		net, err := cfg.Build(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := batcher.New(cfg, net, batcher.Options{
			Replicas: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueSize: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	run := func(t *testing.T, interrupt bool, dir string) ([]Hit, Status) {
		pool := newPool(t)
		m := newTestManager(t, pool, dir)
		var j *Job
		var err error
		if interrupt {
			if _, err = m.Resume(); err != nil {
				t.Fatal(err)
			}
			jobs := m.Jobs()
			if len(jobs) != 1 {
				t.Fatalf("want 1 resumed job, got %d", len(jobs))
			}
			j = jobs[0]
		} else {
			j, err = m.Start(spec)
			if err != nil {
				t.Fatal(err)
			}
		}
		st := waitDone(t, j)
		hits, _ := j.Results(0, 0)
		m.Close()
		pool.Close()
		return hits, st
	}

	refHits, refSt := run(t, false, "")
	if refSt.State != StateDone {
		t.Fatalf("reference run: %q (%s)", refSt.State, refSt.Error)
	}

	dir := filepath.Join(t.TempDir(), "ckpt")
	pool1 := newPool(t)
	m1 := newTestManager(t, pool1, dir)
	j1, err := m1.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Drain as soon as the first checkpoint lands, mid-sweep.
	deadline := time.Now().Add(10 * time.Second)
	for j1.Status().Inferred == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m1.Close()
	pool1.Close()
	if st := j1.Status(); st.State == StateDone {
		t.Skip("job finished before the drain; nothing to resume")
	}

	gotHits, gotSt := run(t, true, dir)
	if gotSt.State != StateDone {
		t.Fatalf("resumed run: %q (%s)", gotSt.State, gotSt.Error)
	}
	if !reflect.DeepEqual(gotHits, refHits) {
		t.Fatalf("resume not bit-identical:\nresumed: %v\nreference: %v", gotHits, refHits)
	}
	if !reflect.DeepEqual(gotSt.PerScenario, refSt.PerScenario) {
		t.Fatalf("summaries differ:\n%+v\n%+v", gotSt.PerScenario, refSt.PerScenario)
	}
}

// Cancel must end the job in state canceled and keep it out of Resume.
func TestCancelPersistsAndDoesNotResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	spec := testSpec()
	o := newOracle(t, spec)
	o.slow = 2 * time.Millisecond
	m := newTestManager(t, o, dir)
	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	st := waitDone(t, j)
	if st.State != StateCanceled {
		t.Fatalf("state = %q", st.State)
	}
	m.Close()

	m2 := newTestManager(t, newOracle(t, spec), dir)
	defer m2.Close()
	n, err := m2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("canceled job relaunched by Resume (%d)", n)
	}
	j2, ok := m2.Get(j.ID())
	if !ok {
		t.Fatal("canceled job should still be visible for status lookups")
	}
	if got := j2.Status().State; got != StateCanceled {
		t.Fatalf("state after reload = %q", got)
	}
}

// Multi-scenario specs must produce one summary per scenario, and the
// "all" alias must expand to the full suite.
func TestMultiScenarioSweepAndAllAlias(t *testing.T) {
	spec := testSpec()
	spec.Scenarios = []string{"baseline", "flat_plain"}
	// The oracle only knows the baseline watershed, so flat_plain AP will
	// be garbage — this test is about plumbing, not quality.
	o := newOracle(t, spec)
	m := newTestManager(t, o, "")
	defer m.Close()
	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %q (%s)", st.State, st.Error)
	}
	if len(st.PerScenario) != 2 {
		t.Fatalf("want 2 summaries, got %d", len(st.PerScenario))
	}
	if st.PerScenario[0].Scenario != "baseline" || st.PerScenario[1].Scenario != "flat_plain" {
		t.Fatalf("summaries out of order: %+v", st.PerScenario)
	}
	for _, h := range mustHits(t, j) {
		if h.Scenario == "" {
			t.Fatalf("hit missing scenario tag: %+v", h)
		}
	}

	all := Spec{Rows: 64, Cols: 64, Scenarios: []string{"all"}}.WithDefaults(32)
	if len(all.Scenarios) != len(terrain.Scenarios()) {
		t.Fatalf(`"all" expanded to %v`, all.Scenarios)
	}
}

func mustHits(t *testing.T, j *Job) []Hit {
	t.Helper()
	hits, _ := j.Results(0, 0)
	return hits
}

// Spec validation must reject the obvious foot-guns.
func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Rows: 16, Cols: 128},
		{Rows: 128, Cols: 128, Window: 4},
		{Rows: 128, Cols: 128, Window: 256},
		{Rows: maxRasterSide + 1, Cols: 128},
		{Rows: 128, Cols: 128, Scenarios: []string{"volcano"}},
		{Rows: 128, Cols: 128, MinScore: 1.5},
	}
	for i, s := range bad {
		if err := s.WithDefaults(32).Validate(""); err == nil {
			t.Fatalf("spec %d should fail validation: %+v", i, s)
		}
	}
	if err := (Spec{Rows: 128, Cols: 128, Precision: "int8"}).WithDefaults(32).Validate("fp32"); err == nil {
		t.Fatal("precision mismatch should fail")
	}
	if err := (Spec{Rows: 128, Cols: 128, Precision: "fp32"}).WithDefaults(32).Validate("fp32"); err != nil {
		t.Fatal(err)
	}
}

// A failing backend must land the job in state failed with the cause.
func TestBackendFailureFailsJob(t *testing.T) {
	spec := testSpec()
	o := newOracle(t, spec)
	o.fail = context.DeadlineExceeded
	m := newTestManager(t, o, "")
	defer m.Close()
	j, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("state = %q, error = %q", st.State, st.Error)
	}
}

// Window enumeration must cover the full raster including clamped tails.
func TestEnumerateWindowsCoversTails(t *testing.T) {
	spec := Spec{Window: 32, Stride: 20}
	wins := enumerateWindows(100, 70, spec)
	sawTailR, sawTailC := false, false
	for _, w := range wins {
		if w.r0 < 0 || w.c0 < 0 || w.r0+32 > 100 || w.c0+32 > 70 {
			t.Fatalf("window out of bounds: %+v", w)
		}
		if w.r0 == 100-32 {
			sawTailR = true
		}
		if w.c0 == 70-32 {
			sawTailC = true
		}
	}
	if !sawTailR || !sawTailC {
		t.Fatalf("tail windows missing (r %v, c %v) in %v", sawTailR, sawTailC, wins)
	}
}

// AP scoring sanity: perfect hits score 1.0, junk scores low, and the
// greedy matcher does not double-count one truth point.
func TestScoreScenario(t *testing.T) {
	truth := []hydro.Point{{R: 10, C: 10}, {R: 50, C: 50}}
	perfect := []Hit{
		{Row: 10, Col: 10, Score: 0.9},
		{Row: 50, Col: 50, Score: 0.8},
	}
	s := scoreScenario("t", perfect, truth, 100, 40, 5)
	if s.AP != 1 || s.Recall != 1 || s.Precision != 1 {
		t.Fatalf("perfect hits: %+v", s)
	}
	if s.Skipped != 60 {
		t.Fatalf("skipped = %d", s.Skipped)
	}
	dup := []Hit{
		{Row: 10, Col: 10, Score: 0.9},
		{Row: 11, Col: 10, Score: 0.85}, // same truth point: must be a FP
	}
	s = scoreScenario("t", dup, truth, 100, 40, 5)
	if s.Recall != 0.5 || s.Precision != 0.5 {
		t.Fatalf("duplicate match not suppressed: %+v", s)
	}
	s = scoreScenario("t", nil, truth, 100, 40, 5)
	if s.AP != 0 || s.Hits != 0 {
		t.Fatalf("empty hits: %+v", s)
	}
}

// Package sweep runs watershed-scale detection jobs: it generates a full
// synthetic watershed (internal/terrain + internal/hydro), extracts
// candidate windows with a cheap hydrological prior (only tiles near both
// a road and a stream can contain a drainage crossing), streams the
// surviving clips through a serving pool (internal/serve/batcher), and
// merges the detections into raster-coordinate crossings with AP scored
// per scenario against the generator's ground truth.
//
// A sweep is the paper's real workload — continuous rasters, not pre-cut
// 100×100 clips — and the traffic is exactly the skewed, mostly-empty
// distribution the serving stack is tuned for: the prior typically skips
// the large majority of windows before they ever reach the model.
//
// Jobs are long-running and resumable: progress (scenario index, window
// cursor, raw hits, counters) checkpoints to disk after every chunk, and
// resuming a killed job finishes with bit-identical results, because
// window enumeration is a pure function of the spec and the inference
// fast path is deterministic per clip regardless of batch composition.
// The Manager owns job lifecycle (start, status, results pagination,
// cancel, drain, resume) for both the /v1/sweep HTTP API and the
// drainnet-sweep CLI.
package sweep

import (
	"fmt"
	"sort"

	"drainnet/internal/hydro"
	"drainnet/internal/terrain"
)

// Spec is a sweep job specification — the POST /v1/sweep payload. Zero
// fields select documented defaults, so {"rows":1024,"cols":1024} is a
// complete job.
type Spec struct {
	// Rows, Cols size the synthetic watershed raster (min 64 per side).
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Seed drives watershed synthesis; the same spec always sweeps the
	// same raster.
	Seed int64 `json:"seed"`
	// Window is the sliding-window side length in cells (0 → the served
	// model's training clip size).
	Window int `json:"window,omitempty"`
	// Stride is the window step (0 → Window/2).
	Stride int `json:"stride,omitempty"`
	// MinScore keeps only confident detections (0 → 0.95).
	MinScore float64 `json:"min_score,omitempty"`
	// MergeRadius collapses detections within this many cells of a
	// higher-scoring one (0 → Window/3).
	MergeRadius int `json:"merge_radius,omitempty"`
	// MatchRadius is the AP scoring tolerance against ground-truth
	// crossings (0 → Window/4).
	MatchRadius int `json:"match_radius,omitempty"`
	// Scenarios names the terrain/imaging scenarios to sweep
	// (terrain.Scenarios); empty → ["baseline"], ["all"] → the full suite.
	Scenarios []string `json:"scenarios,omitempty"`
	// Precision, when set, must match the precision the pool serves at
	// ("fp32"/"int8"); it exists so a job spec can pin its numeric
	// contract instead of silently inheriting whatever the server runs.
	Precision string `json:"precision,omitempty"`
	// Prior configures the candidate-extraction prior.
	Prior PriorSpec `json:"prior,omitempty"`
	// CheckpointEvery is the number of candidate windows inferred between
	// checkpoints (0 → 256).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// RoadSpacing and StreamThreshold override the terrain generator's
	// knobs (0 → scaled from the raster size).
	RoadSpacing     int     `json:"road_spacing,omitempty"`
	StreamThreshold float64 `json:"stream_threshold,omitempty"`
}

// PriorSpec tunes the road×stream proximity prior that keeps empty tiles
// away from the model.
type PriorSpec struct {
	// Disabled sends every window to the model (the brute-force scan).
	Disabled bool `json:"disabled,omitempty"`
	// RoadRadius / StreamRadius are the Chebyshev dilation radii in cells
	// applied to the road and stream masks before intersecting them
	// (0 → Window/4, min 2). A window is a candidate iff it overlaps the
	// dilated intersection.
	RoadRadius   int `json:"road_radius,omitempty"`
	StreamRadius int `json:"stream_radius,omitempty"`
}

// maxRasterSide bounds a job's raster so a typo'd spec cannot OOM the
// server (16384² cells ≈ 4 GiB rendered).
const maxRasterSide = 16384

// WithDefaults resolves every zero field against the served model's clip
// size, returning the fully-specified spec that is checkpointed and
// reported back by the job API.
func (s Spec) WithDefaults(defaultWindow int) Spec {
	if s.Window <= 0 {
		s.Window = defaultWindow
	}
	if s.Stride <= 0 {
		s.Stride = maxInt(1, s.Window/2)
	}
	if s.MinScore <= 0 {
		s.MinScore = 0.95
	}
	if s.MergeRadius <= 0 {
		s.MergeRadius = maxInt(1, s.Window/3)
	}
	if s.MatchRadius <= 0 {
		s.MatchRadius = maxInt(1, s.Window/4)
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = []string{"baseline"}
	}
	if len(s.Scenarios) == 1 && s.Scenarios[0] == "all" {
		s.Scenarios = s.Scenarios[:0]
		for _, sc := range terrain.Scenarios() {
			s.Scenarios = append(s.Scenarios, sc.Name)
		}
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 256
	}
	if !s.Prior.Disabled {
		if s.Prior.RoadRadius <= 0 {
			s.Prior.RoadRadius = maxInt(2, s.Window/4)
		}
		if s.Prior.StreamRadius <= 0 {
			s.Prior.StreamRadius = maxInt(2, s.Window/4)
		}
	}
	if s.RoadSpacing <= 0 {
		s.RoadSpacing = maxInt(48, minInt(s.Rows, s.Cols)/4)
	}
	if s.StreamThreshold <= 0 {
		// Heuristic accumulation threshold that keeps channel density
		// roughly constant across raster sizes (DefaultConfig's 400 cells
		// at 512² scales to ~0.45·side).
		s.StreamThreshold = 0.45 * float64(minInt(s.Rows, s.Cols))
	}
	return s
}

// Validate checks a resolved spec against the serving configuration.
func (s Spec) Validate(precision string) error {
	if s.Rows < 64 || s.Cols < 64 {
		return fmt.Errorf("sweep: raster %dx%d too small (min 64 per side)", s.Rows, s.Cols)
	}
	if s.Rows > maxRasterSide || s.Cols > maxRasterSide {
		return fmt.Errorf("sweep: raster %dx%d too large (max %d per side)", s.Rows, s.Cols, maxRasterSide)
	}
	if s.Window < 8 || s.Window > s.Rows || s.Window > s.Cols {
		return fmt.Errorf("sweep: window %d invalid for %dx%d raster", s.Window, s.Rows, s.Cols)
	}
	if s.Stride < 1 || s.Stride > s.Window {
		return fmt.Errorf("sweep: stride %d invalid for window %d", s.Stride, s.Window)
	}
	if s.MinScore < 0 || s.MinScore >= 1 {
		return fmt.Errorf("sweep: min_score %v outside [0,1)", s.MinScore)
	}
	for _, name := range s.Scenarios {
		if _, err := terrain.ScenarioByName(name); err != nil {
			return err
		}
	}
	if s.Precision != "" && precision != "" && s.Precision != precision {
		return fmt.Errorf("sweep: spec wants precision %q but the pool serves %q", s.Precision, precision)
	}
	return nil
}

// terrainConfig derives the generator config for one scenario of the
// sweep: spec geometry and seed over the default watershed character,
// with the scenario's terrain regime folded in.
func (s Spec) terrainConfig(sc terrain.Scenario) terrain.Config {
	cfg := terrain.DefaultConfig()
	cfg.Rows, cfg.Cols = s.Rows, s.Cols
	cfg.Seed = s.Seed
	cfg.RoadSpacing = s.RoadSpacing
	cfg.StreamThreshold = s.StreamThreshold
	return sc.Apply(cfg)
}

// Hit is one swept drainage-crossing detection in raster coordinates.
type Hit struct {
	Scenario string  `json:"scenario"`
	Row      int     `json:"row"`
	Col      int     `json:"col"`
	Score    float64 `json:"score"`
}

// ScenarioSummary is the per-scenario accounting the job summary reports:
// the candidate-prior's skip volume and the detection quality versus the
// generator's ground-truth crossings.
type ScenarioSummary struct {
	Scenario   string  `json:"scenario"`
	Windows    int     `json:"windows"`
	Candidates int     `json:"candidates"`
	Skipped    int     `json:"skipped"`
	Hits       int     `json:"hits"`
	Truth      int     `json:"truth"`
	AP         float64 `json:"ap"`
	Recall     float64 `json:"recall"`
	Precision  float64 `json:"precision"`
	// Exited counts the scenario's inferred clips answered by the serving
	// pool's early-exit head; ExitRate is Exited/inferred for the
	// scenario. Both stay 0 when the pool serves without dynamic
	// inference.
	Exited   int     `json:"exited,omitempty"`
	ExitRate float64 `json:"exit_rate,omitempty"`
}

// Job states reported by Status.State.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
	StateFailed   = "failed"
)

// Status is a point-in-time snapshot of one sweep job — the
// GET /v1/sweep/{id} payload.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Phase is the current pipeline stage: generate, render, extract,
	// infer, merge, or "" once the job is finished.
	Phase string `json:"phase,omitempty"`
	// Scenario is the scenario currently sweeping.
	Scenario       string `json:"scenario,omitempty"`
	ScenariosDone  int    `json:"scenarios_done"`
	ScenariosTotal int    `json:"scenarios_total"`
	// Windows counts every slid window so far; Candidates survived the
	// prior, Skipped did not, Inferred have been through the model.
	Windows    int `json:"windows"`
	Candidates int `json:"candidates"`
	Skipped    int `json:"skipped"`
	Inferred   int `json:"inferred"`
	// Hits is the number of merged crossings available from the results
	// endpoint so far.
	Hits int `json:"hits"`
	// Exited counts inferred clips the pool's early-exit head answered;
	// ExitRate is Exited/Inferred. MaskRate echoes the pool's cumulative
	// masked-band rate. All stay 0 without dynamic inference.
	Exited   int     `json:"exited,omitempty"`
	ExitRate float64 `json:"exit_rate,omitempty"`
	MaskRate float64 `json:"mask_rate,omitempty"`
	// SkipRate is Skipped/Windows — the fraction of the raster the prior
	// kept away from the model.
	SkipRate float64 `json:"skip_rate"`
	// ClipsPerSec is the inference throughput since this process picked
	// the job up.
	ClipsPerSec float64 `json:"clips_per_sec"`
	// Checkpointed reports whether the job survives a restart.
	Checkpointed bool   `json:"checkpointed"`
	Error        string `json:"error,omitempty"`
	// PerScenario carries one summary per completed scenario.
	PerScenario []ScenarioSummary `json:"per_scenario,omitempty"`
}

// window is one sliding-window origin.
type window struct{ r0, c0 int }

// enumerateWindows slides the spec's window over the raster. Unlike
// model.Scan it clamps a final row/column of windows to the raster edge,
// so tail cells narrower than the stride still get covered.
func enumerateWindows(rows, cols int, spec Spec) []window {
	var wins []window
	rs := axisStops(rows-spec.Window, spec.Stride)
	cs := axisStops(cols-spec.Window, spec.Stride)
	for _, r0 := range rs {
		for _, c0 := range cs {
			wins = append(wins, window{r0, c0})
		}
	}
	return wins
}

// axisStops returns the window origins along one axis: 0, stride, ...,
// plus the clamped final origin `end` when the stride does not land on it.
func axisStops(end, stride int) []int {
	var stops []int
	last := -1
	for v := 0; v <= end; v += stride {
		stops = append(stops, v)
		last = v
	}
	if last != end {
		stops = append(stops, end)
	}
	return stops
}

// candidateWindows partitions the enumerated windows by the hydro prior:
// a window is a candidate iff it overlaps a cell that is within
// RoadRadius of a road AND StreamRadius of a stream — the only geometry
// that can host a culvert. The mask test is O(1) per window via a
// summed-area table.
func candidateWindows(w *terrain.Watershed, spec Spec) (cands []window, total int) {
	wins := enumerateWindows(w.Cfg.Rows, w.Cfg.Cols, spec)
	if spec.Prior.Disabled {
		return wins, len(wins)
	}
	rows, cols := w.Cfg.Rows, w.Cfg.Cols
	near := dilate(w.RoadMask, rows, cols, spec.Prior.RoadRadius)
	stream := dilate(w.StreamMask, rows, cols, spec.Prior.StreamRadius)
	for i := range near {
		near[i] = near[i] && stream[i]
	}
	sat := integral(near, rows, cols)
	for _, wd := range wins {
		if sat.sum(wd.r0, wd.c0, spec.Window, spec.Window) > 0 {
			cands = append(cands, wd)
		}
	}
	return cands, len(wins)
}

// dilate expands a boolean mask by Chebyshev radius r using two separable
// passes (horizontal then vertical), O(rows·cols·r) total.
func dilate(mask []bool, rows, cols, r int) []bool {
	h := make([]bool, len(mask))
	for row := 0; row < rows; row++ {
		base := row * cols
		for c := 0; c < cols; c++ {
			if !mask[base+c] {
				continue
			}
			lo, hi := maxInt(0, c-r), minInt(cols-1, c+r)
			for cc := lo; cc <= hi; cc++ {
				h[base+cc] = true
			}
		}
	}
	out := make([]bool, len(mask))
	for row := 0; row < rows; row++ {
		base := row * cols
		for c := 0; c < cols; c++ {
			if !h[base+c] {
				continue
			}
			lo, hi := maxInt(0, row-r), minInt(rows-1, row+r)
			for rr := lo; rr <= hi; rr++ {
				out[rr*cols+c] = true
			}
		}
	}
	return out
}

// sat is a summed-area table over a boolean mask, (rows+1)×(cols+1).
type sat struct {
	cols int
	v    []int32
}

func integral(mask []bool, rows, cols int) sat {
	s := sat{cols: cols, v: make([]int32, (rows+1)*(cols+1))}
	w := cols + 1
	for r := 0; r < rows; r++ {
		var run int32
		for c := 0; c < cols; c++ {
			if mask[r*cols+c] {
				run++
			}
			s.v[(r+1)*w+c+1] = s.v[r*w+c+1] + run
		}
	}
	return s
}

// sum returns the count of set cells in the h×w rectangle at (r0, c0).
func (s sat) sum(r0, c0, h, w int) int32 {
	W := s.cols + 1
	return s.v[(r0+h)*W+c0+w] - s.v[r0*W+c0+w] - s.v[(r0+h)*W+c0] + s.v[r0*W+c0]
}

// scoreScenario computes the per-scenario summary: greedy score-ranked
// matching of merged hits against ground-truth crossings within
// MatchRadius, with AP as the mean of precision at each true-positive
// rank (the paper's Equation 1 applied to point detections).
func scoreScenario(name string, hits []Hit, truth []hydro.Point, windows, candidates int, radius int) ScenarioSummary {
	sum := ScenarioSummary{
		Scenario:   name,
		Windows:    windows,
		Candidates: candidates,
		Skipped:    windows - candidates,
		Hits:       len(hits),
		Truth:      len(truth),
	}
	if len(truth) == 0 || len(hits) == 0 {
		return sum
	}
	ranked := append([]Hit(nil), hits...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	matched := make([]bool, len(truth))
	r2 := radius * radius
	tp := 0
	var apSum float64
	for k, h := range ranked {
		hit := -1
		best := r2 + 1
		for t, gt := range truth {
			if matched[t] {
				continue
			}
			dr, dc := h.Row-gt.R, h.Col-gt.C
			if d := dr*dr + dc*dc; d <= r2 && d < best {
				best, hit = d, t
			}
		}
		if hit >= 0 {
			matched[hit] = true
			tp++
			apSum += float64(tp) / float64(k+1)
		}
	}
	sum.AP = apSum / float64(len(truth))
	sum.Recall = float64(tp) / float64(len(truth))
	sum.Precision = float64(tp) / float64(len(ranked))
	return sum
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package sweep

import (
	"fmt"

	"drainnet/internal/hydro"
	"drainnet/internal/nn"
	"drainnet/internal/terrain"
)

// BenchTraffic materializes one scenario's sweep traffic as a labeled
// dataset: the full sliding-window set of a sparse 512² watershed (wide
// section-road spacing, high stream threshold — the realistic regime
// where drainage crossings are rare), in deterministic window order,
// each window labeled with the crossing it contains (if any). The mix
// is ~90% empty tiles — the skew a survey-scale sweep submits to the
// pool and the traffic profile the dynamic inference path is calibrated
// for and benchmarked against.
func BenchTraffic(scenario string, window int) (*terrain.Dataset, error) {
	spec := Spec{
		Rows: 512, Cols: 512, Seed: 11,
		RoadSpacing: 320, StreamThreshold: 900,
		Scenarios: []string{scenario}, Window: window,
	}.WithDefaults(window)
	if err := spec.Validate(""); err != nil {
		return nil, err
	}
	sc, err := terrain.ScenarioByName(scenario)
	if err != nil {
		return nil, err
	}
	w, err := terrain.Generate(spec.terrainConfig(sc))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", scenario, err)
	}
	img := terrain.RenderScenario(w, sc)
	type window2 struct{ r0, c0 int }
	var wins []window2
	for r0 := 0; r0+spec.Window <= spec.Rows; r0 += spec.Stride {
		for c0 := 0; c0+spec.Window <= spec.Cols; c0 += spec.Stride {
			wins = append(wins, window2{r0, c0})
		}
	}
	ds := &terrain.Dataset{ClipSize: spec.Window}
	boxFrac := float32(14) / float32(spec.Window)
	for _, win := range wins {
		s := terrain.Sample{
			Image:  terrain.Clip(img, win.r0, win.c0, spec.Window),
			Origin: hydro.Point{R: win.r0, C: win.c0},
		}
		if p, ok := crossingIn(w, win.r0, win.c0, spec.Window); ok {
			s.Crossing = p
			s.Target = nn.DetectionTarget{
				HasObject: true,
				CX:        float32(p.C-win.c0) / float32(spec.Window),
				CY:        float32(p.R-win.r0) / float32(spec.Window),
				W:         boxFrac, H: boxFrac,
			}
		}
		ds.Samples = append(ds.Samples, s)
	}
	return ds, nil
}

// crossingIn finds a ground-truth crossing inside the window, preferring
// the one nearest its center so jittered duplicates resolve stably.
func crossingIn(w *terrain.Watershed, r0, c0, size int) (hydro.Point, bool) {
	var best hydro.Point
	bestD, found := 0, false
	cr, cc := r0+size/2, c0+size/2
	for _, p := range w.Crossings {
		if p.R < r0 || p.R >= r0+size || p.C < c0 || p.C >= c0+size {
			continue
		}
		d := absInt(p.R-cr) + absInt(p.C-cc)
		if !found || d < bestD {
			best, bestD, found = p, d, true
		}
	}
	return best, found
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkpointVersion guards the on-disk format; a bumped version means old
// checkpoints are skipped at Resume rather than misread.
const checkpointVersion = 1

// checkpoint is a sweep job's durable state — everything needed to finish
// the job bit-identically in another process. See DESIGN §sweep.
type checkpoint struct {
	Version int    `json:"version"`
	ID      string `json:"id"`
	Spec    Spec   `json:"spec"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	// ScenarioIndex and Cursor locate the resume point: the next
	// candidate-window index within Spec.Scenarios[ScenarioIndex].
	ScenarioIndex int `json:"scenario_index"`
	Cursor        int `json:"cursor"`
	// CountedScenario is the highest scenario index already folded into
	// Counters; resumes must not re-count a scenario's window totals.
	CountedScenario int      `json:"counted_scenario"`
	Counters        Counters `json:"counters"`
	// ScenarioExited/ScenarioInferred carry the running scenario's exit
	// accounting across a mid-scenario drain, so resumed jobs report an
	// exact per-scenario exit rate. Absent (0) in pre-dynamic checkpoints.
	ScenarioExited   int `json:"scenario_exited,omitempty"`
	ScenarioInferred int `json:"scenario_inferred,omitempty"`
	// Raw holds the current scenario's pre-merge hits (cleared once the
	// scenario merges); Hits and Summaries accumulate finished scenarios.
	Raw       []Hit             `json:"raw_hits,omitempty"`
	Hits      []Hit             `json:"hits"`
	Summaries []ScenarioSummary `json:"per_scenario,omitempty"`
}

func checkpointPath(dir, id string) string {
	return filepath.Join(dir, id+".json")
}

func checkpointExists(dir, id string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(checkpointPath(dir, id))
	return err == nil
}

// save writes the checkpoint atomically (tmp + rename), so a crash mid-
// write leaves the previous checkpoint intact.
func (ck *checkpoint) save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	path := checkpointPath(dir, ck.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoints reads every checkpoint in dir, oldest job ID first.
// Unreadable or version-mismatched files are skipped, not fatal — one
// corrupt checkpoint must not block the rest from resuming.
func loadCheckpoints(dir string) ([]*checkpoint, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cks []*checkpoint
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var ck checkpoint
		if json.Unmarshal(buf, &ck) != nil || ck.Version != checkpointVersion || ck.ID == "" {
			continue
		}
		if ck.ID != strings.TrimSuffix(name, ".json") {
			continue
		}
		cks = append(cks, &ck)
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].ID < cks[j].ID })
	return cks, nil
}

// removeCheckpoint deletes a job's checkpoint file (used by DELETE once a
// canceled job's state has been acknowledged, and by tests).
func removeCheckpoint(dir, id string) error {
	if dir == "" {
		return nil
	}
	err := os.Remove(checkpointPath(dir, id))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweep: remove checkpoint: %w", err)
	}
	return nil
}

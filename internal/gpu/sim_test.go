package gpu

import (
	"math"
	"testing"

	"drainnet/internal/graph"
)

func a5500Graph() *graph.Graph {
	g := graph.NewGraph("sppnet2", 4, 100, 100)
	x := g.Conv(g.In, "conv1", 64, 3, 1)
	x = g.Pool(x, "pool1", 2, 2)
	x = g.Conv(x, "conv2", 128, 3, 1)
	x = g.Pool(x, "pool2", 2, 2)
	x = g.Conv(x, "conv3", 256, 3, 1)
	x = g.Pool(x, "pool3", 2, 2)
	a := g.AdaptivePool(x, "spp5", 5)
	b := g.AdaptivePool(x, "spp2", 2)
	c := g.AdaptivePool(x, "spp1", 1)
	cat := g.Concat([]*graph.Node{a, b, c}, "concat")
	h := g.FC(cat, "fc1", 4096)
	g.FC(h, "head", 5)
	return g
}

func TestDeviceValidate(t *testing.T) {
	dev := RTXA5500()
	if err := dev.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := dev
	bad.SMCount = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero SMs")
	}
	bad2 := dev
	bad2.CoalesceExp = 0.5
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected error for CoalesceExp < 1")
	}
}

func TestPeakFLOPSMatchesDatasheet(t *testing.T) {
	dev := RTXA5500()
	// 10240 cores × 1.665 GHz × 2 ≈ 34.1 TFLOPS
	got := dev.PeakFLOPS() / 1e12
	if math.Abs(got-34.1) > 0.2 {
		t.Fatalf("peak = %.2f TFLOPS, want ≈34.1", got)
	}
}

func TestKernelCostOccupancy(t *testing.T) {
	dev := RTXA5500()
	g := a5500Graph()
	var fc1, conv1 *graph.Node
	for _, n := range g.Nodes {
		switch n.Name {
		case "fc1":
			fc1 = n
		case "conv1":
			conv1 = n
		}
	}
	// Batch-1 FC has only 4096 threads: far below device capacity.
	cf := dev.Cost(fc1, 1)
	if cf.Occupancy >= 1 {
		t.Fatalf("batch-1 FC occupancy = %v, want < 1", cf.Occupancy)
	}
	if !cf.MemBound {
		t.Fatal("batch-1 FC should be memory-bound (GEMV reads all weights)")
	}
	// Batch-1 conv1 has 640k threads: saturates the device.
	cc := dev.Cost(conv1, 1)
	if cc.Occupancy != 1 {
		t.Fatalf("conv1 occupancy = %v, want 1", cc.Occupancy)
	}
}

func TestKernelCostScalesWithBatch(t *testing.T) {
	dev := RTXA5500()
	g := a5500Graph()
	conv := g.Nodes[5] // conv3
	if conv.Name != "conv3" {
		t.Fatalf("unexpected node order: %s", conv.Name)
	}
	c1 := dev.Cost(conv, 1)
	c64 := dev.Cost(conv, 64)
	if c64.WorkNs <= c1.WorkNs {
		t.Fatal("batch-64 conv must do more work than batch-1")
	}
	// Per-sample work must not increase with batch (amortization).
	if c64.SoloNs/64 > c1.SoloNs+1 {
		t.Fatalf("per-sample latency grew with batch: %v vs %v", c64.SoloNs/64, c1.SoloNs)
	}
}

func TestFCEfficiencyImprovesWithBatch(t *testing.T) {
	// The weight-reading GEMV at batch 1 amortizes at batch 64: per-sample
	// solo time must fall dramatically.
	dev := RTXA5500()
	g := a5500Graph()
	var fc1 *graph.Node
	for _, n := range g.Nodes {
		if n.Name == "fc1" {
			fc1 = n
		}
	}
	s1 := dev.Cost(fc1, 1).SoloNs
	s64 := dev.Cost(fc1, 64).SoloNs / 64
	if s64 > s1/8 {
		t.Fatalf("FC per-sample time: batch1=%v batch64=%v, want ≥8x amortization", s1, s64)
	}
}

func TestMemoryUsageWithinCapacity(t *testing.T) {
	dev := RTXA5500()
	g := a5500Graph()
	use := dev.MemoryUsageBytes(g, 64)
	if use <= 0 {
		t.Fatal("memory usage must be positive")
	}
	// Paper §7.1: even 64 images remain far below the 24 GB capacity.
	if use >= dev.MemoryCapacityBytes()/2 {
		t.Fatalf("batch-64 usage %d should be well under capacity %d", use, dev.MemoryCapacityBytes())
	}
	if dev.MemoryUsageBytes(g, 64) <= dev.MemoryUsageBytes(g, 1) {
		t.Fatal("memory usage must grow with batch")
	}
}

func TestLibraryLoadOnce(t *testing.T) {
	s := NewSim(RTXA5500())
	s.LoadLibrary()
	s.LoadLibrary()
	count := 0
	for _, e := range s.Events() {
		if e.Kind == EvLibraryLoad {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("library loaded %d times, want 1", count)
	}
}

func TestMemcpyTimes(t *testing.T) {
	s := NewSim(RTXA5500())
	s.MemcpyH2D("input", 160000) // one 4×100×100 float image
	var ev *Event
	for i := range s.Events() {
		if s.Events()[i].Kind == EvMemcpyH2D {
			ev = &s.Events()[i]
		}
	}
	if ev == nil {
		t.Fatal("no H2D event recorded")
	}
	want := RTXA5500().MemcpyOverheadNs + 160000/RTXA5500().PCIeGBps
	if math.Abs(ev.DurNs-want) > 1 {
		t.Fatalf("H2D duration %v, want %v", ev.DurNs, want)
	}
}

func TestRunStageSequentialVsParallelGroups(t *testing.T) {
	// Two independent low-occupancy kernels (batch-1 FC heads): running
	// them as concurrent groups must beat serializing them, because each
	// alone cannot fill the device. (High-occupancy kernels tie instead —
	// concurrency conserves total work once the device is saturated, which
	// is the diminishing-returns effect of Fig 6.)
	dev := RTXA5500()
	g := graph.NewGraph("heads", 7680)
	a := g.FC(g.In, "head_a", 4096)
	b := g.FC(g.In, "head_b", 4096)
	_ = g.Concat([]*graph.Node{a, b}, "cat")

	seq := NewSim(dev)
	seqDur := seq.RunStage([][]*graph.Node{{a, b}}, 1)

	par := NewSim(dev)
	parDur := par.RunStage([][]*graph.Node{{a}, {b}}, 1)

	if parDur >= seqDur*0.95 {
		t.Fatalf("parallel groups (%v ns) must beat sequential group (%v ns)", parDur, seqDur)
	}
}

func TestRunStageKernelEventsRecorded(t *testing.T) {
	dev := RTXA5500()
	g := a5500Graph()
	s := NewSim(dev)
	var group []*graph.Node
	for _, n := range g.Nodes {
		if n.Kind != graph.OpInput {
			group = append(group, n)
		}
	}
	s.RunStage([][]*graph.Node{group}, 1)
	kernels := 0
	syncs := 0
	launches := 0
	for _, e := range s.Events() {
		switch e.Kind {
		case EvKernel:
			kernels++
		case EvSync:
			syncs++
		case EvLaunch:
			launches++
		}
	}
	if kernels != len(group) {
		t.Fatalf("kernel events = %d, want %d", kernels, len(group))
	}
	if launches != len(group) {
		t.Fatalf("launch events = %d, want %d", launches, len(group))
	}
	if syncs != 1 {
		t.Fatalf("sync events = %d, want 1", syncs)
	}
}

func TestStreamOrderPreserved(t *testing.T) {
	// Kernels within one group must not overlap each other.
	dev := RTXA5500()
	g := graph.NewGraph("chain", 64, 50, 50)
	a := g.Conv(g.In, "a", 64, 3, 1)
	b := g.Conv(a, "b", 64, 3, 1)
	s := NewSim(dev)
	s.RunStage([][]*graph.Node{{a, b}}, 1)
	var ea, eb *Event
	for i := range s.Events() {
		e := &s.Events()[i]
		if e.Kind == EvKernel {
			switch e.Name {
			case "a":
				ea = e
			case "b":
				eb = e
			}
		}
	}
	if ea == nil || eb == nil {
		t.Fatal("missing kernel events")
	}
	if eb.StartNs < ea.EndNs()-1e-6 {
		t.Fatalf("kernel b started at %v before a ended at %v", eb.StartNs, ea.EndNs())
	}
}

func TestSyncWaitGrowsWithBatch(t *testing.T) {
	// The cudaDeviceSynchronize wait (GPU running ahead of CPU) must grow
	// with batch size — the paper's Fig 8 effect.
	dev := RTXA5500()
	g := a5500Graph()
	syncTime := func(batch int) float64 {
		s := NewSim(dev)
		var group []*graph.Node
		for _, n := range g.Nodes {
			if n.Kind != graph.OpInput {
				group = append(group, n)
			}
		}
		s.RunStage([][]*graph.Node{group}, batch)
		var total float64
		for _, e := range s.Events() {
			if e.Kind == EvSync {
				total += e.DurNs
			}
		}
		return total
	}
	if syncTime(64) <= syncTime(1)*2 {
		t.Fatalf("sync wait should grow strongly with batch: b1=%v b64=%v", syncTime(1), syncTime(64))
	}
}

func TestResetClearsState(t *testing.T) {
	s := NewSim(RTXA5500())
	s.LoadLibrary()
	s.Reset()
	if len(s.Events()) != 0 || s.NowNs() != 0 {
		t.Fatal("Reset must clear ledger and clock")
	}
}

func TestRunPlanStageBarrier(t *testing.T) {
	// A stage-2 kernel must never start before every stage-1 kernel has
	// finished, even when its own stream is idle.
	dev := RTXA5500()
	g := graph.NewGraph("barrier", 256, 12, 12)
	a := g.AdaptivePool(g.In, "a", 5)
	b := g.AdaptivePool(g.In, "b", 2)
	cat := g.Concat([]*graph.Node{a, b}, "cat")
	s := NewSim(dev)
	s.RunPlan([][][]*graph.Node{
		{{a}, {b}},
		{{cat}},
	}, 64, StageOpts{})
	var ea, eb, ec *Event
	for i := range s.Events() {
		e := &s.Events()[i]
		if e.Kind == EvKernel {
			switch e.Name {
			case "a":
				ea = e
			case "b":
				eb = e
			case "cat":
				ec = e
			}
		}
	}
	if ea == nil || eb == nil || ec == nil {
		t.Fatal("missing kernel events")
	}
	stage1End := ea.EndNs()
	if eb.EndNs() > stage1End {
		stage1End = eb.EndNs()
	}
	if ec.StartNs < stage1End-1e-6 {
		t.Fatalf("stage-2 kernel started at %v before stage-1 ended at %v", ec.StartNs, stage1End)
	}
}

func TestRunPlanSingleFinalSync(t *testing.T) {
	dev := RTXA5500()
	g := graph.NewGraph("plan", 64, 50, 50)
	a := g.Conv(g.In, "a", 64, 3, 1)
	b := g.Conv(a, "b", 64, 3, 1)
	s := NewSim(dev)
	s.RunPlan([][][]*graph.Node{{{a}}, {{b}}}, 4, StageOpts{})
	syncs := 0
	for _, e := range s.Events() {
		if e.Kind == EvSync {
			syncs++
		}
	}
	if syncs != 1 {
		t.Fatalf("RunPlan produced %d syncs, want exactly 1", syncs)
	}
}

func TestRunPlanDispatchDelaysLaunches(t *testing.T) {
	dev := RTXA5500()
	g := graph.NewGraph("dispatch", 64, 50, 50)
	a := g.Conv(g.In, "a", 64, 3, 1)
	noDispatch := NewSim(dev)
	noDispatch.RunPlan([][][]*graph.Node{{{a}}}, 1, StageOpts{})
	eager := NewSim(dev)
	eager.RunPlan([][][]*graph.Node{{{a}}}, 1, StageOpts{DispatchNs: 25000})
	if eager.NowNs() <= noDispatch.NowNs() {
		t.Fatal("dispatch overhead must extend the CPU timeline")
	}
}

package gpu

import "drainnet/internal/graph"

// CostOracle prices one stage — a set of operator groups that execute
// concurrently, each group a sequential chain — at a batch size, in
// nanoseconds of end-to-end time. It is the pricing interface the IOS
// dynamic program searches against. Two implementations exist:
// internal/ios.SimOracle replays stages on the simulated GPU in this
// package, and internal/ios.MeasuredOracle prices them from wall-clock
// timings of the concrete model's kernels on the local CPU.
type CostOracle interface {
	StageCost(groups [][]*graph.Node, batch int) float64
}

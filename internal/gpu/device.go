// Package gpu implements a discrete-event simulator of a CUDA GPU,
// calibrated to the NVIDIA RTX A5500 used in the paper. It prices single
// kernels with an occupancy-limited roofline model, executes stages of
// concurrent kernel groups under processor sharing (the stream semantics
// IOS relies on), models the CPU-launch/GPU-execute asynchrony that makes
// cudaDeviceSynchronize time grow with batch size, and keeps an event
// ledger that internal/profiler consumes to regenerate the paper's
// profiling figures.
//
// The simulator substitutes for real CUDA hardware (see DESIGN.md §2):
// absolute times are calibrated, but the latency *shapes* — which model
// wins, where batching saturates, which kernel class dominates — emerge
// from arithmetic intensity, parallelism limits, and pipeline asynchrony
// that the model represents explicitly.
package gpu

import (
	"fmt"
	"math"

	"drainnet/internal/graph"
)

// DeviceConfig describes the simulated GPU and its cost-model constants.
type DeviceConfig struct {
	Name       string
	SMCount    int     // streaming multiprocessors
	CoresPerSM int     // CUDA cores per SM
	ClockGHz   float64 // boost clock
	MemoryGB   float64 // device memory capacity

	MemBandwidthGBps  float64 // device memory bandwidth
	PCIeGBps          float64 // effective host↔device bandwidth (pageable)
	ThreadsPerBlock   int     // modeled CTA size
	KernelLaunchCPUNs float64 // CPU time per cudaLaunchKernel call
	MemcpyOverheadNs  float64 // fixed cost per cudaMemcpy operation
	SyncBaseNs        float64 // fixed cost of cudaDeviceSynchronize
	LibraryLoadNs     float64 // one-time cuLibraryLoadData cost

	// Compute efficiency (fraction of peak FMA throughput) per kernel
	// class, capturing how well each kernel family uses the ALUs.
	EffConv   float64
	EffMatMul float64
	EffPool   float64
	EffOther  float64
	// CoalesceExp models how achievable memory bandwidth scales with
	// occupancy f: BW_eff = BW · f^(CoalesceExp-1) on top of the linear
	// occupancy term. Values >1 penalize low-occupancy kernels (GEMV-style
	// FC layers at batch 1), which is what makes matmul dominate the
	// batch-1 timeline as in the paper's Table 3.
	CoalesceExp float64
}

// RTXA5500 returns the simulated configuration of the paper's GPU
// (10240 CUDA cores, 24 GB). Datasheet-derived constants: 80 SMs × 128
// cores at 1.665 GHz, 768 GB/s GDDR6. The remaining constants are
// calibration: see EXPERIMENTS.md.
func RTXA5500() DeviceConfig {
	return DeviceConfig{
		Name:              "NVIDIA RTX A5500 (simulated)",
		SMCount:           80,
		CoresPerSM:        128,
		ClockGHz:          1.665,
		MemoryGB:          24,
		MemBandwidthGBps:  768,
		PCIeGBps:          8.4,
		ThreadsPerBlock:   64,
		KernelLaunchCPUNs: 7800,
		MemcpyOverheadNs:  7600,
		SyncBaseNs:        1200,
		LibraryLoadNs:     1760000,
		EffConv:           0.62,
		EffMatMul:         0.60,
		EffPool:           0.18,
		EffOther:          0.10,
		CoalesceExp:       1.25,
	}
}

// PeakFLOPS returns the device's peak FMA throughput in FLOP/s.
func (d DeviceConfig) PeakFLOPS() float64 {
	return float64(d.SMCount) * float64(d.CoresPerSM) * d.ClockGHz * 1e9 * 2
}

func (d DeviceConfig) efficiency(k graph.OpKind) float64 {
	switch k {
	case graph.OpConv:
		return d.EffConv
	case graph.OpMatMul:
		return d.EffMatMul
	case graph.OpPool, graph.OpAdaptivePool:
		return d.EffPool
	default:
		return d.EffOther
	}
}

// KernelCost describes the simulator's pricing of one kernel launch.
type KernelCost struct {
	// Occupancy is the fraction of the device the kernel can use alone
	// (thread-level-parallelism limited), in (0, 1].
	Occupancy float64
	// WorkNs is the kernel's work expressed in full-device nanoseconds:
	// running alone it takes WorkNs/Occupancy.
	WorkNs float64
	// SoloNs is the kernel's duration when it is the only kernel resident.
	SoloNs float64
	// MemBound reports whether the memory term dominated the compute term.
	MemBound bool
}

// Cost prices node at the given batch size.
func (d DeviceConfig) Cost(n *graph.Node, batch int) KernelCost {
	if n.Kind == graph.OpInput {
		return KernelCost{Occupancy: 1}
	}
	threads := n.ThreadsPerSample * int64(batch)
	blocks := (threads + int64(d.ThreadsPerBlock) - 1) / int64(d.ThreadsPerBlock)
	if blocks < 1 {
		blocks = 1
	}
	f := float64(blocks) / float64(d.SMCount)
	if f > 1 {
		f = 1
	}
	flops := float64(n.FLOPsPerSample) * float64(batch)
	computeNs := flops / (d.PeakFLOPS() * d.efficiency(n.Kind)) * 1e9
	bytes := float64(n.WeightBytes) + float64(n.BytesInPerSample()+n.BytesOutPerSample())*float64(batch)
	// Memory work in full-device ns, with the coalescing penalty applied so
	// that solo duration is bytes / (BW · f^CoalesceExp).
	memNs := bytes / (d.MemBandwidthGBps * math.Pow(f, d.CoalesceExp-1)) // GB/s == bytes/ns
	work := computeNs
	memBound := false
	if memNs > work {
		work = memNs
		memBound = true
	}
	return KernelCost{
		Occupancy: f,
		WorkNs:    work,
		SoloNs:    work / f,
		MemBound:  memBound,
	}
}

// MemoryUsageBytes estimates device memory needed to run g at the given
// batch: weights plus all activation buffers plus an im2col-style
// workspace for the largest convolution.
func (d DeviceConfig) MemoryUsageBytes(g *graph.Graph, batch int) int64 {
	weights := g.TotalWeightBytes()
	acts := g.ActivationBytesPerSample() * int64(batch)
	var workspace int64
	for _, n := range g.Nodes {
		if n.Kind == graph.OpConv {
			ws := n.BytesInPerSample() * 9 * int64(batch) // 3×3 im2col expansion
			if ws > workspace {
				workspace = ws
			}
		}
	}
	return weights + acts + workspace
}

// MemoryCapacityBytes returns the device memory capacity.
func (d DeviceConfig) MemoryCapacityBytes() int64 {
	return int64(d.MemoryGB * 1e9)
}

// Validate checks that the configuration is physically meaningful.
func (d DeviceConfig) Validate() error {
	if d.SMCount <= 0 || d.CoresPerSM <= 0 || d.ClockGHz <= 0 ||
		d.MemBandwidthGBps <= 0 || d.PCIeGBps <= 0 || d.ThreadsPerBlock <= 0 {
		return fmt.Errorf("gpu: invalid device config %+v", d)
	}
	if d.EffConv <= 0 || d.EffMatMul <= 0 || d.EffPool <= 0 || d.EffOther <= 0 {
		return fmt.Errorf("gpu: kernel efficiencies must be positive")
	}
	if d.CoalesceExp < 1 {
		return fmt.Errorf("gpu: CoalesceExp must be ≥ 1")
	}
	return nil
}

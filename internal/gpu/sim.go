package gpu

import (
	"fmt"
	"sort"

	"drainnet/internal/graph"
)

// EventKind classifies ledger events, mirroring what Nsight Systems
// records on a real run.
type EventKind int

const (
	// EvLibraryLoad is the one-time cuLibraryLoadData call.
	EvLibraryLoad EventKind = iota
	// EvLaunch is a cudaLaunchKernel API call (CPU side).
	EvLaunch
	// EvKernel is a kernel execution on the GPU timeline.
	EvKernel
	// EvMemcpyH2D is a host-to-device copy.
	EvMemcpyH2D
	// EvMemcpyD2H is a device-to-host copy.
	EvMemcpyD2H
	// EvSync is a cudaDeviceSynchronize API call, including its wait time.
	EvSync
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvLibraryLoad:
		return "cuLibraryLoadData"
	case EvLaunch:
		return "cudaLaunchKernel"
	case EvKernel:
		return "kernel"
	case EvMemcpyH2D:
		return "cudaMemcpyH2D"
	case EvMemcpyD2H:
		return "cudaMemcpyD2H"
	case EvSync:
		return "cudaDeviceSynchronize"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// IsAPI reports whether the event occupies the CPU-side API timeline (as
// opposed to the GPU execution timeline).
func (k EventKind) IsAPI() bool {
	switch k {
	case EvLibraryLoad, EvLaunch, EvMemcpyH2D, EvMemcpyD2H, EvSync:
		return true
	}
	return false
}

// Event is one ledger entry.
type Event struct {
	Kind    EventKind
	Name    string // kernel or op name
	Class   string // kernel class for EvKernel ("Conv", "Pooling", "MatMul", "Other")
	Stream  int
	StartNs float64
	DurNs   float64
	Bytes   int64
}

// EndNs returns the event end time.
func (e Event) EndNs() float64 { return e.StartNs + e.DurNs }

// Sim is a simulated process driving the device: it owns a CPU timeline
// (API calls) and a GPU timeline (kernels, copies), and records every
// operation in an event ledger.
type Sim struct {
	Dev DeviceConfig

	cpuNs     float64 // CPU timeline cursor
	gpuFreeNs float64 // time at which the GPU finishes all queued work
	events    []Event
	libLoaded bool
}

// NewSim creates a simulator for the given device.
func NewSim(dev DeviceConfig) *Sim {
	if err := dev.Validate(); err != nil {
		panic(err)
	}
	return &Sim{Dev: dev}
}

// Reset clears both timelines and the ledger (a fresh process).
func (s *Sim) Reset() {
	s.cpuNs, s.gpuFreeNs = 0, 0
	s.events = nil
	s.libLoaded = false
}

// Events returns the recorded ledger.
func (s *Sim) Events() []Event { return s.events }

// NowNs returns the CPU timeline cursor.
func (s *Sim) NowNs() float64 { return s.cpuNs }

// LoadLibrary models the first CUDA call triggering cuLibraryLoadData
// (module/JIT load). Subsequent calls are free, as in a warm process.
func (s *Sim) LoadLibrary() {
	if s.libLoaded {
		return
	}
	s.libLoaded = true
	s.events = append(s.events, Event{Kind: EvLibraryLoad, Name: "cuLibraryLoadData", StartNs: s.cpuNs, DurNs: s.Dev.LibraryLoadNs})
	s.cpuNs += s.Dev.LibraryLoadNs
}

// MemcpyH2D models a blocking host-to-device copy of the given bytes.
func (s *Sim) MemcpyH2D(name string, bytes int64) {
	s.memcpy(EvMemcpyH2D, name, bytes)
}

// MemcpyD2H models a blocking device-to-host copy of the given bytes.
func (s *Sim) MemcpyD2H(name string, bytes int64) {
	s.memcpy(EvMemcpyD2H, name, bytes)
}

func (s *Sim) memcpy(kind EventKind, name string, bytes int64) {
	s.LoadLibrary()
	// A blocking memcpy waits for prior GPU work, then transfers.
	start := s.cpuNs
	if s.gpuFreeNs > start {
		start = s.gpuFreeNs
	}
	dur := s.Dev.MemcpyOverheadNs + float64(bytes)/s.Dev.PCIeGBps // GB/s == bytes/ns
	s.events = append(s.events, Event{Kind: kind, Name: name, StartNs: start, DurNs: dur, Bytes: bytes})
	s.cpuNs = start + dur
	if s.gpuFreeNs < s.cpuNs {
		s.gpuFreeNs = s.cpuNs
	}
}

// kernelExec is internal DES state for one kernel in a stage.
type kernelExec struct {
	node     *graph.Node
	stream   int
	gateNs   float64 // earliest start: launch issued and stream predecessor done
	pred     *kernelExec
	barrier  []*kernelExec // all must finish before this kernel may start
	cost     KernelCost
	remain   float64 // remaining work in full-device ns
	started  bool
	startNs  float64
	finishNs float64
}

// RunStage executes one schedule stage: groups of kernels, one stream per
// group, kernels within a group serialized, groups sharing the device
// concurrently. It ends with a cudaDeviceSynchronize. Returns the GPU-side
// duration of the stage (first kernel start to last kernel finish).
func (s *Sim) RunStage(groups [][]*graph.Node, batch int) float64 {
	return s.RunStageOpts(groups, batch, StageOpts{})
}

// StageOpts tunes per-stage execution semantics.
type StageOpts struct {
	// DispatchNs is extra CPU time per kernel before its launch call,
	// modeling framework-eager dispatch overhead (Python bookkeeping,
	// per-op type checks). A static IOS runtime uses 0.
	DispatchNs float64
}

// RunStageOpts is RunStage with explicit options.
func (s *Sim) RunStageOpts(groups [][]*graph.Node, batch int, opts StageOpts) float64 {
	s.LoadLibrary()
	var kernels []*kernelExec
	stageGPUStart := s.gpuFreeNs

	// CPU issues launches group-major (stream 0 fully, then stream 1, ...),
	// which is how a runtime walks a static schedule.
	prevInStream := map[int]*kernelExec{}
	for gi, group := range groups {
		for _, node := range group {
			if node.Kind == graph.OpInput {
				continue
			}
			s.cpuNs += opts.DispatchNs // framework-eager dispatch, if any
			launchStart := s.cpuNs
			s.events = append(s.events, Event{Kind: EvLaunch, Name: node.Name, Stream: gi, StartNs: launchStart, DurNs: s.Dev.KernelLaunchCPUNs})
			s.cpuNs += s.Dev.KernelLaunchCPUNs
			k := &kernelExec{node: node, stream: gi, cost: s.Dev.Cost(node, batch)}
			k.remain = k.cost.WorkNs
			k.gateNs = s.cpuNs // kernel cannot start before its launch call returns
			if k.gateNs < stageGPUStart {
				k.gateNs = stageGPUStart
			}
			if prev := prevInStream[gi]; prev != nil {
				k.prevDep(prev)
			}
			prevInStream[gi] = k
			kernels = append(kernels, k)
		}
	}

	gpuEnd := s.desRun(kernels)
	if gpuEnd < stageGPUStart {
		gpuEnd = stageGPUStart
	}
	s.gpuFreeNs = gpuEnd

	// cudaDeviceSynchronize: CPU waits for the GPU to drain.
	wait := gpuEnd - s.cpuNs
	if wait < 0 {
		wait = 0
	}
	dur := wait + s.Dev.SyncBaseNs
	s.events = append(s.events, Event{Kind: EvSync, Name: "stage_sync", StartNs: s.cpuNs, DurNs: dur})
	s.cpuNs += dur

	var stageStart float64 = -1
	for _, k := range kernels {
		if stageStart < 0 || k.startNs < stageStart {
			stageStart = k.startNs
		}
	}
	if stageStart < 0 {
		return 0
	}
	return gpuEnd - stageStart
}

// prevDep links k behind prev in the same stream: the gate is resolved
// lazily during the DES because prev's finish time is not yet known.
func (k *kernelExec) prevDep(prev *kernelExec) {
	k.pred = prev
}

// desRun advances the processor-sharing discrete-event simulation until
// every kernel completes, recording kernel events. Returns the finish time
// of the last kernel.
func (s *Sim) desRun(kernels []*kernelExec) float64 {
	if len(kernels) == 0 {
		return s.gpuFreeNs
	}
	// Start the clock at the earliest gate.
	t := kernels[0].effectiveGate()
	for _, k := range kernels {
		if g := k.effectiveGate(); g < t {
			t = g
		}
	}
	done := 0
	var end float64
	for done < len(kernels) {
		// Partition into active and pending.
		var active []*kernelExec
		nextGate := -1.0
		for _, k := range kernels {
			if k.finished() {
				continue
			}
			g := k.effectiveGate()
			if g <= t+1e-9 {
				if !k.started {
					k.started = true
					k.startNs = t
				}
				active = append(active, k)
			} else if nextGate < 0 || g < nextGate {
				nextGate = g
			}
		}
		if len(active) == 0 {
			if nextGate < 0 {
				break // should not happen: pending kernels with unresolved gates
			}
			t = nextGate
			continue
		}
		// Processor sharing: demand-proportional allocation capped at each
		// kernel's own occupancy.
		var demand float64
		for _, k := range active {
			demand += k.cost.Occupancy
		}
		scale := 1.0
		if demand > 1 {
			scale = 1 / demand
		}
		// Earliest completion among active at current rates.
		dt := -1.0
		for _, k := range active {
			rate := k.cost.Occupancy * scale
			need := k.remain / rate
			if dt < 0 || need < dt {
				dt = need
			}
		}
		if nextGate >= 0 && nextGate-t < dt {
			dt = nextGate - t
		}
		for _, k := range active {
			rate := k.cost.Occupancy * scale
			k.remain -= rate * dt
			if k.remain <= 1e-9 {
				k.remain = 0
				k.finishNs = t + dt
				done++
				if k.finishNs > end {
					end = k.finishNs
				}
				s.events = append(s.events, Event{
					Kind: EvKernel, Name: k.node.Name, Class: k.node.Kind.KernelClass(),
					Stream: k.stream, StartNs: k.startNs, DurNs: k.finishNs - k.startNs,
				})
			}
		}
		t += dt
	}
	// Keep the ledger sorted by start time for readable traces.
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].StartNs < s.events[j].StartNs })
	return end
}

func (k *kernelExec) finished() bool { return k.started && k.remain == 0 }

// effectiveGate returns the earliest time the kernel may start: its launch
// gate, its stream predecessor's finish, and any barrier dependencies
// (GPU-side stage synchronization).
func (k *kernelExec) effectiveGate() float64 {
	g := k.gateNs
	if k.pred != nil {
		if !k.pred.finished() {
			// Predecessor not finished yet: unreachable gate for now.
			return 1e30
		}
		if k.pred.finishNs > g {
			g = k.pred.finishNs
		}
	}
	for _, dep := range k.barrier {
		if !dep.finished() {
			return 1e30
		}
		if dep.finishNs > g {
			g = dep.finishNs
		}
	}
	return g
}

// RunPlan executes a whole multi-stage schedule the way the IOS runtime
// does on real hardware: the CPU enqueues every kernel of every stage in
// order, stage boundaries are enforced on the GPU (event barriers — a
// stage's kernels wait for all kernels of the previous stage), and the
// host synchronizes once at the end. This pipelines launch overhead under
// GPU execution instead of stalling the CPU at every stage.
// Returns the GPU-side duration (first kernel start to last finish).
func (s *Sim) RunPlan(stages [][][]*graph.Node, batch int, opts StageOpts) float64 {
	s.LoadLibrary()
	var kernels []*kernelExec
	stageGPUStart := s.gpuFreeNs
	var prevStage []*kernelExec

	for _, groups := range stages {
		var thisStage []*kernelExec
		prevInStream := map[int]*kernelExec{}
		for gi, group := range groups {
			for _, node := range group {
				if node.Kind == graph.OpInput {
					continue
				}
				s.cpuNs += opts.DispatchNs
				launchStart := s.cpuNs
				s.events = append(s.events, Event{Kind: EvLaunch, Name: node.Name, Stream: gi, StartNs: launchStart, DurNs: s.Dev.KernelLaunchCPUNs})
				s.cpuNs += s.Dev.KernelLaunchCPUNs
				k := &kernelExec{node: node, stream: gi, cost: s.Dev.Cost(node, batch)}
				k.remain = k.cost.WorkNs
				k.gateNs = s.cpuNs
				if k.gateNs < stageGPUStart {
					k.gateNs = stageGPUStart
				}
				if prev := prevInStream[gi]; prev != nil {
					k.pred = prev
				}
				k.barrier = prevStage
				prevInStream[gi] = k
				kernels = append(kernels, k)
				thisStage = append(thisStage, k)
			}
		}
		if len(thisStage) > 0 {
			prevStage = thisStage
		}
	}

	gpuEnd := s.desRun(kernels)
	if gpuEnd < stageGPUStart {
		gpuEnd = stageGPUStart
	}
	s.gpuFreeNs = gpuEnd

	// Single host synchronization at the end of the plan.
	wait := gpuEnd - s.cpuNs
	if wait < 0 {
		wait = 0
	}
	dur := wait + s.Dev.SyncBaseNs
	s.events = append(s.events, Event{Kind: EvSync, Name: "plan_sync", StartNs: s.cpuNs, DurNs: dur})
	s.cpuNs += dur

	var planStart float64 = -1
	for _, k := range kernels {
		if planStart < 0 || k.startNs < planStart {
			planStart = k.startNs
		}
	}
	if planStart < 0 {
		return 0
	}
	return gpuEnd - planStart
}

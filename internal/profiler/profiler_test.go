package profiler

import (
	"strings"
	"testing"

	"drainnet/internal/gpu"
	"drainnet/internal/graph"
	"drainnet/internal/ios"
)

func sppNet2Graph() *graph.Graph {
	g := graph.NewGraph("sppnet2", 4, 100, 100)
	x := g.Conv(g.In, "conv1", 64, 3, 1)
	x = g.Pool(x, "pool1", 2, 2)
	x = g.Conv(x, "conv2", 128, 3, 1)
	x = g.Pool(x, "pool2", 2, 2)
	x = g.Conv(x, "conv3", 256, 3, 1)
	x = g.Pool(x, "pool3", 2, 2)
	a := g.AdaptivePool(x, "spp5", 5)
	b := g.AdaptivePool(x, "spp2", 2)
	c := g.AdaptivePool(x, "spp1", 1)
	cat := g.Concat([]*graph.Node{a, b, c}, "concat")
	h := g.FC(cat, "fc1", 4096)
	g.FC(h, "head", 5)
	return g
}

func profileBatch(t *testing.T, batch int) Profile {
	t.Helper()
	dev := gpu.RTXA5500()
	g := sppNet2Graph()
	sched, err := ios.Optimize(g, ios.NewSimOracle(dev), batch)
	if err != nil {
		t.Fatal(err)
	}
	return Run(dev, g, sched, batch)
}

func TestMemopsCountsTransfers(t *testing.T) {
	p := profileBatch(t, 4)
	if p.Memops.Transfers != 2 { // one H2D input, one D2H output
		t.Fatalf("transfers = %d, want 2", p.Memops.Transfers)
	}
	wantBytes := int64(4*100*100*4*4 + 4*5*4)
	if p.Memops.BytesMoved != wantBytes {
		t.Fatalf("bytes = %d, want %d", p.Memops.BytesMoved, wantBytes)
	}
}

func TestMemopsPerSampleStabilizes(t *testing.T) {
	// Fig 7: per-image memop timing falls with batch and stabilizes once
	// the fixed transfer overhead amortizes (by batch 16).
	per := map[int]float64{}
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		per[b] = profileBatch(t, b).Memops.PerSampleNs
	}
	if !(per[1] > per[4] && per[4] > per[16]) {
		t.Fatalf("per-sample memops should fall with batch: %v", per)
	}
	// Stabilized: batch 16 → 64 changes by < 5%.
	if diff := (per[16] - per[64]) / per[16]; diff > 0.05 {
		t.Fatalf("memops not stabilized by batch 16: %v", per)
	}
}

func TestMemopsCalibrationNearPaper(t *testing.T) {
	// The paper reports stabilization at 19168 ns; our calibration should
	// land within 15% at batch 64.
	got := profileBatch(t, 64).Memops.PerSampleNs
	if got < 19168*0.85 || got > 19168*1.15 {
		t.Fatalf("stabilized memops = %.0f ns/image, want ≈19168", got)
	}
}

func TestAPIUsageSharesSumTo100(t *testing.T) {
	p := profileBatch(t, 8)
	var sum float64
	for _, s := range p.API.Shares {
		sum += s.Percent
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("API shares sum to %v", sum)
	}
}

func TestAPILibraryLoadDominatesAtBatch1(t *testing.T) {
	// Fig 8: at batch 1 cuLibraryLoadData takes the large majority of API
	// time and cudaDeviceSynchronize is negligible.
	p := profileBatch(t, 1)
	lib := p.API.Share("cuLibraryLoadData")
	sync := p.API.Share("cudaDeviceSynchronize")
	if lib < 50 {
		t.Fatalf("cuLibraryLoadData share at batch 1 = %.1f%%, want > 50%%", lib)
	}
	if sync > 20 {
		t.Fatalf("cudaDeviceSynchronize share at batch 1 = %.1f%%, want small", sync)
	}
	if lib <= sync {
		t.Fatal("library load must dominate sync at batch 1")
	}
}

func TestAPISyncOvertakesLibraryLoadAtBatch64(t *testing.T) {
	// Fig 8: by batch 64 cudaDeviceSynchronize exceeds cuLibraryLoadData.
	p := profileBatch(t, 64)
	lib := p.API.Share("cuLibraryLoadData")
	sync := p.API.Share("cudaDeviceSynchronize")
	if sync <= lib {
		t.Fatalf("sync (%.1f%%) must exceed library load (%.1f%%) at batch 64", sync, lib)
	}
}

func TestAPISyncShareMonotonicInBatch(t *testing.T) {
	prev := -1.0
	for _, b := range []int{1, 4, 16, 64} {
		s := profileBatch(t, b).API.Share("cudaDeviceSynchronize")
		if s < prev {
			t.Fatalf("sync share fell from %.2f to %.2f at batch %d", prev, s, b)
		}
		prev = s
	}
}

func TestKernelSharesSumTo100(t *testing.T) {
	p := profileBatch(t, 16)
	var sum float64
	for _, s := range p.Kernels.Shares {
		sum += s.Percent
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("kernel shares sum to %v", sum)
	}
}

func TestKernelMatMulDominatesAtBatch1(t *testing.T) {
	// Table 3 row 1: at batch 1 the FC (matmul) kernels dominate because
	// the GEMV reads the full weight matrix at low occupancy.
	p := profileBatch(t, 1)
	mm := p.Kernels.Share("MatMul")
	conv := p.Kernels.Share("Conv")
	if mm <= conv {
		t.Fatalf("batch 1: matmul (%.1f%%) must exceed conv (%.1f%%)", mm, conv)
	}
	if mm < 30 {
		t.Fatalf("batch 1 matmul share = %.1f%%, want ≥ 30%%", mm)
	}
}

func TestKernelConvDominatesAtBatch64(t *testing.T) {
	// Table 3 row 7: at batch 64 convolution seizes the lion's share.
	p := profileBatch(t, 64)
	conv := p.Kernels.Share("Conv")
	mm := p.Kernels.Share("MatMul")
	pool := p.Kernels.Share("Pooling")
	if conv <= mm || conv <= pool {
		t.Fatalf("batch 64: conv (%.1f%%) must dominate matmul (%.1f%%) and pooling (%.1f%%)", conv, mm, pool)
	}
	if conv < 50 {
		t.Fatalf("batch 64 conv share = %.1f%%, want ≥ 50%%", conv)
	}
}

func TestKernelTrendAcrossBatches(t *testing.T) {
	// Table 3 trend: matmul share shrinks, conv share grows with batch.
	shares := func(b int) (mm, conv float64) {
		p := profileBatch(t, b)
		return p.Kernels.Share("MatMul"), p.Kernels.Share("Conv")
	}
	mm1, conv1 := shares(1)
	mm64, conv64 := shares(64)
	if mm64 >= mm1 {
		t.Fatalf("matmul share must shrink: %.1f%% → %.1f%%", mm1, mm64)
	}
	if conv64 <= conv1 {
		t.Fatalf("conv share must grow: %.1f%% → %.1f%%", conv1, conv64)
	}
}

func TestRenderMentionsSections(t *testing.T) {
	p := profileBatch(t, 2)
	out := p.Render()
	for _, want := range []string{"GPU memops", "CUDA API usage", "GPU kernel classes", "cuLibraryLoadData"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyLedgerReports(t *testing.T) {
	if r := Memops(nil, 1); r.Transfers != 0 || r.TotalNs != 0 {
		t.Fatal("empty memops must be zero")
	}
	if r := APIUsage(nil, 1); len(r.Shares) != 0 {
		t.Fatal("empty API usage must be empty")
	}
	if r := Kernels(nil, 1); len(r.Shares) != 0 {
		t.Fatal("empty kernel report must be empty")
	}
}

func TestKernelStatsAggregation(t *testing.T) {
	p := profileBatch(t, 4)
	stats := KernelStats(p.Events)
	if len(stats.Rows) == 0 {
		t.Fatal("no kernel stats")
	}
	var pct, total float64
	for _, s := range stats.Rows {
		if s.Calls < 1 || s.AvgNs <= 0 || s.MinNs > s.MaxNs {
			t.Fatalf("bad stat row %+v", s)
		}
		if s.AvgNs < s.MinNs-1e-9 || s.AvgNs > s.MaxNs+1e-9 {
			t.Fatalf("avg outside [min,max]: %+v", s)
		}
		pct += s.Percent
		total += s.TotalNs
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("percents sum to %v", pct)
	}
	if diff := total - stats.TotalNs; diff > 1e-6 || diff < -1e-6 {
		t.Fatal("totals disagree")
	}
	// Rows must be sorted by descending total time.
	for i := 1; i < len(stats.Rows); i++ {
		if stats.Rows[i].TotalNs > stats.Rows[i-1].TotalNs {
			t.Fatal("rows not sorted")
		}
	}
	if !strings.Contains(stats.Render(), "kernel") {
		t.Fatal("render missing header")
	}
}

func TestKernelStatsEmpty(t *testing.T) {
	stats := KernelStats(nil)
	if len(stats.Rows) != 0 || stats.TotalNs != 0 {
		t.Fatal("empty ledger must give empty stats")
	}
}

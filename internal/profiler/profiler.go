// Package profiler is the repo's Nsight-Systems analog: it consumes the
// event ledger produced by the GPU simulator and renders the three report
// families the paper presents — GPU memory-operation timing (Fig 7), CUDA
// API time shares (Fig 8), and the kernel-class breakdown (Table 3).
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"drainnet/internal/gpu"
	"drainnet/internal/graph"
	"drainnet/internal/ios"
)

// MemopsReport summarizes host↔device memory operations (Fig 7).
type MemopsReport struct {
	Batch       int
	Transfers   int
	TotalNs     float64
	BytesMoved  int64
	PerSampleNs float64 // the paper's "GPU memops timing usage" per inferred image
}

// APIShare is one CUDA API's share of total API time (Fig 8).
type APIShare struct {
	API     string
	Calls   int
	TotalNs float64
	Percent float64
}

// APIUsageReport summarizes CPU-side CUDA API time (Fig 8).
type APIUsageReport struct {
	Batch   int
	TotalNs float64
	Shares  []APIShare // sorted by descending time
}

// Share returns the percentage for one API name (0 if absent).
func (r APIUsageReport) Share(api string) float64 {
	for _, s := range r.Shares {
		if s.API == api {
			return s.Percent
		}
	}
	return 0
}

// KernelClassShare is one kernel class's share of GPU kernel time (Table 3).
type KernelClassShare struct {
	Class   string
	Kernels int
	TotalNs float64
	Percent float64
}

// KernelReport summarizes GPU kernel time by class (Table 3).
type KernelReport struct {
	Batch   int
	TotalNs float64
	Shares  []KernelClassShare
}

// Share returns the percentage for one kernel class (0 if absent).
func (r KernelReport) Share(class string) float64 {
	for _, s := range r.Shares {
		if s.Class == class {
			return s.Percent
		}
	}
	return 0
}

// Memops builds the memory-operation report from a ledger.
func Memops(events []gpu.Event, batch int) MemopsReport {
	r := MemopsReport{Batch: batch}
	for _, e := range events {
		if e.Kind == gpu.EvMemcpyH2D || e.Kind == gpu.EvMemcpyD2H {
			r.Transfers++
			r.TotalNs += e.DurNs
			r.BytesMoved += e.Bytes
		}
	}
	if batch > 0 {
		r.PerSampleNs = r.TotalNs / float64(batch)
	}
	return r
}

// APIUsage builds the CUDA-API report from a ledger. Every CPU-side API
// call (library load, kernel launches, memcpys, synchronizations) counts
// toward the total; percentages are of total API time, matching how nsys
// reports its "CUDA API" summary.
func APIUsage(events []gpu.Event, batch int) APIUsageReport {
	byAPI := map[string]*APIShare{}
	var total float64
	for _, e := range events {
		if !e.Kind.IsAPI() {
			continue
		}
		name := e.Kind.String()
		s := byAPI[name]
		if s == nil {
			s = &APIShare{API: name}
			byAPI[name] = s
		}
		s.Calls++
		s.TotalNs += e.DurNs
		total += e.DurNs
	}
	rep := APIUsageReport{Batch: batch, TotalNs: total}
	for _, s := range byAPI {
		if total > 0 {
			s.Percent = s.TotalNs / total * 100
		}
		rep.Shares = append(rep.Shares, *s)
	}
	sort.Slice(rep.Shares, func(i, j int) bool { return rep.Shares[i].TotalNs > rep.Shares[j].TotalNs })
	return rep
}

// Kernels builds the kernel-class report from a ledger.
func Kernels(events []gpu.Event, batch int) KernelReport {
	byClass := map[string]*KernelClassShare{}
	var total float64
	for _, e := range events {
		if e.Kind != gpu.EvKernel {
			continue
		}
		s := byClass[e.Class]
		if s == nil {
			s = &KernelClassShare{Class: e.Class}
			byClass[e.Class] = s
		}
		s.Kernels++
		s.TotalNs += e.DurNs
		total += e.DurNs
	}
	rep := KernelReport{Batch: batch, TotalNs: total}
	for _, s := range byClass {
		if total > 0 {
			s.Percent = s.TotalNs / total * 100
		}
		rep.Shares = append(rep.Shares, *s)
	}
	sort.Slice(rep.Shares, func(i, j int) bool { return rep.Shares[i].TotalNs > rep.Shares[j].TotalNs })
	return rep
}

// Profile is the combined output of one profiled inference run.
type Profile struct {
	Batch   int
	Memops  MemopsReport
	API     APIUsageReport
	Kernels KernelReport
	Events  []gpu.Event
}

// Run profiles one cold-process inference (including the one-time library
// load, which is what nsys sees when profiling a fresh `python model.py`)
// of graph g under schedule sched at the given batch size.
func Run(dev gpu.DeviceConfig, g *graph.Graph, sched *ios.Schedule, batch int) Profile {
	rt := ios.NewRuntime(dev)
	sim := gpu.NewSim(dev)
	rt.Run(sim, g, sched, batch)
	ev := sim.Events()
	return Profile{
		Batch:   batch,
		Memops:  Memops(ev, batch),
		API:     APIUsage(ev, batch),
		Kernels: Kernels(ev, batch),
		Events:  ev,
	}
}

// Render writes a human-readable nsys-style summary.
func (p Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== profile (batch %d) ==\n", p.Batch)
	fmt.Fprintf(&b, "GPU memops: %d transfers, %.0f ns total, %.0f ns/image, %d bytes\n",
		p.Memops.Transfers, p.Memops.TotalNs, p.Memops.PerSampleNs, p.Memops.BytesMoved)
	b.WriteString("CUDA API usage:\n")
	for _, s := range p.API.Shares {
		fmt.Fprintf(&b, "  %-22s %6.2f%%  (%d calls, %.0f ns)\n", s.API, s.Percent, s.Calls, s.TotalNs)
	}
	b.WriteString("GPU kernel classes:\n")
	for _, s := range p.Kernels.Shares {
		fmt.Fprintf(&b, "  %-22s %6.2f%%  (%d kernels, %.0f ns)\n", s.Class, s.Percent, s.Kernels, s.TotalNs)
	}
	return b.String()
}

package profiler

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"drainnet/internal/gpu"
)

// KernelStat is one kernel's aggregate statistics across a profiled run,
// mirroring the per-kernel rows of `nsys profile --stats=true`.
type KernelStat struct {
	Name    string
	Class   string
	Calls   int
	TotalNs float64
	AvgNs   float64
	MinNs   float64
	MaxNs   float64
	Percent float64 // of total kernel time
}

// KernelStatsReport is the per-kernel summary table.
type KernelStatsReport struct {
	TotalNs float64
	Rows    []KernelStat // descending by total time
}

// KernelStats aggregates kernel events by kernel name.
func KernelStats(events []gpu.Event) KernelStatsReport {
	byName := map[string]*KernelStat{}
	var total float64
	for _, e := range events {
		if e.Kind != gpu.EvKernel {
			continue
		}
		s := byName[e.Name]
		if s == nil {
			s = &KernelStat{Name: e.Name, Class: e.Class, MinNs: math.Inf(1)}
			byName[e.Name] = s
		}
		s.Calls++
		s.TotalNs += e.DurNs
		if e.DurNs < s.MinNs {
			s.MinNs = e.DurNs
		}
		if e.DurNs > s.MaxNs {
			s.MaxNs = e.DurNs
		}
		total += e.DurNs
	}
	rep := KernelStatsReport{TotalNs: total}
	for _, s := range byName {
		s.AvgNs = s.TotalNs / float64(s.Calls)
		if total > 0 {
			s.Percent = s.TotalNs / total * 100
		}
		rep.Rows = append(rep.Rows, *s)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].TotalNs > rep.Rows[j].TotalNs })
	return rep
}

// Render writes the nsys-style stats table.
func (r KernelStatsReport) Render() string {
	var b strings.Builder
	b.WriteString("per-kernel statistics (nsys --stats style):\n")
	fmt.Fprintf(&b, "  %7s %7s %12s %12s %12s %12s  %-16s %s\n",
		"time%", "calls", "total ns", "avg ns", "min ns", "max ns", "class", "kernel")
	for _, s := range r.Rows {
		fmt.Fprintf(&b, "  %6.1f%% %7d %12.0f %12.0f %12.0f %12.0f  %-16s %s\n",
			s.Percent, s.Calls, s.TotalNs, s.AvgNs, s.MinNs, s.MaxNs, s.Class, s.Name)
	}
	return b.String()
}

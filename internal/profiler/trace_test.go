package profiler

import (
	"bytes"
	"encoding/json"
	"testing"

	"drainnet/internal/gpu"
)

func TestWriteChromeTraceValidJSON(t *testing.T) {
	p := profileBatch(t, 4)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p.Events); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != len(p.Events) {
		t.Fatalf("trace has %d events, ledger has %d", len(events), len(p.Events))
	}
	sawKernel, sawAPI := false, false
	for _, e := range events {
		switch {
		case e["cat"] == "cuda-api":
			sawAPI = true
			if e["tid"].(float64) != 0 {
				t.Fatal("API events must be on the CPU track")
			}
		default:
			sawKernel = true
			if e["tid"].(float64) < 1 {
				t.Fatal("kernel events must be on GPU stream tracks")
			}
		}
		if e["ph"] != "X" {
			t.Fatal("all events must be complete events")
		}
	}
	if !sawKernel || !sawAPI {
		t.Fatal("trace must contain both kernel and API events")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("empty ledger must give an empty array")
	}
}

func TestTraceCarriesBytesForMemcpy(t *testing.T) {
	ev := []gpu.Event{{Kind: gpu.EvMemcpyH2D, Name: "input", StartNs: 0, DurNs: 10, Bytes: 4096}}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ev); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	args := events[0]["args"].(map[string]interface{})
	if args["bytes"].(float64) != 4096 {
		t.Fatalf("bytes arg = %v", args["bytes"])
	}
}

package profiler

import (
	"encoding/json"
	"fmt"
	"io"

	"drainnet/internal/gpu"
)

// traceEvent is one entry in Chrome's trace-event JSON format ("X" =
// complete event with duration). Load the output at chrome://tracing or
// ui.perfetto.dev to browse the simulated timeline the way one browses
// an nsys capture.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`  // microseconds
	Dur  float64                `json:"dur"` // microseconds
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Track IDs in the exported trace: the CPU API timeline, then one GPU
// track per stream.
const (
	trackCPU      = 0
	trackGPUFirst = 1
)

// WriteChromeTrace serializes the event ledger to the Chrome trace-event
// JSON array format. CPU-side API calls land on tid 0; each GPU stream
// gets its own tid.
func WriteChromeTrace(w io.Writer, events []gpu.Event) error {
	var out []traceEvent
	for _, e := range events {
		te := traceEvent{
			Name: e.Kind.String(),
			Ph:   "X",
			Ts:   e.StartNs / 1e3,
			Dur:  e.DurNs / 1e3,
			PID:  1,
		}
		if e.Kind == gpu.EvKernel {
			te.Name = e.Name
			te.Cat = "kernel/" + e.Class
			te.TID = trackGPUFirst + e.Stream
			te.Args = map[string]interface{}{"class": e.Class, "stream": e.Stream}
		} else {
			te.Cat = "cuda-api"
			te.TID = trackCPU
			if e.Name != "" && e.Name != e.Kind.String() {
				te.Args = map[string]interface{}{"op": e.Name}
			}
			if e.Bytes > 0 {
				if te.Args == nil {
					te.Args = map[string]interface{}{}
				}
				te.Args["bytes"] = e.Bytes
			}
		}
		out = append(out, te)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("profiler: encode chrome trace: %w", err)
	}
	return nil
}

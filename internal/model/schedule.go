package model

import (
	"fmt"

	"drainnet/internal/graph"
	"drainnet/internal/ios"
	"drainnet/internal/metrics"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// BuildScaledGraph constructs the inference IR for the architecture at
// the config's width scale — the graph whose shapes match the network
// Build returns, as the real-execution scheduler requires. (BuildGraph
// keeps the unscaled paper architecture for the GPU-simulator
// experiments, which price Table 1 models at full width.)
func (c Config) BuildScaledGraph() (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := graph.NewGraph(c.Name, c.InBands, c.InSize, c.InSize)
	x := g.In
	for i, cv := range c.Convs {
		x = g.Conv(x, fmt.Sprintf("conv%d", i+1), c.filters(cv.Filters), cv.Kernel, cv.Stride)
		if cv.PoolSize > 0 {
			x = g.Pool(x, fmt.Sprintf("pool%d", i+1), cv.PoolSize, cv.PoolStride)
		}
	}
	var branches []*graph.Node
	for _, l := range c.SPPLevels {
		branches = append(branches, g.AdaptivePool(x, fmt.Sprintf("spp_l%d", l), l))
	}
	cat := g.Concat(branches, "spp_concat")
	h := g.FC(cat, "fc1", c.filters(c.FCWidth))
	g.FC(h, "head", c.HeadOut)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SchedulePlan is an IOS execution plan for serving one model: the
// scaled operator graph plus measured-cost-optimal schedules for the two
// batch sizes the batcher actually runs (single requests and full
// batches). Replicas compile the plan against their own network clone
// with CompileExecutors.
type SchedulePlan struct {
	Config   Config
	Graph    *graph.Graph
	MaxBatch int
	// Batch1 serves single-clip batches; BatchN serves everything larger
	// (optimized at MaxBatch — intermediate sizes reuse it, since stage
	// structure is stable across nearby batch sizes).
	Batch1 *ios.Schedule
	BatchN *ios.Schedule
	// Cache holds the operator measurements behind the schedules; save it
	// so later starts skip re-measurement.
	Cache *ios.CostCache
}

// OptimizeSchedules benchmarks net's operators on this machine (through
// the measured cost oracle, reusing any prior measurements in cache —
// nil for none) and runs the IOS dynamic program at batch 1 and
// maxBatch. net must implement cfg at its width scale; it is prepared
// for inference (weights packed) as a side effect.
func OptimizeSchedules(cfg Config, net *nn.Sequential, maxBatch int, cache *ios.CostCache) (*SchedulePlan, error) {
	g, err := cfg.BuildScaledGraph()
	if err != nil {
		return nil, err
	}
	nn.PrepareInference(net)
	prog, err := nn.CompileGraph(net, g)
	if err != nil {
		return nil, err
	}
	oracle := ios.NewMeasuredOracle(prog, cache)
	s1, err := ios.Optimize(g, oracle, 1)
	if err != nil {
		return nil, err
	}
	sN := s1
	if maxBatch > 1 {
		if sN, err = ios.Optimize(g, oracle, maxBatch); err != nil {
			return nil, err
		}
	}
	if err := oracle.Err(); err != nil {
		return nil, fmt.Errorf("model: operator measurement failed: %w", err)
	}
	return &SchedulePlan{
		Config:   cfg,
		Graph:    g,
		MaxBatch: maxBatch,
		Batch1:   s1,
		BatchN:   sN,
		Cache:    oracle.Cache(),
	}, nil
}

// CompileExecutors binds the plan to one serving replica's network
// (which must implement the plan's config — typically a CloneShared of
// the network the plan was optimized on) and returns executors for the
// two planned batch regimes. When the plan has a single schedule, both
// returns are the same executor.
func (p *SchedulePlan) CompileExecutors(net *nn.Sequential) (exec1, execN *nn.ScheduleExecutor, err error) {
	prog, err := nn.CompileGraph(net, p.Graph)
	if err != nil {
		return nil, nil, err
	}
	if exec1, err = nn.NewScheduleExecutor(prog, p.Batch1); err != nil {
		return nil, nil, err
	}
	if p.BatchN == p.Batch1 {
		return exec1, exec1, nil
	}
	if execN, err = nn.NewScheduleExecutor(prog, p.BatchN); err != nil {
		return nil, nil, err
	}
	return exec1, execN, nil
}

// InferDetectScheduled is InferDetect running under an IOS schedule:
// the executor runs the network stage by stage (concurrent groups on
// the shared worker pool), and the head output decodes into dst exactly
// as InferDetect does. Output is bit-for-bit identical to InferDetect
// and, like it, allocation-free in steady state with a warm arena.
func InferDetectScheduled(exec *nn.ScheduleExecutor, x *tensor.Tensor, a *tensor.Arena, dst []metrics.Detection) []metrics.Detection {
	return decodeHeadInto(exec.Infer(x, a), dst)
}

// InferDetectScheduledHook is InferDetectScheduled with per-group stage
// timing reported through hook; the telemetry pipeline uses it on
// trace-sampled requests.
func InferDetectScheduledHook(exec *nn.ScheduleExecutor, x *tensor.Tensor, a *tensor.Arena, dst []metrics.Detection, hook nn.StageHook) []metrics.Detection {
	return decodeHeadInto(exec.InferWithHook(x, a, hook), dst)
}

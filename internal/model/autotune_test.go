package model

import (
	"math/rand"
	"testing"

	"drainnet/internal/metrics"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

// validKernelNames accepts every reportable kernel string.
var validKernelNames = map[string]bool{
	"im2col": true, "winograd": true, "nchwc": true, "direct": true, KernelInt8: true,
}

// The tuner must produce one entry per conv layer, pick only eligible
// kernels, and return a servable net. With a generous epsilon the first
// measured mix must survive the gate unchanged.
func TestAutotuneKernels(t *testing.T) {
	net := inferTestNet(t)
	ds := quantCalibData(rand.New(rand.NewSource(21)), 32)
	dec, err := QuantizeGated(net, ds, QuantOptions{MaxAPDrop: 1.0})
	if err != nil {
		t.Fatalf("QuantizeGated: %v", err)
	}

	plan, err := AutotuneKernels(net, dec.Net, []int{4, 40, 40}, ds, KernelOptions{MaxAPDrop: 1.0})
	if err != nil {
		t.Fatalf("AutotuneKernels: %v", err)
	}
	if len(plan.Layers) == 0 {
		t.Fatal("no conv layers tuned")
	}
	if plan.Served == nil {
		t.Fatal("plan has no served net")
	}
	if plan.Cache == nil {
		t.Fatal("plan has no measurement cache")
	}
	if plan.Demotions != 0 {
		t.Fatalf("epsilon 1.0 must keep the first mix (demotions %d, drop %v)", plan.Demotions, plan.Drop)
	}
	for _, l := range plan.Layers {
		if !validKernelNames[l.Batch1] || !validKernelNames[l.BatchN] {
			t.Fatalf("layer %d: invalid kernels %q/%q", l.Layer, l.Batch1, l.BatchN)
		}
		if l.Precision != string(PrecisionFP32) && l.Precision != string(PrecisionInt8) {
			t.Fatalf("layer %d: invalid precision %q", l.Layer, l.Precision)
		}
		if (l.Precision == string(PrecisionInt8)) != (l.Batch1 == KernelInt8) {
			t.Fatalf("layer %d: precision %q inconsistent with kernel %q", l.Layer, l.Precision, l.Batch1)
		}
		if l.SpeedupB1 <= 0 || l.SpeedupBN <= 0 {
			t.Fatalf("layer %d: non-positive speedups %+v", l.Layer, l)
		}
	}
	if plan.Mix() == "" {
		t.Fatal("empty mix summary")
	}

	// The served net must actually run, at both batch buckets.
	rng := rand.New(rand.NewSource(22))
	a := tensor.NewArena()
	for _, b := range []int{1, 16} {
		x := randClip(rng, b, 4, 40)
		a.Reset()
		dets := InferDetect(plan.Served, x, a, nil)
		if len(dets) != b {
			t.Fatalf("batch %d: served net returned %d detections", b, len(dets))
		}
	}
}

// Without calibration data there is nothing to prove Winograd safe, so
// every fp32 layer must end on an exact kernel and the served net is the
// fp32 net itself.
func TestAutotuneKernelsNoCalib(t *testing.T) {
	net := inferTestNet(t)
	plan, err := AutotuneKernels(net, nil, []int{4, 40, 40}, nil, KernelOptions{})
	if err != nil {
		t.Fatalf("AutotuneKernels: %v", err)
	}
	if plan.Served != net {
		t.Fatal("without a quantized net the served net must be the fp32 net")
	}
	for _, l := range plan.Layers {
		if l.Precision != string(PrecisionFP32) {
			t.Fatalf("layer %d: precision %q without a quantized net", l.Layer, l.Precision)
		}
		if l.Batch1 == "winograd" || l.BatchN == "winograd" {
			t.Fatalf("layer %d: winograd served without calibration data", l.Layer)
		}
	}
	if plan.FP32AP != 0 || plan.TunedAP != 0 || plan.Drop != 0 {
		t.Fatalf("no-calib plan must not report APs: %+v", plan)
	}
	// The retargeted choices must still be installed and servable.
	rng := rand.New(rand.NewSource(23))
	a := tensor.NewArena()
	x := randClip(rng, 4, 4, 40)
	if dets := InferDetect(plan.Served, x, a, nil); len(dets) != 4 {
		t.Fatalf("served net returned %d detections, want 4", len(dets))
	}
}

// The gate invariant: whatever the epsilon, a served mix containing any
// non-exact choice must have passed it, and warm-cache retuning must
// reproduce the exact same plan.
func TestAutotuneKernelsGateAndWarmCache(t *testing.T) {
	net := inferTestNet(t)
	ds := quantCalibData(rand.New(rand.NewSource(24)), 32)
	dec, err := QuantizeGated(net, ds, QuantOptions{MaxAPDrop: 1.0})
	if err != nil {
		t.Fatalf("QuantizeGated: %v", err)
	}
	plan, err := AutotuneKernels(net, dec.Net, []int{4, 40, 40}, ds, KernelOptions{MaxAPDrop: -2})
	if err != nil {
		t.Fatalf("AutotuneKernels: %v", err)
	}
	exact := true
	for _, l := range plan.Layers {
		if l.Precision == string(PrecisionInt8) || l.Batch1 == "winograd" || l.BatchN == "winograd" {
			exact = false
		}
	}
	if !exact && plan.Drop > plan.Epsilon {
		t.Fatalf("non-exact mix served with drop %v > epsilon %v", plan.Drop, plan.Epsilon)
	}
	if exact && plan.Drop != 0 {
		t.Fatalf("exact mix must report zero drop, got %v", plan.Drop)
	}

	// Retune from the returned cache: every measurement is warm, so the
	// selection (a pure function of the cached costs) must be identical.
	again, err := AutotuneKernels(net, dec.Net, []int{4, 40, 40}, ds, KernelOptions{MaxAPDrop: -2, Cache: plan.Cache})
	if err != nil {
		t.Fatalf("AutotuneKernels(warm): %v", err)
	}
	if len(again.Layers) != len(plan.Layers) {
		t.Fatalf("warm retune changed layer count: %d vs %d", len(again.Layers), len(plan.Layers))
	}
	for i := range plan.Layers {
		if again.Layers[i] != plan.Layers[i] {
			t.Fatalf("warm retune changed layer %d: %+v vs %+v", i, again.Layers[i], plan.Layers[i])
		}
	}
}

// Steady-state serving on the tuned kernels must allocate nothing, like
// the im2col and int8 fast paths. Wired into `make check` (check-allocs).
func TestTunedInferSteadyStateZeroAlloc(t *testing.T) {
	net := inferTestNet(t)
	for _, m := range net.Modules() {
		c, ok := nn.Unwrap(m).(*nn.Conv2D)
		if !ok || c.Algo != nn.ConvIm2Col {
			continue
		}
		// Exercise every variant: winograd at batch>1 where eligible,
		// direct at batch 1, NCHWc otherwise.
		bn := nn.KernelNCHWc
		if c.KernelEligible(nn.KernelWinograd) {
			bn = nn.KernelWinograd
		}
		c.SetKernels(nn.KernelDirect, bn)
	}
	nn.PrepareInference(net)
	rng := rand.New(rand.NewSource(25))
	x1 := randClip(rng, 1, 4, 40)
	xN := randClip(rng, 4, 4, 40)
	a := tensor.NewArena()
	var dets []metrics.Detection
	run := func() {
		a.Reset()
		dets = InferDetect(net, x1, a, dets)
		a.Reset()
		dets = InferDetect(net, xN, a, dets)
	}
	run()
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("steady-state tuned InferDetect allocates %v times per run, want 0", allocs)
	}
}

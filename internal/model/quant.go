package model

import (
	"fmt"

	"drainnet/internal/metrics"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// This file implements the accuracy gate for int8 serving: the paper's
// selection rule is "maximize efficiency e(n) subject to accuracy
// a(n) > A", and quantization is an efficiency move that must clear the
// same bar. QuantizeGated builds the int8 network, evaluates both
// precisions on a held-out calibration split, and only enables int8 when
// the AP drop stays within a configurable epsilon.

// Precision names the numeric precision of a serving network.
type Precision string

const (
	// PrecisionFP32 is the packed float32 fast path.
	PrecisionFP32 Precision = "fp32"
	// PrecisionInt8 is the quantized path (per-channel weights, affine
	// activations); serving with it requires the accuracy gate to pass.
	PrecisionInt8 Precision = "int8"
	// PrecisionAuto serves int8 when the gate passes and falls back to
	// fp32 otherwise.
	PrecisionAuto Precision = "auto"
)

// ParsePrecision validates a user-supplied precision mode.
func ParsePrecision(s string) (Precision, error) {
	switch p := Precision(s); p {
	case PrecisionFP32, PrecisionInt8, PrecisionAuto:
		return p, nil
	}
	return "", fmt.Errorf("model: unknown precision %q (want fp32, int8 or auto)", s)
}

// QuantOptions configures quantization and its accuracy gate.
type QuantOptions struct {
	// MaxAPDrop is the gate epsilon: the largest tolerated absolute AP
	// degradation (fp32 AP − int8 AP) on the calibration split.
	MaxAPDrop float64
	// IoU is the AP matching threshold (0 → 0.5, the paper's setting).
	IoU float64
	// CalibBatch is the batch size for calibration and evaluation
	// forwards (0 → 16).
	CalibBatch int
	// MaxCalibBatches caps how many batches feed the min/max observers;
	// the AP evaluation always uses the full split (0 → 8).
	MaxCalibBatches int
}

// QuantDecision is the outcome of an accuracy-gated quantization.
type QuantDecision struct {
	// Net is the quantized network (valid and runnable even when the
	// gate failed — benchmarks compare it regardless).
	Net    *nn.Sequential
	Report nn.QuantReport
	// FP32AP and Int8AP are the APs of the two precisions on the
	// calibration split; Drop = FP32AP − Int8AP.
	FP32AP, Int8AP, Drop float64
	// Epsilon echoes the gate threshold the decision was made against.
	Epsilon float64
	// Enabled reports whether int8 cleared the gate: at least one layer
	// actually quantized and Drop ≤ Epsilon.
	Enabled bool
}

// QuantizeGated calibrates net on the held-out split, builds the int8
// copy, and evaluates the accuracy gate. net itself is not modified.
func QuantizeGated(net *nn.Sequential, calib *terrain.Dataset, opts QuantOptions) (*QuantDecision, error) {
	if calib == nil || len(calib.Samples) == 0 {
		return nil, fmt.Errorf("model: quantization needs a non-empty calibration dataset")
	}
	if opts.IoU == 0 {
		opts.IoU = 0.5
	}
	if opts.CalibBatch <= 0 {
		opts.CalibBatch = 16
	}
	if opts.MaxCalibBatches <= 0 {
		opts.MaxCalibBatches = 8
	}

	var batches []*tensor.Tensor
	for lo := 0; lo < len(calib.Samples) && len(batches) < opts.MaxCalibBatches; lo += opts.CalibBatch {
		hi := lo + opts.CalibBatch
		if hi > len(calib.Samples) {
			hi = len(calib.Samples)
		}
		x, _ := calib.Batch(lo, hi)
		batches = append(batches, x)
	}
	cal := nn.Calibrate(net, batches)
	qnet, rep, err := nn.QuantizeForInference(net, cal)
	if err != nil {
		return nil, err
	}
	dec := &QuantDecision{
		Net:     qnet,
		Report:  rep,
		FP32AP:  evalAP(net, calib, opts.IoU, opts.CalibBatch),
		Int8AP:  evalAP(qnet, calib, opts.IoU, opts.CalibBatch),
		Epsilon: opts.MaxAPDrop,
	}
	dec.Drop = dec.FP32AP - dec.Int8AP
	dec.Enabled = rep.Quantized > 0 && dec.Drop <= opts.MaxAPDrop
	return dec, nil
}

// evalAP scores net on ds through the inference fast path (InferDetect
// is bit-identical to Detect, and it is the path serving actually runs).
func evalAP(net *nn.Sequential, ds *terrain.Dataset, iou float64, batch int) float64 {
	a := tensor.NewArena()
	var dets []metrics.Detection
	var gts []metrics.GroundTruth
	scratch := make([]metrics.Detection, 0, batch)
	for lo := 0; lo < len(ds.Samples); lo += batch {
		hi := lo + batch
		if hi > len(ds.Samples) {
			hi = len(ds.Samples)
		}
		x, targets := ds.Batch(lo, hi)
		a.Reset()
		scratch = InferDetect(net, x, a, scratch[:0])
		dets = append(dets, scratch...)
		gts = append(gts, TargetsToGroundTruth(targets)...)
	}
	return metrics.Evaluate(dets, gts, iou).AP
}

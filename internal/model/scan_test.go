package model

import (
	"math/rand"
	"testing"

	"drainnet/internal/hydro"
	"drainnet/internal/tensor"
)

func TestSuppressHitsKeepsBestPerCluster(t *testing.T) {
	hits := []ScanHit{
		{Point: hydro.Point{R: 10, C: 10}, Score: 0.90},
		{Point: hydro.Point{R: 12, C: 11}, Score: 0.99}, // same cluster, higher
		{Point: hydro.Point{R: 50, C: 50}, Score: 0.95}, // separate
	}
	out := SuppressHits(hits, 8)
	if len(out) != 2 {
		t.Fatalf("survivors = %d, want 2", len(out))
	}
	if out[0].Score != 0.99 || out[0].Point.R != 12 {
		t.Fatalf("cluster winner wrong: %+v", out[0])
	}
	if out[1].Point.R != 50 {
		t.Fatalf("separate hit lost: %+v", out[1])
	}
}

func TestSuppressHitsSortedByScore(t *testing.T) {
	hits := []ScanHit{
		{Point: hydro.Point{R: 0, C: 0}, Score: 0.5},
		{Point: hydro.Point{R: 100, C: 0}, Score: 0.9},
		{Point: hydro.Point{R: 0, C: 100}, Score: 0.7},
	}
	out := SuppressHits(hits, 5)
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatal("output not sorted by score")
		}
	}
}

func TestSuppressHitsEmpty(t *testing.T) {
	if out := SuppressHits(nil, 10); len(out) != 0 {
		t.Fatal("empty input must give empty output")
	}
}

func TestMatchHits(t *testing.T) {
	truth := []hydro.Point{{R: 10, C: 10}, {R: 80, C: 80}}
	hits := []ScanHit{
		{Point: hydro.Point{R: 12, C: 9}, Score: 1},  // matches first
		{Point: hydro.Point{R: 40, C: 40}, Score: 1}, // false positive
	}
	recall, precision := MatchHits(hits, truth, 5)
	if recall != 0.5 {
		t.Fatalf("recall = %v, want 0.5", recall)
	}
	if precision != 0.5 {
		t.Fatalf("precision = %v, want 0.5", precision)
	}
	if r, p := MatchHits(nil, truth, 5); r != 0 || p != 0 {
		t.Fatal("empty hits must give zeros")
	}
}

func TestScanMechanics(t *testing.T) {
	// Mechanics only (no training): an untrained net must scan without
	// error, and every returned point must lie inside the raster.
	rng := rand.New(rand.NewSource(71))
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 32)
	net, err := cfg.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(4, 96, 96)
	img.RandUniform(rng, 0, 1)
	sc := DefaultScanConfig(32)
	sc.MinScore = 0 // keep everything: exercises decode + NMS
	hits, err := Scan(net, img, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("MinScore=0 scan must return hits")
	}
	for _, h := range hits {
		if h.Point.R < 0 || h.Point.R >= 96 || h.Point.C < 0 || h.Point.C >= 96 {
			t.Fatalf("hit outside raster: %+v", h)
		}
	}
	// NMS invariant: no two survivors within the merge radius.
	r2 := sc.MergeRadius * sc.MergeRadius
	for i := range hits {
		for j := i + 1; j < len(hits); j++ {
			dr := hits[i].Point.R - hits[j].Point.R
			dc := hits[i].Point.C - hits[j].Point.C
			if dr*dr+dc*dc <= r2 {
				t.Fatalf("hits %d and %d violate NMS radius", i, j)
			}
		}
	}
}

func TestScanRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	net, err := OriginalSPPNet().Scaled(16).WithInput(4, 32).Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(4, 64, 64)
	if _, err := Scan(net, img, ScanConfig{Window: 4, Stride: 1, Batch: 1}); err == nil {
		t.Fatal("expected error for tiny window")
	}
	if _, err := Scan(net, img, ScanConfig{Window: 32, Stride: 0, Batch: 1}); err == nil {
		t.Fatal("expected error for zero stride")
	}
	if _, err := Scan(net, tensor.New(4, 64), DefaultScanConfig(32)); err == nil {
		t.Fatal("expected error for non-raster input")
	}
}

package model

import (
	"math/rand"
	"testing"

	"drainnet/internal/graph"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
)

func TestPresetsMatchTable1(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{OriginalSPPNet(), "C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP4,2,1-F1024"},
		{SPPNet1(), "C64,5,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP4,2,1-F1024"},
		{SPPNet2(), "C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP5,2,1-F4096"},
		{SPPNet3(), "C64,3,1-P2,2-C128,3,1-P2,2-C256,3,1-P2,2-SPP5,2,1-F2048"},
	}
	for _, c := range cases {
		if got := c.cfg.Notation(); got != c.want {
			t.Fatalf("%s notation = %q, want %q", c.cfg.Name, got, c.want)
		}
	}
}

func TestParseNotationRoundTrip(t *testing.T) {
	for _, cfg := range Candidates() {
		parsed, err := ParseNotation(cfg.Name, cfg.Notation())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if parsed.Notation() != cfg.Notation() {
			t.Fatalf("round trip changed notation: %q vs %q", parsed.Notation(), cfg.Notation())
		}
	}
}

func TestParseNotationErrors(t *testing.T) {
	for _, bad := range []string{
		"", "X9", "C64,3", "P2,2-C64,3,1", "C64,3,1-SPP0-F128", "C64,3,1-SPPx-F128",
		"C64,3,1-SPP2,1", "C64,3,1-F0-SPP2,1",
	} {
		if _, err := ParseNotation("bad", bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestValidateCatchesVanishingFeatureMap(t *testing.T) {
	cfg := OriginalSPPNet().WithInput(4, 8) // 8→4→2→1: SPP level 4 impossible
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSPPFeatures(t *testing.T) {
	cfg := SPPNet2()
	if got := cfg.SPPFeatures(); got != 256*(25+4+1) {
		t.Fatalf("SPPFeatures = %d, want %d", got, 256*30)
	}
	scaled := cfg.Scaled(4)
	if got := scaled.SPPFeatures(); got != 64*30 {
		t.Fatalf("scaled SPPFeatures = %d, want %d", got, 64*30)
	}
}

func TestBuildForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := OriginalSPPNet().Scaled(8).WithInput(4, 48)
	net, err := cfg.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 4, 48, 48)
	x.RandNormal(rng, 0, 1)
	out := net.Forward(x)
	if out.Dim(0) != 2 || out.Dim(1) != 5 {
		t.Fatalf("output shape %v, want [2 5]", out.Shape())
	}
}

func TestBuildAcceptsVariableInputSizes(t *testing.T) {
	// The defining SPP-Net property: one network, any input size.
	rng := rand.New(rand.NewSource(2))
	cfg := OriginalSPPNet().Scaled(8).WithInput(4, 48)
	net, err := cfg.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{40, 48, 64, 100} {
		x := tensor.New(1, 4, size, size)
		x.RandNormal(rng, 0, 1)
		out := net.Forward(x)
		if out.Dim(1) != 5 {
			t.Fatalf("size %d: output %v", size, out.Shape())
		}
	}
}

func TestBuildGraphMatchesArchitecture(t *testing.T) {
	cfg := SPPNet2()
	g, err := cfg.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	// input + 3 conv + 3 pool + 3 spp + concat + 2 fc = 13 nodes.
	if len(g.Nodes) != 13 {
		t.Fatalf("graph nodes = %d, want 13", len(g.Nodes))
	}
	var sppCount int
	for _, n := range g.Nodes {
		if n.Kind == graph.OpAdaptivePool {
			sppCount++
		}
	}
	if sppCount != len(cfg.SPPLevels) {
		t.Fatalf("spp branches = %d, want %d", sppCount, len(cfg.SPPLevels))
	}
}

func TestBuildGraphFC1InputWidth(t *testing.T) {
	cfg := SPPNet2()
	g, err := cfg.BuildGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Name == "fc1" {
			if n.InShape[0] != cfg.SPPFeatures() {
				t.Fatalf("fc1 input %d, want %d", n.InShape[0], cfg.SPPFeatures())
			}
			return
		}
	}
	t.Fatal("fc1 not found")
}

func TestDetectScoresAndClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := OriginalSPPNet().Scaled(16).WithInput(4, 32)
	net, err := cfg.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 4, 32, 32)
	x.RandNormal(rng, 0, 1)
	dets := Detect(net, x)
	if len(dets) != 3 {
		t.Fatalf("detections = %d", len(dets))
	}
	for _, d := range dets {
		if d.Score < 0 || d.Score > 1 {
			t.Fatalf("score %v out of range", d.Score)
		}
		if d.Box.CX < 0 || d.Box.CX > 1 || d.Box.W < 0 || d.Box.W > 1 {
			t.Fatalf("box %v not clamped", d.Box)
		}
	}
}

func TestTargetsToGroundTruth(t *testing.T) {
	targets := []nn.DetectionTarget{
		{HasObject: true, CX: 0.5, CY: 0.25, W: 0.1, H: 0.2},
		{HasObject: false},
	}
	gts := TargetsToGroundTruth(targets)
	if len(gts) != 2 {
		t.Fatalf("len = %d", len(gts))
	}
	if !gts[0].HasObject || gts[0].Box.CY != 0.25 {
		t.Fatalf("gt[0] = %+v", gts[0])
	}
	if gts[1].HasObject {
		t.Fatal("gt[1] must be background")
	}
}

package model

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"drainnet/internal/metrics"
	"drainnet/internal/nn"
	"drainnet/internal/tensor"
	"drainnet/internal/terrain"
)

// Dynamic inference: sweep traffic over a watershed raster is dominated
// by empty tiles, so a fixed-cost forward pass wastes most of its FLOPs
// on clips whose negativity is decidable early and cheaply. This file
// plans and executes the accuracy-gated dynamic path:
//
//   - an early-exit head (a linear probe on the globally pooled conv-
//     stack output) lets confident negatives skip the SPP+FC tail;
//   - spatial masking (nn.KernelMasked) skips im2col+GEMM on low-energy
//     output-row bands of every conv after the first;
//   - a difficulty router assigns easy clips to the int8 replica path
//     and hard clips to fp32 when precision "auto" is enabled.
//
// All three are efficiency moves under the paper's selection rule
// "maximize e(n) subject to a(n) > A": PlanDynamic evaluates the
// composed path against the fp32 baseline on a held-out split and
// demotes mechanisms (masking first, then the exit) until the AP drop
// fits inside the same epsilon the quantization gate uses. With every
// mechanism disabled the dynamic path degenerates to InferDetect and is
// bit-for-bit identical to it.

// ExitStats accumulates early-exit counts across every replica sharing
// a plan. Safe for concurrent use.
type ExitStats struct {
	exited atomic.Int64
	total  atomic.Int64
}

// Add records one batch's exit counts.
func (s *ExitStats) Add(exited, total int64) {
	if s == nil {
		return
	}
	s.exited.Add(exited)
	s.total.Add(total)
}

// Counts returns the cumulative (exited, total) sample counts.
func (s *ExitStats) Counts() (exited, total int64) {
	return s.exited.Load(), s.total.Load()
}

// Rate returns the cumulative fraction of samples that exited early.
func (s *ExitStats) Rate() float64 {
	e, t := s.Counts()
	if t == 0 {
		return 0
	}
	return float64(e) / float64(t)
}

// Reset clears the counters.
func (s *ExitStats) Reset() {
	s.exited.Store(0)
	s.total.Store(0)
}

// ExitHead is a linear probe on the globally average-pooled output of
// the conv stack (the tensor entering SPP). A sample exits early — its
// detection becomes a confident negative with the probe's sigmoid as
// score — when its logit is at or below Threshold. The threshold is
// calibrated by PlanDynamic so the composed AP drop stays within
// epsilon; a head with Threshold = -Inf never exits.
type ExitHead struct {
	// W has one weight per pre-SPP channel; B is the bias.
	W []float32
	B float32
	// Threshold is the exit decision boundary in logit space.
	Threshold float32
}

// Logit evaluates the probe on one sample's pre-SPP feature map laid
// out as c planes of hw values. Allocation-free.
func (h *ExitHead) Logit(sample []float32, c, hw int) float32 {
	s := float64(h.B)
	inv := 1 / float64(hw)
	for ci := 0; ci < c; ci++ {
		var acc float64
		for _, v := range sample[ci*hw : (ci+1)*hw] {
			acc += float64(v)
		}
		s += float64(h.W[ci]) * acc * inv
	}
	return float32(s)
}

// Router scores a raw input clip's difficulty from per-channel first-
// order statistics (mean and mean absolute deviation): a logistic probe
// trained on the calibration split. Large |logit| means the clip is
// easy — the probe is confident either way — and easy clips are served
// on the int8 path; clips inside the margin go to fp32.
type Router struct {
	// WMean and WMAD hold one weight per input channel for the channel
	// mean and mean-absolute-deviation features; B is the bias.
	WMean, WMAD []float32
	B           float32
	// Margin is the |logit| boundary between easy (int8) and hard
	// (fp32), the 25th percentile of calibration |logit|s.
	Margin float32
}

// Logit evaluates the router on sample i of a batch tensor. The two
// statistics stream per channel, so the call is allocation-free.
func (r *Router) Logit(x *tensor.Tensor, i int) float32 {
	c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	data := x.Data()[i*c*plane : (i+1)*c*plane]
	s := float64(r.B)
	inv := 1 / float64(plane)
	for ci := 0; ci < c; ci++ {
		p := data[ci*plane : (ci+1)*plane]
		var sum float64
		for _, v := range p {
			sum += float64(v)
		}
		mu := sum * inv
		var mad float64
		for _, v := range p {
			mad += math.Abs(float64(v) - mu)
		}
		s += float64(r.WMean[ci])*mu + float64(r.WMAD[ci])*mad*inv
	}
	return float32(s)
}

// Route assigns sample i of a batch to a serving precision.
func (r *Router) Route(x *tensor.Tensor, i int) Precision {
	l := r.Logit(x, i)
	if l < 0 {
		l = -l
	}
	if l >= r.Margin {
		return PrecisionInt8
	}
	return PrecisionFP32
}

// DynamicOptions configures dynamic-inference planning.
type DynamicOptions struct {
	// MaxAPDrop is the gate epsilon shared with quantization (0 → 0.01).
	MaxAPDrop float64
	// IoU is the AP matching threshold (0 → 0.5).
	IoU float64
	// CalibBatch is the batch size for calibration forwards (0 → 16).
	CalibBatch int
	// MaskBand is the mask granularity in output rows (0 → nn default).
	MaskBand int
	// MaskThresholds is the ladder of candidate energy thresholds,
	// tried most aggressive (largest) first (nil → default ladder).
	MaskThresholds []float32
	// ExitEpochs is the probe's gradient-descent epoch count (0 → 200).
	ExitEpochs int
	// DisableRouter skips difficulty-router training.
	DisableRouter bool
	// Int8 is the quantization decision for the deployment; the router
	// is only enabled when Int8 cleared its own accuracy gate.
	Int8 *QuantDecision
}

// DynamicPlan is the outcome of accuracy-gated dynamic-inference
// planning: which mechanisms are enabled, the calibrated parameters,
// and the composed accuracy evidence. One plan is shared by every
// serving replica; Stats and ExitStats aggregate across them.
type DynamicPlan struct {
	// Exit is the calibrated early-exit probe (nil until planned).
	Exit        *ExitHead
	ExitEnabled bool
	// MaskEnabled reports whether spatial masking survived the gate;
	// MaskBand/MaskThreshold are the calibrated spec.
	MaskEnabled   bool
	MaskBand      int
	MaskThreshold float32
	// Router is the difficulty router for precision "auto" (nil when
	// disabled).
	Router        *Router
	RouterEnabled bool
	// SPPIndex is the module index of the SPP layer: the seam between
	// the conv-stack prefix and the SPP+FC tail.
	SPPIndex int
	// FP32AP is the full-path baseline AP on the calibration split;
	// DynamicAP is the composed dynamic-path AP; Drop their difference.
	FP32AP, DynamicAP, Drop float64
	// Epsilon echoes the gate threshold.
	Epsilon float64
	// Demotions counts gate-ladder rungs taken: 0 = full plan,
	// 1 = masking disabled, 2 = early exit disabled too.
	Demotions int
	// ExitRate and MaskRate are the rates measured on the calibration
	// split under the final (post-demotion) configuration.
	ExitRate, MaskRate float64
	// Stats and ExitStats receive serving-time counters from every
	// replica sharing the plan.
	Stats     *nn.MaskStats
	ExitStats *ExitStats
}

// Enabled reports whether any dynamic mechanism survived the gate.
func (p *DynamicPlan) Enabled() bool {
	return p != nil && (p.ExitEnabled || p.MaskEnabled || p.RouterEnabled)
}

// Apply configures net for the plan: every conv after the first gets
// the calibrated mask spec and the masked kernel. Call on the serving
// network before replicas are cloned — cloneShared carries the mask
// spec and the shared stats. A plan without masking applies nothing.
func (p *DynamicPlan) Apply(net *nn.Sequential) {
	if p == nil || !p.MaskEnabled {
		return
	}
	applyMasks(net, p.MaskBand, p.MaskThreshold, p.Stats)
}

// applyMasks sets the mask spec and masked kernel on every conv after
// the first. The first conv stays exact: it reads raw terrain whose
// background is textured enough that masking it trades accuracy for
// little compute, and its output is what the downstream energy
// heuristics key on.
func applyMasks(net *nn.Sequential, band int, thresh float32, stats *nn.MaskStats) {
	first := true
	for _, m := range net.Modules() {
		c, ok := m.(*nn.Conv2D)
		if !ok {
			continue
		}
		if first {
			first = false
			continue
		}
		c.SetMask(nn.ConvMask{BandRows: band, Threshold: thresh, Stats: stats})
		c.SetKernels(nn.KernelMasked, nn.KernelMasked)
	}
}

// SPPIndex locates the SPP module in a detection network, the seam the
// dynamic path splits inference at.
func SPPIndex(net *nn.Sequential) (int, error) {
	for i, m := range net.Modules() {
		if _, ok := m.(*nn.SPP); ok {
			return i, nil
		}
	}
	return 0, fmt.Errorf("model: network has no SPP layer; dynamic inference needs the conv/tail seam")
}

// DynamicExec executes the dynamic path for one serving replica. It
// owns grow-only scratch (logits, survivor index, decode buffers), so
// steady-state InferDetect performs no heap allocation; one exec must
// not be shared across goroutines. The replica network may be fp32 or
// int8 — the exit probe reads whichever features the replica computes.
type DynamicExec struct {
	net    *nn.Sequential
	plan   *DynamicPlan
	nMods  int
	logits []float32
	keep   []int
}

// NewDynamicExec binds a plan to one replica network.
func NewDynamicExec(net *nn.Sequential, plan *DynamicPlan) *DynamicExec {
	return &DynamicExec{net: net, plan: plan, nMods: len(net.Modules())}
}

// Net returns the replica network the exec runs.
func (e *DynamicExec) Net() *nn.Sequential { return e.net }

// InferDetect is the dynamic counterpart of model.InferDetect. With the
// early exit disabled it delegates wholesale (bit-for-bit identical to
// the static path; masking, if enabled, lives inside the conv kernels).
// With the exit enabled the conv-stack prefix runs for the whole batch,
// the probe scores every sample, exited samples become confident
// negatives, and only survivors — compacted into an arena sub-batch —
// pay for the SPP+FC tail. A batch with no exits runs the tail on the
// prefix output directly and stays bit-identical to the static path.
func (e *DynamicExec) InferDetect(x *tensor.Tensor, a *tensor.Arena, dst []metrics.Detection) []metrics.Detection {
	if e.plan == nil || !e.plan.ExitEnabled {
		return InferDetect(e.net, x, a, dst)
	}
	n := x.Dim(0)
	mid := e.net.InferRange(x, a, 0, e.plan.SPPIndex)
	c, hw := mid.Dim(1), mid.Dim(2)*mid.Dim(3)
	stride := c * hw
	data := mid.Data()

	if cap(e.logits) < n {
		e.logits = make([]float32, n)
	}
	if cap(e.keep) < n {
		e.keep = make([]int, 0, n)
	}
	logits := e.logits[:n]
	keep := e.keep[:0]
	h := e.plan.Exit
	for i := 0; i < n; i++ {
		logits[i] = h.Logit(data[i*stride:(i+1)*stride], c, hw)
		if logits[i] > h.Threshold {
			keep = append(keep, i)
		}
	}
	e.keep = keep
	e.plan.ExitStats.Add(int64(n-len(keep)), int64(n))

	if len(keep) == n {
		out := e.net.InferRange(mid, a, e.plan.SPPIndex, e.nMods)
		return decodeHeadInto(out, dst)
	}

	if cap(dst) < n {
		dst = make([]metrics.Detection, n)
	}
	dets := dst[:n]
	for i := 0; i < n; i++ {
		dets[i] = metrics.Detection{
			Score:  1 / (1 + math.Exp(-float64(logits[i]))),
			Exited: true,
		}
	}
	if len(keep) > 0 {
		sub := a.Get(len(keep), c, mid.Dim(2), mid.Dim(3))
		sd := sub.Data()
		for j, i := range keep {
			copy(sd[j*stride:(j+1)*stride], data[i*stride:(i+1)*stride])
		}
		out := e.net.InferRange(sub, a, e.plan.SPPIndex, e.nMods)
		ostride := out.Dim(1)
		od := out.Data()
		for j, i := range keep {
			dets[i] = decodeRow(od[j*ostride : j*ostride+5])
		}
	}
	return dets
}

// defaultMaskLadder is tried most aggressive first: the largest
// threshold that keeps the AP drop inside epsilon wins. The top rungs
// are deliberately far above typical background texture energy —
// whether they hold is exactly what the AP gate decides, and stopping
// the ladder early would leave gate headroom (and background bands)
// on the table.
var defaultMaskLadder = []float32{0.5, 0.3, 0.2, 0.12, 0.08, 0.04, 0.02, 0.01, 0.005}

// PlanDynamic calibrates the dynamic inference path on a held-out split
// and gates it against the fp32 baseline. The ladder demotes masking
// first (it perturbs every downstream layer) and the early exit second;
// a fully demoted plan serves the static path. net is not modified —
// call plan.Apply on the serving network afterwards.
func PlanDynamic(net *nn.Sequential, calib *terrain.Dataset, opts DynamicOptions) (*DynamicPlan, error) {
	if calib == nil || len(calib.Samples) == 0 {
		return nil, fmt.Errorf("model: dynamic planning needs a non-empty calibration dataset")
	}
	if opts.MaxAPDrop <= 0 {
		opts.MaxAPDrop = 0.01
	}
	if opts.IoU == 0 {
		opts.IoU = 0.5
	}
	if opts.CalibBatch <= 0 {
		opts.CalibBatch = 16
	}
	if opts.ExitEpochs <= 0 {
		opts.ExitEpochs = 200
	}
	ladder := opts.MaskThresholds
	if len(ladder) == 0 {
		ladder = defaultMaskLadder
	}
	sppIdx, err := SPPIndex(net)
	if err != nil {
		return nil, err
	}

	plan := &DynamicPlan{
		SPPIndex:  sppIdx,
		Epsilon:   opts.MaxAPDrop,
		MaskBand:  opts.MaskBand,
		Stats:     &nn.MaskStats{},
		ExitStats: &ExitStats{},
		FP32AP:    evalAP(net, calib, opts.IoU, opts.CalibBatch),
	}
	gts := calibGroundTruth(calib)

	// Calibrate the mask energy threshold on a masked clone, most
	// aggressive first; masking alone must fit inside epsilon before the
	// composed gate even considers it.
	maskOK := false
	for _, thresh := range ladder {
		cl, err := maskedClone(net, opts.MaskBand, thresh, plan.Stats)
		if err != nil {
			return nil, err
		}
		plan.Stats.Reset()
		ap := evalAP(cl, calib, opts.IoU, opts.CalibBatch)
		if plan.FP32AP-ap <= opts.MaxAPDrop {
			maskOK = true
			plan.MaskThreshold = thresh
			break
		}
	}

	// Gate ladder on the composed path: full plan, then drop masking,
	// then drop the exit. The exit probe is trained and thresholded PER
	// RUNG, on the prefix features of the exact net configuration that
	// rung would serve — masking perturbs the pooled features, so a
	// probe calibrated on the unmasked prefix misfires on the masked one.
	for rung := 0; rung <= 2; rung++ {
		plan.MaskEnabled = maskOK && rung == 0
		plan.ExitEnabled = false
		if !maskOK && rung == 1 {
			continue // identical to rung 0 without masking to drop
		}
		plan.Demotions = rung
		evalNet := net
		if plan.MaskEnabled {
			cl, err := maskedClone(net, opts.MaskBand, plan.MaskThreshold, plan.Stats)
			if err != nil {
				return nil, err
			}
			evalNet = cl
		}
		if rung < 2 {
			feats, labels := prefixFeatures(evalNet, sppIdx, calib, opts.CalibBatch)
			if head := trainExitHead(feats, labels, opts.ExitEpochs); head != nil {
				logits := make([]float32, len(calib.Samples))
				for i, f := range feats {
					logits[i] = probeLogit(head, f)
				}
				fullDets := fullPathDetections(evalNet, calib, opts.CalibBatch)
				if tau, ok := calibrateExitThreshold(logits, fullDets, gts, plan.FP32AP, opts.MaxAPDrop, opts.IoU); ok {
					head.Threshold = tau
					plan.Exit = head
					plan.ExitEnabled = true
				}
			}
		}
		plan.Stats.Reset()
		plan.ExitStats.Reset()
		exec := NewDynamicExec(evalNet, plan)
		plan.DynamicAP = evalAPDynamic(exec, calib, opts.IoU, opts.CalibBatch)
		plan.Drop = plan.FP32AP - plan.DynamicAP
		if plan.Drop <= opts.MaxAPDrop || (!plan.MaskEnabled && !plan.ExitEnabled) {
			break
		}
	}
	plan.ExitRate = plan.ExitStats.Rate()
	plan.MaskRate = plan.Stats.Rate()
	plan.ExitStats.Reset()
	plan.Stats.Reset()

	// The router only matters when an int8 replica set exists, and that
	// path must have cleared its own accuracy gate.
	if !opts.DisableRouter && opts.Int8 != nil && opts.Int8.Enabled {
		plan.Router = trainRouter(calib, opts.CalibBatch, opts.ExitEpochs)
		plan.RouterEnabled = plan.Router != nil
	}
	return plan, nil
}

// maskedClone builds an inference replica of net with the mask spec
// applied to every conv after the first. Weights are shared; the clone
// packs its own masked-kernel state lazily.
func maskedClone(net *nn.Sequential, band int, thresh float32, stats *nn.MaskStats) (*nn.Sequential, error) {
	m, err := nn.CloneShared(net)
	if err != nil {
		return nil, err
	}
	cl := m.(*nn.Sequential)
	applyMasks(cl, band, thresh, stats)
	return cl, nil
}

// prefixFeatures runs the conv-stack prefix over the split and returns
// each sample's globally pooled feature vector and objectness label.
func prefixFeatures(net *nn.Sequential, sppIdx int, ds *terrain.Dataset, batch int) ([][]float32, []bool) {
	a := tensor.NewArena()
	feats := make([][]float32, 0, len(ds.Samples))
	labels := make([]bool, 0, len(ds.Samples))
	for lo := 0; lo < len(ds.Samples); lo += batch {
		hi := lo + batch
		if hi > len(ds.Samples) {
			hi = len(ds.Samples)
		}
		x, targets := ds.Batch(lo, hi)
		a.Reset()
		mid := net.InferRange(x, a, 0, sppIdx)
		c, hw := mid.Dim(1), mid.Dim(2)*mid.Dim(3)
		data := mid.Data()
		for i := 0; i < hi-lo; i++ {
			f := make([]float32, c)
			sample := data[i*c*hw : (i+1)*c*hw]
			inv := 1 / float64(hw)
			for ci := 0; ci < c; ci++ {
				var acc float64
				for _, v := range sample[ci*hw : (ci+1)*hw] {
					acc += float64(v)
				}
				f[ci] = float32(acc * inv)
			}
			feats = append(feats, f)
			labels = append(labels, targets[i].HasObject)
		}
	}
	return feats, labels
}

// fullPathDetections scores the split through the static fast path,
// one detection per sample, for threshold simulation.
func fullPathDetections(net *nn.Sequential, ds *terrain.Dataset, batch int) []metrics.Detection {
	a := tensor.NewArena()
	dets := make([]metrics.Detection, 0, len(ds.Samples))
	scratch := make([]metrics.Detection, 0, batch)
	for lo := 0; lo < len(ds.Samples); lo += batch {
		hi := lo + batch
		if hi > len(ds.Samples) {
			hi = len(ds.Samples)
		}
		x, _ := ds.Batch(lo, hi)
		a.Reset()
		scratch = InferDetect(net, x, a, scratch[:0])
		dets = append(dets, scratch...)
	}
	return dets
}

func calibGroundTruth(ds *terrain.Dataset) []metrics.GroundTruth {
	targets := make([]nn.DetectionTarget, len(ds.Samples))
	for i, s := range ds.Samples {
		targets[i] = s.Target
	}
	return TargetsToGroundTruth(targets)
}

// trainExitHead fits the logistic probe with full-batch gradient
// descent on standardized features, then folds the standardization into
// the weights. Returns nil when the split lacks both classes.
func trainExitHead(feats [][]float32, labels []bool, epochs int) *ExitHead {
	w, b, ok := trainLogistic(feats, labels, epochs)
	if !ok {
		return nil
	}
	return &ExitHead{W: w, B: b, Threshold: float32(math.Inf(-1))}
}

// trainLogistic is the shared deterministic trainer: standardize each
// feature dimension, run fixed-epoch full-batch GD on the logistic
// loss, fold the standardization back into the returned weights.
func trainLogistic(feats [][]float32, labels []bool, epochs int) (w []float32, b float32, ok bool) {
	n := len(feats)
	if n == 0 {
		return nil, 0, false
	}
	var pos int
	for _, l := range labels {
		if l {
			pos++
		}
	}
	if pos == 0 || pos == n {
		return nil, 0, false
	}
	d := len(feats[0])
	mu := make([]float64, d)
	sd := make([]float64, d)
	for _, f := range feats {
		for j, v := range f {
			mu[j] += float64(v)
		}
	}
	for j := range mu {
		mu[j] /= float64(n)
	}
	for _, f := range feats {
		for j, v := range f {
			dv := float64(v) - mu[j]
			sd[j] += dv * dv
		}
	}
	for j := range sd {
		sd[j] = math.Sqrt(sd[j]/float64(n)) + 1e-8
	}
	z := make([][]float64, n)
	for i, f := range feats {
		zi := make([]float64, d)
		for j, v := range f {
			zi[j] = (float64(v) - mu[j]) / sd[j]
		}
		z[i] = zi
	}
	wz := make([]float64, d)
	var bz float64
	grad := make([]float64, d)
	const lr = 0.5
	for e := 0; e < epochs; e++ {
		for j := range grad {
			grad[j] = 0
		}
		var gb float64
		for i, zi := range z {
			s := bz
			for j, v := range zi {
				s += wz[j] * v
			}
			p := 1 / (1 + math.Exp(-s))
			y := 0.0
			if labels[i] {
				y = 1
			}
			g := p - y
			for j, v := range zi {
				grad[j] += g * v
			}
			gb += g
		}
		inv := lr / float64(n)
		for j := range wz {
			wz[j] -= grad[j] * inv
		}
		bz -= gb * inv
	}
	w = make([]float32, d)
	bf := bz
	for j := range wz {
		w[j] = float32(wz[j] / sd[j])
		bf -= wz[j] * mu[j] / sd[j]
	}
	return w, float32(bf), true
}

func probeLogit(h *ExitHead, f []float32) float32 {
	s := float64(h.B)
	for j, v := range f {
		s += float64(h.W[j]) * float64(v)
	}
	return float32(s)
}

// calibrateExitThreshold picks the most permissive exit threshold whose
// simulated composed AP stays within epsilon of the baseline. The
// simulation swaps each would-exit sample's full-path detection for the
// exit detection the runtime would emit (probe sigmoid, empty box) and
// re-evaluates AP — no extra forward passes. Candidates are the
// descending quantiles of the calibration logit distribution.
func calibrateExitThreshold(logits []float32, fullDets []metrics.Detection,
	gts []metrics.GroundTruth, baseAP, eps, iou float64) (float32, bool) {
	sorted := append([]float32(nil), logits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	dets := make([]metrics.Detection, len(fullDets))
	for q := 95; q >= 5; q -= 5 {
		tau := sorted[(len(sorted)-1)*q/100]
		copy(dets, fullDets)
		for i, l := range logits {
			if l <= tau {
				dets[i] = metrics.Detection{
					Score:  1 / (1 + math.Exp(-float64(l))),
					Exited: true,
				}
			}
		}
		if baseAP-metrics.Evaluate(dets, gts, iou).AP <= eps {
			return tau, true
		}
	}
	return 0, false
}

// evalAPDynamic mirrors evalAP through the dynamic executor.
func evalAPDynamic(exec *DynamicExec, ds *terrain.Dataset, iou float64, batch int) float64 {
	a := tensor.NewArena()
	var dets []metrics.Detection
	var gts []metrics.GroundTruth
	scratch := make([]metrics.Detection, 0, batch)
	for lo := 0; lo < len(ds.Samples); lo += batch {
		hi := lo + batch
		if hi > len(ds.Samples) {
			hi = len(ds.Samples)
		}
		x, targets := ds.Batch(lo, hi)
		a.Reset()
		scratch = exec.InferDetect(x, a, scratch[:0])
		dets = append(dets, scratch...)
		gts = append(gts, TargetsToGroundTruth(targets)...)
	}
	return metrics.Evaluate(dets, gts, iou).AP
}

// trainRouter fits the difficulty probe on raw-input channel statistics
// and sets the margin to the 25th percentile of |logit| — three
// quarters of calibration traffic routes to the int8 path.
func trainRouter(ds *terrain.Dataset, batch, epochs int) *Router {
	feats := make([][]float32, 0, len(ds.Samples))
	labels := make([]bool, 0, len(ds.Samples))
	var channels int
	for lo := 0; lo < len(ds.Samples); lo += batch {
		hi := lo + batch
		if hi > len(ds.Samples) {
			hi = len(ds.Samples)
		}
		x, targets := ds.Batch(lo, hi)
		c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
		channels = c
		plane := h * w
		data := x.Data()
		for i := 0; i < hi-lo; i++ {
			f := make([]float32, 2*c)
			sample := data[i*c*plane : (i+1)*c*plane]
			inv := 1 / float64(plane)
			for ci := 0; ci < c; ci++ {
				p := sample[ci*plane : (ci+1)*plane]
				var sum float64
				for _, v := range p {
					sum += float64(v)
				}
				mu := sum * inv
				var mad float64
				for _, v := range p {
					mad += math.Abs(float64(v) - mu)
				}
				f[ci] = float32(mu)
				f[c+ci] = float32(mad * inv)
			}
			feats = append(feats, f)
			labels = append(labels, targets[i].HasObject)
		}
	}
	w, b, ok := trainLogistic(feats, labels, epochs)
	if !ok {
		return nil
	}
	r := &Router{WMean: w[:channels], WMAD: w[channels:], B: b}
	abs := make([]float64, len(feats))
	for i, f := range feats {
		var s float64 = float64(b)
		for j, v := range f {
			s += float64(w[j]) * float64(v)
		}
		abs[i] = math.Abs(s)
	}
	sort.Float64s(abs)
	r.Margin = float32(abs[len(abs)/4])
	return r
}
